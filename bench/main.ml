(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation section (see DESIGN.md section 5 for the experiment index).

    Usage:
      dune exec bench/main.exe                      -- everything
      dune exec bench/main.exe -- table1 fig5       -- selected sections
      dune exec bench/main.exe -- --scale 1.0 all   -- bigger designs
      dune exec bench/main.exe -- --json BENCH_results.json table2
      dune exec bench/main.exe -- -domains 4 table2 -- parallel kernels
      dune exec bench/main.exe -- scaling           -- domain-scaling sweep
      dune exec bench/main.exe -- spectral --grid-max 512 -- DCT/Poisson engine sweep

    Sections: table1 table2 table3 table4 fig3 fig4 fig5 micro scaling
    spectral scale formats smoke all ("smoke" is the CI sentinel sweep
    and not part of "all"; "spectral" sweeps the real-even plan engine vs
    the seed complex-FFT path over grids up to [--grid-max], default
    2048; "scale" runs the SoA kernel ladder over designs up to
    [--cells-max] cells, default 100k; "formats" times cold Bookshelf /
    LEF-DEF parses over the same ladder — MB/s and minor words per
    cell).
    Default design scale is 0.5 (full bench in minutes); 1.0 doubles the
    design sizes at ~4x the runtime. [--json FILE] additionally dumps
    every flow result the run produced (runtime, breakdown, tns/wns,
    hpwl, curve) as one machine-readable JSON document. [-domains N] runs
    the flows with N parallel domains; the [scaling] section instead
    sweeps each hot kernel over 1/2/4 domains and writes
    BENCH_parallel.json. *)

let scale = ref 0.5

let json_out : string option ref = ref None

let domains = ref 1

(* Largest grid dimension the [spectral] section sweeps (CI trims it). *)
let grid_max = ref 2048

(* Extra bench-results-v1 entries produced by non-flow sections (the
   spectral sweep); merged into the [--json] dump alongside flow results. *)
let extra_entries : Obs.Json.t list ref = ref []

(* ------------------------------------------------------------------ *)
(* Design and flow-result caches: Table IV reuses Table II's runs, the
   figures reuse designs, etc. *)

let designs : (string, Netlist.Design.t) Hashtbl.t = Hashtbl.create 8

let design name =
  match Hashtbl.find_opt designs name with
  | Some d -> d
  | None ->
      Printf.printf "[gen] %s (scale %.2f)...\n%!" name !scale;
      let d = Workloads.Suite.load ~scale:!scale name in
      Hashtbl.add designs name d;
      d

let flow_results : (string * string, (Tdp.Flow.result, Util.Errors.t) result) Hashtbl.t =
  Hashtbl.create 64

(* One (design, method) flow, memoised. A typed pipeline failure
   ([Util.Errors.Error], e.g. [Diverged] after the rollback budget) is
   caught and recorded as that entry's outcome — the sweep continues and
   the [--json] dump serialises the error — instead of aborting the whole
   bench run. Programmer errors still escape. *)
let run_flow_err ?key_label dname meth =
  let label = match key_label with Some l -> l | None -> Tdp.Flow.method_name meth in
  let key = (dname, label) in
  match Hashtbl.find_opt flow_results key with
  | Some r -> r
  | None ->
      Printf.printf "[run] %-18s on %s...\n%!" label dname;
      let r =
        try Ok (Tdp.Flow.run meth (design dname))
        with Util.Errors.Error e ->
          Printf.printf "[fail] %-18s on %s: %s (recorded; sweep continues)\n%!" label dname
            (Util.Errors.message e);
          Error e
      in
      Hashtbl.add flow_results key r;
      r

let run_flow dname meth = run_flow_err dname meth

let suite = [ "sb1"; "sb3"; "sb4"; "sb5"; "sb7"; "sb10"; "sb16"; "sb18" ]

let f1 = Util.Tablefmt.fmt_float ~prec:1

let f2 = Util.Tablefmt.fmt_float ~prec:2

(* Average of |v|/|ours| ratios; [floor] bounds the denominator away from
   zero so a fully-met design does not produce an infinite ratio (use
   ~100 ps for TNS/WNS, small values for runtime/HPWL). *)
let avg_ratio ?(floor = 100.0) pairs =
  let rs =
    List.map
      (fun (v, ours) -> Float.max floor (Float.abs v) /. Float.max floor (Float.abs ours))
      pairs
  in
  (* Geometric mean: a single almost-met design would otherwise dominate
     the arithmetic mean through its tiny denominator. *)
  Util.Stats.geomean (Array.of_list rs)

(* ------------------------------------------------------------------ *)
(* Table I: critical path extraction statistics.                       *)

let table1 () =
  let dname = "sb1" in
  let d = design dname in
  (* Coarse placement: the vanilla flow's global placement result. *)
  ignore (run_flow dname Tdp.Flow.Vanilla);
  let timer = Sta.Timer.create ~topology:Sta.Delay.Steiner_tree d in
  Sta.Timer.update timer;
  let n = Sta.Timer.num_failing_endpoints timer in
  Printf.printf "\nTable I workload: %s, %d failing endpoints\n" dname n;
  let t =
    Util.Tablefmt.create ~title:"TABLE I: timing statistics of critical path extraction methods"
      ~headers:[ "Command"; "Complexity"; "#Paths"; "#Endpoints"; "#Pin Pairs"; "Time (sec)" ]
      ~aligns:[ Left; Left; Right; Right; Right; Right ]
  in
  let measure name complexity f =
    let t0 = Unix.gettimeofday () in
    let paths = f () in
    let elapsed = Unix.gettimeofday () -. t0 in
    let s = Sta.Timer.stats_of_paths timer paths ~elapsed in
    Util.Tablefmt.add_row t
      [
        name;
        complexity;
        string_of_int s.Sta.Report.num_paths;
        string_of_int s.Sta.Report.num_endpoints;
        string_of_int s.Sta.Report.num_pin_pairs;
        Printf.sprintf "%.4f" elapsed;
      ];
    s
  in
  let s1 =
    measure
      (Printf.sprintf "report_timing(%d)" n)
      "O(n^2)"
      (fun () -> Sta.Timer.report_timing timer ~n)
  in
  let _ =
    measure
      (Printf.sprintf "report_timing(%d)" (10 * n))
      "O(n^2)"
      (fun () -> Sta.Timer.report_timing timer ~n:(10 * n))
  in
  let s3 =
    measure
      (Printf.sprintf "report_timing_endpoint(%d,1)" n)
      "O(n*k)"
      (fun () -> Sta.Timer.report_timing_endpoint timer ~n ~k:1)
  in
  let _ =
    measure
      (Printf.sprintf "report_timing_endpoint(%d,10)" n)
      "O(n*k)"
      (fun () -> Sta.Timer.report_timing_endpoint timer ~n ~k:10)
  in
  Util.Tablefmt.print t;
  Printf.printf
    "paper shape: endpoint coverage %d/%d vs %d/%d; speedup rt(n)/rt_ept(n,1) = %.1fx (paper ~6x)\n\n"
    s1.Sta.Report.num_endpoints n s3.Sta.Report.num_endpoints n
    (s1.Sta.Report.elapsed /. Float.max 1e-6 s3.Sta.Report.elapsed)

(* ------------------------------------------------------------------ *)
(* Table II: main results.                                             *)

let table2_methods () =
  [
    Tdp.Flow.Vanilla;
    Tdp.Flow.Dp4;
    Tdp.Flow.Diff_tdp;
    Tdp.Flow.Dist_tdp;
    Tdp.Flow.Efficient Tdp.Config.default;
  ]

let table2 () =
  let methods = table2_methods () in
  let t =
    Util.Tablefmt.create
      ~title:"TABLE II: TNS (x10^3 ps), WNS (x10^3 ps), HPWL (x10^3) across timing-driven placers"
      ~headers:
        ("Benchmark"
        :: List.concat_map
             (fun m ->
               let n = Tdp.Flow.method_name m in
               [ n ^ " TNS"; "WNS"; "HPWL" ])
             methods)
      ~aligns:(Left :: List.concat_map (fun _ -> [ Util.Tablefmt.Right; Right; Right ]) methods)
  in
  let all = List.map (fun dn -> (dn, List.map (fun m -> run_flow dn m) methods)) suite in
  List.iter
    (fun (dn, rs) ->
      Util.Tablefmt.add_row t
        (dn
        :: List.concat_map
             (function
               | Ok (r : Tdp.Flow.result) ->
                   [
                     f2 (r.metrics.tns /. 1e3);
                     f2 (r.metrics.wns /. 1e3);
                     f1 (r.metrics.hpwl /. 1e3);
                   ]
               | Error _ -> [ "-"; "-"; "-" ])
             rs))
    all;
  Util.Tablefmt.add_sep t;
  (* Average ratios against Efficient-TDP (the last method), over the
     (design, method) pairs where both flows succeeded. *)
  let ours rs = List.nth rs (List.length rs - 1) in
  let find_ok name rs =
    List.find_map
      (function Ok (r : Tdp.Flow.result) when r.name = name -> Some r | _ -> None)
      rs
  in
  Util.Tablefmt.add_row t
    ("Avg Ratio"
    :: List.concat_map
         (fun m ->
           let name = Tdp.Flow.method_name m in
           let col ?floor f =
             let pairs =
               List.filter_map
                 (fun (_, rs) ->
                   match (find_ok name rs, ours rs) with
                   | Some r, Ok (o : Tdp.Flow.result) -> Some (f r, f o)
                   | _ -> None)
                 all
             in
             if pairs = [] then Float.nan else avg_ratio ?floor pairs
           in
           [
             f2 (col (fun r -> r.metrics.tns));
             f2 (col (fun r -> r.metrics.wns));
             Printf.sprintf "%.3f" (col ~floor:1e-3 (fun (r : Tdp.Flow.result) -> r.metrics.hpwl));
           ])
         methods);
  Util.Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table III: ablation study.                                          *)

let table3 () =
  let base = Tdp.Config.default in
  let variants =
    [
      ("w/ HPWL Loss", Tdp.Flow.Efficient (Tdp.Config.with_loss Tdp.Config.Hpwl_like base));
      ("w/ Linear Loss", Tdp.Flow.Efficient (Tdp.Config.with_loss Tdp.Config.Linear base));
      ( "w/ rpt_timing(n)",
        Tdp.Flow.Efficient { base with extraction = Tdp.Config.Global_topn { mult = 1 } } );
      ( "w/ rpt_timing(n*10)",
        Tdp.Flow.Efficient { base with extraction = Tdp.Config.Global_topn { mult = 10 } } );
      ( "w/ rpt_timing_ept(n,10)",
        Tdp.Flow.Efficient { base with extraction = Tdp.Config.Endpoint_based { k = 10 } } );
      ("w/o Path Extraction", Tdp.Flow.Dp4_in_ours);
      ("Our Method", Tdp.Flow.Efficient base);
    ]
  in
  (* Distinct cache keys per variant. *)
  let run dn (vname, meth) = run_flow_err ~key_label:("t3:" ^ vname) dn meth in
  let t =
    Util.Tablefmt.create ~title:"TABLE III: ablation study, TNS (x10^3 ps) and WNS (x10^3 ps)"
      ~headers:("Benchmark" :: List.concat_map (fun (n, _) -> [ n ^ " TNS"; "WNS" ]) variants)
      ~aligns:(Left :: List.concat_map (fun _ -> [ Util.Tablefmt.Right; Right ]) variants)
  in
  let all = List.map (fun dn -> (dn, List.map (fun v -> (fst v, run dn v)) variants)) suite in
  List.iter
    (fun (dn, rs) ->
      Util.Tablefmt.add_row t
        (dn
        :: List.concat_map
             (fun (_, r) ->
               match r with
               | Ok (r : Tdp.Flow.result) ->
                   [ f2 (r.metrics.tns /. 1e3); f2 (r.metrics.wns /. 1e3) ]
               | Error _ -> [ "-"; "-" ])
             rs))
    all;
  Util.Tablefmt.add_sep t;
  let ours_of rs = snd (List.nth rs (List.length rs - 1)) in
  Util.Tablefmt.add_row t
    ("Avg Ratio"
    :: List.concat_map
         (fun (vname, _) ->
           let col f =
             let pairs =
               List.filter_map
                 (fun (_, rs) ->
                   match (snd (List.find (fun (n, _) -> n = vname) rs), ours_of rs) with
                   | Ok (r : Tdp.Flow.result), Ok (o : Tdp.Flow.result) -> Some (f r, f o)
                   | _ -> None)
                 all
             in
             if pairs = [] then Float.nan else avg_ratio pairs
           in
           [
             f2 (col (fun (r : Tdp.Flow.result) -> r.metrics.tns));
             f2 (col (fun (r : Tdp.Flow.result) -> r.metrics.wns));
           ])
         variants);
  Util.Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table IV: runtime.                                                  *)

let table4 () =
  let methods = [ Tdp.Flow.Vanilla; Tdp.Flow.Dp4; Tdp.Flow.Efficient Tdp.Config.default ] in
  let t =
    Util.Tablefmt.create ~title:"TABLE IV: runtime (sec)"
      ~headers:[ "Benchmark"; "DREAMPlace"; "DREAMPlace 4.0"; "Our Method" ]
      ~aligns:[ Left; Right; Right; Right ]
  in
  let all = List.map (fun dn -> (dn, List.map (fun m -> run_flow dn m) methods)) suite in
  List.iter
    (fun (dn, rs) ->
      Util.Tablefmt.add_row t
        (dn
        :: List.map
             (function Ok (r : Tdp.Flow.result) -> f2 r.runtime | Error _ -> "-")
             rs))
    all;
  Util.Tablefmt.add_sep t;
  let ratios i =
    let pairs =
      List.filter_map
        (fun (_, rs) ->
          match (List.nth rs i, List.nth rs 2) with
          | Ok (r : Tdp.Flow.result), Ok (o : Tdp.Flow.result) -> Some (r.runtime, o.runtime)
          | _ -> None)
        all
    in
    if pairs = [] then Float.nan else avg_ratio ~floor:1e-3 pairs
  in
  Util.Tablefmt.add_row t [ "Avg Ratio"; f2 (ratios 0); f2 (ratios 1); f2 (ratios 2) ];
  Util.Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Fig. 3: one critical path under the three distance losses.          *)

let fig3 () =
  let dname = "sb16" in
  Printf.printf "FIG 3: worst critical path of %s optimised under each distance loss\n" dname;
  let base = Tdp.Config.default in
  let losses =
    [
      ("coarse (no timing opt)", None);
      ("HPWL loss", Some (Tdp.Config.with_loss Tdp.Config.Hpwl_like base));
      ("Linear loss", Some (Tdp.Config.with_loss Tdp.Config.Linear base));
      ("Quadratic loss (ours)", Some base);
    ]
  in
  let d = design dname in
  (* Identify the worst endpoint on the coarse (vanilla) placement; track
     the same endpoint across the loss variants. Every variant re-places
     the design freshly: cached results carry metrics, not placements. *)
  ignore (Tdp.Flow.run Tdp.Flow.Vanilla d);
  let coarse_timer = Sta.Timer.create d in
  Sta.Timer.update coarse_timer;
  let target_ep =
    match Sta.Timer.critical_path coarse_timer with
    | Some p -> p.Sta.Paths.endpoint
    | None -> failwith "fig3: no critical path"
  in
  let t =
    Util.Tablefmt.create ~title:"FIG 3 (quantified): tracked path geometry per loss"
      ~headers:
        [ "Loss"; "Path slack (ps)"; "Path WL"; "Max seg"; "Mean seg"; "Seg CV"; "Segments" ]
      ~aligns:[ Left; Right; Right; Right; Right; Right; Left ]
  in
  let describe name =
    let timer = Sta.Timer.create d in
    Sta.Timer.update timer;
    match
      Sta.Paths.worst_path (Sta.Timer.graph timer) (Sta.Timer.arrivals timer) ~endpoint:target_ep
    with
    | None -> ()
    | Some p ->
        let graph = Sta.Timer.graph timer in
        let segs =
          Array.to_list p.arcs
          |> List.filter (fun a -> graph.Sta.Graph.arc_is_net.(a))
          |> List.map (fun a ->
                 let pi = graph.Sta.Graph.arc_from.(a) in
                 let pj = graph.Sta.Graph.arc_to.(a) in
                 Geom.Point.manhattan (Netlist.Design.pin_pos d pi) (Netlist.Design.pin_pos d pj))
          |> Array.of_list
        in
        (* ASCII sparkline of segment lengths along the path. *)
        let chars = "_.-=+*#%@" in
        let maxseg = Float.max 1e-9 (Util.Stats.max_elt segs) in
        let spark =
          String.concat ""
            (Array.to_list
               (Array.map
                  (fun l ->
                    let i = int_of_float (l /. maxseg *. 8.0) in
                    String.make 1 chars.[max 0 (min 8 i)])
                  segs))
        in
        Util.Tablefmt.add_row t
          [
            name;
            f1 p.slack;
            f1 (Util.Stats.sum segs);
            f1 (Util.Stats.max_elt segs);
            f1 (Util.Stats.mean segs);
            f2 (Util.Stats.coeff_variation segs);
            spark;
          ]
  in
  List.iter
    (fun (name, cfg) ->
      (match cfg with
      | None -> ignore (Tdp.Flow.run Tdp.Flow.Vanilla d)
      | Some c ->
          Printf.printf "[run] fig3 %-22s on %s...\n%!" name dname;
          ignore (Tdp.Flow.run (Tdp.Flow.Efficient c) d));
      describe name)
    losses;
  Util.Tablefmt.print t;
  Printf.printf
    "paper shape: quadratic gives the best slack and the most uniform segments (low CV),\n\
     HPWL/linear leave a few very long segments despite shorter total path WL.\n\n"

(* ------------------------------------------------------------------ *)
(* Fig. 4: runtime breakdown, DP4 vs ours, normalised to DP4 total.    *)

let fig4 () =
  let dname = "sb1" in
  match (run_flow dname Tdp.Flow.Dp4, run_flow dname (Tdp.Flow.Efficient Tdp.Config.default)) with
  | Error _, _ | _, Error _ ->
      Printf.printf "FIG 4 skipped: a required flow on %s failed\n\n" dname
  | Ok dp4, Ok ours ->
  let total_dp4 = dp4.runtime in
  let t =
    Util.Tablefmt.create
      ~title:
        (Printf.sprintf
           "FIG 4: runtime breakdown on %s, normalised to DREAMPlace 4.0 total (%.2fs)" dname
           total_dp4)
      ~headers:[ "Component"; "DREAMPlace 4.0"; "Our Method" ]
      ~aligns:[ Left; Right; Right ]
  in
  let get (r : Tdp.Flow.result) names =
    List.fold_left
      (fun acc n -> acc +. (try List.assoc n r.breakdown with Not_found -> 0.0))
      0.0 names
  in
  let rows =
    [
      ("wirelength grad", [ "wl_grad" ]);
      ("density (fft)", [ "density" ]);
      ("optimizer", [ "optimizer" ]);
      ("sta", [ "sta+weighting"; "sta" ]);
      ("path extraction", [ "extraction" ]);
      ("pin-pair weighting", [ "pp_grad" ]);
      ("legalize+detailed", [ "legalize"; "detailed" ]);
    ]
  in
  let acc_dp4 = ref 0.0 and acc_ours = ref 0.0 in
  List.iter
    (fun (label, keys) ->
      let a = get dp4 keys and b = get ours keys in
      acc_dp4 := !acc_dp4 +. a;
      acc_ours := !acc_ours +. b;
      Util.Tablefmt.add_row t
        [ label; Printf.sprintf "%.3f" (a /. total_dp4); Printf.sprintf "%.3f" (b /. total_dp4) ])
    rows;
  Util.Tablefmt.add_row t
    [
      "other";
      Printf.sprintf "%.3f" ((total_dp4 -. !acc_dp4) /. total_dp4);
      Printf.sprintf "%.3f" ((ours.runtime -. !acc_ours) /. total_dp4);
    ];
  Util.Tablefmt.add_sep t;
  Util.Tablefmt.add_row t [ "total"; "1.000"; Printf.sprintf "%.3f" (ours.runtime /. total_dp4) ];
  Util.Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Fig. 5: optimisation trajectories.                                  *)

let fig5 () =
  let dname = "sb1" in
  match (run_flow dname Tdp.Flow.Dp4, run_flow dname (Tdp.Flow.Efficient Tdp.Config.default)) with
  | Error _, _ | _, Error _ ->
      Printf.printf "FIG 5 skipped: a required flow on %s failed\n\n" dname
  | Ok dp4, Ok ours ->
  Printf.printf "FIG 5: optimisation trajectory on %s (timing starts at iteration %d)\n" dname
    Tdp.Config.default.timing_start;
  let t =
    Util.Tablefmt.create ~title:"per-round metrics; |tns|/|wns| as in the paper's figure"
      ~headers:
        [ "iter"; "dp4 hpwl"; "ovf"; "|tns|"; "|wns|"; "ours hpwl"; "ovf"; "|tns|"; "|wns|" ]
      ~aligns:[ Right; Right; Right; Right; Right; Right; Right; Right; Right ]
  in
  let tbl : (int, Tdp.Flow.curve_point option * Tdp.Flow.curve_point option) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter (fun (c : Tdp.Flow.curve_point) -> Hashtbl.replace tbl c.iter (Some c, None)) dp4.curve;
  List.iter
    (fun (c : Tdp.Flow.curve_point) ->
      let prev = match Hashtbl.find_opt tbl c.iter with Some (a, _) -> a | None -> None in
      Hashtbl.replace tbl c.iter (prev, Some c))
    ours.curve;
  let iters = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare in
  List.iter
    (fun i ->
      let a, b = Hashtbl.find tbl i in
      let cell = function
        | None -> [ "-"; "-"; "-"; "-" ]
        | Some (c : Tdp.Flow.curve_point) ->
            [
              Printf.sprintf "%.0f" c.hpwl;
              f2 c.overflow;
              Printf.sprintf "%.0f" (Float.abs c.tns);
              Printf.sprintf "%.0f" (Float.abs c.wns);
            ]
      in
      Util.Tablefmt.add_row t ((string_of_int i :: cell a) @ cell b))
    iters;
  Util.Tablefmt.print t;
  Printf.printf
    "paper shape: ours improves TNS/WNS faster and holds them stable; DP4's heavy net\n\
     weights slow HPWL/overflow convergence.\n\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot kernels.                       *)

let micro () =
  let open Bechamel in
  let d = design "sb18" in
  ignore (run_flow "sb18" Tdp.Flow.Vanilla);
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let gx = Array.make (Netlist.Design.num_cells d) 0.0 in
  let gy = Array.make (Netlist.Design.num_cells d) 0.0 in
  let grid = Gp.Densitygrid.create d ~bins_x:64 ~bins_y:64 in
  let electro = Gp.Electro.create grid in
  let n_failing = max 1 (Sta.Timer.num_failing_endpoints timer) in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        Test.make ~name:"wa_wirelength_grad"
          (Staged.stage (fun () ->
               Array.fill gx 0 (Array.length gx) 0.0;
               Array.fill gy 0 (Array.length gy) 0.0;
               ignore (Gp.Wirelength.wa_wirelength_grad d ~gamma:2.0 ~gx ~gy)));
        Test.make ~name:"density_update+poisson"
          (Staged.stage (fun () ->
               Gp.Densitygrid.update grid d;
               Gp.Electro.solve electro ~target_density:1.0));
        Test.make ~name:"sta_full_update"
          (Staged.stage (fun () ->
               Sta.Timer.invalidate timer;
               Sta.Timer.update timer));
        Test.make ~name:"report_timing_endpoint(n,1)"
          (Staged.stage (fun () ->
               ignore (Sta.Timer.report_timing_endpoint timer ~n:n_failing ~k:1)));
        Test.make ~name:"report_timing(n)"
          (Staged.stage (fun () -> ignore (Sta.Timer.report_timing timer ~n:n_failing)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  Printf.printf "MICRO: per-call wall time of hot kernels (sb18 scale %.2f)\n" !scale;
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/call\n" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Domain-scaling sweep: each parallel hot kernel at 1/2/4 domains.      *)
(* Writes BENCH_parallel.json (schema bench-parallel-v1).                *)

(* ns/op of [f]: one warm-up call, then repeat until ~0.3 s elapsed. *)
let time_ns f =
  f ();
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < 0.3 do
    f ();
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !reps *. 1e9

let scaling () =
  let dname = "sb18" in
  let d = design dname in
  ignore (run_flow dname Tdp.Flow.Vanilla);
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let gx = Array.make (Netlist.Design.num_cells d) 0.0 in
  let gy = Array.make (Netlist.Design.num_cells d) 0.0 in
  let grid = Gp.Densitygrid.create d ~bins_x:64 ~bins_y:64 in
  let electro = Gp.Electro.create grid in
  let n_ep = max 1 (min 64 (Array.length (Sta.Timer.graph timer).Sta.Graph.endpoints)) in
  let kernels =
    [
      ("density.update", Netlist.Design.num_cells d, fun () -> Gp.Densitygrid.update grid d);
      ( "electro.solve",
        64 * 64,
        fun () ->
          Gp.Densitygrid.update grid d;
          Gp.Electro.solve electro ~target_density:1.0 );
      ( "wirelength.grad",
        Netlist.Design.num_nets d,
        fun () ->
          Array.fill gx 0 (Array.length gx) 0.0;
          Array.fill gy 0 (Array.length gy) 0.0;
          ignore (Gp.Wirelength.wa_wirelength_grad d ~gamma:2.0 ~gx ~gy) );
      ( "sta.update",
        Sta.Graph.num_pins (Sta.Timer.graph timer),
        fun () ->
          Sta.Timer.invalidate timer;
          Sta.Timer.update timer );
      ( "extract.endpoints",
        n_ep,
        fun () ->
          ignore (Sta.Timer.report_timing_endpoint timer ~n:n_ep ~k:5 ~failing_only:false) );
    ]
  in
  let sweep = [ 1; 2; 4 ] in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf "SCALING: parallel kernels on %s, host reports %d core(s)\n" dname host_cores;
  let t =
    Util.Tablefmt.create
      ~title:"domain scaling of the parallel hot kernels (speedup vs 1 domain)"
      ~headers:[ "Kernel"; "n"; "Domains"; "ns/op"; "Speedup" ]
      ~aligns:[ Left; Right; Right; Right; Right ]
  in
  let saved = !Util.Parallel.num_domains in
  let results = ref [] in
  List.iter
    (fun (kname, n, f) ->
      let base = ref 0.0 in
      List.iter
        (fun dn ->
          Util.Parallel.set_num_domains dn;
          let ns = time_ns f in
          if dn = 1 then base := ns;
          let speedup = !base /. Float.max 1e-9 ns in
          results := (kname, n, dn, ns, speedup) :: !results;
          Util.Tablefmt.add_row t
            [
              kname;
              string_of_int n;
              string_of_int dn;
              Printf.sprintf "%.0f" ns;
              Printf.sprintf "%.2fx" speedup;
            ])
        sweep)
    kernels;
  Util.Parallel.set_num_domains saved;
  Util.Tablefmt.print t;
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "bench-parallel-v1");
        ("design", Obs.Json.String dname);
        ("scale", Obs.Json.Float !scale);
        ("host_cores", Obs.Json.Int host_cores);
        ( "results",
          Obs.Json.List
            (List.rev_map
               (fun (kname, n, dn, ns, speedup) ->
                 Obs.Json.Obj
                   [
                     ("kernel", Obs.Json.String kname);
                     ("n", Obs.Json.Int n);
                     ("domains", Obs.Json.Int dn);
                     ("ns_per_op", Obs.Json.Float ns);
                     ("speedup", Obs.Json.Float speedup);
                   ])
               !results) );
      ]
  in
  let path = "BENCH_parallel.json" in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %d scaling points to %s\n\n" (List.length !results) path

(* ------------------------------------------------------------------ *)
(* Extension ablations beyond the paper: design decisions DESIGN.md      *)
(* calls out, plus hold / congestion / buffer-candidate side metrics.    *)

let ext () =
  let dnames = [ "sb18"; "sb16"; "sb4" ] in
  (* -- A: stale-pair relaxation and beta (our deviations) -- *)
  let t =
    Util.Tablefmt.create
      ~title:"EXT A: Efficient-TDP variants (TNS x10^3 / WNS x10^3 / HPWL x10^3)"
      ~headers:
        ("Variant"
        :: List.concat_map (fun dn -> [ dn ^ " TNS"; "WNS"; "HPWL" ]) dnames)
      ~aligns:(Left :: List.concat_map (fun _ -> [ Util.Tablefmt.Right; Right; Right ]) dnames)
  in
  let base = Tdp.Config.default in
  let variants =
    [
      ("default (b=.75 decay=.90)", base, Tdp.Flow.flow_topology);
      ("pure Eq.9 (decay=1.0)", { base with stale_decay = 1.0 }, Tdp.Flow.flow_topology);
      ("beta=0.4", { base with beta = 0.4 }, Tdp.Flow.flow_topology);
      ("beta=1.1", { base with beta = 1.1 }, Tdp.Flow.flow_topology);
      ("star wire model in timer", base, Sta.Delay.Star);
    ]
  in
  List.iter
    (fun (vname, cfg, topology) ->
      let row =
        List.concat_map
          (fun dn ->
            Printf.printf "[run] ext %-26s on %s...\n%!" vname dn;
            let r = Tdp.Flow.run ~topology (Tdp.Flow.Efficient cfg) (design dn) in
            [
              f2 (r.metrics.tns /. 1e3);
              f2 (r.metrics.wns /. 1e3);
              f1 (r.metrics.hpwl /. 1e3);
            ])
          dnames
      in
      Util.Tablefmt.add_row t (vname :: row))
    variants;
  Util.Tablefmt.print t;
  print_newline ();
  (* -- B: side metrics per flow on sb1: hold, congestion, buffers -- *)
  let t2 =
    Util.Tablefmt.create
      ~title:"EXT B: side metrics on sb1 (hold THS, RUDY hotspot, buffer candidates)"
      ~headers:
        [ "Method"; "setup TNS"; "hold THS"; "hotspot"; "buf cands"; "max seg"; "buf recovery" ]
      ~aligns:[ Left; Right; Right; Right; Right; Right; Right ]
  in
  (* Mean van-Ginneken-recoverable required time over the nets of the
     worst critical paths: how much slack buffer insertion would have to
     claw back (smaller is better placement). *)
  let buffering_recovery d timer =
    let graph = Sta.Timer.graph timer in
    let paths = Sta.Timer.report_timing_endpoint timer ~n:10 ~k:1 ~failing_only:true in
    let nets = Hashtbl.create 64 in
    List.iter
      (fun (p : Sta.Paths.path) ->
        Array.iter
          (fun a ->
            if graph.Sta.Graph.arc_is_net.(a) then
              Hashtbl.replace nets graph.Sta.Graph.arc_net.(a) ())
          p.arcs)
      paths;
    let recs =
      Hashtbl.fold
        (fun nid () acc ->
          let nsinks = Netlist.Design.net_num_sinks d nid in
          let driver = d.Netlist.Design.net_driver.(nid) in
          let xs = Array.make (nsinks + 1) 0.0 and ys = Array.make (nsinks + 1) 0.0 in
          xs.(0) <- Netlist.Design.pin_x d driver;
          ys.(0) <- Netlist.Design.pin_y d driver;
          for k = 0 to nsinks - 1 do
            let pid = Netlist.Design.net_sink d nid k in
            xs.(k + 1) <- Netlist.Design.pin_x d pid;
            ys.(k + 1) <- Netlist.Design.pin_y d pid
          done;
          let tree = Rctree.Steiner.steiner ~xs ~ys in
          let drive_res, _, _ = Sta.Delay.driver_params d driver in
          let res =
            Rctree.Buffering.estimate tree ~r:d.Netlist.Design.r_per_unit
              ~c:d.Netlist.Design.c_per_unit ~drive_res
              ~term_req:(fun _ -> 0.0)
              ~term_cap:(fun k -> d.Netlist.Design.pin_cap.{Netlist.Design.net_sink d nid (k - 1)})
              ()
          in
          (res.Rctree.Buffering.best_q -. res.Rctree.Buffering.unbuffered_q) :: acc)
        nets []
    in
    if recs = [] then 0.0 else Util.Stats.mean (Array.of_list recs)
  in
  let d = design "sb1" in
  List.iter
    (fun meth ->
      Printf.printf "[run] ext-b %-18s on sb1...\n%!" (Tdp.Flow.method_name meth);
      let r = Tdp.Flow.run meth d in
      let timer = Sta.Timer.create d in
      Sta.Timer.update timer;
      let cong = Gp.Congestion.create d ~bins_x:32 ~bins_y:32 in
      Gp.Congestion.update cong d;
      let ws = Evalkit.Wire_stats.of_critical_paths d ~n:30 in
      Util.Tablefmt.add_row t2
        [
          r.name;
          f1 r.metrics.tns;
          f1 (Sta.Timer.ths timer);
          f2 (Gp.Congestion.hotspot_factor cong);
          string_of_int ws.Evalkit.Wire_stats.buffer_candidates;
          f1 ws.Evalkit.Wire_stats.max_length;
          f1 (buffering_recovery d timer);
        ])
    [ Tdp.Flow.Vanilla; Tdp.Flow.Dp4; Tdp.Flow.Efficient Tdp.Config.default ];
  Util.Tablefmt.print t2;
  print_newline ();
  (* -- C: timing-aware detailed placement as a post-pass -- *)
  let t3 =
    Util.Tablefmt.create
      ~title:"EXT C: refinement post-passes (greedy: TNS-only; SA: TNS + 0.2*HPWL cost)"
      ~headers:
        [ "Design"; "TNS start"; "greedy TNS"; "swaps"; "SA TNS"; "SA accepts" ]
      ~aligns:[ Left; Right; Right; Right; Right; Right ]
  in
  List.iter
    (fun dn ->
      Printf.printf "[run] ext-c refinement on %s...\n%!" dn;
      let d = design dn in
      ignore (Tdp.Flow.run (Tdp.Flow.Efficient Tdp.Config.default) d);
      let snap = Netlist.Design.snapshot d in
      let s = Tdp.Timing_dp.run ~max_endpoints:30 d in
      Netlist.Design.restore d snap;
      let sa = Tdp.Sa_refine.run ~moves:3000 d in
      Util.Tablefmt.add_row t3
        [
          dn;
          f1 s.Tdp.Timing_dp.tns_before;
          f1 s.Tdp.Timing_dp.tns_after;
          string_of_int s.Tdp.Timing_dp.accepted;
          f1 sa.Tdp.Sa_refine.tns_after;
          string_of_int sa.Tdp.Sa_refine.accepted;
        ])
    dnames;
  Util.Tablefmt.print t3;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Multi-seed statistics (optional section "stats", not in the default    *)
(* run): Table II's headline comparison across 3 placement seeds, with    *)
(* mean and spread — quantifies the run-to-run noise EXPERIMENTS.md       *)
(* cautions about.                                                        *)

let stats_section () =
  let seeds = [ 1; 2; 3 ] in
  let dnames = [ "sb18"; "sb16"; "sb4"; "sb1" ] in
  let methods =
    [ Tdp.Flow.Vanilla; Tdp.Flow.Dp4; Tdp.Flow.Efficient Tdp.Config.default ]
  in
  let t =
    Util.Tablefmt.create
      ~title:"STATS: TNS (x10^3 ps) as mean +- std over 3 placement seeds"
      ~headers:("Benchmark" :: List.map Tdp.Flow.method_name methods)
      ~aligns:(Left :: List.map (fun _ -> Util.Tablefmt.Right) methods)
  in
  let wins = ref 0 and total = ref 0 in
  List.iter
    (fun dn ->
      let d = design dn in
      let cells =
        List.map
          (fun m ->
            let tnss =
              List.map
                (fun seed ->
                  Printf.printf "[run] stats %-18s on %s seed %d...\n%!"
                    (Tdp.Flow.method_name m) dn seed;
                  let r = Tdp.Flow.run ~seed m d in
                  r.Tdp.Flow.metrics.Evalkit.Metrics.tns)
                seeds
            in
            Array.of_list tnss)
          methods
      in
      (* Per-seed win count for Efficient-TDP against the best baseline. *)
      List.iteri
        (fun si _ ->
          incr total;
          let ours = (List.nth cells 2).(si) in
          let best_other = Float.max (List.nth cells 0).(si) (List.nth cells 1).(si) in
          if ours >= best_other then incr wins)
        seeds;
      Util.Tablefmt.add_row t
        (dn
        :: List.map
             (fun a ->
               Printf.sprintf "%.2f +- %.2f" (Util.Stats.mean a /. 1e3)
                 (Util.Stats.stddev a /. 1e3))
             cells))
    dnames;
  Util.Tablefmt.print t;
  Printf.printf "Efficient-TDP best or tied in %d/%d (design, seed) pairs\n\n" !wins !total

(* ------------------------------------------------------------------ *)
(* Spectral engine sweep: the packed real-even plan engine vs the seed
   per-line complex-FFT path, per-solve wall time and minor-heap
   allocation over a grid ladder (square and non-square), plus a
   flow-level density-phase A/B. Emits gateable bench-results-v1 entries
   (design "spectral<rows>x<cols>", labels "plan"/"seed") with fixed rep
   counts so the recorded runtime is deterministic work, not a clock
   budget. *)

let spectral () =
  let all_grids =
    [
      (128, 128);
      (256, 256);
      (512, 512);
      (1024, 1024);
      (2048, 2048);
      (512, 128);
      (128, 512);
    ]
  in
  let grids = List.filter (fun (r, c) -> max r c <= !grid_max) all_grids in
  let skipped = List.length all_grids - List.length grids in
  if skipped > 0 then
    Printf.printf "[spectral] --grid-max %d: %d grid(s) skipped\n" !grid_max skipped;
  let t =
    Util.Tablefmt.create
      ~title:"SPECTRAL: Poisson solve+field+energy, plan engine vs seed complex-FFT path"
      ~headers:
        [ "Grid"; "Reps"; "Plan ms"; "Seed ms"; "Speedup"; "Plan w/solve"; "Seed w/solve" ]
      ~aligns:[ Left; Right; Right; Right; Right; Right; Right ]
  in
  let rng = Util.Rng.create 42 in
  List.iter
    (fun (rows, cols) ->
      let n = rows * cols in
      Printf.printf "[run] spectral %dx%d...\n%!" rows cols;
      let p = Numerics.Poisson.create ~rows ~cols in
      let rho = Array.init n (fun _ -> Util.Rng.float_range rng (-1.0) 1.0) in
      let psi = Array.make n 0.0 in
      let ex = Array.make n 0.0 and ey = Array.make n 0.0 in
      (* Fixed work per grid (~2^24 points swept) so runtimes are
         comparable across runs and big grids stay affordable. *)
      let reps = max 4 ((1 lsl 24) / n) in
      let measure use_seed =
        Numerics.Poisson.use_seed_engine := use_seed;
        for _ = 1 to 2 do
          Numerics.Poisson.solve_into p ~rho ~psi;
          Numerics.Poisson.field_into p ~psi ~ex ~ey;
          ignore (Numerics.Poisson.energy rho psi)
        done;
        let w0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          Numerics.Poisson.solve_into p ~rho ~psi;
          Numerics.Poisson.field_into p ~psi ~ex ~ey;
          ignore (Numerics.Poisson.energy rho psi)
        done;
        let dt = Unix.gettimeofday () -. t0 in
        let dw = Gc.minor_words () -. w0 in
        (dt, dw)
      in
      let plan_s, plan_w = measure false in
      let seed_s, seed_w = measure true in
      Numerics.Poisson.use_seed_engine := false;
      let fr = float_of_int reps in
      Util.Tablefmt.add_row t
        [
          Printf.sprintf "%dx%d" rows cols;
          string_of_int reps;
          Printf.sprintf "%.3f" (plan_s /. fr *. 1e3);
          Printf.sprintf "%.3f" (seed_s /. fr *. 1e3);
          Printf.sprintf "%.2fx" (seed_s /. Float.max 1e-9 plan_s);
          Printf.sprintf "%.0f" (plan_w /. fr);
          Printf.sprintf "%.0f" (seed_w /. fr);
        ];
      let entry label dt dw =
        Obs.Json.Obj
          [
            ("label", Obs.Json.String label);
            ("name", Obs.Json.String label);
            ("design", Obs.Json.String (Printf.sprintf "spectral%dx%d" rows cols));
            ("reps", Obs.Json.Int reps);
            ("runtime", Obs.Json.Float dt);
            ( "resource",
              Obs.Json.Obj
                [
                  ("minor_words", Obs.Json.Float dw);
                  ("ms_per_solve", Obs.Json.Float (dt /. fr *. 1e3));
                  ("words_per_solve", Obs.Json.Float (dw /. fr));
                ] );
          ]
      in
      extra_entries := entry "seed" seed_s seed_w :: entry "plan" plan_s plan_w :: !extra_entries)
    grids;
  Util.Tablefmt.print t;
  print_newline ();
  (* Flow-level A/B: the same Efficient-TDP flow with the density phase
     on each engine; the "density" self time is the electro phase the
     acceptance bar measures. Distinct cache keys so both land in the
     [--json] dump as separate gateable entries. *)
  let dname = "sb1" in
  let plan_r = run_flow dname (Tdp.Flow.Efficient Tdp.Config.default) in
  Numerics.Poisson.use_seed_engine := true;
  let seed_r =
    Fun.protect
      ~finally:(fun () -> Numerics.Poisson.use_seed_engine := false)
      (fun () ->
        run_flow_err ~key_label:"spectral:seed-engine" dname (Tdp.Flow.Efficient Tdp.Config.default))
  in
  match (plan_r, seed_r) with
  | Ok plan, Ok seed ->
      let density (r : Tdp.Flow.result) =
        try List.assoc "density" r.breakdown_self with Not_found -> 0.0
      in
      Printf.printf
        "flow-level electro phase (density self-time) on %s: plan %.3fs, seed %.3fs (%.2fx)\n\n"
        dname (density plan) (density seed)
        (density seed /. Float.max 1e-9 (density plan))
  | _ -> Printf.printf "flow-level A/B on %s skipped: a flow failed\n\n" dname

(* ------------------------------------------------------------------ *)
(* Scale: the SoA database on the 100k+ cell ladder. Per rung: design
   generation time, memory footprint (words/cell), per-iteration time and
   minor-heap allocation of the wirelength and density kernels, and an
   AoS record-layout mirror of both inner loops — the seed's boxed
   cell/pin/net records reconstructed — quantifying what the flat layout
   bought. The largest rung also runs one full vanilla GP for the
   per-phase self-time breakdown and peak RSS. [--cells-max] bounds the
   ladder (default 100k; pass 500000/1000000 for the big rungs). JSON
   entries (design "scale<N>k", labels wl-soa/density-soa/wl-aos/
   density-aos/gp) gate in bin/bench_diff. *)

module Aos = struct
  (* The pre-SoA record layout, reconstructed for measurement only: one
     boxed record per cell/pin/net; mixed int/float records box every
     float field, and each pin position costs two pointer hops. *)
  type cell = { id : int; mutable x : float; mutable y : float; w : float; h : float }

  type pin = { owner : int; off_x : float; off_y : float }

  type net = { pins : int array; weight : float }

  type t = { cells : cell array; pins : pin array; nets : net array; die : Geom.Rect.t }

  let of_design (d : Netlist.Design.t) =
    let open Netlist in
    {
      cells =
        Array.init (Design.num_cells d) (fun i ->
            { id = i; x = d.Design.x.{i}; y = d.Design.y.{i}; w = d.Design.w.{i}; h = d.Design.h.{i} });
      pins =
        Array.init (Design.num_pins d) (fun p ->
            {
              owner = d.Design.pin_owner.(p);
              off_x = d.Design.pin_off_x.{p};
              off_y = d.Design.pin_off_y.{p};
            });
      nets =
        Array.init (Design.num_nets d) (fun n ->
            { pins = Design.net_pins d n; weight = d.Design.net_weight.{n} });
      die = d.Design.die;
    }

  (* Same WA math and scratch as Gp.Wirelength.wa_one_dim; only the data
     layout differs. *)
  let wa_one_dim t (net : net) ~x_dim ~gamma ~xs ~ea ~eb ~(grad : float array) =
    let n = Array.length net.pins in
    if n <= 1 then 0.0
    else begin
      let xmax = ref Float.neg_infinity and xmin = ref Float.infinity in
      for i = 0 to n - 1 do
        let p = t.pins.(net.pins.(i)) in
        let c = t.cells.(p.owner) in
        let v = if x_dim then c.x +. p.off_x else c.y +. p.off_y in
        xs.(i) <- v;
        if v > !xmax then xmax := v;
        if v < !xmin then xmin := v
      done;
      let xmax = !xmax and xmin = !xmin in
      let s_max = ref 0.0 and t_max = ref 0.0 in
      let s_min = ref 0.0 and t_min = ref 0.0 in
      for i = 0 to n - 1 do
        let a = exp ((xs.(i) -. xmax) /. gamma) in
        let b = exp ((xmin -. xs.(i)) /. gamma) in
        ea.(i) <- a;
        eb.(i) <- b;
        s_max := !s_max +. a;
        t_max := !t_max +. (xs.(i) *. a);
        s_min := !s_min +. b;
        t_min := !t_min +. (xs.(i) *. b)
      done;
      let wa_max = !t_max /. !s_max and wa_min = !t_min /. !s_min in
      for i = 0 to n - 1 do
        let gmax = ea.(i) *. (1.0 +. ((xs.(i) -. wa_max) /. gamma)) /. !s_max in
        let gmin = eb.(i) *. (1.0 -. ((xs.(i) -. wa_min) /. gamma)) /. !s_min in
        let cell = t.pins.(net.pins.(i)).owner in
        grad.(cell) <- grad.(cell) +. (net.weight *. (gmax -. gmin))
      done;
      wa_max -. wa_min
    end

  let wa_grad t ~gamma ~xs ~ea ~eb ~gx ~gy =
    let total = ref 0.0 in
    Array.iter
      (fun net ->
        let ex = wa_one_dim t net ~x_dim:true ~gamma ~xs ~ea ~eb ~grad:gx in
        let ey = wa_one_dim t net ~x_dim:false ~gamma ~xs ~ea ~eb ~grad:gy in
        total := !total +. (net.weight *. (ex +. ey)))
      t.nets;
    !total

  (* Density binning, same inflation rule as Gp.Densitygrid.deposit. *)
  let density_update t ~bins_x ~bins_y ~bin_w ~bin_h ~movable (acc : float array) =
    Array.fill acc 0 (Array.length acc) 0.0;
    let die = t.die in
    let inflate size bin = if size < bin then (bin, size /. bin) else (size, 1.0) in
    Array.iter
      (fun (c : cell) ->
        if Bytes.get movable c.id = '\001' then begin
          let ew, sx = inflate c.w bin_w in
          let eh, sy = inflate c.h bin_h in
          let scale = sx *. sy in
          let xl = c.x -. (ew /. 2.0) and xh = c.x +. (ew /. 2.0) in
          let yl = c.y -. (eh /. 2.0) and yh = c.y +. (eh /. 2.0) in
          let bxl = max 0 (int_of_float (floor ((xl -. die.Geom.Rect.xl) /. bin_w))) in
          let bxh = min (bins_x - 1) (int_of_float (floor ((xh -. die.Geom.Rect.xl) /. bin_w))) in
          let byl = max 0 (int_of_float (floor ((yl -. die.Geom.Rect.yl) /. bin_h))) in
          let byh = min (bins_y - 1) (int_of_float (floor ((yh -. die.Geom.Rect.yl) /. bin_h))) in
          for by = byl to byh do
            let b_yl = die.Geom.Rect.yl +. (float_of_int by *. bin_h) in
            let oy = Float.min yh (b_yl +. bin_h) -. Float.max yl b_yl in
            if oy > 0.0 then
              for bx = bxl to bxh do
                let b_xl = die.Geom.Rect.xl +. (float_of_int bx *. bin_w) in
                let ox = Float.min xh (b_xl +. bin_w) -. Float.max xl b_xl in
                if ox > 0.0 then
                  acc.((by * bins_x) + bx) <- acc.((by * bins_x) + bx) +. (ox *. oy *. scale)
              done
          done
        end)
      t.cells
end

let cells_max = ref 100_000

let scale_section () =
  let ladder = List.filter (fun c -> c <= !cells_max) [ 20_000; 100_000; 500_000; 1_000_000 ] in
  let t =
    Util.Tablefmt.create
      ~title:
        "SCALE: SoA database ladder (per-iteration kernel ms / minor words; AoS = record layout)"
      ~headers:
        [
          "Cells"; "Gen s"; "MiB"; "w/cell"; "WL ms"; "WL w"; "Dens ms"; "Dens w"; "AoS WL ms";
          "AoS Dens ms"; "WL x"; "Dens x";
        ]
      ~aligns:[ Right; Right; Right; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
  in
  let entry ~design ~label ~runtime ~reps ~minor_words extra =
    Obs.Json.Obj
      [
        ("label", Obs.Json.String label);
        ("name", Obs.Json.String label);
        ("design", Obs.Json.String design);
        ("reps", Obs.Json.Int reps);
        ("runtime", Obs.Json.Float runtime);
        ( "resource",
          Obs.Json.Obj
            (("minor_words", Obs.Json.Float minor_words)
            :: ("ms_per_iter", Obs.Json.Float (runtime /. float_of_int reps *. 1e3))
            :: extra) );
      ]
  in
  List.iter
    (fun cells ->
      Printf.printf "[gen] scale ladder %d cells...\n%!" cells;
      let t0 = Unix.gettimeofday () in
      let d = Workloads.Suite.load_sized ~cells () in
      let gen_s = Unix.gettimeofday () -. t0 in
      let dname = Printf.sprintf "scale%dk" (cells / 1000) in
      let fp = Netlist.Design.footprint d in
      let words_per_cell =
        float_of_int fp.Netlist.Design.total_bytes /. 8.0
        /. float_of_int (Netlist.Design.num_cells d)
      in
      let nc = Netlist.Design.num_cells d in
      let reps = max 3 (3_000_000 / cells) in
      let fr = float_of_int reps in
      (* Interleaved best-of-reps for an (SoA, AoS) kernel pair: the two
         alternate within every rep, so scheduler/frequency noise from the
         shared box hits both equally and the speedup ratio stays stable;
         minima discard the noisy reps entirely (means swung 2x run to
         run). Word counts carry a few words of harness overhead from the
         boxed [Gc.minor_words]/[gettimeofday] results. *)
      let measure2 f g =
        f ();
        g ();
        (* warm-up: scratch growth, first-touch *)
        let bf = ref Float.infinity and bg = ref Float.infinity in
        let wf = ref 0.0 and wg = ref 0.0 in
        for _ = 1 to reps do
          let t0 = Unix.gettimeofday () in
          let w0 = Gc.minor_words () in
          f ();
          let w1 = Gc.minor_words () in
          let t1 = Unix.gettimeofday () in
          let w2 = Gc.minor_words () in
          g ();
          let w3 = Gc.minor_words () in
          let t2 = Unix.gettimeofday () in
          if t1 -. t0 < !bf then bf := t1 -. t0;
          if t2 -. t1 < !bg then bg := t2 -. t1;
          wf := !wf +. (w1 -. w0);
          wg := !wg +. (w3 -. w2)
        done;
        ((!bf *. fr, !wf /. fr), (!bg *. fr, !wg /. fr))
      in
      (* SoA kernels exactly as the Nesterov loop drives them; the AoS
         mirror (same math, boxed record layout) is built up front so each
         pair can be measured interleaved. *)
      let ws = Gp.Wirelength.make_ws d in
      let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
      let nmov = Netlist.Design.num_movable d in
      let bins =
        let rec pow2 v = if v >= 256 || v * v >= nmov then v else pow2 (2 * v) in
        max 16 (pow2 16)
      in
      let grid = Gp.Densitygrid.create d ~bins_x:bins ~bins_y:bins in
      let a = Aos.of_design d in
      let max_deg =
        let m = ref 1 in
        for n = 0 to Netlist.Design.num_nets d - 1 do
          m := max !m (Netlist.Design.net_degree d n)
        done;
        !m
      in
      let axs = Array.make max_deg 0.0 in
      let aea = Array.make max_deg 0.0 in
      let aeb = Array.make max_deg 0.0 in
      let (wl_s, wl_w), (aos_wl_s, aos_wl_w) =
        measure2
          (fun () ->
            Array.fill gx 0 nc 0.0;
            Array.fill gy 0 nc 0.0;
            ignore (Gp.Wirelength.wa_wirelength_grad_ws ws d ~gamma:4.0 ~gx ~gy))
          (fun () ->
            Array.fill gx 0 nc 0.0;
            Array.fill gy 0 nc 0.0;
            ignore (Aos.wa_grad a ~gamma:4.0 ~xs:axs ~ea:aea ~eb:aeb ~gx ~gy))
      in
      let acc = Array.make (bins * bins) 0.0 in
      let (dens_s, dens_w), (aos_dens_s, aos_dens_w) =
        measure2
          (fun () -> Gp.Densitygrid.update grid d)
          (fun () ->
            Aos.density_update a ~bins_x:bins ~bins_y:bins ~bin_w:grid.Gp.Densitygrid.bin_w
              ~bin_h:grid.Gp.Densitygrid.bin_h ~movable:d.Netlist.Design.movable acc)
      in
      let rss = float_of_int (Obs.Resource.peak_rss_bytes ()) in
      Util.Tablefmt.add_row t
        [
          string_of_int cells;
          Printf.sprintf "%.1f" gen_s;
          Printf.sprintf "%.1f" (float_of_int fp.Netlist.Design.total_bytes /. 1048576.0);
          Printf.sprintf "%.1f" words_per_cell;
          Printf.sprintf "%.1f" (wl_s /. fr *. 1e3);
          Printf.sprintf "%.0f" wl_w;
          Printf.sprintf "%.1f" (dens_s /. fr *. 1e3);
          Printf.sprintf "%.0f" dens_w;
          Printf.sprintf "%.1f" (aos_wl_s /. fr *. 1e3);
          Printf.sprintf "%.1f" (aos_dens_s /. fr *. 1e3);
          Printf.sprintf "%.2fx" (aos_wl_s /. Float.max 1e-9 wl_s);
          Printf.sprintf "%.2fx" (aos_dens_s /. Float.max 1e-9 dens_s);
        ];
      let common =
        [
          ("peak_rss_bytes", Obs.Json.Float rss);
          ("words_per_cell", Obs.Json.Float words_per_cell);
        ]
      in
      extra_entries :=
        entry ~design:dname ~label:"wl-soa" ~runtime:wl_s ~reps ~minor_words:wl_w common
        :: entry ~design:dname ~label:"density-soa" ~runtime:dens_s ~reps ~minor_words:dens_w
             common
        :: entry ~design:dname ~label:"wl-aos" ~runtime:aos_wl_s ~reps ~minor_words:aos_wl_w []
        :: entry ~design:dname ~label:"density-aos" ~runtime:aos_dens_s ~reps
             ~minor_words:aos_dens_w []
        :: !extra_entries;
      ignore aos_dens_w)
    ladder;
  Util.Tablefmt.print t;
  print_newline ();
  (* Full vanilla GP on the largest rung: per-phase self times, end-to-end
     wall time, peak RSS — the "place a big design" smoke the CI job
     gates. *)
  match List.rev ladder with
  | [] -> Printf.printf "[scale] ladder empty (--cells-max too small)\n"
  | cells :: _ ->
      let d = Workloads.Suite.load_sized ~cells () in
      let dname = Printf.sprintf "scale%dk" (cells / 1000) in
      Printf.printf "[run] vanilla GP on %s...\n%!" dname;
      let agg = Obs.Agg.create () in
      let ctx = Obs.Ctx.create ~sinks:[ Obs.Agg.sink agg ] () in
      let before = Obs.Resource.sample () in
      let t0 = Unix.gettimeofday () in
      let r = Gp.Globalplace.run ~obs:ctx d in
      let gp_s = Unix.gettimeofday () -. t0 in
      let delta = Obs.Resource.delta ~before ~after:(Obs.Resource.sample ()) in
      Obs.Ctx.close ctx;
      Printf.printf "%s: %d iters, %.1fs, final hpwl %.3e, overflow %.3f\n" dname
        r.Gp.Globalplace.iters gp_s r.Gp.Globalplace.final_hpwl r.Gp.Globalplace.final_overflow;
      Printf.printf "  peak RSS %.0f MiB, %.1fM minor words\n"
        (float_of_int delta.Obs.Resource.peak_rss_bytes /. 1048576.0)
        (delta.Obs.Resource.d_minor_words /. 1e6);
      let self = Obs.Agg.to_self_breakdown agg in
      List.iter
        (fun (n, s) -> if s > 0.01 then Printf.printf "  %-16s %8.3f s self\n" n s)
        self;
      print_newline ();
      extra_entries :=
        Obs.Json.Obj
          [
            ("label", Obs.Json.String "gp");
            ("name", Obs.Json.String "gp");
            ("design", Obs.Json.String dname);
            ("runtime", Obs.Json.Float gp_s);
            ( "resource",
              Obs.Json.Obj
                [
                  ( "peak_rss_bytes",
                    Obs.Json.Float (float_of_int delta.Obs.Resource.peak_rss_bytes) );
                  ("minor_words", Obs.Json.Float delta.Obs.Resource.d_minor_words);
                ] );
            ( "breakdown_self",
              Obs.Json.Obj (List.map (fun (n, s) -> (n, Obs.Json.Float s)) self) );
          ]
        :: !extra_entries

(* ------------------------------------------------------------------ *)
(* Formats: streaming-parser throughput over the sized ladder. Each rung
   serializes a generated design to Bookshelf and LEF/DEF on disk and
   times one cold reparse — MB/s over the on-disk byte count plus minor
   words per cell, the allocation-discipline number the CI sentinel
   gates (a per-line string or per-record boxing regression multiplies
   it). Files are deleted rung by rung so the 1M-cell run stays inside
   a few hundred MB of scratch. *)

let formats_section () =
  let ladder = List.filter (fun c -> c <= !cells_max) [ 20_000; 100_000; 500_000; 1_000_000 ] in
  let t =
    Util.Tablefmt.create ~title:"FORMATS: cold single-pass parse of serialized designs"
      ~headers:[ "Cells"; "Fmt"; "MiB"; "Write s"; "Parse s"; "MB/s"; "w/cell"; "RSS MiB" ]
      ~aligns:[ Right; Left; Right; Right; Right; Right; Right; Right ]
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "etdp_bench_formats_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun cells ->
      Printf.printf "[gen] formats ladder %d cells...\n%!" cells;
      let dname = Printf.sprintf "scale%dk" (cells / 1000) in
      (* Serialize both file sets up front, then let the generated design
         die and compact: the timed reparse must see a quiet heap, not
         the generator's garbage (major-slice marking of a 500k-cell
         live design was 4x'ing the measured parse time). *)
      let want_cells, write_s_bs, write_s_def =
        let d = Workloads.Suite.load_sized ~cells () in
        let t0 = Unix.gettimeofday () in
        ignore (Formats.Bookshelf.write ~dir ~stem:"fmt" d);
        let t1 = Unix.gettimeofday () in
        Formats.Lefdef.write
          ~lef_path:(Filename.concat dir "fmt.lef")
          ~def_path:(Filename.concat dir "fmt.def")
          d;
        (Netlist.Design.num_cells d, t1 -. t0, Unix.gettimeofday () -. t1)
      in
      let fcells = float_of_int want_cells in
      let rung label write_s files parse =
        let files = List.filter Sys.file_exists files in
        let bytes =
          List.fold_left (fun a f -> a + (Unix.stat f).Unix.st_size) 0 files |> float_of_int
        in
        Gc.compact ();
        let w0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        let d' : Netlist.Design.t = parse () in
        let parse_s = Unix.gettimeofday () -. t0 in
        let words = Gc.minor_words () -. w0 in
        if Netlist.Design.num_cells d' <> want_cells then
          failwith (label ^ ": reparse lost cells");
        List.iter Sys.remove files;
        let rss = float_of_int (Obs.Resource.peak_rss_bytes ()) in
        let mb_per_s = bytes /. 1048576.0 /. Float.max 1e-9 parse_s in
        Util.Tablefmt.add_row t
          [
            string_of_int cells;
            label;
            Printf.sprintf "%.1f" (bytes /. 1048576.0);
            Printf.sprintf "%.2f" write_s;
            Printf.sprintf "%.2f" parse_s;
            Printf.sprintf "%.1f" mb_per_s;
            Printf.sprintf "%.1f" (words /. fcells);
            Printf.sprintf "%.0f" (rss /. 1048576.0);
          ];
        extra_entries :=
          Obs.Json.Obj
            [
              ("label", Obs.Json.String label);
              ("name", Obs.Json.String label);
              ("design", Obs.Json.String dname);
              ("runtime", Obs.Json.Float parse_s);
              ( "resource",
                Obs.Json.Obj
                  [
                    ("minor_words", Obs.Json.Float words);
                    ("words_per_cell", Obs.Json.Float (words /. fcells));
                    ("mb_per_s", Obs.Json.Float mb_per_s);
                    ("bytes", Obs.Json.Float bytes);
                    ("peak_rss_bytes", Obs.Json.Float rss);
                  ] );
            ]
          :: !extra_entries
      in
      let at ext = Filename.concat dir ("fmt" ^ ext) in
      rung "bs-parse" write_s_bs
        (List.map at [ ".aux"; ".nodes"; ".nets"; ".pl"; ".scl"; ".cells" ])
        (fun () -> Formats.Bookshelf.read_aux (at ".aux"));
      rung "def-parse" write_s_def
        [ at ".lef"; at ".def" ]
        (fun () -> Formats.Lefdef.read_def ~lef:(Formats.Lefdef.read_lef (at ".lef")) (at ".def")))
    ladder;
  (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ());
  Util.Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Smoke sweep: the regression sentinel's CI workload — two designs x two
   methods, small enough for a PR gate. Deliberately not part of "all";
   pair with [--json] and [bin/bench_diff] against the committed
   goldens/bench_baseline.json. *)

let smoke () =
  let dnames = [ "sb1"; "sb4" ] in
  let methods = [ Tdp.Flow.Vanilla; Tdp.Flow.Efficient Tdp.Config.default ] in
  let t =
    Util.Tablefmt.create
      ~title:"SMOKE: sentinel sweep (TNS x10^3 ps, WNS x10^3 ps, HPWL x10^3, sec)"
      ~headers:[ "Benchmark"; "Method"; "TNS"; "WNS"; "HPWL"; "Runtime" ]
      ~aligns:[ Left; Left; Right; Right; Right; Right ]
  in
  List.iter
    (fun dn ->
      List.iter
        (fun m ->
          match run_flow dn m with
          | Ok (r : Tdp.Flow.result) ->
              Util.Tablefmt.add_row t
                [
                  dn;
                  r.name;
                  f2 (r.metrics.tns /. 1e3);
                  f2 (r.metrics.wns /. 1e3);
                  f1 (r.metrics.hpwl /. 1e3);
                  f2 r.runtime;
                ]
          | Error e ->
              Util.Tablefmt.add_row t
                [ dn; Tdp.Flow.method_name m; "-"; "-"; "-"; Util.Errors.kind e ])
        methods)
    dnames;
  Util.Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* SERVICE: the placement daemon's request engine — the exact dispatch
   path bin/placed serves, driven in process. Measures light-job
   protocol overhead (jobs/sec, latency percentiles over report_timing
   requests against the warm timer) and the incremental path: a warm
   [replace] after a 1% random ECO against the from-scratch [place] of
   the same session. Emits gateable bench-results-v1 entries:
     svc-place    cold place runtime through the engine
     svc-replace  warm replace runtime (resource.speedup_x vs svc-place)
     svc-jobs     total seconds for the report_timing batch
                  (resource.jobs_per_s, p50/p95/p99 ms)                  *)

let service_section () =
  let dname = "sb1" in
  let engine = Service.Engine.create () in
  let req op params = { Service.Protocol.id = "bench"; op; params = Obs.Json.Obj params } in
  let run what r =
    let reply = Service.Engine.handle engine r in
    match Obs.Json.member "ok" reply with
    | Some (Obs.Json.Bool true) -> reply
    | _ -> failwith (Printf.sprintf "service bench %s: %s" what (Obs.Json.to_string reply))
  in
  let timed what r =
    let t0 = Unix.gettimeofday () in
    let reply = run what r in
    (Unix.gettimeofday () -. t0, reply)
  in
  Printf.printf "[service] engine session on %s (scale %.2f)...\n%!" dname !scale;
  ignore
    (run "load"
       (req "load"
          [
            ("suite", Obs.Json.String dname);
            ("name", Obs.Json.String dname);
            ("scale", Obs.Json.Float !scale);
          ]));
  let place_params extra =
    ("design", Obs.Json.String dname)
    :: ("flow", Obs.Json.String "efficient")
    :: ("seed", Obs.Json.Int 1)
    :: extra
  in
  let cold_s, _ = timed "place" (req "place" (place_params [])) in
  let warm_s, _ =
    timed "replace" (req "replace" (place_params [ ("random_frac", Obs.Json.Float 0.01) ]))
  in
  (* Light-job latency: timing queries against the session's warm timer. *)
  let jobs_n = 64 in
  let lat = Array.make jobs_n 0.0 in
  let batch_t0 = Unix.gettimeofday () in
  for i = 0 to jobs_n - 1 do
    let dt, _ =
      timed "report_timing"
        (req "report_timing" [ ("design", Obs.Json.String dname); ("n", Obs.Json.Int 5) ])
    in
    lat.(i) <- dt
  done;
  let batch_s = Unix.gettimeofday () -. batch_t0 in
  Array.sort compare lat;
  let pct q = lat.(min (jobs_n - 1) (int_of_float (Float.ceil (q *. float_of_int jobs_n)) - 1)) in
  let jobs_per_s = float_of_int jobs_n /. Float.max 1e-9 batch_s in
  let speedup = cold_s /. Float.max 1e-9 warm_s in
  let t =
    Util.Tablefmt.create ~title:"SERVICE: daemon engine (placement-as-a-service)"
      ~headers:[ "Job"; "Count"; "Total s"; "p50 ms"; "p95 ms"; "p99 ms"; "jobs/s" ]
      ~aligns:[ Left; Right; Right; Right; Right; Right; Right ]
  in
  Util.Tablefmt.add_row t [ "place (cold)"; "1"; f2 cold_s; "-"; "-"; "-"; "-" ];
  Util.Tablefmt.add_row t
    [ "replace (warm)"; "1"; f2 warm_s; "-"; "-"; "-"; Printf.sprintf "%.1fx faster" speedup ];
  Util.Tablefmt.add_row t
    [
      "report_timing";
      string_of_int jobs_n;
      f2 batch_s;
      f2 (pct 0.5 *. 1e3);
      f2 (pct 0.95 *. 1e3);
      f2 (pct 0.99 *. 1e3);
      f1 jobs_per_s;
    ];
  Util.Tablefmt.print t;
  print_newline ();
  let entry label runtime resource =
    Obs.Json.Obj
      [
        ("label", Obs.Json.String label);
        ("name", Obs.Json.String label);
        ("design", Obs.Json.String dname);
        ("runtime", Obs.Json.Float runtime);
        ("resource", Obs.Json.Obj resource);
      ]
  in
  extra_entries :=
    entry "svc-jobs" batch_s
      [
        ("jobs_per_s", Obs.Json.Float jobs_per_s);
        ("p50_ms", Obs.Json.Float (pct 0.5 *. 1e3));
        ("p95_ms", Obs.Json.Float (pct 0.95 *. 1e3));
        ("p99_ms", Obs.Json.Float (pct 0.99 *. 1e3));
      ]
    :: entry "svc-replace" warm_s [ ("speedup_x", Obs.Json.Float speedup) ]
    :: entry "svc-place" cold_s []
    :: !extra_entries

(* ------------------------------------------------------------------ *)
(* Machine-readable dump of every flow result this invocation ran (the
   BENCH_*.json convention: per-flow runtime, breakdown, tns/wns/hpwl). *)

let dump_json path =
  let entries =
    Hashtbl.fold (fun (dname, label) r acc -> ((dname, label), r) :: acc) flow_results []
    |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
    |> List.map (fun ((dname, label), outcome) ->
           match outcome with
           | Ok r -> (
               match Tdp.Flow.result_to_json r with
               | Obs.Json.Obj fields ->
                   Obs.Json.Obj (("label", Obs.Json.String label) :: fields)
               | j -> j)
           | Error e ->
               (* Failed entry: enough identity to match against a baseline
                  plus the structured typed error. *)
               Obs.Json.Obj
                 [
                   ("label", Obs.Json.String label);
                   ("name", Obs.Json.String label);
                   ("design", Obs.Json.String dname);
                   ( "error",
                     Obs.Json.Obj
                       (("kind", Obs.Json.String (Util.Errors.kind e))
                       :: ("message", Obs.Json.String (Util.Errors.message e))
                       :: List.map
                            (fun (k, v) -> (k, Obs.Json.String v))
                            (Util.Errors.fields e)) );
                 ])
  in
  let entries = entries @ List.rev !extra_entries in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "bench-results-v1");
        ("scale", Obs.Json.Float !scale);
        ("results", Obs.Json.List entries);
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %d flow results to %s\n" (List.length entries) path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse acc = function
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse acc rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse acc rest
    | "-domains" :: v :: rest ->
        domains := int_of_string v;
        parse acc rest
    | "--grid-max" :: v :: rest ->
        grid_max := int_of_string v;
        parse acc rest
    | "--cells-max" :: v :: rest ->
        cells_max := int_of_string v;
        parse acc rest
    | x :: rest -> parse (x :: acc) rest
    | [] -> List.rev acc
  in
  let sections = parse [] args in
  let sections =
    if sections = [] || List.mem "all" sections then
      [
        "table1"; "table2"; "table3"; "table4"; "fig3"; "fig4"; "fig5"; "micro"; "scaling"; "ext";
        "stats";
      ]
    else sections
  in
  Util.Parallel.set_num_domains !domains;
  Obs.Log.info "parallel: %d domain(s)" !Util.Parallel.num_domains;
  let t0 = Unix.gettimeofday () in
  Printf.printf "Efficient-TDP benchmark harness (scale %.2f)\n" !scale;
  Printf.printf "sections: %s\n\n%!" (String.concat " " sections);
  List.iter
    (fun s ->
      try
        match s with
        | "table1" -> table1 ()
        | "table2" -> table2 ()
        | "table3" -> table3 ()
        | "table4" -> table4 ()
        | "fig3" -> fig3 ()
        | "fig4" -> fig4 ()
        | "fig5" -> fig5 ()
        | "micro" -> micro ()
        | "scaling" -> scaling ()
        | "spectral" -> spectral ()
        | "ext" -> ext ()
        | "smoke" -> smoke ()
        | "scale" -> scale_section ()
        | "formats" -> formats_section ()
        | "service" -> service_section ()
        | "stats" -> stats_section ()
        | other -> Printf.printf "unknown section %s (skipped)\n" other
      with Util.Errors.Error e ->
        (* Sections that run flows outside the memoised sweep (fig3, ext,
           stats) can still hit a typed failure; drop the section, keep
           the run. *)
        Printf.printf "[fail] section %s aborted: %s (continuing)\n\n%!" s
          (Util.Errors.message e))
    sections;
  (match !json_out with Some path -> dump_json path | None -> ());
  Printf.printf "total bench wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
