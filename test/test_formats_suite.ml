(* Format gates: bit-exact round trips through Bookshelf and LEF/DEF for
   every suite design, the committed torture fixtures (each must fail
   with Io.Parse_error at its recorded line), the committed golden
   Bookshelf design, the serialize/mutate/reparse fuzz battery and the
   metrics-identity contract (a reparsed design runs the flow to the
   same numbers). *)

open Netlist

let scratch =
  lazy
    (let d =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "etdp_fmt_test_%d" (Unix.getpid ()))
     in
     (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     d)

let bits = Int64.bits_of_float

(* Bit-exact structural equality; fails with the first differing field. *)
let check_design_eq ~ctx (a : Design.t) (b : Design.t) =
  let fail fmt = Alcotest.failf ("%s: " ^^ fmt) ctx in
  let eqf what ia fa fb = if bits fa <> bits fb then fail "%s[%d]: %.17g <> %.17g" what ia fa fb in
  if a.name <> b.name then fail "name %S <> %S" a.name b.name;
  if Design.num_cells a <> Design.num_cells b then
    fail "cells %d <> %d" (Design.num_cells a) (Design.num_cells b);
  if Design.num_pins a <> Design.num_pins b then
    fail "pins %d <> %d" (Design.num_pins a) (Design.num_pins b);
  if Design.num_nets a <> Design.num_nets b then
    fail "nets %d <> %d" (Design.num_nets a) (Design.num_nets b);
  List.iter
    (fun (what, fa, fb) -> eqf what (-1) fa fb)
    [
      ("die.xl", a.die.Geom.Rect.xl, b.die.Geom.Rect.xl);
      ("die.yl", a.die.Geom.Rect.yl, b.die.Geom.Rect.yl);
      ("die.xh", a.die.Geom.Rect.xh, b.die.Geom.Rect.xh);
      ("die.yh", a.die.Geom.Rect.yh, b.die.Geom.Rect.yh);
      ("row_height", a.row_height, b.row_height);
      ("clock_period", a.clock_period, b.clock_period);
      ("input_delay", a.input_delay, b.input_delay);
      ("output_delay", a.output_delay, b.output_delay);
      ("r_per_unit", a.r_per_unit, b.r_per_unit);
      ("c_per_unit", a.c_per_unit, b.c_per_unit);
    ];
  for i = 0 to Design.num_cells a - 1 do
    eqf "x" i a.x.{i} b.x.{i};
    eqf "y" i a.y.{i} b.y.{i};
    eqf "w" i a.w.{i} b.w.{i};
    eqf "h" i a.h.{i} b.h.{i};
    if Design.is_movable a i <> Design.is_movable b i then fail "movable[%d] differs" i;
    if Design.kind a i <> Design.kind b i then fail "kind[%d] differs" i;
    if Design.cell_name a i <> Design.cell_name b i then
      fail "cell_name[%d]: %S <> %S" i (Design.cell_name a i) (Design.cell_name b i)
  done;
  if a.cell_pin_off <> b.cell_pin_off then fail "cell_pin_off differs";
  if a.cell_pin_ids <> b.cell_pin_ids then fail "cell_pin_ids differs";
  for p = 0 to Design.num_pins a - 1 do
    if a.pin_owner.(p) <> b.pin_owner.(p) then fail "pin_owner[%d] differs" p;
    if a.pin_net.(p) <> b.pin_net.(p) then fail "pin_net[%d] differs" p;
    if Design.pin_dir a p <> Design.pin_dir b p then fail "pin_dir[%d] differs" p;
    eqf "pin_off_x" p a.pin_off_x.{p} b.pin_off_x.{p};
    eqf "pin_off_y" p a.pin_off_y.{p} b.pin_off_y.{p};
    eqf "pin_cap" p a.pin_cap.{p} b.pin_cap.{p}
  done;
  (* driver-first CSR adjacency, id for id *)
  if a.net_driver <> b.net_driver then fail "net_driver differs";
  if a.net_pin_off <> b.net_pin_off then fail "net_pin_off differs";
  if a.net_pin_ids <> b.net_pin_ids then fail "net_pin_ids differs";
  for n = 0 to Design.num_nets a - 1 do
    eqf "net_weight" n a.net_weight.{n} b.net_weight.{n};
    if Design.net_name a n <> Design.net_name b n then fail "net_name[%d] differs" n
  done;
  match Design.validate b with
  | [] -> ()
  | e :: _ -> fail "reparsed design fails validate: %s" e

let suite_roundtrip_scale = 0.04

let roundtrip_one ~fmt short =
  let dir = Lazy.force scratch in
  let d = Workloads.Suite.load ~scale:suite_roundtrip_scale ~calibrate:false short in
  let d' =
    match fmt with
    | `Bookshelf ->
        let aux = Formats.Bookshelf.write ~dir ~stem:("rt_" ^ short) d in
        Formats.Bookshelf.read_aux aux
    | `Lefdef ->
        let lef_path = Filename.concat dir ("rt_" ^ short ^ ".lef") in
        let def_path = Filename.concat dir ("rt_" ^ short ^ ".def") in
        Formats.Lefdef.write ~lef_path ~def_path d;
        Formats.Lefdef.read_def ~lef:(Formats.Lefdef.read_lef lef_path) def_path
  in
  check_design_eq ~ctx:(Printf.sprintf "%s/%s" short (match fmt with `Bookshelf -> "bs" | `Lefdef -> "def")) d d'

let roundtrip_all fmt () =
  List.iter
    (fun domains ->
      Helpers.with_domains domains (fun () ->
          List.iter (roundtrip_one ~fmt) (Workloads.Suite.names ())))
    [ 1; 4 ]

(* write_pl emits enough precision that apply_pl restores every movable
   coordinate bit for bit after the placement has been clobbered. *)
let pl_overlay_roundtrip () =
  let d = Workloads.Suite.load ~scale:suite_roundtrip_scale ~calibrate:false "sb1" in
  let pl = Filename.concat (Lazy.force scratch) "rt_overlay.pl" in
  Formats.Bookshelf.write_pl pl d;
  let n = Design.num_cells d in
  let sx = Array.init n (fun i -> d.x.{i}) and sy = Array.init n (fun i -> d.y.{i}) in
  for i = 0 to n - 1 do
    if Design.is_movable d i then begin
      d.x.{i} <- d.die.Geom.Rect.xl;
      d.y.{i} <- d.die.Geom.Rect.yl
    end
  done;
  Formats.Bookshelf.apply_pl d pl;
  for i = 0 to n - 1 do
    if bits d.x.{i} <> bits sx.(i) || bits d.y.{i} <> bits sy.(i) then
      Alcotest.failf "apply_pl: cell %d moved to (%.17g, %.17g), expected (%.17g, %.17g)" i
        d.x.{i} d.y.{i} sx.(i) sy.(i)
  done

(* --- torture fixtures: every committed malformed file must raise
   Io.Parse_error at exactly the recorded line with the recorded
   message fragment. *)

(* dune runtest materializes fixtures/ beside the executable; a manual
   run from the repo root finds the source tree instead. *)
let fixture_path rel =
  if Sys.file_exists rel then rel
  else
    let alt = Filename.concat "test" rel in
    if Sys.file_exists alt then alt
    else Alcotest.failf "fixture %s not found (run from the repo root or via dune runtest)" rel

let bad_dir = lazy (fixture_path "fixtures/formats/bad")

let read_expect path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let tbl = Hashtbl.create 4 in
      (try
         while true do
           let line = input_line ic in
           match String.index_opt line '=' with
           | Some i ->
               Hashtbl.replace tbl
                 (String.sub line 0 i)
                 (String.sub line (i + 1) (String.length line - i - 1))
           | None -> ()
         done
       with End_of_file -> ());
      let get k =
        match Hashtbl.find_opt tbl k with
        | Some v -> v
        | None -> Alcotest.failf "%s: missing %s= field" path k
      in
      (get "entry", int_of_string (get "line"), get "msg"))

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec go i = i + nh <= lh && (String.sub hay i nh = needle || go (i + 1)) in
  nh = 0 || go 0

let torture_cases () =
  let bad_dir = Lazy.force bad_dir in
  let expects =
    Sys.readdir bad_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".expect")
    |> List.sort compare
  in
  if List.length expects < 20 then
    Alcotest.failf "only %d torture fixtures under %s" (List.length expects) bad_dir;
  List.iter
    (fun exp_file ->
      let entry, want_line, want_msg = read_expect (Filename.concat bad_dir exp_file) in
      let path = Filename.concat bad_dir entry in
      let parse () =
        match String.lowercase_ascii (Filename.extension entry) with
        | ".aux" -> ignore (Formats.Bookshelf.read_aux path)
        | ".def" -> ignore (Formats.Lefdef.read_def path)
        | ".lef" -> ignore (Formats.Lefdef.read_lef path)
        | ext -> Alcotest.failf "%s: unknown torture entry extension %S" exp_file ext
      in
      match parse () with
      | () -> Alcotest.failf "%s: parsed cleanly, expected Parse_error" entry
      | exception Io.Parse_error (line, msg) ->
          if line <> want_line then
            Alcotest.failf "%s: Parse_error at line %d (%s), expected line %d" entry line msg
              want_line;
          if not (contains ~needle:want_msg msg) then
            Alcotest.failf "%s: message %S lacks %S" entry msg want_msg
      | exception e ->
          Alcotest.failf "%s: raised %s, expected Parse_error" entry (Printexc.to_string e))
    expects

(* --- the committed golden Bookshelf design *)

let golden_fixture = lazy (fixture_path "fixtures/formats/golden_small/golden_small.aux")

let golden_small_parses () =
  let d = Formats.Bookshelf.read_aux (Lazy.force golden_fixture) in
  Alcotest.(check string) "name" "golden_small" d.name;
  Alcotest.(check int) "cells" 8 (Design.num_cells d);
  Alcotest.(check int) "pins" 13 (Design.num_pins d);
  Alcotest.(check int) "nets" 6 (Design.num_nets d);
  Alcotest.(check (float 0.0)) "clock" 480.0 d.clock_period;
  Alcotest.(check (float 0.0)) "input_delay" 10.0 d.input_delay;
  Alcotest.(check (float 0.0)) "output_delay" 15.0 d.output_delay;
  Alcotest.(check (float 0.0)) "r_per_unit" 0.06 d.r_per_unit;
  Alcotest.(check (float 0.0)) "c_per_unit" 0.5 d.c_per_unit;
  Alcotest.(check (float 0.0)) "die.xh" 10.0 d.die.Geom.Rect.xh;
  Alcotest.(check (float 0.0)) "die.yh" 8.0 d.die.Geom.Rect.yh;
  Alcotest.(check (float 0.0)) "row_height" 1.0 d.row_height;
  let idx name =
    let rec go i =
      if i >= Design.num_cells d then Alcotest.failf "no cell %S" name
      else if Design.cell_name d i = name then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "g1 movable" true (Design.is_movable d (idx "g1"));
  Alcotest.(check bool) "b1 fixed" false (Design.is_movable d (idx "b1"));
  (match Design.kind d (idx "i1") with
  | Design.Input_pad -> ()
  | _ -> Alcotest.fail "i1 should infer as an input pad");
  (match Design.kind d (idx "o1") with
  | Design.Output_pad -> ()
  | _ -> Alcotest.fail "o1 should infer as an output pad");
  Alcotest.(check (list string)) "validate clean" [] (Design.validate d)

(* --- serialize / mutate one byte / reparse battery *)

let fuzz_params =
  {
    Workloads.Genparams.default with
    name = "fmtfuzz";
    seed = 7;
    num_comb = 60;
    num_ff = 10;
    num_inputs = 6;
    num_outputs = 6;
    levels = 4;
    num_macros = 1;
  }

let mutate_reparse_battery () =
  List.iter
    (fun (p : Oracle.Fuzz.prop) ->
      match Oracle.Fuzz.check_params p fuzz_params with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" p.Oracle.Fuzz.name m)
    Oracle.Fuzz.format_props

(* --- metrics identity: a design written to LEF/DEF and reparsed runs
   the whole flow to bit-identical quality metrics. *)

let metrics_identity () =
  Helpers.with_domains 1 (fun () ->
      let dir = Lazy.force scratch in
      let d = Workloads.Suite.load ~scale:0.05 "sb1" in
      let lef_path = Filename.concat dir "mi.lef" and def_path = Filename.concat dir "mi.def" in
      Formats.Lefdef.write ~lef_path ~def_path d;
      let d' = Formats.Lefdef.read_def ~lef:(Formats.Lefdef.read_lef lef_path) def_path in
      let run dd = Tdp.Flow.run ~obs:Obs.Ctx.null (Tdp.Flow.Efficient Tdp.Config.default) dd in
      let r = run d and r' = run d' in
      if r.Tdp.Flow.metrics <> r'.Tdp.Flow.metrics then
        Alcotest.failf "legalized metrics differ: %s vs %s"
          (Obs.Json.to_string (Tdp.Flow.metrics_to_json r.Tdp.Flow.metrics))
          (Obs.Json.to_string (Tdp.Flow.metrics_to_json r'.Tdp.Flow.metrics));
      if r.Tdp.Flow.metrics_gp <> r'.Tdp.Flow.metrics_gp then
        Alcotest.fail "global-placement metrics differ";
      Alcotest.(check int) "curve length" (List.length r.Tdp.Flow.curve)
        (List.length r'.Tdp.Flow.curve);
      Alcotest.(check int) "extraction rounds"
        (List.length r.Tdp.Flow.extraction_rounds)
        (List.length r'.Tdp.Flow.extraction_rounds))

let suite =
  [
    Alcotest.test_case "bookshelf roundtrip, all suite designs (1+4 domains)" `Slow
      (roundtrip_all `Bookshelf);
    Alcotest.test_case "lef/def roundtrip, all suite designs (1+4 domains)" `Slow
      (roundtrip_all `Lefdef);
    Alcotest.test_case "pl overlay restores placement bit-exact" `Quick pl_overlay_roundtrip;
    Alcotest.test_case "torture fixtures fail at the recorded line" `Quick torture_cases;
    Alcotest.test_case "golden_small fixture parses" `Quick golden_small_parses;
    Alcotest.test_case "serialize/mutate/reparse battery" `Slow mutate_reparse_battery;
    Alcotest.test_case "reparsed design reproduces flow metrics" `Slow metrics_identity;
  ]
