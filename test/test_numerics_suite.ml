(* Unit + property tests for the numerics library: FFT, DCT, Poisson. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let max_abs_diff a b =
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. b.(i)))) a;
  !m

let random_array rng n = Array.init n (fun _ -> Util.Rng.float_range rng (-5.0) 5.0)

(* ---------------- FFT ---------------- *)

let test_fft_roundtrip () =
  let rng = Util.Rng.create 1 in
  List.iter
    (fun n ->
      let re = random_array rng n and im = random_array rng n in
      let re0 = Array.copy re and im0 = Array.copy im in
      Numerics.Fft.forward re im;
      Numerics.Fft.inverse re im;
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip n=%d" n)
        true
        (max_abs_diff re re0 < 1e-10 && max_abs_diff im im0 < 1e-10))
    [ 1; 2; 4; 8; 64; 256 ]

let test_fft_delta () =
  (* FFT of a delta at 0 is the all-ones spectrum. *)
  let n = 16 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Numerics.Fft.forward re im;
  Array.iter (fun v -> Alcotest.(check (float 1e-12)) "flat re" 1.0 v) re;
  Array.iter (fun v -> Alcotest.(check (float 1e-12)) "flat im" 0.0 v) im

let test_fft_constant () =
  (* FFT of a constant is a delta of height n at frequency 0. *)
  let n = 8 in
  let re = Array.make n 1.0 and im = Array.make n 0.0 in
  Numerics.Fft.forward re im;
  Alcotest.(check (float 1e-12)) "dc" 8.0 re.(0);
  for k = 1 to n - 1 do
    Alcotest.(check (float 1e-10)) "zero elsewhere" 0.0 (Float.abs re.(k) +. Float.abs im.(k))
  done

let test_fft_parseval () =
  let rng = Util.Rng.create 2 in
  let n = 64 in
  let re = random_array rng n and im = Array.make n 0.0 in
  let time_energy = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 re in
  let re' = Array.copy re and im' = Array.copy im in
  Numerics.Fft.forward re' im';
  let freq_energy =
    ref 0.0
  in
  for i = 0 to n - 1 do
    freq_energy := !freq_energy +. (re'.(i) *. re'.(i)) +. (im'.(i) *. im'.(i))
  done;
  Alcotest.(check bool) "parseval" true
    (Float.abs ((!freq_energy /. float_of_int n) -. time_energy) < 1e-8 *. (1.0 +. time_energy))

let test_fft_bad_size () =
  (* The message must name the offending size. *)
  Alcotest.check_raises "not power of two"
    (Invalid_argument "Fft: size must be a power of two, got 3") (fun () ->
      Numerics.Fft.forward (Array.make 3 0.0) (Array.make 3 0.0))

let test_fft_linearity () =
  let rng = Util.Rng.create 3 in
  let n = 32 in
  let a = random_array rng n and b = random_array rng n in
  let sum = Array.init n (fun i -> a.(i) +. (2.0 *. b.(i))) in
  let fa = (Array.copy a, Array.make n 0.0) in
  let fb = (Array.copy b, Array.make n 0.0) in
  let fs = (Array.copy sum, Array.make n 0.0) in
  Numerics.Fft.forward (fst fa) (snd fa);
  Numerics.Fft.forward (fst fb) (snd fb);
  Numerics.Fft.forward (fst fs) (snd fs);
  let expect_re = Array.init n (fun i -> (fst fa).(i) +. (2.0 *. (fst fb).(i))) in
  Alcotest.(check bool) "linear" true (max_abs_diff (fst fs) expect_re < 1e-9)

(* ---------------- DCT ---------------- *)

let naive_dct2 x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc :=
          !acc
          +. x.(i)
             *. cos (Float.pi *. float_of_int k *. ((2.0 *. float_of_int i) +. 1.0)
                     /. (2.0 *. float_of_int n))
      done;
      !acc)

let test_dct_vs_naive () =
  let rng = Util.Rng.create 4 in
  List.iter
    (fun n ->
      let x = random_array rng n in
      Alcotest.(check bool)
        (Printf.sprintf "dct==naive n=%d" n)
        true
        (max_abs_diff (Numerics.Dct.dct2 x) (naive_dct2 x) < 1e-9))
    [ 2; 4; 8; 16; 32 ]

let test_dct_roundtrip () =
  let rng = Util.Rng.create 5 in
  List.iter
    (fun n ->
      let x = random_array rng n in
      let back = Numerics.Dct.idct2 (Numerics.Dct.dct2 x) in
      Alcotest.(check bool) (Printf.sprintf "idct(dct)=id n=%d" n) true (max_abs_diff back x < 1e-9))
    [ 2; 8; 64; 128 ]

let test_dct2d_roundtrip () =
  let rng = Util.Rng.create 6 in
  let rows = 16 and cols = 8 in
  let g = random_array rng (rows * cols) in
  let back = Numerics.Dct.idct2_2d (Numerics.Dct.dct2_2d g ~rows ~cols) ~rows ~cols in
  Alcotest.(check bool) "2d roundtrip" true (max_abs_diff back g < 1e-9)

let q_dct_roundtrip =
  qtest "dct roundtrip (random)" QCheck.(list_of_size (QCheck.Gen.return 16) (float_bound_inclusive 10.0))
    (fun l ->
      let x = Array.of_list l in
      max_abs_diff (Numerics.Dct.idct2 (Numerics.Dct.dct2 x)) x < 1e-8)

(* ---------------- Plan (packed real-even engine) ---------------- *)

(* The packed two-lines-per-FFT DCT-II must match direct summation at
   every supported line length, including the degenerate n=2. *)
let test_plan_pair_vs_naive () =
  let rng = Util.Rng.create 21 in
  List.iter
    (fun n ->
      let plan = Numerics.Plan.create ~rows:2 ~cols:n in
      let a = random_array rng n and b = random_array rng n in
      let xa = Array.make n 0.0 and xb = Array.make n 0.0 in
      Numerics.Plan.dct2_pair plan ~a ~b ~xa ~xb;
      Alcotest.(check bool)
        (Printf.sprintf "pair dct A n=%d" n)
        true
        (max_abs_diff xa (naive_dct2 a) < 1e-8);
      Alcotest.(check bool)
        (Printf.sprintf "pair dct B n=%d" n)
        true
        (max_abs_diff xb (naive_dct2 b) < 1e-8))
    [ 2; 4; 8; 64; 256 ]

let q_plan_pair_roundtrip =
  qtest "plan pair pack/unpack roundtrip (random)"
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.return 16) (float_bound_inclusive 10.0))
        (list_of_size (QCheck.Gen.return 16) (float_bound_inclusive 10.0)))
    (fun (la, lb) ->
      let a = Array.of_list la and b = Array.of_list lb in
      let n = Array.length a in
      let plan = Numerics.Plan.create ~rows:2 ~cols:n in
      let xa = Array.make n 0.0 and xb = Array.make n 0.0 in
      let ra = Array.make n 0.0 and rb = Array.make n 0.0 in
      Numerics.Plan.dct2_pair plan ~a ~b ~xa ~xb;
      Numerics.Plan.idct2_pair plan ~xa ~xb ~a:ra ~b:rb;
      max_abs_diff ra a < 1e-8 && max_abs_diff rb b < 1e-8)

(* 2D plan transforms vs the seed per-line complex-FFT path, on square
   and non-square (both orientations, odd line counts after pairing). *)
let test_plan_2d_vs_seed () =
  let rng = Util.Rng.create 22 in
  List.iter
    (fun (rows, cols) ->
      let g = random_array rng (rows * cols) in
      let plan = Numerics.Plan.create ~rows ~cols in
      let dst = Array.make (rows * cols) 0.0 in
      Numerics.Plan.dct2_2d plan ~src:g ~dst;
      Alcotest.(check bool)
        (Printf.sprintf "plan dct2_2d %dx%d == seed" rows cols)
        true
        (max_abs_diff dst (Numerics.Dct.dct2_2d g ~rows ~cols) < 1e-8);
      let back = Array.make (rows * cols) 0.0 in
      Numerics.Plan.idct2_2d plan ~src:dst ~dst:back;
      Alcotest.(check bool)
        (Printf.sprintf "plan 2d roundtrip %dx%d" rows cols)
        true (max_abs_diff back g < 1e-9))
    [ (16, 16); (64, 256); (256, 64); (1, 8); (8, 1) ]

(* In-place operation (src == dst) must give the same answer. *)
let test_plan_in_place () =
  let rng = Util.Rng.create 23 in
  let rows = 16 and cols = 32 in
  let g = random_array rng (rows * cols) in
  let plan = Numerics.Plan.create ~rows ~cols in
  let out = Array.make (rows * cols) 0.0 in
  Numerics.Plan.dct2_2d plan ~src:g ~dst:out;
  let buf = Array.copy g in
  Numerics.Plan.dct2_2d plan ~src:buf ~dst:buf;
  Alcotest.(check bool) "in-place dct2_2d" true (max_abs_diff buf out = 0.0)

(* ---------------- Poisson ---------------- *)

let zero_mean rng n =
  let a = random_array rng n in
  let m = Util.Stats.mean a in
  Array.map (fun v -> v -. m) a

let discrete_laplacian psi ~rows ~cols r c =
  let at r c =
    let r = max 0 (min (rows - 1) r) and c = max 0 (min (cols - 1) c) in
    psi.((r * cols) + c)
  in
  at (r - 1) c +. at (r + 1) c +. at r (c - 1) +. at r (c + 1) -. (4.0 *. at r c)

let test_poisson_residual () =
  let rng = Util.Rng.create 7 in
  let rows = 32 and cols = 32 in
  let rho = zero_mean rng (rows * cols) in
  let p = Numerics.Poisson.create ~rows ~cols in
  let psi = Numerics.Poisson.solve p rho in
  (* Interior: discrete laplacian of psi must equal -rho exactly (the
     solver inverts the discrete operator). *)
  let bad = ref 0.0 in
  for r = 1 to rows - 2 do
    for c = 1 to cols - 2 do
      bad :=
        Float.max !bad
          (Float.abs (discrete_laplacian psi ~rows ~cols r c +. rho.((r * cols) + c)))
    done
  done;
  Alcotest.(check bool) "interior residual" true (!bad < 1e-9)

let test_poisson_uniform_field () =
  (* Uniform charge = zero after DC removal: flat potential, zero field. *)
  let rows = 16 and cols = 16 in
  let rho = Array.make (rows * cols) 1.0 in
  let p = Numerics.Poisson.create ~rows ~cols in
  let psi = Numerics.Poisson.solve p rho in
  let ex, ey = Numerics.Poisson.field p psi in
  Alcotest.(check bool) "zero field" true
    (Array.for_all (fun v -> Float.abs v < 1e-9) ex
    && Array.for_all (fun v -> Float.abs v < 1e-9) ey)

let test_poisson_energy_nonneg () =
  let rng = Util.Rng.create 8 in
  for _ = 1 to 10 do
    let rows = 16 and cols = 16 in
    let rho = zero_mean rng (rows * cols) in
    let p = Numerics.Poisson.create ~rows ~cols in
    let psi = Numerics.Poisson.solve p rho in
    (* The operator inverse is positive semidefinite on zero-mean charge. *)
    Alcotest.(check bool) "energy >= 0" true (Numerics.Poisson.energy rho psi >= -1e-9)
  done

let test_poisson_field_points_downhill () =
  (* A positive blob at the centre: the field at a point right of centre
     points further right (away from the charge). *)
  let rows = 32 and cols = 32 in
  let rho = Array.make (rows * cols) (-0.01) in
  rho.((16 * cols) + 16) <- 10.0;
  let p = Numerics.Poisson.create ~rows ~cols in
  let psi = Numerics.Poisson.solve p rho in
  let ex, _ = Numerics.Poisson.field p psi in
  Alcotest.(check bool) "pushes right of blob" true (ex.((16 * cols) + 20) > 0.0);
  Alcotest.(check bool) "pushes left of blob" true (ex.((16 * cols) + 12) < 0.0)

(* Plan engine vs the retained seed engine through the public Poisson
   API — the A/B flag must select genuinely different code that agrees
   to rounding. *)
let test_poisson_engines_agree () =
  let rng = Util.Rng.create 24 in
  let rows = 32 and cols = 16 in
  let rho = random_array rng (rows * cols) in
  let p = Numerics.Poisson.create ~rows ~cols in
  let psi_plan = Numerics.Poisson.solve p rho in
  Numerics.Poisson.use_seed_engine := true;
  let psi_seed =
    Fun.protect
      ~finally:(fun () -> Numerics.Poisson.use_seed_engine := false)
      (fun () -> Numerics.Poisson.solve p rho)
  in
  Alcotest.(check bool) "plan == seed engine" true (max_abs_diff psi_plan psi_seed < 1e-9)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Non-power-of-two grids must surface as a typed Config_error at the
   Poisson boundary (exit code 2 in binaries), not a bare
   Invalid_argument from deep inside the FFT. *)
let test_poisson_bad_grid () =
  match Numerics.Poisson.create ~rows:48 ~cols:64 with
  | _ -> Alcotest.fail "expected Config_error for a 48-row grid"
  | exception Util.Errors.Error (Util.Errors.Config_error { what; detail }) ->
      Alcotest.(check string) "what" "poisson.grid" what;
      Alcotest.(check bool) "detail names the size" true (contains_sub detail "48x64")

(* The steady-state solve loop must not touch the minor heap: warmed-up
   [solve_into] + [field_into] over caller-owned buffers, sequential
   runtime. [energy] is allowed its boxed-float return (a few words). *)
let test_poisson_zero_alloc () =
  Helpers.with_domains 1 (fun () ->
      let rng = Util.Rng.create 25 in
      let rows = 64 and cols = 64 in
      let p = Numerics.Poisson.create ~rows ~cols in
      let rho = random_array rng (rows * cols) in
      let psi = Array.make (rows * cols) 0.0 in
      let ex = Array.make (rows * cols) 0.0 and ey = Array.make (rows * cols) 0.0 in
      let iters = 50 in
      let run () =
        for _ = 1 to 5 do
          Numerics.Poisson.solve_into p ~rho ~psi;
          Numerics.Poisson.field_into p ~psi ~ex ~ey;
          ignore (Numerics.Poisson.energy rho psi)
        done
      in
      run ();
      (* warm: scratch sized, tables built *)
      let w0 = Gc.minor_words () in
      for _ = 1 to iters do
        Numerics.Poisson.solve_into p ~rho ~psi;
        Numerics.Poisson.field_into p ~psi ~ex ~ey;
        ignore (Numerics.Poisson.energy rho psi)
      done;
      let dw = Gc.minor_words () -. w0 in
      let per_solve = dw /. float_of_int iters in
      Alcotest.(check bool)
        (Printf.sprintf "minor words/solve = %.1f (want < 16)" per_solve)
        true (per_solve < 16.0))

let suite =
  [
    ("fft roundtrip", `Quick, test_fft_roundtrip);
    ("fft delta", `Quick, test_fft_delta);
    ("fft constant", `Quick, test_fft_constant);
    ("fft parseval", `Quick, test_fft_parseval);
    ("fft bad size", `Quick, test_fft_bad_size);
    ("fft linearity", `Quick, test_fft_linearity);
    ("dct vs naive", `Quick, test_dct_vs_naive);
    ("dct roundtrip", `Quick, test_dct_roundtrip);
    ("dct 2d roundtrip", `Quick, test_dct2d_roundtrip);
    q_dct_roundtrip;
    ("plan pair vs naive", `Quick, test_plan_pair_vs_naive);
    q_plan_pair_roundtrip;
    ("plan 2d vs seed", `Quick, test_plan_2d_vs_seed);
    ("plan in place", `Quick, test_plan_in_place);
    ("poisson engines agree", `Quick, test_poisson_engines_agree);
    ("poisson bad grid", `Quick, test_poisson_bad_grid);
    ("poisson zero alloc", `Quick, test_poisson_zero_alloc);
    ("poisson residual", `Quick, test_poisson_residual);
    ("poisson uniform -> zero field", `Quick, test_poisson_uniform_field);
    ("poisson energy nonneg", `Quick, test_poisson_energy_nonneg);
    ("poisson field direction", `Quick, test_poisson_field_points_downhill);
  ]
