(* Tests for the netlist library: Libcell, Design, Builder, Io. *)

open Netlist

let check_float = Alcotest.(check (float 1e-6))

(* ---------------- Libcell ---------------- *)

let test_libcell_lookup () =
  let inv = Libcell.find_in_library "INV_X1" in
  Alcotest.(check string) "name" "INV_X1" inv.lname;
  Alcotest.(check bool) "not ff" false inv.is_ff;
  Alcotest.(check bool) "dff is ff" true Libcell.dff.is_ff;
  Alcotest.check_raises "unknown"
    (Invalid_argument "Libcell.find_in_library: unknown cell NOPE_X9") (fun () ->
      ignore (Libcell.find_in_library "NOPE_X9"))

let test_libcell_pins () =
  let nand = Libcell.find_in_library "NAND2_X1" in
  Alcotest.(check int) "inputs" 2 (List.length (Libcell.inputs nand));
  Alcotest.(check int) "outputs" 1 (List.length (Libcell.outputs nand));
  let a1 = Libcell.find_pin nand "a1" in
  Alcotest.(check bool) "input kind" true (a1.kind = Libcell.Input);
  Alcotest.(check bool) "cap positive" true (a1.cap > 0.0);
  let o = Libcell.find_pin nand "o" in
  check_float "output cap 0" 0.0 o.cap;
  Alcotest.check_raises "missing pin"
    (Invalid_argument "Libcell.find_pin: NAND2_X1 has no pin zz") (fun () ->
      ignore (Libcell.find_pin nand "zz"))

let test_libcell_pin_offsets_inside () =
  Array.iter
    (fun (lc : Libcell.t) ->
      Array.iter
        (fun (p : Libcell.lib_pin) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s inside" lc.lname p.pname)
            true
            (Float.abs p.off_x <= (lc.width /. 2.0) +. 1e-9
            && Float.abs p.off_y <= (lc.height /. 2.0) +. 1e-9))
        lc.pins)
    Libcell.default_library

let test_library_sane () =
  Array.iter
    (fun (lc : Libcell.t) ->
      Alcotest.(check bool) (lc.lname ^ " width>0") true (lc.width > 0.0);
      Alcotest.(check bool) (lc.lname ^ " drive>0") true (lc.drive_res > 0.0);
      Alcotest.(check bool)
        (lc.lname ^ " has output")
        true
        (List.length (Libcell.outputs lc) = 1))
    Libcell.default_library

(* ---------------- Builder / Design ---------------- *)

let test_build_counts () =
  let d = Helpers.chain_design () in
  Alcotest.(check int) "cells" 5 (Design.num_cells d);
  Alcotest.(check int) "nets" 4 (Design.num_nets d);
  (* pi(1) + inv(2) + dff(2) + inv(2) + po(1) *)
  Alcotest.(check int) "pins" 8 (Design.num_pins d);
  Alcotest.(check int) "movable" 3 (Design.num_movable d)

let test_net_structure () =
  let d = Helpers.chain_design () in
  for nid = 0 to Design.num_nets d - 1 do
    let nname = Design.net_name d nid in
    Alcotest.(check bool) (nname ^ " has driver") true (d.net_driver.(nid) >= 0);
    Alcotest.(check bool) (nname ^ " has sinks") true (Design.net_num_sinks d nid >= 1);
    Alcotest.(check bool)
      (nname ^ " driver is output pin")
      true
      (Design.pin_dir d d.net_driver.(nid) = Design.Out);
    Design.iter_net_sinks d nid (fun s ->
        Alcotest.(check bool) "sink is input pin" true (Design.pin_dir d s = Design.In))
  done

let test_double_driver_rejected () =
  let b = Helpers.fresh_builder () in
  let u1 = Builder.add_logic b ~cname:"u1" ~lib:Helpers.inv ~x:0.0 ~y:0.0 () in
  let u2 = Builder.add_logic b ~cname:"u2" ~lib:Helpers.inv ~x:1.0 ~y:0.0 () in
  let n = Builder.add_net b ~nname:"n" in
  Builder.connect_by_name b ~net:n ~cell:u1 ~pin_name:"o";
  Alcotest.(check bool) "second driver rejected" true
    (try
       Builder.connect_by_name b ~net:n ~cell:u2 ~pin_name:"o";
       false
     with Util.Errors.Error (Util.Errors.Invalid_design _) -> true)

let test_reconnect_rejected () =
  let b = Helpers.fresh_builder () in
  let u1 = Builder.add_logic b ~cname:"u1" ~lib:Helpers.inv ~x:0.0 ~y:0.0 () in
  let n1 = Builder.add_net b ~nname:"n1" in
  let n2 = Builder.add_net b ~nname:"n2" in
  Builder.connect_by_name b ~net:n1 ~cell:u1 ~pin_name:"a1";
  Alcotest.(check bool) "pin reconnect rejected" true
    (try
       Builder.connect_by_name b ~net:n2 ~cell:u1 ~pin_name:"a1";
       false
     with Util.Errors.Error (Util.Errors.Invalid_design _) -> true)

let test_undriven_net_rejected () =
  let b = Helpers.fresh_builder () in
  let u1 = Builder.add_logic b ~cname:"u1" ~lib:Helpers.inv ~x:0.0 ~y:0.0 () in
  let n = Builder.add_net b ~nname:"dangling" in
  Builder.connect_by_name b ~net:n ~cell:u1 ~pin_name:"a1";
  Alcotest.(check bool) "undriven rejected" true
    (try
       ignore (Builder.finish b);
       false
     with Util.Errors.Error (Util.Errors.Invalid_design _) -> true)

(* ---------------- CSR adjacency invariants (SoA database) ------------ *)

(* Offsets monotone and exhaustive; every pin id exactly once in the cell
   CSR under its recorded owner; every connected pin exactly once in the
   net CSR under its recorded net, driver first. *)
let check_csr_invariants (d : Design.t) =
  let nc = Design.num_cells d and np = Design.num_pins d and nn = Design.num_nets d in
  Alcotest.(check int) "cell_pin_off starts at 0" 0 d.cell_pin_off.(0);
  Alcotest.(check int) "cell CSR covers all pins" np d.cell_pin_off.(nc);
  for i = 0 to nc - 1 do
    Alcotest.(check bool) "cell_pin_off monotone" true
      (d.cell_pin_off.(i + 1) >= d.cell_pin_off.(i))
  done;
  Alcotest.(check int) "net_pin_off starts at 0" 0 d.net_pin_off.(0);
  for n = 0 to nn - 1 do
    Alcotest.(check bool) "net_pin_off monotone" true (d.net_pin_off.(n + 1) >= d.net_pin_off.(n))
  done;
  let seen = Array.make (max 1 np) 0 in
  for i = 0 to nc - 1 do
    for k = d.cell_pin_off.(i) to d.cell_pin_off.(i + 1) - 1 do
      let p = d.cell_pin_ids.(k) in
      seen.(p) <- seen.(p) + 1;
      Alcotest.(check int) "pin under its owner" i d.pin_owner.(p)
    done
  done;
  for p = 0 to np - 1 do
    Alcotest.(check int) "pin partitioned exactly once" 1 seen.(p)
  done;
  Array.fill seen 0 (Array.length seen) 0;
  for n = 0 to nn - 1 do
    let off = d.net_pin_off.(n) and stop = d.net_pin_off.(n + 1) in
    if stop > off && d.net_driver.(n) >= 0 then
      Alcotest.(check int) "driver first in net row" d.net_driver.(n) d.net_pin_ids.(off);
    for k = off to stop - 1 do
      let p = d.net_pin_ids.(k) in
      seen.(p) <- seen.(p) + 1;
      Alcotest.(check int) "pin under its net" n d.pin_net.(p)
    done;
    Alcotest.(check int) "degree matches offsets" (stop - off) (Design.net_degree d n)
  done;
  for p = 0 to np - 1 do
    Alcotest.(check int) "connected pin in net CSR exactly once"
      (if d.pin_net.(p) >= 0 then 1 else 0)
      seen.(p)
  done

let test_csr_invariants_chain () = check_csr_invariants (Helpers.chain_design ())

let test_csr_invariants_generated () = check_csr_invariants (Lazy.force Helpers.small_generated)

(* Round-trip against the builder input: pins appear in add order under
   each cell, net rows follow the connection order (driver, then sinks as
   connected). chain_design wires pi.p->u1.a1, u1.o->ff.d, ff.q->u2.a1,
   u2.o->po.p on cells pi(0) u1(1) ff(2) u2(3) po(4). *)
let test_csr_roundtrip_builder () =
  let d = Helpers.chain_design () in
  let pin cell name =
    let found = ref (-1) in
    Design.iter_cell_pins d cell (fun p -> if Design.pin_name d p = name then found := p);
    Alcotest.(check bool) (Printf.sprintf "cell %d has pin %s" cell name) true (!found >= 0);
    !found
  in
  let expected =
    [|
      [| pin 0 "p"; pin 1 "a1" |];
      [| pin 1 "o"; pin 2 "d" |];
      [| pin 2 "q"; pin 3 "a1" |];
      [| pin 3 "o"; pin 4 "p" |];
    |]
  in
  for n = 0 to Design.num_nets d - 1 do
    Alcotest.(check (array int))
      (Design.net_name d n ^ " row matches connection order")
      expected.(n) (Design.net_pins d n)
  done;
  (* Cell rows are contiguous and in pin-add order (inv: a1 then o). *)
  Alcotest.(check (list string)) "u1 pins in add order" [ "a1"; "o" ]
    (Array.to_list (Design.cell_pins d 1) |> List.map (Design.pin_name d))

let test_hpwl_hand_computed () =
  let d = Helpers.chain_design () in
  (* Net n1: pi pin at (0,50); u1.a1 at 30-0.5, 50 = (29.5, 50). *)
  check_float "n1 hpwl" 29.5 (Design.net_hpwl d 0);
  let sum = ref 0.0 in
  for nid = 0 to Design.num_nets d - 1 do
    sum := !sum +. Design.net_hpwl d nid
  done;
  Alcotest.(check bool) "total = sum" true (Float.abs (Design.total_hpwl d -. !sum) < 1e-9)

let test_pin_positions () =
  let d = Helpers.chain_design () in
  (* u1 is cell 1 at (30,50); its input a1 offset is (-w/2, 0) = (-0.5, 0). *)
  let a1 =
    Array.to_list (Design.cell_pins d 1) |> List.find (fun p -> Design.pin_name d p = "a1")
  in
  check_float "pin x" 29.5 (Design.pin_x d a1);
  check_float "pin y" 50.0 (Design.pin_y d a1)

let test_snapshot_restore () =
  let d = Helpers.chain_design () in
  let snap = Design.snapshot d in
  let h0 = Design.total_hpwl d in
  d.x.{1} <- 5.0;
  d.y.{1} <- 5.0;
  Alcotest.(check bool) "changed" true (Design.total_hpwl d <> h0);
  Design.restore d snap;
  check_float "restored" h0 (Design.total_hpwl d)

let test_clamp_movable () =
  let d = Helpers.chain_design () in
  d.x.{1} <- -50.0;
  d.y.{1} <- 500.0;
  Design.clamp_movable d;
  let r = Design.cell_rect d 1 in
  Alcotest.(check bool) "inside die" true
    (r.xl >= d.die.xl -. 1e-9 && r.xh <= d.die.xh +. 1e-9 && r.yh <= d.die.yh +. 1e-9)

let test_reset_net_weights () =
  let d = Helpers.chain_design () in
  d.net_weight.{0} <- 7.0;
  Design.reset_net_weights d;
  check_float "reset" 1.0 d.net_weight.{0}

let test_cell_rect () =
  let d = Helpers.chain_design () in
  let r = Design.cell_rect d 1 in
  check_float "w" Helpers.inv.Libcell.width (Geom.Rect.width r);
  check_float "centered" 30.0 (Geom.Rect.center r).x

(* ---------------- Io ---------------- *)

let test_io_roundtrip () =
  let d = Lazy.force Helpers.small_generated in
  let path = Filename.temp_file "tdp_design" ".txt" in
  Io.save_file path d;
  let d2 = Io.load_file path in
  Sys.remove path;
  Alcotest.(check int) "cells" (Design.num_cells d) (Design.num_cells d2);
  Alcotest.(check int) "nets" (Design.num_nets d) (Design.num_nets d2);
  Alcotest.(check int) "pins" (Design.num_pins d) (Design.num_pins d2);
  check_float "hpwl preserved" (Design.total_hpwl d) (Design.total_hpwl d2);
  check_float "clock" d.clock_period d2.clock_period;
  (* Net-by-net structural identity. *)
  for nid = 0 to Design.num_nets d - 1 do
    Alcotest.(check int) "degree" (Design.net_degree d nid) (Design.net_degree d2 nid);
    Alcotest.(check int) "driver owner"
      d.pin_owner.(d.net_driver.(nid))
      d2.pin_owner.(d2.net_driver.(nid))
  done

let test_io_roundtrip_twice_identical () =
  let d = Helpers.chain_design () in
  let buf1 = Buffer.create 1024 in
  let buf2 = Buffer.create 1024 in
  let to_string d =
    let path = Filename.temp_file "tdp_d" ".txt" in
    Io.save_file path d;
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Sys.remove path;
    s
  in
  Buffer.add_string buf1 (to_string d);
  let d2 = (fun () ->
      let path = Filename.temp_file "tdp_d" ".txt" in
      Io.save_file path d;
      let x = Io.load_file path in
      Sys.remove path;
      x) ()
  in
  Buffer.add_string buf2 (to_string d2);
  Alcotest.(check string) "save(load(save)) = save" (Buffer.contents buf1) (Buffer.contents buf2)

let test_io_parse_error () =
  let path = Filename.temp_file "tdp_bad" ".txt" in
  let oc = open_out path in
  output_string oc "design x\nbogus record here\nend\n";
  close_out oc;
  Alcotest.(check bool) "parse error raised" true
    (try
       ignore (Io.load_file path);
       false
     with Io.Parse_error _ -> true);
  Sys.remove path

(* A builder is reusable after [reset]: populating, resetting and
   populating again must give a byte-identical design DB, with no leaked
   cells, pins, nets or library entries from the first build. Same for
   loading one file twice through Formats.Auto — the daemon loads many
   designs through one process, so any parser or builder state that
   survives a build corrupts the next one. *)
let test_builder_reset_reuse () =
  let dump d =
    let p = Filename.temp_file "netlist_reset" ".design" in
    Io.save_file p d;
    let ic = open_in p in
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove p)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let populate b =
    let pi = Builder.add_input_pad b ~cname:"pi" ~x:0.0 ~y:50.0 in
    let u1 = Builder.add_logic b ~cname:"u1" ~lib:Helpers.inv ~x:30.0 ~y:50.0 () in
    let ff = Builder.add_logic b ~cname:"ff" ~lib:Libcell.dff ~x:60.0 ~y:50.0 () in
    let po = Builder.add_output_pad b ~cname:"po" ~x:100.0 ~y:50.0 in
    let wire src spin dst dpin name =
      let n = Builder.add_net b ~nname:name in
      Builder.connect_by_name b ~net:n ~cell:src ~pin_name:spin;
      Builder.connect_by_name b ~net:n ~cell:dst ~pin_name:dpin
    in
    wire pi "p" u1 "a1" "n1";
    wire u1 "o" ff "d" "n2";
    wire ff "q" po "p" "n3";
    Builder.finish b
  in
  let b = Helpers.fresh_builder () in
  let first = dump (populate b) in
  Builder.reset b;
  let again = dump (populate b) in
  Alcotest.(check string) "reset builder rebuilds identically" first again;
  (* And twice more to catch state that only leaks on the second reuse. *)
  Builder.reset b;
  Alcotest.(check string) "third build identical" first (dump (populate b));
  let path = Filename.temp_file "netlist_reload" ".design" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc first;
      close_out oc;
      let d1 = dump (Formats.Auto.load path) in
      let d2 = dump (Formats.Auto.load path) in
      Alcotest.(check string) "Formats.Auto load-twice identical DBs" d1 d2;
      Alcotest.(check string) "reload reproduces the dump" first d1)

let suite =
  [
    ("libcell lookup", `Quick, test_libcell_lookup);
    ("libcell pins", `Quick, test_libcell_pins);
    ("libcell pin offsets", `Quick, test_libcell_pin_offsets_inside);
    ("library sanity", `Quick, test_library_sane);
    ("builder counts", `Quick, test_build_counts);
    ("net structure", `Quick, test_net_structure);
    ("double driver rejected", `Quick, test_double_driver_rejected);
    ("pin reconnect rejected", `Quick, test_reconnect_rejected);
    ("undriven net rejected", `Quick, test_undriven_net_rejected);
    ("csr invariants (chain)", `Quick, test_csr_invariants_chain);
    ("csr invariants (generated)", `Quick, test_csr_invariants_generated);
    ("csr roundtrip vs builder", `Quick, test_csr_roundtrip_builder);
    ("hpwl hand computed", `Quick, test_hpwl_hand_computed);
    ("pin positions", `Quick, test_pin_positions);
    ("snapshot/restore", `Quick, test_snapshot_restore);
    ("clamp movable", `Quick, test_clamp_movable);
    ("reset net weights", `Quick, test_reset_net_weights);
    ("cell rect", `Quick, test_cell_rect);
    ("io roundtrip generated design", `Quick, test_io_roundtrip);
    ("io roundtrip stable", `Quick, test_io_roundtrip_twice_identical);
    ("io parse error", `Quick, test_io_parse_error);
    ("builder reset reuse / load twice", `Quick, test_builder_reset_reuse);
  ]
