(* Additional cross-cutting properties: monotonicity and consistency laws
   that tie modules together. *)

open Netlist

let check_float = Alcotest.(check (float 1e-6))

let spread (d : Design.t) seed =
  let rng = Util.Rng.create seed in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  Design.clamp_movable d

(* k_worst paths: counts monotone in k, all distinct, slacks sorted. *)
let test_k_worst_monotone () =
  let d = Lazy.force Helpers.small_generated in
  spread d 41;
  d.clock_period <- 400.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let arr = Sta.Timer.arrivals timer in
  Array.iter
    (fun ep ->
      if Float.is_finite arr.(ep) then begin
        let p2 = Sta.Paths.k_worst g arr ~endpoint:ep ~k:2 in
        let p5 = Sta.Paths.k_worst g arr ~endpoint:ep ~k:5 in
        Alcotest.(check bool) "monotone count" true (List.length p5 >= List.length p2);
        (* p2 is a prefix of p5 by arrival *)
        List.iteri
          (fun i (p : Sta.Paths.path) ->
            let q = List.nth p5 i in
            Alcotest.(check bool) "prefix property" true
              (Float.abs (p.arrival -. q.Sta.Paths.arrival) < 1e-9))
          p2;
        (* distinctness *)
        let keys = List.map (fun (p : Sta.Paths.path) -> Array.to_list p.pins) p5 in
        Alcotest.(check int) "distinct" (List.length keys)
          (List.length (List.sort_uniq compare keys))
      end)
    (Array.sub g.Sta.Graph.endpoints 0 (min 20 (Array.length g.Sta.Graph.endpoints)))

(* report_timing's worst path equals report_timing_endpoint's worst. *)
let test_reports_agree_on_worst () =
  let d = Lazy.force Helpers.small_generated in
  spread d 42;
  d.clock_period <- 350.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let n = Sta.Timer.num_failing_endpoints timer in
  if n > 0 then begin
    let rt = Sta.Timer.report_timing timer ~n in
    let ept = Sta.Timer.report_timing_endpoint timer ~n ~k:1 in
    let worst_rt = (List.hd rt : Sta.Paths.path).slack in
    let worst_ept =
      List.fold_left (fun acc (p : Sta.Paths.path) -> Float.min acc p.slack) 0.0 ept
    in
    check_float "same worst slack" worst_rt worst_ept;
    check_float "wns agrees" (Sta.Timer.wns timer) worst_rt
  end

(* Tightening the clock can only worsen (or keep) every endpoint slack. *)
let test_clock_monotonicity () =
  let d = Lazy.force Helpers.small_generated in
  spread d 43;
  d.clock_period <- 500.0;
  let t1 = Sta.Timer.create d in
  Sta.Timer.update t1;
  let tns1 = Sta.Timer.tns t1 in
  d.clock_period <- 400.0;
  let t2 = Sta.Timer.create d in
  Sta.Timer.update t2;
  let tns2 = Sta.Timer.tns t2 in
  Alcotest.(check bool) "tighter clock, worse tns" true (tns2 <= tns1 +. 1e-9);
  Alcotest.(check bool) "failing set grows" true
    (Sta.Timer.num_failing_endpoints t2 >= Sta.Timer.num_failing_endpoints t1)

(* Scaling all wire parasitics to zero leaves only cell delays: arrivals
   with a star timer must drop when r=c=0 (wire delay is nonnegative). *)
let test_zero_parasitics_bound () =
  let d0 = Helpers.chain_design () in
  let t_wire = Sta.Timer.create d0 in
  Sta.Timer.update t_wire;
  let b = Helpers.fresh_builder ~r:0.0 ~c:0.0 () in
  ignore b;
  (* Rebuild the same chain with zero parasitics. *)
  let b = Helpers.fresh_builder ~r:0.0 ~c:0.0 () in
  let pi = Builder.add_input_pad b ~cname:"pi" ~x:0.0 ~y:50.0 in
  let u1 = Builder.add_logic b ~cname:"u1" ~lib:Helpers.inv ~x:30.0 ~y:50.0 () in
  let ff = Builder.add_logic b ~cname:"ff" ~lib:Libcell.dff ~x:60.0 ~y:50.0 () in
  let u2 = Builder.add_logic b ~cname:"u2" ~lib:Helpers.inv ~x:80.0 ~y:50.0 () in
  let po = Builder.add_output_pad b ~cname:"po" ~x:100.0 ~y:50.0 in
  let wire name pins =
    let n = Builder.add_net b ~nname:name in
    List.iter (fun (cell, pin_name) -> Builder.connect_by_name b ~net:n ~cell ~pin_name) pins
  in
  wire "n1" [ (pi, "p"); (u1, "a1") ];
  wire "n2" [ (u1, "o"); (ff, "d") ];
  wire "n3" [ (ff, "q"); (u2, "a1") ];
  wire "n4" [ (u2, "o"); (po, "p") ];
  let d1 = Builder.finish b in
  let t_nowire = Sta.Timer.create d1 in
  Sta.Timer.update t_nowire;
  let po_pin = (Netlist.Design.cell_pins d1 4).(0) in
  let po_pin0 = (Netlist.Design.cell_pins d0 4).(0) in
  Alcotest.(check bool) "wire adds delay" true
    ((Sta.Timer.arrivals t_nowire).(po_pin) < (Sta.Timer.arrivals t_wire).(po_pin0))

(* Legalization under high utilization still succeeds and stays legal. *)
let test_legalize_high_utilization () =
  let p = { Helpers.small_gen_params with utilization = 0.9; num_macros = 0 } in
  let d = Workloads.Generate.generate p in
  spread d 44;
  ignore (Gp.Legalize.run d);
  Alcotest.(check bool) "legal at 90% util" true (Gp.Legalize.is_legal d)

(* Density inflation preserves area exactly for sub-bin cells. *)
let test_density_inflation_preserves_area () =
  let d = Helpers.chain_design () in
  (* bins much larger than cells *)
  let grid = Gp.Densitygrid.create d ~bins_x:4 ~bins_y:4 in
  Gp.Densitygrid.update grid d;
  let total = Array.fold_left ( +. ) 0.0 grid.Gp.Densitygrid.density in
  check_float "area preserved under inflation" (Design.movable_area d) total

(* WA wirelength is monotone in gamma for the approximation error. *)
let test_wa_gamma_ordering () =
  let d = Lazy.force Helpers.small_generated in
  spread d 45;
  let n = Design.num_cells d in
  let value gamma =
    let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
    Gp.Wirelength.wa_wirelength_grad d ~gamma ~gx ~gy
  in
  let hpwl = Design.total_hpwl d in
  let v1 = value 0.5 and v2 = value 2.0 and v4 = value 8.0 in
  Alcotest.(check bool) "all under-estimate" true (v1 <= hpwl && v2 <= hpwl && v4 <= hpwl);
  Alcotest.(check bool) "smaller gamma closer" true (v1 >= v2 -. 1e-6 && v2 >= v4 -. 1e-6)

(* Elmore terminal_delay raises for unknown terminals. *)
let test_elmore_unknown_terminal () =
  let t = Rctree.Steiner.star ~xs:[| 0.0; 1.0 |] ~ys:[| 0.0; 0.0 |] in
  let res = Rctree.Elmore.compute t ~r:1.0 ~c:1.0 ~term_cap:(fun _ -> 0.0) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rctree.Elmore.terminal_delay t res 99);
       false
     with Invalid_argument _ -> true)

(* Nesterov on an ill-conditioned quadratic still converges. *)
let test_nesterov_ill_conditioned () =
  let scales = [| 100.0; 1.0; 0.01 |] in
  let target = [| 1.0; -2.0; 3.0 |] in
  let opt = Gp.Nesterov.create [| 0.0; 0.0; 0.0 |] in
  for _ = 1 to 3000 do
    let v = Gp.Nesterov.reference opt in
    let g = Array.mapi (fun i vi -> scales.(i) *. (vi -. target.(i))) v in
    Gp.Nesterov.step opt ~g ~fallback_step:0.005 ~max_step:50.0 ~clamp:(fun _ -> ())
  done;
  let u = Gp.Nesterov.iterate opt in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "dim %d converged (%.4f)" i v)
        true
        (Float.abs (v -. target.(i)) < 0.05))
    u

(* Suite clock calibration is deterministic. *)
let test_suite_load_deterministic () =
  let d1 = Workloads.Suite.load ~scale:0.15 "sb18" in
  let d2 = Workloads.Suite.load ~scale:0.15 "sb18" in
  check_float "same period" d1.clock_period d2.clock_period

let suite =
  [
    ("k_worst monotone/prefix/distinct", `Quick, test_k_worst_monotone);
    ("reports agree on worst", `Quick, test_reports_agree_on_worst);
    ("clock monotonicity", `Quick, test_clock_monotonicity);
    ("zero parasitics bound", `Quick, test_zero_parasitics_bound);
    ("legalize at 90% utilization", `Quick, test_legalize_high_utilization);
    ("density inflation preserves area", `Quick, test_density_inflation_preserves_area);
    ("wa gamma ordering", `Quick, test_wa_gamma_ordering);
    ("elmore unknown terminal", `Quick, test_elmore_unknown_terminal);
    ("nesterov ill-conditioned", `Quick, test_nesterov_ill_conditioned);
    ("suite load deterministic", `Slow, test_suite_load_deterministic);
  ]

(* Gvec behaves like a list under a random push/set script. *)
let q_gvec_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"gvec matches list model"
       QCheck.(list (pair bool small_nat))
       (fun script ->
         let v = Util.Gvec.create () in
         let model = ref [] in
         List.iter
           (fun (is_push, x) ->
             if is_push || !model = [] then begin
               Util.Gvec.push v x;
               model := !model @ [ x ]
             end
             else begin
               let i = x mod List.length !model in
               Util.Gvec.set v i (x * 2);
               model := List.mapi (fun j y -> if j = i then x * 2 else y) !model
             end)
           script;
         Array.to_list (Util.Gvec.to_array v) = !model))

(* Flow without legalization reports the raw GP metrics. *)
let test_flow_no_legalize () =
  let d = Helpers.small_calibrated () in
  let cfg = { Tdp.Config.default with timing_start = 80; extra_iters = 100 } in
  let r = Tdp.Flow.run ~legalize:false (Tdp.Flow.Efficient cfg) d in
  Alcotest.(check (float 1e-9)) "gp metrics = final metrics" r.metrics_gp.tns r.metrics.tns;
  Alcotest.(check bool) "no legalize/detailed in breakdown" true
    (not (List.mem_assoc "legalize" r.breakdown))

let suite =
  suite
  @ [
      q_gvec_model;
      ("flow without legalization", `Slow, test_flow_no_legalize);
    ]
