(* Tests for the static timing engine: graph construction, delay model
   (hand-computed oracles), propagation, slack/TNS/WNS, and both path
   extraction commands. *)

open Netlist

let check_float = Alcotest.(check (float 1e-6))

(* Hand-computed arrivals for Helpers.chain_design (see the derivation in
   the commit history of this test): r=0.1 c=0.2, clock 500. *)
let chain_ff_d_arrival = 136.004465

let chain_po_arrival = 160.443425

let test_graph_shape () =
  let d = Helpers.chain_design () in
  let g = Sta.Graph.build d in
  (* net arcs: 4 nets with 1 sink each; cell arcs: u1, u2 (1 in x 1 out);
     FF contributes no internal arc. *)
  Alcotest.(check int) "arcs" 6 g.Sta.Graph.num_arcs;
  Alcotest.(check int) "endpoints" 2 (Array.length g.Sta.Graph.endpoints);
  let n_start = Array.fold_left (fun a b -> if b then a + 1 else a) 0 g.Sta.Graph.is_startpoint in
  Alcotest.(check int) "startpoints (pi, ff.q)" 2 n_start

let test_topo_order () =
  let d = Lazy.force Helpers.small_generated in
  let g = Sta.Graph.build d in
  let pos = Array.make (Sta.Graph.num_pins g) 0 in
  Array.iteri (fun i p -> pos.(p) <- i) g.Sta.Graph.topo;
  for a = 0 to g.Sta.Graph.num_arcs - 1 do
    Alcotest.(check bool) "from before to" true (pos.(g.Sta.Graph.arc_from.(a)) < pos.(g.Sta.Graph.arc_to.(a)))
  done

let test_combinational_loop_detected () =
  let b = Helpers.fresh_builder () in
  let u1 = Builder.add_logic b ~cname:"u1" ~lib:Helpers.inv ~x:10.0 ~y:10.0 () in
  let u2 = Builder.add_logic b ~cname:"u2" ~lib:Helpers.inv ~x:20.0 ~y:10.0 () in
  let n1 = Builder.add_net b ~nname:"n1" in
  Builder.connect_by_name b ~net:n1 ~cell:u1 ~pin_name:"o";
  Builder.connect_by_name b ~net:n1 ~cell:u2 ~pin_name:"a1";
  let n2 = Builder.add_net b ~nname:"n2" in
  Builder.connect_by_name b ~net:n2 ~cell:u2 ~pin_name:"o";
  Builder.connect_by_name b ~net:n2 ~cell:u1 ~pin_name:"a1";
  let d = Builder.finish b in
  Alcotest.check_raises "loop" Sta.Graph.Combinational_loop (fun () ->
      ignore (Sta.Graph.build d))

let test_chain_arrivals_exact () =
  let d = Helpers.chain_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let arr = Sta.Timer.arrivals timer in
  (* ff.d is the input pin of cell 2 (the DFF). *)
  let dpin =
    Array.to_list (Design.cell_pins d 2) |> List.find (fun p -> Design.pin_name d p = "d")
  in
  check_float "ff.d arrival" chain_ff_d_arrival arr.(dpin);
  let po_pin = (Design.cell_pins d 4).(0) in
  check_float "po arrival" chain_po_arrival arr.(po_pin);
  (* Slacks: req(ff.d) = 500 - 25, req(po) = 500. *)
  check_float "ff.d slack" (475.0 -. chain_ff_d_arrival) (Sta.Timer.endpoint_slack timer dpin);
  check_float "po slack" (500.0 -. chain_po_arrival) (Sta.Timer.endpoint_slack timer po_pin);
  ignore g

let test_chain_no_violation () =
  let d = Helpers.chain_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  check_float "wns 0" 0.0 (Sta.Timer.wns timer);
  check_float "tns 0" 0.0 (Sta.Timer.tns timer);
  Alcotest.(check int) "no failing" 0 (Sta.Timer.num_failing_endpoints timer)

let test_chain_violation_with_tight_clock () =
  let d = Helpers.chain_design () in
  d.clock_period <- 150.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  (* req(ff.d) = 125 < arr 136.004; req(po) = 150 < 160.443. *)
  Alcotest.(check int) "both fail" 2 (Sta.Timer.num_failing_endpoints timer);
  check_float "wns" (125.0 -. chain_ff_d_arrival) (Sta.Timer.wns timer);
  check_float "tns"
    ((125.0 -. chain_ff_d_arrival) +. (150.0 -. chain_po_arrival))
    (Sta.Timer.tns timer)

let test_timing_moves_with_placement () =
  let d = Helpers.chain_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let dpin =
    Array.to_list (Design.cell_pins d 2) |> List.find (fun p -> Design.pin_name d p = "d")
  in
  let arr0 = (Sta.Timer.arrivals timer).(dpin) in
  (* Pull u1 next to the FF: the d arrival must improve. *)
  d.x.{1} <- 55.0;
  Sta.Timer.invalidate timer;
  Sta.Timer.update timer;
  let arr1 = (Sta.Timer.arrivals timer).(dpin) in
  Alcotest.(check bool) "arrival moved" true (arr1 <> arr0)

let test_diamond_worst_branch () =
  let d = Helpers.diamond_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  match Sta.Timer.critical_path timer with
  | None -> Alcotest.fail "no path"
  | Some p ->
      (* The far branch (ub at y=95) must be the critical one. *)
      let names =
        Array.to_list p.pins |> List.map (fun pid -> Design.cell_name d d.pin_owner.(pid))
      in
      Alcotest.(check bool) "goes through ub" true (List.mem "ub" names);
      Alcotest.(check bool) "valid" true (Sta.Paths.is_valid (Sta.Timer.graph timer) p)

let test_diamond_k_worst () =
  let d = Helpers.diamond_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let ep = g.Sta.Graph.endpoints.(0) in
  let paths = Sta.Paths.k_worst g (Sta.Timer.arrivals timer) ~endpoint:ep ~k:5 in
  (* Exactly two distinct pi->po paths exist. *)
  Alcotest.(check int) "two paths" 2 (List.length paths);
  (match paths with
  | [ p1; p2 ] ->
      Alcotest.(check bool) "sorted worst first" true (p1.arrival >= p2.arrival);
      Alcotest.(check bool) "distinct" true (p1.pins <> p2.pins);
      List.iter
        (fun (p : Sta.Paths.path) ->
          Alcotest.(check bool) "valid" true (Sta.Paths.is_valid g p))
        paths
  | _ -> Alcotest.fail "expected 2");
  (* k=1 returns the worst one, equal to critical_path. *)
  match Sta.Paths.k_worst g (Sta.Timer.arrivals timer) ~endpoint:ep ~k:1 with
  | [ p ] -> check_float "worst = arr at endpoint" (Sta.Timer.arrivals timer).(ep) p.arrival
  | _ -> Alcotest.fail "expected 1"

let with_generated_timer f =
  let d = Lazy.force Helpers.small_generated in
  (* Spread cells a bit so distances are nontrivial (deterministic). *)
  let rng = Util.Rng.create 5 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  Design.clamp_movable d;
  d.clock_period <- 400.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  f d timer

let test_generated_paths_valid () =
  with_generated_timer (fun _d timer ->
      let g = Sta.Timer.graph timer in
      let arr = Sta.Timer.arrivals timer in
      Array.iter
        (fun ep ->
          if Float.is_finite arr.(ep) then begin
            let paths = Sta.Paths.k_worst g arr ~endpoint:ep ~k:4 in
            Alcotest.(check bool) "at least one" true (List.length paths >= 1);
            let prev = ref Float.infinity in
            List.iter
              (fun (p : Sta.Paths.path) ->
                Alcotest.(check bool) "valid" true (Sta.Paths.is_valid g p);
                Alcotest.(check bool) "sorted" true (p.arrival <= !prev +. 1e-9);
                prev := p.arrival)
              paths;
            (* worst path arrival equals the endpoint's propagated arrival *)
            match paths with
            | p :: _ ->
                Alcotest.(check bool) "worst = arr" true (Float.abs (p.arrival -. arr.(ep)) < 1e-6)
            | [] -> ()
          end)
        g.Sta.Graph.endpoints)

let test_generated_wns_tns_consistent () =
  with_generated_timer (fun _d timer ->
      let g = Sta.Timer.graph timer in
      let slacks =
        Array.to_list g.Sta.Graph.endpoints
        |> List.map (fun e -> Sta.Timer.endpoint_slack timer e)
        |> List.filter Float.is_finite
      in
      let wns = List.fold_left Float.min 0.0 slacks in
      let tns = List.fold_left (fun acc s -> if s < 0.0 then acc +. s else acc) 0.0 slacks in
      check_float "wns" wns (Sta.Timer.wns timer);
      check_float "tns" tns (Sta.Timer.tns timer);
      Alcotest.(check bool) "wns >= tns" true (Sta.Timer.wns timer >= Sta.Timer.tns timer))

let test_failing_endpoints_sorted () =
  with_generated_timer (fun _d timer ->
      let failing = Sta.Timer.failing_endpoints timer in
      let slacks = List.map (fun e -> Sta.Timer.endpoint_slack timer e) failing in
      Alcotest.(check bool) "all negative" true (List.for_all (fun s -> s < 0.0) slacks);
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-12 && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "worst first" true (sorted slacks))

let test_report_timing_endpoint_coverage () =
  with_generated_timer (fun _d timer ->
      let n = Sta.Timer.num_failing_endpoints timer in
      if n > 0 then begin
        let paths = Sta.Timer.report_timing_endpoint timer ~n ~k:1 in
        Alcotest.(check int) "n paths" n (List.length paths);
        let eps = List.sort_uniq compare (List.map (fun (p : Sta.Paths.path) -> p.endpoint) paths) in
        Alcotest.(check int) "full endpoint coverage" n (List.length eps)
      end)

let test_report_timing_global_topn () =
  with_generated_timer (fun _d timer ->
      let n = Sta.Timer.num_failing_endpoints timer in
      if n > 1 then begin
        let paths = Sta.Timer.report_timing timer ~n in
        Alcotest.(check int) "n paths returned" n (List.length paths);
        (* globally sorted by slack, worst first *)
        let rec sorted = function
          | (a : Sta.Paths.path) :: (b :: _ as rest) -> a.slack <= b.slack +. 1e-9 && sorted rest
          | _ -> true
        in
        Alcotest.(check bool) "sorted" true (sorted paths);
        (* the single worst path overall must be first *)
        let wns = Sta.Timer.wns timer in
        match paths with
        | p :: _ -> Alcotest.(check bool) "head is wns path" true (Float.abs (p.slack -. wns) < 1e-6)
        | [] -> ()
      end)

let test_report_stats () =
  with_generated_timer (fun _d timer ->
      let n = Sta.Timer.num_failing_endpoints timer in
      if n > 0 then begin
        let paths = Sta.Timer.report_timing_endpoint timer ~n ~k:2 in
        let s = Sta.Timer.stats_of_paths timer paths ~elapsed:0.5 in
        Alcotest.(check int) "paths counted" (List.length paths) s.Sta.Report.num_paths;
        Alcotest.(check bool) "endpoints <= n" true (s.Sta.Report.num_endpoints <= n);
        Alcotest.(check bool) "pairs > 0" true (s.Sta.Report.num_pin_pairs > 0);
        check_float "elapsed" 0.5 s.Sta.Report.elapsed
      end)

let test_invalidate_refresh () =
  let d = Helpers.chain_design () in
  let timer = Sta.Timer.create d in
  let tns0 = Sta.Timer.tns timer in
  (* ensure implicit update happened *)
  check_float "tns idempotent" tns0 (Sta.Timer.tns timer);
  d.clock_period <- 100.0;
  (* required times are baked into the graph at build; a new timer sees
     the new constraint *)
  let timer2 = Sta.Timer.create d in
  Alcotest.(check bool) "tighter clock fails" true (Sta.Timer.tns timer2 < 0.0)

let test_star_vs_steiner_topology () =
  with_generated_timer (fun d _ ->
      let t_star = Sta.Timer.create ~topology:Sta.Delay.Star d in
      let t_st = Sta.Timer.create ~topology:Sta.Delay.Steiner_tree d in
      Sta.Timer.update t_star;
      Sta.Timer.update t_st;
      (* Steiner trees are never longer than stars, so Steiner arrival at
         any endpoint cannot exceed... (not strictly true for delays, but
         TNS should not be dramatically worse; here we just check both
         run and produce finite, same-sign summaries) *)
      Alcotest.(check bool) "both finite" true
        (Float.is_finite (Sta.Timer.tns t_star) && Float.is_finite (Sta.Timer.tns t_st));
      Alcotest.(check bool) "star at least as pessimistic in total" true
        (Sta.Timer.tns t_star <= Sta.Timer.tns t_st +. 1e-6))

let test_incremental_equals_full () =
  with_generated_timer (fun d timer ->
      (* Move a handful of cells, re-time incrementally, compare against a
         fresh full timer: arrivals/slacks must agree exactly. *)
      let rng = Util.Rng.create 77 in
      let moved = ref [] in
      for _ = 1 to 8 do
        let id = Util.Rng.int rng (Design.num_cells d) in
        if Design.is_movable d id then begin
          d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
          d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die);
          moved := id :: !moved
        end
      done;
      Design.clamp_movable d;
      Sta.Timer.update_moved timer ~cells:!moved;
      let fresh = Sta.Timer.create d in
      Sta.Timer.update fresh;
      let arr_inc = Sta.Timer.arrivals timer and arr_full = Sta.Timer.arrivals fresh in
      let bad = ref 0 in
      Array.iteri
        (fun i v ->
          let w = arr_full.(i) in
          let same =
            (Float.is_finite v && Float.is_finite w && Float.abs (v -. w) < 1e-9)
            || v = w (* covers the +-inf cases *)
          in
          if not same then incr bad)
        arr_inc;
      Alcotest.(check int) "arrivals identical" 0 !bad;
      check_float "tns identical" (Sta.Timer.tns fresh) (Sta.Timer.tns timer);
      check_float "wns identical" (Sta.Timer.wns fresh) (Sta.Timer.wns timer))

let test_incremental_noop_move () =
  with_generated_timer (fun _d timer ->
      let tns0 = Sta.Timer.tns timer in
      Sta.Timer.update_moved timer ~cells:[];
      check_float "empty move set is a no-op" tns0 (Sta.Timer.tns timer))

let suite =
  [
    ("graph shape", `Quick, test_graph_shape);
    ("incremental == full re-time", `Quick, test_incremental_equals_full);
    ("incremental no-op", `Quick, test_incremental_noop_move);
    ("topological order", `Quick, test_topo_order);
    ("combinational loop detected", `Quick, test_combinational_loop_detected);
    ("chain arrivals exact", `Quick, test_chain_arrivals_exact);
    ("chain no violation", `Quick, test_chain_no_violation);
    ("chain violation tight clock", `Quick, test_chain_violation_with_tight_clock);
    ("timing moves with placement", `Quick, test_timing_moves_with_placement);
    ("diamond worst branch", `Quick, test_diamond_worst_branch);
    ("diamond k-worst", `Quick, test_diamond_k_worst);
    ("generated paths valid", `Quick, test_generated_paths_valid);
    ("generated wns/tns consistent", `Quick, test_generated_wns_tns_consistent);
    ("failing endpoints sorted", `Quick, test_failing_endpoints_sorted);
    ("report_timing_endpoint coverage", `Quick, test_report_timing_endpoint_coverage);
    ("report_timing global top-n", `Quick, test_report_timing_global_topn);
    ("report stats", `Quick, test_report_stats);
    ("timer refresh semantics", `Quick, test_invalidate_refresh);
    ("star vs steiner topology", `Quick, test_star_vs_steiner_topology);
  ]

(* Parallel delay kernel must agree exactly with the sequential one. *)
let test_parallel_delay_equivalence () =
  with_generated_timer (fun d timer ->
      let tns_seq = Helpers.with_domains 1 (fun () -> Sta.Timer.tns timer) in
      let tns_par =
        Helpers.with_domains 4 (fun () ->
            let timer_par = Sta.Timer.create d in
            Sta.Timer.update timer_par;
            Sta.Timer.tns timer_par)
      in
      check_float "parallel == sequential" tns_seq tns_par)

let suite = suite @ [ ("parallel delay kernel", `Quick, test_parallel_delay_equivalence) ]
