(* Unit + property tests for the util library: Rng, Dheap, Union_find,
   Gvec, Stats, Tablefmt, Timerstat. *)

let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------------- Rng ---------------- *)

let test_rng_determinism () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Rng.int a 1000) (Util.Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  let xs = List.init 20 (fun _ -> Util.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Util.Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Util.Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_rng_float_mean () =
  let rng = Util.Rng.create 9 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Util.Rng.float rng 1.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean ~ 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_normal_moments () =
  let rng = Util.Rng.create 10 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Util.Rng.normal rng) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs (Util.Stats.mean xs) < 0.02);
  Alcotest.(check bool) "std ~ 1" true (Float.abs (Util.Stats.stddev xs -. 1.0) < 0.02)

let test_rng_bernoulli () =
  let rng = Util.Rng.create 11 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Util.Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "freq ~ 0.3" true (Float.abs (freq -. 0.3) < 0.01)

let test_rng_permutation () =
  let rng = Util.Rng.create 12 in
  let p = Util.Rng.permutation rng 100 in
  let seen = Array.make 100 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen)

let test_rng_range () =
  let rng = Util.Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Util.Rng.range rng 5 9 in
    Alcotest.(check bool) "in [5,9)" true (v >= 5 && v < 9)
  done

let test_rng_split_independent () =
  let a = Util.Rng.create 42 in
  let b = Util.Rng.split a in
  let xs = List.init 10 (fun _ -> Util.Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Util.Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

(* ---------------- Dheap ---------------- *)

let test_dheap_sorted_pop () =
  let h = Util.Dheap.create () in
  let rng = Util.Rng.create 1 in
  let keys = Array.init 500 (fun _ -> Util.Rng.float rng 100.0) in
  Array.iteri (fun i k -> Util.Dheap.push h k i) keys;
  let prev = ref Float.neg_infinity in
  while not (Util.Dheap.is_empty h) do
    let k, _ = Util.Dheap.pop h in
    Alcotest.(check bool) "non-decreasing" true (k >= !prev);
    prev := k
  done

let test_dheap_payloads () =
  let h = Util.Dheap.create () in
  Util.Dheap.push h 3.0 "c";
  Util.Dheap.push h 1.0 "a";
  Util.Dheap.push h 2.0 "b";
  let _, a = Util.Dheap.pop h in
  let _, b = Util.Dheap.pop h in
  let _, c = Util.Dheap.pop h in
  Alcotest.(check (list string)) "payload order" [ "a"; "b"; "c" ] [ a; b; c ]

let test_dheap_empty_raises () =
  let h : int Util.Dheap.t = Util.Dheap.create () in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Util.Dheap.pop h));
  Alcotest.check_raises "peek empty" Not_found (fun () -> ignore (Util.Dheap.peek_key h))

let test_dheap_peek () =
  let h = Util.Dheap.create () in
  Util.Dheap.push h 5.0 ();
  Util.Dheap.push h 2.0 ();
  check_float "peek is min" 2.0 (Util.Dheap.peek_key h);
  Alcotest.(check int) "length" 2 (Util.Dheap.length h)

let dheap_qcheck =
  qtest "dheap pops sorted" QCheck.(list (float_bound_inclusive 1000.0)) (fun keys ->
      let h = Util.Dheap.create () in
      List.iter (fun k -> Util.Dheap.push h k ()) keys;
      let out = ref [] in
      while not (Util.Dheap.is_empty h) do
        out := fst (Util.Dheap.pop h) :: !out
      done;
      List.rev !out = List.sort compare keys)

(* ---------------- Union_find ---------------- *)

let test_uf_basic () =
  let uf = Util.Union_find.create 10 in
  Alcotest.(check bool) "initially apart" false (Util.Union_find.same uf 0 1);
  Alcotest.(check bool) "union returns true" true (Util.Union_find.union uf 0 1);
  Alcotest.(check bool) "union again false" false (Util.Union_find.union uf 0 1);
  Alcotest.(check bool) "now same" true (Util.Union_find.same uf 0 1)

let test_uf_transitive () =
  let uf = Util.Union_find.create 10 in
  ignore (Util.Union_find.union uf 0 1);
  ignore (Util.Union_find.union uf 1 2);
  ignore (Util.Union_find.union uf 3 4);
  Alcotest.(check bool) "0~2" true (Util.Union_find.same uf 0 2);
  Alcotest.(check bool) "0!~3" false (Util.Union_find.same uf 0 3)

let test_uf_spanning () =
  (* n-1 unions over n elements following a chain produce one set. *)
  let n = 100 in
  let uf = Util.Union_find.create n in
  for i = 0 to n - 2 do
    Alcotest.(check bool) "new edge merges" true (Util.Union_find.union uf i (i + 1))
  done;
  Alcotest.(check bool) "all connected" true (Util.Union_find.same uf 0 (n - 1))

(* ---------------- Gvec ---------------- *)

let test_gvec_push_get () =
  let v = Util.Gvec.create () in
  for i = 0 to 999 do
    Util.Gvec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 1000 (Util.Gvec.length v);
  Alcotest.(check int) "get 500" 1000 (Util.Gvec.get v 500)

let test_gvec_set () =
  let v = Util.Gvec.create () in
  Util.Gvec.push v 1;
  Util.Gvec.set v 0 9;
  Alcotest.(check int) "set" 9 (Util.Gvec.get v 0)

let test_gvec_bounds () =
  let v = Util.Gvec.create () in
  Util.Gvec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Gvec.get: out of bounds") (fun () ->
      ignore (Util.Gvec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Gvec.set: out of bounds") (fun () ->
      Util.Gvec.set v (-1) 0)

let test_gvec_to_array_clear () =
  let v = Util.Gvec.create () in
  List.iter (Util.Gvec.push v) [ 1; 2; 3 ];
  Alcotest.(check (array int)) "to_array" [| 1; 2; 3 |] (Util.Gvec.to_array v);
  Util.Gvec.clear v;
  Alcotest.(check int) "cleared" 0 (Util.Gvec.length v)

(* ---------------- Stats ---------------- *)

let test_stats_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Util.Stats.mean a);
  check_float "sum" 10.0 (Util.Stats.sum a);
  check_float "min" 1.0 (Util.Stats.min_elt a);
  check_float "max" 4.0 (Util.Stats.max_elt a);
  check_float "median" 2.5 (Util.Stats.median a);
  check_float "variance" (5.0 /. 3.0) (Util.Stats.variance a)

let test_stats_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "p0" 10.0 (Util.Stats.percentile a 0.0);
  check_float "p100" 50.0 (Util.Stats.percentile a 100.0);
  check_float "p50" 30.0 (Util.Stats.percentile a 50.0);
  check_float "p25" 20.0 (Util.Stats.percentile a 25.0)

let test_stats_geomean () =
  check_float "geomean" 2.0 (Util.Stats.geomean [| 1.0; 2.0; 4.0 |]);
  check_float "geomean single" 5.0 (Util.Stats.geomean [| 5.0 |])

let test_stats_degenerate () =
  check_float "empty mean" 0.0 (Util.Stats.mean [||]);
  check_float "single variance" 0.0 (Util.Stats.variance [| 3.0 |]);
  check_float "cv of zeros" 0.0 (Util.Stats.coeff_variation [| 0.0; 0.0 |])

let stats_percentile_qcheck =
  qtest "percentile within [min,max]"
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (l, p) ->
      let a = Array.of_list l in
      let v = Util.Stats.percentile a p in
      v >= Util.Stats.min_elt a -. 1e-9 && v <= Util.Stats.max_elt a +. 1e-9)

(* ---------------- Tablefmt ---------------- *)

let test_tablefmt_render () =
  let t =
    Util.Tablefmt.create ~title:"T" ~headers:[ "a"; "bb" ] ~aligns:[ Left; Right ]
  in
  Util.Tablefmt.add_row t [ "x"; "1" ];
  let s = Util.Tablefmt.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "mentions header" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l >= 1 && String.trim l <> "" && String.sub (String.trim l) 0 1 = "a"))

let test_tablefmt_arity () =
  let t = Util.Tablefmt.create ~title:"T" ~headers:[ "a" ] ~aligns:[ Left ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: arity mismatch") (fun () ->
      Util.Tablefmt.add_row t [ "x"; "y" ])

let test_tablefmt_fmt_float () =
  Alcotest.(check string) "nan" "-" (Util.Tablefmt.fmt_float Float.nan);
  Alcotest.(check string) "prec" "1.50" (Util.Tablefmt.fmt_float ~prec:2 1.5)

(* ---------------- Timerstat ---------------- *)

let test_timerstat () =
  let ts = Util.Timerstat.create () in
  Util.Timerstat.add ts "a" 1.0;
  Util.Timerstat.add ts "a" 0.5;
  Util.Timerstat.add ts "b" 2.0;
  check_float "accumulates" 1.5 (Util.Timerstat.get ts "a");
  check_float "total" 3.5 (Util.Timerstat.total ts);
  (match Util.Timerstat.to_list ts with
  | (n, v) :: _ ->
      Alcotest.(check string) "largest first" "b" n;
      check_float "value" 2.0 v
  | [] -> Alcotest.fail "empty");
  let x = Util.Timerstat.time ts "c" (fun () -> 42) in
  Alcotest.(check int) "passthrough" 42 x;
  Alcotest.(check bool) "recorded" true (Util.Timerstat.get ts "c" >= 0.0);
  Util.Timerstat.reset ts;
  check_float "reset" 0.0 (Util.Timerstat.total ts)

let test_timerstat_exception () =
  (* [time] must record the elapsed time even when the body raises. *)
  let ts = Util.Timerstat.create () in
  (try Util.Timerstat.time ts "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Alcotest.(check bool) "recorded despite raise" true (Util.Timerstat.get ts "boom" >= 0.0);
  Alcotest.(check int) "exactly one entry" 1 (List.length (Util.Timerstat.to_list ts))

(* ---------------- Parallel ---------------- *)

let test_parallel_for () =
  let n = 5000 in
  let a = Array.make n 0 in
  Helpers.with_domains 4 (fun () -> Util.Parallel.for_ n (fun i -> a.(i) <- i));
  Alcotest.(check bool) "all written" true (Array.for_all Fun.id (Array.mapi (fun i v -> v = i) a))

let test_parallel_sum () =
  let s =
    Helpers.with_domains 4 (fun () -> Util.Parallel.sum 10_000 (fun i -> float_of_int i))
  in
  check_float "gauss sum" (float_of_int (10_000 * 9_999 / 2)) s

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng float mean", `Quick, test_rng_float_mean);
    ("rng normal moments", `Quick, test_rng_normal_moments);
    ("rng bernoulli", `Quick, test_rng_bernoulli);
    ("rng permutation", `Quick, test_rng_permutation);
    ("rng range", `Quick, test_rng_range);
    ("rng split", `Quick, test_rng_split_independent);
    ("dheap sorted pops", `Quick, test_dheap_sorted_pop);
    ("dheap payload order", `Quick, test_dheap_payloads);
    ("dheap empty raises", `Quick, test_dheap_empty_raises);
    ("dheap peek/length", `Quick, test_dheap_peek);
    dheap_qcheck;
    ("union_find basic", `Quick, test_uf_basic);
    ("union_find transitive", `Quick, test_uf_transitive);
    ("union_find spanning chain", `Quick, test_uf_spanning);
    ("gvec push/get", `Quick, test_gvec_push_get);
    ("gvec set", `Quick, test_gvec_set);
    ("gvec bounds", `Quick, test_gvec_bounds);
    ("gvec to_array/clear", `Quick, test_gvec_to_array_clear);
    ("stats basic", `Quick, test_stats_basic);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats geomean", `Quick, test_stats_geomean);
    ("stats degenerate", `Quick, test_stats_degenerate);
    stats_percentile_qcheck;
    ("tablefmt render", `Quick, test_tablefmt_render);
    ("tablefmt arity", `Quick, test_tablefmt_arity);
    ("tablefmt fmt_float", `Quick, test_tablefmt_fmt_float);
    ("timerstat", `Quick, test_timerstat);
    ("timerstat exception", `Quick, test_timerstat_exception);
    ("parallel for", `Quick, test_parallel_for);
    ("parallel sum", `Quick, test_parallel_sum);
  ]
