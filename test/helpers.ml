(* Shared builders for hand-crafted test circuits. *)

open Netlist

(* Run [f] with the parallel runtime at [n] domains, restoring the
   previous (possibly PARALLEL_DOMAINS-driven) count afterwards even if
   [f] raises. *)
let with_domains n f =
  let saved = !Util.Parallel.num_domains in
  Util.Parallel.set_num_domains n;
  Fun.protect ~finally:(fun () -> Util.Parallel.set_num_domains saved) f

let die100 = Geom.Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:100.0

let inv = Libcell.find_in_library "INV_X1"

let nand2 = Libcell.find_in_library "NAND2_X1"

let fresh_builder ?(clock_period = 500.0) ?(r = 0.1) ?(c = 0.2) () =
  Builder.create ~name:"test" ~die:die100 ~row_height:1.0 ~clock_period ~r_per_unit:r
    ~c_per_unit:c

(* pi -> inv(u1) -> ff -> inv(u2) -> po, cells on a horizontal line. *)
let chain_design () =
  let b = fresh_builder () in
  let pi = Builder.add_input_pad b ~cname:"pi" ~x:0.0 ~y:50.0 in
  let u1 = Builder.add_logic b ~cname:"u1" ~lib:inv ~x:30.0 ~y:50.0 () in
  let ff = Builder.add_logic b ~cname:"ff" ~lib:Libcell.dff ~x:60.0 ~y:50.0 () in
  let u2 = Builder.add_logic b ~cname:"u2" ~lib:inv ~x:80.0 ~y:50.0 () in
  let po = Builder.add_output_pad b ~cname:"po" ~x:100.0 ~y:50.0 in
  let wire src_cell src_pin dst_cell dst_pin name =
    let n = Builder.add_net b ~nname:name in
    Builder.connect_by_name b ~net:n ~cell:src_cell ~pin_name:src_pin;
    Builder.connect_by_name b ~net:n ~cell:dst_cell ~pin_name:dst_pin
  in
  wire pi "p" u1 "a1" "n1";
  wire u1 "o" ff "d" "n2";
  wire ff "q" u2 "a1" "n3";
  wire u2 "o" po "p" "n4";
  Builder.finish b

(* Reconvergent diamond: pi feeds two parallel nand2 stages that merge.
       pi -> u_a -> u_m -> po
       pi -> u_b ---^
   u_a sits close to the merge, u_b far away: the u_b branch is the
   critical (worse-arrival) one. *)
let diamond_design () =
  let b = fresh_builder () in
  let pi = Builder.add_input_pad b ~cname:"pi" ~x:0.0 ~y:50.0 in
  let ua = Builder.add_logic b ~cname:"ua" ~lib:inv ~x:40.0 ~y:52.0 () in
  let ub = Builder.add_logic b ~cname:"ub" ~lib:inv ~x:40.0 ~y:95.0 () in
  let um = Builder.add_logic b ~cname:"um" ~lib:nand2 ~x:60.0 ~y:50.0 () in
  let po = Builder.add_output_pad b ~cname:"po" ~x:100.0 ~y:50.0 in
  let n0 = Builder.add_net b ~nname:"n0" in
  Builder.connect_by_name b ~net:n0 ~cell:pi ~pin_name:"p";
  Builder.connect_by_name b ~net:n0 ~cell:ua ~pin_name:"a1";
  Builder.connect_by_name b ~net:n0 ~cell:ub ~pin_name:"a1";
  let na = Builder.add_net b ~nname:"na" in
  Builder.connect_by_name b ~net:na ~cell:ua ~pin_name:"o";
  Builder.connect_by_name b ~net:na ~cell:um ~pin_name:"a1";
  let nb = Builder.add_net b ~nname:"nb" in
  Builder.connect_by_name b ~net:nb ~cell:ub ~pin_name:"o";
  Builder.connect_by_name b ~net:nb ~cell:um ~pin_name:"a2";
  let no = Builder.add_net b ~nname:"no" in
  Builder.connect_by_name b ~net:no ~cell:um ~pin_name:"o";
  Builder.connect_by_name b ~net:no ~cell:po ~pin_name:"p";
  Builder.finish b

(* A small but realistic generated design; cached per (scale-independent)
   parameters so suites share the cost. *)
let small_gen_params =
  {
    Workloads.Genparams.default with
    name = "tiny";
    seed = 99;
    num_comb = 220;
    num_ff = 40;
    num_inputs = 12;
    num_outputs = 12;
    levels = 6;
    num_macros = 1;
  }

let small_generated = lazy (Workloads.Generate.generate small_gen_params)

(* A calibrated copy for flow tests (own instance: flows mutate state). *)
let small_calibrated () =
  let d = Workloads.Generate.generate small_gen_params in
  ignore (Workloads.Generate.calibrate_clock d ~quantile:0.9);
  d
