(* Tests for the gp library: WA wirelength, density grid, electrostatic
   force, Nesterov, the global placement loop, legalizer and detailed
   placement. *)

open Netlist

let check_float = Alcotest.(check (float 1e-6))

(* ---------------- Wirelength ---------------- *)

let spread_design () =
  let d = Lazy.force Helpers.small_generated in
  let rng = Util.Rng.create 17 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- 2.0 +. Util.Rng.float rng (Geom.Rect.width d.die -. 4.0);
      d.y.{id} <- 2.0 +. Util.Rng.float rng (Geom.Rect.height d.die -. 4.0)
    end
  done;
  d

let test_wa_approaches_hpwl () =
  let d = spread_design () in
  let n = Design.num_cells d in
  let hpwl = Design.total_hpwl d in
  let wa gamma =
    let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
    Gp.Wirelength.wa_wirelength_grad d ~gamma ~gx ~gy
  in
  let w_tight = wa 0.01 and w_loose = wa 10.0 in
  Alcotest.(check bool) "gamma->0 converges to hpwl" true
    (Float.abs (w_tight -. hpwl) /. hpwl < 0.01);
  Alcotest.(check bool) "wa underestimates" true (w_loose <= hpwl +. 1e-6);
  Alcotest.(check bool) "tight closer than loose" true
    (Float.abs (w_tight -. hpwl) <= Float.abs (w_loose -. hpwl))

let test_wa_gradient_finite_diff () =
  let d = spread_design () in
  let n = Design.num_cells d in
  let gamma = 2.0 in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  let _ = Gp.Wirelength.wa_wirelength_grad d ~gamma ~gx ~gy in
  let value () =
    let tx = Array.make n 0.0 and ty = Array.make n 0.0 in
    Gp.Wirelength.wa_wirelength_grad d ~gamma ~gx:tx ~gy:ty
  in
  let h = 1e-4 in
  let rng = Util.Rng.create 23 in
  for _ = 1 to 10 do
    let id = Util.Rng.int rng n in
    if Design.is_movable d id then begin
      let x0 = d.x.{id} in
      d.x.{id} <- x0 +. h;
      let fp = value () in
      d.x.{id} <- x0 -. h;
      let fm = value () in
      d.x.{id} <- x0;
      let num = (fp -. fm) /. (2.0 *. h) in
      Alcotest.(check bool)
        (Printf.sprintf "grad x cell %d (%g vs %g)" id num gx.(id))
        true
        (Float.abs (num -. gx.(id)) < 1e-3 *. (1.0 +. Float.abs num))
    end
  done

let test_weighted_wl_scales () =
  let d = Helpers.chain_design () in
  let base = Gp.Wirelength.weighted_hpwl d in
  d.net_weight.{0} <- 3.0;
  let weighted = Gp.Wirelength.weighted_hpwl d in
  check_float "weight multiplies" (base +. (2.0 *. Design.net_hpwl d 0)) weighted;
  Design.reset_net_weights d

let test_wa_respects_net_weights () =
  let d = Helpers.chain_design () in
  let n = Design.num_cells d in
  let grad_norm () =
    let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
    ignore (Gp.Wirelength.wa_wirelength_grad d ~gamma:1.0 ~gx ~gy);
    Array.fold_left (fun a v -> a +. Float.abs v) 0.0 gx
  in
  let g1 = grad_norm () in
  for nid = 0 to Design.num_nets d - 1 do
    d.net_weight.{nid} <- 2.0
  done;
  let g2 = grad_norm () in
  Design.reset_net_weights d;
  check_float "gradient scales with weights" (2.0 *. g1) g2

(* ---------------- Density ---------------- *)

let test_density_mass_conservation () =
  let d = spread_design () in
  let grid = Gp.Densitygrid.create d ~bins_x:32 ~bins_y:32 in
  Gp.Densitygrid.update grid d;
  let total = Array.fold_left ( +. ) 0.0 grid.Gp.Densitygrid.density in
  let expect = Design.movable_area d in
  Alcotest.(check bool)
    (Printf.sprintf "mass %.2f ~ area %.2f" total expect)
    true
    (Float.abs (total -. expect) < 0.02 *. expect)

let test_density_fixed_blockages () =
  let d = Lazy.force Helpers.small_generated in
  let grid = Gp.Densitygrid.create d ~bins_x:32 ~bins_y:32 in
  let fixed_total = Array.fold_left ( +. ) 0.0 grid.Gp.Densitygrid.fixed in
  (* Boundary pads hang half-off the die, so expectation uses the
     die-clipped area of each fixed cell. *)
  let expect = ref 0.0 in
  for id = 0 to Design.num_cells d - 1 do
    if not (Design.is_movable d id) then
      expect := !expect +. Geom.Rect.overlap_area d.die (Design.cell_rect d id)
  done;
  let expect = !expect in
  Alcotest.(check bool) "fixed mass" true (Float.abs (fixed_total -. expect) < 0.05 *. expect +. 1.0)

let test_overflow_extremes () =
  let d = spread_design () in
  let grid = Gp.Densitygrid.create d ~bins_x:32 ~bins_y:32 in
  (* Everything stacked in one corner: overflow near 1. *)
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- 2.0;
      d.y.{id} <- 2.0
    end
  done;
  Gp.Densitygrid.update grid d;
  let ovf_stacked =
    Gp.Densitygrid.overflow grid ~target_density:1.0 ~movable_area:(Design.movable_area d)
  in
  Alcotest.(check bool) "stacked overflow high" true (ovf_stacked > 0.5);
  (* Spread again: overflow must drop. *)
  let d2 = spread_design () in
  Gp.Densitygrid.update grid d2;
  let ovf_spread =
    Gp.Densitygrid.overflow grid ~target_density:1.0 ~movable_area:(Design.movable_area d2)
  in
  Alcotest.(check bool) "spread much lower" true (ovf_spread < ovf_stacked /. 2.0)

let test_electro_force_spreads () =
  (* Cells stacked at the centre: the field at the stack points outward,
     i.e. following -gradient increases distance from the stack. *)
  let d = spread_design () in
  let ctr = Geom.Rect.center d.die in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- ctr.Geom.Point.x +. 3.0;
      d.y.{id} <- ctr.Geom.Point.y
    end
  done;
  let grid = Gp.Densitygrid.create d ~bins_x:32 ~bins_y:32 in
  Gp.Densitygrid.update grid d;
  let el = Gp.Electro.create grid in
  Gp.Electro.solve el ~target_density:1.0;
  let n = Design.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  Gp.Electro.add_grad el d ~gx ~gy;
  (* Descending the gradient moves the cell away from the overfull spot:
     probe a test cell shifted right of the stack. *)
  let id = List.hd (Design.movable_ids d) in
  d.x.{id} <- ctr.Geom.Point.x +. 8.0;
  Gp.Densitygrid.update grid d;
  Gp.Electro.solve el ~target_density:1.0;
  Array.fill gx 0 n 0.0;
  Array.fill gy 0 n 0.0;
  Gp.Electro.add_grad el d ~gx ~gy;
  Alcotest.(check bool) "pushed right (descent increases x)" true (gx.(id) < 0.0)

let test_electro_energy_decreases_with_spreading () =
  let d = spread_design () in
  let grid = Gp.Densitygrid.create d ~bins_x:32 ~bins_y:32 in
  let el = Gp.Electro.create grid in
  let energy_at placement =
    placement ();
    Gp.Densitygrid.update grid d;
    Gp.Electro.solve el ~target_density:1.0;
    el.Gp.Electro.energy
  in
  let ctr = Geom.Rect.center d.die in
  let stacked =
    energy_at (fun () ->
        for id = 0 to Design.num_cells d - 1 do
          if Design.is_movable d id then begin
            d.x.{id} <- ctr.Geom.Point.x;
            d.y.{id} <- ctr.Geom.Point.y
          end
        done)
  in
  let spread =
    energy_at (fun () ->
        let rng = Util.Rng.create 31 in
        for id = 0 to Design.num_cells d - 1 do
          if Design.is_movable d id then begin
            d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
            d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
          end
        done)
  in
  Alcotest.(check bool) "stacked energy higher" true (stacked > spread)

let test_electro_buffers_reused () =
  (* The solver state is allocated once in [create] and rewritten in
     place: repeated solves must keep the same physical arrays (no
     per-iteration psi/ex/ey churn) while still changing their values. *)
  let d = spread_design () in
  let grid = Gp.Densitygrid.create d ~bins_x:32 ~bins_y:32 in
  Gp.Densitygrid.update grid d;
  let el = Gp.Electro.create grid in
  Gp.Electro.solve el ~target_density:1.0;
  let psi0 = el.Gp.Electro.psi and ex0 = el.Gp.Electro.ex and ey0 = el.Gp.Electro.ey in
  let psi_snapshot = Array.copy psi0 in
  (* Perturb the placement so the next solve produces a different field. *)
  let ctr = Geom.Rect.center d.die in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- ctr.Geom.Point.x;
      d.y.{id} <- ctr.Geom.Point.y
    end
  done;
  Gp.Densitygrid.update grid d;
  Gp.Electro.solve el ~target_density:1.0;
  Alcotest.(check bool) "psi same array" true (el.Gp.Electro.psi == psi0);
  Alcotest.(check bool) "ex same array" true (el.Gp.Electro.ex == ex0);
  Alcotest.(check bool) "ey same array" true (el.Gp.Electro.ey == ey0);
  Alcotest.(check bool) "psi values updated" true (el.Gp.Electro.psi <> psi_snapshot)

(* ---------------- Nesterov ---------------- *)

let test_nesterov_quadratic_bowl () =
  (* f(x) = 0.5 * ||x - c||^2, gradient x - c. *)
  let target = [| 3.0; -2.0; 7.0 |] in
  let opt = Gp.Nesterov.create [| 0.0; 0.0; 0.0 |] in
  for _ = 1 to 200 do
    let v = Gp.Nesterov.reference opt in
    let g = Array.mapi (fun i vi -> vi -. target.(i)) v in
    Gp.Nesterov.step opt ~g ~fallback_step:0.1 ~max_step:1.0 ~clamp:(fun _ -> ())
  done;
  let u = Gp.Nesterov.iterate opt in
  Array.iteri
    (fun i v -> Alcotest.(check bool) "converged" true (Float.abs (v -. target.(i)) < 1e-3))
    u

let test_nesterov_respects_clamp () =
  let opt = Gp.Nesterov.create [| 0.5 |] in
  let clamp v = v.(0) <- Float.max 0.0 (Float.min 1.0 v.(0)) in
  for _ = 1 to 50 do
    let v = Gp.Nesterov.reference opt in
    (* gradient pushing hard out of the box *)
    let g = [| -100.0 *. (1.0 +. v.(0)) |] in
    Gp.Nesterov.step opt ~g ~fallback_step:0.5 ~max_step:10.0 ~clamp
  done;
  let u = Gp.Nesterov.iterate opt in
  Alcotest.(check bool) "stays in box" true (u.(0) >= 0.0 && u.(0) <= 1.0)

(* ---------------- Globalplace ---------------- *)

let gp_test_params =
  { Gp.Globalplace.default_params with max_iters = 260; min_iters = 80 }

let test_globalplace_reduces_overflow () =
  let d = Helpers.small_calibrated () in
  let r = Gp.Globalplace.run ~params:gp_test_params d in
  Alcotest.(check bool) "ran iterations" true (r.iters > 10);
  Alcotest.(check bool) "overflow shrank" true (r.final_overflow < 0.35);
  (* All movable cells inside the die. *)
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      let rect = Design.cell_rect d id in
      Alcotest.(check bool) "in die" true
        (rect.xl >= d.die.xl -. 1e-6 && rect.xh <= d.die.xh +. 1e-6)
    end
  done

let test_globalplace_deterministic () =
  let d1 = Helpers.small_calibrated () in
  let d2 = Helpers.small_calibrated () in
  let r1 = Gp.Globalplace.run ~params:gp_test_params d1 in
  let r2 = Gp.Globalplace.run ~params:gp_test_params d2 in
  check_float "same hpwl" r1.final_hpwl r2.final_hpwl;
  Alcotest.(check int) "same iters" r1.iters r2.iters

let test_globalplace_hooks_fire () =
  let d = Helpers.small_calibrated () in
  let rounds = ref 0 and grads = ref 0 in
  let hooks =
    {
      Gp.Globalplace.on_round = (fun ~iter:_ ~overflow:_ -> incr rounds);
      extra_grad = (fun ~iter:_ ~wl_norm ~gx:_ ~gy:_ ->
          incr grads;
          Alcotest.(check bool) "wl_norm positive" true (wl_norm > 0.0));
    }
  in
  let params = { gp_test_params with timing_start = 50; round_every = 10 } in
  ignore (Gp.Globalplace.run ~params ~hooks d);
  Alcotest.(check bool) "rounds fired" true (!rounds >= 3);
  Alcotest.(check bool) "grads every iter after start" true (!grads > !rounds)

let test_globalplace_trace_monotone_iters () =
  let d = Helpers.small_calibrated () in
  let r = Gp.Globalplace.run ~params:gp_test_params d in
  let rec increasing = function
    | (a : Gp.Globalplace.trace_point) :: (b :: _ as rest) -> a.iter < b.iter && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "trace chronological" true (increasing r.trace);
  Alcotest.(check bool) "trace nonempty" true (r.trace <> [])

(* ---------------- Legalize ---------------- *)

let test_legalize_produces_legal () =
  let d = Helpers.small_calibrated () in
  ignore (Gp.Globalplace.run ~params:gp_test_params d);
  let disp = Gp.Legalize.run d in
  Alcotest.(check bool) "legal" true (Gp.Legalize.is_legal d);
  Alcotest.(check bool) "displacement sane" true (disp >= 0.0);
  (* no overlap with blockages *)
  for cid = 0 to Design.num_cells d - 1 do
    if (not (Design.is_movable d cid)) && Design.kind d cid = Design.Blockage then begin
      let b = Design.cell_rect d cid in
      for mid = 0 to Design.num_cells d - 1 do
        if Design.is_movable d mid then
          Alcotest.(check bool) "clear of blockage" true
            (Geom.Rect.overlap_area b (Design.cell_rect d mid) < 1e-6)
      done
    end
  done

let test_legalize_from_stack () =
  (* Even a fully stacked placement legalises. *)
  let d = Helpers.small_calibrated () in
  let ctr = Geom.Rect.center d.die in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- ctr.Geom.Point.x;
      d.y.{id} <- ctr.Geom.Point.y
    end
  done;
  ignore (Gp.Legalize.run d);
  Alcotest.(check bool) "legal from stack" true (Gp.Legalize.is_legal d)

let test_legalize_deterministic () =
  let run () =
    let d = Helpers.small_calibrated () in
    ignore (Gp.Globalplace.run ~params:gp_test_params d);
    ignore (Gp.Legalize.run d);
    Design.total_hpwl d
  in
  check_float "same result" (run ()) (run ())

let test_legalize_is_legal_detects_overlap () =
  let d = Helpers.chain_design () in
  (* Put u1 and u2 in the same row at overlapping x. *)
  d.x.{1} <- 10.0;
  d.y.{1} <- 10.5;
  d.x.{3} <- 10.2;
  d.y.{3} <- 10.5;
  d.x.{2} <- 50.0;
  d.y.{2} <- 20.5;
  Alcotest.(check bool) "overlap detected" false (Gp.Legalize.is_legal d)

(* ---------------- Detailed ---------------- *)

let test_detailed_improves_or_keeps () =
  let d = Helpers.small_calibrated () in
  ignore (Gp.Globalplace.run ~params:gp_test_params d);
  ignore (Gp.Legalize.run d);
  let before = Design.total_hpwl d in
  let swaps = Gp.Detailed.run d in
  let after = Design.total_hpwl d in
  Alcotest.(check bool) "hpwl not worse" true (after <= before +. 1e-6);
  Alcotest.(check bool) "legality preserved" true (Gp.Legalize.is_legal d);
  Alcotest.(check bool) "swap count sane" true (swaps >= 0)

let suite =
  [
    ("wa approaches hpwl", `Quick, test_wa_approaches_hpwl);
    ("wa gradient finite-diff", `Quick, test_wa_gradient_finite_diff);
    ("weighted hpwl scales", `Quick, test_weighted_wl_scales);
    ("wa respects net weights", `Quick, test_wa_respects_net_weights);
    ("density mass conservation", `Quick, test_density_mass_conservation);
    ("density fixed blockages", `Quick, test_density_fixed_blockages);
    ("overflow extremes", `Quick, test_overflow_extremes);
    ("electro force direction", `Quick, test_electro_force_spreads);
    ("electro energy vs spreading", `Quick, test_electro_energy_decreases_with_spreading);
    ("electro buffers reused", `Quick, test_electro_buffers_reused);
    ("nesterov quadratic bowl", `Quick, test_nesterov_quadratic_bowl);
    ("nesterov clamp", `Quick, test_nesterov_respects_clamp);
    ("globalplace reduces overflow", `Slow, test_globalplace_reduces_overflow);
    ("globalplace deterministic", `Slow, test_globalplace_deterministic);
    ("globalplace hooks", `Slow, test_globalplace_hooks_fire);
    ("globalplace trace", `Slow, test_globalplace_trace_monotone_iters);
    ("legalize produces legal", `Slow, test_legalize_produces_legal);
    ("legalize from stack", `Quick, test_legalize_from_stack);
    ("legalize deterministic", `Slow, test_legalize_deterministic);
    ("is_legal detects overlap", `Quick, test_legalize_is_legal_detects_overlap);
    ("detailed placement", `Slow, test_detailed_improves_or_keeps);
  ]

(* Parallel WA gradient must agree with the sequential one (within FP
   reassociation tolerance). *)
let test_wa_parallel_equivalence () =
  let d = spread_design () in
  let n = Design.num_cells d in
  let run () =
    let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
    let v = Gp.Wirelength.wa_wirelength_grad d ~gamma:2.0 ~gx ~gy in
    (v, gx, gy)
  in
  let v_seq, gx_seq, _ = Helpers.with_domains 1 run in
  let v_par, gx_par, _ = Helpers.with_domains 4 run in
  Alcotest.(check bool) "value agrees" true
    (Float.abs (v_seq -. v_par) < 1e-6 *. (1.0 +. Float.abs v_seq));
  let max_diff = ref 0.0 in
  Array.iteri (fun i v -> max_diff := Float.max !max_diff (Float.abs (v -. gx_par.(i)))) gx_seq;
  Alcotest.(check bool) "gradients agree" true (!max_diff < 1e-9)

let suite = suite @ [ ("wa gradient parallel equivalence", `Quick, test_wa_parallel_equivalence) ]
