(* Tests for the synthetic benchmark generator, the suite, and the
   evaluation kit. *)

open Netlist

let check_float = Alcotest.(check (float 1e-9))

let test_generated_structure () =
  let d = Lazy.force Helpers.small_generated in
  (* Every net: one driver, >= 1 sink; every pin connected or an output. *)
  for nid = 0 to Design.num_nets d - 1 do
    Alcotest.(check bool) "driver" true (d.net_driver.(nid) >= 0);
    Alcotest.(check bool) "sinks" true (Design.net_num_sinks d nid >= 1)
  done;
  (* All comb inputs are connected (generator ties every input). *)
  for pid = 0 to Design.num_pins d - 1 do
    if Design.pin_dir d pid = Design.In then
      Alcotest.(check bool) "input connected" true (d.pin_net.(pid) >= 0)
  done

let test_generated_acyclic () =
  let d = Lazy.force Helpers.small_generated in
  (* Graph.build raises Combinational_loop on cycles. *)
  let g = Sta.Graph.build d in
  Alcotest.(check bool) "built" true (g.Sta.Graph.num_arcs > 0)

let test_generated_counts () =
  let p = Helpers.small_gen_params in
  let d = Lazy.force Helpers.small_generated in
  let count pred =
    let n = ref 0 in
    for i = 0 to Design.num_cells d - 1 do
      if pred i then incr n
    done;
    !n
  in
  let n_logic = count (fun i -> Design.kind d i = Design.Logic) in
  Alcotest.(check int) "logic cells" (p.num_comb + p.num_ff) n_logic;
  let n_ff = count (Design.is_ff d) in
  Alcotest.(check int) "ffs" p.num_ff n_ff;
  let n_block = count (fun i -> Design.kind d i = Design.Blockage) in
  Alcotest.(check int) "macros" p.num_macros n_block

let test_generated_deterministic () =
  let d1 = Workloads.Generate.generate Helpers.small_gen_params in
  let d2 = Workloads.Generate.generate Helpers.small_gen_params in
  Alcotest.(check int) "cells" (Design.num_cells d1) (Design.num_cells d2);
  Alcotest.(check int) "nets" (Design.num_nets d1) (Design.num_nets d2);
  check_float "hpwl" (Design.total_hpwl d1) (Design.total_hpwl d2);
  (* net-by-net identical *)
  for nid = 0 to Design.num_nets d1 - 1 do
    Alcotest.(check int) "sinks equal" (Design.net_num_sinks d1 nid) (Design.net_num_sinks d2 nid)
  done

let test_generated_seed_changes () =
  let d1 = Workloads.Generate.generate Helpers.small_gen_params in
  let d2 = Workloads.Generate.generate { Helpers.small_gen_params with seed = 123 } in
  (* Same sizes, different wiring. *)
  let sig_of (d : Design.t) =
    List.init (Design.num_nets d) (fun nid ->
        List.init (Design.net_num_sinks d nid) (fun k -> Design.net_sink d nid k))
  in
  Alcotest.(check bool) "different netlists" true (sig_of d1 <> sig_of d2)

let test_pads_on_boundary () =
  let d = Lazy.force Helpers.small_generated in
  for id = 0 to Design.num_cells d - 1 do
    match Design.kind d id with
    | Design.Input_pad | Design.Output_pad ->
        let x = d.x.{id} and y = d.y.{id} in
        let on_edge v lo hi = Float.abs (v -. lo) < 1e-6 || Float.abs (v -. hi) < 1e-6 in
        Alcotest.(check bool) "pad on die edge" true
          (on_edge x d.die.xl d.die.xh || on_edge y d.die.yl d.die.yh)
    | Design.Logic | Design.Blockage -> ()
  done

let test_fanout_long_tail () =
  let d = Lazy.force Helpers.small_generated in
  let fanouts = Array.init (Design.num_nets d) (fun nid -> Design.net_num_sinks d nid) in
  let max_fo = Array.fold_left max 0 fanouts in
  let mean_fo =
    float_of_int (Array.fold_left ( + ) 0 fanouts) /. float_of_int (Array.length fanouts)
  in
  Alcotest.(check bool)
    (Printf.sprintf "hub nets exist (max %d, mean %.1f)" max_fo mean_fo)
    true
    (float_of_int max_fo > 4.0 *. mean_fo)

let test_calibration_regime () =
  let d = Workloads.Generate.generate Helpers.small_gen_params in
  let q = 0.9 in
  let period = Workloads.Generate.calibrate_clock d ~quantile:q in
  Alcotest.(check bool) "positive period" true (period > 0.0);
  check_float "stored" period d.clock_period;
  (* Re-running the same vanilla GP: roughly (1-q) endpoints should fail. *)
  let _ = Gp.Globalplace.run d in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let n_fail = Sta.Timer.num_failing_endpoints timer in
  let n_total = Array.length (Sta.Timer.graph timer).Sta.Graph.endpoints in
  let frac = float_of_int n_fail /. float_of_int n_total in
  Alcotest.(check bool)
    (Printf.sprintf "failing fraction %.3f near %.3f" frac (1.0 -. q))
    true
    (frac > 0.02 && frac < 3.0 *. (1.0 -. q))

let test_suite_entries () =
  let names = Workloads.Suite.names () in
  Alcotest.(check int) "eight designs" 8 (List.length names);
  Alcotest.(check bool) "sb1 present" true (List.mem "sb1" names);
  Alcotest.(check bool) "unknown rejected" true
    (try
       ignore (Workloads.Suite.find "nope");
       false
     with Util.Errors.Error (Util.Errors.Config_error _) -> true)

let test_suite_scaling () =
  let small = Workloads.Suite.find ~scale:0.25 "sb18" in
  let big = Workloads.Suite.find ~scale:1.0 "sb18" in
  Alcotest.(check bool) "scale shrinks" true
    (small.params.Workloads.Genparams.num_comb < big.params.Workloads.Genparams.num_comb)

let test_suite_load_uncalibrated () =
  let d = Workloads.Suite.load ~scale:0.15 ~calibrate:false "sb18" in
  Alcotest.(check bool) "placeholder clock" true (d.clock_period > 1e6)

(* ---------------- Evalkit ---------------- *)

let test_evalkit_consistency () =
  let d = Helpers.small_calibrated () in
  ignore (Gp.Globalplace.run d);
  let m1 = Evalkit.Metrics.evaluate d in
  let m2 = Evalkit.Metrics.evaluate d in
  check_float "tns stable" m1.tns m2.tns;
  check_float "hpwl stable" m1.hpwl m2.hpwl;
  Alcotest.(check bool) "tns <= 0" true (m1.tns <= 0.0);
  Alcotest.(check bool) "wns >= tns" true (m1.wns >= m1.tns);
  Alcotest.(check bool) "failing <= endpoints" true (m1.num_failing <= m1.num_endpoints);
  check_float "hpwl matches design" (Design.total_hpwl d) m1.hpwl

let test_evalkit_ratio () =
  check_float "both zero" 1.0 (Evalkit.Metrics.neg_metric_ratio ~value:0.0 ~base:0.0);
  check_float "double" 2.0 (Evalkit.Metrics.neg_metric_ratio ~value:(-10.0) ~base:(-5.0));
  Alcotest.(check bool) "zero base inf" true
    (Evalkit.Metrics.neg_metric_ratio ~value:(-1.0) ~base:0.0 = Float.infinity)

let suite =
  [
    ("generated structure", `Quick, test_generated_structure);
    ("generated acyclic", `Quick, test_generated_acyclic);
    ("generated counts", `Quick, test_generated_counts);
    ("generated deterministic", `Quick, test_generated_deterministic);
    ("seed changes wiring", `Quick, test_generated_seed_changes);
    ("pads on boundary", `Quick, test_pads_on_boundary);
    ("fanout long tail", `Quick, test_fanout_long_tail);
    ("clock calibration regime", `Slow, test_calibration_regime);
    ("suite entries", `Quick, test_suite_entries);
    ("suite scaling", `Quick, test_suite_scaling);
    ("suite load uncalibrated", `Quick, test_suite_load_uncalibrated);
    ("evalkit consistency", `Slow, test_evalkit_consistency);
    ("evalkit ratio", `Quick, test_evalkit_ratio);
  ]
