(* Tests for the core tdp library: pin attraction (Eq. 8-10), extraction
   rounds, the baselines, and the end-to-end flows. *)

open Netlist

let check_float = Alcotest.(check (float 1e-6))

(* ---------------- Pin_attract: Eq. 9 semantics ---------------- *)

(* A fake two-arc path over the chain design's net arcs. *)
let chain_with_graph () =
  let d = Helpers.chain_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  (d, timer)

let get_path timer ep =
  match
    Sta.Paths.k_worst (Sta.Timer.graph timer) (Sta.Timer.arrivals timer) ~endpoint:ep ~k:1
  with
  | [ p ] -> p
  | _ -> Alcotest.fail "expected a path"

let test_eq9_first_insert_w0 () =
  let d, _timer = chain_with_graph () in
  d.clock_period <- 150.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let pa = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
  let ep = g.Sta.Graph.endpoints.(0) in
  let p = get_path timer ep in
  Tdp.Pin_attract.update_from_paths pa g ~w0:10.0 ~w1:0.5 ~wns:(Sta.Timer.wns timer)
    ~stale_decay:1.0 [ p ];
  (* chain: the path to ff.d crosses 2 net arcs (n1, n2). *)
  Alcotest.(check int) "pairs = net arcs on path" 2 (Tdp.Pin_attract.num_pairs pa);
  ignore timer

let test_eq9_accumulates_on_repeat () =
  let d, _ = chain_with_graph () in
  d.clock_period <- 150.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let pa = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
  let wns = Sta.Timer.wns timer in
  let ep_worst = List.hd (Sta.Timer.failing_endpoints timer) in
  let p = get_path timer ep_worst in
  (* Worst path: ratio = 1. First round: w0. Second: w0 + w1. *)
  Tdp.Pin_attract.update_from_paths pa g ~w0:10.0 ~w1:0.5 ~wns ~stale_decay:1.0 [ p ];
  let v1 = Tdp.Pin_attract.loss_value pa in
  Tdp.Pin_attract.update_from_paths pa g ~w0:10.0 ~w1:0.5 ~wns ~stale_decay:1.0 [ p ];
  let v2 = Tdp.Pin_attract.loss_value pa in
  (* weights went from 10 to 10.5 on every pair: loss scales by 1.05 *)
  Alcotest.(check bool) "loss grows by w1/w0" true (Float.abs ((v2 /. v1) -. 1.05) < 1e-9)

let test_eq9_path_sharing () =
  (* Two paths sharing a pair: the shared pair accumulates both
     contributions in a single round. Use the diamond: paths through ua
     and ub share the net arc um.o -> po. *)
  let d = Helpers.diamond_design () in
  d.clock_period <- 10.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let ep = g.Sta.Graph.endpoints.(0) in
  let paths = Sta.Paths.k_worst g (Sta.Timer.arrivals timer) ~endpoint:ep ~k:2 in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  let pa = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
  Tdp.Pin_attract.update_from_paths pa g ~w0:1.0 ~w1:1.0 ~wns:(Sta.Timer.wns timer)
    ~stale_decay:1.0 paths;
  (* unique net arcs: n0->ua, n0->ub, na, nb, no = 5; the shared 'no' arc
     must have weight 1 + 1*(slack2/wns) > 1 while unshared arcs have 1. *)
  Alcotest.(check int) "five pairs" 5 (Tdp.Pin_attract.num_pairs pa)

let test_stale_decay () =
  let d, _ = chain_with_graph () in
  d.clock_period <- 150.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let wns = Sta.Timer.wns timer in
  let pa = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
  let ep_worst = List.hd (Sta.Timer.failing_endpoints timer) in
  let other_ep =
    List.find (fun e -> e <> ep_worst) (Array.to_list g.Sta.Graph.endpoints)
  in
  let p1 = get_path timer ep_worst and p2 = get_path timer other_ep in
  Tdp.Pin_attract.update_from_paths pa g ~w0:10.0 ~w1:0.5 ~wns ~stale_decay:0.5 [ p1; p2 ];
  let v_both = Tdp.Pin_attract.loss_value pa in
  (* Next round only p1 is critical: p2's pairs decay by 0.5. *)
  Tdp.Pin_attract.update_from_paths pa g ~w0:10.0 ~w1:0.5 ~wns ~stale_decay:0.5 [ p1 ];
  let v_after = Tdp.Pin_attract.loss_value pa in
  Alcotest.(check bool) "stale pairs decayed" true (v_after < v_both);
  (* Empty round: weights held, loss unchanged. *)
  Tdp.Pin_attract.update_from_paths pa g ~w0:10.0 ~w1:0.5 ~wns ~stale_decay:0.5 [];
  check_float "hold on empty round" v_after (Tdp.Pin_attract.loss_value pa)

let test_loss_values_hand_computed () =
  let d = Helpers.chain_design () in
  let pa_q = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
  let pa_l = Tdp.Pin_attract.create d ~loss:Tdp.Config.Linear in
  let pa_h = Tdp.Pin_attract.create d ~loss:Tdp.Config.Hpwl_like in
  (* Manually inject one pair: pi.p (0,50) -> u1.a1 (29.5,50), w=2. *)
  let inject pa =
    let timer = Sta.Timer.create d in
    Sta.Timer.update timer;
    let g = Sta.Timer.graph timer in
    d.clock_period <- 150.0;
    let timer = Sta.Timer.create d in
    Sta.Timer.update timer;
    let ep = List.hd (Sta.Timer.failing_endpoints timer) in
    let p = get_path timer ep in
    Tdp.Pin_attract.update_from_paths pa g ~w0:2.0 ~w1:0.0 ~wns:(-1.0) ~stale_decay:1.0 [ p ]
  in
  inject pa_q;
  inject pa_l;
  inject pa_h;
  (* path pins: pi.p(0,50) -> u1.a1(29.5,50) -> u1.o(30.5,50) -> ff.d(58,50).
     Net arcs: (pi.p,u1.a1) d=29.5 and (u1.o,ff.d) d=27.5, both horizontal. *)
  check_float "quadratic" (2.0 *. ((29.5 *. 29.5) +. (27.5 *. 27.5))) (Tdp.Pin_attract.loss_value pa_q);
  check_float "linear" (2.0 *. (29.5 +. 27.5)) (Tdp.Pin_attract.loss_value pa_l);
  check_float "hpwl-like" (2.0 *. (29.5 +. 27.5)) (Tdp.Pin_attract.loss_value pa_h)

let test_grad_antisymmetric_and_finite_diff () =
  let d = Helpers.chain_design () in
  d.clock_period <- 150.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  List.iter
    (fun loss ->
      let pa = Tdp.Pin_attract.create d ~loss in
      let ep = List.hd (Sta.Timer.failing_endpoints timer) in
      let p = get_path timer ep in
      Tdp.Pin_attract.update_from_paths pa g ~w0:3.0 ~w1:0.0 ~wns:(-1.0) ~stale_decay:1.0 [ p ];
      let n = Design.num_cells d in
      let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
      Tdp.Pin_attract.add_grad pa ~beta:1.0 ~gx ~gy;
      (* Total force sums to zero (action = reaction). *)
      check_float "sum gx zero" 0.0 (Array.fold_left ( +. ) 0.0 gx);
      check_float "sum gy zero" 0.0 (Array.fold_left ( +. ) 0.0 gy);
      (* Finite difference on movable cell u1 (id 1), x direction. *)
      let h = 1e-5 in
      let x0 = d.x.{1} in
      d.x.{1} <- x0 +. h;
      let fp = Tdp.Pin_attract.loss_value pa in
      d.x.{1} <- x0 -. h;
      let fm = Tdp.Pin_attract.loss_value pa in
      d.x.{1} <- x0;
      let num = (fp -. fm) /. (2.0 *. h) in
      Alcotest.(check bool)
        (Printf.sprintf "finite diff (%g vs %g)" num gx.(1))
        true
        (Float.abs (num -. gx.(1)) < 1e-3 *. (1.0 +. Float.abs num)))
    [ Tdp.Config.Quadratic; Tdp.Config.Linear; Tdp.Config.Hpwl_like ]

(* ---------------- Extraction rounds ---------------- *)

let test_extraction_round () =
  let d = Helpers.small_calibrated () in
  (* Random-ish spread so there are real violations. *)
  let rng = Util.Rng.create 3 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  let ex = Tdp.Extraction.create d ~config:Tdp.Config.default ~topology:Sta.Delay.Steiner_tree in
  let s1 = Tdp.Extraction.round ex ~iter:0 in
  Alcotest.(check bool) "found failing endpoints" true (s1.num_failing > 0);
  Alcotest.(check int) "one path per endpoint" s1.num_failing s1.num_paths;
  Alcotest.(check bool) "pairs collected" true (s1.num_pairs > 0);
  let s2 = Tdp.Extraction.round ex ~iter:10 in
  Alcotest.(check bool) "pairs monotone" true (s2.num_pairs >= s1.num_pairs);
  Alcotest.(check int) "rounds recorded" 2 (List.length (Tdp.Extraction.rounds ex))

let test_extraction_relax_ratchet () =
  let d = Helpers.chain_design () in
  (* Loose clock: nothing fails, relax must ratchet down. *)
  let ex = Tdp.Extraction.create d ~config:Tdp.Config.default ~topology:Sta.Delay.Steiner_tree in
  let beta0 = Tdp.Extraction.effective_beta ex in
  ignore (Tdp.Extraction.round ex ~iter:0);
  let beta1 = Tdp.Extraction.effective_beta ex in
  Alcotest.(check bool) "relaxed" true (beta1 < beta0)

let test_extraction_global_topn_variant () =
  let d = Helpers.small_calibrated () in
  let rng = Util.Rng.create 4 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  let cfg = { Tdp.Config.default with extraction = Tdp.Config.Global_topn { mult = 2 } } in
  let ex = Tdp.Extraction.create d ~config:cfg ~topology:Sta.Delay.Steiner_tree in
  let s = Tdp.Extraction.round ex ~iter:0 in
  Alcotest.(check bool) "paths bounded by 2n" true (s.num_paths <= 2 * s.num_failing)

(* ---------------- Net weighting (DP4 baseline) ---------------- *)

let test_net_weighting_raises_critical () =
  let d = Helpers.chain_design () in
  d.clock_period <- 150.0;
  let nw = Tdp.Net_weighting.create d ~topology:Sta.Delay.Steiner_tree in
  let tns, wns = Tdp.Net_weighting.round nw in
  Alcotest.(check bool) "violations seen" true (tns < 0.0 && wns < 0.0);
  (* All nets on the (entirely critical) chain get weight > 1. *)
  for nid = 0 to Design.num_nets d - 1 do
    Alcotest.(check bool)
      (Design.net_name d nid ^ " weighted")
      true
      (d.net_weight.{nid} > 1.0);
    (* Momentum bound: weight <= 1 + alpha. *)
    Alcotest.(check bool) "bounded" true (d.net_weight.{nid} <= 9.0 +. 1e-9)
  done;
  Design.reset_net_weights d

let test_net_weighting_no_change_when_met () =
  let d = Helpers.chain_design () in
  Design.reset_net_weights d;
  let nw = Tdp.Net_weighting.create d ~topology:Sta.Delay.Steiner_tree in
  let tns, _ = Tdp.Net_weighting.round nw in
  check_float "no violation" 0.0 tns;
  for nid = 0 to Design.num_nets d - 1 do
    check_float "weight kept" 1.0 d.net_weight.{nid}
  done

let test_net_weighting_momentum_converges () =
  let d = Helpers.chain_design () in
  d.clock_period <- 150.0;
  Design.reset_net_weights d;
  let nw = Tdp.Net_weighting.create d ~topology:Sta.Delay.Steiner_tree in
  for _ = 1 to 30 do
    ignore (Tdp.Net_weighting.round nw)
  done;
  (* The WNS-defining net converges to w_hat = 1 + alpha (crit = 1). *)
  let max_w = ref 0.0 in
  for nid = 0 to Design.num_nets d - 1 do
    max_w := Float.max !max_w d.net_weight.{nid}
  done;
  let max_w = !max_w in
  Alcotest.(check bool) "converges toward 1+alpha" true (max_w > 8.0);
  Design.reset_net_weights d

(* ---------------- Differentiable timing ---------------- *)

let test_diff_timing_smooth_ge_hard () =
  let d = Helpers.small_calibrated () in
  let dt = Tdp.Diff_timing.create d in
  ignore (Tdp.Diff_timing.round dt);
  (* log-sum-exp smooth max dominates the hard max. *)
  let timer = Sta.Timer.create ~topology:Sta.Delay.Star d in
  Sta.Timer.update timer;
  let arr_hard = Sta.Timer.arrivals timer in
  let g = Sta.Timer.graph timer in
  Array.iter
    (fun ep ->
      if Float.is_finite arr_hard.(ep) then
        Alcotest.(check bool) "smooth >= hard" true
          (dt.Tdp.Diff_timing.arr_sm.(ep) >= arr_hard.(ep) -. 1e-6))
    g.Sta.Graph.endpoints

let test_diff_timing_gradient_descends () =
  let d = Helpers.small_calibrated () in
  (* Stack cells so timing is bad and gradients are meaningful. *)
  let rng = Util.Rng.create 9 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  d.clock_period <- d.clock_period *. 0.7;
  let dt = Tdp.Diff_timing.create d in
  let tns0, _ = Tdp.Diff_timing.round dt in
  let n = Design.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  Tdp.Diff_timing.add_grad dt ~mult:1.0 ~gx ~gy;
  let gnorm = Array.fold_left (fun a v -> a +. Float.abs v) 0.0 gx in
  Alcotest.(check bool) "nonzero gradient" true (gnorm > 0.0);
  (* Take a small step along -grad; hard TNS should improve. *)
  let step = 0.5 /. Float.max 1e-9 (Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 gx) in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- d.x.{id} -. (step *. gx.(id));
      d.y.{id} <- d.y.{id} -. (step *. gy.(id))
    end
  done;
  Design.clamp_movable d;
  let tns1, _ = Tdp.Diff_timing.round dt in
  Alcotest.(check bool)
    (Printf.sprintf "tns improved (%.1f -> %.1f)" tns0 tns1)
    true (tns1 >= tns0)

(* ---------------- Distribution anchors ---------------- *)

let test_distribution_anchors () =
  let d = Helpers.small_calibrated () in
  let rng = Util.Rng.create 11 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  d.clock_period <- d.clock_period *. 0.7;
  let ds = Tdp.Distribution.create d ~topology:Sta.Delay.Steiner_tree in
  let tns, _ = Tdp.Distribution.round ds in
  Alcotest.(check bool) "violations" true (tns < 0.0);
  let n = Design.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  Tdp.Distribution.add_grad ds ~mult:1.0 ~gx ~gy;
  let gnorm = Array.fold_left (fun a v -> a +. Float.abs v) 0.0 gx in
  Alcotest.(check bool) "anchor forces exist" true (gnorm > 0.0);
  (* Gradients touch only movable cells. *)
  for id = 0 to Design.num_cells d - 1 do
    if not (Design.is_movable d id) then
      check_float "fixed untouched" 0.0 (Float.abs gx.(id) +. Float.abs gy.(id))
  done

(* ---------------- Flows (integration) ---------------- *)

let flow_cfg =
  (* Shrunk iteration budget for test speed. *)
  { Tdp.Config.default with timing_start = 120; extra_iters = 180 }

let test_flow_efficient_beats_vanilla () =
  let d = Helpers.small_calibrated () in
  let rv = Tdp.Flow.run Tdp.Flow.Vanilla d in
  let re = Tdp.Flow.run (Tdp.Flow.Efficient flow_cfg) d in
  Alcotest.(check bool)
    (Printf.sprintf "tns improved (%.0f -> %.0f)" rv.metrics.tns re.metrics.tns)
    true
    (re.metrics.tns > rv.metrics.tns);
  Alcotest.(check bool) "wns improved" true (re.metrics.wns >= rv.metrics.wns);
  Alcotest.(check bool) "curve recorded" true (re.curve <> []);
  Alcotest.(check bool) "extraction rounds recorded" true (re.extraction_rounds <> []);
  Alcotest.(check bool) "runtime positive" true (re.runtime > 0.0);
  Alcotest.(check bool) "legal output" true (Gp.Legalize.is_legal d)

let test_flow_breakdown_components () =
  let d = Helpers.small_calibrated () in
  let r = Tdp.Flow.run (Tdp.Flow.Efficient flow_cfg) d in
  let has k = List.mem_assoc k r.breakdown in
  Alcotest.(check bool) "wl_grad" true (has "wl_grad");
  Alcotest.(check bool) "density" true (has "density");
  Alcotest.(check bool) "optimizer" true (has "optimizer");
  Alcotest.(check bool) "sta" true (has "sta");
  Alcotest.(check bool) "extraction" true (has "extraction");
  Alcotest.(check bool) "legalize" true (has "legalize")

let test_flow_all_methods_run () =
  let d = Helpers.small_calibrated () in
  List.iter
    (fun meth ->
      let r = Tdp.Flow.run meth d in
      Alcotest.(check bool)
        (r.name ^ " metrics sane")
        true
        (r.metrics.hpwl > 0.0 && r.metrics.tns <= 0.0 && r.metrics.wns <= 0.0))
    [
      Tdp.Flow.Dp4;
      Tdp.Flow.Diff_tdp;
      Tdp.Flow.Dist_tdp;
      Tdp.Flow.Dp4_in_ours;
      Tdp.Flow.Efficient (Tdp.Config.with_loss Tdp.Config.Linear flow_cfg);
      Tdp.Flow.Efficient
        { flow_cfg with extraction = Tdp.Config.Endpoint_based { k = 3 } };
    ]

let test_flow_deterministic () =
  let d = Helpers.small_calibrated () in
  let r1 = Tdp.Flow.run (Tdp.Flow.Efficient flow_cfg) d in
  let r2 = Tdp.Flow.run (Tdp.Flow.Efficient flow_cfg) d in
  check_float "same tns" r1.metrics.tns r2.metrics.tns;
  check_float "same hpwl" r1.metrics.hpwl r2.metrics.hpwl

let test_pin_level_round () =
  let d = Helpers.small_calibrated () in
  let rng = Util.Rng.create 13 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  d.clock_period <- d.clock_period *. 0.8;
  let pl = Tdp.Pin_level.create d ~topology:Sta.Delay.Steiner_tree in
  let tns, wns = Tdp.Pin_level.round pl in
  Alcotest.(check bool) "violations seen" true (tns < 0.0 && wns < 0.0);
  let n = Design.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  Tdp.Pin_level.add_grad_raw pl ~gx ~gy;
  let gnorm = Array.fold_left (fun a v -> a +. Float.abs v) 0.0 gx in
  Alcotest.(check bool) "pin-level pairs pull" true (gnorm > 0.0);
  (* Action-reaction: total force is zero. *)
  check_float "sum zero" 0.0 (Array.fold_left ( +. ) 0.0 gx)

let test_pin_level_momentum_fold () =
  let d = Helpers.chain_design () in
  let pa = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
  Tdp.Pin_attract.update_pair_momentum pa ~pin_i:0 ~pin_j:1 ~w_hat:9.0 ~momentum:0.5;
  (* fresh pair starts at w_hat = 9 *)
  let v1 = Tdp.Pin_attract.loss_value pa in
  Tdp.Pin_attract.update_pair_momentum pa ~pin_i:0 ~pin_j:1 ~w_hat:1.0 ~momentum:0.5;
  (* 0.5*9 + 0.5*1 = 5 *)
  let v2 = Tdp.Pin_attract.loss_value pa in
  check_float "momentum fold" (5.0 /. 9.0) (v2 /. v1)

let suite =
  [
    ("pin-level ablation round", `Quick, test_pin_level_round);
    ("pin-level momentum fold", `Quick, test_pin_level_momentum_fold);
    ("eq9 first insert w0", `Quick, test_eq9_first_insert_w0);
    ("eq9 accumulates", `Quick, test_eq9_accumulates_on_repeat);
    ("eq9 path sharing", `Quick, test_eq9_path_sharing);
    ("stale decay + hold", `Quick, test_stale_decay);
    ("loss values hand computed", `Quick, test_loss_values_hand_computed);
    ("gradient antisymmetric + finite diff", `Quick, test_grad_antisymmetric_and_finite_diff);
    ("extraction round", `Quick, test_extraction_round);
    ("extraction relax ratchet", `Quick, test_extraction_relax_ratchet);
    ("extraction global topn", `Quick, test_extraction_global_topn_variant);
    ("net weighting raises critical", `Quick, test_net_weighting_raises_critical);
    ("net weighting idle when met", `Quick, test_net_weighting_no_change_when_met);
    ("net weighting momentum", `Quick, test_net_weighting_momentum_converges);
    ("diff timing smooth >= hard", `Quick, test_diff_timing_smooth_ge_hard);
    ("diff timing gradient descends", `Quick, test_diff_timing_gradient_descends);
    ("distribution anchors", `Quick, test_distribution_anchors);
    ("flow: efficient beats vanilla", `Slow, test_flow_efficient_beats_vanilla);
    ("flow: breakdown components", `Slow, test_flow_breakdown_components);
    ("flow: all methods run", `Slow, test_flow_all_methods_run);
    ("flow: deterministic", `Slow, test_flow_deterministic);
  ]
