(* Randomised integration properties: arbitrary (small) generator
   parameters must always yield structurally sound designs on which the
   whole stack — IO, STA, placement, legalization — operates correctly. *)

open Netlist

let params_gen =
  QCheck.Gen.(
    map
      (fun (seed, num_comb, num_ff, levels, (num_io, num_macros, hub_prob)) ->
        {
          Workloads.Genparams.default with
          name = "fuzz";
          seed;
          num_comb = 40 + num_comb;
          num_ff = 8 + num_ff;
          num_inputs = 4 + num_io;
          num_outputs = 4 + num_io;
          levels = 2 + levels;
          num_macros;
          fanout_hub_prob = hub_prob;
        })
      (tup5 (0 -- 10_000) (0 -- 260) (0 -- 60) (0 -- 10)
         (tup3 (0 -- 20) (0 -- 3) (float_bound_inclusive 0.1))))

let params_arb =
  QCheck.make
    ~print:(fun (p : Workloads.Genparams.t) ->
      Printf.sprintf "seed=%d comb=%d ff=%d lvl=%d io=%d macros=%d" p.seed p.num_comb p.num_ff
        p.levels p.num_inputs p.num_macros)
    params_gen

let qtest ?(count = 30) name prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name params_arb prop)

let fuzz_structure =
  qtest "generated designs structurally sound" (fun p ->
      let d = Workloads.Generate.generate p in
      let nets_ok = ref true in
      for nid = 0 to Design.num_nets d - 1 do
        if not (d.net_driver.(nid) >= 0 && Design.net_num_sinks d nid >= 1) then nets_ok := false
      done;
      let pins_ok = ref true in
      for pid = 0 to Design.num_pins d - 1 do
        if not (Design.pin_dir d pid = Design.Out || d.pin_net.(pid) >= 0) then pins_ok := false
      done;
      !nets_ok && !pins_ok && Design.num_movable d > 0)

let fuzz_acyclic_and_timeable =
  qtest "generated designs build a DAG and time cleanly" (fun p ->
      let d = Workloads.Generate.generate p in
      d.clock_period <- 1000.0;
      let timer = Sta.Timer.create d in
      Sta.Timer.update timer;
      (* tns <= 0 and finite; wns >= tns *)
      let tns = Sta.Timer.tns timer and wns = Sta.Timer.wns timer in
      Float.is_finite tns && Float.is_finite wns && tns <= 0.0 && wns >= tns)

let fuzz_io_roundtrip =
  qtest "io roundtrip preserves structure" (fun p ->
      let d = Workloads.Generate.generate p in
      let path = Filename.temp_file "tdp_fuzz" ".txt" in
      Netlist.Io.save_file path d;
      let d2 = Netlist.Io.load_file path in
      Sys.remove path;
      Design.num_cells d = Design.num_cells d2
      && Design.num_nets d = Design.num_nets d2
      && Float.abs (Design.total_hpwl d -. Design.total_hpwl d2)
         < 1e-6 *. (1.0 +. Design.total_hpwl d))

let fuzz_place_and_legalize =
  qtest ~count:10 "place + legalize always legal" (fun p ->
      let d = Workloads.Generate.generate p in
      let params = { Gp.Globalplace.default_params with max_iters = 120; min_iters = 40 } in
      ignore (Gp.Globalplace.run ~params d);
      ignore (Gp.Legalize.run d);
      Gp.Legalize.is_legal d)

let fuzz_extraction_coverage =
  qtest ~count:10 "endpoint extraction covers failing endpoints" (fun p ->
      let d = Workloads.Generate.generate p in
      (* Tighten until something fails. *)
      d.clock_period <- 200.0;
      let timer = Sta.Timer.create d in
      Sta.Timer.update timer;
      let n = Sta.Timer.num_failing_endpoints timer in
      if n = 0 then true
      else begin
        let paths = Sta.Timer.report_timing_endpoint timer ~n ~k:1 in
        let eps =
          List.sort_uniq compare (List.map (fun (q : Sta.Paths.path) -> q.endpoint) paths)
        in
        List.length eps = n
      end)

let suite =
  [
    fuzz_structure;
    fuzz_acyclic_and_timeable;
    fuzz_io_roundtrip;
    fuzz_place_and_legalize;
    fuzz_extraction_coverage;
  ]
