(* Test entry point: every library's suite under one Alcotest runner.
   `dune runtest` runs the quick tests and the slow integration ones. *)

let () =
  Alcotest.run "efficient-tdp"
    [
      ("util", Test_util_suite.suite);
      ("obs", Test_obs_suite.suite);
      ("geom", Test_geom_suite.suite);
      ("numerics", Test_numerics_suite.suite);
      ("netlist", Test_netlist_suite.suite);
      ("rctree", Test_rctree_suite.suite);
      ("sta", Test_sta_suite.suite);
      ("gp", Test_gp_suite.suite);
      ("tdp", Test_tdp_suite.suite);
      ("workloads", Test_workloads_suite.suite);
      ("extensions", Test_extensions_suite.suite);
      ("fuzz", Test_fuzz_suite.suite);
      ("properties", Test_properties_suite.suite);
    ]
