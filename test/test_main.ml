(* Test entry point: every library's suite under one Alcotest runner.
   `dune runtest` runs the quick tests and the slow integration ones.

   PARALLEL_DOMAINS=N runs the whole suite with N parallel domains (CI
   uses 4 to exercise the pool under every kernel); tests that pin a
   specific count do so via [Helpers.with_domains], which restores this
   baseline. *)

let () =
  (match Sys.getenv_opt "PARALLEL_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n ->
          Util.Parallel.set_num_domains n;
          Printf.eprintf "[test] PARALLEL_DOMAINS=%d\n%!" !Util.Parallel.num_domains
      | None -> Printf.eprintf "[test] ignoring malformed PARALLEL_DOMAINS=%S\n%!" s)
  | None -> ());
  Alcotest.run "efficient-tdp"
    [
      ("util", Test_util_suite.suite);
      ("parallel", Test_parallel_suite.suite);
      ("obs", Test_obs_suite.suite);
      ("geom", Test_geom_suite.suite);
      ("numerics", Test_numerics_suite.suite);
      ("netlist", Test_netlist_suite.suite);
      ("formats", Test_formats_suite.suite);
      ("rctree", Test_rctree_suite.suite);
      ("sta", Test_sta_suite.suite);
      ("gp", Test_gp_suite.suite);
      ("tdp", Test_tdp_suite.suite);
      ("workloads", Test_workloads_suite.suite);
      ("service", Test_service_suite.suite);
      ("extensions", Test_extensions_suite.suite);
      ("robustness", Test_robustness_suite.suite);
      ("oracle", Test_oracle_suite.suite);
      ("fuzz", Test_fuzz_suite.suite);
      ("properties", Test_properties_suite.suite);
    ]
