(* Persistent-pool parallel runtime: pool lifecycle, the determinism
   contract, and parallel-vs-sequential equivalence of every ported
   kernel (density, DCT/Poisson, STA propagation, extraction, pin-pair
   gradient). All equivalence tests compare 1 domain against 4. *)

open Helpers

let check_float = Alcotest.(check (float 1e-9))

(* Max relative difference between two float arrays. *)
let max_rel_diff a b =
  let m = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = Float.abs (v -. b.(i)) /. Float.max 1.0 (Float.abs v) in
      m := Float.max !m d)
    a;
  !m

let check_bitwise name a b =
  Alcotest.(check bool)
    name true
    (Array.length a = Array.length b && Array.for_all2 (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) a b)

(* ---------------- pool lifecycle ---------------- *)

let test_pool_spawns_once () =
  with_domains 4 (fun () ->
      (* Warm the pool, then many calls and domain-count toggles must not
         spawn again: workers are parked between jobs, and the pool only
         grows to the max worker count ever requested. *)
      Util.Parallel.for_ ~grain:1 100 (fun _ -> ());
      let s0 = Util.Parallel.spawned () in
      Alcotest.(check bool) "pool exists" true (s0 >= 3);
      for _ = 1 to 50 do
        Util.Parallel.for_ ~grain:1 1000 (fun _ -> ())
      done;
      Util.Parallel.set_num_domains 1;
      ignore (Util.Parallel.sum 10 float_of_int);
      Util.Parallel.set_num_domains 4;
      ignore (Util.Parallel.sum ~grain:1 1000 float_of_int);
      Alcotest.(check int) "no respawn" s0 (Util.Parallel.spawned ()))

let test_pool_many_small_calls () =
  with_domains 4 (fun () ->
      let n = 64 in
      let a = Array.make n 0 in
      for _ = 1 to 1000 do
        Util.Parallel.for_ ~grain:8 n (fun i -> a.(i) <- a.(i) + 1)
      done;
      Alcotest.(check bool) "all counted" true (Array.for_all (fun v -> v = 1000) a))

let test_nested_dispatch_rejected () =
  with_domains 4 (fun () ->
      Alcotest.check_raises "nested dispatch"
        (Invalid_argument
           "Util.Parallel: nested parallel dispatch (a kernel body called a parallel entry point)")
        (fun () ->
          Util.Parallel.for_ ~grain:1 64 (fun _ ->
              ignore (Util.Parallel.sum ~grain:1 64 float_of_int)));
      (* The pool must stay usable. *)
      check_float "pool alive" 4950.0 (Util.Parallel.sum ~grain:1 100 float_of_int))

let test_pool_survives_exception () =
  with_domains 4 (fun () ->
      Alcotest.check_raises "body exception propagates" (Failure "boom") (fun () ->
          Util.Parallel.for_ ~grain:1 1000 (fun i -> if i = 977 then failwith "boom"));
      let s = Util.Parallel.sum ~grain:1 1000 float_of_int in
      check_float "pool alive after raise" 499500.0 s)

(* ---------------- determinism contract ---------------- *)

(* Reference reduction: the contract's fixed partition, spelled out. *)
let chunked_sum d n f =
  if d <= 1 then (
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. f i
    done;
    !acc)
  else begin
    let per = (n + d - 1) / d in
    let total = ref 0.0 in
    for c = 0 to d - 1 do
      let acc = ref 0.0 in
      for i = c * per to min n ((c + 1) * per) - 1 do
        acc := !acc +. f i
      done;
      total := !total +. !acc
    done;
    !total
  end

let test_sum_matches_fixed_partition () =
  let f i = sin (float_of_int i) /. (1.0 +. float_of_int (i mod 97)) in
  List.iter
    (fun n ->
      let expect = chunked_sum 4 n f in
      with_domains 4 (fun () ->
          (* Dispatched (grain 1) and inline (huge grain) paths must both
             produce the partitioned result, bitwise. *)
          let dispatched = Util.Parallel.sum ~grain:1 n f in
          let inline = Util.Parallel.sum ~grain:max_int n f in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d dispatched bitwise" n)
            true
            (Int64.equal (Int64.bits_of_float expect) (Int64.bits_of_float dispatched));
          Alcotest.(check bool)
            (Printf.sprintf "n=%d inline == dispatched" n)
            true
            (Int64.equal (Int64.bits_of_float inline) (Int64.bits_of_float dispatched))))
    [ 0; 1; 10; 512; 1000; 5000; 100_000 ]

let test_sum_sequential_close () =
  (* 1-domain and 4-domain sums associate differently but must agree to
     rounding. *)
  let f i = sqrt (float_of_int i) in
  let n = 50_000 in
  let s1 = with_domains 1 (fun () -> Util.Parallel.sum n f) in
  let s4 = with_domains 4 (fun () -> Util.Parallel.sum ~grain:1 n f) in
  Alcotest.(check bool) "1 vs 4 domains" true (Float.abs (s1 -. s4) /. Float.abs s1 < 1e-12)

let test_map_reduce () =
  let n = 10_000 in
  let f i = float_of_int ((i * 7919) mod 10007) in
  let expect_max = ref Float.neg_infinity in
  for i = 0 to n - 1 do
    expect_max := Float.max !expect_max (f i)
  done;
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let mx =
            Util.Parallel.map_reduce ~grain:1 n ~init:Float.neg_infinity ~map:f ~combine:Float.max
          in
          check_float (Printf.sprintf "max at %d domains" d) !expect_max mx;
          let count =
            Util.Parallel.map_reduce ~grain:1 n ~init:0
              ~map:(fun i -> if i mod 3 = 0 then 1 else 0)
              ~combine:( + )
          in
          Alcotest.(check int) (Printf.sprintf "count at %d domains" d) ((n + 2) / 3) count))
    [ 1; 4 ]

let test_chunk_count_fixed () =
  with_domains 4 (fun () ->
      (* Determinism requires the partition to ignore n (beyond n=0). *)
      Alcotest.(check int) "small n" 4 (Util.Parallel.chunk_count ~n:2);
      Alcotest.(check int) "big n" 4 (Util.Parallel.chunk_count ~n:1_000_000);
      Alcotest.(check int) "n=0" 1 (Util.Parallel.chunk_count ~n:0));
  with_domains 1 (fun () -> Alcotest.(check int) "sequential" 1 (Util.Parallel.chunk_count ~n:100))

let test_iter_chunks_scratch_merge () =
  let n = 10_000 in
  let expect = Array.make 10 0 in
  for i = 0 to n - 1 do
    let b = i mod 10 in
    expect.(b) <- expect.(b) + 1
  done;
  with_domains 4 (fun () ->
      let bufs =
        Util.Parallel.iter_chunks_scratch ~grain:1 ~n
          ~scratch:(fun () -> Array.make 10 0)
          (fun ~scratch ~chunk:_ ~lo ~hi ->
            for i = lo to hi - 1 do
              let b = i mod 10 in
              scratch.(b) <- scratch.(b) + 1
            done)
      in
      Alcotest.(check int) "one buffer per chunk" 4 (Array.length bufs);
      let merged = Array.make 10 0 in
      Array.iter (fun buf -> Array.iteri (fun b v -> merged.(b) <- merged.(b) + v) buf) bufs;
      Alcotest.(check (array int)) "histogram merge" expect merged)

(* ---------------- kernel equivalence: 1 vs 4 domains ---------------- *)

let test_density_grid_equivalence () =
  let d = Lazy.force small_generated in
  let run nd =
    with_domains nd (fun () ->
        let grid = Gp.Densitygrid.create d ~bins_x:32 ~bins_y:32 in
        Gp.Densitygrid.update grid d;
        let movable_area = ref 0.0 in
        for id = 0 to Netlist.Design.num_cells d - 1 do
          match Netlist.Design.kind d id with
          | Netlist.Design.Logic ->
              movable_area := !movable_area +. (d.Netlist.Design.w.{id} *. d.Netlist.Design.h.{id})
          | _ -> ()
        done;
        let movable_area = !movable_area in
        let ovf = Gp.Densitygrid.overflow grid ~target_density:1.0 ~movable_area in
        (Array.copy grid.Gp.Densitygrid.density, ovf))
  in
  let d1, o1 = run 1 and d4, o4 = run 4 in
  Alcotest.(check bool) "bins agree" true (max_rel_diff d1 d4 < 1e-9);
  Alcotest.(check bool) "overflow agrees" true (Float.abs (o1 -. o4) < 1e-9 *. (1.0 +. Float.abs o1))

let test_dct_poisson_equivalence () =
  let rows = 64 and cols = 64 in
  let charge =
    Array.init (rows * cols) (fun i -> sin (0.37 *. float_of_int i) +. (0.01 *. float_of_int (i mod 13)))
  in
  let run nd =
    with_domains nd (fun () ->
        let spec = Numerics.Dct.dct2_2d charge ~rows ~cols in
        let p = Numerics.Poisson.create ~rows ~cols in
        let psi = Numerics.Poisson.solve p charge in
        let ex, ey = Numerics.Poisson.field p charge in
        let en = Numerics.Poisson.energy charge psi in
        (spec, psi, ex, ey, en))
  in
  let s1, psi1, ex1, ey1, en1 = run 1 in
  let s4, psi4, ex4, ey4, en4 = run 4 in
  (* Row/column passes keep per-line arithmetic intact: bitwise equal. *)
  check_bitwise "dct bitwise" s1 s4;
  check_bitwise "poisson psi bitwise" psi1 psi4;
  check_bitwise "field ex bitwise" ex1 ex4;
  check_bitwise "field ey bitwise" ey1 ey4;
  Alcotest.(check bool) "energy agrees" true (Float.abs (en1 -. en4) /. Float.abs en1 < 1e-12)

let test_sta_propagation_equivalence () =
  let d = small_calibrated () in
  let run nd =
    with_domains nd (fun () ->
        let timer = Sta.Timer.create d in
        Sta.Timer.update timer;
        (Array.copy (Sta.Timer.arrivals timer), Array.copy (Sta.Timer.slacks timer)))
  in
  let arr1, sl1 = run 1 and arr4, sl4 = run 4 in
  (* Levelized max/min propagation is exact: bitwise equal. *)
  check_bitwise "arrivals bitwise" arr1 arr4;
  check_bitwise "slacks bitwise" sl1 sl4

let test_extraction_equivalence () =
  let d = small_calibrated () in
  let run nd =
    with_domains nd (fun () ->
        let timer = Sta.Timer.create d in
        Sta.Timer.update timer;
        Sta.Timer.report_timing_endpoint timer ~failing_only:false ~n:20 ~k:5)
  in
  let p1 = run 1 and p4 = run 4 in
  Alcotest.(check int) "same path count" (List.length p1) (List.length p4);
  List.iter2
    (fun (a : Sta.Paths.path) (b : Sta.Paths.path) ->
      Alcotest.(check int) "endpoint" a.endpoint b.endpoint;
      check_float "slack" a.slack b.slack;
      Alcotest.(check (array int)) "arcs" a.arcs b.arcs)
    p1 p4

let test_pin_attract_equivalence () =
  let d = Lazy.force small_generated in
  let npins = Netlist.Design.num_pins d in
  let ncells = Netlist.Design.num_cells d in
  let run nd =
    with_domains nd (fun () ->
        let t = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
        (* Synthesise a deterministic pair set: momentum-fold arbitrary
           (i, j) pin pairs so the test does not depend on the design
           having timing violations. *)
        for i = 0 to 799 do
          let pi = (i * 131) mod npins in
          let pj = ((i * 197) + 5) mod npins in
          if pi <> pj then
            Tdp.Pin_attract.update_pair_momentum t ~pin_i:pi ~pin_j:pj
              ~w_hat:(1.0 +. float_of_int (i mod 7))
              ~momentum:0.5
        done;
        let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
        Tdp.Pin_attract.add_grad t ~beta:0.75 ~gx ~gy;
        (gx, gy))
  in
  let gx1, gy1 = run 1 and gx4, gy4 = run 4 in
  Alcotest.(check bool) "gx agrees" true (max_rel_diff gx1 gx4 < 1e-9);
  Alcotest.(check bool) "gy agrees" true (max_rel_diff gy1 gy4 < 1e-9)

let suite =
  [
    ("pool spawns once", `Quick, test_pool_spawns_once);
    ("pool many small calls", `Quick, test_pool_many_small_calls);
    ("nested dispatch rejected", `Quick, test_nested_dispatch_rejected);
    ("pool survives exception", `Quick, test_pool_survives_exception);
    ("sum matches fixed partition", `Quick, test_sum_matches_fixed_partition);
    ("sum 1 vs 4 domains close", `Quick, test_sum_sequential_close);
    ("map_reduce", `Quick, test_map_reduce);
    ("chunk_count fixed per domains", `Quick, test_chunk_count_fixed);
    ("iter_chunks_scratch merge", `Quick, test_iter_chunks_scratch_merge);
    ("density grid 1 vs 4 domains", `Quick, test_density_grid_equivalence);
    ("dct/poisson 1 vs 4 domains", `Quick, test_dct_poisson_equivalence);
    ("sta propagation 1 vs 4 domains", `Quick, test_sta_propagation_equivalence);
    ("extraction 1 vs 4 domains", `Quick, test_extraction_equivalence);
    ("pin attraction 1 vs 4 domains", `Quick, test_pin_attract_equivalence);
  ]
