(* Tests for the extension features: hold (early) analysis, RUDY
   congestion, wire-segment statistics, and timing-aware detailed
   placement on the incremental timer. *)

open Netlist

let check_float = Alcotest.(check (float 1e-6))

(* ---------------- Hold / early analysis ---------------- *)

let test_early_le_late () =
  let d = Helpers.small_calibrated () in
  let rng = Util.Rng.create 21 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let late = Sta.Timer.arrivals timer in
  let early = Sta.Timer.early_arrivals timer in
  Array.iteri
    (fun p a_late ->
      if Float.is_finite a_late && Float.is_finite early.(p) then
        Alcotest.(check bool) "early <= late" true (early.(p) <= a_late +. 1e-9))
    late

let test_hold_chain_exact () =
  (* Chain design: the only FF D pin's early arrival equals its late
     arrival (single path), so hold slack = arrival - hold. *)
  let d = Helpers.chain_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let dpin =
    Array.to_list (Design.cell_pins d 2) |> List.find (fun p -> Design.pin_name d p = "d")
  in
  let early = Sta.Timer.early_arrivals timer in
  check_float "single path: early = late" (Sta.Timer.arrivals timer).(dpin) early.(dpin);
  (* DFF hold = 5.0; arrival ~136 ps >> 5 ps, so no violation. *)
  check_float "whs zero" 0.0 (Sta.Timer.whs timer);
  check_float "ths zero" 0.0 (Sta.Timer.ths timer);
  Alcotest.(check (list int)) "no violations" [] (Sta.Timer.hold_violations timer);
  ignore g

let test_hold_violation_constructed () =
  (* An FF fed directly by another FF's Q through a very short wire with a
     huge hold requirement must violate hold. *)
  let b = Helpers.fresh_builder () in
  let big_hold_ff =
    Libcell.make_ff ~hold:100.0 ~lname:"DFFH" ~width:4.0 ~drive_res:8.0 ~clk_to_q:30.0
      ~setup:25.0 ~d_cap:1.6 ()
  in
  let ff1 = Builder.add_logic b ~cname:"ff1" ~lib:Libcell.dff ~x:50.0 ~y:50.0 () in
  let ff2 = Builder.add_logic b ~cname:"ff2" ~lib:big_hold_ff ~x:54.0 ~y:50.0 () in
  let po = Builder.add_output_pad b ~cname:"po" ~x:100.0 ~y:50.0 in
  let n1 = Builder.add_net b ~nname:"n1" in
  Builder.connect_by_name b ~net:n1 ~cell:ff1 ~pin_name:"q";
  Builder.connect_by_name b ~net:n1 ~cell:ff2 ~pin_name:"d";
  let n2 = Builder.add_net b ~nname:"n2" in
  Builder.connect_by_name b ~net:n2 ~cell:ff2 ~pin_name:"q";
  Builder.connect_by_name b ~net:n2 ~cell:po ~pin_name:"p";
  let d = Builder.finish b in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  Alcotest.(check bool) "hold violated" true (Sta.Timer.whs timer < 0.0);
  Alcotest.(check int) "one violation" 1 (List.length (Sta.Timer.hold_violations timer));
  Alcotest.(check bool) "ths <= whs" true (Sta.Timer.ths timer <= Sta.Timer.whs timer)

let test_hold_diamond_early_branch () =
  (* Diamond: early arrival at the endpoint follows the FAST branch
     (through ua), late follows the slow one — they must differ. *)
  let d = Helpers.diamond_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let ep = g.Sta.Graph.endpoints.(0) in
  let early = Sta.Timer.early_arrivals timer in
  Alcotest.(check bool) "early < late at reconvergence" true
    (early.(ep) < (Sta.Timer.arrivals timer).(ep) -. 1.0)

(* ---------------- RUDY congestion ---------------- *)

let test_rudy_single_net () =
  let d = Helpers.chain_design () in
  let c = Gp.Congestion.create d ~bins_x:16 ~bins_y:16 in
  Gp.Congestion.update c d;
  (* Every net contributes (w+h) of wiring demand over its (padded)
     bbox: total demand equals the sum of padded half-perimeters. *)
  let expect = ref 0.0 in
  for nid = 0 to Design.num_nets d - 1 do
    let pts =
      List.map (fun pid -> Design.pin_pos d pid) (Array.to_list (Design.net_pins d nid))
    in
    let bb = Geom.Rect.bbox_of_points pts in
    expect := !expect +. (Geom.Rect.width bb +. c.bin_w +. (Geom.Rect.height bb +. c.bin_h))
  done;
  let expect = !expect in
  (* Some demand may fall outside the die for boundary nets; allow 15%. *)
  let total = Gp.Congestion.total_demand c in
  Alcotest.(check bool)
    (Printf.sprintf "demand %.1f ~ %.1f" total expect)
    true
    (total > 0.7 *. expect && total <= expect +. 1e-6)

let test_rudy_hotspot_detects_clumping () =
  let d = Helpers.small_calibrated () in
  let c = Gp.Congestion.create d ~bins_x:16 ~bins_y:16 in
  (* Spread: low hotspot factor. *)
  let rng = Util.Rng.create 5 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  Gp.Congestion.update c d;
  let spread_factor = Gp.Congestion.hotspot_factor c in
  (* Stack everything: hotspot factor must jump. *)
  let ctr = Geom.Rect.center d.die in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- ctr.Geom.Point.x;
      d.y.{id} <- ctr.Geom.Point.y
    end
  done;
  Gp.Congestion.update c d;
  let stacked_factor = Gp.Congestion.hotspot_factor c in
  Alcotest.(check bool)
    (Printf.sprintf "stacked %.1f > spread %.1f" stacked_factor spread_factor)
    true
    (stacked_factor > spread_factor)

(* ---------------- Wire stats ---------------- *)

let test_wire_stats_of_segments () =
  let s = Evalkit.Wire_stats.of_segments ~buffer_threshold:10.0 [ 5.0; 15.0; 20.0 ] in
  Alcotest.(check int) "segments" 3 s.num_segments;
  check_float "total" 40.0 s.total_length;
  check_float "max" 20.0 s.max_length;
  Alcotest.(check int) "buffer candidates" 2 s.buffer_candidates;
  let empty = Evalkit.Wire_stats.of_segments [] in
  Alcotest.(check int) "empty" 0 empty.num_segments

let test_wire_stats_critical_paths () =
  let d = Helpers.small_calibrated () in
  let rng = Util.Rng.create 6 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  d.clock_period <- d.clock_period *. 0.7;
  let s = Evalkit.Wire_stats.of_critical_paths d ~n:10 in
  Alcotest.(check bool) "segments found" true (s.num_segments > 0);
  Alcotest.(check bool) "mean <= max" true (s.mean_length <= s.max_length +. 1e-9)

(* ---------------- Timing-aware detailed placement ---------------- *)

let test_timing_dp_never_degrades () =
  let d = Helpers.small_calibrated () in
  ignore (Gp.Globalplace.run ~params:{ Gp.Globalplace.default_params with max_iters = 200 } d);
  ignore (Gp.Legalize.run d);
  let s = Tdp.Timing_dp.run ~max_endpoints:10 ~window:6.0 d in
  Alcotest.(check bool)
    (Printf.sprintf "tns %.1f -> %.1f" s.tns_before s.tns_after)
    true
    (s.tns_after >= s.tns_before -. 1e-6);
  Alcotest.(check bool) "still legal" true (Gp.Legalize.is_legal d);
  Alcotest.(check bool) "accepted <= candidates" true (s.accepted <= s.candidates);
  (* The independent evaluator agrees with the internal timer. *)
  let m = Evalkit.Metrics.evaluate d in
  Alcotest.(check bool) "evaluator agrees" true (Float.abs (m.tns -. s.tns_after) < 1e-6)

(* ---------------- IO delay constraints ---------------- *)

let test_io_delays_shift_timing () =
  let d = Helpers.chain_design () in
  let timer0 = Sta.Timer.create d in
  Sta.Timer.update timer0;
  let g0 = Sta.Timer.graph timer0 in
  let po_pin = (Design.cell_pins d 4).(0) in
  let base_slack = Sta.Timer.endpoint_slack timer0 po_pin in
  ignore g0;
  (* input delay shifts arrivals on PI-fed cones; output delay tightens
     the PO requirement — both reduce the PO slack additively. *)
  d.input_delay <- 40.0;
  d.output_delay <- 25.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let s = Sta.Timer.endpoint_slack timer po_pin in
  (* PO path launches from the FF (not the PI), so only output_delay
     applies to it. *)
  check_float "output delay tightens PO" (base_slack -. 25.0) s;
  (* The FF D endpoint is fed from the PI: input delay applies. *)
  let dpin =
    Array.to_list (Design.cell_pins d 2) |> List.find (fun p -> Design.pin_name d p = "d")
  in
  d.input_delay <- 0.0;
  d.output_delay <- 0.0;
  let t2 = Sta.Timer.create d in
  Sta.Timer.update t2;
  let slack_no_delay = Sta.Timer.endpoint_slack t2 dpin in
  d.input_delay <- 40.0;
  let t3 = Sta.Timer.create d in
  Sta.Timer.update t3;
  check_float "input delay shifts D slack" (slack_no_delay -. 40.0)
    (Sta.Timer.endpoint_slack t3 dpin);
  d.input_delay <- 0.0

let test_io_delays_roundtrip () =
  let d = Helpers.chain_design () in
  d.input_delay <- 12.5;
  d.output_delay <- 7.25;
  let path = Filename.temp_file "tdp_iod" ".txt" in
  Io.save_file path d;
  let d2 = Io.load_file path in
  Sys.remove path;
  check_float "input delay" 12.5 d2.input_delay;
  check_float "output delay" 7.25 d2.output_delay

let test_pp_path_report () =
  let d = Helpers.chain_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  match Sta.Timer.critical_path timer with
  | None -> Alcotest.fail "no path"
  | Some p ->
      let s =
        Format.asprintf "%a" (fun fmt p -> Sta.Report.pp_path fmt (Sta.Timer.graph timer) p) p
      in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions startpoint" true (contains "Startpoint" s);
      Alcotest.(check bool) "mentions slack" true (contains "slack" s)

(* ---------------- SVG rendering ---------------- *)

let test_svg_render () =
  let d = Helpers.small_calibrated () in
  ignore (Gp.Globalplace.run ~params:{ Gp.Globalplace.default_params with max_iters = 120 } d);
  let s = Evalkit.Svg.render d in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "is svg" true (contains "<svg" s && contains "</svg>" s);
  Alcotest.(check bool) "has rects" true (contains "<rect" s);
  (* every logic cell becomes a rect: more rects than cells/2 *)
  let count_sub sub =
    let n = ref 0 and i = ref 0 in
    let sl = String.length sub and l = String.length s in
    while !i + sl <= l do
      if String.sub s !i sl = sub then incr n;
      incr i
    done;
    !n
  in
  Alcotest.(check bool) "rect per cell" true (count_sub "<rect" > Design.num_cells d / 2)

(* ---------------- Row reordering ---------------- *)

let test_reorder_rows_legal_and_improving () =
  let d = Helpers.small_calibrated () in
  ignore (Gp.Globalplace.run ~params:{ Gp.Globalplace.default_params with max_iters = 150 } d);
  ignore (Gp.Legalize.run d);
  let before = Design.total_hpwl d in
  let improved = Gp.Detailed.reorder_rows d in
  let after = Design.total_hpwl d in
  Alcotest.(check bool) "hpwl not worse" true (after <= before +. 1e-6);
  Alcotest.(check bool) "still legal" true (Gp.Legalize.is_legal d);
  Alcotest.(check bool) "some windows improved" true (improved >= 0)

(* ---------------- SA refinement ---------------- *)

let test_sa_refine_never_regresses_cost () =
  let d = Helpers.small_calibrated () in
  ignore (Gp.Globalplace.run ~params:{ Gp.Globalplace.default_params with max_iters = 150 } d);
  ignore (Gp.Legalize.run d);
  let s = Tdp.Sa_refine.run ~moves:600 d in
  let cost tns hpwl = -.tns +. (0.5 *. hpwl) in
  Alcotest.(check bool)
    (Printf.sprintf "cost %.0f -> %.0f" (cost s.tns_before s.hpwl_before)
       (cost s.tns_after s.hpwl_after))
    true
    (cost s.tns_after s.hpwl_after <= cost s.tns_before s.hpwl_before +. 1e-6);
  Alcotest.(check bool) "legal after SA" true (Gp.Legalize.is_legal d);
  Alcotest.(check bool) "moves made" true (s.moves > 0)

let test_sa_refine_deterministic () =
  let run_once () =
    let d = Helpers.small_calibrated () in
    ignore (Gp.Globalplace.run ~params:{ Gp.Globalplace.default_params with max_iters = 150 } d);
    ignore (Gp.Legalize.run d);
    let s = Tdp.Sa_refine.run ~seed:5 ~moves:300 d in
    (s.accepted, s.tns_after)
  in
  let a1, t1 = run_once () in
  let a2, t2 = run_once () in
  Alcotest.(check int) "same accepts" a1 a2;
  check_float "same tns" t1 t2

(* ---------------- DRV checks ---------------- *)

let test_drv_checks () =
  let d = Helpers.small_calibrated () in
  let rng = Util.Rng.create 61 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      d.x.{id} <- Util.Rng.float rng (Geom.Rect.width d.die);
      d.y.{id} <- Util.Rng.float rng (Geom.Rect.height d.die)
    end
  done;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  (* Absurdly loose thresholds: nothing violates. *)
  let loose = Sta.Timer.check_drv ~max_cap:1e9 ~max_slew:1e9 timer in
  Alcotest.(check int) "no cap violations" 0 loose.cap_violations;
  Alcotest.(check int) "no slew violations" 0 loose.slew_violations;
  Alcotest.(check bool) "worst cap positive" true (loose.worst_cap > 0.0);
  (* Thresholds below the observed worst: at least one violation each. *)
  let tight =
    Sta.Timer.check_drv ~max_cap:(loose.worst_cap /. 2.0) ~max_slew:(loose.worst_slew /. 2.0)
      timer
  in
  Alcotest.(check bool) "cap violations found" true (tight.cap_violations > 0);
  Alcotest.(check bool) "slew violations found" true (tight.slew_violations > 0);
  (* Worst values are threshold-independent. *)
  check_float "same worst cap" loose.worst_cap tight.worst_cap

let test_save_placement_format () =
  let d = Helpers.chain_design () in
  let path = Filename.temp_file "tdp_pl" ".txt" in
  let oc = open_out path in
  Io.save_placement oc d;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check int) "one line per movable" (Design.num_movable d) (List.length !lines);
  List.iter
    (fun l ->
      match String.split_on_char ' ' l with
      | [ "p"; id; x; y ] ->
          let id = int_of_string id in
          Alcotest.(check bool) "movable id" true (Design.is_movable d id);
          check_float "x matches" d.x.{id} (float_of_string x);
          check_float "y matches" d.y.{id} (float_of_string y)
      | _ -> Alcotest.fail ("bad placement line: " ^ l))
    !lines

let suite =
  [
    ("drv checks", `Quick, test_drv_checks);
    ("save_placement format", `Quick, test_save_placement_format);
    ("sa refine cost never regresses", `Slow, test_sa_refine_never_regresses_cost);
    ("sa refine deterministic", `Slow, test_sa_refine_deterministic);
    ("svg render", `Quick, test_svg_render);
    ("reorder rows legal", `Quick, test_reorder_rows_legal_and_improving);
    ("early <= late arrivals", `Quick, test_early_le_late);
    ("io delays shift timing", `Quick, test_io_delays_shift_timing);
    ("io delays roundtrip", `Quick, test_io_delays_roundtrip);
    ("pp_path report", `Quick, test_pp_path_report);
    ("hold: chain exact", `Quick, test_hold_chain_exact);
    ("hold: constructed violation", `Quick, test_hold_violation_constructed);
    ("hold: diamond early branch", `Quick, test_hold_diamond_early_branch);
    ("rudy: total demand", `Quick, test_rudy_single_net);
    ("rudy: hotspot detection", `Quick, test_rudy_hotspot_detects_clumping);
    ("wire stats: segments", `Quick, test_wire_stats_of_segments);
    ("wire stats: critical paths", `Quick, test_wire_stats_critical_paths);
    ("timing dp: never degrades", `Slow, test_timing_dp_never_degrades);
  ]
