(* Unit + property tests for the geom library. *)

let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let pt = QCheck.Gen.(map2 Geom.Point.make (float_bound_inclusive 100.0) (float_bound_inclusive 100.0))

let point_arb = QCheck.make ~print:(fun (p : Geom.Point.t) -> Printf.sprintf "(%f,%f)" p.x p.y) pt

let test_point_ops () =
  let a = Geom.Point.make 1.0 2.0 and b = Geom.Point.make 4.0 6.0 in
  check_float "manhattan" 7.0 (Geom.Point.manhattan a b);
  check_float "euclidean" 5.0 (Geom.Point.euclidean a b);
  check_float "sq_euclidean" 25.0 (Geom.Point.sq_euclidean a b);
  let s = Geom.Point.add a b in
  check_float "add x" 5.0 s.x;
  check_float "sub y" 4.0 (Geom.Point.sub b a).y;
  check_float "scale" 2.0 (Geom.Point.scale 2.0 a).x

let test_rect_basics () =
  let r = Geom.Rect.make ~xl:0.0 ~yl:0.0 ~xh:4.0 ~yh:2.0 in
  check_float "width" 4.0 (Geom.Rect.width r);
  check_float "height" 2.0 (Geom.Rect.height r);
  check_float "area" 8.0 (Geom.Rect.area r);
  check_float "half perimeter" 6.0 (Geom.Rect.half_perimeter r);
  let c = Geom.Rect.center r in
  check_float "center x" 2.0 c.x;
  Alcotest.(check bool) "contains center" true (Geom.Rect.contains r c);
  Alcotest.(check bool) "not contains outside" false
    (Geom.Rect.contains r (Geom.Point.make 5.0 1.0))

let test_rect_overlap () =
  let a = Geom.Rect.make ~xl:0.0 ~yl:0.0 ~xh:2.0 ~yh:2.0 in
  let b = Geom.Rect.make ~xl:1.0 ~yl:1.0 ~xh:3.0 ~yh:3.0 in
  let c = Geom.Rect.make ~xl:5.0 ~yl:5.0 ~xh:6.0 ~yh:6.0 in
  check_float "overlap" 1.0 (Geom.Rect.overlap_area a b);
  check_float "disjoint" 0.0 (Geom.Rect.overlap_area a c);
  Alcotest.(check bool) "intersects" true (Geom.Rect.intersects a b);
  Alcotest.(check bool) "no intersect" false (Geom.Rect.intersects a c);
  (* Touching rectangles do not overlap. *)
  let d = Geom.Rect.make ~xl:2.0 ~yl:0.0 ~xh:4.0 ~yh:2.0 in
  check_float "abutting" 0.0 (Geom.Rect.overlap_area a d)

let test_rect_union_bbox () =
  let a = Geom.Rect.make ~xl:0.0 ~yl:0.0 ~xh:1.0 ~yh:1.0 in
  let b = Geom.Rect.make ~xl:2.0 ~yl:3.0 ~xh:4.0 ~yh:5.0 in
  let u = Geom.Rect.union a b in
  check_float "union xh" 4.0 u.xh;
  check_float "union yl" 0.0 u.yl;
  let bb =
    Geom.Rect.bbox_of_points
      [ Geom.Point.make 1.0 5.0; Geom.Point.make (-2.0) 0.5; Geom.Point.make 3.0 2.0 ]
  in
  check_float "bbox xl" (-2.0) bb.xl;
  check_float "bbox yh" 5.0 bb.yh

let test_rect_clamp () =
  let r = Geom.Rect.make ~xl:0.0 ~yl:0.0 ~xh:10.0 ~yh:10.0 in
  let p = Geom.Rect.clamp r (Geom.Point.make (-5.0) 20.0) in
  check_float "clamp x" 0.0 p.x;
  check_float "clamp y" 10.0 p.y

let test_bbox_empty () =
  Alcotest.check_raises "empty bbox" (Invalid_argument "Rect.bbox_of_points: empty") (fun () ->
      ignore (Geom.Rect.bbox_of_points []))

let q_manhattan_triangle =
  qtest "manhattan triangle inequality" QCheck.(triple point_arb point_arb point_arb)
    (fun (a, b, c) ->
      Geom.Point.manhattan a c <= Geom.Point.manhattan a b +. Geom.Point.manhattan b c +. 1e-9)

let q_euclid_le_manhattan =
  qtest "euclidean <= manhattan" QCheck.(pair point_arb point_arb) (fun (a, b) ->
      Geom.Point.euclidean a b <= Geom.Point.manhattan a b +. 1e-9)

let q_sq_euclidean =
  qtest "sq_euclidean = euclidean^2" QCheck.(pair point_arb point_arb) (fun (a, b) ->
      let e = Geom.Point.euclidean a b in
      Float.abs (Geom.Point.sq_euclidean a b -. (e *. e)) < 1e-6)

let rect_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun (x, y, w, h) -> Geom.Rect.of_corner_size ~x ~y ~w ~h)
        (quad (float_bound_inclusive 50.0) (float_bound_inclusive 50.0)
           (float_bound_inclusive 20.0) (float_bound_inclusive 20.0)))

let q_overlap_symmetric =
  qtest "overlap symmetric" QCheck.(pair rect_arb rect_arb) (fun (a, b) ->
      Float.abs (Geom.Rect.overlap_area a b -. Geom.Rect.overlap_area b a) < 1e-9)

let q_overlap_bounded =
  qtest "overlap <= min area" QCheck.(pair rect_arb rect_arb) (fun (a, b) ->
      Geom.Rect.overlap_area a b <= Float.min (Geom.Rect.area a) (Geom.Rect.area b) +. 1e-9)

let q_self_overlap =
  qtest "self overlap = area" rect_arb (fun r ->
      Float.abs (Geom.Rect.overlap_area r r -. Geom.Rect.area r) < 1e-9)

let q_clamp_inside =
  qtest "clamp lands inside" QCheck.(pair rect_arb point_arb) (fun (r, p) ->
      Geom.Rect.contains r (Geom.Rect.clamp r p))

let suite =
  [
    ("point ops", `Quick, test_point_ops);
    ("rect basics", `Quick, test_rect_basics);
    ("rect overlap", `Quick, test_rect_overlap);
    ("rect union/bbox", `Quick, test_rect_union_bbox);
    ("rect clamp", `Quick, test_rect_clamp);
    ("bbox empty raises", `Quick, test_bbox_empty);
    q_manhattan_triangle;
    q_euclid_le_manhattan;
    q_sq_euclidean;
    q_overlap_symmetric;
    q_overlap_bounded;
    q_self_overlap;
    q_clamp_inside;
  ]
