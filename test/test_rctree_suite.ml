(* Tests for rctree: Steiner topologies and Elmore delay. *)

let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let points_gen =
  QCheck.Gen.(
    list_size (2 -- 12)
      (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))

let points_arb =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map (fun (x, y) -> Printf.sprintf "(%g,%g)" x y) l))
    points_gen

let split pts =
  let xs = Array.of_list (List.map fst pts) and ys = Array.of_list (List.map snd pts) in
  (xs, ys)

(* ---------------- Steiner ---------------- *)

let test_star_two_points () =
  let xs = [| 0.0; 3.0 |] and ys = [| 0.0; 4.0 |] in
  let t = Rctree.Steiner.star ~xs ~ys in
  Alcotest.(check int) "nodes" 2 (Rctree.Steiner.num_nodes t);
  check_float "length" 7.0 (Rctree.Steiner.total_length t)

let test_star_lengths () =
  let xs = [| 0.0; 1.0; 2.0 |] and ys = [| 0.0; 1.0; 0.0 |] in
  let t = Rctree.Steiner.star ~xs ~ys in
  check_float "star total" (2.0 +. 2.0) (Rctree.Steiner.total_length t);
  Alcotest.(check int) "root parent" (-1) t.parent.(0)

let test_steiner_two_points_is_direct () =
  let xs = [| 0.0; 10.0 |] and ys = [| 5.0; 7.0 |] in
  let t = Rctree.Steiner.steiner ~xs ~ys in
  check_float "direct length" 12.0 (Rctree.Steiner.total_length t)

let test_steiner_l_shape () =
  (* Three corners of an L: the Steiner tree should cost the HPWL, not
     the star (which revisits the trunk). *)
  let xs = [| 0.0; 10.0; 0.0 |] and ys = [| 0.0; 0.0; 10.0 |] in
  let t = Rctree.Steiner.steiner ~xs ~ys in
  check_float "L cost" 20.0 (Rctree.Steiner.total_length t);
  let star = Rctree.Steiner.star ~xs ~ys in
  check_float "star same here" 20.0 (Rctree.Steiner.total_length star)

let test_steiner_cross_saves () =
  (* Four arms of a plus sign rooted at an arm tip: a Steiner point at the
     centre beats the MST. *)
  let xs = [| 0.0; 20.0; 10.0; 10.0 |] and ys = [| 10.0; 10.0; 0.0; 20.0 |] in
  let t = Rctree.Steiner.steiner ~xs ~ys in
  let mst = Rctree.Steiner.rmst_length ~xs ~ys in
  Alcotest.(check bool) "steiner <= mst" true
    (Rctree.Steiner.total_length t <= mst +. 1e-9);
  check_float "steiner is 40" 40.0 (Rctree.Steiner.total_length t)

let test_tree_is_connected () =
  let rng = Util.Rng.create 3 in
  for _ = 1 to 20 do
    let n = 2 + Util.Rng.int rng 10 in
    let xs = Array.init n (fun _ -> Util.Rng.float rng 50.0) in
    let ys = Array.init n (fun _ -> Util.Rng.float rng 50.0) in
    let t = Rctree.Steiner.steiner ~xs ~ys in
    (* every node reaches the root by parent pointers *)
    for v = 0 to Rctree.Steiner.num_nodes t - 1 do
      let rec walk u steps =
        Alcotest.(check bool) "no cycle" true (steps < 1000);
        if t.parent.(u) >= 0 then walk t.parent.(u) (steps + 1)
      in
      walk v 0
    done;
    (* every terminal appears exactly once *)
    let seen = Array.make n 0 in
    Array.iter (fun term -> if term >= 0 then seen.(term) <- seen.(term) + 1) t.terminal;
    Alcotest.(check bool) "terminals covered once" true (Array.for_all (fun c -> c = 1) seen)
  done

let q_steiner_le_mst =
  qtest "steiner <= rmst" points_arb (fun pts ->
      let xs, ys = split pts in
      Rctree.Steiner.steiner ~xs ~ys |> Rctree.Steiner.total_length
      <= Rctree.Steiner.rmst_length ~xs ~ys +. 1e-6)

let q_steiner_ge_bbox =
  qtest "steiner >= max bbox extent" points_arb (fun pts ->
      let xs, ys = split pts in
      let w = Util.Stats.max_elt xs -. Util.Stats.min_elt xs in
      let h = Util.Stats.max_elt ys -. Util.Stats.min_elt ys in
      Rctree.Steiner.steiner ~xs ~ys |> Rctree.Steiner.total_length >= Float.max w h -. 1e-6)

let q_star_ge_steiner =
  qtest "star >= steiner" points_arb (fun pts ->
      let xs, ys = split pts in
      Rctree.Steiner.star ~xs ~ys |> Rctree.Steiner.total_length
      >= (Rctree.Steiner.steiner ~xs ~ys |> Rctree.Steiner.total_length) -. 1e-6)

(* ---------------- Elmore ---------------- *)

let test_elmore_single_wire () =
  (* driver at 0, one sink at distance 10; r=2, c=3, sink cap 5.
     delay = r*L * (c*L/2 + Cs) = 20 * (15 + 5) = 400.
     total cap = c*L + Cs = 35. *)
  let xs = [| 0.0; 10.0 |] and ys = [| 0.0; 0.0 |] in
  let t = Rctree.Steiner.star ~xs ~ys in
  let res = Rctree.Elmore.compute t ~r:2.0 ~c:3.0 ~term_cap:(fun _ -> 5.0) in
  check_float "total cap" 35.0 res.total_cap;
  check_float "delay" 400.0 (Rctree.Elmore.terminal_delay t res 1)

let test_elmore_star_two_sinks () =
  (* Two sinks at distances 10 and 20 on opposite sides; r=1, c=1,
     caps 2 each. Sink1: r*10*(c*10/2+2) = 10*7 = 70.
     Sink2: 20*(10+2) = 240. Total cap = 30 + 4 = 34. *)
  let xs = [| 0.0; 10.0; -20.0 |] and ys = [| 0.0; 0.0; 0.0 |] in
  let t = Rctree.Steiner.star ~xs ~ys in
  let res = Rctree.Elmore.compute t ~r:1.0 ~c:1.0 ~term_cap:(fun _ -> 2.0) in
  check_float "cap" 34.0 res.total_cap;
  check_float "near sink" 70.0 (Rctree.Elmore.terminal_delay t res 1);
  check_float "far sink" 240.0 (Rctree.Elmore.terminal_delay t res 2)

let test_elmore_chain_through_steiner () =
  (* Collinear root-mid-far: steiner builds a chain; the far sink's delay
     includes the mid segment's resistance times everything downstream. *)
  let xs = [| 0.0; 10.0; 20.0 |] and ys = [| 0.0; 0.0; 0.0 |] in
  let t = Rctree.Steiner.steiner ~xs ~ys in
  check_float "chain length" 20.0 (Rctree.Steiner.total_length t);
  let res = Rctree.Elmore.compute t ~r:1.0 ~c:1.0 ~term_cap:(fun _ -> 0.0) in
  (* seg1 (0..10): r=10, downstream cap = 10(seg1/2=5... ) exact:
     delay(mid) = 10*(5 + 10) = 150 (downstream of seg1: seg2 cap 10)
     delay(far) = 150 + 10*(5+0) = 200. *)
  check_float "mid" 150.0 (Rctree.Elmore.terminal_delay t res 1);
  check_float "far" 200.0 (Rctree.Elmore.terminal_delay t res 2)

let test_elmore_monotone_in_distance () =
  let rng = Util.Rng.create 5 in
  for _ = 1 to 50 do
    let d1 = 1.0 +. Util.Rng.float rng 50.0 in
    let d2 = d1 +. 1.0 +. Util.Rng.float rng 50.0 in
    let delay d =
      let xs = [| 0.0; d |] and ys = [| 0.0; 0.0 |] in
      let t = Rctree.Steiner.star ~xs ~ys in
      let res = Rctree.Elmore.compute t ~r:0.5 ~c:0.7 ~term_cap:(fun _ -> 1.0) in
      Rctree.Elmore.terminal_delay t res 1
    in
    Alcotest.(check bool) "longer wire slower" true (delay d2 > delay d1)
  done

let test_elmore_quadratic_growth () =
  (* With zero sink cap, doubling the wire length quadruples the delay —
     the quadratic property motivating the paper's loss (Eq. 7/8). *)
  let delay d =
    let xs = [| 0.0; d |] and ys = [| 0.0; 0.0 |] in
    let t = Rctree.Steiner.star ~xs ~ys in
    let res = Rctree.Elmore.compute t ~r:1.0 ~c:1.0 ~term_cap:(fun _ -> 0.0) in
    Rctree.Elmore.terminal_delay t res 1
  in
  check_float "4x" 4.0 (delay 20.0 /. delay 10.0)

let q_elmore_caps =
  qtest "total cap = wirecap + sink caps" points_arb (fun pts ->
      let xs, ys = split pts in
      let t = Rctree.Steiner.steiner ~xs ~ys in
      let res = Rctree.Elmore.compute t ~r:1.0 ~c:2.0 ~term_cap:(fun _ -> 3.0) in
      let expected =
        (2.0 *. Rctree.Steiner.total_length t) +. (3.0 *. float_of_int (Array.length xs - 1))
      in
      Float.abs (res.total_cap -. expected) < 1e-6 *. (1.0 +. expected))

let q_elmore_nonneg =
  qtest "delays nonnegative" points_arb (fun pts ->
      let xs, ys = split pts in
      let t = Rctree.Steiner.steiner ~xs ~ys in
      let res = Rctree.Elmore.compute t ~r:1.0 ~c:1.0 ~term_cap:(fun _ -> 1.0) in
      Array.for_all (fun d -> d >= -1e-9) res.sink_delay)

let suite =
  [
    ("star two points", `Quick, test_star_two_points);
    ("star lengths", `Quick, test_star_lengths);
    ("steiner two points direct", `Quick, test_steiner_two_points_is_direct);
    ("steiner L shape", `Quick, test_steiner_l_shape);
    ("steiner cross uses steiner point", `Quick, test_steiner_cross_saves);
    ("tree connected, terminals once", `Quick, test_tree_is_connected);
    q_steiner_le_mst;
    q_steiner_ge_bbox;
    q_star_ge_steiner;
    ("elmore single wire", `Quick, test_elmore_single_wire);
    ("elmore two-sink star", `Quick, test_elmore_star_two_sinks);
    ("elmore chain", `Quick, test_elmore_chain_through_steiner);
    ("elmore monotone", `Quick, test_elmore_monotone_in_distance);
    ("elmore quadratic", `Quick, test_elmore_quadratic_growth);
    q_elmore_caps;
    q_elmore_nonneg;
  ]

(* ---------------- Van Ginneken buffering ---------------- *)

let test_buffering_hand_computed () =
  (* Collinear chain root(0,0) - mid(20,0) - far(40,0); r=c=1; loads 0;
     far sink required time 0; mid is a zero-load pass-through.
     Unbuffered: q(root) = -40*(40/2) = -800.
     One buffer (in_cap 1.8, intrinsic 16, drive 5) at mid:
       q(mid)  = 0 - 20*(10+0) - (16 + 5*20) = -316, cap 1.8
       q(root) = -316 - 20*(10+1.8) = -552.  *)
  let xs = [| 0.0; 20.0; 40.0 |] and ys = [| 0.0; 0.0; 0.0 |] in
  let tree = Rctree.Steiner.steiner ~xs ~ys in
  let term_req i = if i = 2 then 0.0 else Float.infinity in
  let term_cap _ = 0.0 in
  let r =
    Rctree.Buffering.estimate tree ~r:1.0 ~c:1.0 ~drive_res:0.0 ~term_req ~term_cap ()
  in
  check_float "unbuffered" (-800.0) r.unbuffered_q;
  check_float "buffered" (-552.0) r.best_q;
  Alcotest.(check int) "one buffer" 1 r.buffers_used

let test_buffering_never_hurts () =
  let rng = Util.Rng.create 9 in
  for _ = 1 to 30 do
    let n = 2 + Util.Rng.int rng 6 in
    let xs = Array.init n (fun _ -> Util.Rng.float rng 80.0) in
    let ys = Array.init n (fun _ -> Util.Rng.float rng 80.0) in
    let tree = Rctree.Steiner.steiner ~xs ~ys in
    let r =
      Rctree.Buffering.estimate tree ~r:0.06 ~c:0.5 ~drive_res:8.0
        ~term_req:(fun _ -> 0.0)
        ~term_cap:(fun _ -> 1.5)
        ()
    in
    Alcotest.(check bool) "buffering >= unbuffered" true (r.best_q >= r.unbuffered_q -. 1e-9);
    Alcotest.(check bool) "finite" true (Float.is_finite r.best_q)
  done

let test_buffering_prune () =
  let open Rctree.Buffering in
  let cands =
    [
      { cap = 1.0; q = 5.0; buffers = 0 };
      { cap = 2.0; q = 4.0; buffers = 1 }; (* dominated: more cap, less q *)
      { cap = 3.0; q = 9.0; buffers = 1 };
      { cap = 4.0; q = 9.0; buffers = 2 }; (* dominated: more cap, equal q *)
    ]
  in
  let kept = prune cands in
  Alcotest.(check int) "two survivors" 2 (List.length kept);
  Alcotest.(check bool) "caps ascend, q ascends" true
    (match kept with
    | [ a; b ] -> a.cap < b.cap && a.q < b.q
    | _ -> false)

let test_buffering_short_wire_needs_none () =
  (* Tiny net: a buffer's own delay outweighs any wire saving. *)
  let xs = [| 0.0; 2.0 |] and ys = [| 0.0; 0.0 |] in
  let tree = Rctree.Steiner.steiner ~xs ~ys in
  let r =
    Rctree.Buffering.estimate tree ~r:0.06 ~c:0.5 ~drive_res:8.0
      ~term_req:(fun _ -> 0.0)
      ~term_cap:(fun _ -> 1.5)
      ()
  in
  Alcotest.(check int) "no buffers" 0 r.buffers_used;
  check_float "equal to unbuffered" r.unbuffered_q r.best_q

let suite =
  suite
  @ [
      ("buffering hand computed", `Quick, test_buffering_hand_computed);
      ("buffering never hurts", `Quick, test_buffering_never_hurts);
      ("buffering prune", `Quick, test_buffering_prune);
      ("buffering short wire", `Quick, test_buffering_short_wire_needs_none);
    ]

(* Exhaustive check: on a chain, the DP must match brute force over all
   2^m buffer placements at the intermediate nodes. *)
let test_buffering_matches_brute_force () =
  let rng = Util.Rng.create 77 in
  let buf = Rctree.Buffering.default_buffer in
  for _ = 1 to 15 do
    let m = 1 + Util.Rng.int rng 4 in
    (* Collinear increasing points: root, m intermediates, final sink. *)
    let pos = Array.make (m + 2) 0.0 in
    for i = 1 to m + 1 do
      pos.(i) <- pos.(i - 1) +. 3.0 +. Util.Rng.float rng 25.0
    done;
    let xs = Array.copy pos and ys = Array.make (m + 2) 0.0 in
    let r = 0.3 and c = 0.4 in
    let sink_cap = 1.5 in
    let tree = Rctree.Steiner.steiner ~xs ~ys in
    let dp =
      Rctree.Buffering.estimate tree ~r ~c ~drive_res:0.0
        ~term_req:(fun i -> if i = m + 1 then 0.0 else Float.infinity)
        ~term_cap:(fun i -> if i = m + 1 then sink_cap else 0.0)
        ()
    in
    (* Brute force: subset of buffered intermediate nodes (indices 1..m). *)
    let best = ref Float.neg_infinity in
    for mask = 0 to (1 lsl m) - 1 do
      (* Walk from the sink back to the root. *)
      let q = ref 0.0 and cap = ref sink_cap in
      for i = m + 1 downto 1 do
        let len = pos.(i) -. pos.(i - 1) in
        q := !q -. (r *. len *. ((c *. len /. 2.0) +. !cap));
        cap := !cap +. (c *. len);
        if i - 1 >= 1 && mask land (1 lsl (i - 2)) <> 0 then begin
          q := !q -. (buf.Rctree.Buffering.intrinsic +. (buf.Rctree.Buffering.drive *. !cap));
          cap := buf.Rctree.Buffering.in_cap
        end
      done;
      if !q > !best then best := !q
    done;
    Alcotest.(check bool)
      (Printf.sprintf "dp %.3f == brute %.3f (m=%d)" dp.best_q !best m)
      true
      (Float.abs (dp.best_q -. !best) < 1e-6 *. (1.0 +. Float.abs !best))
  done

let suite = suite @ [ ("buffering matches brute force", `Quick, test_buffering_matches_brute_force) ]
