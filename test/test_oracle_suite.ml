(* The reference-oracle gates: every parallelised kernel differentially
   tested against a naive lib/oracle implementation at 1 and 4 domains,
   the metamorphic property layer, deterministic path-report ordering,
   mutation smoke-checks (injected faults must make the gates fail), and
   the seeded shrinking fuzzer.

   ORACLE_FUZZ_ITERS scales the fuzz budget (nightly CI raises it). *)

open Oracle

let check_ok what = function
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" what m

let check_err what = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: expected the gate to fail" what

(* Run a check body under both the sequential and the 4-domain runtime —
   the differential gates must hold regardless of how reductions chunk. *)
let at_domains f =
  Helpers.with_domains 1 f;
  Helpers.with_domains 4 f

(* A generated design with a clock tight enough that many endpoints
   fail — the regime every timing oracle needs. Fresh per call: tests
   mutate the placement. *)
let tight_design () =
  let d =
    Workloads.Generate.generate { Helpers.small_gen_params with name = "oracle"; seed = 7 }
  in
  d.Netlist.Design.clock_period <- 200.0;
  d

(* ------------------------------------------------------------------ *)
(* Differential: STA                                                   *)

let sta_full_diff () =
  at_domains (fun () ->
      let d = tight_design () in
      let timer = Sta.Timer.create d in
      Sta.Timer.update timer;
      let graph = Sta.Timer.graph timer in
      check_ok "arrivals"
        (Compare.check_array_exact ~what:"arrivals" (Sta.Timer.arrivals timer)
           (Ref_sta.arrivals graph));
      let slack = Ref_sta.slacks graph in
      check_ok "slacks" (Compare.check_array_exact ~what:"slacks" (Sta.Timer.slacks timer) slack);
      check_ok "wns"
        (Compare.check_float ~rtol:0.0 ~what:"wns" (Sta.Timer.wns timer)
           (Ref_sta.wns graph ~slack));
      check_ok "tns"
        (Compare.check_float ~rtol:0.0 ~what:"tns" (Sta.Timer.tns timer)
           (Ref_sta.tns graph ~slack)))

(* Random move sequences interleaving update_moved / invalidate / update;
   after every step the timer must agree bitwise with a fresh full
   re-time. *)
let sta_incremental_walk () =
  at_domains (fun () ->
      let d = tight_design () in
      let timer = Sta.Timer.create d in
      Sta.Timer.update timer;
      let rng = Util.Rng.create 2026 in
      let movable = Array.of_list (Netlist.Design.movable_ids d) in
      for step = 1 to 15 do
        let moved = ref [] in
        for _ = 1 to 1 + Util.Rng.int rng 5 do
          let c = Util.Rng.choose rng movable in
          d.Netlist.Design.x.{c} <-
            d.Netlist.Design.x.{c} +. Util.Rng.float_range rng (-40.0) 40.0;
          d.Netlist.Design.y.{c} <-
            d.Netlist.Design.y.{c} +. Util.Rng.float_range rng (-40.0) 40.0;
          moved := c :: !moved
        done;
        Netlist.Design.clamp_movable d;
        (match Util.Rng.int rng 3 with
        | 0 ->
            Sta.Timer.invalidate timer;
            Sta.Timer.update timer
        | _ -> Sta.Timer.update_moved timer ~cells:!moved);
        check_ok (Printf.sprintf "step %d" step) (Ref_sta.check_incremental timer)
      done)

(* The daemon's replace path as a differential gate: a scripted sequence
   of ECO deltas (cell moves interleaved with clock retargets through
   [Sta.Timer.set_clock]) where the incrementally maintained timer must
   match a full-from-scratch analysis after every step. *)
let sta_eco_sequence () =
  at_domains (fun () ->
      let d = tight_design () in
      check_ok "eco sequence"
        (Ref_sta.check_eco_sequence ~steps:6 ~cells_per_step:3 ~seed:3 d));
  (* A design with nothing to move cannot run the drill. *)
  let empty = Helpers.chain_design () in
  List.iter
    (fun c ->
      if Netlist.Design.is_movable empty c then Bytes.set empty.Netlist.Design.movable c '\000')
    (List.init (Netlist.Design.num_cells empty) Fun.id);
  check_err "no movable cells" (Ref_sta.check_eco_sequence empty)

(* ------------------------------------------------------------------ *)
(* Differential: path enumeration and the two extraction commands       *)

let paths_vs_exhaustive () =
  let d = tight_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let graph = Sta.Timer.graph timer in
  let arr = Sta.Timer.arrivals timer in
  let eps = Sta.Timer.failing_endpoints timer in
  Alcotest.(check bool) "tight design has failing endpoints" true (eps <> []);
  List.iteri
    (fun i ep ->
      if i < 3 then begin
        let got = Sta.Paths.k_worst graph arr ~endpoint:ep ~k:7 in
        let want = Ref_paths.k_worst graph ~endpoint:ep ~k:7 in
        check_ok
          (Printf.sprintf "k_worst endpoint %d" ep)
          (Compare.check_paths ~what:"k_worst" got want);
        match (Sta.Paths.worst_path graph arr ~endpoint:ep, want) with
        | Some p, w :: _ -> check_ok "worst_path" (Compare.check_path ~what:"worst_path" p w)
        | None, [] -> ()
        | _ -> Alcotest.fail "worst_path and exhaustive enumeration disagree"
      end)
    eps

let reports_vs_oracle () =
  at_domains (fun () ->
      let d = tight_design () in
      let timer = Sta.Timer.create d in
      Sta.Timer.update timer;
      let graph = Sta.Timer.graph timer in
      let slack = Sta.Timer.slacks timer in
      let n = min (Sta.Timer.num_failing_endpoints timer) 6 in
      Alcotest.(check bool) "has failing endpoints" true (n > 0);
      check_ok "report_timing"
        (Compare.check_paths ~what:"report_timing"
           (Sta.Timer.report_timing timer ~n)
           (Ref_paths.report_timing graph ~slack ~n));
      check_ok "report_timing_endpoint"
        (Compare.check_paths ~what:"report_timing_endpoint"
           (Sta.Timer.report_timing_endpoint timer ~n ~k:3)
           (Ref_paths.report_timing_endpoint graph ~slack ~n ~k:3)))

(* A design with one dominant endpoint: po_dom sits behind a chain of
   reconvergent diamonds (2^4 near-critical paths), next to three
   single-path endpoints. The Fig. 3 pathology: pooled report_timing
   spends its budget on po_dom's path cloud, endpoint-based extraction
   covers everything. *)
let dominant_design () =
  let b = Helpers.fresh_builder ~clock_period:10.0 () in
  let pi = Netlist.Builder.add_input_pad b ~cname:"pi" ~x:0.0 ~y:50.0 in
  let connect net cell pin = Netlist.Builder.connect_by_name b ~net ~cell ~pin_name:pin in
  let prev = ref pi and prev_pin = ref "p" in
  for s = 0 to 3 do
    let x0 = 10.0 +. (20.0 *. float_of_int s) in
    let ua =
      Netlist.Builder.add_logic b ~cname:(Printf.sprintf "ua%d" s) ~lib:Helpers.inv ~x:x0 ~y:80.0 ()
    in
    let ub =
      Netlist.Builder.add_logic b ~cname:(Printf.sprintf "ub%d" s) ~lib:Helpers.inv ~x:x0 ~y:20.0 ()
    in
    let um =
      Netlist.Builder.add_logic b
        ~cname:(Printf.sprintf "um%d" s)
        ~lib:Helpers.nand2 ~x:(x0 +. 10.0) ~y:50.0 ()
    in
    let n0 = Netlist.Builder.add_net b ~nname:(Printf.sprintf "d%d_in" s) in
    connect n0 !prev !prev_pin;
    connect n0 ua "a1";
    connect n0 ub "a1";
    let na = Netlist.Builder.add_net b ~nname:(Printf.sprintf "d%d_a" s) in
    connect na ua "o";
    connect na um "a1";
    let nb = Netlist.Builder.add_net b ~nname:(Printf.sprintf "d%d_b" s) in
    connect nb ub "o";
    connect nb um "a2";
    prev := um;
    prev_pin := "o"
  done;
  let po_dom = Netlist.Builder.add_output_pad b ~cname:"po_dom" ~x:100.0 ~y:50.0 in
  let n_out = Netlist.Builder.add_net b ~nname:"dom_out" in
  connect n_out !prev "o";
  connect n_out po_dom "p";
  for i = 0 to 2 do
    let y = 5.0 +. (5.0 *. float_of_int i) in
    let pii =
      Netlist.Builder.add_input_pad b ~cname:(Printf.sprintf "pi%d" i) ~x:0.0 ~y
    in
    let v =
      Netlist.Builder.add_logic b ~cname:(Printf.sprintf "v%d" i) ~lib:Helpers.inv ~x:50.0 ~y ()
    in
    let po = Netlist.Builder.add_output_pad b ~cname:(Printf.sprintf "po%d" i) ~x:100.0 ~y in
    let n1 = Netlist.Builder.add_net b ~nname:(Printf.sprintf "side%d_a" i) in
    connect n1 pii "p";
    connect n1 v "a1";
    let n2 = Netlist.Builder.add_net b ~nname:(Printf.sprintf "side%d_b" i) in
    connect n2 v "o";
    connect n2 po "p"
  done;
  Netlist.Builder.finish b

let covered_endpoints paths =
  List.sort_uniq compare (List.map (fun (p : Sta.Paths.path) -> p.Sta.Paths.endpoint) paths)

let endpoint_contracts () =
  let d = dominant_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let graph = Sta.Timer.graph timer in
  let slack = Sta.Timer.slacks timer in
  let n = Sta.Timer.num_failing_endpoints timer in
  Alcotest.(check int) "all four endpoints fail" 4 n;
  let k = 2 in
  let got = Sta.Timer.report_timing_endpoint timer ~n ~k in
  (* Contract: at most n*k paths, no duplicates. *)
  Alcotest.(check bool) "at most n*k paths" true (List.length got <= n * k);
  let keys =
    List.map
      (fun (p : Sta.Paths.path) ->
        (p.Sta.Paths.endpoint, Array.to_list p.Sta.Paths.pins))
      got
  in
  Alcotest.(check int) "no duplicate paths" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  (* Contract: per endpoint, exactly its k worst paths in order. *)
  List.iter
    (fun ep ->
      let mine =
        List.filter (fun (p : Sta.Paths.path) -> p.Sta.Paths.endpoint = ep) got
      in
      check_ok
        (Printf.sprintf "per-endpoint k-worst of %d" ep)
        (Compare.check_paths ~what:"per-endpoint" mine (Ref_paths.k_worst graph ~endpoint:ep ~k)))
    (covered_endpoints got);
  (* Coverage: endpoint-based covers every failing endpoint; the pooled
     command concentrates on the dominant one. *)
  let failing = Ref_paths.failing_endpoints graph ~slack in
  Alcotest.(check (list int))
    "endpoint extraction covers all failing endpoints"
    (List.sort compare failing)
    (covered_endpoints got);
  let pooled = Sta.Timer.report_timing timer ~n in
  Alcotest.(check bool) "pooled concentrates on the dominant endpoint" true
    (List.length (covered_endpoints pooled) < List.length (covered_endpoints got))

(* Slack ties: the dominant design's three side chains have identical
   relative geometry, so their single paths carry bitwise-equal slacks.
   The report order must still be a strict total order (tie-break on
   endpoint pin id), identical across reruns and domain counts. *)
let tie_break_determinism () =
  let d = dominant_design () in
  let run_at nd =
    Helpers.with_domains nd (fun () ->
        let timer = Sta.Timer.create d in
        Sta.Timer.update timer;
        Sta.Timer.report_timing timer ~n:20)
  in
  let a = run_at 1 and b = run_at 1 and c = run_at 4 in
  check_ok "rerun stable" (Compare.check_paths ~what:"rerun" a b);
  check_ok "domain-count stable" (Compare.check_paths ~what:"domains" a c);
  (* The tie actually exists: some slack value repeats bitwise. *)
  let slacks = List.map (fun (p : Sta.Paths.path) -> p.Sta.Paths.slack) a in
  Alcotest.(check bool) "exact slack ties present" true
    (List.length (List.sort_uniq compare slacks) < List.length slacks);
  (* And the list is strictly increasing in the documented total order. *)
  let rec strictly_sorted = function
    | p :: (q :: _ as rest) ->
        Sta.Paths.compare_by_slack p q < 0 && strictly_sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "strict compare_by_slack order" true (strictly_sorted a)

(* ------------------------------------------------------------------ *)
(* Differential: Elmore, spectral kernels, density, gradients           *)

let elmore_diff () =
  let d = Lazy.force Helpers.small_generated in
  let seen = ref 0 in
  for nid = 0 to Netlist.Design.num_nets d - 1 do
    if Netlist.Design.net_degree d nid >= 2 && !seen < 10 then begin
      incr seen;
      let pids = Netlist.Design.net_pins d nid in
      let xs = Array.map (fun pid -> Netlist.Design.pin_x d pid) pids in
      let ys = Array.map (fun pid -> Netlist.Design.pin_y d pid) pids in
      let term_cap i = d.Netlist.Design.pin_cap.{pids.(i)} in
      let r = d.Netlist.Design.r_per_unit and c = d.Netlist.Design.c_per_unit in
      List.iter
        (fun tree ->
          check_ok (Printf.sprintf "net %d" nid) (Ref_elmore.check tree ~r ~c ~term_cap);
          check_ok
            (Printf.sprintf "net %d monotone" nid)
            (Metamorphic.elmore_monotone ~lambda:1.7 tree ~r ~c ~term_cap))
        [ Rctree.Steiner.steiner ~xs ~ys; Rctree.Steiner.star ~xs ~ys ]
    end
  done;
  Alcotest.(check bool) "sampled some nets" true (!seen > 0)

let numerics_diff () =
  at_domains (fun () ->
      let rng = Util.Rng.create 11 in
      let x = Array.init 32 (fun _ -> Util.Rng.float_range rng (-1.0) 1.0) in
      check_ok "dct2"
        (Compare.check_array ~rtol:1e-9 ~atol:1e-9 ~what:"dct2" (Numerics.Dct.dct2 x)
           (Ref_numerics.dct2_direct x));
      let coeffs = Numerics.Dct.dct2 x in
      check_ok "idct2"
        (Compare.check_array ~rtol:1e-9 ~atol:1e-9 ~what:"idct2" (Numerics.Dct.idct2 coeffs)
           (Ref_numerics.idct2_direct coeffs));
      let rows = 16 and cols = 16 in
      let grid = Array.init (rows * cols) (fun _ -> Util.Rng.float_range rng (-1.0) 1.0) in
      check_ok "dct2_2d"
        (Compare.check_array ~rtol:1e-9 ~atol:1e-8 ~what:"dct2_2d"
           (Numerics.Dct.dct2_2d grid ~rows ~cols)
           (Ref_numerics.dct2_2d_direct grid ~rows ~cols));
      let rho = grid in
      let p = Numerics.Poisson.create ~rows ~cols in
      let psi = Numerics.Poisson.solve p rho in
      check_ok "poisson solve"
        (Compare.check_array ~rtol:1e-9 ~atol:1e-8 ~what:"psi" psi
           (Ref_numerics.poisson_solve_direct rho ~rows ~cols));
      check_ok "poisson residual"
        (Ref_numerics.check_poisson_residual ~rho ~psi ~rows ~cols ());
      let ex, ey = Numerics.Poisson.field p psi in
      let rex, rey = Ref_numerics.field_direct psi ~rows ~cols in
      check_ok "field ex" (Compare.check_array ~rtol:1e-9 ~atol:1e-9 ~what:"ex" ex rex);
      check_ok "field ey" (Compare.check_array ~rtol:1e-9 ~atol:1e-9 ~what:"ey" ey rey);
      check_ok "energy"
        (Compare.check_float ~rtol:1e-9 ~atol:1e-12 ~what:"energy"
           (Numerics.Poisson.energy rho psi)
           (Ref_numerics.energy_direct rho psi));
      (* Packed real-even plan engine vs direct summation: the packed
         pair kernels at the sizes the satellite names, then full 2D
         gates on square and both non-square orientations. *)
      List.iter
        (fun n ->
          let a = Array.init n (fun _ -> Util.Rng.float_range rng (-1.0) 1.0) in
          let b = Array.init n (fun _ -> Util.Rng.float_range rng (-1.0) 1.0) in
          let plan = Numerics.Plan.create ~rows:2 ~cols:n in
          let xa = Array.make n 0.0 and xb = Array.make n 0.0 in
          Numerics.Plan.dct2_pair plan ~a ~b ~xa ~xb;
          check_ok "plan pair A"
            (Compare.check_array ~rtol:1e-9 ~atol:1e-8
               ~what:(Printf.sprintf "plan.dct2_pair A n=%d" n)
               xa (Ref_numerics.dct2_direct a));
          check_ok "plan pair B"
            (Compare.check_array ~rtol:1e-9 ~atol:1e-8
               ~what:(Printf.sprintf "plan.dct2_pair B n=%d" n)
               xb (Ref_numerics.dct2_direct b));
          let ra = Array.make n 0.0 and rb = Array.make n 0.0 in
          Numerics.Plan.idct2_pair plan ~xa ~xb ~a:ra ~b:rb;
          check_ok "plan pair inverse A"
            (Compare.check_array ~rtol:1e-9 ~atol:1e-9
               ~what:(Printf.sprintf "plan.idct2_pair A n=%d" n)
               ra a);
          check_ok "plan pair inverse B"
            (Compare.check_array ~rtol:1e-9 ~atol:1e-9
               ~what:(Printf.sprintf "plan.idct2_pair B n=%d" n)
               rb b))
        [ 2; 4; 8; 64; 256 ];
      List.iter
        (fun (rows, cols) ->
          let g =
            Array.init (rows * cols) (fun _ -> Util.Rng.float_range rng (-1.0) 1.0)
          in
          check_ok "plan dct2_2d" (Ref_numerics.check_dct2_2d g ~rows ~cols);
          check_ok "plan idct2_2d" (Ref_numerics.check_idct2_2d g ~rows ~cols);
          check_ok "plan poisson" (Ref_numerics.check_poisson_solve g ~rows ~cols))
        [ (16, 16); (64, 256); (256, 64) ])

let density_electro_diff () =
  at_domains (fun () ->
      let d = Lazy.force Helpers.small_generated in
      let grid = Gp.Densitygrid.create d ~bins_x:16 ~bins_y:16 in
      Gp.Densitygrid.update grid d;
      check_ok "density"
        (Compare.check_array ~rtol:1e-9 ~atol:1e-9 ~what:"density"
           grid.Gp.Densitygrid.density (Ref_place.density_direct d grid));
      check_ok "density mass" (Metamorphic.density_mass d grid);
      let e = Gp.Electro.create grid in
      Gp.Electro.solve e ~target_density:0.9;
      let charge = Gp.Densitygrid.charge grid ~target_density:0.9 in
      check_ok "electro energy"
        (Compare.check_float ~rtol:1e-9 ~atol:1e-9 ~what:"energy" e.Gp.Electro.energy
           (Ref_numerics.energy_direct charge e.Gp.Electro.psi));
      let nc = Netlist.Design.num_cells d in
      let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
      Gp.Electro.add_grad e d ~gx ~gy;
      let egx, egy = Ref_place.electro_grad_expected e d in
      check_ok "electro gx"
        (Compare.check_array ~rtol:1e-9 ~atol:1e-9 ~what:"gx" gx egx);
      check_ok "electro gy"
        (Compare.check_array ~rtol:1e-9 ~atol:1e-9 ~what:"gy" gy egy))

let wirelength_diff () =
  at_domains (fun () ->
      let d = Lazy.force Helpers.small_generated in
      check_ok "hpwl"
        (Compare.check_float ~rtol:1e-9 ~what:"hpwl" (Gp.Wirelength.weighted_hpwl d)
           (Ref_place.hpwl_direct d));
      let nc = Netlist.Design.num_cells d in
      let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
      let wa = Gp.Wirelength.wa_wirelength_grad d ~gamma:8.0 ~gx ~gy in
      check_ok "wa value"
        (Compare.check_float ~rtol:1e-9 ~atol:1e-9 ~what:"wa" wa
           (Ref_place.wa_value d ~gamma:8.0));
      let cells = List.filteri (fun i _ -> i < 5) (Netlist.Design.movable_ids d) in
      check_ok "wa gradient fd" (Ref_place.wa_fd_check d ~gamma:8.0 ~cells))

let pin_attract_checks () =
  let d = tight_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let graph = Sta.Timer.graph timer in
  let n = min (Sta.Timer.num_failing_endpoints timer) 8 in
  Alcotest.(check bool) "has failing endpoints" true (n > 0);
  let paths = Sta.Timer.report_timing_endpoint timer ~n ~k:3 in
  let wns = Sta.Timer.wns timer in
  let attract = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
  Tdp.Pin_attract.update_from_paths attract graph ~w0:1.0 ~w1:0.5 ~wns ~stale_decay:1.0 paths;
  (* Eq. 9: the accumulated pair weights must replay exactly. *)
  check_ok "eq9 accumulation"
    (Metamorphic.eq9_accumulation graph attract ~w0:1.0 ~w1:0.5 ~wns paths);
  Alcotest.(check bool) "extraction produced pairs" true (Tdp.Pin_attract.num_pairs attract > 0);
  (* Gradient of the pair loss vs finite differences of its value. *)
  let cells = List.filteri (fun i _ -> i < 5) (Netlist.Design.movable_ids d) in
  check_ok "pin attract fd" (Ref_place.pin_attract_fd_check d attract ~cells)

(* Shared arcs accumulate: both diamond paths cross the pi->branch net
   and the merge->po net, so those pairs must carry w0 + w1*s2/wns while
   unshared branch arcs stay at w0. *)
let eq9_shared_arc () =
  let d = Helpers.diamond_design () in
  d.Netlist.Design.clock_period <- 1.0;
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let graph = Sta.Timer.graph timer in
  let paths = Sta.Timer.report_timing_endpoint timer ~n:1 ~k:2 in
  Alcotest.(check int) "both diamond paths extracted" 2 (List.length paths);
  let wns = Sta.Timer.wns timer in
  let w0 = 2.0 and w1 = 0.25 in
  let attract = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
  Tdp.Pin_attract.update_from_paths attract graph ~w0 ~w1 ~wns ~stale_decay:1.0 paths;
  check_ok "eq9 on diamond" (Metamorphic.eq9_accumulation graph attract ~w0 ~w1 ~wns paths);
  let s2 = (List.nth paths 1).Sta.Paths.slack in
  let weights =
    Tdp.Pin_attract.fold_pairs attract ~init:[] ~f:(fun acc ~pin_i:_ ~pin_j:_ ~weight ->
        weight :: acc)
  in
  let shared = List.filter (fun w -> Compare.float_eq ~rtol:1e-9 w (w0 +. (w1 *. s2 /. wns))) weights in
  let unshared = List.filter (fun w -> Compare.float_eq ~rtol:1e-9 w w0) weights in
  (* Only the merge->po arc lies on both paths; the pi fan-out and the
     two branch nets are distinct (driver, sink) pairs. *)
  Alcotest.(check int) "total pairs" 5 (List.length weights);
  Alcotest.(check int) "one shared pair" 1 (List.length shared);
  Alcotest.(check int) "four unshared pairs" 4 (List.length unshared)

(* ------------------------------------------------------------------ *)
(* Metamorphic layer                                                   *)

let metamorphic_wirelength () =
  let d = Lazy.force Helpers.small_generated in
  check_ok "translation"
    (Metamorphic.wirelength_translation d ~gamma:8.0 ~dx:13.25 ~dy:(-7.5));
  check_ok "wa bounds" (Metamorphic.wa_bounds d ~gamma:8.0);
  check_ok "transpose" (Metamorphic.transpose_consistent d ~gamma:8.0 ~bins:16)

let metamorphic_tns_wns () =
  let d = tight_design () in
  check_ok "generated" (Metamorphic.tns_wns_consistent (Sta.Timer.create d));
  let d2 = Helpers.chain_design () in
  check_ok "chain" (Metamorphic.tns_wns_consistent (Sta.Timer.create d2))

(* ------------------------------------------------------------------ *)
(* Mutation smoke-checks: injected faults must trip the gates.          *)

let mutation_elmore () =
  let protect fault f =
    Rctree.Elmore.fault := Some fault;
    Fun.protect ~finally:(fun () -> Rctree.Elmore.fault := None) f
  in
  let xs = [| 0.0; 30.0; 55.0; 80.0 |] and ys = [| 0.0; 40.0; 10.0; 60.0 |] in
  let tree = Rctree.Steiner.steiner ~xs ~ys in
  let term_cap _ = 1.5 in
  check_ok "clean tree passes" (Ref_elmore.check tree ~r:0.1 ~c:0.2 ~term_cap);
  (* A sign fault and a small constant fault both must be caught. *)
  protect
    (fun dl -> -.dl)
    (fun () ->
      check_err "sign fault caught" (Ref_elmore.check tree ~r:0.1 ~c:0.2 ~term_cap));
  protect
    (fun dl -> dl +. 1e-3)
    (fun () ->
      check_err "constant fault caught" (Ref_elmore.check tree ~r:0.1 ~c:0.2 ~term_cap));
  (* And the full-STA differential must catch it end to end: a faulty
     delay model shifts production arrivals, while the DFS oracle and the
     fresh re-time inside check_incremental read the same faulty arc
     delays — so the catching layer is the independent Elmore walk above,
     plus the golden gate. Verify the sign fault also breaks the timing
     metamorphic TNS recomputation on a real design. *)
  let d = tight_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let clean_tns = Sta.Timer.tns timer in
  protect
    (fun dl -> -.dl)
    (fun () ->
      let timer2 = Sta.Timer.create d in
      Sta.Timer.update timer2;
      Alcotest.(check bool) "sign fault changes TNS" true
        (not (Compare.float_eq ~rtol:1e-9 clean_tns (Sta.Timer.tns timer2))))

let mutation_wa_grad () =
  let d = Lazy.force Helpers.small_generated in
  let cells = List.filteri (fun i _ -> i < 3) (Netlist.Design.movable_ids d) in
  check_ok "clean gradient passes" (Ref_place.wa_fd_check d ~gamma:8.0 ~cells);
  Gp.Wirelength.grad_fault := Some (fun g -> -.g);
  Fun.protect
    ~finally:(fun () -> Gp.Wirelength.grad_fault := None)
    (fun () ->
      check_err "sign fault caught" (Ref_place.wa_fd_check d ~gamma:8.0 ~cells));
  Gp.Wirelength.grad_fault := Some (fun g -> g *. 1.05);
  Fun.protect
    ~finally:(fun () -> Gp.Wirelength.grad_fault := None)
    (fun () ->
      check_err "scale fault caught" (Ref_place.wa_fd_check d ~gamma:8.0 ~cells))

(* ------------------------------------------------------------------ *)
(* Fuzz driver                                                         *)

let fuzz_iters () =
  match Sys.getenv_opt "ORACLE_FUZZ_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2)
  | None -> 2

let fuzz_battery () =
  let dump_dir = Sys.getenv_opt "ORACLE_DUMP_DIR" in
  let failures = Fuzz.run ?dump_dir ~iters:(fuzz_iters ()) ~seed:42 Fuzz.default_props in
  match failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d failure(s); first: %s on {%s}%s" (List.length failures) f.Fuzz.prop_name
        (Fuzz.params_to_string f.Fuzz.params)
        (match f.Fuzz.dump with None -> "" | Some p -> " dumped to " ^ p)

(* The shrinker must drive a planted size-triggered failure down to its
   minimal parameters. *)
let fuzz_shrinker () =
  let planted =
    {
      Fuzz.name = "planted";
      check =
        (fun d ->
          if Netlist.Design.num_cells d > 120 then Error "too big" else Ok ());
    }
  in
  let p0 =
    { Helpers.small_gen_params with Workloads.Genparams.num_comb = 280; num_ff = 50 }
  in
  (match Fuzz.check_params planted p0 with
  | Ok () -> Alcotest.fail "planted prop should fail on the seed params"
  | Error _ -> ());
  let small, msg = Fuzz.shrink planted p0 in
  Alcotest.(check string) "message preserved" "too big" msg;
  (* Still failing, and no shrink candidate of the result fails. *)
  (match Fuzz.check_params planted small with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "shrunk params must still fail");
  Alcotest.(check bool) "shrunk below the seed size" true
    (small.Workloads.Genparams.num_comb < p0.Workloads.Genparams.num_comb);
  (* Determinism: shrinking again lands on the same parameters. *)
  let small2, _ = Fuzz.shrink planted p0 in
  Alcotest.(check string) "shrink deterministic"
    (Fuzz.params_to_string small)
    (Fuzz.params_to_string small2)

let fuzz_dump () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "oracle_dump_test" in
  let planted =
    { Fuzz.name = "always"; check = (fun _ -> Error "planted failure") }
  in
  let failures = Fuzz.run ~dump_dir:dir ~iters:1 ~seed:1 [ planted ] in
  (match failures with
  | [ f ] -> (
      Alcotest.(check string) "prop name" "always" f.Fuzz.prop_name;
      match f.Fuzz.dump with
      | Some path ->
          Alcotest.(check bool) "design dump exists" true (Sys.file_exists path);
          (* The dump must reload as a valid design. *)
          ignore (Netlist.Io.load_file path);
          Sys.remove path;
          let txt = Filename.chop_suffix path ".design" ^ ".txt" in
          if Sys.file_exists txt then Sys.remove txt
      | None -> Alcotest.fail "expected a dump path")
  | fs -> Alcotest.failf "expected exactly one failure, got %d" (List.length fs));
  if Sys.file_exists dir then Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* Golden harness                                                      *)

let golden_policy () =
  let open Obs.Json in
  let base = Obj [ ("a", Int 3); ("b", Float 1.0); ("s", String "x") ] in
  Alcotest.(check (list string)) "identical" []
    (Golden.compare_json ~path:"t" ~golden:base ~got:base);
  Alcotest.(check (list string)) "float within tolerance" []
    (Golden.compare_json ~path:"t" ~golden:(Float 1.0) ~got:(Float (1.0 +. 1e-9)));
  Alcotest.(check bool) "float beyond tolerance flagged" true
    (Golden.compare_json ~path:"t" ~golden:(Float 1.0) ~got:(Float 1.1) <> []);
  Alcotest.(check bool) "int drift flagged" true
    (Golden.compare_json ~path:"t" ~golden:(Int 3) ~got:(Int 4) <> []);
  Alcotest.(check bool) "missing field flagged" true
    (Golden.compare_json ~path:"t" ~golden:base ~got:(Obj [ ("a", Int 3) ]) <> [])

let golden_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "oracle_golden_test" in
  let entries =
    [ { Golden.design = "sb1"; scale = 0.05; method_ = Tdp.Flow.Vanilla } ]
  in
  let files = Golden.regen ~dir entries in
  Alcotest.(check int) "one golden written" 1 (List.length files);
  check_ok "freshly regenerated goldens pass --check"
    (match Golden.check ~dir entries with
    | Ok () -> Ok ()
    | Error msgs -> Error (String.concat "; " msgs));
  (* Tampering must be detected. *)
  let file = List.hd files in
  let oc = open_out file in
  output_string oc "{\"design\":\"sb1\"}";
  close_out oc;
  (match Golden.check ~dir entries with
  | Ok () -> Alcotest.fail "tampered golden must fail --check"
  | Error _ -> ());
  List.iter Sys.remove files;
  if Sys.file_exists dir then Sys.rmdir dir

let suite =
  [
    Alcotest.test_case "sta full differential (1 and 4 domains)" `Quick sta_full_diff;
    Alcotest.test_case "sta incremental random walk" `Quick sta_incremental_walk;
    Alcotest.test_case "sta eco sequence differential (1 and 4 domains)" `Quick sta_eco_sequence;
    Alcotest.test_case "k_worst vs exhaustive DFS" `Quick paths_vs_exhaustive;
    Alcotest.test_case "report commands vs oracle" `Quick reports_vs_oracle;
    Alcotest.test_case "report_timing_endpoint contracts" `Quick endpoint_contracts;
    Alcotest.test_case "path order deterministic under ties" `Quick tie_break_determinism;
    Alcotest.test_case "elmore vs naive tree walk" `Quick elmore_diff;
    Alcotest.test_case "spectral kernels vs direct summation" `Quick numerics_diff;
    Alcotest.test_case "density and electro gather vs direct" `Quick density_electro_diff;
    Alcotest.test_case "wirelength value and gradient" `Quick wirelength_diff;
    Alcotest.test_case "pin attraction: eq9 + gradient fd" `Quick pin_attract_checks;
    Alcotest.test_case "eq9 shared-arc accumulation" `Quick eq9_shared_arc;
    Alcotest.test_case "metamorphic wirelength" `Quick metamorphic_wirelength;
    Alcotest.test_case "metamorphic tns/wns" `Quick metamorphic_tns_wns;
    Alcotest.test_case "mutation: elmore faults trip the gate" `Quick mutation_elmore;
    Alcotest.test_case "mutation: wa gradient faults trip the gate" `Quick mutation_wa_grad;
    Alcotest.test_case "fuzz battery clean" `Slow fuzz_battery;
    Alcotest.test_case "fuzz shrinker minimises" `Slow fuzz_shrinker;
    Alcotest.test_case "fuzz dumps counterexamples" `Quick fuzz_dump;
    Alcotest.test_case "golden tolerance policy" `Quick golden_policy;
    Alcotest.test_case "golden regen/check roundtrip" `Slow golden_roundtrip;
  ]
