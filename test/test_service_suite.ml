(* The placement service layer: JSONL protocol codec, ECO deltas, job
   accounting, the warm-state registry, and the request engine — through
   to the placed daemon binary driven over stdin. The engine contract
   under test throughout: no job may kill the daemon, and a failed job
   leaves the loaded designs consistent. *)

open Service

let json_str j = Obs.Json.to_string j

let member key j =
  match Obs.Json.member key j with
  | Some v -> v
  | None -> Alcotest.failf "reply %s has no %S field" (json_str j) key

let bool_member key j =
  match member key j with
  | Obs.Json.Bool b -> b
  | _ -> Alcotest.failf "field %S is not a bool in %s" key (json_str j)

let string_member key j =
  match Obs.Json.to_string_opt (member key j) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string in %s" key (json_str j)

let float_member key j =
  match Obs.Json.to_float (member key j) with
  | Some f -> f
  | None -> Alcotest.failf "field %S is not a number in %s" key (json_str j)

let error_kind reply = string_member "kind" (member "error" reply)

let expect_ok what reply =
  if not (bool_member "ok" reply) then Alcotest.failf "%s failed: %s" what (json_str reply);
  member "result" reply

let expect_error what ~kind reply =
  if bool_member "ok" reply then Alcotest.failf "%s unexpectedly succeeded" what;
  Alcotest.(check string) (what ^ " error kind") kind (error_kind reply)

let request ?(id = "t") op params =
  { Protocol.id; op; params = Obs.Json.Obj params }

(* ---------------- Protocol codec ---------------- *)

let test_protocol_parse () =
  (match Protocol.parse_request {|{"id":"7","op":"ping","params":{"a":1}}|} with
  | Ok r ->
      Alcotest.(check string) "id" "7" r.Protocol.id;
      Alcotest.(check string) "op" "ping" r.Protocol.op;
      Alcotest.(check (option int)) "param a" (Some 1) (Protocol.param_int r "a")
  | Error e -> Alcotest.failf "good request rejected: %s" e);
  (* Integer ids are accepted and stringified; params default to empty. *)
  (match Protocol.parse_request {|{"id":3,"op":"stats"}|} with
  | Ok r ->
      Alcotest.(check string) "int id" "3" r.Protocol.id;
      Alcotest.(check (option string)) "absent param" None (Protocol.param_string r "x")
  | Error e -> Alcotest.failf "int-id request rejected: %s" e);
  let rejected line = Result.is_error (Protocol.parse_request line) in
  Alcotest.(check bool) "garbage" true (rejected "not json");
  Alcotest.(check bool) "non-object" true (rejected {|[1,2]|});
  Alcotest.(check bool) "missing op" true (rejected {|{"id":"1"}|});
  Alcotest.(check bool) "empty op" true (rejected {|{"id":"1","op":""}|})

let test_protocol_replies () =
  let ok = Protocol.ok_reply ~id:"a" (Obs.Json.Obj [ ("pong", Obs.Json.Bool true) ]) in
  Alcotest.(check bool) "ok flag" true (bool_member "ok" ok);
  Alcotest.(check string) "ok id" "a" (string_member "id" ok);
  let e =
    Protocol.error_reply ~id:"b"
      (Util.Errors.Config_error { what = "flow"; detail = "unknown flow nope" })
  in
  Alcotest.(check bool) "error flag" false (bool_member "ok" e);
  Alcotest.(check string) "error kind" "config_error" (error_kind e);
  (* Typed replies carry the same structured fields as --report-json. *)
  Alcotest.(check string) "error field" "flow" (string_member "what" (member "error" e));
  let raw = Protocol.raw_error_reply ~id:"" ~kind:"bad_request" ~message:"nope" in
  Alcotest.(check string) "raw kind" "bad_request" (error_kind raw)

(* ---------------- ECO deltas ---------------- *)

let test_eco_roundtrip () =
  let ops =
    [
      Eco.Move { cell = 1; x = 10.0; y = 20.0 };
      Eco.Move_by { cell = 2; dx = -1.5; dy = 0.25 };
      Eco.Set_clock 450.0;
      Eco.Set_wire_rc { r = 0.08; c = 0.3 };
      Eco.Reweight { net = 0; weight = 2.0 };
    ]
  in
  (match Eco.of_json (Eco.to_json ops) with
  | Ok got -> Alcotest.(check bool) "roundtrip" true (got = ops)
  | Error e -> Alcotest.failf "roundtrip rejected: %s" e);
  Alcotest.(check bool) "non-list rejected" true
    (Result.is_error (Eco.of_json (Obs.Json.Obj [])));
  Alcotest.(check bool) "unknown op rejected" true
    (Result.is_error (Eco.of_json (Obs.Json.List [ Obs.Json.Obj [ ("op", Obs.Json.String "zap") ] ])))

let test_eco_validation_atomic () =
  let d = Helpers.chain_design () in
  let x0, y0 = Netlist.Design.snapshot d in
  let movable = List.hd (Netlist.Design.movable_ids d) in
  let attempt what ops =
    (match ops () with
    | (_ : Eco.applied) -> Alcotest.failf "%s: delta unexpectedly applied" what
    | exception Util.Errors.Error _ -> ());
    (* Rejected deltas must not have mutated anything (atomicity). *)
    let x1, y1 = Netlist.Design.snapshot d in
    Alcotest.(check bool) (what ^ " leaves placement intact") true (x0 = x1 && y0 = y1)
  in
  attempt "bad cell id" (fun () -> Eco.apply d [ Move { cell = 9999; x = 1.0; y = 1.0 } ]);
  attempt "fixed cell" (fun () ->
      let fixed =
        List.find (fun c -> not (Netlist.Design.is_movable d c))
          (List.init (Netlist.Design.num_cells d) Fun.id)
      in
      Eco.apply d [ Move { cell = fixed; x = 1.0; y = 1.0 } ]);
  attempt "non-finite move" (fun () ->
      Eco.apply d [ Move { cell = movable; x = Float.nan; y = 0.0 } ]);
  attempt "bad clock" (fun () -> Eco.apply d [ Set_clock (-1.0) ]);
  attempt "bad rc" (fun () -> Eco.apply d [ Set_wire_rc { r = Float.nan; c = 0.1 } ]);
  (* Atomicity across a mixed delta: valid eco op first, invalid second. *)
  attempt "mixed delta" (fun () ->
      Eco.apply d
        [ Move { cell = movable; x = 1.0; y = 1.0 }; Move { cell = -1; x = 0.0; y = 0.0 } ]);
  (* And a valid delta applies, clamps, and reports what changed. *)
  let a =
    Eco.apply d [ Move { cell = movable; x = 1e9; y = 1e9 }; Set_clock 450.0 ]
  in
  Alcotest.(check (list int)) "moved cells" [ movable ] a.Eco.moved;
  Alcotest.(check bool) "clock noted" true (a.Eco.clock = Some 450.0);
  Alcotest.(check (float 1e-9)) "clock written" 450.0 d.Netlist.Design.clock_period;
  let die = d.Netlist.Design.die in
  Alcotest.(check bool) "move clamped into the die" true
    (d.Netlist.Design.x.{movable} <= die.Geom.Rect.xh)

let test_eco_random () =
  let d = Helpers.chain_design () in
  let nm = List.length (Netlist.Design.movable_ids d) in
  let ops = Eco.random ~seed:3 ~frac:0.5 d in
  Alcotest.(check bool) "count bounded" true
    (List.length ops >= 1 && List.length ops <= nm);
  List.iter
    (function
      | Eco.Move_by { cell; dx; dy } ->
          Alcotest.(check bool) "movable target" true (Netlist.Design.is_movable d cell);
          Alcotest.(check bool) "finite displacement" true
            (Float.is_finite dx && Float.is_finite dy)
      | _ -> Alcotest.fail "random delta should be move_by ops")
    ops;
  (* Deterministic in the seed. *)
  Alcotest.(check bool) "seeded" true (Eco.random ~seed:3 ~frac:0.5 d = ops)

(* ---------------- Jobs accounting ---------------- *)

let test_jobs_accounting () =
  let jobs = Jobs.create ~capacity:8 () in
  Alcotest.(check (option (float 0.0))) "no latency yet" None (Jobs.latency_quantile jobs 0.5);
  for _ = 1 to 5 do
    Jobs.run jobs ~op:"ping" Fun.id
  done;
  (match Jobs.run jobs ~op:"boom" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check int) "completed counts failures too" 6 (Jobs.completed jobs);
  Alcotest.(check int) "failed" 1 (Jobs.failed jobs);
  let p50 = Option.get (Jobs.latency_quantile jobs 0.5) in
  let p99 = Option.get (Jobs.latency_quantile jobs 0.99) in
  Alcotest.(check bool) "quantiles monotone" true (0.0 <= p50 && p50 <= p99);
  let stats = Jobs.stats_json jobs in
  Alcotest.(check int) "ops counted"
    5
    (match Obs.Json.to_int (member "ping" (member "ops" stats)) with Some n -> n | None -> -1);
  Alcotest.(check bool) "throughput reported" true
    (match Jobs.throughput jobs with Some r -> r > 0.0 | None -> false)

(* ---------------- Registry ---------------- *)

let test_state_registry () =
  let st = State.create () in
  let d = Helpers.chain_design () in
  let entry = State.add st ~name:"a" d in
  Alcotest.(check bool) "find hit" true (State.find st "a" = Ok entry);
  Alcotest.(check (list string)) "names" [ "a" ] (State.names st);
  (match State.find st "b" with
  | Ok _ -> Alcotest.fail "phantom design"
  | Error msg ->
      (* A miss names what is loaded so the client can self-correct. *)
      Alcotest.(check bool) "miss lists loaded" true
        (String.length msg > 0
        && String.split_on_char 'a' msg |> List.length > 1));
  Alcotest.(check bool) "unload" true (State.unload st "a");
  Alcotest.(check bool) "unload missing" false (State.unload st "a");
  Alcotest.(check (list string)) "empty" [] (State.names st)

(* ---------------- Engine sessions ---------------- *)

let with_design_file f =
  let path = Filename.temp_file "service_chain" ".design" in
  Netlist.Io.save_file path (Helpers.chain_design ());
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let load_params ?(name = "c") path =
  [ ("path", Obs.Json.String path); ("name", Obs.Json.String name) ]

let test_engine_session () =
  with_design_file (fun path ->
      let engine = Engine.create () in
      let r = expect_ok "ping" (Engine.handle engine (request "ping" [])) in
      Alcotest.(check bool) "pong" true (bool_member "pong" r);
      let r = expect_ok "load" (Engine.handle engine (request "load" (load_params path))) in
      Alcotest.(check bool) "cell count" true (float_member "cells" r = 5.0);
      (* replace before place is a typed refusal, not a crash. *)
      expect_error "early replace" ~kind:"config_error"
        (Engine.handle engine
           (request "replace"
              [ ("design", Obs.Json.String "c"); ("random_frac", Obs.Json.Float 0.5) ]));
      let r =
        expect_ok "place"
          (Engine.handle engine
             (request "place"
                [ ("design", Obs.Json.String "c"); ("flow", Obs.Json.String "vanilla") ]))
      in
      Alcotest.(check bool) "metrics present" true (float_member "hpwl" (member "metrics" r) > 0.0);
      let r =
        expect_ok "replace"
          (Engine.handle engine
             (request "replace"
                [
                  ("design", Obs.Json.String "c");
                  ("flow", Obs.Json.String "vanilla");
                  ("random_frac", Obs.Json.Float 0.5);
                ]))
      in
      Alcotest.(check bool) "eco summary" true (float_member "moved" (member "eco" r) >= 1.0);
      let r =
        expect_ok "report_timing"
          (Engine.handle engine
             (request "report_timing" [ ("design", Obs.Json.String "c"); ("n", Obs.Json.Int 3) ]))
      in
      (match member "paths" r with
      | Obs.Json.List (_ :: _) -> ()
      | j -> Alcotest.failf "no paths reported: %s" (json_str j));
      let r = expect_ok "stats" (Engine.handle engine (request "stats" [])) in
      Alcotest.(check bool) "jobs counted" true (float_member "completed" (member "jobs" r) >= 4.0);
      Alcotest.(check bool) "design listed" true
        (bool_member "placed" (member "c" (member "designs" r)));
      (* Error taxonomy via the engine: every reply typed, engine alive. *)
      expect_error "unknown op" ~kind:"config_error"
        (Engine.handle engine (request "frobnicate" []));
      expect_error "unknown design" ~kind:"config_error"
        (Engine.handle engine (request "place" [ ("design", Obs.Json.String "nope") ]));
      expect_error "unknown flow" ~kind:"config_error"
        (Engine.handle engine
           (request "place"
              [ ("design", Obs.Json.String "c"); ("flow", Obs.Json.String "nope") ]));
      expect_error "bad delta" ~kind:"config_error"
        (Engine.handle engine
           (request "replace"
              [ ("design", Obs.Json.String "c"); ("delta", Obs.Json.String "zap") ]));
      expect_error "invalid delta target" ~kind:"invalid_design"
        (Engine.handle engine
           (request "replace"
              [
                ("design", Obs.Json.String "c");
                ( "delta",
                  Obs.Json.List
                    [
                      Obs.Json.Obj
                        [
                          ("op", Obs.Json.String "move");
                          ("cell", Obs.Json.Int 9999);
                          ("x", Obs.Json.Float 0.0);
                          ("y", Obs.Json.Float 0.0);
                        ];
                    ] );
              ]));
      expect_error "malformed line" ~kind:"bad_request" (Engine.handle_line engine "not json");
      (* Missing and malformed files: typed replies, not daemon death. *)
      expect_error "missing file" ~kind:"internal"
        (Engine.handle engine (request "load" (load_params "/nonexistent/x.design")));
      let garbage = Filename.temp_file "service_garbage" ".design" in
      let oc = open_out garbage in
      output_string oc "design x\nbogus record here\nend\n";
      close_out oc;
      Fun.protect
        ~finally:(fun () -> Sys.remove garbage)
        (fun () ->
          expect_error "garbage file" ~kind:"parse_error"
            (Engine.handle engine (request "load" (load_params garbage))));
      Alcotest.(check bool) "unload" true
        (bool_member "unloaded"
           (expect_ok "unload"
              (Engine.handle engine (request "unload" [ ("name", Obs.Json.String "c") ]))));
      (* The session above kept the engine alive through 7 failures. *)
      Alcotest.(check bool) "failures recorded" true (Jobs.failed (Engine.jobs engine) >= 6);
      Alcotest.(check bool) "no shutdown yet" false (Engine.shutdown_requested engine);
      ignore (expect_ok "shutdown" (Engine.handle engine (request "shutdown" [])));
      Alcotest.(check bool) "shutdown latched" true (Engine.shutdown_requested engine))

(* A diverging job (persistent injected fault in the wirelength gradient)
   must come back as a typed "diverged" reply and leave the engine able
   to run the same job cleanly once the fault is gone. *)
let test_engine_survives_divergence () =
  with_design_file (fun path ->
      let engine = Engine.create () in
      ignore (expect_ok "load" (Engine.handle engine (request "load" (load_params path))));
      let place =
        request "place" [ ("design", Obs.Json.String "c"); ("flow", Obs.Json.String "vanilla") ]
      in
      let spec =
        match Util.Fault.parse_spec "nan@0" with
        | Ok s -> s
        | Error e -> Alcotest.failf "fault spec: %s" e
      in
      Gp.Wirelength.grad_fault := Some (Util.Fault.injector spec);
      Fun.protect
        ~finally:(fun () -> Gp.Wirelength.grad_fault := None)
        (fun () ->
          expect_error "fault-injected place" ~kind:"diverged" (Engine.handle engine place));
      Gp.Wirelength.grad_fault := None;
      ignore (expect_ok "place after fault cleared" (Engine.handle engine place)))

(* The daemon must place exactly what the one-shot binary places: same
   design, seed and flow give bit-identical metrics through the engine. *)
let test_engine_metrics_identity () =
  let d =
    Workloads.Generate.generate { Helpers.small_gen_params with name = "svc"; seed = 11 }
  in
  let path = Filename.temp_file "service_ident" ".design" in
  Netlist.Io.save_file path d;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let engine = Engine.create () in
      ignore (expect_ok "load" (Engine.handle engine (request "load" (load_params ~name:"i" path))));
      let r =
        expect_ok "place"
          (Engine.handle engine
             (request "place"
                [
                  ("design", Obs.Json.String "i");
                  ("flow", Obs.Json.String "vanilla");
                  ("seed", Obs.Json.Int 5);
                ]))
      in
      let direct = Tdp.Flow.run ~seed:5 Tdp.Flow.Vanilla (Netlist.Io.load_file path) in
      let got key = float_member key (member "metrics" r) in
      let m = direct.Tdp.Flow.metrics in
      Alcotest.(check (float 0.0)) "hpwl identical" m.Evalkit.Metrics.hpwl (got "hpwl");
      Alcotest.(check (float 0.0)) "tns identical" m.Evalkit.Metrics.tns (got "tns");
      Alcotest.(check (float 0.0)) "wns identical" m.Evalkit.Metrics.wns (got "wns"))

(* The tentpole quality gate: replace after a <=1% ECO must land within
   golden tolerance of a from-scratch place, at >=2x speedup. *)
let test_warm_replace_quality () =
  let engine = Engine.create () in
  ignore
    (expect_ok "load"
       (Engine.handle engine
          (request "load" [ ("suite", Obs.Json.String "sb1"); ("name", Obs.Json.String "w") ])));
  let clock =
    match State.find (Engine.state engine) "w" with
    | Ok e -> e.State.design.Netlist.Design.clock_period
    | Error m -> Alcotest.fail m
  in
  let place_req =
    request "place"
      [ ("design", Obs.Json.String "w"); ("flow", Obs.Json.String "efficient");
        ("seed", Obs.Json.Int 1) ]
  in
  let cold = expect_ok "cold place" (Engine.handle engine place_req) in
  let warm_reply =
    expect_ok "replace"
      (Engine.handle engine
         (request "replace"
            [
              ("design", Obs.Json.String "w");
              ("flow", Obs.Json.String "efficient");
              ("seed", Obs.Json.Int 1);
              ("random_frac", Obs.Json.Float 0.01);
            ]))
  in
  let warm = member "result" warm_reply in
  let metric r key = float_member key (member "metrics" r) in
  let cold_t = float_member "runtime" cold and warm_t = float_member "runtime" warm in
  Alcotest.(check bool)
    (Printf.sprintf "warm >=2x faster (cold %.2fs, warm %.2fs)" cold_t warm_t)
    true
    (warm_t *. 2.0 <= cold_t);
  let dw = Float.abs (metric warm "wns" -. metric cold "wns") in
  let dt = Float.abs (metric warm "tns" -. metric cold "tns") in
  Alcotest.(check bool)
    (Printf.sprintf "wns within tolerance (delta %.1f ps, clock %.1f ps)" dw clock)
    true
    (dw <= 0.05 *. clock);
  Alcotest.(check bool)
    (Printf.sprintf "tns within tolerance (delta %.1f ps, clock %.1f ps)" dt clock)
    true
    (dt <= 0.25 *. clock)

(* ---------------- The daemon binary over stdin ---------------- *)

let placed_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name (Filename.concat "bin" "placed.exe"))

let test_daemon_stdin_session () =
  with_design_file (fun path ->
      let req = Filename.temp_file "placed_req" ".jsonl" in
      let out = Filename.temp_file "placed_out" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> List.iter Sys.remove [ req; out ])
        (fun () ->
          let oc = open_out req in
          output_string oc
            (String.concat "\n"
               [
                 {|{"id":"1","op":"ping"}|};
                 "garbage line";
                 Printf.sprintf
                   {|{"id":"2","op":"load","params":{"path":"%s","name":"c"}}|} path;
                 {|{"id":"3","op":"place","params":{"design":"c","flow":"vanilla"}}|};
                 {|{"id":"4","op":"report_timing","params":{"design":"c","n":2}}|};
                 {|{"id":"5","op":"stats"}|};
                 {|{"id":"6","op":"shutdown"}|};
               ]);
          output_char oc '\n';
          close_out oc;
          let code =
            Sys.command
              (Printf.sprintf "%s --log-level quiet < %s > %s 2>/dev/null" placed_exe req out)
          in
          Alcotest.(check int) "daemon exit 0" 0 code;
          let ic = open_in out in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          let replies =
            List.rev_map
              (fun line ->
                match Obs.Json.parse line with
                | Ok j -> j
                | Error e -> Alcotest.failf "unparseable reply %s: %s" line e)
              !lines
          in
          Alcotest.(check int) "one reply per request" 7 (List.length replies);
          let reply id =
            List.find (fun j -> string_member "id" j = id) replies
          in
          ignore (expect_ok "ping" (reply "1"));
          expect_error "garbage line" ~kind:"bad_request" (reply "");
          ignore (expect_ok "load" (reply "2"));
          let placed = expect_ok "place" (reply "3") in
          Alcotest.(check bool) "daemon metrics" true
            (float_member "hpwl" (member "metrics" placed) > 0.0);
          ignore (expect_ok "report_timing" (reply "4"));
          let stats = expect_ok "stats" (reply "5") in
          Alcotest.(check bool) "one failed job (garbage parses before dispatch)" true
            (float_member "completed" (member "jobs" stats) >= 4.0);
          ignore (expect_ok "shutdown" (reply "6"))))

let suite =
  [
    ("protocol parse", `Quick, test_protocol_parse);
    ("protocol replies", `Quick, test_protocol_replies);
    ("eco json roundtrip", `Quick, test_eco_roundtrip);
    ("eco validation atomic", `Quick, test_eco_validation_atomic);
    ("eco random delta", `Quick, test_eco_random);
    ("jobs accounting", `Quick, test_jobs_accounting);
    ("state registry", `Quick, test_state_registry);
    ("engine session", `Quick, test_engine_session);
    ("engine survives divergence", `Quick, test_engine_survives_divergence);
    ("engine vs one-shot metrics identity", `Slow, test_engine_metrics_identity);
    ("warm replace quality and speedup", `Slow, test_warm_replace_quality);
    ("daemon stdin session", `Slow, test_daemon_stdin_session);
  ]
