(* Robustness suite: divergence guards, typed errors, fault-injection
   recovery, and the [place] binary's exit-code contract.

   The fault-injection hooks ([Gp.Wirelength.grad_fault],
   [Rctree.Elmore.fault]) are process-global; every test that installs
   one clears it in a [Fun.protect] finaliser so a failure cannot leak
   faults into later tests. *)

open Netlist

(* Run [f] at 1 and 4 domains — guards must catch corruption wherever a
   parallel kernel lands it. *)
let at_domains f () =
  Helpers.with_domains 1 f;
  Helpers.with_domains 4 f

let counter ctx name =
  match Obs.Ctx.metric ctx name with
  | Some (Obs.Metric.Counter r) -> !r
  | _ -> 0.0

let with_wl_fault spec f =
  Gp.Wirelength.grad_fault := Some (Util.Fault.injector spec);
  Fun.protect ~finally:(fun () -> Gp.Wirelength.grad_fault := None) f

let with_elmore_fault spec f =
  Rctree.Elmore.fault := Some (Util.Fault.injector spec);
  Fun.protect ~finally:(fun () -> Rctree.Elmore.fault := None) f

(* ---------------- Guard primitives ---------------- *)

let test_guard_primitives () =
  Alcotest.(check bool) "finite" true (Util.Guard.is_finite 1.5);
  Alcotest.(check bool) "nan" false (Util.Guard.is_finite Float.nan);
  Alcotest.(check bool) "inf" false (Util.Guard.is_finite Float.infinity);
  let clean = Array.init 1000 float_of_int in
  Alcotest.(check bool) "all_finite clean" true (Util.Guard.all_finite clean);
  Alcotest.(check bool) "first_nonfinite clean" true
    (Util.Guard.first_nonfinite clean = None);
  Alcotest.(check int) "count clean" 0 (Util.Guard.count_nonfinite clean);
  let dirty = Array.copy clean in
  dirty.(617) <- Float.nan;
  dirty.(800) <- Float.neg_infinity;
  Alcotest.(check bool) "all_finite dirty" false (Util.Guard.all_finite dirty);
  Alcotest.(check bool) "first_nonfinite dirty" true
    (Util.Guard.first_nonfinite dirty = Some 617);
  Alcotest.(check int) "count dirty" 2 (Util.Guard.count_nonfinite dirty);
  Alcotest.(check bool) "empty" true (Util.Guard.all_finite [||])

let test_sampled_finite () =
  (* Short arrays are scanned in full: a single NaN is always found. *)
  let short = Array.make 100 0.0 in
  short.(63) <- Float.nan;
  Alcotest.(check bool) "short full scan" false (Util.Guard.sampled_finite short);
  (* Long arrays: a fully poisoned array is caught at any offset, and
     rotating the offset sweeps a single offender eventually. *)
  let long = Array.make 10_000 Float.nan in
  Alcotest.(check bool) "long poisoned" false (Util.Guard.sampled_finite ~offset:0 long);
  let one = Array.make 10_000 0.0 in
  one.(4321) <- Float.nan;
  let found = ref false in
  for off = 0 to 200 do
    if not (Util.Guard.sampled_finite ~offset:off one) then found := true
  done;
  Alcotest.(check bool) "offset sweep finds lone NaN" true !found;
  Alcotest.(check bool) "clean long" true
    (Util.Guard.sampled_finite ~offset:7 (Array.make 10_000 1.0))

(* ---------------- Fault specs ---------------- *)

let test_fault_spec_parse () =
  (match Util.Fault.parse_spec "nan@100+5" with
  | Ok s ->
      Alcotest.(check bool) "kind" true (s.Util.Fault.kind = Util.Fault.Nan);
      Alcotest.(check int) "start" 100 s.Util.Fault.start;
      Alcotest.(check int) "count" 5 s.Util.Fault.count;
      Alcotest.(check string) "roundtrip" "nan@100+5" (Util.Fault.spec_to_string s)
  | Error e -> Alcotest.fail e);
  (match Util.Fault.parse_spec "-inf@0" with
  | Ok s ->
      Alcotest.(check bool) "unbounded" true (s.Util.Fault.count < 0);
      Alcotest.(check bool) "neg inf" true (s.Util.Fault.kind = Util.Fault.Neg_inf)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "bad kind" true (Result.is_error (Util.Fault.parse_spec "bogus@0"));
  Alcotest.(check bool) "bad window" true (Result.is_error (Util.Fault.parse_spec "nan@-3"));
  Alcotest.(check bool) "no at" true (Result.is_error (Util.Fault.parse_spec "nan"));
  match Util.Fault.parse "wl_grad=nan@10+2, elmore=huge@0" with
  | Ok [ ("wl_grad", s1); ("elmore", s2) ] ->
      Alcotest.(check int) "clause 1 start" 10 s1.Util.Fault.start;
      Alcotest.(check bool) "clause 2 kind" true (s2.Util.Fault.kind = Util.Fault.Huge)
  | Ok _ -> Alcotest.fail "wrong clause list"
  | Error e -> Alcotest.fail e

let test_fault_injector_window () =
  let inj = Util.Fault.injector { Util.Fault.kind = Util.Fault.Nan; start = 3; count = 2 } in
  let out = List.init 8 (fun _ -> inj 1.0) in
  let nans = List.filter (fun v -> Float.is_nan v) out in
  Alcotest.(check int) "exactly the window corrupted" 2 (List.length nans);
  Alcotest.(check bool) "calls 0-2 clean" true
    (List.for_all (fun v -> v = 1.0) (List.filteri (fun i _ -> i < 3) out))

(* ---------------- Typed errors ---------------- *)

let test_error_exit_codes () =
  let cases =
    [
      (Util.Errors.Config_error { what = "w"; detail = "d" }, "config_error", 2);
      (Util.Errors.Invalid_design { design = "x"; problems = [ "p" ] }, "invalid_design", 3);
      (Util.Errors.Diverged { stage = "gp"; detail = "d"; recoveries = 5 }, "diverged", 4);
      (Util.Errors.Infeasible { stage = "legalize"; detail = "d" }, "infeasible", 5);
      (Util.Errors.Parse_failed { file = "bad.aux"; line = 3; detail = "d" }, "parse_error", 6);
    ]
  in
  List.iter
    (fun (e, kind, code) ->
      Alcotest.(check string) ("kind " ^ kind) kind (Util.Errors.kind e);
      Alcotest.(check int) ("exit code " ^ kind) code (Util.Errors.exit_code e);
      Alcotest.(check bool) ("message " ^ kind) true (String.length (Util.Errors.message e) > 0);
      Alcotest.(check bool) ("fields " ^ kind) true (Util.Errors.fields e <> []))
    cases;
  (* Exit codes are pairwise distinct and avoid the reserved 0/1/124/125. *)
  let codes = List.map (fun (e, _, _) -> Util.Errors.exit_code e) cases in
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare codes));
  List.iter
    (fun c -> Alcotest.(check bool) "not reserved" false (List.mem c [ 0; 1; 124; 125 ]))
    codes

(* ---------------- Nesterov BB fallback (satellite regression) -------- *)

(* A NaN gradient poisons prev_g; the next BB estimate is then NaN, and
   before the fix [Float.min max_step nan = nan] made the *step* NaN too,
   spreading the poison to every component of the iterate. With the fix
   the step falls back to [fallback_step] and only the originally
   poisoned component stays NaN. *)
let test_nesterov_bb_nan_fallback () =
  let opt = Gp.Nesterov.create [| 0.0; 0.0 |] in
  let step g = Gp.Nesterov.step opt ~g ~fallback_step:0.1 ~max_step:1.0 ~clamp:(fun _ -> ()) in
  step [| 1.0; 1.0 |];
  step [| Float.nan; 1.0 |];
  step [| 1.0; 1.0 |];
  let u = Gp.Nesterov.iterate opt in
  Alcotest.(check bool) "step length finite after NaN round" true
    (Float.is_finite (Gp.Nesterov.last_step opt));
  Alcotest.(check bool) "unpoisoned component stays finite" true (Float.is_finite u.(1))

(* ---------------- GP guard + rollback ---------------- *)

let gp_params =
  { Gp.Globalplace.default_params with max_iters = 40; min_iters = 0; seed = 3 }

(* A transient NaN window in the wirelength gradient: the guard must fire,
   roll back to the last verified checkpoint, and the run must finish with
   an entirely finite placement. *)
let test_gp_transient_fault_recovers () =
  let d = Workloads.Generate.generate Helpers.small_gen_params in
  let ctx = Obs.Ctx.create () in
  with_wl_fault
    { Util.Fault.kind = Util.Fault.Nan; start = 2000; count = 500 }
    (fun () ->
      let r = Gp.Globalplace.run ~params:gp_params ~obs:ctx d in
      Alcotest.(check bool) "guard fired" true (counter ctx "guard.nan_detected" >= 1.0);
      Alcotest.(check bool) "rolled back" true (counter ctx "guard.rollbacks" >= 1.0);
      Alcotest.(check bool) "final hpwl finite" true (Float.is_finite r.Gp.Globalplace.final_hpwl);
      Alcotest.(check bool) "coordinates finite" true
        (Util.Guard.all_finite_ba d.Design.x && Util.Guard.all_finite_ba d.Design.y))

(* Every fault kind must be caught, not just NaN. *)
let test_gp_fault_kinds_recover () =
  List.iter
    (fun kind ->
      let d = Workloads.Generate.generate Helpers.small_gen_params in
      let ctx = Obs.Ctx.create () in
      with_wl_fault
        { Util.Fault.kind; start = 2000; count = 300 }
        (fun () ->
          let r = Gp.Globalplace.run ~params:gp_params ~obs:ctx d in
          Alcotest.(check bool)
            ("finite after " ^ Util.Fault.kind_to_string kind)
            true
            (Float.is_finite r.Gp.Globalplace.final_hpwl)))
    [ Util.Fault.Nan; Util.Fault.Pos_inf; Util.Fault.Neg_inf ]

(* A persistent fault exhausts the consecutive-recovery budget and must
   raise the structured [Diverged] error instead of looping forever. *)
let test_gp_persistent_fault_diverges () =
  let d = Workloads.Generate.generate Helpers.small_gen_params in
  let ctx = Obs.Ctx.create () in
  with_wl_fault
    { Util.Fault.kind = Util.Fault.Nan; start = 0; count = -1 }
    (fun () ->
      match Gp.Globalplace.run ~params:gp_params ~obs:ctx d with
      | _ -> Alcotest.fail "expected Diverged"
      | exception Util.Errors.Error (Util.Errors.Diverged { recoveries; stage; _ }) ->
          Alcotest.(check string) "stage" "globalplace" stage;
          Alcotest.(check int) "budget exhausted" gp_params.Gp.Globalplace.max_recoveries
            recoveries;
          Alcotest.(check bool) "rollbacks counted" true
            (counter ctx "guard.rollbacks"
            >= float_of_int gp_params.Gp.Globalplace.max_recoveries))

(* ---------------- Flow checkpoint decision (satellite) ---------------- *)

let test_checkpoint_decision () =
  let dec = Tdp.Flow.checkpoint_decision in
  Alcotest.(check bool) "clear improvement" true
    (dec ~best_key:(-10.0) ~best_hpwl:100.0 ~key:(-5.0) ~hpwl:120.0 = Tdp.Flow.New_best);
  Alcotest.(check bool) "clear regression" true
    (dec ~best_key:(-5.0) ~best_hpwl:100.0 ~key:(-10.0) ~hpwl:50.0 = Tdp.Flow.Keep);
  Alcotest.(check bool) "tie with better hpwl" true
    (dec ~best_key:(-5.0) ~best_hpwl:100.0 ~key:(-5.0 -. 1e-10) ~hpwl:90.0
    = Tdp.Flow.Tie_better_hpwl);
  Alcotest.(check bool) "tie with worse hpwl" true
    (dec ~best_key:(-5.0) ~best_hpwl:100.0 ~key:(-5.0) ~hpwl:110.0 = Tdp.Flow.Keep);
  Alcotest.(check bool) "first round always wins" true
    (dec ~best_key:Float.neg_infinity ~best_hpwl:Float.infinity ~key:(-1e9) ~hpwl:1.0
    = Tdp.Flow.New_best);
  (* Non-finite metrics never checkpoint. *)
  Alcotest.(check bool) "nan key" true
    (dec ~best_key:(-5.0) ~best_hpwl:100.0 ~key:Float.nan ~hpwl:90.0 = Tdp.Flow.Keep);
  Alcotest.(check bool) "inf hpwl" true
    (dec ~best_key:(-5.0) ~best_hpwl:100.0 ~key:0.0 ~hpwl:Float.infinity = Tdp.Flow.Keep);
  (* The ratchet scenario that motivated the fix: a chain of eps-sized
     regressions each accepted as a "tie". The caller keeps
     [max best_key key], so the bar never moves down; verify that after a
     simulated chain the original best still decides. *)
  let best_key = ref (-5.0) and best_hpwl = ref 100.0 in
  for i = 1 to 50 do
    let key = -5.0 -. (1e-4 *. 5.0 *. 0.9) (* just inside the eps band *) in
    let hpwl = 100.0 -. float_of_int i in
    match dec ~best_key:!best_key ~best_hpwl:!best_hpwl ~key ~hpwl with
    | Tdp.Flow.Tie_better_hpwl ->
        best_key := Float.max !best_key key;
        best_hpwl := hpwl
    | Tdp.Flow.New_best ->
        best_key := key;
        best_hpwl := hpwl
    | Tdp.Flow.Keep -> ()
  done;
  Alcotest.(check (float 1e-12)) "best key never ratcheted down" (-5.0) !best_key

(* ---------------- Pin attraction boundaries (satellite) -------------- *)

let test_pin_attract_wns_boundary () =
  let d = Helpers.chain_design () in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let graph = Sta.Timer.graph timer in
  let path =
    match Sta.Timer.critical_path timer with
    | Some p -> p
    | None -> Alcotest.fail "chain design has no critical path"
  in
  let with_slack s = { path with Sta.Paths.slack = s } in
  let fresh () = Tdp.Pin_attract.create d ~loss:Tdp.Config.Quadratic in
  let update pa ~wns paths =
    Tdp.Pin_attract.update_from_paths pa graph ~w0:10.0 ~w1:2.0 ~wns ~stale_decay:0.9 paths
  in
  (* wns = 0: no violation, Eq. 9 must not divide by zero or create pairs. *)
  let pa = fresh () in
  update pa ~wns:0.0 [ with_slack (-1.0) ];
  Alcotest.(check int) "wns=0 creates no pairs" 0 (Tdp.Pin_attract.num_pairs pa);
  (* Negative zero is still "no violation". *)
  let pa = fresh () in
  update pa ~wns:(-0.0) [ with_slack (-1.0) ];
  Alcotest.(check int) "wns=-0 creates no pairs" 0 (Tdp.Pin_attract.num_pairs pa);
  (* Non-finite ratio operands are rejected. *)
  let pa = fresh () in
  update pa ~wns:(-1.0) [ with_slack Float.neg_infinity ];
  Alcotest.(check int) "slack=-inf rejected" 0 (Tdp.Pin_attract.num_pairs pa);
  let pa = fresh () in
  update pa ~wns:(-1.0) [ with_slack Float.nan ];
  Alcotest.(check int) "slack=nan rejected" 0 (Tdp.Pin_attract.num_pairs pa);
  (* A genuine violation still updates, and every weight stays finite. *)
  let pa = fresh () in
  update pa ~wns:(-2.0) [ with_slack (-1.0) ];
  Alcotest.(check bool) "violation creates pairs" true (Tdp.Pin_attract.num_pairs pa > 0);
  let all_finite =
    Tdp.Pin_attract.fold_pairs pa ~init:true ~f:(fun acc ~pin_i:_ ~pin_j:_ ~weight ->
        acc && Float.is_finite weight)
  in
  Alcotest.(check bool) "weights finite" true all_finite

(* ---------------- Validation ---------------- *)

let test_design_validate () =
  let d = Helpers.chain_design () in
  Alcotest.(check (list string)) "clean design" [] (Design.validate d);
  Design.validate_exn d;
  let saved = d.Design.x.{1} in
  d.Design.x.{1} <- Float.nan;
  Alcotest.(check bool) "nan coordinate detected" true (Design.validate d <> []);
  (try
     Design.validate_exn d;
     Alcotest.fail "expected Invalid_design"
   with Util.Errors.Error (Util.Errors.Invalid_design { design; problems }) ->
     Alcotest.(check string) "design name" d.Design.name design;
     Alcotest.(check bool) "problems listed" true (problems <> []));
  d.Design.x.{1} <- saved;
  Alcotest.(check (list string)) "restored design clean" [] (Design.validate d)

let test_config_validate () =
  Alcotest.(check bool) "default valid" true (Tdp.Config.validate Tdp.Config.default = Ok ());
  let bad = { Tdp.Config.default with Tdp.Config.m = 0 } in
  Alcotest.(check bool) "m=0 rejected" true (Result.is_error (Tdp.Config.validate bad));
  let bad = { Tdp.Config.default with Tdp.Config.beta = Float.nan } in
  Alcotest.(check bool) "nan beta rejected" true (Result.is_error (Tdp.Config.validate bad));
  let bad = { Tdp.Config.default with Tdp.Config.stale_decay = 0.0 } in
  (try
     Tdp.Config.validate_exn bad;
     Alcotest.fail "expected Config_error"
   with Util.Errors.Error (Util.Errors.Config_error _) -> ())

(* ---------------- Whole-flow robustness ---------------- *)

let fast_cfg =
  {
    Tdp.Config.default with
    Tdp.Config.timing_start = 20;
    extra_iters = 60;
    m = 10;
    cooldown_iters = 0;
  }

(* The Efficient flow under a delay-model fault window: huge delays make
   every slack wildly negative for a few rounds; the flow must survive and
   deliver finite metrics. *)
let test_flow_with_elmore_fault () =
  let d = Helpers.small_calibrated () in
  with_elmore_fault
    { Util.Fault.kind = Util.Fault.Huge; start = 0; count = 20_000 }
    (fun () ->
      let r = Tdp.Flow.run ~obs:Obs.Ctx.null (Tdp.Flow.Efficient fast_cfg) d in
      let m = r.Tdp.Flow.metrics in
      Alcotest.(check bool) "hpwl finite" true (Float.is_finite m.Evalkit.Metrics.hpwl);
      Alcotest.(check bool) "tns finite" true (Float.is_finite m.Evalkit.Metrics.tns);
      Alcotest.(check bool) "coordinates finite" true
        (Util.Guard.all_finite_ba d.Design.x && Util.Guard.all_finite_ba d.Design.y))

(* NaN delays: Propagate filters non-finite slacks, so tns/wns stay
   finite and the extraction guard layers never let a NaN reach the pair
   weights. The flow completes with finite output. *)
let test_flow_with_elmore_nan_fault () =
  let d = Helpers.small_calibrated () in
  with_elmore_fault
    { Util.Fault.kind = Util.Fault.Nan; start = 0; count = 20_000 }
    (fun () ->
      let r = Tdp.Flow.run ~obs:Obs.Ctx.null (Tdp.Flow.Efficient fast_cfg) d in
      Alcotest.(check bool) "hpwl finite" true
        (Float.is_finite r.Tdp.Flow.metrics.Evalkit.Metrics.hpwl))

let test_flow_rejects_invalid_design () =
  let d = Helpers.chain_design () in
  d.Design.x.{1} <- Float.infinity;
  try
    ignore (Tdp.Flow.run ~obs:Obs.Ctx.null Tdp.Flow.Vanilla d);
    Alcotest.fail "expected Invalid_design"
  with Util.Errors.Error (Util.Errors.Invalid_design _) -> ()

(* ---------------- The place binary's exit-code contract -------------- *)

(* Resolve the binary relative to the test executable so the tests work
   both under `dune runtest` (cwd = _build/default/test) and `dune exec`
   from anywhere. *)
let place_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name (Filename.concat "bin" "place.exe"))

let run_place args = Sys.command (place_exe ^ " " ^ args ^ " >/dev/null 2>&1")

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let tiny_design_text ~x1 =
  Printf.sprintf
    "design tiny\n\
     die 0.0 0.0 100.0 100.0\n\
     rowheight 1.0\n\
     clock 500.0\n\
     wire 0.1 0.2\n\
     c pi I 0.0 50.0\n\
     c u1 L INV_X1 M %s 50.0\n\
     c po O 100.0 50.0\n\
     n n1 0:p 1:a1\n\
     n n2 1:o 2:p\n\
     end\n"
    x1

let test_place_exit_codes () =
  let design = Filename.temp_file "robustness_tiny" ".design" in
  let bad_design = Filename.temp_file "robustness_bad" ".design" in
  let report = Filename.temp_file "robustness_report" ".json" in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ design; bad_design; report ])
    (fun () ->
      write_file design (tiny_design_text ~x1:"50.0");
      write_file bad_design (tiny_design_text ~x1:"nan");
      let base = Printf.sprintf "--design-file %s --flow vanilla --log-level quiet" design in
      (* Success: exit 0 and a null error field in the report. *)
      Alcotest.(check int) "success exit 0" 0
        (run_place (Printf.sprintf "%s --report-json %s" base report));
      Alcotest.(check bool) "success report has null error" true
        (contains ~sub:"\"error\":null" (read_file report));
      (* Config errors: exit 2. *)
      Alcotest.(check int) "unknown flow exit 2" 2
        (run_place (Printf.sprintf "--design-file %s --flow nope --log-level quiet" design));
      Alcotest.(check int) "unknown fault site exit 2" 2
        (run_place (base ^ " --fault-inject bogus=nan@0"));
      Alcotest.(check int) "malformed fault spec exit 2" 2
        (run_place (base ^ " --fault-inject wl_grad=nan"));
      (* Invalid design: exit 3. *)
      Alcotest.(check int) "nan coordinate exit 3" 3
        (run_place
           (Printf.sprintf "--design-file %s --flow vanilla --log-level quiet" bad_design));
      (* Malformed foreign file: exit 6, with the structured parse_error
         (kind + file/line/detail) in the report. *)
      write_file bad_design "design tiny\nbogus record here\nend\n";
      Alcotest.(check int) "malformed file exit 6" 6
        (run_place
           (Printf.sprintf "--design-file %s --log-level quiet --report-json %s" bad_design
              report));
      let rpt = read_file report in
      Alcotest.(check bool) "parse_error kind in report" true
        (contains ~sub:"\"kind\":\"parse_error\"" rpt);
      Alcotest.(check bool) "offending line in report" true (contains ~sub:"\"line\":\"2\"" rpt);
      (* Divergence under a persistent injected fault: exit 4, and the
         report carries the structured error plus the guard counters. *)
      Alcotest.(check int) "persistent fault exit 4" 4
        (run_place (Printf.sprintf "%s --fault-inject wl_grad=nan@0 --report-json %s" base report));
      let rpt = read_file report in
      Alcotest.(check bool) "diverged error kind in report" true
        (contains ~sub:"\"kind\":\"diverged\"" rpt);
      Alcotest.(check bool) "guard counters in report" true
        (contains ~sub:"guard.rollbacks" rpt);
      (* The FAULT_INJECT environment variable is an alternative spelling. *)
      Alcotest.(check int) "FAULT_INJECT env exit 4" 4
        (Sys.command
           (Printf.sprintf "FAULT_INJECT=wl_grad=nan@0 %s %s >/dev/null 2>&1" place_exe base)))

let suite =
  [
    ("guard primitives", `Quick, test_guard_primitives);
    ("guard sampled probe", `Quick, test_sampled_finite);
    ("fault spec parsing", `Quick, test_fault_spec_parse);
    ("fault injector window", `Quick, test_fault_injector_window);
    ("error exit codes", `Quick, test_error_exit_codes);
    ("nesterov BB NaN fallback", `Quick, test_nesterov_bb_nan_fallback);
    ("gp transient fault recovers", `Quick, at_domains test_gp_transient_fault_recovers);
    ("gp fault kinds recover", `Quick, test_gp_fault_kinds_recover);
    ("gp persistent fault diverges", `Quick, at_domains test_gp_persistent_fault_diverges);
    ("flow checkpoint decision", `Quick, test_checkpoint_decision);
    ("pin attraction wns boundary", `Quick, test_pin_attract_wns_boundary);
    ("design validation", `Quick, test_design_validate);
    ("config validation", `Quick, test_config_validate);
    ("flow survives elmore huge fault", `Slow, test_flow_with_elmore_fault);
    ("flow survives elmore nan fault", `Slow, test_flow_with_elmore_nan_fault);
    ("flow rejects invalid design", `Quick, test_flow_rejects_invalid_design);
    ("place exit codes", `Slow, test_place_exit_codes);
  ]
