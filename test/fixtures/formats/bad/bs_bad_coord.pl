UCLA pl 1.0
a 1 2 : N
b 3.5.7 4 : N
