UCLA pl 1.0

i1 0 2 : N /FIXED
i2 0 5 : N /FIXED
o1 9 4 : N /FIXED
b1 3 5 : N /FIXED
g1 2 2 : N
g2 4 3 : N
g3 6 4 : N
f1 5 1 : N
