(* lib/obs: spans, metrics, sinks, JSON, and the observation-only
   guarantee (tracing must not change placement results). *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Json ---------------- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("i", Obs.Json.Int 42);
        ("neg", Obs.Json.Int (-7));
        ("s", Obs.Json.String "a \"quoted\"\nline\t\\slash");
        ("b", Obs.Json.Bool true);
        ("nil", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Bool false; Obs.Json.String "" ]);
        ("o", Obs.Json.Obj [ ("nested", Obs.Json.List []) ]);
      ]
  in
  let v' = Obs.Json.parse_exn (Obs.Json.to_string v) in
  Alcotest.(check bool) "roundtrip equal" true (v = v')

let test_json_floats () =
  let j = Obs.Json.parse_exn "{\"a\": 1.5, \"b\": -2.25e2, \"c\": 3}" in
  let get k = Option.bind (Obs.Json.member k j) Obs.Json.to_float in
  Alcotest.(check (option (float 1e-9))) "a" (Some 1.5) (get "a");
  Alcotest.(check (option (float 1e-9))) "b" (Some (-225.0)) (get "b");
  Alcotest.(check (option (float 1e-9))) "c (int coerces)" (Some 3.0) (get "c");
  (* Non-finite floats must emit as null, keeping every line parseable. *)
  Alcotest.(check string) "nan -> null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check bool)
    "trailing garbage rejected" true
    (match Obs.Json.parse "{} x" with Error _ -> true | Ok _ -> false)

(* ---------------- Spans ---------------- *)

(* A hand-cranked clock makes span durations exact. *)
let manual_ctx sinks =
  let now = ref 0.0 in
  let ctx = Obs.Ctx.create ~clock:(fun () -> !now) ~sinks () in
  (ctx, fun dt -> now := !now +. dt)

let test_span_nesting () =
  let sink, get_spans, _ = Obs.Sink.memory () in
  let ctx, tick = manual_ctx [ sink ] in
  Obs.Ctx.span ctx "outer" (fun () ->
      tick 1.0;
      Obs.Ctx.span ctx "inner" (fun () -> tick 0.25);
      Obs.Ctx.span ctx "inner" (fun () -> tick 0.5);
      tick 1.0);
  match get_spans () with
  | [ i1; i2; o ] ->
      (* Children complete (and reach the sink) before their parent. *)
      Alcotest.(check string) "first child" "inner" i1.Obs.Span.name;
      Alcotest.(check string) "second child" "inner" i2.Obs.Span.name;
      Alcotest.(check string) "parent last" "outer" o.Obs.Span.name;
      Alcotest.(check int) "i1 parented" o.Obs.Span.id i1.Obs.Span.parent;
      Alcotest.(check int) "i2 parented" o.Obs.Span.id i2.Obs.Span.parent;
      Alcotest.(check int) "outer is root" (-1) o.Obs.Span.parent;
      check_float "i1 dur" 0.25 i1.Obs.Span.dur;
      check_float "i2 dur" 0.5 i2.Obs.Span.dur;
      check_float "outer dur" 2.75 o.Obs.Span.dur;
      check_float "i1 start" 1.0 i1.Obs.Span.start
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_span_exception_safety () =
  let sink, get_spans, _ = Obs.Sink.memory () in
  let ctx, tick = manual_ctx [ sink ] in
  (try
     Obs.Ctx.span ctx "boom" (fun () ->
         tick 0.125;
         failwith "expected")
   with Failure _ -> ());
  (match get_spans () with
  | [ s ] ->
      Alcotest.(check string) "span delivered" "boom" s.Obs.Span.name;
      check_float "dur recorded" 0.125 s.Obs.Span.dur
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans));
  (* The stack unwound: the next span is a root again. *)
  Obs.Ctx.span ctx "after" (fun () -> ());
  match get_spans () with
  | [ _; after ] -> Alcotest.(check int) "root after exception" (-1) after.Obs.Span.parent
  | _ -> Alcotest.fail "expected 2 spans"

let test_span_attrs () =
  let sink, get_spans, _ = Obs.Sink.memory () in
  let ctx, _ = manual_ctx [ sink ] in
  Obs.Ctx.span ctx ~attrs:[ ("k", Obs.Json.Int 1) ] "s" (fun () ->
      Obs.Ctx.span_attrs ctx [ ("hpwl", Obs.Json.Float 2.5) ]);
  match get_spans () with
  | [ s ] ->
      Alcotest.(check int) "two attrs" 2 (List.length s.Obs.Span.attrs);
      Alcotest.(check bool) "late attr present" true (List.mem_assoc "hpwl" s.Obs.Span.attrs)
  | _ -> Alcotest.fail "expected 1 span"

(* ---------------- Aggregator (self time) ---------------- *)

let test_agg_self_time () =
  let agg = Obs.Agg.create () in
  let ctx, tick = manual_ctx [ Obs.Agg.sink agg ] in
  Obs.Ctx.span ctx "outer" (fun () ->
      tick 1.0;
      Obs.Ctx.span ctx "inner" (fun () -> tick 3.0);
      tick 0.5);
  let outer = Option.get (Obs.Agg.get agg "outer") in
  let inner = Option.get (Obs.Agg.get agg "inner") in
  check_float "outer total" 4.5 outer.Obs.Agg.total;
  check_float "outer self excludes child" 1.5 outer.Obs.Agg.self;
  check_float "inner total" 3.0 inner.Obs.Agg.total;
  check_float "inner self" 3.0 inner.Obs.Agg.self;
  match Obs.Agg.to_breakdown agg with
  | [ (n1, t1); (n2, t2) ] ->
      Alcotest.(check string) "largest first" "outer" n1;
      Alcotest.(check string) "then inner" "inner" n2;
      check_float "t1" 4.5 t1;
      check_float "t2" 3.0 t2
  | _ -> Alcotest.fail "expected 2 breakdown rows"

(* ---------------- Metrics ---------------- *)

let test_counter_gauge () =
  let ctx, _ = manual_ctx [] in
  Obs.Ctx.count ctx "c";
  Obs.Ctx.count ctx ~by:2.5 "c";
  Obs.Ctx.gauge ctx "g" 7.0;
  Obs.Ctx.gauge ctx "g" 9.0;
  (match Obs.Ctx.metric ctx "c" with
  | Some (Obs.Metric.Counter r) -> check_float "counter sums" 3.5 !r
  | _ -> Alcotest.fail "counter missing");
  (match Obs.Ctx.metric ctx "g" with
  | Some (Obs.Metric.Gauge r) -> check_float "gauge keeps last" 9.0 !r
  | _ -> Alcotest.fail "gauge missing");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metric \"c\" registered with another kind") (fun () ->
      Obs.Ctx.gauge ctx "c" 1.0)

let test_histogram_quantiles () =
  let h = Obs.Metric.histogram_create [| 1.0; 2.0; 4.0 |] in
  List.iter (Obs.Metric.histogram_observe h) [ 0.5; 1.5; 3.0; 8.0 ];
  Alcotest.(check (array int)) "bucket counts" [| 1; 1; 1; 1 |] h.Obs.Metric.counts;
  check_float "mean" 3.25 (Obs.Metric.mean h);
  (* q=0 / q=1 clamp to the observed extremes; interior quantiles
     interpolate linearly inside the containing bucket. *)
  check_float "q0 = vmin" 0.5 (Obs.Metric.quantile h 0.0);
  check_float "q1 = vmax" 8.0 (Obs.Metric.quantile h 1.0);
  check_float "q0.5 = second bucket top" 2.0 (Obs.Metric.quantile h 0.5);
  check_float "q0.25 = first bucket top" 1.0 (Obs.Metric.quantile h 0.25);
  Alcotest.(check bool) "empty histogram -> nan" true
    (Float.is_nan (Obs.Metric.quantile (Obs.Metric.histogram_create [| 1.0 |]) 0.5))

(* ---------------- JSONL sink ---------------- *)

let test_jsonl_sink () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let ctx, tick = manual_ctx [ Obs.Sink.jsonl path ] in
      Obs.Ctx.span ctx "a" (fun () ->
          tick 1.0;
          Obs.Ctx.span ctx ~attrs:[ ("k", Obs.Json.String "v") ] "b" (fun () -> tick 2.0));
      Obs.Ctx.count ctx "events";
      Obs.Ctx.observe ctx "lat" 0.5;
      Obs.Ctx.close ctx;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let records = List.rev_map Obs.Json.parse_exn !lines in
      let typ j = Option.bind (Obs.Json.member "type" j) Obs.Json.to_string_opt in
      let spans = List.filter (fun j -> typ j = Some "span") records in
      let metrics = List.filter (fun j -> typ j = Some "metric") records in
      Alcotest.(check int) "2 span lines" 2 (List.length spans);
      Alcotest.(check int) "2 metric lines" 2 (List.length metrics);
      let b = List.find (fun j -> Option.bind (Obs.Json.member "name" j) Obs.Json.to_string_opt = Some "b") spans in
      Alcotest.(check (option (float 1e-9))) "b dur serialized" (Some 2.0)
        (Option.bind (Obs.Json.member "dur" b) Obs.Json.to_float);
      Alcotest.(check bool) "b carries attrs" true (Obs.Json.member "attrs" b <> None))

(* ---------------- Disabled context ---------------- *)

let test_null_ctx_noop () =
  let ctx = Obs.Ctx.null in
  Alcotest.(check bool) "disabled" false (Obs.Ctx.enabled ctx);
  let sink, get_spans, _ = Obs.Sink.memory () in
  Obs.Ctx.add_sink ctx sink;
  let r = Obs.Ctx.span ctx "s" (fun () -> 41 + 1) in
  Alcotest.(check int) "body still runs" 42 r;
  Obs.Ctx.count ctx "c";
  Obs.Ctx.gauge ctx "g" 1.0;
  Obs.Ctx.observe ctx "h" 1.0;
  Obs.Ctx.span_attrs ctx [ ("k", Obs.Json.Null) ];
  Obs.Ctx.flush ctx;
  Alcotest.(check int) "no spans captured" 0 (List.length (get_spans ()));
  Alcotest.(check bool) "no metrics" true (Obs.Ctx.metric ctx "c" = None);
  Alcotest.(check bool) "snapshot empty" true (Obs.Ctx.metrics_json ctx = Obs.Json.List [])

(* ---------------- Resource telemetry ---------------- *)

let test_resource_delta () =
  let before = Obs.Resource.sample () in
  (* Allocate enough to move the minor-words counter for sure. *)
  let junk = ref [] in
  for i = 0 to 100_000 do
    junk := (i, float_of_int i) :: !junk
  done;
  ignore (List.length !junk);
  let after = Obs.Resource.sample () in
  let d = Obs.Resource.delta ~before ~after in
  Alcotest.(check bool) "minor words grew" true (d.Obs.Resource.d_minor_words > 0.0);
  Alcotest.(check bool) "elapsed >= 0" true (d.Obs.Resource.elapsed_s >= 0.0);
  Alcotest.(check bool) "gc counters monotonic" true
    (d.Obs.Resource.d_minor_collections >= 0
    && d.Obs.Resource.d_major_collections >= 0
    && d.Obs.Resource.d_compactions >= 0);
  Alcotest.(check bool) "peak rss positive" true (d.Obs.Resource.peak_rss_bytes > 0);
  Alcotest.(check bool) "peak >= current heap fallback sane" true
    (Obs.Resource.peak_rss_bytes () > 0 && Obs.Resource.rss_bytes () > 0);
  (* JSON roundtrip is exact (no string re-parse involved). *)
  Alcotest.(check bool) "delta json roundtrip" true
    (Obs.Resource.delta_of_json (Obs.Resource.delta_to_json d) = Some d);
  (* Gauges land in the registry. *)
  let ctx, _ = manual_ctx [] in
  Obs.Resource.update_gauges ctx;
  match Obs.Ctx.metric ctx "res.peak_rss_bytes" with
  | Some (Obs.Metric.Gauge r) -> Alcotest.(check bool) "gauge positive" true (!r > 0.0)
  | _ -> Alcotest.fail "res.peak_rss_bytes gauge missing"

(* ---------------- Timeline exports ---------------- *)

(* outer [0,2.75]: 1.0s, then inner 0.25, inner 0.5, then 1.0s. *)
let sample_spans () =
  let sink, get_spans, _ = Obs.Sink.memory () in
  let ctx, tick = manual_ctx [ sink ] in
  Obs.Ctx.span ctx "outer" (fun () ->
      tick 1.0;
      Obs.Ctx.span ctx "inner" (fun () -> tick 0.25);
      Obs.Ctx.span ctx ~attrs:[ ("k", Obs.Json.Int 7) ] "inner" (fun () -> tick 0.5);
      tick 1.0);
  get_spans ()

let test_chrome_trace_wellformed () =
  let spans = sample_spans () in
  let doc =
    Obs.Timeline.to_chrome_trace ~process_name:"test"
      ~metrics:[ ("events", Obs.Metric.Counter (ref 3.0)) ]
      spans
  in
  (* Structural validation happens on the re-parsed document, proving the
     serialised form (what Perfetto sees) is what we checked. *)
  let doc = Obs.Json.parse_exn (Obs.Json.to_string doc) in
  let events =
    match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents list"
  in
  (* meta + 3 spans + 1 counter *)
  Alcotest.(check int) "event count" 5 (List.length events);
  let ph j = Option.bind (Obs.Json.member "ph" j) Obs.Json.to_string_opt in
  let fget k j = Option.bind (Obs.Json.member k j) Obs.Json.to_float in
  (match events with
  | meta :: _ ->
      Alcotest.(check (option string)) "meta first" (Some "M") (ph meta);
      Alcotest.(check (option string)) "process name" (Some "test")
        (Option.bind (Obs.Json.member "args" meta) (fun a ->
             Option.bind (Obs.Json.member "name" a) Obs.Json.to_string_opt))
  | [] -> Alcotest.fail "empty events");
  let xs = List.filter (fun j -> ph j = Some "X") events in
  Alcotest.(check int) "3 complete events" 3 (List.length xs);
  List.iter
    (fun j ->
      Alcotest.(check bool) "ts present" true (fget "ts" j <> None);
      Alcotest.(check bool) "dur present" true (fget "dur" j <> None);
      Alcotest.(check bool) "pid/tid present" true
        (Obs.Json.member "pid" j <> None && Obs.Json.member "tid" j <> None))
    xs;
  (* The second inner span started at t=1.25 and ran 0.5 s -> µs. *)
  let inner2 =
    List.find (fun j -> fget "ts" j = Some 1.25e6) xs
  in
  Alcotest.(check (option (float 1e-3))) "dur in µs" (Some 0.5e6) (fget "dur" inner2);
  Alcotest.(check bool) "attrs become args" true
    (Option.bind (Obs.Json.member "args" inner2) (Obs.Json.member "k") <> None);
  let cs = List.filter (fun j -> ph j = Some "C") events in
  (match cs with
  | [ c ] ->
      Alcotest.(check (option (float 1e-3))) "counter at trace end" (Some 2.75e6) (fget "ts" c);
      Alcotest.(check (option (float 1e-9))) "counter value" (Some 3.0)
        (Option.bind (Obs.Json.member "args" c) (fun a -> fget "value" a))
  | l -> Alcotest.failf "expected 1 counter event, got %d" (List.length l))

let test_folded_stacks () =
  let spans = sample_spans () in
  (match Obs.Timeline.to_folded spans with
  | [ ("outer", outer_self); ("outer;inner", inner_self) ] ->
      (* outer dur 2.75 minus 0.75 of children; both inners collapse. *)
      check_float "outer self" 2.0 outer_self;
      check_float "inner stack aggregates" 0.75 inner_self
  | l ->
      Alcotest.failf "unexpected folded stacks: %s"
        (String.concat ", " (List.map fst l)));
  Alcotest.(check string) "flamegraph.pl dialect" "outer 2000000\nouter;inner 750000\n"
    (Obs.Timeline.folded_to_string (Obs.Timeline.to_folded spans))

(* ---------------- Heartbeat ---------------- *)

let test_heartbeat_cadence () =
  let ctx, tick_clock = manual_ctx [] in
  let records = ref [] in
  let hb = Obs.Heartbeat.create ~every_iters:10 ~emit:(fun r -> records := r :: !records) ctx in
  Obs.Ctx.count ctx "guard.nan_detected";
  Obs.Ctx.count ctx "guard.nan_detected";
  Obs.Heartbeat.note_timing hb ~tns:(-100.0) ~wns:(-10.0);
  for iter = 1 to 35 do
    tick_clock 0.1;
    if iter = 20 then Obs.Heartbeat.note_timing hb ~tns:(-40.0) ~wns:(-4.0);
    Obs.Heartbeat.tick hb ~iter ~overflow:(1.0 /. float_of_int iter)
  done;
  (* First tick emits, then every 10 iterations: 1, 11, 21, 31. *)
  let rs = List.rev !records in
  Alcotest.(check (list int)) "emission iters" [ 1; 11; 21; 31 ]
    (List.map (fun (r : Obs.Heartbeat.record) -> r.iter) rs);
  Alcotest.(check (list int)) "seq numbering" [ 0; 1; 2; 3 ]
    (List.map (fun (r : Obs.Heartbeat.record) -> r.seq) rs);
  (match rs with
  | [ r1; r11; r21; _ ] ->
      check_float "clock time recorded" 0.1 r1.t;
      check_float "guard counter snapshot" 2.0 r1.guard_nan;
      check_float "first trend is 0" 0.0 r1.tns_trend;
      check_float "unchanged trend is 0" 0.0 r11.tns_trend;
      check_float "tns trend" 60.0 r21.tns_trend;
      check_float "wns trend" 6.0 r21.wns_trend;
      check_float "latest tns" (-40.0) r21.tns
  | _ -> Alcotest.fail "expected 4 records");
  (* Time trigger, deterministic under the injected clock. *)
  let records2 = ref [] in
  let hb2 =
    Obs.Heartbeat.create ~every_iters:max_int ~every_seconds:1.0
      ~emit:(fun r -> records2 := r :: !records2)
      ctx
  in
  for iter = 1 to 10 do
    tick_clock 0.3;
    Obs.Heartbeat.tick hb2 ~iter ~overflow:0.5
  done;
  Alcotest.(check (list int)) "time-triggered iters" [ 1; 5; 9 ]
    (List.map (fun (r : Obs.Heartbeat.record) -> r.iter) (List.rev !records2));
  Alcotest.check_raises "bad cadence rejected"
    (Invalid_argument "Heartbeat.create: every_iters must be positive") (fun () ->
      ignore (Obs.Heartbeat.create ~every_iters:0 ctx))

(* [reset] must return a heartbeat to its just-created state so a
   long-lived daemon's next request starts a fresh epoch: sequence
   numbers restart, the first tick emits again regardless of the old
   cadence origin, and the producer latches forget the previous job's
   tns/wns (no trend computed against another request's timing). The
   configuration and subscribers survive. *)
let test_heartbeat_reset () =
  let ctx, tick_clock = manual_ctx [] in
  let records = ref [] in
  let hb = Obs.Heartbeat.create ~every_iters:10 ~emit:(fun r -> records := r :: !records) ctx in
  let subscribed = ref 0 in
  Obs.Heartbeat.on_record hb (fun _ -> incr subscribed);
  Obs.Heartbeat.note_timing hb ~tns:(-100.0) ~wns:(-10.0);
  for iter = 1 to 15 do
    tick_clock 0.1;
    Obs.Heartbeat.tick hb ~iter ~overflow:0.5
  done;
  Alcotest.(check int) "records before reset" 2 (List.length !records);
  Obs.Heartbeat.reset hb;
  records := [];
  for iter = 1 to 15 do
    tick_clock 0.1;
    Obs.Heartbeat.tick hb ~iter ~overflow:0.5
  done;
  let rs = List.rev !records in
  Alcotest.(check (list int)) "cadence restarts: first tick emits again" [ 1; 11 ]
    (List.map (fun (r : Obs.Heartbeat.record) -> r.iter) rs);
  Alcotest.(check (list int)) "seq restarts at 0" [ 0; 1 ]
    (List.map (fun (r : Obs.Heartbeat.record) -> r.seq) rs);
  (match rs with
  | first :: _ ->
      Alcotest.(check bool) "timing latch cleared" true (Float.is_nan first.tns);
      Alcotest.(check bool) "hpwl latch cleared" true (Float.is_nan first.hpwl);
      Alcotest.(check (float 0.0)) "no trend against the previous job" 0.0 first.tns_trend;
      Alcotest.(check bool) "extraction latch cleared" true (first.extraction = None)
  | [] -> Alcotest.fail "no records after reset");
  Alcotest.(check int) "subscribers survive the reset" 4 !subscribed

let test_heartbeat_json () =
  let ctx, _ = manual_ctx [] in
  let out = ref [] in
  let hb = Obs.Heartbeat.create ~emit:(fun r -> out := r :: !out) ctx in
  Obs.Heartbeat.note_hpwl hb 1234.5;
  Obs.Heartbeat.note_extraction hb ~failing:3 ~paths:30 ~pairs:90 ~sta_s:0.2 ~extract_s:0.05;
  Obs.Heartbeat.force hb ~iter:42 ~overflow:0.25;
  let r = List.hd !out in
  let j = Obs.Json.parse_exn (Obs.Json.to_string (Obs.Heartbeat.to_json r)) in
  let str k = Option.bind (Obs.Json.member k j) Obs.Json.to_string_opt in
  let num k = Option.bind (Obs.Json.member k j) Obs.Json.to_float in
  Alcotest.(check (option string)) "type tag" (Some "heartbeat") (str "type");
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " present") true (Obs.Json.member k j <> None))
    [ "overflow"; "hpwl"; "tns"; "wns"; "tns_trend"; "wns_trend"; "guard_nan"; "guard_rollbacks" ];
  Alcotest.(check (option (float 1e-9))) "overflow" (Some 0.25) (num "overflow");
  Alcotest.(check (option (float 1e-9))) "hpwl" (Some 1234.5) (num "hpwl");
  (* tns was never noted: nan serialises as null per Json convention. *)
  Alcotest.(check bool) "unnoted tns is null" true (Obs.Json.member "tns" j = Some Obs.Json.Null);
  match Obs.Json.member "extraction" j with
  | Some ext ->
      Alcotest.(check (option (float 1e-9))) "extraction failing" (Some 3.0)
        (Option.bind (Obs.Json.member "failing" ext) Obs.Json.to_float)
  | None -> Alcotest.fail "extraction object missing"

(* ---------------- Bench regression sentinel ---------------- *)

let bench_entry ?(failed = false) ~label ~runtime ~rss ~hpwl ~self () =
  Obs.Json.Obj
    ([
       ("label", Obs.Json.String label);
       ("design", Obs.Json.String "sbX");
       ("runtime", Obs.Json.Float runtime);
       ("resource", Obs.Json.Obj [ ("peak_rss_bytes", Obs.Json.Float rss) ]);
       ("metrics", Obs.Json.Obj [ ("hpwl", Obs.Json.Float hpwl) ]);
       ( "breakdown_self",
         Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Float v)) self) );
     ]
    @
    if failed then [ ("error", Obs.Json.Obj [ ("kind", Obs.Json.String "diverged") ]) ]
    else [ ("error", Obs.Json.Null) ])

let bench_doc entries =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "bench-results-v1");
      ("results", Obs.Json.List entries);
    ]

let mb = 1024.0 *. 1024.0

let test_benchcmp () =
  let th = Obs.Benchcmp.default_thresholds in
  let base =
    bench_doc
      [ bench_entry ~label:"ours" ~runtime:1.0 ~rss:(64.0 *. mb) ~hpwl:1000.0
          ~self:[ ("sta", 0.2); ("tiny", 0.001) ] () ]
  in
  (* Self-comparison passes. *)
  (match Obs.Benchcmp.compare_docs th ~baseline:base ~current:base with
  | Ok [] -> ()
  | Ok vs -> Alcotest.failf "self-compare produced %d violations" (List.length vs)
  | Error e -> Alcotest.fail e);
  (* A regressed current run trips runtime, RSS, self:sta and hpwl — but
     not the sub-floor "tiny" phase even at 100x. *)
  let regressed =
    bench_doc
      [ bench_entry ~label:"ours" ~runtime:6.0 ~rss:(512.0 *. mb) ~hpwl:2000.0
          ~self:[ ("sta", 2.0); ("tiny", 0.1) ] () ]
  in
  (match Obs.Benchcmp.compare_docs th ~baseline:base ~current:regressed with
  | Ok vs ->
      let whats = List.map (fun (v : Obs.Benchcmp.violation) -> v.what) vs in
      Alcotest.(check (list string)) "violations (sorted)"
        [ "hpwl"; "peak_rss"; "runtime"; "self:sta" ]
        whats
  | Error e -> Alcotest.fail e);
  (* A baseline entry absent (or failed) in the current run is a
     violation; a failed baseline entry is skipped. *)
  let base2 =
    bench_doc
      [
        bench_entry ~label:"ours" ~runtime:1.0 ~rss:(64.0 *. mb) ~hpwl:1000.0 ~self:[] ();
        bench_entry ~label:"other" ~runtime:1.0 ~rss:(64.0 *. mb) ~hpwl:1000.0 ~self:[] ();
        bench_entry ~failed:true ~label:"broken" ~runtime:99.0 ~rss:(9e9) ~hpwl:9e9 ~self:[] ();
      ]
  in
  let cur2 =
    bench_doc
      [ bench_entry ~label:"ours" ~runtime:1.0 ~rss:(64.0 *. mb) ~hpwl:1000.0 ~self:[] () ]
  in
  (match Obs.Benchcmp.compare_docs th ~baseline:base2 ~current:cur2 with
  | Ok [ v ] ->
      Alcotest.(check string) "missing entry flagged" "missing" v.Obs.Benchcmp.what;
      Alcotest.(check string) "which entry" "sbX/other" v.Obs.Benchcmp.key
  | Ok vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)
  | Error e -> Alcotest.fail e);
  (* Schema guard. *)
  match
    Obs.Benchcmp.compare_docs th
      ~baseline:(Obs.Json.Obj [ ("schema", Obs.Json.String "nope") ])
      ~current:base
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted"

(* ---------------- Observation-only flows ---------------- *)

let flow_cfg = { Tdp.Config.default with timing_start = 120; extra_iters = 180 }

let test_flow_identical_with_tracing () =
  (* Same design, same seed, tracing off vs on: placements must be
     bit-identical — observability is observation-only. *)
  let d_off = Helpers.small_calibrated () in
  let d_on = Helpers.small_calibrated () in
  let r_off = Tdp.Flow.run ~obs:Obs.Ctx.null (Tdp.Flow.Efficient flow_cfg) d_off in
  let sink, get_spans, _ = Obs.Sink.memory () in
  let ctx = Obs.Ctx.create ~sinks:[ sink ] () in
  let r_on = Tdp.Flow.run ~obs:ctx (Tdp.Flow.Efficient flow_cfg) d_on in
  let farr_to_array (a : Netlist.Design.farr) =
    Array.init (Bigarray.Array1.dim a) (fun i -> a.{i})
  in
  Alcotest.(check (array (float 0.0))) "x identical"
    (farr_to_array d_off.Netlist.Design.x)
    (farr_to_array d_on.Netlist.Design.x);
  Alcotest.(check (array (float 0.0))) "y identical"
    (farr_to_array d_off.Netlist.Design.y)
    (farr_to_array d_on.Netlist.Design.y);
  check_float "tns identical" r_off.metrics.tns r_on.metrics.tns;
  check_float "hpwl identical" r_off.metrics.hpwl r_on.metrics.hpwl;
  (* The traced run actually observed the pipeline... *)
  let names = List.map (fun s -> s.Obs.Span.name) (get_spans ()) in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " span present") true (List.mem n names))
    [ "flow"; "gp_iter"; "sta"; "extraction"; "sta+extraction"; "legalize" ];
  (* ...and the null run still reports a breakdown through its private
     context, while an explicit null context yields none. *)
  Alcotest.(check bool) "null ctx -> empty breakdown" true (r_off.breakdown = []);
  Alcotest.(check bool) "traced run has breakdown" true (List.mem_assoc "sta" r_on.breakdown)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json floats + errors" `Quick test_json_floats;
    Alcotest.test_case "span nesting + durations" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "span attrs" `Quick test_span_attrs;
    Alcotest.test_case "aggregator self time" `Quick test_agg_self_time;
    Alcotest.test_case "counters + gauges" `Quick test_counter_gauge;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
    Alcotest.test_case "null context no-op" `Quick test_null_ctx_noop;
    Alcotest.test_case "resource delta accounting" `Quick test_resource_delta;
    Alcotest.test_case "chrome trace well-formed" `Quick test_chrome_trace_wellformed;
    Alcotest.test_case "folded stacks" `Quick test_folded_stacks;
    Alcotest.test_case "heartbeat cadence determinism" `Quick test_heartbeat_cadence;
    Alcotest.test_case "heartbeat reset restores a fresh epoch" `Quick test_heartbeat_reset;
    Alcotest.test_case "heartbeat json record" `Quick test_heartbeat_json;
    Alcotest.test_case "bench regression sentinel" `Quick test_benchcmp;
    Alcotest.test_case "tracing leaves placement identical" `Slow test_flow_identical_with_tracing;
  ]
