(* lib/obs: spans, metrics, sinks, JSON, and the observation-only
   guarantee (tracing must not change placement results). *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Json ---------------- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("i", Obs.Json.Int 42);
        ("neg", Obs.Json.Int (-7));
        ("s", Obs.Json.String "a \"quoted\"\nline\t\\slash");
        ("b", Obs.Json.Bool true);
        ("nil", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Bool false; Obs.Json.String "" ]);
        ("o", Obs.Json.Obj [ ("nested", Obs.Json.List []) ]);
      ]
  in
  let v' = Obs.Json.parse_exn (Obs.Json.to_string v) in
  Alcotest.(check bool) "roundtrip equal" true (v = v')

let test_json_floats () =
  let j = Obs.Json.parse_exn "{\"a\": 1.5, \"b\": -2.25e2, \"c\": 3}" in
  let get k = Option.bind (Obs.Json.member k j) Obs.Json.to_float in
  Alcotest.(check (option (float 1e-9))) "a" (Some 1.5) (get "a");
  Alcotest.(check (option (float 1e-9))) "b" (Some (-225.0)) (get "b");
  Alcotest.(check (option (float 1e-9))) "c (int coerces)" (Some 3.0) (get "c");
  (* Non-finite floats must emit as null, keeping every line parseable. *)
  Alcotest.(check string) "nan -> null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check bool)
    "trailing garbage rejected" true
    (match Obs.Json.parse "{} x" with Error _ -> true | Ok _ -> false)

(* ---------------- Spans ---------------- *)

(* A hand-cranked clock makes span durations exact. *)
let manual_ctx sinks =
  let now = ref 0.0 in
  let ctx = Obs.Ctx.create ~clock:(fun () -> !now) ~sinks () in
  (ctx, fun dt -> now := !now +. dt)

let test_span_nesting () =
  let sink, get_spans, _ = Obs.Sink.memory () in
  let ctx, tick = manual_ctx [ sink ] in
  Obs.Ctx.span ctx "outer" (fun () ->
      tick 1.0;
      Obs.Ctx.span ctx "inner" (fun () -> tick 0.25);
      Obs.Ctx.span ctx "inner" (fun () -> tick 0.5);
      tick 1.0);
  match get_spans () with
  | [ i1; i2; o ] ->
      (* Children complete (and reach the sink) before their parent. *)
      Alcotest.(check string) "first child" "inner" i1.Obs.Span.name;
      Alcotest.(check string) "second child" "inner" i2.Obs.Span.name;
      Alcotest.(check string) "parent last" "outer" o.Obs.Span.name;
      Alcotest.(check int) "i1 parented" o.Obs.Span.id i1.Obs.Span.parent;
      Alcotest.(check int) "i2 parented" o.Obs.Span.id i2.Obs.Span.parent;
      Alcotest.(check int) "outer is root" (-1) o.Obs.Span.parent;
      check_float "i1 dur" 0.25 i1.Obs.Span.dur;
      check_float "i2 dur" 0.5 i2.Obs.Span.dur;
      check_float "outer dur" 2.75 o.Obs.Span.dur;
      check_float "i1 start" 1.0 i1.Obs.Span.start
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_span_exception_safety () =
  let sink, get_spans, _ = Obs.Sink.memory () in
  let ctx, tick = manual_ctx [ sink ] in
  (try
     Obs.Ctx.span ctx "boom" (fun () ->
         tick 0.125;
         failwith "expected")
   with Failure _ -> ());
  (match get_spans () with
  | [ s ] ->
      Alcotest.(check string) "span delivered" "boom" s.Obs.Span.name;
      check_float "dur recorded" 0.125 s.Obs.Span.dur
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans));
  (* The stack unwound: the next span is a root again. *)
  Obs.Ctx.span ctx "after" (fun () -> ());
  match get_spans () with
  | [ _; after ] -> Alcotest.(check int) "root after exception" (-1) after.Obs.Span.parent
  | _ -> Alcotest.fail "expected 2 spans"

let test_span_attrs () =
  let sink, get_spans, _ = Obs.Sink.memory () in
  let ctx, _ = manual_ctx [ sink ] in
  Obs.Ctx.span ctx ~attrs:[ ("k", Obs.Json.Int 1) ] "s" (fun () ->
      Obs.Ctx.span_attrs ctx [ ("hpwl", Obs.Json.Float 2.5) ]);
  match get_spans () with
  | [ s ] ->
      Alcotest.(check int) "two attrs" 2 (List.length s.Obs.Span.attrs);
      Alcotest.(check bool) "late attr present" true (List.mem_assoc "hpwl" s.Obs.Span.attrs)
  | _ -> Alcotest.fail "expected 1 span"

(* ---------------- Aggregator (self time) ---------------- *)

let test_agg_self_time () =
  let agg = Obs.Agg.create () in
  let ctx, tick = manual_ctx [ Obs.Agg.sink agg ] in
  Obs.Ctx.span ctx "outer" (fun () ->
      tick 1.0;
      Obs.Ctx.span ctx "inner" (fun () -> tick 3.0);
      tick 0.5);
  let outer = Option.get (Obs.Agg.get agg "outer") in
  let inner = Option.get (Obs.Agg.get agg "inner") in
  check_float "outer total" 4.5 outer.Obs.Agg.total;
  check_float "outer self excludes child" 1.5 outer.Obs.Agg.self;
  check_float "inner total" 3.0 inner.Obs.Agg.total;
  check_float "inner self" 3.0 inner.Obs.Agg.self;
  match Obs.Agg.to_breakdown agg with
  | [ (n1, t1); (n2, t2) ] ->
      Alcotest.(check string) "largest first" "outer" n1;
      Alcotest.(check string) "then inner" "inner" n2;
      check_float "t1" 4.5 t1;
      check_float "t2" 3.0 t2
  | _ -> Alcotest.fail "expected 2 breakdown rows"

(* ---------------- Metrics ---------------- *)

let test_counter_gauge () =
  let ctx, _ = manual_ctx [] in
  Obs.Ctx.count ctx "c";
  Obs.Ctx.count ctx ~by:2.5 "c";
  Obs.Ctx.gauge ctx "g" 7.0;
  Obs.Ctx.gauge ctx "g" 9.0;
  (match Obs.Ctx.metric ctx "c" with
  | Some (Obs.Metric.Counter r) -> check_float "counter sums" 3.5 !r
  | _ -> Alcotest.fail "counter missing");
  (match Obs.Ctx.metric ctx "g" with
  | Some (Obs.Metric.Gauge r) -> check_float "gauge keeps last" 9.0 !r
  | _ -> Alcotest.fail "gauge missing");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metric \"c\" registered with another kind") (fun () ->
      Obs.Ctx.gauge ctx "c" 1.0)

let test_histogram_quantiles () =
  let h = Obs.Metric.histogram_create [| 1.0; 2.0; 4.0 |] in
  List.iter (Obs.Metric.histogram_observe h) [ 0.5; 1.5; 3.0; 8.0 ];
  Alcotest.(check (array int)) "bucket counts" [| 1; 1; 1; 1 |] h.Obs.Metric.counts;
  check_float "mean" 3.25 (Obs.Metric.mean h);
  (* q=0 / q=1 clamp to the observed extremes; interior quantiles
     interpolate linearly inside the containing bucket. *)
  check_float "q0 = vmin" 0.5 (Obs.Metric.quantile h 0.0);
  check_float "q1 = vmax" 8.0 (Obs.Metric.quantile h 1.0);
  check_float "q0.5 = second bucket top" 2.0 (Obs.Metric.quantile h 0.5);
  check_float "q0.25 = first bucket top" 1.0 (Obs.Metric.quantile h 0.25);
  Alcotest.(check bool) "empty histogram -> nan" true
    (Float.is_nan (Obs.Metric.quantile (Obs.Metric.histogram_create [| 1.0 |]) 0.5))

(* ---------------- JSONL sink ---------------- *)

let test_jsonl_sink () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let ctx, tick = manual_ctx [ Obs.Sink.jsonl path ] in
      Obs.Ctx.span ctx "a" (fun () ->
          tick 1.0;
          Obs.Ctx.span ctx ~attrs:[ ("k", Obs.Json.String "v") ] "b" (fun () -> tick 2.0));
      Obs.Ctx.count ctx "events";
      Obs.Ctx.observe ctx "lat" 0.5;
      Obs.Ctx.close ctx;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let records = List.rev_map Obs.Json.parse_exn !lines in
      let typ j = Option.bind (Obs.Json.member "type" j) Obs.Json.to_string_opt in
      let spans = List.filter (fun j -> typ j = Some "span") records in
      let metrics = List.filter (fun j -> typ j = Some "metric") records in
      Alcotest.(check int) "2 span lines" 2 (List.length spans);
      Alcotest.(check int) "2 metric lines" 2 (List.length metrics);
      let b = List.find (fun j -> Option.bind (Obs.Json.member "name" j) Obs.Json.to_string_opt = Some "b") spans in
      Alcotest.(check (option (float 1e-9))) "b dur serialized" (Some 2.0)
        (Option.bind (Obs.Json.member "dur" b) Obs.Json.to_float);
      Alcotest.(check bool) "b carries attrs" true (Obs.Json.member "attrs" b <> None))

(* ---------------- Disabled context ---------------- *)

let test_null_ctx_noop () =
  let ctx = Obs.Ctx.null in
  Alcotest.(check bool) "disabled" false (Obs.Ctx.enabled ctx);
  let sink, get_spans, _ = Obs.Sink.memory () in
  Obs.Ctx.add_sink ctx sink;
  let r = Obs.Ctx.span ctx "s" (fun () -> 41 + 1) in
  Alcotest.(check int) "body still runs" 42 r;
  Obs.Ctx.count ctx "c";
  Obs.Ctx.gauge ctx "g" 1.0;
  Obs.Ctx.observe ctx "h" 1.0;
  Obs.Ctx.span_attrs ctx [ ("k", Obs.Json.Null) ];
  Obs.Ctx.flush ctx;
  Alcotest.(check int) "no spans captured" 0 (List.length (get_spans ()));
  Alcotest.(check bool) "no metrics" true (Obs.Ctx.metric ctx "c" = None);
  Alcotest.(check bool) "snapshot empty" true (Obs.Ctx.metrics_json ctx = Obs.Json.List [])

(* ---------------- Observation-only flows ---------------- *)

let flow_cfg = { Tdp.Config.default with timing_start = 120; extra_iters = 180 }

let test_flow_identical_with_tracing () =
  (* Same design, same seed, tracing off vs on: placements must be
     bit-identical — observability is observation-only. *)
  let d_off = Helpers.small_calibrated () in
  let d_on = Helpers.small_calibrated () in
  let r_off = Tdp.Flow.run ~obs:Obs.Ctx.null (Tdp.Flow.Efficient flow_cfg) d_off in
  let sink, get_spans, _ = Obs.Sink.memory () in
  let ctx = Obs.Ctx.create ~sinks:[ sink ] () in
  let r_on = Tdp.Flow.run ~obs:ctx (Tdp.Flow.Efficient flow_cfg) d_on in
  Alcotest.(check (array (float 0.0))) "x identical" d_off.Netlist.Design.x d_on.Netlist.Design.x;
  Alcotest.(check (array (float 0.0))) "y identical" d_off.Netlist.Design.y d_on.Netlist.Design.y;
  check_float "tns identical" r_off.metrics.tns r_on.metrics.tns;
  check_float "hpwl identical" r_off.metrics.hpwl r_on.metrics.hpwl;
  (* The traced run actually observed the pipeline... *)
  let names = List.map (fun s -> s.Obs.Span.name) (get_spans ()) in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " span present") true (List.mem n names))
    [ "flow"; "gp_iter"; "sta"; "extraction"; "sta+extraction"; "legalize" ];
  (* ...and the null run still reports a breakdown through its private
     context, while an explicit null context yields none. *)
  Alcotest.(check bool) "null ctx -> empty breakdown" true (r_off.breakdown = []);
  Alcotest.(check bool) "traced run has breakdown" true (List.mem_assoc "sta" r_on.breakdown)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json floats + errors" `Quick test_json_floats;
    Alcotest.test_case "span nesting + durations" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "span attrs" `Quick test_span_attrs;
    Alcotest.test_case "aggregator self time" `Quick test_agg_self_time;
    Alcotest.test_case "counters + gauges" `Quick test_counter_gauge;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
    Alcotest.test_case "null context no-op" `Quick test_null_ctx_noop;
    Alcotest.test_case "tracing leaves placement identical" `Slow test_flow_identical_with_tracing;
  ]
