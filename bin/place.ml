(** Run a placement flow on a design and report contest metrics.

    Examples:
      place -d sb18 --flow efficient
      place --design-file my.design --flow dp4 --out placed.design
      place --bookshelf design.aux --write-pl placed.pl
      place --lef tech.lef --def design.def --wire-rc 0.06,0.5 --write-def placed.def
      place -d sb4 --flow efficient --loss linear --paths-per-endpoint 10
      place -d sb4 --flow efficient --trace-out run.jsonl --report-json report.json
      place -d sb4 --heartbeat-out hb.jsonl --heartbeat-every 10

    Reporting goes through Obs.Log (level from OBS_LEVEL or --log-level);
    --trace-out streams the full span tree plus the final metric snapshot
    as JSONL (summarise with trace_report; export Chrome-trace/flamegraph
    views with trace_report --chrome-trace / --flamegraph), --report-json
    writes the structured result (with an "error" object instead of
    metrics when the run fails), --heartbeat-out streams periodic
    progress records (overflow, HPWL, TNS/WNS trend, guard counters,
    extraction stats) as JSONL while the placement runs.

    Exit codes: 0 success, 2 config error, 3 invalid design, 4 diverged
    (rollback budget exhausted), 5 legalization infeasible, 6 parse
    error in a foreign input file (the --report-json "error" object
    carries kind "parse_error" with file/line/detail fields); 1 is
    reserved for unexpected exceptions, 124/125 for cmdliner usage
    errors. *)

open Cmdliner

let parse_loss = function
  | "quadratic" -> Tdp.Config.Quadratic
  | "linear" -> Tdp.Config.Linear
  | "hpwl" -> Tdp.Config.Hpwl_like
  | s -> Util.Errors.config_error ~what:"loss" ("unknown loss " ^ s ^ " (known: quadratic linear hpwl)")

let make_method flow loss k =
  let cfg = Tdp.Config.with_loss (parse_loss loss) Tdp.Config.default in
  let cfg = { cfg with extraction = Tdp.Config.Endpoint_based { k } } in
  match flow with
  | "vanilla" -> Tdp.Flow.Vanilla
  | "dp4" -> Tdp.Flow.Dp4
  | "diff" -> Tdp.Flow.Diff_tdp
  | "dist" -> Tdp.Flow.Dist_tdp
  | "efficient" -> Tdp.Flow.Efficient cfg
  | "noextract" -> Tdp.Flow.Dp4_in_ours
  | s ->
      Util.Errors.config_error ~what:"flow"
        ("unknown flow " ^ s ^ " (known: vanilla dp4 diff dist efficient noextract)")

(* Install fault injectors on the pipeline's test-only hooks. Spec syntax
   (also accepted via the FAULT_INJECT environment variable):
     site=kind@start[+count][,site=kind@start[+count]...]
   with site in {wl_grad, elmore} and kind in {nan, inf, -inf, huge}. *)
let install_faults spec_str =
  match Util.Fault.parse spec_str with
  | Error msg -> Util.Errors.config_error ~what:"fault-inject" msg
  | Ok clauses ->
      List.iter
        (fun (site, spec) ->
          let inj = Util.Fault.injector spec in
          (match site with
          | "wl_grad" -> Gp.Wirelength.grad_fault := Some inj
          | "elmore" -> Rctree.Elmore.fault := Some inj
          | s ->
              Util.Errors.config_error ~what:"fault-inject"
                ("unknown site " ^ s ^ " (known: wl_grad elmore)"));
          Obs.Log.warn "fault injection active: %s=%s" site (Util.Fault.spec_to_string spec))
        clauses

let error_to_json e =
  Obs.Json.Obj
    (("kind", Obs.Json.String (Util.Errors.kind e))
    :: ("message", Obs.Json.String (Util.Errors.message e))
    :: List.map (fun (k, v) -> (k, Obs.Json.String v)) (Util.Errors.fields e))

(* On failure the report is still written (when requested): an [error]
   object plus whatever metrics had accumulated — so a harness can see
   e.g. guard.nan_detected / guard.rollbacks counts of a diverged run. *)
let write_error_report path ctx e =
  let report =
    Obs.Json.Obj
      [ ("error", error_to_json e); ("metrics_registry", Obs.Ctx.metrics_json ctx) ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string report);
  output_char oc '\n';
  close_out oc;
  Obs.Log.info "wrote structured report to %s" path

let run design file bookshelf lef def wire_rc clock scale flow loss k domains fault_inject
    out write_def write_pl curve trace_out report_json heartbeat_out heartbeat_every
    log_level =
  (match log_level with Some l -> Obs.Log.set_level l | None -> ());
  Util.Parallel.set_num_domains domains;
  Obs.Log.info "parallel: %d domain(s)" !Util.Parallel.num_domains;
  let sinks = match trace_out with Some path -> [ Obs.Sink.jsonl path ] | None -> [] in
  let ctx = Obs.Ctx.create ~sinks () in
  Obs.Ctx.set_default ctx;
  Obs.Resource.install_parallel ctx;
  let heartbeat, heartbeat_close =
    match heartbeat_out with
    | Some path ->
        let emit, close = Obs.Heartbeat.jsonl_emitter path in
        (Some (Obs.Heartbeat.create ~every_iters:heartbeat_every ~emit ctx), close)
    | None -> (None, fun () -> ())
  in
  let on_error e =
    Obs.Log.error "%s" (Util.Errors.message e);
    (match report_json with Some path -> write_error_report path ctx e | None -> ());
    heartbeat_close ();
    Obs.Ctx.close ctx;
    exit (Util.Errors.exit_code e)
  in
  try
  (match fault_inject with
  | Some s -> install_faults s
  | None -> (
      match Sys.getenv_opt "FAULT_INJECT" with
      | Some s when String.trim s <> "" -> install_faults s
      | _ -> ()));
  let wire_rc =
    match wire_rc with
    | None -> None
    | Some s -> (
        match Rctree.Wire_rc.parse s with
        | Ok rc -> Some rc
        | Error msg -> Util.Errors.config_error ~what:"wire-rc" msg)
  in
  (* One foreign-file source at a time; extension dispatch via Formats.Auto
     (--bookshelf and --def are explicit spellings of the same path). *)
  (* A malformed file is its own failure kind (exit 6, kind
     "parse_error" in the report), not an [Invalid_design]: the bytes
     never became a design, and harnesses distinguish "fix the file
     syntax" from "fix the netlist". *)
  let load_foreign path =
    try Formats.Auto.load ?lef ?wire_rc ?clock path
    with Netlist.Io.Parse_error (line, msg) ->
      Util.Errors.parse_failed ~file:path ~line msg
  in
  let d =
    match (bookshelf, def, file) with
    | Some path, None, None | None, Some path, None | None, None, Some path ->
        load_foreign path
    | None, None, None ->
        if lef <> None then
          Util.Errors.config_error ~what:"lef" "--lef needs --def";
        let d = Workloads.Suite.load ~scale design in
        (match wire_rc with
        | Some rc ->
            d.Netlist.Design.r_per_unit <- rc.Rctree.Wire_rc.r_per_unit;
            d.Netlist.Design.c_per_unit <- rc.Rctree.Wire_rc.c_per_unit
        | None -> ());
        (match clock with Some c -> d.Netlist.Design.clock_period <- c | None -> ());
        d
    | _ ->
        Util.Errors.config_error ~what:"design"
          "pick one of --bookshelf, --def and --design-file"
  in
  Obs.Log.info "design %s: %d cells, %d nets, clock %.1f ps" d.name
    (Netlist.Design.num_cells d) (Netlist.Design.num_nets d) d.clock_period;
  let meth = make_method flow loss k in
  Obs.Log.info "flow: %s" (Tdp.Flow.method_name meth);
  let r = Tdp.Flow.run ~obs:ctx ?heartbeat meth d in
  Obs.Log.info "global placement  : %s" (Format.asprintf "%a" Evalkit.Metrics.pp r.metrics_gp);
  Obs.Log.info "after legalization: %s" (Format.asprintf "%a" Evalkit.Metrics.pp r.metrics);
  Obs.Log.info "runtime: %.2f s" r.runtime;
  Obs.Log.info "breakdown:";
  List.iter (fun (n, s) -> Obs.Log.info "  %-16s %8.3f s" n s) r.breakdown;
  Obs.Log.info "resource: peak RSS %.1f MB, %.1fM minor words, %d major GCs"
    (float_of_int r.resource.Obs.Resource.peak_rss_bytes /. 1048576.0)
    (r.resource.Obs.Resource.d_minor_words /. 1e6)
    r.resource.Obs.Resource.d_major_collections;
  if curve then begin
    Obs.Log.info "timing-phase curve (iter hpwl overflow tns wns):";
    List.iter
      (fun (c : Tdp.Flow.curve_point) ->
        Obs.Log.info "  %4d %12.1f %6.3f %12.1f %10.1f" c.iter c.hpwl c.overflow c.tns c.wns)
      r.curve
  end;
  (match report_json with
  | Some path ->
      let report =
        match Tdp.Flow.result_to_json r with
        | Obs.Json.Obj fields ->
            Obs.Json.Obj
              (fields
              @ [ ("error", Obs.Json.Null); ("metrics_registry", Obs.Ctx.metrics_json ctx) ])
        | j -> j
      in
      let oc = open_out path in
      output_string oc (Obs.Json.to_string report);
      output_char oc '\n';
      close_out oc;
      Obs.Log.info "wrote structured report to %s" path
  | None -> ());
  heartbeat_close ();
  (match heartbeat_out with
  | Some path -> Obs.Log.info "wrote heartbeats to %s" path
  | None -> ());
  (* Flushes the metric snapshot into the trace and closes the file. *)
  Obs.Ctx.close ctx;
  (match trace_out with
  | Some path -> Obs.Log.info "wrote trace to %s (summarise with: trace_report %s)" path path
  | None -> ());
  (match out with
  | Some path ->
      Netlist.Io.save_file path d;
      Obs.Log.info "wrote placed design to %s" path
  | None -> ());
  (match write_def with
  | Some path ->
      Formats.Lefdef.write ~lef_path:(Filename.remove_extension path ^ ".lef")
        ~def_path:path d;
      Obs.Log.info "wrote placed DEF (plus sibling LEF) to %s" path
  | None -> ());
  (match write_pl with
  | Some path ->
      Formats.Bookshelf.write_pl path d;
      Obs.Log.info "wrote placement (.pl) to %s" path
  | None -> ())
  with Util.Errors.Error e -> on_error e

let design = Arg.(value & opt string "sb18" & info [ "d"; "design" ] ~docv:"NAME" ~doc:"Suite design name.")

let file =
  Arg.(value & opt (some string) None & info [ "design-file" ] ~docv:"FILE" ~doc:"Load a design file instead of generating.")

let bookshelf =
  Arg.(value & opt (some string) None
       & info [ "bookshelf" ] ~docv:"AUX"
           ~doc:"Load a Bookshelf design from its .aux (ICCAD-2015 dialect).")

let lef =
  Arg.(value & opt (some string) None
       & info [ "lef" ] ~docv:"LEF" ~doc:"Macro library for --def (MACRO/PIN geometry).")

let def =
  Arg.(value & opt (some string) None
       & info [ "def" ] ~docv:"DEF" ~doc:"Load a DEF design (COMPONENTS/PINS/NETS/DIEAREA/ROW).")

let wire_rc =
  Arg.(value & opt (some string) None
       & info [ "wire-rc" ] ~docv:"RES,CAP"
           ~doc:"Per-unit wire parasitics (kOhm,fF per site) for foreign designs — the \
                 set_wire_rc step feeding the Elmore model.")

let clock =
  Arg.(value & opt (some float) None
       & info [ "clock" ] ~docv:"PS" ~doc:"Override the clock period (ps).")

let write_def =
  Arg.(value & opt (some string) None
       & info [ "write-def" ] ~docv:"FILE"
           ~doc:"Write the placed design as DEF (plus a sibling .lef).")

let write_pl =
  Arg.(value & opt (some string) None
       & info [ "write-pl" ] ~docv:"FILE" ~doc:"Write the placement as a Bookshelf .pl.")

let scale = Arg.(value & opt float 0.5 & info [ "scale" ] ~docv:"S" ~doc:"Generator size multiplier.")

let flow =
  Arg.(value & opt string "efficient"
       & info [ "flow" ] ~docv:"FLOW" ~doc:"vanilla | dp4 | diff | dist | efficient | noextract.")

let loss =
  Arg.(value & opt string "quadratic" & info [ "loss" ] ~docv:"LOSS" ~doc:"quadratic | linear | hpwl.")

let k =
  Arg.(value & opt int 1 & info [ "paths-per-endpoint" ] ~docv:"K" ~doc:"Critical paths per endpoint.")

let domains =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"N"
           ~doc:"Parallel domains for the hot kernels (1 = sequential; results are \
                 deterministic per fixed N).")

let fault_inject =
  Arg.(value & opt (some string) None
       & info [ "fault-inject" ] ~docv:"SPEC"
           ~doc:"Robustness-test fault injection: site=kind\\@start[+count],... with site in \
                 {wl_grad, elmore} and kind in {nan, inf, -inf, huge}. Defaults to \
                 \\$FAULT_INJECT.")

let out = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Save the placed design.")

let curve = Arg.(value & flag & info [ "curve" ] ~doc:"Print the timing-phase metric curve.")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc:"Write the span/metric trace as JSONL.")

let report_json =
  Arg.(value & opt (some string) None
       & info [ "report-json" ] ~docv:"FILE" ~doc:"Write the structured run report as JSON.")

let heartbeat_out =
  Arg.(value & opt (some string) None
       & info [ "heartbeat-out" ] ~docv:"FILE"
           ~doc:"Stream periodic progress records (JSONL) while placing.")

let heartbeat_every =
  Arg.(value & opt int 25
       & info [ "heartbeat-every" ] ~docv:"N" ~doc:"Heartbeat cadence in placement iterations.")

let log_level =
  let levels =
    List.map (fun l -> (Obs.Log.to_string l, l)) Obs.Log.[ Quiet; Error; Warn; Info; Debug ]
  in
  Arg.(value & opt (some (enum levels)) None
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"quiet | error | warn | info | debug (default: \\$OBS_LEVEL or info).")

let cmd =
  let doc = "timing-driven global placement (Efficient-TDP and baselines)" in
  Cmd.v (Cmd.info "place" ~doc)
    Term.(
      const run $ design $ file $ bookshelf $ lef $ def $ wire_rc $ clock $ scale $ flow
      $ loss $ k $ domains $ fault_inject $ out $ write_def $ write_pl $ curve $ trace_out
      $ report_json $ heartbeat_out $ heartbeat_every $ log_level)

let () = exit (Cmd.eval cmd)
