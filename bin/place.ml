(** Run a placement flow on a design and report contest metrics.

    Examples:
      place -d sb18 --flow efficient
      place --design-file my.design --flow dp4 --out placed.design
      place -d sb4 --flow efficient --loss linear --paths-per-endpoint 10 *)

open Cmdliner

let parse_loss = function
  | "quadratic" -> Tdp.Config.Quadratic
  | "linear" -> Tdp.Config.Linear
  | "hpwl" -> Tdp.Config.Hpwl_like
  | s -> failwith ("unknown loss: " ^ s)

let make_method flow loss k =
  let cfg = Tdp.Config.with_loss (parse_loss loss) Tdp.Config.default in
  let cfg = { cfg with extraction = Tdp.Config.Endpoint_based { k } } in
  match flow with
  | "vanilla" -> Tdp.Flow.Vanilla
  | "dp4" -> Tdp.Flow.Dp4
  | "diff" -> Tdp.Flow.Diff_tdp
  | "dist" -> Tdp.Flow.Dist_tdp
  | "efficient" -> Tdp.Flow.Efficient cfg
  | "noextract" -> Tdp.Flow.Dp4_in_ours
  | s -> failwith ("unknown flow: " ^ s)

let run design file scale flow loss k out curve =
  let d =
    match file with
    | Some path -> Netlist.Io.load_file path
    | None -> Workloads.Suite.load ~scale design
  in
  Printf.printf "design %s: %d cells, %d nets, clock %.1f ps\n%!" d.name
    (Netlist.Design.num_cells d) (Netlist.Design.num_nets d) d.clock_period;
  let meth = make_method flow loss k in
  Printf.printf "flow: %s\n%!" (Tdp.Flow.method_name meth);
  let r = Tdp.Flow.run meth d in
  Printf.printf "global placement  : %s\n" (Format.asprintf "%a" Evalkit.Metrics.pp r.metrics_gp);
  Printf.printf "after legalization: %s\n" (Format.asprintf "%a" Evalkit.Metrics.pp r.metrics);
  Printf.printf "runtime: %.2f s\n" r.runtime;
  Printf.printf "breakdown:\n";
  List.iter (fun (n, s) -> Printf.printf "  %-16s %8.3f s\n" n s) r.breakdown;
  if curve then begin
    Printf.printf "timing-phase curve (iter hpwl overflow tns wns):\n";
    List.iter
      (fun (c : Tdp.Flow.curve_point) ->
        Printf.printf "  %4d %12.1f %6.3f %12.1f %10.1f\n" c.iter c.hpwl c.overflow c.tns c.wns)
      r.curve
  end;
  match out with
  | Some path ->
      Netlist.Io.save_file path d;
      Printf.printf "wrote placed design to %s\n" path
  | None -> ()

let design = Arg.(value & opt string "sb18" & info [ "d"; "design" ] ~docv:"NAME" ~doc:"Suite design name.")

let file =
  Arg.(value & opt (some string) None & info [ "design-file" ] ~docv:"FILE" ~doc:"Load a design file instead of generating.")

let scale = Arg.(value & opt float 0.5 & info [ "scale" ] ~docv:"S" ~doc:"Generator size multiplier.")

let flow =
  Arg.(value & opt string "efficient"
       & info [ "flow" ] ~docv:"FLOW" ~doc:"vanilla | dp4 | diff | dist | efficient | noextract.")

let loss =
  Arg.(value & opt string "quadratic" & info [ "loss" ] ~docv:"LOSS" ~doc:"quadratic | linear | hpwl.")

let k =
  Arg.(value & opt int 1 & info [ "paths-per-endpoint" ] ~docv:"K" ~doc:"Critical paths per endpoint.")

let out = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Save the placed design.")

let curve = Arg.(value & flag & info [ "curve" ] ~doc:"Print the timing-phase metric curve.")

let cmd =
  let doc = "timing-driven global placement (Efficient-TDP and baselines)" in
  Cmd.v (Cmd.info "place" ~doc)
    Term.(const run $ design $ file $ scale $ flow $ loss $ k $ out $ curve)

let () = exit (Cmd.eval cmd)
