(** Golden-regression gate over [Oracle.Golden].

    Examples:
      golden --check                  # diff the committed matrix vs goldens/
      golden --regen                  # rewrite goldens/*.json
      golden --check --designs sb1    # only sb1 entries
      golden --regen --dir /tmp/g --scale 0.05

    Exit status 0 when the check passes (or after a regen), 1 on any
    mismatch or missing golden — CI wires `--check` as a required job. *)

open Cmdliner

let split_csv s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")

(* The committed Bookshelf golden fixture joins the matrix through the
   Suite loader registry whenever its files are visible (CI runs from the
   repo root); its scale is meaningless and left untouched by --scale. *)
let bookshelf_fixture = "test/fixtures/formats/golden_small/golden_small.aux"

let bookshelf_entries () =
  if Sys.file_exists bookshelf_fixture then begin
    Formats.Suite_hook.register_file ~short:"bsgolden" bookshelf_fixture;
    [
      {
        Oracle.Golden.design = "bsgolden";
        scale = 1.0;
        method_ = Tdp.Flow.Efficient Tdp.Config.default;
      };
    ]
  end
  else begin
    Printf.eprintf "golden: %s not found (not running from the repo root?); skipping the bsgolden entry\n"
      bookshelf_fixture;
    []
  end

let select_entries designs scale =
  let scaled =
    Oracle.Golden.default_entries
    |> List.map (fun (e : Oracle.Golden.entry) ->
           match scale with None -> e | Some s -> { e with Oracle.Golden.scale = s })
  in
  scaled @ bookshelf_entries ()
  |> List.filter (fun (e : Oracle.Golden.entry) ->
         match designs with [] -> true | ds -> List.mem e.Oracle.Golden.design ds)

let run check regen dir designs scale =
  let entries = select_entries (split_csv designs) scale in
  if entries = [] then begin
    prerr_endline "golden: no entries selected (check --designs)";
    1
  end
  else
    match (check, regen) with
    | false, false | true, true ->
        prerr_endline "golden: pass exactly one of --check or --regen";
        2
    | false, true ->
        let files = Oracle.Golden.regen ~dir entries in
        List.iter (Printf.printf "regenerated %s\n") files;
        0
    | true, false -> (
        match Oracle.Golden.check ~dir entries with
        | Ok () ->
            Printf.printf "golden: %d entries match under rtol %g\n" (List.length entries)
              Oracle.Golden.float_rtol;
            0
        | Error msgs ->
            List.iter (Printf.eprintf "golden mismatch: %s\n") msgs;
            Printf.eprintf "golden: %d mismatches over %d entries\n" (List.length msgs)
              (List.length entries);
            1)

let check = Arg.(value & flag & info [ "check" ] ~doc:"Diff fresh runs against the goldens.")
let regen = Arg.(value & flag & info [ "regen" ] ~doc:"Rewrite the golden files.")

let dir =
  Arg.(value & opt string "goldens" & info [ "dir" ] ~docv:"DIR" ~doc:"Golden directory.")

let designs =
  Arg.(
    value & opt string ""
    & info [ "designs" ] ~docv:"NAMES" ~doc:"Comma-separated design filter (default: all).")

let scale =
  Arg.(
    value
    & opt (some float) None
    & info [ "scale" ] ~docv:"S" ~doc:"Override the suite scale of every entry.")

let cmd =
  let doc = "golden-regression gate for Tdp.Flow metrics" in
  Cmd.v (Cmd.info "golden" ~doc) Term.(const run $ check $ regen $ dir $ designs $ scale)

let () = exit (Cmd.eval' cmd)
