(** Generate a synthetic benchmark design and write it to disk.

    Examples:
      gen_bench -d sb1 -o sb1.design
      gen_bench -d sb10 --scale 1.0 --no-calibrate -o big.design
      gen_bench --cells 500000 -o scale500k.design   # scale ladder
      gen_bench -d sb1 -o sb1.aux                    # Bookshelf bundle
      gen_bench -d sb1 -o sb1.def                    # DEF + sibling LEF

    The output format follows the file extension (Formats.Auto): .aux
    writes the Bookshelf bundle (.nodes/.nets/.pl/.scl/.cells), .def a
    LEF/DEF pair, anything else the native format. *)

open Cmdliner

let run design scale calibrate cells out =
  let d =
    match cells with
    | Some cells -> Workloads.Suite.load_sized ~calibrate ~cells ()
    | None -> Workloads.Suite.load ~scale ~calibrate design
  in
  (match out with
  | Some path ->
      Formats.Auto.save path d;
      Printf.printf "wrote %s\n" path
  | None -> Netlist.Io.save stdout d);
  Printf.printf "design %s: %d cells, %d nets, %d pins, clock %.1f ps, die %.0fx%.0f\n"
    d.name
    (Netlist.Design.num_cells d)
    (Netlist.Design.num_nets d)
    (Netlist.Design.num_pins d)
    d.clock_period
    (Geom.Rect.width d.die) (Geom.Rect.height d.die)

let design =
  let doc = "Suite design name (sb1 sb3 sb4 sb5 sb7 sb10 sb16 sb18)." in
  Arg.(value & opt string "sb1" & info [ "d"; "design" ] ~docv:"NAME" ~doc)

let scale =
  let doc = "Size multiplier applied to all cell counts." in
  Arg.(value & opt float 0.5 & info [ "scale" ] ~docv:"S" ~doc)

let calibrate =
  let doc = "Skip clock calibration (leaves a placeholder period)." in
  Arg.(value & flag & info [ "no-calibrate" ] ~doc)

let out =
  let doc = "Output file (stdout when omitted)." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let cells =
  let doc =
    "Generate a scale-ladder design with roughly this many cells instead of a suite design \
     (overrides --design/--scale; calibration defaults off at this size — pass sizes like \
     100000..1000000)."
  in
  Arg.(value & opt (some int) None & info [ "cells" ] ~docv:"N" ~doc)

let cmd =
  let doc = "generate an ICCAD2015-like synthetic benchmark" in
  Cmd.v
    (Cmd.info "gen_bench" ~doc)
    Term.(const (fun d s nc c o -> run d s (not nc) c o) $ design $ scale $ calibrate $ cells $ out)

let () = exit (Cmd.eval cmd)
