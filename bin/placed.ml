(** Placement-as-a-service daemon. Loads designs once, keeps the warm
    state (design DB, STA graph + RC trees, last placement) resident, and
    serves placement jobs over a JSONL protocol — one request object per
    line, one reply object per line.

    Transports: stdin/stdout (default) or a Unix-domain socket
    (--socket PATH; sequential connections, one line-oriented session
    each, until a shutdown request).

    Example session:
      {"id":"1","op":"load","params":{"suite":"sb18","name":"sb18"}}
      {"id":"2","op":"place","params":{"design":"sb18","flow":"efficient"}}
      {"id":"3","op":"replace","params":{"design":"sb18","random_frac":0.01}}
      {"id":"4","op":"report_timing","params":{"design":"sb18","n":5}}
      {"id":"5","op":"stats"}
      {"id":"6","op":"shutdown"}

    Replies are {"id","ok":true,"result":...} or {"id","ok":false,
    "error":{"kind","message",...}} with the same error taxonomy as the
    one-shot binaries (config_error, invalid_design, diverged,
    infeasible, parse_error); transport-level problems reply with kinds
    "bad_request" / "internal". No job kills the daemon: a failed
    request leaves the loaded designs consistent and the loop running. *)

open Cmdliner

let serve_channels engine ic oc =
  let rec loop () =
    if Service.Engine.shutdown_requested engine then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> loop ()
      | line ->
          let reply = Service.Engine.handle_line engine line in
          (try
             output_string oc (Obs.Json.to_string reply);
             output_char oc '\n';
             flush oc
           with Sys_error _ -> () (* client went away mid-reply *));
          loop ()
  in
  loop ()

let serve_stdin engine =
  Obs.Log.info "placed: serving JSONL on stdin";
  serve_channels engine stdin stdout

let serve_socket engine path =
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Obs.Log.info "placed: serving JSONL on unix socket %s" path;
  let rec accept_loop () =
    if Service.Engine.shutdown_requested engine then ()
    else begin
      let client, _ = Unix.accept sock in
      let ic = Unix.in_channel_of_descr client in
      let oc = Unix.out_channel_of_descr client in
      (try serve_channels engine ic oc with Sys_error _ | End_of_file -> ());
      (try Unix.close client with Unix.Unix_error _ -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    accept_loop

let run socket domains trace_out heartbeat_out heartbeat_every log_level =
  (match log_level with Some l -> Obs.Log.set_level l | None -> ());
  (* A client hanging up mid-reply must not kill a daemon holding warm
     state for other sessions. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Util.Parallel.set_num_domains domains;
  Obs.Log.info "parallel: %d domain(s)" !Util.Parallel.num_domains;
  let sinks = match trace_out with Some path -> [ Obs.Sink.jsonl path ] | None -> [] in
  let ctx = Obs.Ctx.create ~sinks () in
  Obs.Ctx.set_default ctx;
  Obs.Resource.install_parallel ctx;
  let heartbeat, heartbeat_close =
    match heartbeat_out with
    | Some path ->
        let emit, close = Obs.Heartbeat.jsonl_emitter path in
        (Some (Obs.Heartbeat.create ~every_iters:heartbeat_every ~emit ctx), close)
    | None -> (None, fun () -> ())
  in
  let engine = Service.Engine.create ~obs:ctx ?heartbeat () in
  Fun.protect
    ~finally:(fun () ->
      heartbeat_close ();
      Obs.Ctx.close ctx)
    (fun () ->
      match socket with
      | Some path -> serve_socket engine path
      | None -> serve_stdin engine);
  Obs.Log.info "placed: shutting down (%d job(s) served, %d failed)"
    (Service.Jobs.completed (Service.Engine.jobs engine))
    (Service.Jobs.failed (Service.Engine.jobs engine));
  0

let socket =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Serve on a Unix-domain socket instead of stdin/stdout.")

let domains =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"N"
           ~doc:"Parallel domains for the hot kernels (1 = sequential; results are \
                 deterministic per fixed N).")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc:"Write the span/metric trace as JSONL.")

let heartbeat_out =
  Arg.(value & opt (some string) None
       & info [ "heartbeat-out" ] ~docv:"FILE"
           ~doc:"Stream periodic progress records (JSONL) while jobs run; the cadence \
                 resets per request.")

let heartbeat_every =
  Arg.(value & opt int 25
       & info [ "heartbeat-every" ] ~docv:"N" ~doc:"Heartbeat cadence in placement iterations.")

let log_level =
  let levels =
    List.map (fun l -> (Obs.Log.to_string l, l)) Obs.Log.[ Quiet; Error; Warn; Info; Debug ]
  in
  Arg.(value & opt (some (enum levels)) None
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"quiet | error | warn | info | debug (default: \\$OBS_LEVEL or info).")

let cmd =
  let doc = "placement-as-a-service daemon (warm caches, incremental re-placement)" in
  Cmd.v (Cmd.info "placed" ~doc)
    Term.(const run $ socket $ domains $ trace_out $ heartbeat_out $ heartbeat_every $ log_level)

let () = exit (Cmd.eval' cmd)
