(** Summarise a JSONL trace produced by [place --trace-out] into a
    Fig. 4-style component table: per span name, invocation count, total
    and self wall time (total minus the time spent in child spans), plus
    the recorded counters and gauges. Also exports the span timeline as
    Chrome trace-event JSON (load in chrome://tracing or Perfetto) and as
    folded stacks for flamegraph.pl.

    Usage:
      trace_report run.jsonl [--top N]
      trace_report run.jsonl --chrome-trace run.trace.json
      trace_report run.jsonl --flamegraph run.folded *)

open Cmdliner

type span_rec = {
  id : int;
  parent : int;
  name : string;
  t0 : float;
  dur : float;
  attrs : (string * Obs.Json.t) list;
}

type name_stat = {
  mutable count : int;
  mutable total : float;
  mutable self : float;
  mutable dmax : float;
}

let mem_str k j = Option.bind (Obs.Json.member k j) Obs.Json.to_string_opt
let mem_int k j = Option.bind (Obs.Json.member k j) Obs.Json.to_int
let mem_float k j = Option.bind (Obs.Json.member k j) Obs.Json.to_float

let parse_line lineno line =
  match Obs.Json.parse line with
  | Ok j -> Some j
  | Error e ->
      Obs.Log.warn "line %d: unparseable JSON (%s), skipped" lineno e;
      None

let load path =
  let ic = open_in path in
  let spans = ref [] and metrics = ref [] in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match parse_line !lineno line with
         | None -> ()
         | Some j -> (
             match mem_str "type" j with
             | Some "span" ->
                 let geti k = match mem_int k j with Some v -> v | None -> -1 in
                 let getf k = match mem_float k j with Some v -> v | None -> 0.0 in
                 let name = match mem_str "name" j with Some s -> s | None -> "?" in
                 let attrs =
                   match Obs.Json.member "attrs" j with
                   | Some (Obs.Json.Obj kvs) -> kvs
                   | _ -> []
                 in
                 spans :=
                   {
                     id = geti "id";
                     parent = geti "parent";
                     name;
                     t0 = getf "t0";
                     dur = getf "dur";
                     attrs;
                   }
                   :: !spans
             | Some "metric" -> metrics := j :: !metrics
             | _ -> Obs.Log.warn "line %d: unknown record type, skipped" !lineno)
     done
   with End_of_file -> close_in ic);
  (List.rev !spans, List.rev !metrics)

let summarize spans =
  (* Self time: subtract each span's duration from its parent's credit.
     Spans are streamed in completion order, so both id->name and the
     child-time accumulation are resolved after a full pass. *)
  let child_time = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if s.parent >= 0 then
        let r =
          match Hashtbl.find_opt child_time s.parent with
          | Some r -> r
          | None ->
              let r = ref 0.0 in
              Hashtbl.add child_time s.parent r;
              r
        in
        r := !r +. s.dur)
    spans;
  let stats = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let st =
        match Hashtbl.find_opt stats s.name with
        | Some st -> st
        | None ->
            let st = { count = 0; total = 0.0; self = 0.0; dmax = 0.0 } in
            Hashtbl.add stats s.name st;
            st
      in
      let children = match Hashtbl.find_opt child_time s.id with Some r -> !r | None -> 0.0 in
      st.count <- st.count + 1;
      st.total <- st.total +. s.dur;
      st.self <- st.self +. Float.max 0.0 (s.dur -. children);
      st.dmax <- Float.max st.dmax s.dur)
    spans;
  Hashtbl.fold (fun name st acc -> (name, st) :: acc) stats []
  |> List.sort (fun (_, a) (_, b) -> compare b.total a.total)

let print_spans spans top =
  let rows = summarize spans in
  let wall = List.fold_left (fun acc s -> if s.parent < 0 then acc +. s.dur else acc) 0.0 spans in
  let tbl =
    Util.Tablefmt.create ~title:"Span summary (component breakdown)"
      ~headers:[ "span"; "count"; "total s"; "self s"; "max s"; "% wall" ]
      ~aligns:[ Left; Right; Right; Right; Right; Right ]
  in
  let shown = if top > 0 then List.filteri (fun i _ -> i < top) rows else rows in
  List.iter
    (fun (name, st) ->
      Util.Tablefmt.add_row tbl
        [
          name;
          string_of_int st.count;
          Util.Tablefmt.fmt_float ~prec:3 st.total;
          Util.Tablefmt.fmt_float ~prec:3 st.self;
          Util.Tablefmt.fmt_float ~prec:3 st.dmax;
          (if wall > 0.0 then Util.Tablefmt.fmt_float ~prec:1 (100.0 *. st.total /. wall) else "-");
        ])
    shown;
  Util.Tablefmt.print tbl;
  if top > 0 && List.length rows > top then
    Printf.printf "(%d more span names; raise --top to see them)\n" (List.length rows - top);
  Printf.printf "spans: %d   root wall time: %.3f s\n" (List.length spans) wall

let print_metrics metrics =
  if metrics <> [] then begin
    let tbl =
      Util.Tablefmt.create ~title:"Metrics" ~headers:[ "name"; "kind"; "value" ]
        ~aligns:[ Left; Left; Right ]
    in
    List.iter
      (fun j ->
        let name = match mem_str "name" j with Some s -> s | None -> "?" in
        let kind = match mem_str "kind" j with Some s -> s | None -> "?" in
        let value =
          match kind with
          | "counter" | "gauge" -> (
              match mem_float "value" j with
              | Some v -> Util.Tablefmt.fmt_float ~prec:3 v
              | None -> "-")
          | "histogram" -> (
              match (mem_float "count" j, mem_float "p50" j, mem_float "p99" j) with
              | Some n, Some p50, Some p99 ->
                  Printf.sprintf "n=%.0f p50=%.3g p99=%.3g" n p50 p99
              | _ -> "-")
          | _ -> "-"
        in
        Util.Tablefmt.add_row tbl [ name; kind; value ])
      metrics;
    Util.Tablefmt.print tbl
  end

(* Rebuild [Obs.Span.t] values from the replayed records so the timeline
   exporters see exactly what a live [Sink.memory] would have. *)
let to_spans recs =
  List.map
    (fun r ->
      let s = Obs.Span.make ~id:r.id ~parent:r.parent ~name:r.name ~start:r.t0 ~attrs:r.attrs in
      s.Obs.Span.dur <- r.dur;
      s)
    recs

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let run path top chrome_out flame_out =
  let spans, metrics = load path in
  if spans = [] && metrics = [] then Obs.Log.warn "%s: no span or metric records found" path;
  print_spans spans top;
  print_metrics metrics;
  (match chrome_out with
  | Some out ->
      let doc = Obs.Timeline.to_chrome_trace ~process_name:"place" (to_spans spans) in
      write_file out (Obs.Json.to_string doc ^ "\n");
      Printf.printf "wrote Chrome trace (%d events) to %s — load in chrome://tracing or Perfetto\n"
        (List.length spans + 1) out
  | None -> ());
  match flame_out with
  | Some out ->
      let folded = Obs.Timeline.to_folded (to_spans spans) in
      write_file out (Obs.Timeline.folded_to_string folded);
      Printf.printf "wrote %d folded stacks to %s — render with flamegraph.pl\n"
        (List.length folded) out
  | None -> ()

let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl" ~doc:"Trace file.")

let top =
  Arg.(value & opt int 0 & info [ "top" ] ~docv:"N" ~doc:"Show only the N hottest span names.")

let chrome_out =
  Arg.(value & opt (some string) None
       & info [ "chrome-trace" ] ~docv:"FILE"
           ~doc:"Export the span timeline as Chrome trace-event JSON.")

let flame_out =
  Arg.(value & opt (some string) None
       & info [ "flamegraph" ] ~docv:"FILE"
           ~doc:"Export folded stacks (flamegraph.pl input).")

let cmd =
  let doc = "summarise a place --trace-out JSONL trace" in
  Cmd.v (Cmd.info "trace_report" ~doc) Term.(const run $ path $ top $ chrome_out $ flame_out)

let () = exit (Cmd.eval cmd)
