(** Netlist statistics: size, fanout distribution, timing-graph depth,
    wire parasitics — the numbers DESIGN.md's generator claims are
    checked against.

    Example: design_stats -d sb1 --scale 0.5 *)

open Cmdliner
open Netlist

let histogram values ~buckets =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let b = buckets v in
      Hashtbl.replace tbl b (1 + (try Hashtbl.find tbl b with Not_found -> 0)))
    values;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let run design file scale =
  let d =
    match file with
    | Some path -> Io.load_file path
    | None -> Workloads.Suite.load ~scale ~calibrate:false design
  in
  Printf.printf "design %s\n" d.name;
  Printf.printf "  die          %.0f x %.0f sites, utilization %.2f\n"
    (Geom.Rect.width d.die) (Geom.Rect.height d.die)
    (Design.movable_area d /. Geom.Rect.area d.die);
  let count pred =
    let n = ref 0 in
    for i = 0 to Design.num_cells d - 1 do
      if pred i then incr n
    done;
    !n
  in
  Printf.printf "  cells        %d total: %d comb, %d ff, %d pads, %d macros\n"
    (Design.num_cells d)
    (count (fun i -> Design.kind d i = Design.Logic && not (Design.is_ff d i)))
    (count (Design.is_ff d))
    (count (fun i ->
         match Design.kind d i with Design.Input_pad | Design.Output_pad -> true | _ -> false))
    (count (fun i -> Design.kind d i = Design.Blockage));
  Printf.printf "  nets         %d, pins %d\n" (Design.num_nets d) (Design.num_pins d);
  Printf.printf "  wire r/c     %.3f kOhm/site, %.3f fF/site\n" d.r_per_unit d.c_per_unit;
  (* Memory footprint of the SoA database, by field group. *)
  let fp = Design.footprint d in
  let mib b = float_of_int b /. (1024.0 *. 1024.0) in
  Printf.printf "  memory       %.2f MiB total, %.1f words/cell\n" (mib fp.Design.total_bytes)
    (float_of_int fp.Design.total_bytes /. 8.0 /. float_of_int (max 1 (Design.num_cells d)));
  Printf.printf "    cell fields      %9d bytes\n" fp.Design.cell_bytes;
  Printf.printf "    pin fields       %9d bytes\n" fp.Design.pin_bytes;
  Printf.printf "    net fields       %9d bytes\n" fp.Design.net_bytes;
  Printf.printf "    CSR adjacency    %9d bytes\n" fp.Design.adjacency_bytes;
  Printf.printf "    name tables      %9d bytes\n" fp.Design.name_bytes;
  (* Fanout distribution. *)
  let fanouts = List.init (Design.num_nets d) (fun nid -> Design.net_num_sinks d nid) in
  let fo_arr = Array.of_list (List.map float_of_int fanouts) in
  Printf.printf "  fanout       mean %.2f, p50 %.0f, p95 %.0f, max %.0f\n"
    (Util.Stats.mean fo_arr) (Util.Stats.median fo_arr) (Util.Stats.percentile fo_arr 95.0)
    (Util.Stats.max_elt fo_arr);
  Printf.printf "  fanout histogram (bucket -> nets):\n";
  List.iter
    (fun (b, n) -> Printf.printf "    %4s: %d\n" b n)
    (histogram fanouts ~buckets:(fun f ->
         if f <= 1 then "1" else if f <= 2 then "2" else if f <= 4 then "3-4"
         else if f <= 8 then "5-8" else if f <= 16 then "9-16" else ">16"));
  (* Timing graph shape. *)
  let g = Sta.Graph.build d in
  let depth = Array.make (Sta.Graph.num_pins g) 0 in
  let max_depth = ref 0 in
  Array.iter
    (fun p ->
      for i = g.Sta.Graph.in_start.(p) to g.Sta.Graph.in_start.(p + 1) - 1 do
        let a = g.Sta.Graph.in_arc.(i) in
        depth.(p) <- max depth.(p) (depth.(g.Sta.Graph.arc_from.(a)) + 1)
      done;
      if depth.(p) > !max_depth then max_depth := depth.(p))
    g.Sta.Graph.topo;
  Printf.printf "  timing graph %d arcs, %d endpoints, max logic depth %d pins\n"
    g.Sta.Graph.num_arcs
    (Array.length g.Sta.Graph.endpoints)
    !max_depth;
  if d.clock_period < 1e8 then Printf.printf "  clock        %.1f ps\n" d.clock_period
  else Printf.printf "  clock        (uncalibrated)\n"

let design = Arg.(value & opt string "sb1" & info [ "d"; "design" ] ~docv:"NAME" ~doc:"Suite design name.")

let file =
  Arg.(value & opt (some string) None & info [ "design-file" ] ~docv:"FILE" ~doc:"Load a design file.")

let scale = Arg.(value & opt float 0.5 & info [ "scale" ] ~docv:"S" ~doc:"Generator size multiplier.")

let cmd =
  let doc = "print netlist statistics for a design" in
  Cmd.v (Cmd.info "design_stats" ~doc) Term.(const run $ design $ file $ scale)

let () = exit (Cmd.eval cmd)
