(** Static timing report for a placed design: endpoint slack summary and
    critical paths via both extraction commands.

    Examples:
      report_timing --design-file placed.design -n 10
      report_timing -d sb18 --run-gp -n 5 -k 2 *)

open Cmdliner

let pin_label (d : Netlist.Design.t) pid =
  Printf.sprintf "%s.%s"
    (Netlist.Design.cell_name d d.Netlist.Design.pin_owner.(pid))
    (Netlist.Design.pin_name d pid)

let print_path (g : Sta.Graph.t) i (p : Sta.Paths.path) =
  Printf.printf "-- path %d --\n" i;
  Format.printf "%a@." (fun fmt p -> Sta.Report.pp_path fmt g p) p

let run design file scale run_gp n k =
  let d =
    match file with
    | Some path -> Netlist.Io.load_file path
    | None -> Workloads.Suite.load ~scale design
  in
  if run_gp then ignore (Gp.Globalplace.run d);
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  Printf.printf "design %s: clock %.1f ps, %d endpoints\n" d.name d.clock_period
    (Array.length g.Sta.Graph.endpoints);
  Printf.printf "WNS %.1f ps   TNS %.1f ps   failing endpoints %d\n\n" (Sta.Timer.wns timer)
    (Sta.Timer.tns timer)
    (Sta.Timer.num_failing_endpoints timer);
  Printf.printf "worst %d endpoints:\n" n;
  List.iteri
    (fun i e ->
      if i < n then
        Printf.printf "  %-24s slack %10.1f ps\n" (pin_label d e)
          (Sta.Timer.endpoint_slack timer e))
    (Sta.Timer.failing_endpoints timer
    @ List.filter
        (fun e -> Sta.Timer.endpoint_slack timer e >= 0.0)
        (Array.to_list g.Sta.Graph.endpoints));
  Printf.printf "\nhold summary: WHS %.1f ps, THS %.1f ps, %d violations\n"
    (Sta.Timer.whs timer) (Sta.Timer.ths timer)
    (List.length (Sta.Timer.hold_violations timer));
  Printf.printf "\nreport_timing_endpoint(%d, %d):\n" n k;
  List.iteri (print_path g) (Sta.Timer.report_timing_endpoint timer ~n ~k ~failing_only:false);
  Printf.printf "\nreport_timing(%d) [global top-n]:\n" n;
  List.iteri (print_path g) (Sta.Timer.report_timing timer ~n ~failing_only:false)

let design = Arg.(value & opt string "sb18" & info [ "d"; "design" ] ~docv:"NAME" ~doc:"Suite design name.")

let file =
  Arg.(value & opt (some string) None & info [ "design-file" ] ~docv:"FILE" ~doc:"Load a design file.")

let scale = Arg.(value & opt float 0.5 & info [ "scale" ] ~docv:"S" ~doc:"Generator size multiplier.")

let run_gp = Arg.(value & flag & info [ "run-gp" ] ~doc:"Run vanilla global placement first.")

let n = Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Endpoints to report.")

let k = Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Paths per endpoint.")

let cmd =
  let doc = "static timing report with critical path extraction" in
  Cmd.v (Cmd.info "report_timing" ~doc)
    Term.(const run $ design $ file $ scale $ run_gp $ n $ k)

let () = exit (Cmd.eval cmd)
