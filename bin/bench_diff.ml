(** Bench regression sentinel: compare two [bench-results-v1] JSON dumps
    (written by [bench/main.exe --json]) against ratio thresholds on
    whole-flow runtime, peak RSS, per-phase self time and HPWL.

    Usage:
      bench_diff goldens/bench_baseline.json BENCH_current.json
      bench_diff --max-self-ratio 8 --min-phase-s 0.1 base.json cur.json

    Exit codes: 0 the current run passes the gate, 1 at least one
    threshold violation (or a baseline entry missing from the current
    run), 2 unreadable/malformed input. *)

open Cmdliner

let read_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s -> Obs.Json.parse s

let run baseline current max_time max_rss max_self max_hpwl max_alloc alloc_slack min_phase_s
    min_rss_mb quiet =
  let th =
    {
      Obs.Benchcmp.max_time_ratio = max_time;
      max_rss_ratio = max_rss;
      max_self_ratio = max_self;
      max_hpwl_ratio = max_hpwl;
      max_alloc_ratio = max_alloc;
      alloc_slack_words = alloc_slack;
      min_phase_s;
      min_rss_bytes = min_rss_mb *. 1024.0 *. 1024.0;
    }
  in
  match (read_json baseline, read_json current) with
  | Error e, _ ->
      Printf.eprintf "bench_diff: %s: %s\n" baseline e;
      exit 2
  | _, Error e ->
      Printf.eprintf "bench_diff: %s: %s\n" current e;
      exit 2
  | Ok b, Ok c -> (
      match Obs.Benchcmp.compare_docs th ~baseline:b ~current:c with
      | Error e ->
          Printf.eprintf "bench_diff: %s\n" e;
          exit 2
      | Ok [] ->
          if not quiet then
            Printf.printf "bench_diff: PASS (%s vs %s, no threshold violations)\n" baseline
              current;
          exit 0
      | Ok violations ->
          Printf.printf "bench_diff: FAIL — %d violation(s) of %s vs %s:\n"
            (List.length violations) current baseline;
          List.iter
            (fun v -> Printf.printf "  %s\n" (Obs.Benchcmp.violation_to_string v))
            violations;
          exit 1)

let baseline =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE.json" ~doc:"Baseline dump.")

let current =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT.json" ~doc:"Current dump.")

let d = Obs.Benchcmp.default_thresholds

let max_time =
  Arg.(value & opt float d.max_time_ratio
       & info [ "max-time-ratio" ] ~docv:"R" ~doc:"Whole-flow runtime ratio limit.")

let max_rss =
  Arg.(value & opt float d.max_rss_ratio
       & info [ "max-rss-ratio" ] ~docv:"R" ~doc:"Peak-RSS ratio limit.")

let max_self =
  Arg.(value & opt float d.max_self_ratio
       & info [ "max-self-ratio" ] ~docv:"R" ~doc:"Per-phase self-time ratio limit.")

let max_hpwl =
  Arg.(value & opt float d.max_hpwl_ratio
       & info [ "max-hpwl-ratio" ] ~docv:"R" ~doc:"HPWL quality-backstop ratio limit.")

let max_alloc =
  Arg.(value & opt float d.max_alloc_ratio
       & info [ "max-alloc-ratio" ] ~docv:"R"
           ~doc:"Minor-heap allocation limit: fail when current > baseline * R + slack.")

let alloc_slack =
  Arg.(value & opt float d.alloc_slack_words
       & info [ "alloc-slack-words" ] ~docv:"W"
           ~doc:"Absolute slack (in words) added to the allocation limit.")

let min_phase_s =
  Arg.(value & opt float d.min_phase_s
       & info [ "min-phase-s" ] ~docv:"S"
           ~doc:"Ignore runtime/self checks whose baseline is below S seconds.")

let min_rss_mb =
  Arg.(value & opt float (d.min_rss_bytes /. (1024.0 *. 1024.0))
       & info [ "min-rss-mb" ] ~docv:"MB"
           ~doc:"Ignore the RSS check when the baseline peak is below MB.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No output on a pass.")

let cmd =
  let doc = "compare two bench JSON dumps against regression thresholds" in
  Cmd.v (Cmd.info "bench_diff" ~doc)
    Term.(
      const run $ baseline $ current $ max_time $ max_rss $ max_self $ max_hpwl $ max_alloc
      $ alloc_slack $ min_phase_s $ min_rss_mb $ quiet)

let () = exit (Cmd.eval cmd)
