(** ECO-style repair flow — the ICCAD2015 contest's "incremental
    timing-driven placement" scenario end to end:

    1. place a design and meet its calibrated clock,
    2. an engineering change tightens the clock by 10% (new violations),
    3. repair with timing-aware detailed placement (incremental STA),
    4. render before/after SVGs of the layout with critical paths.

    Run with: dune exec examples/eco_flow.exe *)

let () =
  let d = Workloads.Suite.load ~scale:0.4 "sb4" in
  Printf.printf "placing %s (clock %.0f ps)...\n%!" d.name d.clock_period;
  let r = Tdp.Flow.run (Tdp.Flow.Efficient Tdp.Config.default) d in
  Printf.printf "placed: %s\n" (Format.asprintf "%a" Evalkit.Metrics.pp r.metrics);

  (* The ECO: a 10%% tighter clock arrives from upstream. *)
  d.clock_period <- d.clock_period *. 0.9;
  let before = Evalkit.Metrics.evaluate d in
  Printf.printf "\nECO: clock tightened to %.0f ps\n" d.clock_period;
  Printf.printf "violations now: %s\n" (Format.asprintf "%a" Evalkit.Metrics.pp before);
  Evalkit.Svg.write_file "/tmp/eco_before.svg" d;

  (* Repair without re-placing: TNS-verified swaps on the incremental
     timer (each candidate is re-timed in ~tens of microseconds). *)
  let t0 = Unix.gettimeofday () in
  let s = Tdp.Timing_dp.run ~max_endpoints:60 ~window:10.0 d in
  let t_repair = Unix.gettimeofday () -. t0 in
  let after = Evalkit.Metrics.evaluate d in
  Evalkit.Svg.write_file "/tmp/eco_after.svg" d;

  Printf.printf "\nrepair: %d/%d swaps accepted in %.2f s\n" s.accepted s.candidates t_repair;
  Printf.printf "  TNS %.1f -> %.1f ps (%.0f%% recovered)\n" before.tns after.tns
    (100.0 *. (after.tns -. before.tns) /. Float.abs before.tns);
  Printf.printf "  WNS %.1f -> %.1f ps\n" before.wns after.wns;
  Printf.printf "  placement still legal: %b\n" (Gp.Legalize.is_legal d);
  Printf.printf "layouts written to /tmp/eco_before.svg and /tmp/eco_after.svg\n"
