(** Run every timing-driven placement method of the paper on one small
    generated design and print the comparison table.

    Run with: dune exec examples/compare_flows.exe *)

let () =
  let d = Workloads.Suite.load ~scale:0.25 "sb18" in
  Printf.printf "design %s: %d cells, %d nets, clock %.0f ps\n\n" d.name
    (Netlist.Design.num_cells d) (Netlist.Design.num_nets d) d.clock_period;
  let methods =
    [
      Tdp.Flow.Vanilla;
      Tdp.Flow.Dp4;
      Tdp.Flow.Diff_tdp;
      Tdp.Flow.Dist_tdp;
      Tdp.Flow.Efficient Tdp.Config.default;
    ]
  in
  let table =
    Util.Tablefmt.create ~title:"flow comparison (post-legalization)"
      ~headers:[ "Method"; "TNS (ps)"; "WNS (ps)"; "HPWL"; "Runtime (s)" ]
      ~aligns:[ Left; Right; Right; Right; Right ]
  in
  List.iter
    (fun m ->
      Printf.printf "running %s...\n%!" (Tdp.Flow.method_name m);
      let r = Tdp.Flow.run m d in
      Util.Tablefmt.add_row table
        [
          r.name;
          Printf.sprintf "%.1f" r.metrics.tns;
          Printf.sprintf "%.1f" r.metrics.wns;
          Printf.sprintf "%.0f" r.metrics.hpwl;
          Printf.sprintf "%.2f" r.runtime;
        ])
    methods;
  print_newline ();
  Util.Tablefmt.print table
