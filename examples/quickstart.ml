(** Quickstart: build a tiny design with the Builder API, run the
    Efficient-TDP flow, print before/after timing.

    Run with: dune exec examples/quickstart.exe *)

open Netlist

let () =
  (* A 40x40-site die with a single clock domain at 320 ps. *)
  let die = Geom.Rect.make ~xl:0.0 ~yl:0.0 ~xh:40.0 ~yh:40.0 in
  let b =
    Builder.create ~name:"quickstart" ~die ~row_height:1.0 ~clock_period:320.0
      ~r_per_unit:0.06 ~c_per_unit:0.5
  in
  (* Primary input, a few stages of logic, a register, primary output. *)
  let inv = Libcell.find_in_library "INV_X1" in
  let nand = Libcell.find_in_library "NAND2_X1" in
  let pi_a = Builder.add_input_pad b ~cname:"a" ~x:0.0 ~y:10.0 in
  let pi_b = Builder.add_input_pad b ~cname:"b" ~x:0.0 ~y:30.0 in
  let u1 = Builder.add_logic b ~cname:"u1" ~lib:nand ~x:20.0 ~y:20.0 () in
  let u2 = Builder.add_logic b ~cname:"u2" ~lib:inv ~x:20.0 ~y:20.0 () in
  let ff = Builder.add_logic b ~cname:"ff" ~lib:Libcell.dff ~x:20.0 ~y:20.0 () in
  let u3 = Builder.add_logic b ~cname:"u3" ~lib:inv ~x:20.0 ~y:20.0 () in
  let po = Builder.add_output_pad b ~cname:"y" ~x:40.0 ~y:20.0 in
  let wire name pins =
    let n = Builder.add_net b ~nname:name in
    List.iter (fun (cell, pin_name) -> Builder.connect_by_name b ~net:n ~cell ~pin_name) pins
  in
  wire "na" [ (pi_a, "p"); (u1, "a1") ];
  wire "nb" [ (pi_b, "p"); (u1, "a2") ];
  wire "n1" [ (u1, "o"); (u2, "a1") ];
  wire "n2" [ (u2, "o"); (ff, "d") ];
  wire "n3" [ (ff, "q"); (u3, "a1") ];
  wire "ny" [ (u3, "o"); (po, "p") ];
  let design = Builder.finish b in
  Printf.printf "built %s: %d cells / %d nets / %d pins\n\n" design.name
    (Design.num_cells design) (Design.num_nets design) (Design.num_pins design);

  (* Score the initial (stacked) placement... *)
  let before = Evalkit.Metrics.evaluate design in
  Printf.printf "before placement: %s\n" (Format.asprintf "%a" Evalkit.Metrics.pp before);

  (* ...then run the paper's flow: global placement with pin-to-pin
     attraction driven by critical path extraction, then legalization. *)
  let cfg = { Tdp.Config.default with timing_start = 60; extra_iters = 120 } in
  let result = Tdp.Flow.run (Tdp.Flow.Efficient cfg) design in
  Printf.printf "after Efficient-TDP: %s\n"
    (Format.asprintf "%a" Evalkit.Metrics.pp result.metrics);
  Printf.printf "runtime: %.2f s, %d timing rounds\n" result.runtime
    (List.length result.extraction_rounds)
