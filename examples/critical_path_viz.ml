(** Fig. 3 in miniature: take the most critical path of a coarse
    placement, optimise the design under the three distance losses, and
    draw the tracked path's geometry as ASCII art.

    Run with: dune exec examples/critical_path_viz.exe *)

open Netlist

let grid_w = 64

let grid_h = 24

(* Draw the path's pin-to-pin segments onto a character grid. *)
let draw (d : Design.t) (g : Sta.Graph.t) (p : Sta.Paths.path) =
  let canvas = Array.make_matrix grid_h grid_w ' ' in
  let sx x = int_of_float (x /. Geom.Rect.width d.die *. float_of_int (grid_w - 1)) in
  let sy y = grid_h - 1 - int_of_float (y /. Geom.Rect.height d.die *. float_of_int (grid_h - 1)) in
  let clamp v lo hi = max lo (min hi v) in
  let plot x y c =
    let gx = clamp (sx x) 0 (grid_w - 1) and gy = clamp (sy y) 0 (grid_h - 1) in
    canvas.(gy).(gx) <- c
  in
  Array.iter
    (fun a ->
      if g.Sta.Graph.arc_is_net.(a) then begin
        let pi = g.Sta.Graph.arc_from.(a) and pj = g.Sta.Graph.arc_to.(a) in
        let x0 = Design.pin_x d pi and y0 = Design.pin_y d pi in
        let x1 = Design.pin_x d pj and y1 = Design.pin_y d pj in
        let steps = 40 in
        for s = 0 to steps do
          let t = float_of_int s /. float_of_int steps in
          plot (x0 +. (t *. (x1 -. x0))) (y0 +. (t *. (y1 -. y0))) '.'
        done
      end)
    p.arcs;
  Array.iteri
    (fun i pid ->
      let c = if i = 0 then 'S' else if i = Array.length p.pins - 1 then 'E' else 'o' in
      plot (Design.pin_x d pid) (Design.pin_y d pid) c)
    p.pins;
  Array.iter (fun row -> print_endline (String.init grid_w (fun i -> row.(i)))) canvas

let describe_and_draw d name =
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  match Sta.Timer.critical_path timer with
  | None -> print_endline "(no critical path)"
  | Some p ->
      let g = Sta.Timer.graph timer in
      let segs =
        Array.to_list p.arcs
        |> List.filter (fun a -> g.Sta.Graph.arc_is_net.(a))
        |> List.map (fun a ->
               Geom.Point.manhattan
                 (Design.pin_pos d g.Sta.Graph.arc_from.(a))
                 (Design.pin_pos d g.Sta.Graph.arc_to.(a)))
        |> Array.of_list
      in
      Printf.printf "\n--- %s ---\n" name;
      Printf.printf "worst path: slack %.1f ps | wirelength %.1f | max segment %.1f | segment CV %.2f\n"
        p.slack (Util.Stats.sum segs) (Util.Stats.max_elt segs)
        (Util.Stats.coeff_variation segs);
      draw d g p

let () =
  let d = Workloads.Suite.load ~scale:0.25 "sb16" in
  Printf.printf "design %s, clock %.0f ps\n" d.name d.clock_period;
  (* Coarse placement first. *)
  ignore (Tdp.Flow.run Tdp.Flow.Vanilla d);
  describe_and_draw d "coarse placement (wirelength-driven only)";
  let base = { Tdp.Config.default with timing_start = 120; extra_iters = 200 } in
  List.iter
    (fun (name, loss) ->
      let cfg = Tdp.Config.with_loss loss base in
      ignore (Tdp.Flow.run (Tdp.Flow.Efficient cfg) d);
      describe_and_draw d name)
    [
      ("HPWL loss", Tdp.Config.Hpwl_like);
      ("linear Euclidean loss", Tdp.Config.Linear);
      ("quadratic loss (the paper's)", Tdp.Config.Quadratic);
    ];
  print_endline "\nquadratic: best slack, most uniform segment lengths (cf. paper Fig. 3)"
