(** Incremental timing demo: after small placement changes (ECO-style
    moves), [Timer.update_moved] refreshes only the touched nets and
    re-propagates — much cheaper than a full delay recalculation, and
    bit-identical to it.

    Run with: dune exec examples/incremental_sta.exe *)

let () =
  let d = Workloads.Suite.load ~scale:0.5 "sb1" in
  ignore (Gp.Globalplace.run d);
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  Printf.printf "design %s placed: tns=%.1f wns=%.1f (setup)  ths=%.1f whs=%.1f (hold)\n\n"
    d.name (Sta.Timer.tns timer) (Sta.Timer.wns timer) (Sta.Timer.ths timer)
    (Sta.Timer.whs timer);

  let rng = Util.Rng.create 7 in
  let movable = Array.of_list (Netlist.Design.movable_ids d) in
  let moves = 200 in

  (* Timed loop 1: full update after each single-cell move. *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to moves do
    let id = Util.Rng.choose rng movable in
    d.x.{id} <- d.x.{id} +. Util.Rng.float_range rng (-1.0) 1.0;
    Sta.Timer.invalidate timer;
    Sta.Timer.update timer
  done;
  let t_full = Unix.gettimeofday () -. t0 in
  let tns_full = Sta.Timer.tns timer in

  (* Timed loop 2: incremental update for the same move pattern. *)
  let rng = Util.Rng.create 7 in
  let d2 = Workloads.Suite.load ~scale:0.5 "sb1" in
  ignore (Gp.Globalplace.run d2);
  let timer2 = Sta.Timer.create d2 in
  Sta.Timer.update timer2;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to moves do
    let id = Util.Rng.choose rng movable in
    d2.x.{id} <- d2.x.{id} +. Util.Rng.float_range rng (-1.0) 1.0;
    Sta.Timer.update_moved timer2 ~cells:[ id ]
  done;
  let t_inc = Unix.gettimeofday () -. t0 in
  let tns_inc = Sta.Timer.tns timer2 in

  Printf.printf "%d single-cell moves, re-timed after each:\n" moves;
  Printf.printf "  full update       : %7.1f ms total  -> tns %.3f\n" (1e3 *. t_full) tns_full;
  Printf.printf "  incremental update: %7.1f ms total  -> tns %.3f\n" (1e3 *. t_inc) tns_inc;
  Printf.printf "  speedup: %.1fx, results identical: %b\n" (t_full /. t_inc)
    (Float.abs (tns_full -. tns_inc) < 1e-6)
