(** Static timing analysis walkthrough on a hand-built circuit: arrivals,
    required times, slacks, and the two critical-path extraction commands.

    Run with: dune exec examples/sta_tutorial.exe *)

open Netlist

let pin_label (d : Design.t) pid =
  Printf.sprintf "%s.%s" (Design.cell_name d d.pin_owner.(pid)) (Design.pin_name d pid)

let () =
  (* Reconvergent circuit: two paths from the input merge at a NAND.
     The branch through ub is routed much further, so it is critical. *)
  let die = Geom.Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:100.0 in
  let b =
    Builder.create ~name:"tutorial" ~die ~row_height:1.0 ~clock_period:260.0 ~r_per_unit:0.1
      ~c_per_unit:0.2
  in
  let inv = Libcell.find_in_library "INV_X1" in
  let nand = Libcell.find_in_library "NAND2_X1" in
  let pi = Builder.add_input_pad b ~cname:"pi" ~x:0.0 ~y:50.0 in
  let ua = Builder.add_logic b ~cname:"ua" ~lib:inv ~x:40.0 ~y:52.0 () in
  let ub = Builder.add_logic b ~cname:"ub" ~lib:inv ~x:40.0 ~y:95.0 () in
  let um = Builder.add_logic b ~cname:"um" ~lib:nand ~x:60.0 ~y:50.0 () in
  let po = Builder.add_output_pad b ~cname:"po" ~x:100.0 ~y:50.0 in
  let wire name pins =
    let n = Builder.add_net b ~nname:name in
    List.iter (fun (cell, pin_name) -> Builder.connect_by_name b ~net:n ~cell ~pin_name) pins
  in
  wire "n0" [ (pi, "p"); (ua, "a1"); (ub, "a1") ];
  wire "na" [ (ua, "o"); (um, "a1") ];
  wire "nb" [ (ub, "o"); (um, "a2") ];
  wire "no" [ (um, "o"); (po, "p") ];
  let d = Builder.finish b in

  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let g = Sta.Timer.graph timer in
  let arr = Sta.Timer.arrivals timer in
  let slack = Sta.Timer.slacks timer in

  Printf.printf "=== pin-by-pin timing (clock %.0f ps) ===\n" d.clock_period;
  Array.iter
    (fun p ->
      if Float.is_finite arr.(p) then
        Printf.printf "  %-10s arrival %8.2f ps   slack %8.2f ps%s%s\n" (pin_label d p) arr.(p)
          slack.(p)
          (if g.Sta.Graph.is_startpoint.(p) then "   [startpoint]" else "")
          (if g.Sta.Graph.is_endpoint.(p) then "   [endpoint]" else ""))
    g.Sta.Graph.topo;

  Printf.printf "\nWNS = %.2f ps, TNS = %.2f ps\n" (Sta.Timer.wns timer) (Sta.Timer.tns timer);

  Printf.printf "\n=== the two worst paths into the output (k-worst enumeration) ===\n";
  let ep = g.Sta.Graph.endpoints.(0) in
  List.iteri
    (fun i (p : Sta.Paths.path) ->
      Printf.printf "path %d: arrival %.2f ps, slack %.2f ps\n  %s\n" i p.arrival p.slack
        (String.concat " -> " (Array.to_list (Array.map (pin_label d) p.pins))))
    (Sta.Paths.k_worst g arr ~endpoint:ep ~k:2);

  Printf.printf "\n=== moving ub close to the merge point re-times the circuit ===\n";
  d.x.{ub} <- 55.0;
  d.y.{ub} <- 52.0;
  Sta.Timer.invalidate timer;
  Sta.Timer.update timer;
  Printf.printf "after the move: WNS = %.2f ps (was driven by the long ub branch)\n"
    (Sta.Timer.wns timer);
  match Sta.Timer.critical_path timer with
  | Some p ->
      Printf.printf "new critical path: %s\n"
        (String.concat " -> " (Array.to_list (Array.map (pin_label d) p.pins)))
  | None -> ()
