(** Liberty-like standard-cell library.

    Delay model (linear / lumped, per cell arc):
      arc delay   = intrinsic + drive_res * load + slew_sens * input_slew
      output slew = slew_base + slew_load * load
    where [load] is total downstream capacitance (wire + sink pins).
    Together with the Elmore wire model this makes net delay quadratic in
    wire length, which is the property (paper Eq. 7) the quadratic
    attraction loss is designed to match. *)

type pin_kind = Input | Output

type lib_pin = {
  pname : string;
  kind : pin_kind;
  cap : float; (* input capacitance; 0.0 for outputs *)
  off_x : float; (* offset from the cell centre *)
  off_y : float;
}

type t = {
  lname : string;
  width : float;
  height : float;
  pins : lib_pin array;
  drive_res : float;
  intrinsic : float;
  slew_sens : float; (* delay added per unit of input slew *)
  slew_base : float;
  slew_load : float; (* output slew per unit load *)
  is_ff : bool;
  setup : float; (* FF only: setup time at D *)
  hold : float; (* FF only: hold requirement at D *)
  clk_to_q : float; (* FF only: launch delay at Q *)
}

let find_pin t name =
  match Array.find_opt (fun p -> p.pname = name) t.pins with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Libcell.find_pin: %s has no pin %s" t.lname name)

let pin_index t name =
  let rec go i =
    if i >= Array.length t.pins then
      invalid_arg (Printf.sprintf "Libcell.pin_index: %s has no pin %s" t.lname name)
    else if t.pins.(i).pname = name then i
    else go (i + 1)
  in
  go 0

let inputs t = Array.to_list t.pins |> List.filter (fun p -> p.kind = Input)

let outputs t = Array.to_list t.pins |> List.filter (fun p -> p.kind = Output)

(* Evenly space pins along the cell: inputs on the left edge, outputs on
   the right, mirroring row-based standard cell layouts. *)
let layout_pins ~width ~height ins outs =
  let place names kind x =
    let n = List.length names in
    List.mapi
      (fun i (pname, cap) ->
        let fy = (float_of_int i +. 1.0) /. (float_of_int n +. 1.0) in
        { pname; kind; cap; off_x = x; off_y = (fy -. 0.5) *. height })
      names
  in
  Array.of_list (place ins Input (-.width /. 2.0) @ place outs Output (width /. 2.0))

let make_comb ~lname ~width ~drive_res ~intrinsic ~in_caps =
  let height = 1.0 in
  let ins = List.mapi (fun i cap -> (Printf.sprintf "a%d" (i + 1), cap)) in_caps in
  {
    lname;
    width;
    height;
    pins = layout_pins ~width ~height ins [ ("o", 0.0) ];
    drive_res;
    intrinsic;
    slew_sens = 0.20;
    slew_base = 5.0;
    slew_load = 0.8 *. drive_res;
    is_ff = false;
    setup = 0.0;
    hold = 0.0;
    clk_to_q = 0.0;
  }

let make_ff ?(hold = 5.0) ~lname ~width ~drive_res ~clk_to_q ~setup ~d_cap () =
  let height = 1.0 in
  {
    lname;
    width;
    height;
    pins = layout_pins ~width ~height [ ("d", d_cap) ] [ ("q", 0.0) ];
    drive_res;
    intrinsic = 0.0;
    slew_sens = 0.15;
    slew_base = 6.0;
    slew_load = 0.8 *. drive_res;
    is_ff = true;
    setup;
    hold;
    clk_to_q;
  }

(** The default library used by the synthetic benchmark generator.
    Units: distance in sites, capacitance in fF, resistance in kOhm,
    time in ps (so R*C is ps). Values are in the ballpark of a generic
    45nm educational kit. *)
let default_library =
  [|
    make_comb ~lname:"INV_X1" ~width:1.0 ~drive_res:9.0 ~intrinsic:8.0 ~in_caps:[ 1.2 ];
    make_comb ~lname:"INV_X4" ~width:2.0 ~drive_res:2.8 ~intrinsic:10.0 ~in_caps:[ 4.0 ];
    make_comb ~lname:"BUF_X2" ~width:1.5 ~drive_res:5.0 ~intrinsic:16.0 ~in_caps:[ 1.8 ];
    make_comb ~lname:"NAND2_X1" ~width:1.5 ~drive_res:10.0 ~intrinsic:12.0 ~in_caps:[ 1.4; 1.4 ];
    make_comb ~lname:"NOR2_X1" ~width:1.5 ~drive_res:11.0 ~intrinsic:14.0 ~in_caps:[ 1.5; 1.5 ];
    make_comb ~lname:"AND2_X1" ~width:2.0 ~drive_res:9.5 ~intrinsic:18.0 ~in_caps:[ 1.3; 1.3 ];
    make_comb ~lname:"OR2_X1" ~width:2.0 ~drive_res:9.5 ~intrinsic:19.0 ~in_caps:[ 1.3; 1.3 ];
    make_comb ~lname:"XOR2_X1" ~width:2.5 ~drive_res:11.0 ~intrinsic:24.0 ~in_caps:[ 1.9; 1.9 ];
    make_comb ~lname:"AOI21_X1" ~width:2.5 ~drive_res:12.0 ~intrinsic:20.0 ~in_caps:[ 1.6; 1.6; 1.6 ];
    make_comb ~lname:"MUX2_X1" ~width:3.0 ~drive_res:11.5 ~intrinsic:26.0 ~in_caps:[ 1.7; 1.7; 1.5 ];
    make_ff ~lname:"DFF_X1" ~width:4.0 ~drive_res:8.0 ~clk_to_q:30.0 ~setup:25.0 ~d_cap:1.6 ();
  |]

let find_in_library name =
  match Array.find_opt (fun lc -> lc.lname = name) default_library with
  | Some lc -> lc
  | None -> invalid_arg (Printf.sprintf "Libcell.find_in_library: unknown cell %s" name)

(** Combinational cells only (generator picks among these for logic). *)
let comb_cells = Array.of_list (List.filter (fun lc -> not lc.is_ff) (Array.to_list default_library))

let dff = find_in_library "DFF_X1"
