(** The circuit database: cells, pins, nets, die, constraints, and the
    mutable placement state (cell centre coordinates).

    Everything is integer-indexed into flat arrays so placement kernels and
    the timer can run over contiguous data, mirroring how DREAMPlace and
    OpenTimer lay out their data for GPU/parallel kernels. *)

type role =
  | Logic of Libcell.t
  | Input_pad (* primary input: one output pin, timing startpoint *)
  | Output_pad (* primary output: one input pin, timing endpoint *)
  | Blockage (* fixed macro obstruction, no pins *)

type cell = {
  id : int;
  cname : string;
  role : role;
  w : float;
  h : float;
  movable : bool;
  mutable cell_pins : int array;
}

type dir = In | Out

type pin = {
  pid : int;
  owner : int; (* cell id; every pin belongs to a cell or pad *)
  pin_name : string;
  dir : dir;
  off_x : float; (* offset from the owner cell's centre *)
  off_y : float;
  cap : float; (* input capacitance; 0 for outputs *)
  mutable net : int; (* -1 when unconnected *)
}

type net = {
  nid : int;
  nname : string;
  mutable driver : int; (* pin id, -1 when undriven *)
  mutable sinks : int array; (* pin ids *)
  mutable weight : float; (* net weight used by the wirelength objective *)
}

type t = {
  name : string;
  die : Geom.Rect.t;
  row_height : float;
  mutable clock_period : float; (* calibrated after generation *)
  mutable input_delay : float; (* SDC-like: arrival offset at input pads *)
  mutable output_delay : float; (* SDC-like: margin required at output pads *)
  r_per_unit : float; (* wire resistance per unit length *)
  c_per_unit : float; (* wire capacitance per unit length *)
  cells : cell array;
  pins : pin array;
  nets : net array;
  x : float array; (* cell centre coordinates, mutable placement state *)
  y : float array;
}

let num_cells t = Array.length t.cells

let num_pins t = Array.length t.pins

let num_nets t = Array.length t.nets

let is_ff cell = match cell.role with Logic lc -> lc.is_ff | _ -> false

let libcell_of cell =
  match cell.role with
  | Logic lc -> Some lc
  | Input_pad | Output_pad | Blockage -> None

(** Physical position of a pin under the current placement. *)
let pin_x t p = t.x.(p.owner) +. p.off_x

let pin_y t p = t.y.(p.owner) +. p.off_y

let pin_pos t p = Geom.Point.make (pin_x t p) (pin_y t p)

let cell_rect t id =
  let c = t.cells.(id) in
  Geom.Rect.make
    ~xl:(t.x.(id) -. (c.w /. 2.0))
    ~yl:(t.y.(id) -. (c.h /. 2.0))
    ~xh:(t.x.(id) +. (c.w /. 2.0))
    ~yh:(t.y.(id) +. (c.h /. 2.0))

let movable_ids t =
  Array.to_list t.cells |> List.filter (fun c -> c.movable) |> List.map (fun c -> c.id)

let num_movable t =
  Array.fold_left (fun acc c -> if c.movable then acc + 1 else acc) 0 t.cells

let movable_area t =
  Array.fold_left (fun acc c -> if c.movable then acc +. (c.w *. c.h) else acc) 0.0 t.cells

(** HPWL of one net under the current placement (0 for degenerate nets). *)
let net_hpwl t net =
  if net.driver < 0 && Array.length net.sinks = 0 then 0.0
  else begin
    let xmin = ref Float.infinity and xmax = ref Float.neg_infinity in
    let ymin = ref Float.infinity and ymax = ref Float.neg_infinity in
    let visit pid =
      let p = t.pins.(pid) in
      let px = pin_x t p and py = pin_y t p in
      if px < !xmin then xmin := px;
      if px > !xmax then xmax := px;
      if py < !ymin then ymin := py;
      if py > !ymax then ymax := py
    in
    if net.driver >= 0 then visit net.driver;
    Array.iter visit net.sinks;
    if !xmax < !xmin then 0.0 else !xmax -. !xmin +. (!ymax -. !ymin)
  end

(** Total HPWL (unweighted) — the contest wirelength metric. *)
let total_hpwl t = Array.fold_left (fun acc n -> acc +. net_hpwl t n) 0.0 t.nets

(** All pin ids of a net: driver first (when present) then sinks. *)
let net_pins net =
  if net.driver >= 0 then net.driver :: Array.to_list net.sinks else Array.to_list net.sinks

let net_degree net = (if net.driver >= 0 then 1 else 0) + Array.length net.sinks

(** Copy of the current placement, for snapshots / restores. *)
let snapshot t = (Array.copy t.x, Array.copy t.y)

let restore t (sx, sy) =
  Array.blit sx 0 t.x 0 (Array.length sx);
  Array.blit sy 0 t.y 0 (Array.length sy)

(** Clamp every movable cell centre so the cell stays inside the die. *)
let clamp_movable t =
  let die = t.die in
  Array.iter
    (fun c ->
      if c.movable then begin
        let hw = c.w /. 2.0 and hh = c.h /. 2.0 in
        t.x.(c.id) <- Float.max (die.xl +. hw) (Float.min (die.xh -. hw) t.x.(c.id));
        t.y.(c.id) <- Float.max (die.yl +. hh) (Float.min (die.yh -. hh) t.y.(c.id))
      end)
    t.cells

let reset_net_weights t = Array.iter (fun n -> n.weight <- 1.0) t.nets

(* ---- validation ------------------------------------------------------ *)

(* Cap the problem list: a design with a million NaN coordinates should
   produce one summarising line per check, not a million. *)
let max_reported = 20

(** Structural and numeric sanity. [placed] additionally requires every
    movable cell inside the die (checked after legalization, not at flow
    entry — incoming placements may be arbitrary; the flow re-spreads
    them). Returns the list of problems, empty when the design is sane. *)
let validate ?(placed = false) t =
  let problems = ref [] in
  let count = ref 0 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        incr count;
        if !count <= max_reported then problems := s :: !problems
        else if !count = max_reported + 1 then problems := "... further problems elided" :: !problems)
      fmt
  in
  let fin v = Float.is_finite v in
  let die = t.die in
  if not (fin die.xl && fin die.yl && fin die.xh && fin die.yh) then
    add "die has non-finite bounds"
  else begin
    if die.xh <= die.xl || die.yh <= die.yl then add "die has non-positive extent";
    if not (fin t.row_height) || t.row_height <= 0.0 then
      add "row height %g is not positive and finite" t.row_height
    else if die.yh -. die.yl < t.row_height then
      add "die height %g holds no full row (row height %g)" (die.yh -. die.yl) t.row_height
  end;
  if not (fin t.clock_period) || t.clock_period <= 0.0 then
    add "clock period %g is not positive and finite" t.clock_period;
  if not (fin t.input_delay && fin t.output_delay) then add "non-finite IO delay";
  if not (fin t.r_per_unit) || t.r_per_unit < 0.0 then add "wire resistance %g invalid" t.r_per_unit;
  if not (fin t.c_per_unit) || t.c_per_unit < 0.0 then add "wire capacitance %g invalid" t.c_per_unit;
  Array.iter
    (fun c ->
      if not (fin t.x.(c.id) && fin t.y.(c.id)) then
        add "cell %s has non-finite coordinates" c.cname;
      if not (fin c.w && fin c.h) || c.w < 0.0 || c.h < 0.0 then
        add "cell %s has invalid size %gx%g" c.cname c.w c.h
      else if c.movable && (c.w <= 0.0 || c.h <= 0.0) then
        add "movable cell %s has zero area" c.cname
      else if placed && c.movable && fin t.x.(c.id) && fin t.y.(c.id) then begin
        (* Movable cells only: pads and macros legitimately sit on (or
           beyond) the die periphery and are never moved by the flow. *)
        let tol = 1e-6 in
        if
          t.x.(c.id) -. (c.w /. 2.0) < die.xl -. tol
          || t.x.(c.id) +. (c.w /. 2.0) > die.xh +. tol
          || t.y.(c.id) -. (c.h /. 2.0) < die.yl -. tol
          || t.y.(c.id) +. (c.h /. 2.0) > die.yh +. tol
        then add "movable cell %s placed outside the die" c.cname
      end)
    t.cells;
  Array.iter
    (fun p ->
      if p.owner < 0 || p.owner >= num_cells t then add "pin %d has no owner cell" p.pid
      else begin
        let c = t.cells.(p.owner) in
        let tol = 1e-6 in
        if not (fin p.off_x && fin p.off_y) then
          add "pin %s/%s has non-finite offset" c.cname p.pin_name
        else if
          Float.abs p.off_x > (c.w /. 2.0) +. tol || Float.abs p.off_y > (c.h /. 2.0) +. tol
        then
          add "pin %s/%s offset (%g, %g) outside cell bounds %gx%g" c.cname p.pin_name p.off_x
            p.off_y c.w c.h;
        if not (fin p.cap) || p.cap < 0.0 then
          add "pin %s/%s has invalid capacitance %g" c.cname p.pin_name p.cap
      end)
    t.pins;
  Array.iter
    (fun n ->
      if n.driver < 0 then add "net %s has no driver" n.nname;
      if Array.length n.sinks = 0 then add "net %s has no sinks" n.nname;
      if not (fin n.weight) || n.weight < 0.0 then add "net %s has invalid weight %g" n.nname n.weight;
      Array.iter
        (fun pid ->
          if pid < 0 || pid >= num_pins t then add "net %s references missing pin %d" n.nname pid)
        n.sinks)
    t.nets;
  List.rev !problems

(** [validate], raising [Util.Errors.Error (Invalid_design _)] on any
    problem. *)
let validate_exn ?placed t =
  match validate ?placed t with
  | [] -> ()
  | problems -> Util.Errors.invalid_design ~design:t.name problems
