(** The circuit database as a struct-of-arrays: every cell/pin/net field
    lives in its own flat array indexed by id, adjacency is CSR (offsets
    plus flat id arrays), and names sit in side tables off the hot path.

    Float fields are Bigarray [float64] vectors so placement and timing
    kernels read/write them zero-copy (the same layout DREAMPlace-style
    placers feed their kernels); int fields are plain [int array]s. There
    are no per-cell/pin/net records to chase and nothing in a steady-state
    kernel loop boxes a float. *)

type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let farr_create n : farr = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let farr_of_array (a : float array) : farr =
  let f = farr_create (Array.length a) in
  Array.iteri (fun i v -> f.{i} <- v) a;
  f

let farr_copy (a : farr) : farr =
  let f = farr_create (Bigarray.Array1.dim a) in
  Bigarray.Array1.blit a f;
  f

let farr_blit (src : farr) (dst : farr) = Bigarray.Array1.blit src dst

let farr_fill (a : farr) v = Bigarray.Array1.fill a v

type kind = Logic | Input_pad | Output_pad | Blockage

type dir = In | Out

type t = {
  name : string;
  die : Geom.Rect.t;
  row_height : float;
  mutable clock_period : float; (* calibrated after generation *)
  mutable input_delay : float; (* SDC-like: arrival offset at input pads *)
  mutable output_delay : float; (* SDC-like: margin required at output pads *)
  mutable r_per_unit : float; (* wire resistance per unit length *)
  mutable c_per_unit : float; (* wire capacitance per unit length *)
  n_cells : int;
  n_pins : int;
  n_nets : int;
  (* -- cell fields, indexed by cell id -- *)
  x : farr; (* cell centre coordinates, mutable placement state *)
  y : farr;
  w : farr;
  h : farr;
  movable : Bytes.t; (* '\001' when movable *)
  kinds : Bytes.t; (* kind code, see [kind_code] *)
  lib_idx : int array; (* index into [libs]; -1 for pads/blockages *)
  libs : Libcell.t array; (* deduplicated library side table *)
  cell_pin_off : int array; (* CSR cell->pins, length n_cells+1 *)
  cell_pin_ids : int array;
  (* -- pin fields, indexed by pin id -- *)
  pin_owner : int array;
  pin_net : int array;
  pin_dirs : Bytes.t; (* 0 = In, 1 = Out *)
  pin_off_x : farr; (* offset from the owner cell's centre *)
  pin_off_y : farr;
  pin_cap : farr; (* input capacitance; 0 for outputs *)
  (* -- net fields, indexed by net id -- *)
  net_driver : int array; (* pin id, -1 when undriven *)
  net_weight : farr; (* net weight in the wirelength objective *)
  net_pin_off : int array; (* CSR net->pins, length n_nets+1; driver first *)
  net_pin_ids : int array;
  (* -- names: side tables, never touched by kernels -- *)
  cell_names : string array;
  pin_names : string array;
  net_names : string array;
}

let num_cells t = t.n_cells

let num_pins t = t.n_pins

let num_nets t = t.n_nets

(* ---- kind / dir codecs ----------------------------------------------- *)

let kind_code = function
  | Logic -> '\000'
  | Input_pad -> '\001'
  | Output_pad -> '\002'
  | Blockage -> '\003'

let kind t i =
  match Bytes.unsafe_get t.kinds i with
  | '\000' -> Logic
  | '\001' -> Input_pad
  | '\002' -> Output_pad
  | _ -> Blockage

let dir_code = function In -> '\000' | Out -> '\001'

let pin_dir t p = if Bytes.unsafe_get t.pin_dirs p = '\000' then In else Out

let is_movable t i = Bytes.unsafe_get t.movable i <> '\000'

let is_ff t i =
  let li = t.lib_idx.(i) in
  li >= 0 && t.libs.(li).Libcell.is_ff

let libcell t i =
  let li = t.lib_idx.(i) in
  if li < 0 then invalid_arg "Design.libcell: cell has no library cell";
  t.libs.(li)

let libcell_of t i =
  let li = t.lib_idx.(i) in
  if li < 0 then None else Some t.libs.(li)

let cell_name t i = t.cell_names.(i)

let pin_name t p = t.pin_names.(p)

let net_name t n = t.net_names.(n)

(** Physical position of a pin under the current placement. *)
let pin_x t p = t.x.{t.pin_owner.(p)} +. t.pin_off_x.{p}

let pin_y t p = t.y.{t.pin_owner.(p)} +. t.pin_off_y.{p}

let pin_pos t p = Geom.Point.make (pin_x t p) (pin_y t p)

let cell_rect t id =
  Geom.Rect.make
    ~xl:(t.x.{id} -. (t.w.{id} /. 2.0))
    ~yl:(t.y.{id} -. (t.h.{id} /. 2.0))
    ~xh:(t.x.{id} +. (t.w.{id} /. 2.0))
    ~yh:(t.y.{id} +. (t.h.{id} /. 2.0))

(* ---- adjacency -------------------------------------------------------- *)

let cell_num_pins t i = t.cell_pin_off.(i + 1) - t.cell_pin_off.(i)

let iter_cell_pins t i f =
  for k = t.cell_pin_off.(i) to t.cell_pin_off.(i + 1) - 1 do
    f t.cell_pin_ids.(k)
  done

let cell_pins t i =
  Array.sub t.cell_pin_ids t.cell_pin_off.(i) (cell_num_pins t i)

let net_degree t n = t.net_pin_off.(n + 1) - t.net_pin_off.(n)

let iter_net_pins t n f =
  for k = t.net_pin_off.(n) to t.net_pin_off.(n + 1) - 1 do
    f t.net_pin_ids.(k)
  done

(** Pin ids of a net: driver first, then sinks in connection order. *)
let net_pins t n = Array.sub t.net_pin_ids t.net_pin_off.(n) (net_degree t n)

let net_num_sinks t n = net_degree t n - 1

(** Sink [k] (0-based, connection order) of net [n]. *)
let net_sink t n k = t.net_pin_ids.(t.net_pin_off.(n) + 1 + k)

let iter_net_sinks t n f =
  for k = t.net_pin_off.(n) + 1 to t.net_pin_off.(n + 1) - 1 do
    f t.net_pin_ids.(k)
  done

(* ---- aggregates ------------------------------------------------------- *)

let movable_ids t =
  let acc = ref [] in
  for i = t.n_cells - 1 downto 0 do
    if is_movable t i then acc := i :: !acc
  done;
  !acc

let num_movable t =
  let n = ref 0 in
  for i = 0 to t.n_cells - 1 do
    if is_movable t i then incr n
  done;
  !n

let movable_area t =
  let a = ref 0.0 in
  for i = 0 to t.n_cells - 1 do
    if is_movable t i then a := !a +. (t.w.{i} *. t.h.{i})
  done;
  !a

(** HPWL of one net into caller-owned scratch [m] (≥ 5 slots; the result
    is also left in [m.(4)]). The running min/max live in float-array
    slots — they stay unboxed, whereas float [ref] updates box one float
    each, per pin, and a per-call scratch array would allocate per net on
    the evaluate path. 0 for degenerate nets. *)
let net_hpwl_into t n (m : float array) =
  let lo = t.net_pin_off.(n) and hi = t.net_pin_off.(n + 1) in
  if hi <= lo then m.(4) <- 0.0
  else begin
    m.(0) <- Float.infinity;
    m.(1) <- Float.neg_infinity;
    m.(2) <- Float.infinity;
    m.(3) <- Float.neg_infinity;
    for k = lo to hi - 1 do
      let p = t.net_pin_ids.(k) in
      let px = t.x.{t.pin_owner.(p)} +. t.pin_off_x.{p} in
      let py = t.y.{t.pin_owner.(p)} +. t.pin_off_y.{p} in
      if px < m.(0) then m.(0) <- px;
      if px > m.(1) then m.(1) <- px;
      if py < m.(2) then m.(2) <- py;
      if py > m.(3) then m.(3) <- py
    done;
    m.(4) <- (if m.(1) < m.(0) then 0.0 else m.(1) -. m.(0) +. (m.(3) -. m.(2)))
  end

(** HPWL of one net under the current placement (allocating wrapper). *)
let net_hpwl t n =
  let m = Array.make 5 0.0 in
  net_hpwl_into t n m;
  m.(4)

(** Total HPWL (unweighted) — the contest wirelength metric. One scratch
    array for the whole sweep; [m.(5)] accumulates. *)
let total_hpwl t =
  let m = Array.make 6 0.0 in
  for n = 0 to t.n_nets - 1 do
    net_hpwl_into t n m;
    m.(5) <- m.(5) +. m.(4)
  done;
  m.(5)

(** Copy of the current placement, for snapshots / restores. *)
let snapshot t = (farr_copy t.x, farr_copy t.y)

let restore t ((sx : farr), (sy : farr)) =
  farr_blit sx t.x;
  farr_blit sy t.y

(** Clamp every movable cell centre so the cell stays inside the die. *)
let clamp_movable t =
  let die = t.die in
  for i = 0 to t.n_cells - 1 do
    if is_movable t i then begin
      let hw = t.w.{i} /. 2.0 and hh = t.h.{i} /. 2.0 in
      t.x.{i} <- Float.max (die.xl +. hw) (Float.min (die.xh -. hw) t.x.{i});
      t.y.{i} <- Float.max (die.yl +. hh) (Float.min (die.yh -. hh) t.y.{i})
    end
  done

let reset_net_weights t = farr_fill t.net_weight 1.0

(* ---- memory footprint ------------------------------------------------- *)

type footprint = {
  cell_bytes : int;
  pin_bytes : int;
  net_bytes : int;
  adjacency_bytes : int;
  name_bytes : int;
  total_bytes : int;
}

(* Sizes are the payloads' heap footprints: 8 bytes per float64/int word,
   strings rounded up to the word with their header. *)
let footprint t =
  let wb = 8 in
  let farr_b (a : farr) = wb * Bigarray.Array1.dim a in
  let iarr_b (a : int array) = wb * Array.length a in
  let bytes_b (b : Bytes.t) = Bytes.length b in
  let str_b s = wb * (1 + ((String.length s + wb) / wb)) in
  let strs_b a = Array.fold_left (fun acc s -> acc + str_b s) (wb * Array.length a) a in
  let cell_bytes =
    farr_b t.x + farr_b t.y + farr_b t.w + farr_b t.h + bytes_b t.movable + bytes_b t.kinds
    + iarr_b t.lib_idx
  in
  let pin_bytes =
    iarr_b t.pin_owner + iarr_b t.pin_net + bytes_b t.pin_dirs + farr_b t.pin_off_x
    + farr_b t.pin_off_y + farr_b t.pin_cap
  in
  let net_bytes = iarr_b t.net_driver + farr_b t.net_weight in
  let adjacency_bytes =
    iarr_b t.cell_pin_off + iarr_b t.cell_pin_ids + iarr_b t.net_pin_off + iarr_b t.net_pin_ids
  in
  let name_bytes = strs_b t.cell_names + strs_b t.pin_names + strs_b t.net_names in
  {
    cell_bytes;
    pin_bytes;
    net_bytes;
    adjacency_bytes;
    name_bytes;
    total_bytes = cell_bytes + pin_bytes + net_bytes + adjacency_bytes + name_bytes;
  }

(* ---- validation ------------------------------------------------------ *)

(* Cap the problem list: a design with a million NaN coordinates should
   produce one summarising line per check, not a million. *)
let max_reported = 20

(** Structural and numeric sanity. [placed] additionally requires every
    movable cell inside the die (checked after legalization, not at flow
    entry — incoming placements may be arbitrary; the flow re-spreads
    them). Returns the list of problems, empty when the design is sane. *)
let validate ?(placed = false) t =
  let problems = ref [] in
  let count = ref 0 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        incr count;
        if !count <= max_reported then problems := s :: !problems
        else if !count = max_reported + 1 then problems := "... further problems elided" :: !problems)
      fmt
  in
  let fin v = Float.is_finite v in
  let die = t.die in
  if not (fin die.xl && fin die.yl && fin die.xh && fin die.yh) then
    add "die has non-finite bounds"
  else begin
    if die.xh <= die.xl || die.yh <= die.yl then add "die has non-positive extent";
    if not (fin t.row_height) || t.row_height <= 0.0 then
      add "row height %g is not positive and finite" t.row_height
    else if die.yh -. die.yl < t.row_height then
      add "die height %g holds no full row (row height %g)" (die.yh -. die.yl) t.row_height
  end;
  if not (fin t.clock_period) || t.clock_period <= 0.0 then
    add "clock period %g is not positive and finite" t.clock_period;
  if not (fin t.input_delay && fin t.output_delay) then add "non-finite IO delay";
  if not (fin t.r_per_unit) || t.r_per_unit < 0.0 then add "wire resistance %g invalid" t.r_per_unit;
  if not (fin t.c_per_unit) || t.c_per_unit < 0.0 then add "wire capacitance %g invalid" t.c_per_unit;
  for i = 0 to t.n_cells - 1 do
    let cw = t.w.{i} and ch = t.h.{i} in
    if not (fin t.x.{i} && fin t.y.{i}) then
      add "cell %s has non-finite coordinates" t.cell_names.(i);
    if not (fin cw && fin ch) || cw < 0.0 || ch < 0.0 then
      add "cell %s has invalid size %gx%g" t.cell_names.(i) cw ch
    else if is_movable t i && (cw <= 0.0 || ch <= 0.0) then
      add "movable cell %s has zero area" t.cell_names.(i)
    else if placed && is_movable t i && fin t.x.{i} && fin t.y.{i} then begin
      (* Movable cells only: pads and macros legitimately sit on (or
         beyond) the die periphery and are never moved by the flow. *)
      let tol = 1e-6 in
      if
        t.x.{i} -. (cw /. 2.0) < die.xl -. tol
        || t.x.{i} +. (cw /. 2.0) > die.xh +. tol
        || t.y.{i} -. (ch /. 2.0) < die.yl -. tol
        || t.y.{i} +. (ch /. 2.0) > die.yh +. tol
      then add "movable cell %s placed outside the die" t.cell_names.(i)
    end
  done;
  for p = 0 to t.n_pins - 1 do
    let owner = t.pin_owner.(p) in
    if owner < 0 || owner >= t.n_cells then add "pin %d has no owner cell" p
    else begin
      let tol = 1e-6 in
      if not (fin t.pin_off_x.{p} && fin t.pin_off_y.{p}) then
        add "pin %s/%s has non-finite offset" t.cell_names.(owner) t.pin_names.(p)
      else if
        Float.abs t.pin_off_x.{p} > (t.w.{owner} /. 2.0) +. tol
        || Float.abs t.pin_off_y.{p} > (t.h.{owner} /. 2.0) +. tol
      then
        add "pin %s/%s offset (%g, %g) outside cell bounds %gx%g" t.cell_names.(owner)
          t.pin_names.(p) t.pin_off_x.{p} t.pin_off_y.{p} t.w.{owner} t.h.{owner};
      if not (fin t.pin_cap.{p}) || t.pin_cap.{p} < 0.0 then
        add "pin %s/%s has invalid capacitance %g" t.cell_names.(owner) t.pin_names.(p)
          t.pin_cap.{p}
    end
  done;
  for n = 0 to t.n_nets - 1 do
    if t.net_driver.(n) < 0 then add "net %s has no driver" t.net_names.(n);
    if net_degree t n - (if t.net_driver.(n) >= 0 then 1 else 0) = 0 then
      add "net %s has no sinks" t.net_names.(n);
    if not (fin t.net_weight.{n}) || t.net_weight.{n} < 0.0 then
      add "net %s has invalid weight %g" t.net_names.(n) t.net_weight.{n};
    for k = t.net_pin_off.(n) to t.net_pin_off.(n + 1) - 1 do
      let pid = t.net_pin_ids.(k) in
      if pid < 0 || pid >= t.n_pins then
        add "net %s references missing pin %d" t.net_names.(n) pid
    done
  done;
  List.rev !problems

(** [validate], raising [Util.Errors.Error (Invalid_design _)] on any
    problem. *)
let validate_exn ?placed t =
  match validate ?placed t with
  | [] -> ()
  | problems -> Util.Errors.invalid_design ~design:t.name problems
