(** The circuit database: cells, pins, nets, die, constraints, and the
    mutable placement state (cell centre coordinates).

    Everything is integer-indexed into flat arrays so placement kernels and
    the timer can run over contiguous data, mirroring how DREAMPlace and
    OpenTimer lay out their data for GPU/parallel kernels. *)

type role =
  | Logic of Libcell.t
  | Input_pad (* primary input: one output pin, timing startpoint *)
  | Output_pad (* primary output: one input pin, timing endpoint *)
  | Blockage (* fixed macro obstruction, no pins *)

type cell = {
  id : int;
  cname : string;
  role : role;
  w : float;
  h : float;
  movable : bool;
  mutable cell_pins : int array;
}

type dir = In | Out

type pin = {
  pid : int;
  owner : int; (* cell id; every pin belongs to a cell or pad *)
  pin_name : string;
  dir : dir;
  off_x : float; (* offset from the owner cell's centre *)
  off_y : float;
  cap : float; (* input capacitance; 0 for outputs *)
  mutable net : int; (* -1 when unconnected *)
}

type net = {
  nid : int;
  nname : string;
  mutable driver : int; (* pin id, -1 when undriven *)
  mutable sinks : int array; (* pin ids *)
  mutable weight : float; (* net weight used by the wirelength objective *)
}

type t = {
  name : string;
  die : Geom.Rect.t;
  row_height : float;
  mutable clock_period : float; (* calibrated after generation *)
  mutable input_delay : float; (* SDC-like: arrival offset at input pads *)
  mutable output_delay : float; (* SDC-like: margin required at output pads *)
  r_per_unit : float; (* wire resistance per unit length *)
  c_per_unit : float; (* wire capacitance per unit length *)
  cells : cell array;
  pins : pin array;
  nets : net array;
  x : float array; (* cell centre coordinates, mutable placement state *)
  y : float array;
}

let num_cells t = Array.length t.cells

let num_pins t = Array.length t.pins

let num_nets t = Array.length t.nets

let is_ff cell = match cell.role with Logic lc -> lc.is_ff | _ -> false

let libcell_of cell =
  match cell.role with
  | Logic lc -> Some lc
  | Input_pad | Output_pad | Blockage -> None

(** Physical position of a pin under the current placement. *)
let pin_x t p = t.x.(p.owner) +. p.off_x

let pin_y t p = t.y.(p.owner) +. p.off_y

let pin_pos t p = Geom.Point.make (pin_x t p) (pin_y t p)

let cell_rect t id =
  let c = t.cells.(id) in
  Geom.Rect.make
    ~xl:(t.x.(id) -. (c.w /. 2.0))
    ~yl:(t.y.(id) -. (c.h /. 2.0))
    ~xh:(t.x.(id) +. (c.w /. 2.0))
    ~yh:(t.y.(id) +. (c.h /. 2.0))

let movable_ids t =
  Array.to_list t.cells |> List.filter (fun c -> c.movable) |> List.map (fun c -> c.id)

let num_movable t =
  Array.fold_left (fun acc c -> if c.movable then acc + 1 else acc) 0 t.cells

let movable_area t =
  Array.fold_left (fun acc c -> if c.movable then acc +. (c.w *. c.h) else acc) 0.0 t.cells

(** HPWL of one net under the current placement (0 for degenerate nets). *)
let net_hpwl t net =
  if net.driver < 0 && Array.length net.sinks = 0 then 0.0
  else begin
    let xmin = ref Float.infinity and xmax = ref Float.neg_infinity in
    let ymin = ref Float.infinity and ymax = ref Float.neg_infinity in
    let visit pid =
      let p = t.pins.(pid) in
      let px = pin_x t p and py = pin_y t p in
      if px < !xmin then xmin := px;
      if px > !xmax then xmax := px;
      if py < !ymin then ymin := py;
      if py > !ymax then ymax := py
    in
    if net.driver >= 0 then visit net.driver;
    Array.iter visit net.sinks;
    if !xmax < !xmin then 0.0 else !xmax -. !xmin +. (!ymax -. !ymin)
  end

(** Total HPWL (unweighted) — the contest wirelength metric. *)
let total_hpwl t = Array.fold_left (fun acc n -> acc +. net_hpwl t n) 0.0 t.nets

(** All pin ids of a net: driver first (when present) then sinks. *)
let net_pins net =
  if net.driver >= 0 then net.driver :: Array.to_list net.sinks else Array.to_list net.sinks

let net_degree net = (if net.driver >= 0 then 1 else 0) + Array.length net.sinks

(** Copy of the current placement, for snapshots / restores. *)
let snapshot t = (Array.copy t.x, Array.copy t.y)

let restore t (sx, sy) =
  Array.blit sx 0 t.x 0 (Array.length sx);
  Array.blit sy 0 t.y 0 (Array.length sy)

(** Clamp every movable cell centre so the cell stays inside the die. *)
let clamp_movable t =
  let die = t.die in
  Array.iter
    (fun c ->
      if c.movable then begin
        let hw = c.w /. 2.0 and hh = c.h /. 2.0 in
        t.x.(c.id) <- Float.max (die.xl +. hw) (Float.min (die.xh -. hw) t.x.(c.id));
        t.y.(c.id) <- Float.max (die.yl +. hh) (Float.min (die.yh -. hh) t.y.(c.id))
      end)
    t.cells

let reset_net_weights t = Array.iter (fun n -> n.weight <- 1.0) t.nets
