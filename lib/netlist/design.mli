(** The circuit database: cells, pins, nets, die, constraints, and the
    mutable placement state (cell centre coordinates).

    Everything is integer-indexed into flat arrays so that placement
    kernels and the timer run over contiguous data, mirroring how
    DREAMPlace and OpenTimer lay out theirs. *)

type role =
  | Logic of Libcell.t
  | Input_pad (* primary input: one output pin, timing startpoint *)
  | Output_pad (* primary output: one input pin, timing endpoint *)
  | Blockage (* fixed macro obstruction, no pins *)

type cell = {
  id : int;
  cname : string;
  role : role;
  w : float;
  h : float;
  movable : bool;
  mutable cell_pins : int array;
}

type dir = In | Out

type pin = {
  pid : int;
  owner : int; (* cell id; every pin belongs to a cell or pad *)
  pin_name : string;
  dir : dir;
  off_x : float; (* offset from the owner cell's centre *)
  off_y : float;
  cap : float; (* input capacitance; 0 for outputs *)
  mutable net : int; (* -1 when unconnected *)
}

type net = {
  nid : int;
  nname : string;
  mutable driver : int; (* pin id, -1 when undriven *)
  mutable sinks : int array; (* pin ids *)
  mutable weight : float; (* net weight in the wirelength objective *)
}

type t = {
  name : string;
  die : Geom.Rect.t;
  row_height : float;
  mutable clock_period : float; (* calibrated after generation *)
  mutable input_delay : float; (* SDC-like: arrival offset at input pads *)
  mutable output_delay : float; (* SDC-like: margin required at output pads *)
  r_per_unit : float; (* wire resistance per unit length *)
  c_per_unit : float; (* wire capacitance per unit length *)
  cells : cell array;
  pins : pin array;
  nets : net array;
  x : float array; (* cell centre coordinates, mutable placement state *)
  y : float array;
}

val num_cells : t -> int

val num_pins : t -> int

val num_nets : t -> int

val is_ff : cell -> bool

val libcell_of : cell -> Libcell.t option

(** Physical pin position under the current placement. *)
val pin_x : t -> pin -> float

val pin_y : t -> pin -> float

val pin_pos : t -> pin -> Geom.Point.t

(** Occupied rectangle of a cell under the current placement. *)
val cell_rect : t -> int -> Geom.Rect.t

val movable_ids : t -> int list

val num_movable : t -> int

val movable_area : t -> float

(** HPWL of one net (0 for degenerate nets). *)
val net_hpwl : t -> net -> float

(** Total unweighted HPWL — the contest wirelength metric. *)
val total_hpwl : t -> float

(** Pin ids of a net: driver first (when present), then sinks. *)
val net_pins : net -> int list

val net_degree : net -> int

(** Copy of the current placement, for checkpoints. *)
val snapshot : t -> float array * float array

val restore : t -> float array * float array -> unit

(** Clamp every movable cell centre so the cell stays inside the die. *)
val clamp_movable : t -> unit

val reset_net_weights : t -> unit

(** Structural and numeric sanity: finite coordinates/constraints, pin
    offsets inside cell bounds, driven nonempty nets, positive clock
    period and row height. [placed] (default false) additionally requires
    every movable cell inside the die (pads and fixed macros may sit on
    the periphery) — used after legalization; flow entry skips it because
    incoming placements may be arbitrary. Returns the problem list
    (capped), empty when sane. *)
val validate : ?placed:bool -> t -> string list

(** [validate], raising [Util.Errors.Error (Invalid_design _)] on any
    problem. *)
val validate_exn : ?placed:bool -> t -> unit
