(** The circuit database as a struct-of-arrays: every cell/pin/net field
    lives in its own flat array indexed by id, adjacency is CSR (offsets
    plus flat id arrays), and names sit in side tables off the hot path.

    Float fields are Bigarray [float64] vectors shared zero-copy with the
    placement/timing kernels (DREAMPlace-style layout); int fields are
    plain [int array]s. Kernels index the public arrays directly — there
    are no per-cell/pin/net records and no boxing in steady-state loops. *)

(** Flat [float64] vector, C layout: [a.{i}] reads, [a.{i} <- v] writes. *)
type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val farr_create : int -> farr

val farr_of_array : float array -> farr

val farr_copy : farr -> farr

val farr_blit : farr -> farr -> unit

val farr_fill : farr -> float -> unit

type kind =
  | Logic
  | Input_pad (* primary input: one output pin, timing startpoint *)
  | Output_pad (* primary output: one input pin, timing endpoint *)
  | Blockage (* fixed macro obstruction, no pins *)

type dir = In | Out

type t = {
  name : string;
  die : Geom.Rect.t;
  row_height : float;
  mutable clock_period : float; (* calibrated after generation *)
  mutable input_delay : float; (* SDC-like: arrival offset at input pads *)
  mutable output_delay : float; (* SDC-like: margin required at output pads *)
  mutable r_per_unit : float; (* wire resistance per unit length; set_wire_rc may retarget *)
  mutable c_per_unit : float; (* wire capacitance per unit length *)
  n_cells : int;
  n_pins : int;
  n_nets : int;
  (* -- cell fields, indexed by cell id -- *)
  x : farr; (* cell centre coordinates, mutable placement state *)
  y : farr;
  w : farr;
  h : farr;
  movable : Bytes.t; (* '\001' when movable; use [is_movable] *)
  kinds : Bytes.t; (* kind codes; use [kind] *)
  lib_idx : int array; (* index into [libs]; -1 for pads/blockages *)
  libs : Libcell.t array; (* deduplicated library side table *)
  cell_pin_off : int array; (* CSR cell->pins, length n_cells+1 *)
  cell_pin_ids : int array;
  (* -- pin fields, indexed by pin id -- *)
  pin_owner : int array;
  pin_net : int array; (* -1 when unconnected *)
  pin_dirs : Bytes.t; (* use [pin_dir] *)
  pin_off_x : farr; (* offset from the owner cell's centre *)
  pin_off_y : farr;
  pin_cap : farr; (* input capacitance; 0 for outputs *)
  (* -- net fields, indexed by net id -- *)
  net_driver : int array; (* pin id, -1 when undriven *)
  net_weight : farr; (* net weight in the wirelength objective *)
  net_pin_off : int array; (* CSR net->pins, length n_nets+1; driver first *)
  net_pin_ids : int array;
  (* -- names: side tables, never touched by kernels -- *)
  cell_names : string array;
  pin_names : string array;
  net_names : string array;
}

val num_cells : t -> int

val num_pins : t -> int

val num_nets : t -> int

val kind_code : kind -> char

val kind : t -> int -> kind

val dir_code : dir -> char

val pin_dir : t -> int -> dir

val is_movable : t -> int -> bool

val is_ff : t -> int -> bool

(** The cell's library cell; raises [Invalid_argument] for pads and
    blockages — guard with [kind]. *)
val libcell : t -> int -> Libcell.t

val libcell_of : t -> int -> Libcell.t option

val cell_name : t -> int -> string

val pin_name : t -> int -> string

val net_name : t -> int -> string

(** Physical pin position under the current placement. *)
val pin_x : t -> int -> float

val pin_y : t -> int -> float

val pin_pos : t -> int -> Geom.Point.t

(** Occupied rectangle of a cell under the current placement. *)
val cell_rect : t -> int -> Geom.Rect.t

val cell_num_pins : t -> int -> int

val iter_cell_pins : t -> int -> (int -> unit) -> unit

(** Fresh array of the cell's pin ids (cold paths; hot loops should walk
    [cell_pin_off]/[cell_pin_ids] directly). *)
val cell_pins : t -> int -> int array

val net_degree : t -> int -> int

val iter_net_pins : t -> int -> (int -> unit) -> unit

(** Fresh array of the net's pin ids, driver first then sinks in
    connection order (cold paths; hot loops walk the CSR directly). *)
val net_pins : t -> int -> int array

val net_num_sinks : t -> int -> int

(** Sink [k] (0-based, connection order) of net [n]. *)
val net_sink : t -> int -> int -> int

val iter_net_sinks : t -> int -> (int -> unit) -> unit

val movable_ids : t -> int list

val num_movable : t -> int

val movable_area : t -> float

(** HPWL of one net into caller-owned scratch (≥ 5 float slots; result
    left in slot 4). Allocation-free — for sweeps over many nets. *)
val net_hpwl_into : t -> int -> float array -> unit

(** HPWL of one net (0 for degenerate nets). *)
val net_hpwl : t -> int -> float

(** Total unweighted HPWL — the contest wirelength metric. *)
val total_hpwl : t -> float

(** Copy of the current placement, for checkpoints. *)
val snapshot : t -> farr * farr

val restore : t -> farr * farr -> unit

(** Clamp every movable cell centre so the cell stays inside the die. *)
val clamp_movable : t -> unit

val reset_net_weights : t -> unit

(** Heap bytes by field group — the SoA win made visible per design
    (see [bin/design_stats]). *)
type footprint = {
  cell_bytes : int; (* x/y/w/h + movable/kind flags + lib indices *)
  pin_bytes : int; (* owner/net/dir + offsets + caps *)
  net_bytes : int; (* driver + weight *)
  adjacency_bytes : int; (* both CSRs *)
  name_bytes : int; (* side tables *)
  total_bytes : int;
}

val footprint : t -> footprint

(** Structural and numeric sanity: finite coordinates/constraints, pin
    offsets inside cell bounds, driven nonempty nets, positive clock
    period and row height. [placed] (default false) additionally requires
    every movable cell inside the die (pads and fixed macros may sit on
    the periphery) — used after legalization; flow entry skips it because
    incoming placements may be arbitrary. Returns the problem list
    (capped), empty when sane. *)
val validate : ?placed:bool -> t -> string list

(** [validate], raising [Util.Errors.Error (Invalid_design _)] on any
    problem. *)
val validate_exn : ?placed:bool -> t -> unit
