(** Incremental construction of a {!Design.t}.

    Streams every field through monomorphic {!Util.Gvec} vectors (no
    per-element boxing, no intermediate lists), checks structural
    invariants (single driver per net, no reconnection) as connections
    arrive, and freezes into the struct-of-arrays database with a
    counting-sort CSR build. All operations are amortised O(1). *)

module Gv = Util.Gvec

type t = {
  name : string;
  die : Geom.Rect.t;
  row_height : float;
  clock_period : float;
  r_per_unit : float;
  c_per_unit : float;
  (* cells *)
  cell_names : string Gv.t;
  kinds : Gv.Int.t;
  lib_idx : Gv.Int.t;
  libs : Libcell.t Gv.t;
  lib_tbl : (string, int) Hashtbl.t; (* lname -> index into libs *)
  ws : Gv.Float.t;
  hs : Gv.Float.t;
  movs : Gv.Int.t;
  xs : Gv.Float.t;
  ys : Gv.Float.t;
  first_pin : Gv.Int.t; (* pins are created contiguously per cell *)
  (* pins *)
  pin_names : string Gv.t;
  pin_owner : Gv.Int.t;
  pin_dir : Gv.Int.t; (* 0 = In, 1 = Out *)
  pin_off_x : Gv.Float.t;
  pin_off_y : Gv.Float.t;
  pin_cap : Gv.Float.t;
  pin_net : Gv.Int.t; (* -1 until connected *)
  (* nets *)
  net_names : string Gv.t;
  net_driver : Gv.Int.t;
  net_nsinks : Gv.Int.t;
  (* sink connections in arrival order; counting-sorted into CSR at finish *)
  sink_net : Gv.Int.t;
  sink_pin : Gv.Int.t;
  (* False once a raw pin lands on a cell that is not the newest one; the
     name-based pin lookups (which scan the contiguous range) then refuse
     to answer. [finish] never relies on contiguity. *)
  mutable pins_contiguous : bool;
}

let create ~name ~die ~row_height ~clock_period ~r_per_unit ~c_per_unit =
  {
    name;
    die;
    row_height;
    clock_period;
    r_per_unit;
    c_per_unit;
    cell_names = Gv.create ();
    kinds = Gv.Int.create ();
    lib_idx = Gv.Int.create ();
    libs = Gv.create ();
    lib_tbl = Hashtbl.create 16;
    ws = Gv.Float.create ();
    hs = Gv.Float.create ();
    movs = Gv.Int.create ();
    xs = Gv.Float.create ();
    ys = Gv.Float.create ();
    first_pin = Gv.Int.create ();
    pin_names = Gv.create ();
    pin_owner = Gv.Int.create ();
    pin_dir = Gv.Int.create ();
    pin_off_x = Gv.Float.create ();
    pin_off_y = Gv.Float.create ();
    pin_cap = Gv.Float.create ();
    pin_net = Gv.Int.create ();
    net_names = Gv.create ();
    net_driver = Gv.Int.create ();
    net_nsinks = Gv.Int.create ();
    sink_net = Gv.Int.create ();
    sink_pin = Gv.Int.create ();
    pins_contiguous = true;
  }

let num_cells b = Gv.length b.cell_names

let num_nets b = Gv.length b.net_names

(** Return the builder to a clean slate so a long-lived process can
    stream a second design through it. Every vector is emptied (the
    polymorphic ones also drop their backing store, so the previous
    load's names and library cells become collectable), the library
    intern table is cleared, and the contiguity flag rearms. Without the
    table clear a reused builder would resolve a same-named library cell
    of the *new* design to the old design's dangling [libs] index. *)
let reset b =
  Gv.clear b.cell_names;
  Gv.Int.clear b.kinds;
  Gv.Int.clear b.lib_idx;
  Gv.clear b.libs;
  Hashtbl.reset b.lib_tbl;
  Gv.Float.clear b.ws;
  Gv.Float.clear b.hs;
  Gv.Int.clear b.movs;
  Gv.Float.clear b.xs;
  Gv.Float.clear b.ys;
  Gv.Int.clear b.first_pin;
  Gv.clear b.pin_names;
  Gv.Int.clear b.pin_owner;
  Gv.Int.clear b.pin_dir;
  Gv.Float.clear b.pin_off_x;
  Gv.Float.clear b.pin_off_y;
  Gv.Float.clear b.pin_cap;
  Gv.Int.clear b.pin_net;
  Gv.clear b.net_names;
  Gv.Int.clear b.net_driver;
  Gv.Int.clear b.net_nsinks;
  Gv.Int.clear b.sink_net;
  Gv.Int.clear b.sink_pin;
  b.pins_contiguous <- true

let add_pin b ~owner ~pin_name ~dir ~off_x ~off_y ~cap =
  let pid = Gv.Int.length b.pin_owner in
  Gv.push b.pin_names pin_name;
  Gv.Int.push b.pin_owner owner;
  Gv.Int.push b.pin_dir (match dir with Design.In -> 0 | Design.Out -> 1);
  Gv.Float.push b.pin_off_x off_x;
  Gv.Float.push b.pin_off_y off_y;
  Gv.Float.push b.pin_cap cap;
  Gv.Int.push b.pin_net (-1);
  pid

(* Library cells are interned by name: designs reuse a handful of
   [Libcell.t] values, so the side table stays tiny. *)
let intern_lib b (lib : Libcell.t) =
  match Hashtbl.find_opt b.lib_tbl lib.Libcell.lname with
  | Some i -> i
  | None ->
      let i = Gv.length b.libs in
      Gv.push b.libs lib;
      Hashtbl.add b.lib_tbl lib.Libcell.lname i;
      i

let add_cell b ~cname ~kind ~lib_idx ~w ~h ~movable ~x ~y =
  let id = num_cells b in
  Gv.push b.cell_names cname;
  Gv.Int.push b.kinds kind;
  Gv.Int.push b.lib_idx lib_idx;
  Gv.Float.push b.ws w;
  Gv.Float.push b.hs h;
  Gv.Int.push b.movs (if movable then 1 else 0);
  Gv.Float.push b.xs x;
  Gv.Float.push b.ys y;
  Gv.Int.push b.first_pin (Gv.Int.length b.pin_owner);
  id

(** Add a logic cell (combinational or FF); creates its pins from the
    library cell. Returns the cell id. *)
let add_logic b ~cname ~lib ~x ~y ?(movable = true) () =
  let li = intern_lib b lib in
  let id =
    add_cell b ~cname ~kind:0 ~lib_idx:li ~w:lib.Libcell.width ~h:lib.Libcell.height ~movable
      ~x ~y
  in
  Array.iter
    (fun (lp : Libcell.lib_pin) ->
      let dir = match lp.kind with Libcell.Input -> Design.In | Libcell.Output -> Design.Out in
      ignore (add_pin b ~owner:id ~pin_name:lp.pname ~dir ~off_x:lp.off_x ~off_y:lp.off_y ~cap:lp.cap))
    lib.Libcell.pins;
  id

(* Pads sit on the die boundary, are fixed, and carry one pin at their
   centre with a nominal pad capacitance. *)
let add_pad b ~cname ~kind ~x ~y =
  let dir, cap = if kind = 1 then (Design.Out, 0.0) else (Design.In, 3.0) in
  let id = add_cell b ~cname ~kind ~lib_idx:(-1) ~w:1.0 ~h:1.0 ~movable:false ~x ~y in
  ignore (add_pin b ~owner:id ~pin_name:"p" ~dir ~off_x:0.0 ~off_y:0.0 ~cap);
  id

let add_input_pad b ~cname ~x ~y = add_pad b ~cname ~kind:1 ~x ~y

let add_output_pad b ~cname ~x ~y = add_pad b ~cname ~kind:2 ~x ~y

(** Add a fixed rectangular blockage (macro). *)
let add_blockage b ~cname ~x ~y ~w ~h =
  add_cell b ~cname ~kind:3 ~lib_idx:(-1) ~w ~h ~movable:false ~x ~y

(* ---- raw construction (streaming format readers) --------------------- *)

let kind_int = function
  | Design.Logic -> 0
  | Design.Input_pad -> 1
  | Design.Output_pad -> 2
  | Design.Blockage -> 3

(** Add a cell with explicit kind/geometry and NO pins; pins arrive later
    through {!add_raw_pin} in whatever order the input file dictates. The
    cell's size comes from the caller, not the library cell — external
    formats carry their own geometry. *)
let add_raw_cell b ~cname ~kind ~lib ~w ~h ~movable ~x ~y =
  let li = match lib with Some l -> intern_lib b l | None -> -1 in
  add_cell b ~cname ~kind:(kind_int kind) ~lib_idx:li ~w ~h ~movable ~x ~y

(** Add one pin to an arbitrary existing cell. Unlike the library path,
    pins need not be contiguous per cell — [finish] rebuilds the
    cell->pin CSR by stable counting sort. After an out-of-order raw pin,
    the name-based lookups ([connect_by_name]/[pin_of_cell]) raise. *)
let add_raw_pin b ~cell ~pin_name ~dir ~off_x ~off_y ~cap =
  if cell < 0 || cell >= num_cells b then
    invalid_arg (Printf.sprintf "Builder.add_raw_pin: no cell %d" cell);
  if cell <> num_cells b - 1 then b.pins_contiguous <- false;
  add_pin b ~owner:cell ~pin_name ~dir ~off_x ~off_y ~cap

(** Reposition a cell centre (format readers stream positions from a
    separate file, e.g. Bookshelf [.pl], after the cells exist). *)
let set_position b ~cell ~x ~y =
  Gv.Float.set b.xs cell x;
  Gv.Float.set b.ys cell y

(** Mark a cell fixed/movable after creation (Bookshelf splits the
    movable flag between [.nodes] and [.pl]). *)
let set_movable b ~cell ~movable = Gv.Int.set b.movs cell (if movable then 1 else 0)

(** Reclassify a cell after creation. Bookshelf only reveals whether a
    terminal is a pad, macro or fixed gate once the net section shows its
    pins, so raw readers create cells as [Logic] and settle kinds last. *)
let set_kind b ~cell ~kind ~lib =
  Gv.Int.set b.kinds cell (kind_int kind);
  Gv.Int.set b.lib_idx cell (match lib with Some l -> intern_lib b l | None -> -1)

let cell_width b ~cell = Gv.Float.get b.ws cell

let cell_height b ~cell = Gv.Float.get b.hs cell

let cell_kind b ~cell =
  match Gv.Int.get b.kinds cell with
  | 0 -> Design.Logic
  | 1 -> Design.Input_pad
  | 2 -> Design.Output_pad
  | _ -> Design.Blockage

let add_net b ~nname =
  let nid = num_nets b in
  Gv.push b.net_names nname;
  Gv.Int.push b.net_driver (-1);
  Gv.Int.push b.net_nsinks 0;
  nid

(** Connect pin [pid] to net [nid]; direction decides driver vs sink.
    A net must end up with exactly one driver. *)
let connect b ~net:nid ~pin:pid =
  if Gv.Int.get b.pin_net pid >= 0 then
    Util.Errors.invalid_design ~design:b.name
      [ Printf.sprintf "pin %d connected to two nets" pid ];
  Gv.Int.set b.pin_net pid nid;
  if Gv.Int.get b.pin_dir pid = 1 then begin
    if Gv.Int.get b.net_driver nid >= 0 then
      Util.Errors.invalid_design ~design:b.name
        [ Printf.sprintf "net %s has two drivers" (Gv.get b.net_names nid) ];
    Gv.Int.set b.net_driver nid pid
  end
  else begin
    Gv.Int.set b.net_nsinks nid (Gv.Int.get b.net_nsinks nid + 1);
    Gv.Int.push b.sink_net nid;
    Gv.Int.push b.sink_pin pid
  end

(* Pins of cell [c] occupy the contiguous pid range starting at
   [first_pin c]; the range ends at the next cell's first pin (or the pin
   count for the last cell). *)
let pin_range b ~cell =
  let lo = Gv.Int.get b.first_pin cell in
  let hi =
    if cell + 1 < num_cells b then Gv.Int.get b.first_pin (cell + 1)
    else Gv.Int.length b.pin_owner
  in
  (lo, hi)

let find_pin b ~cell ~pin_name =
  if not b.pins_contiguous then
    invalid_arg "Builder.find_pin: pins are no longer contiguous (raw pins were added)";
  let lo, hi = pin_range b ~cell in
  let rec go pid =
    if pid >= hi then None
    else if Gv.get b.pin_names pid = pin_name then Some pid
    else go (pid + 1)
  in
  go lo

(** Connect by cell id + pin name (looked up in the cell's pins). *)
let connect_by_name b ~net ~cell ~pin_name =
  match find_pin b ~cell ~pin_name with
  | Some pid -> connect b ~net ~pin:pid
  | None ->
      invalid_arg
        (Printf.sprintf "Builder.connect_by_name: cell %s has no pin %s"
           (Gv.get b.cell_names cell) pin_name)

(** Pin id of [cell]'s pin called [pin_name]. *)
let pin_of_cell b ~cell ~pin_name =
  match find_pin b ~cell ~pin_name with
  | Some pid -> pid
  | None -> invalid_arg "Builder.pin_of_cell: no such pin"

(** Freeze into the struct-of-arrays database. Every net must have a
    driver and at least one sink. *)
let finish b =
  let n_cells = num_cells b in
  let n_pins = Gv.Int.length b.pin_owner in
  let n_nets = num_nets b in
  let net_driver = Gv.Int.to_array b.net_driver in
  let problems = ref [] in
  for nid = n_nets - 1 downto 0 do
    if Gv.Int.get b.net_nsinks nid = 0 then
      problems := Printf.sprintf "net %s has no sinks" (Gv.get b.net_names nid) :: !problems;
    if net_driver.(nid) < 0 then
      problems := Printf.sprintf "net %s has no driver" (Gv.get b.net_names nid) :: !problems
  done;
  if !problems <> [] then Util.Errors.invalid_design ~design:b.name !problems;
  (* Cell->pin CSR by stable counting sort over [pin_owner]. The library
     path creates each cell's pins contiguously so the sort degenerates to
     the identity map; raw pins from format readers arrive in net order
     and land here in pin-id order per cell. *)
  let cell_pin_off = Array.make (n_cells + 1) 0 in
  for p = 0 to n_pins - 1 do
    let owner = Gv.Int.get b.pin_owner p in
    cell_pin_off.(owner + 1) <- cell_pin_off.(owner + 1) + 1
  done;
  for i = 0 to n_cells - 1 do
    cell_pin_off.(i + 1) <- cell_pin_off.(i + 1) + cell_pin_off.(i)
  done;
  let cell_pin_ids = Array.make n_pins (-1) in
  let cell_cursor = Array.make (max 1 n_cells) 0 in
  Array.blit cell_pin_off 0 cell_cursor 0 n_cells;
  for p = 0 to n_pins - 1 do
    let owner = Gv.Int.get b.pin_owner p in
    cell_pin_ids.(cell_cursor.(owner)) <- p;
    cell_cursor.(owner) <- cell_cursor.(owner) + 1
  done;
  (* Net->pin CSR by counting sort: slot 0 of each net is its driver, then
     sinks in connection order (the sort is stable over [sink_net]). *)
  let net_pin_off = Array.make (n_nets + 1) 0 in
  for nid = 0 to n_nets - 1 do
    net_pin_off.(nid + 1) <- net_pin_off.(nid) + 1 + Gv.Int.get b.net_nsinks nid
  done;
  let net_pin_ids = Array.make net_pin_off.(n_nets) (-1) in
  let cursor = Array.make n_nets 0 in
  for nid = 0 to n_nets - 1 do
    net_pin_ids.(net_pin_off.(nid)) <- net_driver.(nid);
    cursor.(nid) <- net_pin_off.(nid) + 1
  done;
  for k = 0 to Gv.Int.length b.sink_net - 1 do
    let nid = Gv.Int.get b.sink_net k in
    net_pin_ids.(cursor.(nid)) <- Gv.Int.get b.sink_pin k;
    cursor.(nid) <- cursor.(nid) + 1
  done;
  let bytes_of_gvec g n = Bytes.init n (fun i -> Char.chr (Gv.Int.get g i)) in
  let weights = Design.farr_create n_nets in
  Design.farr_fill weights 1.0;
  {
    Design.name = b.name;
    die = b.die;
    row_height = b.row_height;
    clock_period = b.clock_period;
    input_delay = 0.0;
    output_delay = 0.0;
    r_per_unit = b.r_per_unit;
    c_per_unit = b.c_per_unit;
    n_cells;
    n_pins;
    n_nets;
    x = Design.farr_of_array (Gv.Float.to_array b.xs);
    y = Design.farr_of_array (Gv.Float.to_array b.ys);
    w = Design.farr_of_array (Gv.Float.to_array b.ws);
    h = Design.farr_of_array (Gv.Float.to_array b.hs);
    movable = bytes_of_gvec b.movs n_cells;
    kinds = bytes_of_gvec b.kinds n_cells;
    lib_idx = Gv.Int.to_array b.lib_idx;
    libs = Gv.to_array b.libs;
    cell_pin_off;
    cell_pin_ids;
    pin_owner = Gv.Int.to_array b.pin_owner;
    pin_net = Gv.Int.to_array b.pin_net;
    pin_dirs = bytes_of_gvec b.pin_dir n_pins;
    pin_off_x = Design.farr_of_array (Gv.Float.to_array b.pin_off_x);
    pin_off_y = Design.farr_of_array (Gv.Float.to_array b.pin_off_y);
    pin_cap = Design.farr_of_array (Gv.Float.to_array b.pin_cap);
    net_driver;
    net_weight = weights;
    net_pin_off;
    net_pin_ids;
    cell_names = Gv.to_array b.cell_names;
    pin_names = Gv.to_array b.pin_names;
    net_names = Gv.to_array b.net_names;
  }
