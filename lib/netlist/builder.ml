(** Incremental construction of a {!Design.t}.

    Collects cells/pins/nets in growable vectors, checks structural
    invariants (single driver per net, pins exist) and freezes into the
    flat-array database. All operations are amortised O(1). *)

type t = {
  name : string;
  die : Geom.Rect.t;
  row_height : float;
  clock_period : float;
  r_per_unit : float;
  c_per_unit : float;
  cells : Design.cell Util.Gvec.t;
  pins : Design.pin Util.Gvec.t;
  nets : Design.net Util.Gvec.t;
  sink_lists : int list Util.Gvec.t; (* per net, reversed sink pids *)
  xs : float Util.Gvec.t;
  ys : float Util.Gvec.t;
}

let create ~name ~die ~row_height ~clock_period ~r_per_unit ~c_per_unit =
  {
    name;
    die;
    row_height;
    clock_period;
    r_per_unit;
    c_per_unit;
    cells = Util.Gvec.create ();
    pins = Util.Gvec.create ();
    nets = Util.Gvec.create ();
    sink_lists = Util.Gvec.create ();
    xs = Util.Gvec.create ();
    ys = Util.Gvec.create ();
  }

let num_cells b = Util.Gvec.length b.cells

let num_nets b = Util.Gvec.length b.nets

let add_pin b ~owner ~pin_name ~dir ~off_x ~off_y ~cap =
  let pid = Util.Gvec.length b.pins in
  Util.Gvec.push b.pins { Design.pid; owner; pin_name; dir; off_x; off_y; cap; net = -1 };
  pid

(** Add a logic cell (combinational or FF); creates its pins from the
    library cell. Returns the cell id. *)
let add_logic b ~cname ~lib ~x ~y ?(movable = true) () =
  let id = Util.Gvec.length b.cells in
  let cell =
    {
      Design.id;
      cname;
      role = Design.Logic lib;
      w = lib.Libcell.width;
      h = lib.Libcell.height;
      movable;
      cell_pins = [||];
    }
  in
  let pin_of (lp : Libcell.lib_pin) =
    let dir = match lp.kind with Libcell.Input -> Design.In | Libcell.Output -> Design.Out in
    add_pin b ~owner:id ~pin_name:lp.pname ~dir ~off_x:lp.off_x ~off_y:lp.off_y ~cap:lp.cap
  in
  cell.cell_pins <- Array.map pin_of lib.Libcell.pins;
  Util.Gvec.push b.cells cell;
  Util.Gvec.push b.xs x;
  Util.Gvec.push b.ys y;
  id

(* Pads sit on the die boundary, are fixed, and carry one pin at their
   centre with a nominal pad capacitance. *)
let add_pad b ~cname ~role ~x ~y =
  let id = Util.Gvec.length b.cells in
  let dir, cap =
    match role with
    | Design.Input_pad -> (Design.Out, 0.0)
    | Design.Output_pad -> (Design.In, 3.0)
    | Design.Logic _ | Design.Blockage -> invalid_arg "Builder.add_pad: not a pad role"
  in
  let cell = { Design.id; cname; role; w = 1.0; h = 1.0; movable = false; cell_pins = [||] } in
  let pid = add_pin b ~owner:id ~pin_name:"p" ~dir ~off_x:0.0 ~off_y:0.0 ~cap in
  cell.cell_pins <- [| pid |];
  Util.Gvec.push b.cells cell;
  Util.Gvec.push b.xs x;
  Util.Gvec.push b.ys y;
  id

let add_input_pad b ~cname ~x ~y = add_pad b ~cname ~role:Design.Input_pad ~x ~y

let add_output_pad b ~cname ~x ~y = add_pad b ~cname ~role:Design.Output_pad ~x ~y

(** Add a fixed rectangular blockage (macro). *)
let add_blockage b ~cname ~x ~y ~w ~h =
  let id = Util.Gvec.length b.cells in
  let cell =
    { Design.id; cname; role = Design.Blockage; w; h; movable = false; cell_pins = [||] }
  in
  Util.Gvec.push b.cells cell;
  Util.Gvec.push b.xs x;
  Util.Gvec.push b.ys y;
  id

let add_net b ~nname =
  let nid = Util.Gvec.length b.nets in
  Util.Gvec.push b.nets { Design.nid; nname; driver = -1; sinks = [||]; weight = 1.0 };
  Util.Gvec.push b.sink_lists [];
  nid

(** Connect pin [pid] to net [nid]; direction decides driver vs sink.
    A net must end up with exactly one driver. *)
let connect b ~net:nid ~pin:pid =
  let net = Util.Gvec.get b.nets nid in
  let pin = Util.Gvec.get b.pins pid in
  if pin.Design.net >= 0 then
    Util.Errors.invalid_design ~design:b.name
      [ Printf.sprintf "pin %d connected to two nets" pid ];
  pin.Design.net <- nid;
  match pin.Design.dir with
  | Design.Out ->
      if net.Design.driver >= 0 then
        Util.Errors.invalid_design ~design:b.name
          [ Printf.sprintf "net %s has two drivers" net.Design.nname ];
      net.Design.driver <- pid
  | Design.In -> Util.Gvec.set b.sink_lists nid (pid :: Util.Gvec.get b.sink_lists nid)

(** Connect by cell id + pin name (looked up in the cell's pins). *)
let connect_by_name b ~net ~cell ~pin_name =
  let c = Util.Gvec.get b.cells cell in
  let pid =
    match
      Array.find_opt
        (fun pid -> (Util.Gvec.get b.pins pid).Design.pin_name = pin_name)
        c.Design.cell_pins
    with
    | Some pid -> pid
    | None ->
        invalid_arg
          (Printf.sprintf "Builder.connect_by_name: cell %s has no pin %s" c.Design.cname
             pin_name)
  in
  connect b ~net ~pin:pid

(** Pin id of [cell]'s pin called [pin_name]. *)
let pin_of_cell b ~cell ~pin_name =
  let c = Util.Gvec.get b.cells cell in
  match
    Array.find_opt
      (fun pid -> (Util.Gvec.get b.pins pid).Design.pin_name = pin_name)
      c.Design.cell_pins
  with
  | Some pid -> pid
  | None -> invalid_arg "Builder.pin_of_cell: no such pin"

(** Freeze into the flat-array database. Every net must have a driver and
    at least one sink. *)
let finish b =
  let nets = Util.Gvec.to_array b.nets in
  let problems = ref [] in
  Array.iteri
    (fun i (n : Design.net) ->
      n.sinks <- Array.of_list (List.rev (Util.Gvec.get b.sink_lists i));
      if n.driver < 0 then
        problems := Printf.sprintf "net %s has no driver" n.nname :: !problems;
      if Array.length n.sinks = 0 then
        problems := Printf.sprintf "net %s has no sinks" n.nname :: !problems)
    nets;
  if !problems <> [] then Util.Errors.invalid_design ~design:b.name (List.rev !problems);
  {
    Design.name = b.name;
    die = b.die;
    row_height = b.row_height;
    clock_period = b.clock_period;
    input_delay = 0.0;
    output_delay = 0.0;
    r_per_unit = b.r_per_unit;
    c_per_unit = b.c_per_unit;
    cells = Util.Gvec.to_array b.cells;
    pins = Util.Gvec.to_array b.pins;
    nets;
    x = Util.Gvec.to_array b.xs;
    y = Util.Gvec.to_array b.ys;
  }
