(** Liberty-like standard-cell library.

    Delay model (linear / lumped, per cell arc):
      arc delay   = intrinsic + drive_res * load + slew_sens * input_slew
      output slew = slew_base + slew_load * load
    where [load] is the total downstream capacitance (wire + sink pins).
    Together with the Elmore wire model this makes net delay quadratic in
    wire length — the property (paper Eq. 7) that motivates the quadratic
    attraction loss.

    Units: distance in sites, capacitance in fF, resistance in kOhm,
    time in ps. *)

type pin_kind = Input | Output

type lib_pin = {
  pname : string;
  kind : pin_kind;
  cap : float; (* input capacitance; 0.0 for outputs *)
  off_x : float; (* offset from the cell centre *)
  off_y : float;
}

type t = {
  lname : string;
  width : float;
  height : float;
  pins : lib_pin array;
  drive_res : float;
  intrinsic : float;
  slew_sens : float; (* delay added per unit of input slew *)
  slew_base : float;
  slew_load : float; (* output slew per unit load *)
  is_ff : bool;
  setup : float; (* FF only: setup time at D *)
  hold : float; (* FF only: hold requirement at D *)
  clk_to_q : float; (* FF only: launch delay at Q *)
}

(** Raises [Invalid_argument] for unknown pin names. *)
val find_pin : t -> string -> lib_pin

val pin_index : t -> string -> int

val inputs : t -> lib_pin list

val outputs : t -> lib_pin list

(** Build a combinational cell with inputs a1..ak and output o. *)
val make_comb :
  lname:string -> width:float -> drive_res:float -> intrinsic:float -> in_caps:float list -> t

(** Build a D flip-flop with input d and output q. *)
val make_ff :
  ?hold:float ->
  lname:string ->
  width:float ->
  drive_res:float ->
  clk_to_q:float ->
  setup:float ->
  d_cap:float ->
  unit ->
  t

(** The default library used by the synthetic benchmark generator. *)
val default_library : t array

(** Raises [Invalid_argument] for unknown cells. *)
val find_in_library : string -> t

(** Combinational members of {!default_library}. *)
val comb_cells : t array

(** The library's D flip-flop. *)
val dff : t
