(** Plain-text design interchange (a compact DEF/Bookshelf stand-in). The
    concrete grammar is documented at the top of the implementation. *)

exception Parse_error of int * string

val save : out_channel -> Design.t -> unit

val save_file : string -> Design.t -> unit

(** Positions of movable cells only ("p <cellid> <x> <y>" records). *)
val save_placement : out_channel -> Design.t -> unit

(** Raises {!Parse_error} on malformed input; library cells are resolved
    against {!Libcell.default_library}. *)
val load : in_channel -> Design.t

val load_file : string -> Design.t
