(** Plain-text design interchange (a compact DEF/Bookshelf stand-in).

    Format (one record per line, '#' comments):
    {v
    design <name>
    die <xl> <yl> <xh> <yh>
    rowheight <h>
    clock <period>
    wire <r_per_unit> <c_per_unit>
    c <name> L <libname> <M|F> <x> <y>     logic cell (movable/fixed)
    c <name> I <x> <y>                      input pad
    c <name> O <x> <y>                      output pad
    c <name> B <x> <y> <w> <h>              blockage
    n <name> <cellindex>:<pinname> ...      net, driver inferred from dirs
    end
    v} *)

let save_placement oc (d : Design.t) =
  for i = 0 to Design.num_cells d - 1 do
    if Design.is_movable d i then Printf.fprintf oc "p %d %.6f %.6f\n" i d.x.{i} d.y.{i}
  done

let save oc (d : Design.t) =
  Printf.fprintf oc "# efficient-tdp design format v1\n";
  Printf.fprintf oc "design %s\n" d.name;
  Printf.fprintf oc "die %.6f %.6f %.6f %.6f\n" d.die.xl d.die.yl d.die.xh d.die.yh;
  Printf.fprintf oc "rowheight %.6f\n" d.row_height;
  Printf.fprintf oc "clock %.6f\n" d.clock_period;
  Printf.fprintf oc "iodelay %.6f %.6f\n" d.input_delay d.output_delay;
  Printf.fprintf oc "wire %.6f %.6f\n" d.r_per_unit d.c_per_unit;
  for i = 0 to Design.num_cells d - 1 do
    let cname = Design.cell_name d i in
    let x = d.x.{i} and y = d.y.{i} in
    match Design.kind d i with
    | Design.Logic ->
        Printf.fprintf oc "c %s L %s %c %.6f %.6f\n" cname (Design.libcell d i).Libcell.lname
          (if Design.is_movable d i then 'M' else 'F')
          x y
    | Design.Input_pad -> Printf.fprintf oc "c %s I %.6f %.6f\n" cname x y
    | Design.Output_pad -> Printf.fprintf oc "c %s O %.6f %.6f\n" cname x y
    | Design.Blockage ->
        Printf.fprintf oc "c %s B %.6f %.6f %.6f %.6f\n" cname x y d.w.{i} d.h.{i}
  done;
  for n = 0 to Design.num_nets d - 1 do
    Printf.fprintf oc "n %s" (Design.net_name d n);
    Design.iter_net_pins d n (fun pid ->
        Printf.fprintf oc " %d:%s" d.Design.pin_owner.(pid) (Design.pin_name d pid));
    Printf.fprintf oc "\n"
  done;
  Printf.fprintf oc "end\n"

let save_file path d =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save oc d)

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let load ic =
  let builder = ref None in
  let header = Hashtbl.create 8 in
  let lineno = ref 0 in
  let pending_nets = ref [] in
  (* Cells must all be read before the builder is created (we need the die
     etc. first), so we buffer raw records and replay. *)
  let cell_records = ref [] in
  let finished = ref false in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if line = "" || line.[0] = '#' then ()
       else begin
         let words = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
         match words with
         | [ "design"; name ] -> Hashtbl.replace header "design" [ name ]
         | "die" :: rest | "rowheight" :: rest | "clock" :: rest | "wire" :: rest
         | "iodelay" :: rest ->
             Hashtbl.replace header (List.hd words) rest
         | "c" :: rest -> cell_records := rest :: !cell_records
         | "n" :: rest -> pending_nets := rest :: !pending_nets
         | [ "end" ] ->
             finished := true;
             raise Exit
         | _ -> fail !lineno ("unrecognised record: " ^ line)
       end
     done
   with
  | Exit -> ()
  | End_of_file -> ());
  if not !finished then fail !lineno "missing 'end' record";
  let get k =
    match Hashtbl.find_opt header k with
    | Some v -> v
    | None -> fail 0 ("missing header record: " ^ k)
  in
  (* [float_of_string] would raise a bare [Failure] on junk; report it as
     a parse error instead. "nan"/"inf" parse fine here — the numeric
     sanity gate is [Design.validate], not the reader. *)
  let fl s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> fail 0 ("bad number: " ^ s)
  in
  let name = List.hd (get "design") in
  let die =
    match get "die" with
    | [ a; b; c; d ] -> Geom.Rect.make ~xl:(fl a) ~yl:(fl b) ~xh:(fl c) ~yh:(fl d)
    | _ -> fail 0 "bad die record"
  in
  let row_height = fl (List.hd (get "rowheight")) in
  let clock_period = fl (List.hd (get "clock")) in
  let r_per_unit, c_per_unit =
    match get "wire" with [ r; c ] -> (fl r, fl c) | _ -> fail 0 "bad wire record"
  in
  let input_delay, output_delay =
    match Hashtbl.find_opt header "iodelay" with
    | Some [ i; o ] -> (fl i, fl o)
    | Some _ -> fail 0 "bad iodelay record"
    | None -> (0.0, 0.0)
  in
  let b =
    Builder.create ~name ~die ~row_height ~clock_period ~r_per_unit ~c_per_unit
  in
  builder := Some b;
  List.iter
    (fun rest ->
      match rest with
      | [ cname; "L"; libname; mv; x; y ] ->
          let lib = Libcell.find_in_library libname in
          ignore (Builder.add_logic b ~cname ~lib ~x:(fl x) ~y:(fl y) ~movable:(mv = "M") ())
      | [ cname; "I"; x; y ] -> ignore (Builder.add_input_pad b ~cname ~x:(fl x) ~y:(fl y))
      | [ cname; "O"; x; y ] -> ignore (Builder.add_output_pad b ~cname ~x:(fl x) ~y:(fl y))
      | [ cname; "B"; x; y; w; h ] ->
          ignore (Builder.add_blockage b ~cname ~x:(fl x) ~y:(fl y) ~w:(fl w) ~h:(fl h))
      | _ -> fail 0 ("bad cell record: " ^ String.concat " " rest))
    (List.rev !cell_records);
  List.iter
    (fun rest ->
      match rest with
      | nname :: pins when pins <> [] ->
          let nid = Builder.add_net b ~nname in
          List.iter
            (fun spec ->
              match String.index_opt spec ':' with
              | Some i ->
                  let cell =
                    match int_of_string_opt (String.sub spec 0 i) with
                    | Some c when c >= 0 && c < Builder.num_cells b -> c
                    | _ -> fail 0 ("bad cell index in pin spec: " ^ spec)
                  in
                  let pin_name = String.sub spec (i + 1) (String.length spec - i - 1) in
                  Builder.connect_by_name b ~net:nid ~cell ~pin_name
              | None -> fail 0 ("bad pin spec: " ^ spec))
            pins
      | _ -> fail 0 "bad net record")
    (List.rev !pending_nets);
  let d = Builder.finish b in
  d.Design.input_delay <- input_delay;
  d.Design.output_delay <- output_delay;
  d

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)
