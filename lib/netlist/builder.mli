(** Incremental construction of a {!Design.t}: collect cells/pins/nets in
    growable vectors, check structural invariants (one driver per net,
    pins exist, no reconnection), freeze into the flat-array database.
    All operations are amortised O(1). *)

type t

val create :
  name:string ->
  die:Geom.Rect.t ->
  row_height:float ->
  clock_period:float ->
  r_per_unit:float ->
  c_per_unit:float ->
  t

val num_cells : t -> int

val num_nets : t -> int

(** Return to a clean slate for reuse in a long-lived process: all
    vectors emptied, the library intern table cleared (a stale entry
    would bind a same-named library cell to a dangling index), previous
    elements made collectable, pin contiguity rearmed. The identity
    [reset b; build X] ≡ [build X on a fresh builder] is enforced by the
    load-twice test in [test/test_netlist_suite.ml]. *)
val reset : t -> unit

(** Add a logic cell (combinational or FF); its pins come from the library
    cell. Returns the cell id. *)
val add_logic :
  t -> cname:string -> lib:Libcell.t -> x:float -> y:float -> ?movable:bool -> unit -> int

(** Fixed 1x1 pad on the boundary with a single output pin "p". *)
val add_input_pad : t -> cname:string -> x:float -> y:float -> int

(** Fixed 1x1 pad with a single input pin "p". *)
val add_output_pad : t -> cname:string -> x:float -> y:float -> int

(** Fixed rectangular macro obstruction (no pins). *)
val add_blockage : t -> cname:string -> x:float -> y:float -> w:float -> h:float -> int

val add_net : t -> nname:string -> int

(** Connect a pin to a net; output pins become the driver (at most one),
    input pins become sinks. Raises [Util.Errors.Error (Invalid_design _)]
    on double driver or
    reconnection. *)
val connect : t -> net:int -> pin:int -> unit

val connect_by_name : t -> net:int -> cell:int -> pin_name:string -> unit

(** Pin id of a cell's named pin; raises [Invalid_argument] if absent. *)
val pin_of_cell : t -> cell:int -> pin_name:string -> int

(** {2 Raw construction}

    Streaming format readers (lib/formats) build cells and pins in file
    order: cells first with explicit geometry, pins later as net records
    mention them. Pins then need not be contiguous per cell — [finish]
    rebuilds the cell->pin CSR by stable counting sort (the library path
    above still freezes to the identity map, bit for bit). After an
    out-of-order raw pin, [connect_by_name]/[pin_of_cell] raise
    [Invalid_argument]; raw callers track pin ids themselves. *)

(** Add a cell with explicit kind/geometry and no pins. [lib] supplies
    the timing view for [Logic] cells (ignored for pads/blockages). *)
val add_raw_cell :
  t ->
  cname:string ->
  kind:Design.kind ->
  lib:Libcell.t option ->
  w:float ->
  h:float ->
  movable:bool ->
  x:float ->
  y:float ->
  int

(** Add one pin to an existing cell; returns the pin id. Raises
    [Invalid_argument] for an unknown cell. *)
val add_raw_pin :
  t -> cell:int -> pin_name:string -> dir:Design.dir -> off_x:float -> off_y:float -> cap:float -> int

(** Reposition a cell centre (positions stream from a separate file). *)
val set_position : t -> cell:int -> x:float -> y:float -> unit

(** Flip a cell's movable flag after creation. *)
val set_movable : t -> cell:int -> movable:bool -> unit

(** Reclassify a cell (and its library binding) after creation — raw
    readers learn pad/blockage kinds only once pins are known. *)
val set_kind : t -> cell:int -> kind:Design.kind -> lib:Libcell.t option -> unit

val cell_width : t -> cell:int -> float

val cell_height : t -> cell:int -> float

val cell_kind : t -> cell:int -> Design.kind

(** Freeze. Every net must have a driver and at least one sink. *)
val finish : t -> Design.t
