(** Incremental construction of a {!Design.t}: collect cells/pins/nets in
    growable vectors, check structural invariants (one driver per net,
    pins exist, no reconnection), freeze into the flat-array database.
    All operations are amortised O(1). *)

type t

val create :
  name:string ->
  die:Geom.Rect.t ->
  row_height:float ->
  clock_period:float ->
  r_per_unit:float ->
  c_per_unit:float ->
  t

val num_cells : t -> int

val num_nets : t -> int

(** Add a logic cell (combinational or FF); its pins come from the library
    cell. Returns the cell id. *)
val add_logic :
  t -> cname:string -> lib:Libcell.t -> x:float -> y:float -> ?movable:bool -> unit -> int

(** Fixed 1x1 pad on the boundary with a single output pin "p". *)
val add_input_pad : t -> cname:string -> x:float -> y:float -> int

(** Fixed 1x1 pad with a single input pin "p". *)
val add_output_pad : t -> cname:string -> x:float -> y:float -> int

(** Fixed rectangular macro obstruction (no pins). *)
val add_blockage : t -> cname:string -> x:float -> y:float -> w:float -> h:float -> int

val add_net : t -> nname:string -> int

(** Connect a pin to a net; output pins become the driver (at most one),
    input pins become sinks. Raises [Util.Errors.Error (Invalid_design _)]
    on double driver or
    reconnection. *)
val connect : t -> net:int -> pin:int -> unit

val connect_by_name : t -> net:int -> cell:int -> pin_name:string -> unit

(** Pin id of a cell's named pin; raises [Invalid_argument] if absent. *)
val pin_of_cell : t -> cell:int -> pin_name:string -> int

(** Freeze. Every net must have a driver and at least one sink. *)
val finish : t -> Design.t
