(** Planar points with the metrics used throughout placement and timing. *)

type t = { x : float; y : float }

val make : float -> float -> t

val origin : t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

(** Manhattan (rectilinear) distance — the wirelength metric. *)
val manhattan : t -> t -> float

(** Euclidean distance — the linear attraction-loss metric. *)
val euclidean : t -> t -> float

(** Squared Euclidean distance — the paper's quadratic loss, Eq. (8). *)
val sq_euclidean : t -> t -> float

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
