(** Axis-aligned rectangles: placement region, cell shapes, bins. *)

type t = { xl : float; yl : float; xh : float; yh : float }

(** Requires [xh >= xl] and [yh >= yl]. *)
val make : xl:float -> yl:float -> xh:float -> yh:float -> t

val of_corner_size : x:float -> y:float -> w:float -> h:float -> t

val width : t -> float

val height : t -> float

val area : t -> float

val center : t -> Point.t

val contains : t -> Point.t -> bool

(** Overlap area of two rectangles (0 when disjoint or abutting). *)
val overlap_area : t -> t -> float

val intersects : t -> t -> bool

(** Smallest rectangle containing both. *)
val union : t -> t -> t

(** Bounding box of a non-empty point list; raises [Invalid_argument]
    on []. *)
val bbox_of_points : Point.t list -> t

(** width + height — HPWL of the rectangle's corner set. *)
val half_perimeter : t -> float

(** Project a point into the rectangle. *)
val clamp : t -> Point.t -> Point.t

val pp : Format.formatter -> t -> unit
