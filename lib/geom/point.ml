(** Planar points with the metrics used throughout placement and timing. *)

type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.0; y = 0.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale s a = { x = s *. a.x; y = s *. a.y }

(** Manhattan (rectilinear) distance — the wire-length metric. *)
let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

(** Euclidean distance — the linear attraction-loss metric. *)
let euclidean a b = Float.hypot (a.x -. b.x) (a.y -. b.y)

(** Squared Euclidean distance — the paper's quadratic loss, Eq. (8). *)
let sq_euclidean a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let equal a b = a.x = b.x && a.y = b.y

let pp fmt p = Format.fprintf fmt "(%.2f, %.2f)" p.x p.y
