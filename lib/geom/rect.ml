(** Axis-aligned rectangles: placement region, cell shapes, bins. *)

type t = { xl : float; yl : float; xh : float; yh : float }

let make ~xl ~yl ~xh ~yh =
  assert (xh >= xl && yh >= yl);
  { xl; yl; xh; yh }

let of_corner_size ~x ~y ~w ~h = make ~xl:x ~yl:y ~xh:(x +. w) ~yh:(y +. h)

let width r = r.xh -. r.xl

let height r = r.yh -. r.yl

let area r = width r *. height r

let center r = Point.make ((r.xl +. r.xh) /. 2.0) ((r.yl +. r.yh) /. 2.0)

let contains r (p : Point.t) = p.x >= r.xl && p.x <= r.xh && p.y >= r.yl && p.y <= r.yh

(** Overlap area of two rectangles (0 when disjoint). *)
let overlap_area a b =
  let w = Float.min a.xh b.xh -. Float.max a.xl b.xl in
  let h = Float.min a.yh b.yh -. Float.max a.yl b.yl in
  if w <= 0.0 || h <= 0.0 then 0.0 else w *. h

let intersects a b = overlap_area a b > 0.0

(** Smallest rectangle containing both. *)
let union a b =
  {
    xl = Float.min a.xl b.xl;
    yl = Float.min a.yl b.yl;
    xh = Float.max a.xh b.xh;
    yh = Float.max a.yh b.yh;
  }

(** Bounding box of a non-empty point list. *)
let bbox_of_points = function
  | [] -> invalid_arg "Rect.bbox_of_points: empty"
  | (p : Point.t) :: rest ->
      List.fold_left
        (fun r (q : Point.t) ->
          {
            xl = Float.min r.xl q.x;
            yl = Float.min r.yl q.y;
            xh = Float.max r.xh q.x;
            yh = Float.max r.yh q.y;
          })
        { xl = p.x; yl = p.y; xh = p.x; yh = p.y }
        rest

(** Half-perimeter of the rectangle — HPWL of its corner set. *)
let half_perimeter r = width r +. height r

(** Clamp a point into the rectangle. *)
let clamp r (p : Point.t) =
  Point.make (Float.max r.xl (Float.min r.xh p.x)) (Float.max r.yl (Float.min r.yh p.y))

let pp fmt r = Format.fprintf fmt "[%.1f,%.1f - %.1f,%.1f]" r.xl r.yl r.xh r.yh
