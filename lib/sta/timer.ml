(** Facade over the static timing engine — the OpenTimer-equivalent
    object a placement flow talks to.

    Typical use:
    {[
      let timer = Timer.create design ~topology:Delay.Steiner_tree in
      Timer.update timer;                   (* after every placement change *)
      let tns = Timer.tns timer in
      let paths = Timer.report_timing_endpoint timer ~n ~k:1 in
    ]} *)

type t = {
  design : Netlist.Design.t;
  graph : Graph.t;
  delay : Delay.t;
  prop : Propagate.t;
  early : Early.t;
  obs : Obs.Ctx.t;
  mutable up_to_date : bool;
  mutable early_up_to_date : bool;
}

let create ?(topology = Delay.Steiner_tree) ?(obs = Obs.Ctx.null) design =
  let graph = Graph.build design in
  {
    design;
    graph;
    delay = Delay.create graph ~topology;
    prop = Propagate.create graph;
    early = Early.create graph;
    obs;
    up_to_date = false;
    early_up_to_date = false;
  }

let graph t = t.graph

let arrivals t = t.prop.Propagate.arr

let slacks t = t.prop.Propagate.slack

(** Full re-time from the current placement: delays, slews, arrivals,
    required times, slacks. One [sta.update] span per round, with
    [sta.delay] / [sta.arrival] / [sta.required] child spans. *)
let update t =
  Obs.Ctx.span t.obs "sta.update" (fun () ->
      Obs.Ctx.span t.obs "sta.delay" (fun () -> Delay.update t.delay);
      Propagate.update ~obs:t.obs t.prop t.graph;
      Obs.Ctx.count t.obs "sta.full_updates");
  t.up_to_date <- true;
  t.early_up_to_date <- false

let ensure t = if not t.up_to_date then update t

(** Placement moved: mark timing stale. *)
let invalidate t =
  t.up_to_date <- false;
  t.early_up_to_date <- false

(** Retarget the clock period without rebuilding the graph: the period
    is baked into the endpoint required times at [Graph.build], so a
    bare [design.clock_period <- p] would silently keep timing against
    the old clock. Refreshes the boundary conditions in place and marks
    timing stale; arc delays are placement-derived and survive. *)
let set_clock t period =
  if not (Float.is_finite period && period > 0.0) then
    Util.Errors.config_error ~what:"clock"
      (Printf.sprintf "clock period must be finite and positive, got %g" period);
  t.design.Netlist.Design.clock_period <- period;
  Graph.refresh_boundary t.graph;
  invalidate t

(** Incremental re-time after moving only [cells]: refreshes the delays of
    the nets those cells touch, then re-propagates. Much cheaper than
    [update] when few cells moved (delay calculation dominates; the
    propagation sweeps are linear and always run). *)
let update_moved t ~cells =
  if not t.up_to_date then update t
  else begin
    Obs.Ctx.span t.obs "sta.update" (fun () ->
        Obs.Ctx.span t.obs "sta.delay" (fun () -> Delay.update_moved t.delay ~cells);
        Propagate.update ~obs:t.obs t.prop t.graph;
        Obs.Ctx.count t.obs "sta.incremental_updates");
    t.early_up_to_date <- false
  end

let wns t =
  ensure t;
  Propagate.wns t.prop t.graph

let tns t =
  ensure t;
  Propagate.tns t.prop t.graph

let endpoint_slack t pin =
  ensure t;
  Propagate.endpoint_slack t.prop t.graph pin

let failing_endpoints t =
  ensure t;
  Propagate.failing_endpoints t.prop t.graph

let num_failing_endpoints t = List.length (failing_endpoints t)

let report_timing ?failing_only ?cap t ~n =
  ensure t;
  Report.report_timing ?failing_only ?cap t.prop t.graph ~n

let report_timing_endpoint ?failing_only t ~n ~k =
  ensure t;
  Report.report_timing_endpoint ?failing_only t.prop t.graph ~n ~k

(** The single most critical path of the design (None when nothing is
    reachable). *)
let critical_path t =
  ensure t;
  match Propagate.endpoints_by_slack t.prop t.graph with
  | [] -> None
  | e :: _ -> Paths.worst_path t.graph t.prop.Propagate.arr ~endpoint:e

let stats_of_paths t paths ~elapsed = Report.stats_of t.graph paths ~elapsed

(** Net wirelength as routed by the timer's topology (for reports). *)
let net_wirelen t nid = t.delay.Delay.net_wirelen.(nid)

(* ---- electrical design-rule checks (DRV) ---- *)

type drv = {
  cap_violations : int; (* nets whose driver load exceeds max_cap *)
  slew_violations : int; (* pins whose slew exceeds max_slew *)
  worst_cap : float;
  worst_slew : float;
}

(** Max-capacitance / max-slew checks over the current timing state —
    the DRV half of a timing signoff report. Thresholds default to
    library-reasonable values (fF, ps). *)
let check_drv ?(max_cap = 60.0) ?(max_slew = 120.0) t =
  ensure t;
  let cap_violations = ref 0 and worst_cap = ref 0.0 in
  Array.iter
    (fun c ->
      if c > !worst_cap then worst_cap := c;
      if c > max_cap then incr cap_violations)
    t.delay.Delay.net_cap;
  let slew_violations = ref 0 and worst_slew = ref 0.0 in
  Array.iter
    (fun s ->
      if s > !worst_slew then worst_slew := s;
      if s > max_slew then incr slew_violations)
    t.delay.Delay.slew;
  {
    cap_violations = !cap_violations;
    slew_violations = !slew_violations;
    worst_cap = !worst_cap;
    worst_slew = !worst_slew;
  }

(* ---- hold (early) analysis, computed on demand ---- *)

let ensure_early t =
  ensure t;
  if not t.early_up_to_date then begin
    Early.update t.early t.graph;
    t.early_up_to_date <- true
  end

(** Worst hold slack (0 when every hold check is met). *)
let whs t =
  ensure_early t;
  Early.whs t.early t.graph

(** Total negative hold slack. *)
let ths t =
  ensure_early t;
  Early.ths t.early t.graph

(** Hold-violating endpoints, worst first. *)
let hold_violations t =
  ensure_early t;
  Early.violations t.early t.graph

(** Early (min) arrival times; valid after any hold query. *)
let early_arrivals t =
  ensure_early t;
  t.early.Early.arr_early
