(** Critical path enumeration.

    A timing path runs from a startpoint to an endpoint. Enumeration of the
    k worst paths into a given endpoint uses best-first search over partial
    backward walks with the *exact* completion bound: a partial suffix
    (v ~> endpoint, with accumulated suffix delay D) can be completed to a
    full path of arrival at most arr(v) + D, and exactly that value is
    achievable by following worst-arrival predecessors. Keying the queue on
    that bound makes every completed pop the next-worst path — this is the
    implicit path representation used by modern timers (OpenTimer,
    UI-Timer) in its plain best-first form. *)

type path = {
  endpoint : int;
  arrival : float; (* data arrival at the endpoint along this path *)
  slack : float; (* end_required(endpoint) - arrival *)
  pins : int array; (* startpoint first, endpoint last *)
  arcs : int array; (* arc ids, aligned: arcs.(i) connects pins.(i) -> pins.(i+1) *)
}

(* Backward suffix as a shared cons-list of arc ids. *)
type suffix = Nil | Cons of int * suffix

let rec suffix_to_list s acc = match s with Nil -> acc | Cons (a, rest) -> suffix_to_list rest (a :: acc)

let make_path (graph : Graph.t) ~endpoint ~arrival ~start_pin ~suffix =
  (* suffix holds arcs from [start_pin] forward to [endpoint] in forward
     order already reversed during the backward walk. *)
  let arcs = Array.of_list (List.rev (suffix_to_list suffix [])) in
  let npins = Array.length arcs + 1 in
  let pins = Array.make npins start_pin in
  Array.iteri (fun i a -> pins.(i + 1) <- graph.arc_to.(a)) arcs;
  {
    endpoint;
    arrival;
    slack = graph.end_required.(endpoint) -. arrival;
    pins;
    arcs;
  }

(* Lexicographic comparison of pin-id arrays — the structural tie-break
   that makes path orderings total (and therefore reproducible across
   domain counts and heap layouts). *)
let compare_pins (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then compare la lb
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(** Total order "worst first": larger arrival first, ties broken on
    endpoint pin id, then pins lexicographically. Two paths compare equal
    only when they are the same path. *)
let compare_worst p q =
  let c = compare q.arrival p.arrival in
  if c <> 0 then c
  else
    let c = compare p.endpoint q.endpoint in
    if c <> 0 then c else compare_pins p.pins q.pins

(** Total order "most violating first": smaller slack first, same
    structural tie-break. Used by the pooled report command so goldens
    and n*k extraction are reproducible under slack ties. *)
let compare_by_slack p q =
  let c = compare p.slack q.slack in
  if c <> 0 then c
  else
    let c = compare p.endpoint q.endpoint in
    if c <> 0 then c else compare_pins p.pins q.pins

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

(** [k_worst graph arr ~endpoint ~k] returns up to [k] complete paths into
    [endpoint], worst (largest arrival) first. [arr] must hold the current
    arrival times. Returns [] when the endpoint is unreachable. *)
let k_worst (graph : Graph.t) (arr : float array) ~endpoint ~k =
  if k <= 0 || not (Float.is_finite arr.(endpoint)) then []
  else begin
    (* Min-heap on the negated completion bound. Payload: (node, suffix
       delay, suffix arcs). *)
    let pq : (int * float * suffix) Util.Dheap.t = Util.Dheap.create () in
    Util.Dheap.push pq (-.arr.(endpoint)) (endpoint, 0.0, Nil);
    let out = ref [] in
    let count = ref 0 in
    (* Arrival of the k-th completed path. Completion bounds pop in
       non-increasing order, so once a popped bound drops below this no
       remaining path can tie the k-th worst. Until then every tied
       completion is collected, which makes the returned k-subset
       canonical under [compare_worst] even when more than k paths share
       the boundary arrival bitwise (symmetric reconvergent fanin). The
       bound arr(v) + D is exact only in real arithmetic — float
       re-association wobbles it by ~n ulps relative to the completed
       arrival — so the cut-off carries a relative slop well above that
       noise; over-collected near-ties are sorted out by the final
       truncation. *)
    let kth = ref Float.neg_infinity in
    let cutoff = ref Float.neg_infinity in
    let stop = ref false in
    while (not !stop) && not (Util.Dheap.is_empty pq) do
      let neg_bound, (v, sfx_delay, sfx) = Util.Dheap.pop pq in
      let bound = -.neg_bound in
      if !count >= k && bound < !cutoff then stop := true
      else if graph.is_startpoint.(v) || graph.in_start.(v) = graph.in_start.(v + 1) then begin
        (* Complete path: v has no predecessors to extend through. *)
        if graph.is_startpoint.(v) then begin
          out := make_path graph ~endpoint ~arrival:bound ~start_pin:v ~suffix:sfx :: !out;
          incr count;
          if !count = k then begin
            kth := bound;
            cutoff := !kth -. (1e-9 *. (1.0 +. Float.abs !kth))
          end
        end
        (* Non-startpoint sources (dangling pins) are not real paths. *)
      end
      else
        for i = graph.in_start.(v) to graph.in_start.(v + 1) - 1 do
          let a = graph.in_arc.(i) in
          let u = graph.arc_from.(a) in
          if Float.is_finite arr.(u) then begin
            let nd = sfx_delay +. graph.arc_delay.(a) in
            Util.Dheap.push pq (-.(arr.(u) +. nd)) (u, nd, Cons (a, sfx))
          end
        done
    done;
    (* Pop order among equal completion bounds depends on heap internals;
       canonicalise with the structural tie-break, then truncate the
       over-collected boundary ties back to k. *)
    take k (List.stable_sort compare_worst (List.rev !out))
  end

(** The single worst path into [endpoint] by following worst-arrival
    predecessors — O(depth), no queue. *)
let worst_path (graph : Graph.t) (arr : float array) ~endpoint =
  match k_worst graph arr ~endpoint ~k:1 with [] -> None | p :: _ -> Some p

(** Validity check used by tests: consecutive pins are linked by the listed
    arcs, the path starts at a startpoint and ends at the endpoint, and the
    arrival equals the sum of delays plus the start arrival. *)
let is_valid (graph : Graph.t) p =
  let n = Array.length p.pins in
  n >= 1
  && graph.is_startpoint.(p.pins.(0))
  && p.pins.(n - 1) = p.endpoint
  && graph.is_endpoint.(p.endpoint)
  && Array.length p.arcs = n - 1
  && (let ok = ref true in
      Array.iteri
        (fun i a ->
          if graph.arc_from.(a) <> p.pins.(i) || graph.arc_to.(a) <> p.pins.(i + 1) then
            ok := false)
        p.arcs;
      !ok)
  &&
  let total =
    Array.fold_left
      (fun acc a -> acc +. graph.arc_delay.(a))
      graph.start_arrival.(p.pins.(0))
      p.arcs
  in
  Float.abs (total -. p.arrival) < 1e-6 *. (1.0 +. Float.abs p.arrival)
