(** Early (min-delay) analysis and hold checks:
    hold_slack(D) = min-arrival(D) - hold(FF), ideal zero-skew clock,
    single-corner delays. Primary outputs have no hold check. *)

type t = {
  arr_early : float array; (* per pin; +inf when unreachable *)
  hold_slack : float array; (* per pin; +inf for non-checked pins *)
}

val create : Graph.t -> t

(** Requires current arc delays (run a timer update first). *)
val update : t -> Graph.t -> unit

(** Worst hold slack (0 when all met). *)
val whs : t -> Graph.t -> float

(** Total negative hold slack. *)
val ths : t -> Graph.t -> float

(** Hold-violating endpoints, worst first. *)
val violations : t -> Graph.t -> int list
