(** The timing graph: a DAG over design pins.

    Arcs:
    - net arcs: net driver pin -> each sink pin (wire + driver delay);
    - cell arcs: each input pin -> each output pin of a combinational cell.

    Flip-flops cut the graph: Q pins are startpoints (launch at clk-to-Q),
    D pins are endpoints (setup check against the clock period). Primary
    input pads start at arrival 0, primary output pads are endpoints with
    required time = clock period.

    The structure is static over a placement run; only arc delays change,
    so adjacency (CSR) and the topological order are built once. *)

open Netlist

type t = {
  design : Design.t;
  num_arcs : int;
  arc_from : int array;
  arc_to : int array;
  arc_is_net : bool array;
  arc_net : int array; (* net id for net arcs, -1 for cell arcs *)
  arc_sink_idx : int array; (* index into net.sinks for net arcs *)
  arc_delay : float array; (* updated by Delay.update each round *)
  in_start : int array; (* CSR: in-arcs of pin p are in_arc.[in_start.(p) .. in_start.(p+1)-1] *)
  in_arc : int array;
  out_start : int array;
  out_arc : int array;
  topo : int array; (* pin ids, topological (sources first) *)
  is_startpoint : bool array;
  is_endpoint : bool array;
  endpoints : int array;
  start_arrival : float array; (* valid where is_startpoint *)
  end_required : float array; (* valid where is_endpoint *)
}

let num_pins t = Design.num_pins t.design

exception Combinational_loop

(* Boundary conditions are the only graph state derived from the design's
   timing constraints rather than its structure. Factored out of [build]
   so a constraint change (clock retarget ECO) refreshes them in place —
   adjacency, topological order and arc delays all survive. *)
let refresh_boundary_conditions ~(d : Design.t) ~start_arrival ~end_required =
  for cid = 0 to Design.num_cells d - 1 do
    match Design.kind d cid with
    | Design.Logic when Design.is_ff d cid ->
        let lc = Design.libcell d cid in
        Design.iter_cell_pins d cid (fun pid ->
            match Design.pin_dir d pid with
            | Design.Out -> start_arrival.(pid) <- lc.Libcell.clk_to_q
            | Design.In -> end_required.(pid) <- d.clock_period -. lc.Libcell.setup)
    | Design.Input_pad ->
        Design.iter_cell_pins d cid (fun pid -> start_arrival.(pid) <- d.input_delay)
    | Design.Output_pad ->
        Design.iter_cell_pins d cid (fun pid ->
            end_required.(pid) <- d.clock_period -. d.output_delay)
    | Design.Logic | Design.Blockage -> ()
  done

let refresh_boundary t =
  refresh_boundary_conditions ~d:t.design ~start_arrival:t.start_arrival
    ~end_required:t.end_required

let build (d : Design.t) =
  let np = Design.num_pins d in
  let arcs_from = Util.Gvec.create () in
  let arcs_to = Util.Gvec.create () in
  let arcs_is_net = Util.Gvec.create () in
  let arcs_net = Util.Gvec.create () in
  let arcs_sink = Util.Gvec.create () in
  let add_arc ~from_pin ~to_pin ~is_net ~net ~sink_idx =
    Util.Gvec.push arcs_from from_pin;
    Util.Gvec.push arcs_to to_pin;
    Util.Gvec.push arcs_is_net is_net;
    Util.Gvec.push arcs_net net;
    Util.Gvec.push arcs_sink sink_idx
  in
  (* Net arcs first, per net in sink order: [Delay.net_first_arc] relies
     on each net's arcs being contiguous at the front of the arc list. *)
  for nid = 0 to Design.num_nets d - 1 do
    let driver = d.net_driver.(nid) in
    for k = 0 to Design.net_num_sinks d nid - 1 do
      add_arc ~from_pin:driver ~to_pin:(Design.net_sink d nid k) ~is_net:true ~net:nid
        ~sink_idx:k
    done
  done;
  for cid = 0 to Design.num_cells d - 1 do
    if Design.kind d cid = Design.Logic && not (Design.is_ff d cid) then
      Design.iter_cell_pins d cid (fun i ->
          if Design.pin_dir d i = Design.In then
            Design.iter_cell_pins d cid (fun o ->
                if Design.pin_dir d o = Design.Out then
                  add_arc ~from_pin:i ~to_pin:o ~is_net:false ~net:(-1) ~sink_idx:(-1)))
  done;
  let arc_from = Util.Gvec.to_array arcs_from in
  let arc_to = Util.Gvec.to_array arcs_to in
  let num_arcs = Array.length arc_from in
  (* CSR adjacency. *)
  let build_csr key =
    let start = Array.make (np + 1) 0 in
    for a = 0 to num_arcs - 1 do
      start.(key a + 1) <- start.(key a + 1) + 1
    done;
    for p = 1 to np do
      start.(p) <- start.(p) + start.(p - 1)
    done;
    let fill = Array.copy start in
    let adj = Array.make num_arcs 0 in
    for a = 0 to num_arcs - 1 do
      adj.(fill.(key a)) <- a;
      fill.(key a) <- fill.(key a) + 1
    done;
    (start, adj)
  in
  let in_start, in_arc = build_csr (fun a -> arc_to.(a)) in
  let out_start, out_arc = build_csr (fun a -> arc_from.(a)) in
  (* Kahn topological sort; a leftover pin means a combinational loop. *)
  let indeg = Array.make np 0 in
  for a = 0 to num_arcs - 1 do
    indeg.(arc_to.(a)) <- indeg.(arc_to.(a)) + 1
  done;
  let topo = Array.make np 0 in
  let head = ref 0 and tail = ref 0 in
  for p = 0 to np - 1 do
    if indeg.(p) = 0 then begin
      topo.(!tail) <- p;
      incr tail
    end
  done;
  while !head < !tail do
    let p = topo.(!head) in
    incr head;
    for i = out_start.(p) to out_start.(p + 1) - 1 do
      let a = out_arc.(i) in
      let q = arc_to.(a) in
      indeg.(q) <- indeg.(q) - 1;
      if indeg.(q) = 0 then begin
        topo.(!tail) <- q;
        incr tail
      end
    done
  done;
  if !tail <> np then raise Combinational_loop;
  (* Start / end point classification and boundary conditions. *)
  let is_startpoint = Array.make np false in
  let is_endpoint = Array.make np false in
  let start_arrival = Array.make np 0.0 in
  let end_required = Array.make np 0.0 in
  for cid = 0 to Design.num_cells d - 1 do
    match Design.kind d cid with
    | Design.Logic when Design.is_ff d cid ->
        Design.iter_cell_pins d cid (fun pid ->
            match Design.pin_dir d pid with
            | Design.Out -> is_startpoint.(pid) <- true
            | Design.In -> is_endpoint.(pid) <- true)
    | Design.Input_pad ->
        Design.iter_cell_pins d cid (fun pid -> is_startpoint.(pid) <- true)
    | Design.Output_pad ->
        Design.iter_cell_pins d cid (fun pid -> is_endpoint.(pid) <- true)
    | Design.Logic | Design.Blockage -> ()
  done;
  refresh_boundary_conditions ~d ~start_arrival ~end_required;
  let endpoints =
    Array.of_list
      (List.filter (fun p -> is_endpoint.(p)) (List.init np Fun.id))
  in
  {
    design = d;
    num_arcs;
    arc_from;
    arc_to;
    arc_is_net = Util.Gvec.to_array arcs_is_net;
    arc_net = Util.Gvec.to_array arcs_net;
    arc_sink_idx = Util.Gvec.to_array arcs_sink;
    arc_delay = Array.make num_arcs 0.0;
    in_start;
    in_arc;
    out_start;
    out_arc;
    topo;
    is_startpoint;
    is_endpoint;
    endpoints;
    start_arrival;
    end_required;
  }
