(** The two critical-path extraction commands compared by the paper
    (Sec. III-B, Table I).

    [report_timing ~n]: OpenTimer-style — up to n worst paths from each of
    the n worst endpoints pooled (O(n^2)), globally worst n returned.
    Concentrates on few endpoints.

    [report_timing_endpoint ~n ~k]: the paper's method — the k worst paths
    of each of the n worst endpoints, O(n*k), full endpoint coverage. *)

type stats = {
  num_paths : int;
  num_endpoints : int; (* distinct endpoints covered *)
  num_pin_pairs : int; (* distinct net-arc (driver, sink) pairs *)
  elapsed : float; (* seconds *)
}

val stats_of : Graph.t -> Paths.path list -> elapsed:float -> stats

(** [failing_only] (default true) restricts to violated endpoints; [cap]
    bounds the candidate pool of the O(n^2) command. *)
val report_timing :
  ?failing_only:bool -> ?cap:int -> Propagate.t -> Graph.t -> n:int -> Paths.path list

val report_timing_endpoint :
  ?failing_only:bool -> Propagate.t -> Graph.t -> n:int -> k:int -> Paths.path list

(** OpenTimer-style textual path report (per-pin increments + slack). *)
val pp_path : Format.formatter -> Graph.t -> Paths.path -> unit
