(** Arrival / required propagation and slack computation (late/max
    analysis — setup checks, the ICCAD2015 TDP contest metric). Pins
    unreachable from startpoints keep arrival -inf and never violate. *)

type t = {
  arr : float array;
  req : float array;
  slack : float array;
  levels : int array array; (* pins bucketed by topological depth, built once *)
}

val create : Graph.t -> t

(** Forward arrivals, backward required times, slacks; call after the arc
    delays were refreshed. Levelized: each depth level fans out across
    [Util.Parallel] domains (max/min are exact, so results are bitwise
    equal to the sequential sweep). [obs] wraps the sweeps in
    [sta.arrival] / [sta.required] spans. *)
val update : ?obs:Obs.Ctx.t -> t -> Graph.t -> unit

(** Slack at an endpoint pin (infinite when unreachable). *)
val endpoint_slack : t -> Graph.t -> int -> float

(** Worst negative slack (0 when all met). *)
val wns : t -> Graph.t -> float

(** Sum of negative endpoint slacks. *)
val tns : t -> Graph.t -> float

(** Endpoints with negative slack, worst first. *)
val failing_endpoints : t -> Graph.t -> int list

(** All endpoints by slack, worst first. *)
val endpoints_by_slack : t -> Graph.t -> int list
