(** Early (min-delay) analysis and hold checks.

    Setup (late) analysis asks whether data arrives *before* the capture
    edge; hold asks whether the *earliest* data arrival stays after the
    capture FF's hold window at the launching edge:

      hold_slack(D) = arr_early(D) - hold(FF)

    with an ideal zero-skew clock. Early arrivals propagate with MIN over
    in-arcs using the same single-corner arc delays as the late pass (no
    min/max derating — a documented simplification; the structure is the
    same with a second delay set). Primary outputs have no hold check. *)

open Netlist

type t = {
  arr_early : float array; (* per pin; +inf when unreachable *)
  hold_slack : float array; (* per pin; +inf for non-checked pins *)
}

let create graph =
  let np = Graph.num_pins graph in
  { arr_early = Array.make np 0.0; hold_slack = Array.make np 0.0 }

let hold_requirement (d : Design.t) pin =
  let owner = d.pin_owner.(pin) in
  match Design.kind d owner with
  | Design.Logic when Design.is_ff d owner -> Some (Design.libcell d owner).Libcell.hold
  | Design.Logic | Design.Input_pad | Design.Output_pad | Design.Blockage -> None

(** Propagate early arrivals and compute hold slacks. Requires the arc
    delays to be current (run [Delay.update] / a timer update first). *)
let update t (graph : Graph.t) =
  let d = graph.design in
  let np = Graph.num_pins graph in
  let arr = t.arr_early in
  for p = 0 to np - 1 do
    arr.(p) <- (if graph.is_startpoint.(p) then graph.start_arrival.(p) else Float.infinity)
  done;
  Array.iter
    (fun p ->
      for i = graph.in_start.(p) to graph.in_start.(p + 1) - 1 do
        let a = graph.in_arc.(i) in
        let cand = arr.(graph.arc_from.(a)) +. graph.arc_delay.(a) in
        if cand < arr.(p) then arr.(p) <- cand
      done)
    graph.topo;
  for p = 0 to np - 1 do
    t.hold_slack.(p) <-
      (if graph.is_endpoint.(p) && Float.is_finite arr.(p) then
         match hold_requirement d p with
         | Some hold -> arr.(p) -. hold
         | None -> Float.infinity
       else Float.infinity)
  done

(** Worst hold slack over checked endpoints (0 when all met or none). *)
let whs t (graph : Graph.t) =
  Array.fold_left
    (fun acc p ->
      let s = t.hold_slack.(p) in
      if Float.is_finite s then Float.min acc s else acc)
    0.0 graph.endpoints
  |> Float.min 0.0

(** Total (negative) hold slack. *)
let ths t (graph : Graph.t) =
  Array.fold_left
    (fun acc p ->
      let s = t.hold_slack.(p) in
      if Float.is_finite s && s < 0.0 then acc +. s else acc)
    0.0 graph.endpoints

(** Endpoints violating hold, worst first. *)
let violations t (graph : Graph.t) =
  Array.to_list graph.endpoints
  |> List.filter (fun p -> Float.is_finite t.hold_slack.(p) && t.hold_slack.(p) < 0.0)
  |> List.sort (fun a b -> compare t.hold_slack.(a) t.hold_slack.(b))
