(** Delay calculation: refreshes arc delays and pin slews from the current
    placement.

    Net arcs: delay = R_driver * C_net_total + Elmore(driver -> sink).
    Cell arcs: delay = intrinsic + slew_sens * slew(input).
    Output slews depend only on load, so a net pass followed by a cell-arc
    pass is exact (no fixed point needed). *)

type topology = Star | Steiner_tree

(** Driver (resistance, slew_base, slew_load); pads use nominal pad
    parameters. Raises [Invalid_argument] for non-driver pins. *)
val driver_params : Netlist.Design.t -> int -> float * float * float

type t = {
  graph : Graph.t;
  topology : topology;
  slew : float array; (* per pin *)
  net_cap : float array; (* per net: total load seen by the driver *)
  net_wirelen : float array; (* per net: routed (tree) wirelength *)
}

val create : Graph.t -> topology:topology -> t

(** Full refresh of every net and cell arc. *)
val update : t -> unit

(** Incremental refresh after moving only [cells]: recompute the nets
    touching those cells and the cell arcs their sink slews feed.
    Exactly equivalent to {!update} for that placement change. *)
val update_moved : t -> cells:int list -> unit
