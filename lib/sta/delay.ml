(** Delay calculation: refreshes every arc delay and pin slew from the
    current placement.

    Net arcs (driver -> sink):
      delay = R_driver * C_net_total + Elmore(driver -> sink)
    Cell arcs (input -> output of a combinational cell):
      delay = intrinsic + slew_sens * slew(input)
    Slews:
      slew(output pin) = slew_base + slew_load * C_net_total
      slew(sink pin)   = slew(driver) + wire_slew_factor * wire_delay

    Output slew depends only on load (never on input slew), so one pass
    over nets followed by one pass over cell arcs is exact — no fixed-point
    iteration is needed. *)

open Netlist

type topology = Star | Steiner_tree

(* Primary-input pads drive their net through a nominal pad driver. *)
let pad_drive_res = 5.0

let pad_slew_base = 10.0

let pad_slew_load = 0.5

(* PERI-style degradation: sink slew grows with the wire's Elmore delay. *)
let wire_slew_factor = 0.69

let driver_params (d : Design.t) pin_id =
  let owner = d.pin_owner.(pin_id) in
  match Design.kind d owner with
  | Design.Logic ->
      let lc = Design.libcell d owner in
      (lc.Libcell.drive_res, lc.Libcell.slew_base, lc.Libcell.slew_load)
  | Design.Input_pad -> (pad_drive_res, pad_slew_base, pad_slew_load)
  | Design.Output_pad | Design.Blockage -> invalid_arg "Delay.driver_params: not a driver"

(** Scratch state reused across update rounds. *)
type t = {
  graph : Graph.t;
  topology : topology;
  slew : float array; (* per pin *)
  net_cap : float array; (* per net: total load seen by the driver *)
  net_wirelen : float array; (* per net: routed (tree) wirelength *)
}

let create graph ~topology =
  {
    graph;
    topology;
    slew = Array.make (Graph.num_pins graph) 0.0;
    net_cap = Array.make (Design.num_nets graph.Graph.design) 0.0;
    net_wirelen = Array.make (Design.num_nets graph.Graph.design) 0.0;
  }

(* Arc ids of a net's sinks, aligned with sink order: net arcs were pushed
   per net, in sink order, before all cell arcs, so they form a contiguous
   block. We precompute each net's first arc id. *)
let net_first_arc graph =
  let d = graph.Graph.design in
  let firsts = Array.make (Design.num_nets d) 0 in
  let acc = ref 0 in
  for nid = 0 to Design.num_nets d - 1 do
    firsts.(nid) <- !acc;
    acc := !acc + Design.net_num_sinks d nid
  done;
  firsts

(* Refresh one net: topology, Elmore, net arc delays, driver/sink slews.
   [firsts] maps net id to its first (contiguous) arc id. *)
let update_net t firsts nid =
  let graph = t.graph in
  let d = graph.Graph.design in
  let r = d.r_per_unit and c = d.c_per_unit in
  let nsinks = Design.net_num_sinks d nid in
  let driver = d.net_driver.(nid) in
  let xs = Array.make (nsinks + 1) 0.0 and ys = Array.make (nsinks + 1) 0.0 in
  xs.(0) <- Design.pin_x d driver;
  ys.(0) <- Design.pin_y d driver;
  for k = 0 to nsinks - 1 do
    let pid = Design.net_sink d nid k in
    xs.(k + 1) <- Design.pin_x d pid;
    ys.(k + 1) <- Design.pin_y d pid
  done;
  let tree =
    match t.topology with
    | Star -> Rctree.Steiner.star ~xs ~ys
    | Steiner_tree -> Rctree.Steiner.steiner ~xs ~ys
  in
  let term_cap k = d.pin_cap.{Design.net_sink d nid (k - 1)} in
  let res = Rctree.Elmore.compute tree ~r ~c ~term_cap in
  t.net_cap.(nid) <- res.Rctree.Elmore.total_cap;
  t.net_wirelen.(nid) <- res.Rctree.Elmore.total_wirelen;
  let drive_res, slew_base, slew_load = driver_params d driver in
  let drv_slew = slew_base +. (slew_load *. res.Rctree.Elmore.total_cap) in
  t.slew.(driver) <- drv_slew;
  (* Map caller terminals back to tree nodes once (O(nodes)). *)
  let node_of_term = Array.make (nsinks + 1) (-1) in
  Array.iteri
    (fun v term -> if term >= 0 then node_of_term.(term) <- v)
    tree.Rctree.Steiner.terminal;
  let base = firsts.(nid) in
  for k = 0 to nsinks - 1 do
    let node = node_of_term.(k + 1) in
    assert (node >= 0);
    let wire_d = res.Rctree.Elmore.sink_delay.(node) in
    graph.Graph.arc_delay.(base + k) <- (drive_res *. res.Rctree.Elmore.total_cap) +. wire_d;
    t.slew.(Design.net_sink d nid k) <- drv_slew +. (wire_slew_factor *. wire_d)
  done

(* Refresh the cell arcs leaving a pin (their delay depends on the pin's
   input slew, which a dirty net feeding the pin may have changed). *)
let update_cell_arcs_from t pin =
  let graph = t.graph in
  let d = graph.Graph.design in
  for j = graph.Graph.out_start.(pin) to graph.Graph.out_start.(pin + 1) - 1 do
    let a = graph.Graph.out_arc.(j) in
    if not graph.Graph.arc_is_net.(a) then begin
      let owner = d.pin_owner.(pin) in
      match Design.kind d owner with
      | Design.Logic ->
          let lc = Design.libcell d owner in
          graph.Graph.arc_delay.(a) <-
            lc.Libcell.intrinsic +. (lc.Libcell.slew_sens *. t.slew.(pin))
      | Design.Input_pad | Design.Output_pad | Design.Blockage -> assert false
    end
  done

(** Recompute all arc delays and slews from the placement in [d.x/d.y]. *)
let update t =
  let graph = t.graph in
  let d = graph.Graph.design in
  let firsts = net_first_arc graph in
  (* Pass 1: nets — topology, Elmore, net arc delays, slews. Each net
     writes only its own arcs, caps and pin slews (driver + sinks are
     unique to a net), so the loop is safely data-parallel — this is the
     paper's GPU-accelerated timing kernel on CPU domains. *)
  Util.Parallel.for_ ~grain:128 ~name:"sta.delay.nets" (Design.num_nets d) (fun nid ->
      update_net t firsts nid);
  (* Pass 2: cell arcs — slews at inputs are now final. *)
  for a = 0 to graph.Graph.num_arcs - 1 do
    if not graph.Graph.arc_is_net.(a) then begin
      let from_pin = graph.Graph.arc_from.(a) in
      let owner = d.pin_owner.(from_pin) in
      match Design.kind d owner with
      | Design.Logic ->
          let lc = Design.libcell d owner in
          graph.Graph.arc_delay.(a) <-
            lc.Libcell.intrinsic +. (lc.Libcell.slew_sens *. t.slew.(from_pin))
      | Design.Input_pad | Design.Output_pad | Design.Blockage ->
          assert false (* cell arcs only exist on logic cells *)
    end
  done

(** Incremental delay refresh after moving only [cells]: recomputes the
    nets touching those cells (and the cell arcs their sink slews feed);
    everything else keeps its delays. Equivalent to [update] for the
    affected placement change — the tests assert exact agreement. *)
let update_moved t ~cells =
  let graph = t.graph in
  let d = graph.Graph.design in
  let firsts = net_first_arc graph in
  let dirty_nets = Hashtbl.create 64 in
  List.iter
    (fun id ->
      Design.iter_cell_pins d id (fun pid ->
          let net = d.pin_net.(pid) in
          if net >= 0 then Hashtbl.replace dirty_nets net ()))
    cells;
  Hashtbl.iter
    (fun nid () ->
      update_net t firsts nid;
      (* Sink slews changed: their cells' input->output arcs follow. *)
      Design.iter_net_sinks d nid (fun sink -> update_cell_arcs_from t sink))
    dirty_nets
