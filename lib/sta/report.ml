(** The two critical-path extraction commands compared in the paper
    (Sec. III-B, Table I).

    - [report_timing graph arr ~n]: OpenTimer-style. Take the [n] worst
      endpoints; eagerly extract up to [n] worst paths from each (an
      O(n^2) candidate pool); keep the globally worst [n]. The returned
      set concentrates on a handful of endpoints — the pathology Table I
      quantifies.
    - [report_timing_endpoint graph arr ~n ~k]: the paper's method. For
      each of the [n] worst endpoints extract its [k] worst paths —
      O(n*k) work and every investigated endpoint is covered.

    Both only consider *failing* endpoints when [failing_only] (the
    paper's usage: n = number of failing endpoints). *)

type stats = {
  num_paths : int;
  num_endpoints : int; (* distinct endpoints covered by the result *)
  num_pin_pairs : int; (* distinct net-arc (driver, sink) pairs on paths *)
  elapsed : float; (* seconds *)
}

let worst_endpoints (prop : Propagate.t) (graph : Graph.t) ~n ~failing_only =
  let eps =
    if failing_only then Propagate.failing_endpoints prop graph
    else Propagate.endpoints_by_slack prop graph
  in
  List.filteri (fun i _ -> i < n) eps

(* Distinct (from, to) pairs over *net* arcs of the given paths: cell-arc
   pairs have fixed geometry (same cell) so the placement objective only
   ever uses net-arc pairs. *)
let count_pin_pairs (graph : Graph.t) paths =
  let tbl = Hashtbl.create 4096 in
  List.iter
    (fun (p : Paths.path) ->
      Array.iter (fun a -> if graph.arc_is_net.(a) then Hashtbl.replace tbl a ()) p.arcs)
    paths;
  Hashtbl.length tbl

let count_endpoints paths =
  let tbl = Hashtbl.create 1024 in
  List.iter (fun (p : Paths.path) -> Hashtbl.replace tbl p.Paths.endpoint ()) paths;
  Hashtbl.length tbl

let stats_of (graph : Graph.t) paths ~elapsed =
  {
    num_paths = List.length paths;
    num_endpoints = count_endpoints paths;
    num_pin_pairs = count_pin_pairs graph paths;
    elapsed;
  }

(** OpenTimer-style global top-n extraction (see module doc). The optional
    [cap] bounds the candidate pool to keep pathological calls tractable. *)
let report_timing ?(failing_only = true) ?(cap = 4_000_000) (prop : Propagate.t)
    (graph : Graph.t) ~n =
  let eps = worst_endpoints prop graph ~n ~failing_only in
  let per_endpoint = n in
  let budget = ref cap in
  let candidates =
    List.concat_map
      (fun e ->
        if !budget <= 0 then []
        else begin
          let k = min per_endpoint !budget in
          let ps = Paths.k_worst graph prop.Propagate.arr ~endpoint:e ~k in
          budget := !budget - List.length ps;
          ps
        end)
      eps
  in
  (* Total order (slack, endpoint, pins): reproducible under slack ties. *)
  let sorted = List.sort Paths.compare_by_slack candidates in
  List.filteri (fun i _ -> i < n) sorted

(** The paper's extraction: k worst paths for each of the n worst
    endpoints; every endpoint investigated is represented. Endpoints are
    independent best-first searches over read-only state, so the
    fan-out is parallel across domains (result order — and therefore the
    result itself — is identical to the sequential enumeration). *)
let report_timing_endpoint ?(failing_only = true) (prop : Propagate.t) (graph : Graph.t) ~n ~k =
  let eps = Array.of_list (worst_endpoints prop graph ~n ~failing_only) in
  let per_ep = Array.make (Array.length eps) [] in
  Util.Parallel.for_ ~grain:2 ~name:"extract.endpoints" (Array.length eps) (fun i ->
      per_ep.(i) <- Paths.k_worst graph prop.Propagate.arr ~endpoint:eps.(i) ~k);
  List.concat (Array.to_list per_ep)


(** OpenTimer-style textual path report: one line per pin with the arc
    increment and cumulative arrival, ending with the slack summary. *)
let pp_path fmt (graph : Graph.t) (p : Paths.path) =
  let d = graph.Graph.design in
  let label pid =
    Printf.sprintf "%s.%s"
      (Netlist.Design.cell_name d d.Netlist.Design.pin_owner.(pid))
      (Netlist.Design.pin_name d pid)
  in
  Format.fprintf fmt "Startpoint: %s@." (label p.Paths.pins.(0));
  Format.fprintf fmt "Endpoint:   %s@." (label p.Paths.endpoint);
  Format.fprintf fmt "  %-28s %10s %10s@." "Point" "Incr" "Arrival";
  let arrival = ref graph.Graph.start_arrival.(p.Paths.pins.(0)) in
  Format.fprintf fmt "  %-28s %10s %10.2f@." (label p.Paths.pins.(0)) "-" !arrival;
  Array.iteri
    (fun i a ->
      arrival := !arrival +. graph.Graph.arc_delay.(a);
      let kind = if graph.Graph.arc_is_net.(a) then "(net)" else "(cell)" in
      Format.fprintf fmt "  %-22s %-5s %10.2f %10.2f@."
        (label p.Paths.pins.(i + 1))
        kind graph.Graph.arc_delay.(a) !arrival)
    p.Paths.arcs;
  Format.fprintf fmt "  required %.2f, arrival %.2f, slack %.2f@."
    graph.Graph.end_required.(p.Paths.endpoint)
    p.Paths.arrival p.Paths.slack
