(** Arrival / required propagation and slack computation (late/max
    analysis, i.e. setup checks — the ICCAD2015 TDP contest metric).

    Pins unreachable from any startpoint keep arrival = -inf and never
    produce violations; symmetrically for required times. *)

type t = {
  arr : float array;
  req : float array;
  slack : float array;
}

let create graph =
  let np = Graph.num_pins graph in
  { arr = Array.make np 0.0; req = Array.make np 0.0; slack = Array.make np 0.0 }

let update ?(obs = Obs.Ctx.null) t (graph : Graph.t) =
  let np = Graph.num_pins graph in
  let arr = t.arr and req = t.req in
  (* Forward: arrival times in topological order. *)
  Obs.Ctx.span obs "sta.arrival" (fun () ->
      for p = 0 to np - 1 do
        arr.(p) <-
          (if graph.is_startpoint.(p) then graph.start_arrival.(p) else Float.neg_infinity)
      done;
      Array.iter
        (fun p ->
          for i = graph.in_start.(p) to graph.in_start.(p + 1) - 1 do
            let a = graph.in_arc.(i) in
            let cand = arr.(graph.arc_from.(a)) +. graph.arc_delay.(a) in
            if cand > arr.(p) then arr.(p) <- cand
          done)
        graph.topo);
  (* Backward: required times in reverse topological order, then slacks. *)
  Obs.Ctx.span obs "sta.required" (fun () ->
      for p = 0 to np - 1 do
        req.(p) <- (if graph.is_endpoint.(p) then graph.end_required.(p) else Float.infinity)
      done;
      for i = Array.length graph.topo - 1 downto 0 do
        let p = graph.topo.(i) in
        for j = graph.out_start.(p) to graph.out_start.(p + 1) - 1 do
          let a = graph.out_arc.(j) in
          let cand = req.(graph.arc_to.(a)) -. graph.arc_delay.(a) in
          if cand < req.(p) then req.(p) <- cand
        done
      done;
      for p = 0 to np - 1 do
        t.slack.(p) <-
          (if Float.is_finite arr.(p) && Float.is_finite req.(p) then req.(p) -. arr.(p)
           else Float.infinity)
      done)

(** Slack at an endpoint pin (infinite when the endpoint is unreachable). *)
let endpoint_slack t (graph : Graph.t) p =
  assert (graph.is_endpoint.(p));
  t.slack.(p)

(** Worst negative slack over all endpoints (0 when none violate). *)
let wns t (graph : Graph.t) =
  Array.fold_left
    (fun acc p ->
      let s = t.slack.(p) in
      if Float.is_finite s then Float.min acc s else acc)
    0.0 graph.endpoints
  |> Float.min 0.0

(** Total negative slack: sum of negative endpoint slacks. *)
let tns t (graph : Graph.t) =
  Array.fold_left
    (fun acc p ->
      let s = t.slack.(p) in
      if Float.is_finite s && s < 0.0 then acc +. s else acc)
    0.0 graph.endpoints

(** Endpoints with negative slack, worst first. *)
let failing_endpoints t (graph : Graph.t) =
  Array.to_list graph.endpoints
  |> List.filter (fun p -> Float.is_finite t.slack.(p) && t.slack.(p) < 0.0)
  |> List.sort (fun a b -> compare t.slack.(a) t.slack.(b))

(** All endpoints sorted by slack, worst first. *)
let endpoints_by_slack t (graph : Graph.t) =
  Array.to_list graph.endpoints |> List.sort (fun a b -> compare t.slack.(a) t.slack.(b))
