(** Arrival / required propagation and slack computation (late/max
    analysis, i.e. setup checks — the ICCAD2015 TDP contest metric).

    Pins unreachable from any startpoint keep arrival = -inf and never
    produce violations; symmetrically for required times.

    The sweeps are levelized: pins are bucketed by topological depth once
    (the graph is static over a placement run), and every pin of a level
    depends only on strictly earlier levels (arrivals) or strictly later
    levels (required times). Each level then fans out across domains —
    the GPU-timer propagation pattern on CPU domains. Max/min are exact,
    so parallel results are bitwise equal to sequential ones. *)

type t = {
  arr : float array;
  req : float array;
  slack : float array;
  levels : int array array; (* pins bucketed by topological depth, sources first *)
}

let build_levels (graph : Graph.t) =
  let np = Graph.num_pins graph in
  let depth = Array.make np 0 in
  Array.iter
    (fun p ->
      for i = graph.out_start.(p) to graph.out_start.(p + 1) - 1 do
        let q = graph.arc_to.(graph.out_arc.(i)) in
        if depth.(p) + 1 > depth.(q) then depth.(q) <- depth.(p) + 1
      done)
    graph.topo;
  let max_depth = Array.fold_left max 0 depth in
  let counts = Array.make (max_depth + 1) 0 in
  Array.iter (fun d -> counts.(d) <- counts.(d) + 1) depth;
  let levels = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (max_depth + 1) 0 in
  (* Bucket in pin order: deterministic level contents. *)
  for p = 0 to np - 1 do
    let d = depth.(p) in
    levels.(d).(fill.(d)) <- p;
    fill.(d) <- fill.(d) + 1
  done;
  levels

let create graph =
  let np = Graph.num_pins graph in
  {
    arr = Array.make np 0.0;
    req = Array.make np 0.0;
    slack = Array.make np 0.0;
    levels = build_levels graph;
  }

let update ?(obs = Obs.Ctx.null) t (graph : Graph.t) =
  let np = Graph.num_pins graph in
  let arr = t.arr and req = t.req in
  let nlevels = Array.length t.levels in
  (* Forward: arrival times level by level; within a level every pin only
     reads arrivals of strictly earlier levels. *)
  Obs.Ctx.span obs "sta.arrival" (fun () ->
      for l = 0 to nlevels - 1 do
        let level = t.levels.(l) in
        Util.Parallel.for_ ~grain:64 ~name:"sta.arrival.level" (Array.length level) (fun i ->
            let p = level.(i) in
            let a =
              ref
                (if graph.is_startpoint.(p) then graph.start_arrival.(p)
                 else Float.neg_infinity)
            in
            for j = graph.in_start.(p) to graph.in_start.(p + 1) - 1 do
              let arc = graph.in_arc.(j) in
              let cand = arr.(graph.arc_from.(arc)) +. graph.arc_delay.(arc) in
              if cand > !a then a := cand
            done;
            arr.(p) <- !a)
      done);
  (* Backward: required times from the deepest level up, then slacks. *)
  Obs.Ctx.span obs "sta.required" (fun () ->
      for l = nlevels - 1 downto 0 do
        let level = t.levels.(l) in
        Util.Parallel.for_ ~grain:64 ~name:"sta.required.level" (Array.length level) (fun i ->
            let p = level.(i) in
            let r =
              ref (if graph.is_endpoint.(p) then graph.end_required.(p) else Float.infinity)
            in
            for j = graph.out_start.(p) to graph.out_start.(p + 1) - 1 do
              let arc = graph.out_arc.(j) in
              let cand = req.(graph.arc_to.(arc)) -. graph.arc_delay.(arc) in
              if cand < !r then r := cand
            done;
            req.(p) <- !r)
      done;
      Util.Parallel.for_ ~name:"sta.slack" np (fun p ->
          t.slack.(p) <-
            (if Float.is_finite arr.(p) && Float.is_finite req.(p) then req.(p) -. arr.(p)
             else Float.infinity)))

(** Slack at an endpoint pin (infinite when the endpoint is unreachable). *)
let endpoint_slack t (graph : Graph.t) p =
  assert (graph.is_endpoint.(p));
  t.slack.(p)

(** Worst negative slack over all endpoints (0 when none violate). *)
let wns t (graph : Graph.t) =
  Array.fold_left
    (fun acc p ->
      let s = t.slack.(p) in
      if Float.is_finite s then Float.min acc s else acc)
    0.0 graph.endpoints
  |> Float.min 0.0

(** Total negative slack: sum of negative endpoint slacks. *)
let tns t (graph : Graph.t) =
  Array.fold_left
    (fun acc p ->
      let s = t.slack.(p) in
      if Float.is_finite s && s < 0.0 then acc +. s else acc)
    0.0 graph.endpoints

(* Worst slack first; equal slacks order by pin id, so endpoint rankings
   (and everything derived from them — extraction, goldens) are total
   orders, reproducible across runs and domain counts. *)
let compare_endpoint_slack t a b =
  let c = compare t.slack.(a) t.slack.(b) in
  if c <> 0 then c else compare a b

(** Endpoints with negative slack, worst first (ties by pin id). *)
let failing_endpoints t (graph : Graph.t) =
  Array.to_list graph.endpoints
  |> List.filter (fun p -> Float.is_finite t.slack.(p) && t.slack.(p) < 0.0)
  |> List.sort (compare_endpoint_slack t)

(** All endpoints sorted by slack, worst first (ties by pin id). *)
let endpoints_by_slack t (graph : Graph.t) =
  Array.to_list graph.endpoints |> List.sort (compare_endpoint_slack t)
