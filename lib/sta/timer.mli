(** Facade over the static timing engine — the OpenTimer-equivalent object
    a placement flow talks to.

    {[
      let timer = Timer.create design ~topology:Delay.Steiner_tree in
      Timer.update timer;
      let tns = Timer.tns timer in
      let paths = Timer.report_timing_endpoint timer ~n ~k:1 in
    ]} *)

type t

(** Builds the timing graph; [topology] picks the wire model (default
    Steiner trees, matching the evaluation kit). [obs] receives a
    [sta.update] span per re-time (children [sta.delay] / [sta.arrival] /
    [sta.required]) plus full/incremental update counters. *)
val create : ?topology:Delay.topology -> ?obs:Obs.Ctx.t -> Netlist.Design.t -> t

val graph : t -> Graph.t

(** Current arrival times (valid after an update). *)
val arrivals : t -> float array

val slacks : t -> float array

(** Full re-time from the current placement. *)
val update : t -> unit

(** Mark timing stale after a placement change; queries re-time lazily. *)
val invalidate : t -> unit

(** Retarget the clock period in place (writes [design.clock_period],
    refreshes the graph's baked-in endpoint required times, invalidates).
    The warm-cache path for a constraint ECO — the graph, RC trees and
    arc delays survive. Raises [Util.Errors.Error (Config_error _)] for
    a non-finite or non-positive period. *)
val set_clock : t -> float -> unit

(** Incremental re-time after moving only [cells] (falls back to a full
    update when the timer was stale). *)
val update_moved : t -> cells:int list -> unit

val wns : t -> float

val tns : t -> float

val endpoint_slack : t -> int -> float

val failing_endpoints : t -> int list

val num_failing_endpoints : t -> int

val report_timing : ?failing_only:bool -> ?cap:int -> t -> n:int -> Paths.path list

val report_timing_endpoint : ?failing_only:bool -> t -> n:int -> k:int -> Paths.path list

(** The single most critical path of the design. *)
val critical_path : t -> Paths.path option

val stats_of_paths : t -> Paths.path list -> elapsed:float -> Report.stats

(** Routed wirelength of a net under the timer's topology. *)
val net_wirelen : t -> int -> float

type drv = {
  cap_violations : int; (* nets whose driver load exceeds max_cap *)
  slew_violations : int; (* pins whose slew exceeds max_slew *)
  worst_cap : float;
  worst_slew : float;
}

(** Max-capacitance / max-slew electrical rule checks (the DRV half of a
    signoff report); thresholds in fF / ps. *)
val check_drv : ?max_cap:float -> ?max_slew:float -> t -> drv

(** Worst hold slack, 0 when met (early analysis runs on demand). *)
val whs : t -> float

(** Total negative hold slack. *)
val ths : t -> float

(** Hold-violating endpoints, worst first. *)
val hold_violations : t -> int list

(** Early (min) arrival times. *)
val early_arrivals : t -> float array
