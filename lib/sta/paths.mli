(** Critical path enumeration: best-first search over partial backward
    walks keyed by the exact completion bound (the implicit path
    representation of modern timers, in plain best-first form). Every pop
    of a complete path is the next-worst path into the endpoint. *)

type path = {
  endpoint : int;
  arrival : float; (* data arrival at the endpoint along this path *)
  slack : float; (* end_required(endpoint) - arrival *)
  pins : int array; (* startpoint first, endpoint last *)
  arcs : int array; (* arcs.(i) connects pins.(i) -> pins.(i+1) *)
}

(** Total order "worst first": larger arrival first, ties broken on the
    endpoint pin id and then on the pin sequence lexicographically, so
    equal-arrival paths order reproducibly (across runs and domain
    counts). Equal only for identical paths. *)
val compare_worst : path -> path -> int

(** Total order "most violating first": smaller slack first, same
    structural tie-break as {!compare_worst}. *)
val compare_by_slack : path -> path -> int

(** Up to [k] complete paths into [endpoint], worst (largest arrival)
    first ({!compare_worst} order); [] when unreachable. [arr] must hold
    current arrivals. *)
val k_worst : Graph.t -> float array -> endpoint:int -> k:int -> path list

(** The single worst path into [endpoint]. *)
val worst_path : Graph.t -> float array -> endpoint:int -> path option

(** Structural validity + arrival consistency; used by tests. *)
val is_valid : Graph.t -> path -> bool
