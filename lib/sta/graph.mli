(** The timing graph: a DAG over design pins.

    Arcs are net arcs (driver -> sink) and cell arcs (input -> output of a
    combinational cell). Flip-flops cut the graph: Q pins launch at
    clk-to-Q, D pins check setup against the clock period; input pads
    start at 0, output pads require the period. Structure is static over a
    placement run — only [arc_delay] changes. *)

type t = {
  design : Netlist.Design.t;
  num_arcs : int;
  arc_from : int array;
  arc_to : int array;
  arc_is_net : bool array;
  arc_net : int array; (* net id for net arcs, -1 for cell arcs *)
  arc_sink_idx : int array; (* index into net.sinks for net arcs *)
  arc_delay : float array; (* refreshed by Delay each timing round *)
  in_start : int array; (* CSR: in-arcs of pin p are
                           in_arc.(in_start.(p) .. in_start.(p+1)-1) *)
  in_arc : int array;
  out_start : int array;
  out_arc : int array;
  topo : int array; (* pin ids, sources first *)
  is_startpoint : bool array;
  is_endpoint : bool array;
  endpoints : int array;
  start_arrival : float array; (* valid where is_startpoint *)
  end_required : float array; (* valid where is_endpoint *)
}

val num_pins : t -> int

exception Combinational_loop

(** Build from a design; raises {!Combinational_loop} on cyclic logic. *)
val build : Netlist.Design.t -> t

(** Recompute [start_arrival]/[end_required] from the design's *current*
    clock period and IO delays. The graph bakes these constraints in at
    [build] time; after a constraint ECO (clock retarget) this refresh —
    followed by a re-time — brings timing up to date without rebuilding
    adjacency or the topological order. *)
val refresh_boundary : t -> unit
