(** Van Ginneken buffer insertion (estimation) on a Steiner topology:
    bottom-up non-dominated (cap, required-time) candidates; buffers may
    sit at internal tree nodes. Quantifies how much required-time a legal
    buffering could recover on a net — the cost long wire segments impose
    (paper Sec. III-C). *)

type buffer = { in_cap : float; intrinsic : float; drive : float }

val default_buffer : buffer

type candidate = { cap : float; q : float; buffers : int }

(** Exposed for tests: keep non-dominated candidates (cap up, q up). *)
val prune : candidate list -> candidate list

type result = {
  best_q : float; (* required time achievable at the driver output *)
  buffers_used : int;
  unbuffered_q : float; (* same metric with no buffers allowed *)
}

(** [term_req i] / [term_cap i]: required time and load of caller terminal
    [i] (root terminal 0 is the driver). *)
val estimate :
  Steiner.t ->
  r:float ->
  c:float ->
  drive_res:float ->
  term_req:(int -> float) ->
  term_cap:(int -> float) ->
  ?buf:buffer ->
  ?max_buffers:int ->
  unit ->
  result
