(** Wire parasitics configuration (see the interface). *)

type t = { r_per_unit : float; c_per_unit : float }

(* Mirrors Workloads.Generate's wire_r/wire_c; kept literal here because
   rctree sits below workloads in the dependency order. *)
let default = { r_per_unit = 0.060; c_per_unit = 0.50 }

let validate t =
  let bad what v =
    Error (Printf.sprintf "wire-rc %s %g must be finite and non-negative" what v)
  in
  if not (Float.is_finite t.r_per_unit) || t.r_per_unit < 0.0 then bad "resistance" t.r_per_unit
  else if not (Float.is_finite t.c_per_unit) || t.c_per_unit < 0.0 then
    bad "capacitance" t.c_per_unit
  else Ok ()

let parse s =
  let s = String.trim s in
  let parts =
    String.map (function ',' | ':' -> ' ' | ch -> ch) s
    |> String.split_on_char ' '
    |> List.filter (fun w -> w <> "")
  in
  match parts with
  | [ r; c ] -> (
      match (float_of_string_opt r, float_of_string_opt c) with
      | Some r, Some c ->
          let t = { r_per_unit = r; c_per_unit = c } in
          Result.map (fun () -> t) (validate t)
      | _ -> Error (Printf.sprintf "malformed wire-rc %S (want RES,CAP)" s))
  | _ -> Error (Printf.sprintf "malformed wire-rc %S (want RES,CAP)" s)

let to_string t = Printf.sprintf "%g,%g" t.r_per_unit t.c_per_unit
