(** Rectilinear net topologies for RC delay estimation.

    Two constructions:
    - [star]: driver connects to every sink directly (length = Manhattan
      distance). Cheapest; makes each sink's wire delay depend only on its
      own driver-sink distance.
    - [steiner]: Prim-based rectilinear Steiner heuristic. Terminals are
      attached one by one to the closest point of the partially built tree,
      where "points of the tree" include projections onto the bounding box
      of existing edges; attachment to an edge interior splits it with a
      Steiner node. Always no longer than the rectilinear MST.

    Node 0 is the root (net driver). [terminal] maps tree nodes back to the
    caller's terminal indices (-1 for Steiner nodes). *)

type t = {
  xs : float array;
  ys : float array;
  parent : int array; (* parent node index; -1 for the root *)
  edge_len : float array; (* Manhattan length of the edge to parent *)
  terminal : int array; (* caller terminal index, -1 for Steiner nodes *)
}

let num_nodes t = Array.length t.parent

let total_length t = Array.fold_left ( +. ) 0.0 t.edge_len

let manhattan ax ay bx by = Float.abs (ax -. bx) +. Float.abs (ay -. by)

(** Star topology: root at (xs.(0), ys.(0)), every other terminal is a
    direct child of the root. *)
let star ~xs ~ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n >= 1);
  let parent = Array.init n (fun i -> if i = 0 then -1 else 0) in
  let edge_len =
    Array.init n (fun i ->
        if i = 0 then 0.0 else manhattan xs.(0) ys.(0) xs.(i) ys.(i))
  in
  { xs = Array.copy xs; ys = Array.copy ys; parent; edge_len; terminal = Array.init n Fun.id }

(* Closest point of the axis-aligned bounding box of segment (a,b) to
   point p — the standard "merging point" of rectilinear routing. *)
let closest_on_bbox ax ay bx by px py =
  let cx = Float.max (Float.min ax bx) (Float.min (Float.max ax bx) px) in
  let cy = Float.max (Float.min ay by) (Float.min (Float.max ay by) py) in
  (cx, cy)

(** Prim-based rectilinear Steiner heuristic. O(n^2) per net in the number
    of terminals, which is fine for placement-scale fanouts. *)
let steiner ~xs ~ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n >= 1);
  if n <= 2 then star ~xs ~ys
  else begin
    let nodes_x = Util.Gvec.create () and nodes_y = Util.Gvec.create () in
    let parent = Util.Gvec.create () and edge_len = Util.Gvec.create () in
    let terminal = Util.Gvec.create () in
    let push_node x y ~par ~term =
      let id = Util.Gvec.length parent in
      Util.Gvec.push nodes_x x;
      Util.Gvec.push nodes_y y;
      Util.Gvec.push parent par;
      Util.Gvec.push edge_len
        (if par < 0 then 0.0
         else manhattan x y (Util.Gvec.get nodes_x par) (Util.Gvec.get nodes_y par));
      Util.Gvec.push terminal term;
      id
    in
    ignore (push_node xs.(0) ys.(0) ~par:(-1) ~term:0);
    let attached = Array.make n false in
    attached.(0) <- true;
    (* Find, over all unattached terminals, the one closest to the current
       tree (to a node or to an edge bounding box); attach it, possibly via
       a new Steiner node splitting the edge. *)
    for _ = 1 to n - 1 do
      let best_term = ref (-1) in
      let best_dist = ref Float.infinity in
      let best_node = ref (-1) in
      (* attachment node, or parent side of split edge *)
      let best_sx = ref 0.0 and best_sy = ref 0.0 in
      let best_is_edge = ref false in
      for t = 0 to n - 1 do
        if not attached.(t) then begin
          let px = xs.(t) and py = ys.(t) in
          for v = 0 to Util.Gvec.length parent - 1 do
            let vx = Util.Gvec.get nodes_x v and vy = Util.Gvec.get nodes_y v in
            let d = manhattan px py vx vy in
            if d < !best_dist then begin
              best_dist := d;
              best_term := t;
              best_node := v;
              best_is_edge := false
            end;
            let par = Util.Gvec.get parent v in
            if par >= 0 then begin
              let ux = Util.Gvec.get nodes_x par and uy = Util.Gvec.get nodes_y par in
              let cx, cy = closest_on_bbox ux uy vx vy px py in
              let d = manhattan px py cx cy in
              if d < !best_dist -. 1e-12 then begin
                best_dist := d;
                best_term := t;
                best_node := v;
                best_is_edge := true;
                best_sx := cx;
                best_sy := cy
              end
            end
          done
        end
      done;
      let attach_to =
        if not !best_is_edge then !best_node
        else begin
          (* Split edge (parent(v), v) at the Steiner point: the new node
             takes over v's parent; v re-parents onto the Steiner node. *)
          let v = !best_node in
          let par = Util.Gvec.get parent v in
          let s = push_node !best_sx !best_sy ~par ~term:(-1) in
          Util.Gvec.set parent v s;
          Util.Gvec.set edge_len v
            (manhattan (Util.Gvec.get nodes_x v) (Util.Gvec.get nodes_y v) !best_sx !best_sy);
          s
        end
      in
      ignore (push_node xs.(!best_term) ys.(!best_term) ~par:attach_to ~term:!best_term);
      attached.(!best_term) <- true
    done;
    {
      xs = Util.Gvec.to_array nodes_x;
      ys = Util.Gvec.to_array nodes_y;
      parent = Util.Gvec.to_array parent;
      edge_len = Util.Gvec.to_array edge_len;
      terminal = Util.Gvec.to_array terminal;
    }
  end

(** Rectilinear MST length by plain Prim (no Steiner points); used as an
    upper bound in tests. *)
let rmst_length ~xs ~ys =
  let n = Array.length xs in
  if n <= 1 then 0.0
  else begin
    let in_tree = Array.make n false in
    let dist = Array.make n Float.infinity in
    in_tree.(0) <- true;
    for j = 1 to n - 1 do
      dist.(j) <- manhattan xs.(0) ys.(0) xs.(j) ys.(j)
    done;
    let total = ref 0.0 in
    for _ = 1 to n - 1 do
      let best = ref (-1) and bd = ref Float.infinity in
      for j = 0 to n - 1 do
        if (not in_tree.(j)) && dist.(j) < !bd then begin
          bd := dist.(j);
          best := j
        end
      done;
      let b = !best in
      in_tree.(b) <- true;
      total := !total +. !bd;
      for j = 0 to n - 1 do
        if not in_tree.(j) then
          dist.(j) <- Float.min dist.(j) (manhattan xs.(b) ys.(b) xs.(j) ys.(j))
      done
    done;
    !total
  end
