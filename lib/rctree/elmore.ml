(** Elmore delay over a {!Steiner.t} topology.

    Each tree edge of length L is a distributed RC segment with resistance
    r*L and capacitance c*L; the standard lumped approximation charges half
    the segment's own capacitance plus everything downstream:

      delay(edge) = r*L * (c*L/2 + C_downstream_of_child)

    and the delay to a sink is the sum over edges on the root-sink path.
    The driver's own resistance is handled by the caller (it multiplies the
    *total* net capacitance and is part of the cell/net arc delay). *)

type result = {
  total_cap : float; (* wire cap + all terminal loads (driver excluded) *)
  total_wirelen : float;
  sink_delay : float array; (* per tree NODE, delay from root *)
}

(* Test-only fault injection: when set, the function is applied to every
   computed node delay before [compute] returns. The oracle suite uses it
   to prove its differential gates can fail (a sign or constant fault here
   must trip the naive-Elmore comparison); it must stay [None] outside
   those tests. *)
let fault : (float -> float) option ref = ref None

(** [compute tree ~r ~c ~term_cap] where [term_cap i] is the load of the
    caller terminal [i] (the root terminal's value is ignored — a driver
    pin contributes no load to its own net). *)
let compute (tree : Steiner.t) ~r ~c ~term_cap =
  let n = Steiner.num_nodes tree in
  (* Children lists to traverse top-down / bottom-up. *)
  let child_count = Array.make n 0 in
  for v = 1 to n - 1 do
    child_count.(tree.parent.(v)) <- child_count.(tree.parent.(v)) + 1
  done;
  (* Order nodes so that parents precede children: the construction in
     Steiner pushes children after their parent *except* edge splits,
     where the Steiner node s is pushed after v but becomes v's parent.
     So we need a real topological order. *)
  let order = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    if tree.parent.(v) >= 0 then indeg.(v) <- 1
  done;
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then begin
      order.(!tail) <- v;
      incr tail
    end
  done;
  let children = Array.make n [] in
  for v = 0 to n - 1 do
    if tree.parent.(v) >= 0 then children.(tree.parent.(v)) <- v :: children.(tree.parent.(v))
  done;
  while !head < !tail do
    let v = order.(!head) in
    incr head;
    List.iter
      (fun ch ->
        order.(!tail) <- ch;
        incr tail)
      children.(v)
  done;
  assert (!tail = n);
  (* Bottom-up: downstream capacitance per node. *)
  let down_cap = Array.make n 0.0 in
  for v = 0 to n - 1 do
    let t = tree.terminal.(v) in
    if t > 0 then down_cap.(v) <- term_cap t
  done;
  for i = n - 1 downto 0 do
    let v = order.(i) in
    let p = tree.parent.(v) in
    if p >= 0 then down_cap.(p) <- down_cap.(p) +. down_cap.(v) +. (c *. tree.edge_len.(v))
  done;
  (* Top-down: accumulated Elmore delay per node. *)
  let delay = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let v = order.(i) in
    let p = tree.parent.(v) in
    if p >= 0 then begin
      let len = tree.edge_len.(v) in
      let rseg = r *. len in
      delay.(v) <- delay.(p) +. (rseg *. ((c *. len /. 2.0) +. down_cap.(v)))
    end
  done;
  (match !fault with
  | None -> ()
  | Some f ->
      for v = 0 to n - 1 do
        delay.(v) <- f delay.(v)
      done);
  let total_wirelen = Steiner.total_length tree in
  { total_cap = down_cap.(order.(0)); total_wirelen; sink_delay = delay }

(** Delay from root to caller terminal [i] (must be attached). *)
let terminal_delay (tree : Steiner.t) result i =
  let rec find v =
    if v >= Steiner.num_nodes tree then invalid_arg "Elmore.terminal_delay: no such terminal"
    else if tree.terminal.(v) = i then result.sink_delay.(v)
    else find (v + 1)
  in
  find 0
