(** Van Ginneken buffer insertion (estimation) on a Steiner topology.

    Classic bottom-up dynamic programming: each node carries a list of
    non-dominated candidates (downstream cap, required arrival time at the
    node, buffers used); wires degrade q and add cap, a buffer at a node
    resets the cap to the buffer's input cap at the cost of its delay, and
    Steiner merges combine children. The root candidate maximising
    q - drive_res * cap gives the best achievable required time.

    The paper (Sec. III-C) argues the quadratic loss avoids the long wire
    segments that force buffer insertion downstream — this module lets the
    benches *quantify* that: how much required-time a legal buffering
    could recover per critical net, and how many buffers it needs. *)

(* Buffer electrical model: input capacitance, intrinsic delay, drive
   resistance (delay += drive * downstream cap). *)
type buffer = { in_cap : float; intrinsic : float; drive : float }

(** The default library's BUF_X2, expressed for this module. *)
let default_buffer = { in_cap = 1.8; intrinsic = 16.0; drive = 5.0 }

type candidate = { cap : float; q : float; buffers : int }

(* Keep only non-dominated candidates: sort by cap ascending, keep strict
   q improvements (a candidate with more cap must offer strictly more q). *)
let prune cands =
  let sorted = List.sort (fun a b -> compare a.cap b.cap) cands in
  let rec go best_q acc = function
    | [] -> List.rev acc
    | c :: rest -> if c.q > best_q +. 1e-12 then go c.q (c :: acc) rest else go best_q acc rest
  in
  go Float.neg_infinity [] sorted

(* Traverse a wire of length [len] from child toward parent. *)
let through_wire ~r ~c ~len cand =
  let rw = r *. len and cw = c *. len in
  { cand with q = cand.q -. (rw *. ((cw /. 2.0) +. cand.cap)); cap = cand.cap +. cw }

(* Optionally place a buffer at the node: the upstream sees only the
   buffer's input cap; the signal pays the buffer's delay into the
   existing candidate. *)
let with_buffer buf cand =
  {
    cap = buf.in_cap;
    q = cand.q -. (buf.intrinsic +. (buf.drive *. cand.cap));
    buffers = cand.buffers + 1;
  }

(* Merge two children of a Steiner node: caps add, required times meet. *)
let merge a_cands b_cands =
  prune
    (List.concat_map
       (fun a ->
         List.map
           (fun b -> { cap = a.cap +. b.cap; q = Float.min a.q b.q; buffers = a.buffers + b.buffers })
           b_cands)
       a_cands)

type result = {
  best_q : float; (* required time achievable at the driver output *)
  buffers_used : int;
  unbuffered_q : float; (* same metric with no buffers allowed *)
}

(** [estimate tree ~r ~c ~drive_res ~term_req ~term_cap ~buf ~max_buffers]
    where [term_req i]/[term_cap i] give each caller terminal's required
    time and load. Buffers may be placed at internal tree nodes (Steiner
    points and intermediate terminals). *)
let estimate (tree : Steiner.t) ~r ~c ~drive_res ~term_req ~term_cap
    ?(buf = default_buffer) ?(max_buffers = 16) () =
  let n = Steiner.num_nodes tree in
  let children = Array.make n [] in
  for v = 1 to n - 1 do
    children.(tree.parent.(v)) <- v :: children.(tree.parent.(v))
  done;
  (* Bottom-up candidates; allow_buffer=false computes the baseline. *)
  let rec solve ~allow v =
    let own =
      let t = tree.terminal.(v) in
      if t > 0 then [ { cap = term_cap t; q = term_req t; buffers = 0 } ]
      else [] (* pure Steiner node: no load of its own *)
    in
    let child_cands =
      List.map
        (fun ch ->
          let cands = solve ~allow ch in
          let after_wire = List.map (through_wire ~r ~c ~len:tree.edge_len.(ch)) cands in
          if allow then
            prune
              (after_wire
              @ List.filter_map
                  (fun cd ->
                    if cd.buffers < max_buffers then Some (with_buffer buf cd) else None)
                  after_wire)
          else prune after_wire)
        children.(v)
    in
    let all =
      match (own, child_cands) with
      | [], [] -> [ { cap = 0.0; q = Float.infinity; buffers = 0 } ]
      | [], c :: rest -> List.fold_left merge c rest
      | o, cs -> List.fold_left merge o cs
    in
    prune all
  in
  let root_value cands =
    List.fold_left (fun acc cd -> Float.max acc (cd.q -. (drive_res *. cd.cap))) Float.neg_infinity
      cands
  in
  let root_best cands =
    List.fold_left
      (fun (bq, bb) cd ->
        let v = cd.q -. (drive_res *. cd.cap) in
        if v > bq then (v, cd.buffers) else (bq, bb))
      (Float.neg_infinity, 0) cands
  in
  let buffered = solve ~allow:true 0 in
  let unbuffered = solve ~allow:false 0 in
  let best_q, buffers_used = root_best buffered in
  { best_q; buffers_used; unbuffered_q = root_value unbuffered }
