(** Elmore delay over a {!Steiner.t} topology.

    Each edge of length L is a distributed RC segment (r*L, c*L) lumped as
    delay(edge) = r*L * (c*L/2 + C_downstream); the root-to-sink delay is
    the sum along the path. Driver resistance is the caller's concern (it
    multiplies the *total* net capacitance in the cell/net arc delay). *)

type result = {
  total_cap : float; (* wire cap + all terminal loads (root excluded) *)
  total_wirelen : float;
  sink_delay : float array; (* per tree NODE, delay from root *)
}

(** Test-only fault injection applied to every node delay computed by
    {!compute}; used by the oracle suite to prove its differential gates
    are not vacuous. Must stay [None] outside those tests. *)
val fault : (float -> float) option ref

(** [compute tree ~r ~c ~term_cap] where [term_cap i] is the load of
    caller terminal [i] (the root terminal's value is ignored). *)
val compute : Steiner.t -> r:float -> c:float -> term_cap:(int -> float) -> result

(** Delay from root to caller terminal [i]; raises [Invalid_argument]
    when the terminal is not in the tree. O(nodes). *)
val terminal_delay : Steiner.t -> result -> int -> float
