(** Wire parasitics configuration — the [set_wire_rc] equivalent of the
    OpenROAD flow (readLef/readDef -> set_wire_rc -> global_placement).

    External formats (Bookshelf, DEF) carry no electrical data, so the
    flow driver supplies the per-unit-length wire resistance/capacitance
    that the Elmore model ({!Elmore}) and the STA net arcs consume. Units
    match the rest of the repo: kOhm and fF per site, giving R*C in ps. *)

type t = { r_per_unit : float; c_per_unit : float }

(** The synthetic generator's parasitics (0.06 kOhm, 0.5 fF per site) —
    the regime where wire delay dominates gate delay, as in the
    ICCAD2015 designs. *)
val default : t

(** Parse a ["res,cap"] CLI spec (also accepts ["res cap"] and
    ["res:cap"]). Both values must be finite and non-negative. *)
val parse : string -> (t, string) result

(** ["res,cap"] — inverse of {!parse}. *)
val to_string : t -> string

(** [Error] when a value is non-finite or negative. *)
val validate : t -> (unit, string) result
