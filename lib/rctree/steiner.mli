(** Rectilinear net topologies for RC delay estimation.

    Node 0 is the root (net driver); [terminal] maps tree nodes back to
    caller terminal indices (-1 for Steiner points). *)

type t = {
  xs : float array;
  ys : float array;
  parent : int array; (* parent node index; -1 for the root *)
  edge_len : float array; (* Manhattan length of the edge to parent *)
  terminal : int array; (* caller terminal index, -1 for Steiner nodes *)
}

val num_nodes : t -> int

val total_length : t -> float

(** Star topology: every terminal is a direct child of the root.
    Terminal 0 is the root. *)
val star : xs:float array -> ys:float array -> t

(** Prim-based rectilinear Steiner heuristic: terminals attach to the
    closest point of the partial tree, splitting edges with Steiner nodes
    where profitable. Never longer than the rectilinear MST. O(n^2). *)
val steiner : xs:float array -> ys:float array -> t

(** Rectilinear MST length (plain Prim, no Steiner points) — an upper
    bound used by tests. *)
val rmst_length : xs:float array -> ys:float array -> float
