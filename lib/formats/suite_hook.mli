(** Register a foreign design file under a suite short name so it joins
    the bench matrix ({!Workloads.Suite.register_loader}). The file is
    parsed lazily, on first [Suite.load]. *)
val register_file :
  ?lef:string -> ?wire_rc:Rctree.Wire_rc.t -> ?clock:float -> short:string -> string -> unit
