(** LEF/DEF reader/writer (see the interface and DESIGN.md §13). *)

module D = Netlist.Design
module B = Netlist.Builder
module L = Netlist.Libcell

let lef_specials = ";"
let def_specials = "();"
let pg = Fixup.print

let dir_of_lp (lp : L.lib_pin) = match lp.kind with L.Input -> D.In | L.Output -> D.Out

(* ===================================================================== *)
(* LEF                                                                    *)
(* ===================================================================== *)

(* Finalized macro pin: centre-relative offset, resolved capacitance. *)
type mpin = { pname : string; pdir : D.dir; pcap : float; poffx : float; poffy : float }
type fmac = { fname : string; fclass : string; fw : float; fh : float; fpins : mpin array }
type lef = { macros : (string, fmac) Hashtbl.t; mutable site_h : float option }

(* In-flight parse records. *)
type lpin = {
  lpname : string;
  mutable ldir : D.dir option;
  mutable lcap : float option;
  mutable lrect : (float * float) option; (* rect centre, macro-origin frame *)
}

type lmacro = {
  lmname : string;
  lmline : int;
  mutable lmclass : string;
  mutable lmw : float;
  mutable lmh : float;
  mutable lmpins : lpin list; (* reversed *)
}

type lstate =
  | Top
  | Skip (* unhandled top-level block; pops at END *)
  | InSite
  | InMacro of lmacro
  | InPin of lmacro * lpin
  | InPort of lmacro * lpin

let read_lef path =
  let sc = Scan.open_file ~specials:lef_specials path in
  Fun.protect ~finally:(fun () -> Scan.close sc) @@ fun () ->
  let lef = { macros = Hashtbl.create 16; site_h = None } in
  let state = ref Top in
  let size_of () =
    let w = Scan.expect_float sc ~what:"macro width" in
    Scan.expect_lit sc "BY";
    let h = Scan.expect_float sc ~what:"macro height" in
    (w, h)
  in
  let finish_macro (m : lmacro) =
    if Float.is_nan m.lmw then
      Scan.fail_at sc ~line:m.lmline "macro %s has no SIZE" m.lmname;
    let pins =
      List.rev_map
        (fun (p : lpin) ->
          let pdir =
            match p.ldir with
            | Some d -> d
            | None -> assert false (* checked at END of the pin *)
          in
          let rcx, rcy = match p.lrect with Some c -> c | None -> (0.0, 0.0) in
          let pcap =
            match p.lcap with
            | Some c -> c
            | None -> ( match pdir with D.In -> Defaults.sink_cap | D.Out -> 0.0)
          in
          {
            pname = p.lpname;
            pdir;
            pcap;
            poffx = rcx -. (m.lmw /. 2.0);
            poffy = rcy -. (m.lmh /. 2.0);
          })
        m.lmpins
      |> Array.of_list
    in
    Hashtbl.replace lef.macros m.lmname
      { fname = m.lmname; fclass = m.lmclass; fw = m.lmw; fh = m.lmh; fpins = pins }
  in
  let finished = ref false in
  while (not !finished) && Scan.next_line sc do
    if Scan.next_tok sc then begin
      match !state with
      | Top ->
          if Scan.tok_is_ci sc "MACRO" then begin
            Scan.expect sc ~what:"macro name";
            let name = Scan.tok sc in
            if Hashtbl.mem lef.macros name then Scan.fail sc "duplicate macro %S" name;
            state :=
              InMacro
                {
                  lmname = name;
                  lmline = Scan.line_number sc;
                  lmclass = "CORE";
                  lmw = nan;
                  lmh = nan;
                  lmpins = [];
                }
          end
          else if Scan.tok_is_ci sc "SITE" then state := InSite
          else if Scan.tok_is_ci sc "END" then begin
            if Scan.next_tok sc && Scan.tok_is_ci sc "LIBRARY" then finished := true
          end
          else if
            Scan.tok_is_ci sc "UNITS"
            || Scan.tok_is_ci sc "PROPERTYDEFINITIONS"
            || Scan.tok_is_ci sc "LAYER"
            || Scan.tok_is_ci sc "VIA"
            || Scan.tok_is_ci sc "VIARULE"
            || Scan.tok_is_ci sc "SPACING"
            || Scan.tok_is_ci sc "NONDEFAULTRULE"
          then state := Skip
          else () (* VERSION, DIVIDERCHAR, MANUFACTURINGGRID, ... *)
      | Skip -> if Scan.tok_is_ci sc "END" then state := Top
      | InSite ->
          if Scan.tok_is_ci sc "SIZE" then begin
            let _, h = size_of () in
            lef.site_h <- Some h
          end
          else if Scan.tok_is_ci sc "END" then state := Top
      | InMacro m ->
          if Scan.tok_is_ci sc "CLASS" then begin
            Scan.expect sc ~what:"macro class";
            m.lmclass <- String.uppercase_ascii (Scan.tok sc)
          end
          else if Scan.tok_is_ci sc "SIZE" then begin
            let w, h = size_of () in
            m.lmw <- w;
            m.lmh <- h
          end
          else if Scan.tok_is_ci sc "PIN" then begin
            Scan.expect sc ~what:"pin name";
            state :=
              InPin (m, { lpname = Scan.tok sc; ldir = None; lcap = None; lrect = None })
          end
          else if Scan.tok_is_ci sc "END" then begin
            finish_macro m;
            state := Top
          end
          else () (* FOREIGN, ORIGIN, SYMMETRY, SITE, ... *)
      | InPin (m, p) ->
          if Scan.tok_is_ci sc "DIRECTION" then begin
            Scan.expect sc ~what:"pin direction";
            p.ldir <-
              Some
                (if Scan.tok_is_ci sc "OUTPUT" then D.Out
                 else if
                   Scan.tok_is_ci sc "INPUT"
                   || Scan.tok_is_ci sc "INOUT"
                   || Scan.tok_is_ci sc "FEEDTHRU"
                 then D.In
                 else Scan.fail sc "bad pin direction %S" (Scan.tok sc))
          end
          else if Scan.tok_is_ci sc "CAPACITANCE" then
            p.lcap <- Some (Scan.expect_float sc ~what:"pin capacitance")
          else if Scan.tok_is_ci sc "PORT" then state := InPort (m, p)
          else if Scan.tok_is_ci sc "END" then begin
            if p.ldir = None then
              Scan.fail sc "pin %s of macro %s has no DIRECTION" p.lpname m.lmname;
            m.lmpins <- p :: m.lmpins;
            state := InMacro m
          end
          else () (* USE, SHAPE, ANTENNA*, ... *)
      | InPort (m, p) ->
          if Scan.tok_is_ci sc "RECT" then begin
            let xl = Scan.expect_float sc ~what:"rect xl" in
            let yl = Scan.expect_float sc ~what:"rect yl" in
            let xh = Scan.expect_float sc ~what:"rect xh" in
            let yh = Scan.expect_float sc ~what:"rect yh" in
            if p.lrect = None then p.lrect <- Some ((xl +. xh) /. 2.0, (yl +. yh) /. 2.0)
          end
          else if Scan.tok_is_ci sc "END" then state := InPin (m, p)
          else () (* LAYER, ... *)
    end
  done;
  (match !state with
  | Top -> ()
  | Skip -> Scan.fail sc "unexpected end of file in skipped block"
  | InSite -> Scan.fail sc "unexpected end of file in SITE"
  | InMacro m -> Scan.fail sc "unexpected end of file in macro %s" m.lmname
  | InPin (m, p) | InPort (m, p) ->
      Scan.fail sc "unexpected end of file in pin %s of macro %s" p.lpname m.lmname);
  lef

(* ===================================================================== *)
(* DEF reader                                                             *)
(* ===================================================================== *)

(* Resolved macro: what a COMPONENTS record instantiates. *)
type rmac = {
  rkind : D.kind;
  rlib : L.t option;
  rw : float;
  rh : float;
  rpins : mpin array;
}

let rmac_of_lib (lib : L.t) =
  {
    rkind = D.Logic;
    rlib = Some lib;
    rw = lib.L.width;
    rh = lib.L.height;
    rpins =
      Array.map
        (fun (lp : L.lib_pin) ->
          {
            pname = lp.L.pname;
            pdir = dir_of_lp lp;
            pcap = lp.L.cap;
            poffx = lp.L.off_x;
            poffy = lp.L.off_y;
          })
        lib.L.pins;
  }

(* A LEF macro agreeing with the default-library cell of the same name
   (geometry and pin names) keeps the library cell — and its timing view. *)
let lef_matches_lib (m : fmac) (lib : L.t) =
  m.fw = lib.L.width
  && m.fh = lib.L.height
  && Array.length m.fpins = Array.length lib.L.pins
  && Array.for_all2 (fun (p : mpin) (lp : L.lib_pin) -> p.pname = lp.L.pname) m.fpins
       lib.L.pins

let rmac_of_fmac (m : fmac) =
  if m.fclass = "BLOCK" || Array.length m.fpins = 0 then
    { rkind = D.Blockage; rlib = None; rw = m.fw; rh = m.fh; rpins = [||] }
  else if m.fclass = "PAD" && Array.length m.fpins = 1 then begin
    let kind = match m.fpins.(0).pdir with D.Out -> D.Input_pad | D.In -> D.Output_pad in
    { rkind = kind; rlib = None; rw = m.fw; rh = m.fh; rpins = m.fpins }
  end
  else begin
    let lib = Defaults.synth_libcell ~lname:m.fname ~w:m.fw ~h:m.fh ~pins:[||] in
    { rkind = D.Logic; rlib = Some lib; rw = m.fw; rh = m.fh; rpins = m.fpins }
  end

let read_def ?lef path =
  let defname = Filename.basename path in
  let sc = Scan.open_file ~specials:def_specials ~name:defname path in
  Fun.protect ~finally:(fun () -> Scan.close sc) @@ fun () ->
  let meta = Meta.create () in
  let units = ref nan in
  let diearea = ref None in
  let design_stmt = ref None in
  let row_ys = ref [] in
  let builder = ref None in
  let comp_tbl = Strtab.create () in
  let pin_tbl = Strtab.create () in
  let cell_rmac : (int, rmac) Hashtbl.t = Hashtbl.create 64 in
  let rmac_cache : (string, rmac) Hashtbl.t = Hashtbl.create 16 in
  let nblockages = ref 0 in
  (* Token streams: [next_stmt] is the statement level (collects # etdp
     headers); [req] demands the next token inside a statement. *)
  let rec next_stmt () =
    if Scan.next_tok sc then true
    else if Scan.at_hash sc then begin
      Meta.scan_comment meta sc;
      next_stmt ()
    end
    else if Scan.next_line sc then next_stmt ()
    else false
  in
  let req what =
    if not (Scan.next_tok_ml sc) then Scan.fail sc "unexpected end of file in %s" what
  in
  let req_float what =
    req what;
    Scan.tok_float sc
  in
  let req_lit lit what =
    req what;
    if not (Scan.tok_is_ci sc lit) then
      Scan.fail sc "expected '%s' in %s, got %S" lit what (Scan.tok sc)
  in
  let skip_to_semi what =
    let fin = ref false in
    while not !fin do
      req what;
      if Scan.tok_is sc ";" then fin := true
    done
  in
  let skip_section name =
    let fin = ref false in
    while not !fin do
      req (name ^ " section");
      if Scan.tok_is_ci sc "END" then begin
        req (name ^ " section");
        if Scan.tok_is_ci sc name then fin := true
      end
    done
  in
  let point what =
    req_lit "(" what;
    let x = req_float what in
    let y = req_float what in
    req_lit ")" what;
    (x, y)
  in
  let resolve_macro name =
    match Hashtbl.find_opt rmac_cache name with
    | Some r -> r
    | None ->
        let lib_opt =
          match L.find_in_library name with
          | lib -> Some lib
          | exception Invalid_argument _ -> None
        in
        let mac_opt =
          match lef with Some l -> Hashtbl.find_opt l.macros name | None -> None
        in
        let r =
          match (lib_opt, mac_opt) with
          | Some lib, None -> rmac_of_lib lib
          | Some lib, Some m when lef_matches_lib m lib -> rmac_of_lib lib
          | _, Some m -> rmac_of_fmac m
          | None, None -> Scan.fail sc "unknown macro %S" name
        in
        Hashtbl.add rmac_cache name r;
        r
  in
  let ensure_builder () =
    match !builder with
    | Some bd -> bd
    | None ->
        if Float.is_nan !units then
          Scan.fail sc "UNITS DISTANCE MICRONS must precede design contents";
        let die =
          match (meta.Meta.die, !diearea) with
          | Some r, _ -> r
          | None, Some r -> r
          | None, None -> Scan.fail sc "DIEAREA must precede design contents"
        in
        let row_height =
          match meta.Meta.rowheight with
          | Some h -> h
          | None -> (
              match (match lef with Some l -> l.site_h | None -> None) with
              | Some h -> h
              | None -> (
                  (* Infer from the ROW grid: smallest positive y delta. *)
                  let ys = List.sort_uniq compare !row_ys in
                  let rec min_delta = function
                    | a :: (b :: _ as rest) ->
                        let d = (b -. a) /. !units in
                        let r = min_delta rest in
                        if d > 0.0 && (r <= 0.0 || d < r) then d else r
                    | _ -> 0.0
                  in
                  match min_delta ys with d when d > 0.0 -> d | _ -> 1.0))
        in
        let dname =
          match (meta.Meta.dname, !design_stmt) with
          | Some n, _ -> n
          | None, Some n -> n
          | None, None -> Filename.remove_extension defname
        in
        let clock = Option.value meta.Meta.clock ~default:Defaults.clock_period in
        let r_per_unit, c_per_unit =
          match meta.Meta.wire with
          | Some rc -> rc
          | None ->
              let w = Rctree.Wire_rc.default in
              (w.Rctree.Wire_rc.r_per_unit, w.Rctree.Wire_rc.c_per_unit)
        in
        let b =
          B.create ~name:dname ~die ~row_height ~clock_period:clock ~r_per_unit
            ~c_per_unit
        in
        let cx = (die.Geom.Rect.xl +. die.Geom.Rect.xh) /. 2.0 in
        let cy = (die.Geom.Rect.yl +. die.Geom.Rect.yh) /. 2.0 in
        builder := Some (b, cx, cy);
        (b, cx, cy)
  in
  let read_components () =
    let declared = (req "COMPONENTS count"; Scan.tok_int sc) in
    req_lit ";" "COMPONENTS header";
    let count = ref 0 and fin = ref false in
    while not !fin do
      req "COMPONENTS section";
      if Scan.tok_is sc "-" then begin
        req "component name";
        if Scan.tok_lookup sc comp_tbl <> None then
          Scan.fail sc "duplicate component %S" (Scan.tok sc);
        let cname = Scan.tok sc in
        req "component macro";
        let rm = resolve_macro (Scan.tok sc) in
        let pos = ref None and fixed = ref false in
        let rec_done = ref false in
        while not !rec_done do
          req "component record";
          if Scan.tok_is sc ";" then rec_done := true
          else if Scan.tok_is sc "+" then begin
            req "component property";
            if Scan.tok_is_ci sc "PLACED" || Scan.tok_is_ci sc "FIXED" then begin
              fixed := Scan.tok_is_ci sc "FIXED";
              pos := Some (point "component placement")
            end
            (* + SOURCE, + WEIGHT, ...: values fall through below *)
          end
          else () (* orientation / property values *)
        done;
        let b, cx, cy = ensure_builder () in
        let x, y =
          match !pos with
          | Some (xd, yd) ->
              ((xd /. !units) +. (rm.rw /. 2.0), (yd /. !units) +. (rm.rh /. 2.0))
          | None -> (cx, cy)
        in
        let movable = rm.rkind = D.Logic && not !fixed in
        let cell =
          B.add_raw_cell b ~cname ~kind:rm.rkind ~lib:rm.rlib ~w:rm.rw ~h:rm.rh ~movable
            ~x ~y
        in
        Array.iter
          (fun (p : mpin) ->
            ignore
              (B.add_raw_pin b ~cell ~pin_name:p.pname ~dir:p.pdir ~off_x:p.poffx
                 ~off_y:p.poffy ~cap:p.pcap))
          rm.rpins;
        Strtab.add comp_tbl cname cell;
        Hashtbl.add cell_rmac cell rm;
        incr count
      end
      else if Scan.tok_is_ci sc "END" then begin
        req_lit "COMPONENTS" "END COMPONENTS";
        if !count <> declared then
          Scan.fail sc "COMPONENTS declared %d records but has %d" declared !count;
        fin := true
      end
      else Scan.fail sc "expected '-' or END COMPONENTS, got %S" (Scan.tok sc)
    done
  in
  let read_pins () =
    let declared = (req "PINS count"; Scan.tok_int sc) in
    req_lit ";" "PINS header";
    let count = ref 0 and fin = ref false in
    while not !fin do
      req "PINS section";
      if Scan.tok_is sc "-" then begin
        req "pin name";
        if Scan.tok_lookup sc pin_tbl <> None then
          Scan.fail sc "duplicate pin %S" (Scan.tok sc);
        let pname = Scan.tok sc in
        let dir = ref None and pos = ref None in
        let rec_done = ref false in
        while not !rec_done do
          req "pin record";
          if Scan.tok_is sc ";" then rec_done := true
          else if Scan.tok_is sc "+" then begin
            req "pin property";
            if Scan.tok_is_ci sc "DIRECTION" then begin
              req "pin direction";
              if Scan.tok_is_ci sc "INPUT" then dir := Some D.Input_pad
              else if Scan.tok_is_ci sc "OUTPUT" then dir := Some D.Output_pad
              else if Scan.tok_is_ci sc "INOUT" || Scan.tok_is_ci sc "FEEDTHRU" then
                dir := Some D.Output_pad
              else Scan.fail sc "bad pin DIRECTION %S" (Scan.tok sc)
            end
            else if Scan.tok_is_ci sc "PLACED" || Scan.tok_is_ci sc "FIXED" then
              pos := Some (point "pin placement")
          end
          else if Scan.tok_is sc "(" then begin
            (* bare layer rect "( x y )" inside + LAYER: consume *)
            let _ = req_float "pin rect" in
            let _ = req_float "pin rect" in
            req_lit ")" "pin rect"
          end
          else ()
        done;
        let kind =
          match !dir with
          | Some k -> k
          | None -> Scan.fail sc "pin %s has no DIRECTION" pname
        in
        let b, cx, cy = ensure_builder () in
        let x, y =
          match !pos with
          | Some (xd, yd) -> (xd /. !units, yd /. !units)
          | None -> (cx, cy)
        in
        let cell =
          B.add_raw_cell b ~cname:pname ~kind ~lib:None ~w:1.0 ~h:1.0 ~movable:false ~x ~y
        in
        let pdir, pcap = if kind = D.Input_pad then (D.Out, 0.0) else (D.In, 3.0) in
        ignore
          (B.add_raw_pin b ~cell ~pin_name:"p" ~dir:pdir ~off_x:0.0 ~off_y:0.0 ~cap:pcap);
        Hashtbl.add cell_rmac cell
          {
            rkind = kind;
            rlib = None;
            rw = 1.0;
            rh = 1.0;
            rpins = [| { pname = "p"; pdir; pcap; poffx = 0.0; poffy = 0.0 } |];
          };
        Strtab.add pin_tbl pname cell;
        incr count
      end
      else if Scan.tok_is_ci sc "END" then begin
        req_lit "PINS" "END PINS";
        if !count <> declared then
          Scan.fail sc "PINS declared %d records but has %d" declared !count;
        fin := true
      end
      else Scan.fail sc "expected '-' or END PINS, got %S" (Scan.tok sc)
    done
  in
  let read_nets () =
    let declared = (req "NETS count"; Scan.tok_int sc) in
    req_lit ";" "NETS header";
    let b, _, _ = ensure_builder () in
    let count = ref 0 and fin = ref false in
    while not !fin do
      req "NETS section";
      if Scan.tok_is sc "-" then begin
        req "net name";
        let nname = Scan.tok sc in
        let deg_line = Scan.line_number sc in
        let nid = B.add_net b ~nname in
        let driver = ref false and sinks = ref 0 in
        let rec_done = ref false in
        while not !rec_done do
          req "net record";
          if Scan.tok_is sc ";" then rec_done := true
          else if Scan.tok_is sc "(" then begin
            req "net entry";
            let cell =
              if Scan.tok_is sc "PIN" then begin
                req "pad pin name";
                match Scan.tok_lookup sc pin_tbl with
                | Some c -> c
                | None -> Scan.fail sc "unknown DEF pin %S in net %s" (Scan.tok sc) nname
              end
              else
                match Scan.tok_lookup sc comp_tbl with
                | Some c -> c
                | None ->
                    Scan.fail sc "unknown component %S in net %s" (Scan.tok sc) nname
            in
            req "component pin name";
            let pin_name = Scan.tok sc in
            req_lit ")" "net entry";
            let rm = Hashtbl.find cell_rmac cell in
            let dir = ref None in
            Array.iter
              (fun (p : mpin) -> if p.pname = pin_name && !dir = None then dir := Some p.pdir)
              rm.rpins;
            let dir =
              match !dir with
              | Some d -> d
              | None -> Scan.fail sc "component has no pin %S in net %s" pin_name nname
            in
            let pid =
              try B.pin_of_cell b ~cell ~pin_name
              with Invalid_argument _ ->
                Scan.fail sc "component has no pin %S in net %s" pin_name nname
            in
            (try B.connect b ~net:nid ~pin:pid
             with Util.Errors.Error _ -> Scan.fail sc "net %s has two drivers" nname);
            (match dir with D.In -> incr sinks | D.Out -> driver := true)
          end
          else if Scan.tok_is sc "+" then () (* + USE/WEIGHT/...; values skipped *)
          else () (* property values *)
        done;
        if not !driver then Scan.fail_at sc ~line:deg_line "net %s has no driver" nname;
        if !sinks = 0 then Scan.fail_at sc ~line:deg_line "net %s has no sinks" nname;
        incr count
      end
      else if Scan.tok_is_ci sc "END" then begin
        req_lit "NETS" "END NETS";
        if !count <> declared then
          Scan.fail sc "NETS declared %d records but has %d" declared !count;
        fin := true
      end
      else Scan.fail sc "expected '-' or END NETS, got %S" (Scan.tok sc)
    done
  in
  let read_blockages () =
    let declared = (req "BLOCKAGES count"; Scan.tok_int sc) in
    req_lit ";" "BLOCKAGES header";
    let count = ref 0 and fin = ref false in
    while not !fin do
      req "BLOCKAGES section";
      if Scan.tok_is sc "-" then begin
        incr count;
        req "blockage kind";
        if Scan.tok_is_ci sc "PLACEMENT" then begin
          let rec_done = ref false in
          while not !rec_done do
            req "blockage record";
            if Scan.tok_is sc ";" then rec_done := true
            else if Scan.tok_is_ci sc "RECT" then begin
              let xl, yl = point "blockage rect" in
              let xh, yh = point "blockage rect" in
              if xh < xl || yh < yl then Scan.fail sc "inverted blockage rect";
              let b, _, _ = ensure_builder () in
              let w = (xh -. xl) /. !units and h = (yh -. yl) /. !units in
              ignore
                (B.add_blockage b
                   ~cname:(Printf.sprintf "blk%d" !nblockages)
                   ~x:((xl /. !units) +. (w /. 2.0))
                   ~y:((yl /. !units) +. (h /. 2.0))
                   ~w ~h);
              incr nblockages
            end
            else () (* + PUSHDOWN, + COMPONENT name, ... *)
          done
        end
        else skip_to_semi "blockage record" (* routing blockage: irrelevant here *)
      end
      else if Scan.tok_is_ci sc "END" then begin
        req_lit "BLOCKAGES" "END BLOCKAGES";
        if !count <> declared then
          Scan.fail sc "BLOCKAGES declared %d records but has %d" declared !count;
        fin := true
      end
      else Scan.fail sc "expected '-' or END BLOCKAGES, got %S" (Scan.tok sc)
    done
  in
  let finished = ref false in
  while (not !finished) && next_stmt () do
    if
      Scan.tok_is_ci sc "VERSION"
      || Scan.tok_is_ci sc "DIVIDERCHAR"
      || Scan.tok_is_ci sc "BUSBITCHARS"
      || Scan.tok_is_ci sc "TECHNOLOGY"
      || Scan.tok_is_ci sc "HISTORY"
      || Scan.tok_is_ci sc "TRACKS"
      || Scan.tok_is_ci sc "GCELLGRID"
      || Scan.tok_is_ci sc "COMPONENTMASKSHIFT"
    then skip_to_semi "statement"
    else if Scan.tok_is_ci sc "DESIGN" then begin
      req "design name";
      design_stmt := Some (Scan.tok sc);
      skip_to_semi "DESIGN statement"
    end
    else if Scan.tok_is_ci sc "UNITS" then begin
      req_lit "DISTANCE" "UNITS statement";
      req_lit "MICRONS" "UNITS statement";
      let u = req_float "UNITS value" in
      if u <= 0.0 then Scan.fail sc "bad UNITS DISTANCE MICRONS %g" u;
      units := u;
      skip_to_semi "UNITS statement"
    end
    else if Scan.tok_is_ci sc "DIEAREA" then begin
      let pts = ref [] in
      let fin = ref false in
      while not !fin do
        req "DIEAREA statement";
        if Scan.tok_is sc ";" then fin := true
        else if Scan.tok_is sc "(" then begin
          let x = req_float "DIEAREA point" in
          let y = req_float "DIEAREA point" in
          req_lit ")" "DIEAREA point";
          pts := (x, y) :: !pts
        end
        else Scan.fail sc "expected '(' or ';' in DIEAREA, got %S" (Scan.tok sc)
      done;
      match !pts with
      | [ (x2, y2); (x1, y1) ] ->
          diearea :=
            Some
              (Geom.Rect.make ~xl:(min x1 x2 /. !units) ~yl:(min y1 y2 /. !units)
                 ~xh:(max x1 x2 /. !units) ~yh:(max y1 y2 /. !units))
      | l when List.length l > 2 -> Scan.fail sc "polygonal DIEAREA unsupported"
      | _ -> Scan.fail sc "DIEAREA needs two points"
    end
    else if Scan.tok_is_ci sc "ROW" then begin
      req "row name";
      req "row site";
      let _x = req_float "row x" in
      let y = req_float "row y" in
      row_ys := y :: !row_ys;
      skip_to_semi "ROW statement"
    end
    else if
      Scan.tok_is_ci sc "PROPERTYDEFINITIONS"
      || Scan.tok_is_ci sc "VIAS"
      || Scan.tok_is_ci sc "NONDEFAULTRULES"
      || Scan.tok_is_ci sc "REGIONS"
      || Scan.tok_is_ci sc "GROUPS"
      || Scan.tok_is_ci sc "SPECIALNETS"
      || Scan.tok_is_ci sc "STYLES"
      || Scan.tok_is_ci sc "FILLS"
      || Scan.tok_is_ci sc "SCANCHAINS"
      || Scan.tok_is_ci sc "SLOTS"
      || Scan.tok_is_ci sc "PINPROPERTIES"
    then skip_section (Scan.tok sc)
    else if Scan.tok_is_ci sc "COMPONENTS" then read_components ()
    else if Scan.tok_is_ci sc "PINS" then read_pins ()
    else if Scan.tok_is_ci sc "NETS" then read_nets ()
    else if Scan.tok_is_ci sc "BLOCKAGES" then read_blockages ()
    else if Scan.tok_is_ci sc "END" then begin
      req_lit "DESIGN" "END statement";
      finished := true
    end
    else Scan.fail sc "unexpected token %S (unsupported DEF statement)" (Scan.tok sc)
  done;
  if not !finished then Scan.fail sc "missing END DESIGN";
  match !builder with
  | None -> Scan.fail sc "DEF has no COMPONENTS, PINS or NETS"
  | Some (b, _, _) ->
      let d = B.finish b in
      (match meta.Meta.iodelay with
      | Some (i, o) ->
          d.D.input_delay <- i;
          d.D.output_delay <- o
      | None -> ());
      d

(* ===================================================================== *)
(* Writers                                                                *)
(* ===================================================================== *)

let units_out = 1024.0 (* power of two: DBU scaling is exact *)

(* Macro plan: per-cell macro names plus the macro definitions to emit.
   Library-faithful cells share macros; anything else gets a per-cell
   macro so the LEF/DEF pair stays a lossless carrier. *)
type macro_src =
  | Mlib of L.t
  | Mcell of int (* per-cell macro: pins straight from the design arrays *)
  | Mpad of [ `In | `Out ]
  | Mblock of float * float

let plan_macros (d : D.t) =
  let order = ref [] in
  let seen = Hashtbl.create 16 in
  let blocks = Hashtbl.create 4 in
  let register name src =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name src;
      order := name :: !order
    end;
    name
  in
  let comp_macro =
    Array.init d.D.n_cells (fun c ->
        let faithful = Defaults.cell_faithful d c in
        match D.kind d c with
        | D.Logic when faithful -> register d.D.libs.(d.D.lib_idx.(c)).L.lname (Mlib d.D.libs.(d.D.lib_idx.(c)))
        | D.Input_pad when faithful -> register "ETDP_PAD_IN" (Mpad `In)
        | D.Output_pad when faithful -> register "ETDP_PAD_OUT" (Mpad `Out)
        | D.Blockage when faithful ->
            let key = (d.D.w.{c}, d.D.h.{c}) in
            let name =
              match Hashtbl.find_opt blocks key with
              | Some n -> n
              | None ->
                  let n = Printf.sprintf "ETDP_BLOCK_%d" (Hashtbl.length blocks) in
                  Hashtbl.add blocks key n;
                  n
            in
            register name (Mblock (d.D.w.{c}, d.D.h.{c}))
        | _ -> register (Printf.sprintf "ETDP_CELL_%d" c) (Mcell c))
  in
  (comp_macro, List.rev !order, seen)

let with_out path f =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let emit_macro_pin oc ~w ~h ~pname ~dir ~cap ~offx ~offy =
  Printf.fprintf oc "  PIN %s\n    DIRECTION %s ;\n" pname
    (match dir with D.In -> "INPUT" | D.Out -> "OUTPUT");
  if cap <> 0.0 || dir = D.In then Printf.fprintf oc "    CAPACITANCE %s ;\n" (pg cap);
  let ex = Fixup.hi ~lo:(w /. 2.0) offx in
  let ey = Fixup.hi ~lo:(h /. 2.0) offy in
  Printf.fprintf oc "    PORT\n      LAYER metal1 ;\n      RECT %s %s %s %s ;\n    END\n"
    (pg ex) (pg ey) (pg ex) (pg ey);
  Printf.fprintf oc "  END %s\n" pname

let write_lef_file path (d : D.t) order seen =
  with_out path @@ fun oc ->
  Printf.fprintf oc "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n";
  Printf.fprintf oc "SITE core\n  CLASS CORE ;\n  SIZE 1 BY %s ;\nEND core\n"
    (pg d.D.row_height);
  List.iter
    (fun name ->
      let src = Hashtbl.find seen name in
      let cls, w, h =
        match src with
        | Mlib lib -> ("CORE", lib.L.width, lib.L.height)
        | Mpad _ -> ("PAD", 1.0, 1.0)
        | Mblock (w, h) -> ("BLOCK", w, h)
        | Mcell c -> (
            ( (match D.kind d c with
              | D.Logic -> "CORE"
              | D.Input_pad | D.Output_pad -> "PAD"
              | D.Blockage -> "BLOCK"),
              d.D.w.{c},
              d.D.h.{c} ))
      in
      Printf.fprintf oc "MACRO %s\n  CLASS %s ;\n  ORIGIN 0 0 ;\n  SIZE %s BY %s ;\n" name
        cls (pg w) (pg h);
      (match src with
      | Mlib lib ->
          Array.iter
            (fun (lp : L.lib_pin) ->
              emit_macro_pin oc ~w ~h ~pname:lp.L.pname ~dir:(dir_of_lp lp) ~cap:lp.L.cap
                ~offx:lp.L.off_x ~offy:lp.L.off_y)
            lib.L.pins
      | Mpad `In ->
          emit_macro_pin oc ~w ~h ~pname:"p" ~dir:D.Out ~cap:0.0 ~offx:0.0 ~offy:0.0
      | Mpad `Out ->
          emit_macro_pin oc ~w ~h ~pname:"p" ~dir:D.In ~cap:3.0 ~offx:0.0 ~offy:0.0
      | Mblock _ -> ()
      | Mcell c ->
          D.iter_cell_pins d c (fun pid ->
              emit_macro_pin oc ~w ~h ~pname:d.D.pin_names.(pid) ~dir:(D.pin_dir d pid)
                ~cap:d.D.pin_cap.{pid} ~offx:d.D.pin_off_x.{pid} ~offy:d.D.pin_off_y.{pid}));
      Printf.fprintf oc "END %s\n" name)
    order;
  output_string oc "END LIBRARY\n"

let write_def_file path (d : D.t) comp_macro =
  with_out path @@ fun oc ->
  let u = units_out in
  let dbu v = pg (v *. u) in
  Printf.fprintf oc "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n";
  Printf.fprintf oc "DESIGN %s ;\n" d.D.name;
  Printf.fprintf oc "UNITS DISTANCE MICRONS %d ;\n" (int_of_float u);
  Meta.emit oc d;
  let die = d.D.die in
  Printf.fprintf oc "DIEAREA ( %s %s ) ( %s %s ) ;\n" (dbu die.Geom.Rect.xl)
    (dbu die.Geom.Rect.yl) (dbu die.Geom.Rect.xh) (dbu die.Geom.Rect.yh);
  let height = die.Geom.Rect.yh -. die.Geom.Rect.yl in
  let width = die.Geom.Rect.xh -. die.Geom.Rect.xl in
  let nrows = max 1 (int_of_float (floor ((height /. d.D.row_height) +. 1e-9))) in
  let nsites = max 1 (int_of_float (floor (width +. 1e-9))) in
  for i = 0 to nrows - 1 do
    Printf.fprintf oc "ROW row_%d core %s %s N DO %d BY 1 STEP %d 0 ;\n" i
      (dbu die.Geom.Rect.xl)
      (dbu (die.Geom.Rect.yl +. (float_of_int i *. d.D.row_height)))
      nsites (int_of_float u)
  done;
  Printf.fprintf oc "COMPONENTS %d ;\n" d.D.n_cells;
  for c = 0 to d.D.n_cells - 1 do
    let llx = Fixup.ll ~half:(d.D.w.{c} /. 2.0) d.D.x.{c} in
    let lly = Fixup.ll ~half:(d.D.h.{c} /. 2.0) d.D.y.{c} in
    Printf.fprintf oc "- %s %s + %s ( %s %s ) N ;\n" d.D.cell_names.(c) comp_macro.(c)
      (if D.is_movable d c then "PLACED" else "FIXED")
      (dbu llx) (dbu lly)
  done;
  output_string oc "END COMPONENTS\n";
  Printf.fprintf oc "NETS %d ;\n" d.D.n_nets;
  for n = 0 to d.D.n_nets - 1 do
    Printf.fprintf oc "- %s" d.D.net_names.(n);
    D.iter_net_pins d n (fun pid ->
        Printf.fprintf oc " ( %s %s )" d.D.cell_names.(d.D.pin_owner.(pid))
          d.D.pin_names.(pid));
    output_string oc " + USE SIGNAL ;\n"
  done;
  output_string oc "END NETS\nEND DESIGN\n"

let write ~lef_path ~def_path (d : D.t) =
  let comp_macro, order, seen = plan_macros d in
  write_lef_file lef_path d order seen;
  write_def_file def_path d comp_macro
