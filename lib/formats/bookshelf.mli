(** Bookshelf placement format (UCLA/ISPD/ICCAD-2015 dialect).

    [read_aux] streams [.aux]/[.scl]/[.nodes]/[.nets]/[.pl] (plus the
    optional [.cells] sidecar and [# etdp] headers written by {!write})
    straight into {!Netlist.Builder} — single pass per file, no
    intermediate AST, token spans instead of per-line strings. Every
    malformed input raises [Netlist.Io.Parse_error (line, msg)].

    Grammar subset and semantic mapping are documented in DESIGN.md §13.
    Key conventions: [.pl]/[.nodes] use lower-left corners (converted to
    the database's centre convention; {!Fixup} makes the conversion
    bit-exact on round trip), net pin offsets are centre-relative as in
    ICCAD-2015, ["O"] entries drive, ["I"]/["B"] entries sink, and
    terminals are fixed. Without a [.cells] sidecar, cell kinds are
    inferred: a terminal with one output pin and nothing else is an input
    pad, one input pin an output pad, no pins a blockage, anything else a
    fixed macro treated as logic with a synthesized library cell. *)

val read_aux : string -> Netlist.Design.t

(** Write the full file set ([.aux .nodes .nets .pl .scl .cells]) into
    [dir] with basename [stem]; returns the [.aux] path. Parsing it back
    reproduces the design bit for bit (ids, CSR, coordinates, flags). *)
val write : dir:string -> stem:string -> Netlist.Design.t -> string

(** Write just the placement ([.pl]) — the [--write-pl] flow output. *)
val write_pl : string -> Netlist.Design.t -> unit

(** Overlay positions (and fixed flags) from a [.pl] file onto an
    existing design, matching by cell name. Unknown cells are errors. *)
val apply_pl : Netlist.Design.t -> string -> unit
