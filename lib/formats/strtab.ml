(** Open-addressing name table (see the interface). *)

type t = {
  mutable keys : string array;
  mutable vals : int array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable count : int;
}

(* Physical-equality sentinel for empty slots; user keys must be
   non-empty so they can never alias it. *)
let empty_key = ""

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(size_hint = 16) () =
  let cap = pow2_at_least (max 16 (size_hint * 2)) 16 in
  { keys = Array.make cap empty_key; vals = Array.make cap 0; mask = cap - 1; count = 0 }

let length t = t.count

(* FNV-1a (basis truncated to OCaml's 63-bit int); the string and span
   variants must agree byte for byte. *)
let fnv_prime = 0x100000001b3
let fnv_basis = 0x4bf29ce484222325

let hash_str (s : string) =
  let h = ref fnv_basis in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  !h land max_int

let hash_span (b : Bytes.t) pos len =
  let h = ref fnv_basis in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * fnv_prime
  done;
  !h land max_int

let span_eq (s : string) (b : Bytes.t) pos len =
  String.length s = len
  &&
  let rec eq i =
    i >= len || String.unsafe_get s i = Bytes.unsafe_get b (pos + i) && eq (i + 1)
  in
  eq 0

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k != empty_key then begin
        let j = ref (hash_str k land t.mask) in
        while t.keys.(!j) != empty_key do
          j := (!j + 1) land t.mask
        done;
        t.keys.(!j) <- k;
        t.vals.(!j) <- old_vals.(i)
      end)
    old_keys

let add t key v =
  if String.length key = 0 then invalid_arg "Strtab.add: empty key";
  if t.count * 2 >= t.mask + 1 then grow t;
  let j = ref (hash_str key land t.mask) in
  let placed = ref false in
  while not !placed do
    let k = t.keys.(!j) in
    if k == empty_key then begin
      t.keys.(!j) <- key;
      t.vals.(!j) <- v;
      t.count <- t.count + 1;
      placed := true
    end
    else if String.equal k key then begin
      t.vals.(!j) <- v;
      placed := true
    end
    else j := (!j + 1) land t.mask
  done

let find t key =
  let j = ref (hash_str key land t.mask) in
  let res = ref None and stop = ref false in
  while not !stop do
    let k = t.keys.(!j) in
    if k == empty_key then stop := true
    else if String.equal k key then begin
      res := Some t.vals.(!j);
      stop := true
    end
    else j := (!j + 1) land t.mask
  done;
  !res

let find_span t b ~pos ~len =
  let j = ref (hash_span b pos len land t.mask) in
  let res = ref None and stop = ref false in
  while not !stop do
    let k = t.keys.(!j) in
    if k == empty_key then stop := true
    else if span_eq k b pos len then begin
      res := Some t.vals.(!j);
      stop := true
    end
    else j := (!j + 1) land t.mask
  done;
  !res
