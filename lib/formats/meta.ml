(** etdp comment headers (see the interface). *)

type t = {
  mutable dname : string option;
  mutable clock : float option;
  mutable iodelay : (float * float) option;
  mutable wire : (float * float) option;
  mutable die : Geom.Rect.t option;
  mutable rowheight : float option;
}

let create () =
  { dname = None; clock = None; iodelay = None; wire = None; die = None; rowheight = None }

let scan_comment m sc =
  if Scan.at_hash sc then begin
    Scan.skip_hash sc;
    if Scan.next_tok sc && Scan.tok_is sc "etdp" && Scan.next_tok sc then
      if Scan.tok_is sc "design" then begin
        Scan.expect sc ~what:"design name";
        m.dname <- Some (Scan.tok sc)
      end
      else if Scan.tok_is sc "clock" then
        m.clock <- Some (Scan.expect_float sc ~what:"clock period")
      else if Scan.tok_is sc "iodelay" then begin
        let i = Scan.expect_float sc ~what:"input delay" in
        let o = Scan.expect_float sc ~what:"output delay" in
        m.iodelay <- Some (i, o)
      end
      else if Scan.tok_is sc "wire" then begin
        let r = Scan.expect_float sc ~what:"wire resistance" in
        let c = Scan.expect_float sc ~what:"wire capacitance" in
        m.wire <- Some (r, c)
      end
      else if Scan.tok_is sc "die" then begin
        let xl = Scan.expect_float sc ~what:"die xl" in
        let yl = Scan.expect_float sc ~what:"die yl" in
        let xh = Scan.expect_float sc ~what:"die xh" in
        let yh = Scan.expect_float sc ~what:"die yh" in
        if xh < xl || yh < yl then Scan.fail sc "inverted die rectangle";
        m.die <- Some (Geom.Rect.make ~xl ~yl ~xh ~yh)
      end
      else if Scan.tok_is sc "rowheight" then
        m.rowheight <- Some (Scan.expect_float sc ~what:"row height")
      (* else: unknown etdp key, skip the line *)
  end;
  (* Discard the rest of the comment line in every case. *)
  while Scan.next_tok sc do
    ()
  done

let emit oc (d : Netlist.Design.t) =
  let p = Fixup.print in
  Printf.fprintf oc "# etdp design %s\n" d.name;
  Printf.fprintf oc "# etdp clock %s\n" (p d.clock_period);
  Printf.fprintf oc "# etdp iodelay %s %s\n" (p d.input_delay) (p d.output_delay);
  Printf.fprintf oc "# etdp wire %s %s\n" (p d.r_per_unit) (p d.c_per_unit);
  Printf.fprintf oc "# etdp die %s %s %s %s\n" (p d.die.Geom.Rect.xl) (p d.die.Geom.Rect.yl)
    (p d.die.Geom.Rect.xh) (p d.die.Geom.Rect.yh);
  Printf.fprintf oc "# etdp rowheight %s\n" (p d.row_height)
