(** Round-trip-exact coordinate emission (see the interface). *)

(* Search outward from [init] for an [e] with [apply e = target]. IEEE
   rounding puts the solution (when it exists) within a couple of ulps,
   so a +/-4-step probe is exhaustive in practice; returning the nearest
   miss keeps the writer total for subnormal/extreme inputs. *)
let solve ~apply ~target ~init =
  if apply init = target then init
  else begin
    let best = ref init in
    let best_err = ref (Float.abs (apply init -. target)) in
    let probe e =
      let err = Float.abs (apply e -. target) in
      if err < !best_err then begin
        best := e;
        best_err := err
      end;
      err = 0.0
    in
    let rec up e n = n > 0 && (probe e || up (Float.succ e) (n - 1)) in
    let rec down e n = n > 0 && (probe e || down (Float.pred e) (n - 1)) in
    if up (Float.succ init) 4 then () else ignore (down (Float.pred init) 4);
    !best
  end

let add_to ~delta x = solve ~apply:(fun e -> e +. delta) ~target:x ~init:(x -. delta)
let ll ~half x = add_to ~delta:half x
let hi ~lo w = solve ~apply:(fun e -> e -. lo) ~target:w ~init:(lo +. w)
let print v = Printf.sprintf "%.17g" v
