(** Extension-dispatched design I/O — the one entry point flow drivers
    use for foreign files.

    [.aux] loads through {!Bookshelf}, [.def] through {!Lefdef} (with
    the companion LEF — explicit [lef], else a sibling [.lef] next to
    the DEF when one exists), anything else through the native
    [Netlist.Io] format. [wire_rc] and [clock] override whatever the file
    (or its [# etdp] headers) provided — the [set_wire_rc] path feeding
    [lib/rctree]. *)

val load :
  ?lef:string ->
  ?wire_rc:Rctree.Wire_rc.t ->
  ?clock:float ->
  string ->
  Netlist.Design.t

(** Save by extension: [.aux] writes the Bookshelf bundle next to the
    path, [.def] writes a DEF plus a sibling [.lef], [.pl] writes
    placement only, anything else the native format. *)
val save : string -> Netlist.Design.t -> unit
