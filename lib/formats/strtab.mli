(** Open-addressing string -> int table with an allocation-free lookup
    keyed by a byte span, so net/placement records can resolve cell names
    against the millions interned from the nodes section without
    materializing a string per reference. *)

type t

val create : ?size_hint:int -> unit -> t

val length : t -> int

(** Bind [key] (must be non-empty) to [v]. An existing binding is
    overwritten — callers wanting duplicate detection probe first. *)
val add : t -> string -> int -> unit

val find : t -> string -> int option

(** Lookup by the bytes [b.[pos .. pos+len-1]] without allocating. *)
val find_span : t -> Bytes.t -> pos:int -> len:int -> int option
