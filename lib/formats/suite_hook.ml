let register_file ?lef ?wire_rc ?clock ~short path =
  Workloads.Suite.register_loader ~short (fun () -> Auto.load ?lef ?wire_rc ?clock path)
