(** Practical LEF/DEF subset (ICCAD-2015-grade, see DESIGN.md §13).

    LEF supplies macro geometry (SITE, MACRO/CLASS/SIZE, PIN
    DIRECTION/CAPACITANCE/PORT RECT); DEF supplies the design (DESIGN,
    UNITS, DIEAREA, ROW, COMPONENTS, PINS, NETS, BLOCKAGES). Both parse
    single-pass through {!Scan} straight into {!Netlist.Builder}; every
    malformed input raises [Netlist.Io.Parse_error (line, msg)]. Unknown
    top-level sections (VIAS, SPECIALNETS, ...) are skipped.

    Semantic mapping: a macro whose name resolves in the default library
    (with matching geometry and pin names) keeps that library cell —
    timing view included; any other macro gets a synthesized library cell
    with default timing. CLASS PAD macros with one pin become input/output
    pads (by pin direction), CLASS BLOCK (or pinless) macros blockages.
    DEF PINS records become pads (DIRECTION INPUT = chip input = driver).
    Components are placed by lower-left corner in DBU ([UNITS DISTANCE
    MICRONS 1024] in written files — a power of two, so DBU scaling is
    exact and round trips are bit-exact); timing context rides in
    [# etdp] comment headers ({!Meta}). *)

(** Parsed LEF library: macro geometry plus the site height. *)
type lef

val read_lef : string -> lef

(** Parse a DEF into a design. [lef] resolves macros the default library
    does not know; without it, every macro must be a library cell. *)
val read_def : ?lef:lef -> string -> Netlist.Design.t

(** Write the LEF/DEF pair. Every cell (pads and blockages included) is
    emitted as a COMPONENT of a macro defined in the LEF — shared library
    macros when the cell is library-faithful, per-cell macros otherwise —
    so parsing the pair back preserves cell ids exactly. *)
val write : lef_path:string -> def_path:string -> Netlist.Design.t -> unit
