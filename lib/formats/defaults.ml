(** Fallback timing/electrical context for foreign files.

    Bookshelf and vanilla LEF/DEF carry geometry and connectivity but no
    delay model, so every quantity the STA needs gets a plausible default
    in the units of {!Netlist.Libcell} (sites / fF / kOhm / ps), matched
    to the middle of the synthetic library. Files written by this repo
    round-trip their true values through [# etdp] headers instead
    ({!Meta}), and the CLI can override clock and wire RC explicitly. *)

let clock_period = 1000.0
let sink_cap = 1.5

(* NAND2_X1-grade constants for cells synthesized from foreign macros. *)
let synth_drive_res = 10.0
let synth_intrinsic = 12.0

(* Synthesized library cell for a macro we only know geometrically. Pin
   names/offsets/caps come from the file (or are generated for raw
   Bookshelf); timing parameters are the defaults above. *)
let synth_libcell ~lname ~w ~h ~(pins : Netlist.Libcell.lib_pin array) : Netlist.Libcell.t =
  {
    lname;
    width = w;
    height = h;
    pins;
    drive_res = synth_drive_res;
    intrinsic = synth_intrinsic;
    slew_sens = 0.1;
    slew_base = 10.0;
    slew_load = 0.8 *. synth_drive_res;
    is_ff = false;
    setup = 0.0;
    hold = 0.0;
    clk_to_q = 0.0;
  }

(* Generic interned libcell for raw-Bookshelf cells identified only by
   their pin-direction profile: GEN_<nin>I<nout>O. *)
let gen_name ~nin ~nout = Printf.sprintf "GEN_%dI%dO" nin nout

(* A cell is library-faithful when its pins mirror its library cell
   (resp. the canonical pad/blockage shapes) exactly — true for every
   design the generator or a sidecar/LEF ingest builds, false after a raw
   Bookshelf ingest (whose pins exist only in the design arrays). Writers
   use this to decide between shared macros/sidecar lines and per-cell
   fallbacks. *)
let cell_faithful (d : Netlist.Design.t) c =
  let module D = Netlist.Design in
  let module L = Netlist.Libcell in
  let off = d.D.cell_pin_off.(c) in
  let npins = d.D.cell_pin_off.(c + 1) - off in
  let pin_matches pid (lp : L.lib_pin) =
    d.D.pin_names.(pid) = lp.L.pname
    && d.D.pin_off_x.{pid} = lp.L.off_x
    && d.D.pin_off_y.{pid} = lp.L.off_y
    && d.D.pin_cap.{pid} = lp.L.cap
    &&
    match (D.pin_dir d pid, lp.L.kind) with
    | D.In, L.Input | D.Out, L.Output -> true
    | _ -> false
  in
  match D.kind d c with
  | D.Logic ->
      let li = d.D.lib_idx.(c) in
      li >= 0
      &&
      let lib = d.D.libs.(li) in
      Array.length lib.L.pins = npins
      && d.D.w.{c} = lib.L.width
      && d.D.h.{c} = lib.L.height
      &&
      let ok = ref true in
      for k = 0 to npins - 1 do
        if not (pin_matches d.D.cell_pin_ids.(off + k) lib.L.pins.(k)) then ok := false
      done;
      !ok
  | D.Input_pad | D.Output_pad ->
      npins = 1
      &&
      let pid = d.D.cell_pin_ids.(off) in
      d.D.pin_names.(pid) = "p"
      && d.D.pin_off_x.{pid} = 0.0
      && d.D.pin_off_y.{pid} = 0.0
      && d.D.w.{c} = 1.0
      && d.D.h.{c} = 1.0
  | D.Blockage -> npins = 0
