(** Extension dispatch (see the interface). *)

module D = Netlist.Design

let ext path = String.lowercase_ascii (Filename.extension path)

let load ?lef ?wire_rc ?clock path =
  let d =
    match ext path with
    | ".aux" -> Bookshelf.read_aux path
    | ".def" ->
        (* No explicit LEF: look for the sibling our own writer produces. *)
        let lef_path =
          match lef with
          | Some _ -> lef
          | None ->
              let sib = Filename.remove_extension path ^ ".lef" in
              if Sys.file_exists sib then Some sib else None
        in
        let lef = Option.map Lefdef.read_lef lef_path in
        Lefdef.read_def ?lef path
    | ".lef" ->
        raise
          (Netlist.Io.Parse_error
             (0, path ^ ": a LEF is a library, not a design; load the DEF (--lef <file> --def <file>)"))
    | _ -> Netlist.Io.load_file path
  in
  (match wire_rc with
  | Some rc ->
      d.D.r_per_unit <- rc.Rctree.Wire_rc.r_per_unit;
      d.D.c_per_unit <- rc.Rctree.Wire_rc.c_per_unit
  | None -> ());
  (match clock with Some c -> d.D.clock_period <- c | None -> ());
  d

let save path d =
  match ext path with
  | ".aux" ->
      let dir = Filename.dirname path in
      let stem = Filename.remove_extension (Filename.basename path) in
      ignore (Bookshelf.write ~dir ~stem d)
  | ".def" ->
      let lef_path = Filename.remove_extension path ^ ".lef" in
      Lefdef.write ~lef_path ~def_path:path d
  | ".pl" -> Bookshelf.write_pl path d
  | _ -> Netlist.Io.save_file path d
