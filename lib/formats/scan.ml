(** Streaming tokenizer (see the interface). *)

let max_token_len = 4096
let max_line_len = 8 * 1024 * 1024
let chunk_len = 64 * 1024

(* Character classes, resolved through a 256-byte table so the inner
   scanning loops do one unsafe lookup per byte. *)
let cls_norm = '\000'
let cls_space = '\001'
let cls_special = '\002'
let cls_hash = '\003'

type src = Chan of in_channel | Str of { s : string; mutable spos : int }

type t = {
  sname : string;
  src : src;
  chunk : Bytes.t;
  mutable clen : int; (* valid bytes in [chunk] *)
  mutable cpos : int; (* read cursor in [chunk] *)
  mutable eof : bool;
  mutable line : Bytes.t; (* current line, reused across lines *)
  mutable llen : int;
  mutable lno : int;
  mutable pos : int; (* token cursor within the line *)
  mutable tstart : int;
  mutable tlen : int;
  mutable hash : bool; (* stopped at an unconsumed '#' *)
  cls : Bytes.t; (* 256-entry character class table *)
  scratch : Bytes.t option array; (* numeric scratch, indexed by length *)
  mutable owned : in_channel option; (* closed by [close] *)
}

let num_scratch_max = 64

let make ~specials ~name src =
  let cls = Bytes.make 256 cls_norm in
  Bytes.set cls (Char.code ' ') cls_space;
  Bytes.set cls (Char.code '\t') cls_space;
  Bytes.set cls (Char.code '#') cls_hash;
  String.iter (fun c -> Bytes.set cls (Char.code c) cls_special) specials;
  {
    sname = name;
    src;
    chunk = Bytes.create chunk_len;
    clen = 0;
    cpos = 0;
    eof = false;
    line = Bytes.create 256;
    llen = 0;
    lno = 0;
    pos = 0;
    tstart = 0;
    tlen = 0;
    hash = false;
    cls;
    scratch = Array.make (num_scratch_max + 1) None;
    owned = None;
  }

let of_channel ?(specials = "") ~name ch = make ~specials ~name (Chan ch)
let of_string ?(specials = "") ~name s = make ~specials ~name (Str { s; spos = 0 })

let open_file ?(specials = "") ?name path =
  let name = match name with Some n -> n | None -> Filename.basename path in
  match open_in_bin path with
  | ch ->
      let t = make ~specials ~name (Chan ch) in
      t.owned <- Some ch;
      t
  | exception Sys_error msg -> raise (Netlist.Io.Parse_error (0, msg))

let close t =
  match t.owned with
  | Some ch ->
      t.owned <- None;
      close_in_noerr ch
  | None -> ()

let name t = t.sname
let line_number t = t.lno

let fail t fmt =
  Printf.ksprintf
    (fun msg -> raise (Netlist.Io.Parse_error (t.lno, t.sname ^ ": " ^ msg)))
    fmt

let fail_at t ~line fmt =
  Printf.ksprintf
    (fun msg -> raise (Netlist.Io.Parse_error (line, t.sname ^ ": " ^ msg)))
    fmt

let refill t =
  (match t.src with
  | Chan ch -> t.clen <- input ch t.chunk 0 chunk_len
  | Str s ->
      let n = min chunk_len (String.length s.s - s.spos) in
      Bytes.blit_string s.s s.spos t.chunk 0 n;
      s.spos <- s.spos + n;
      t.clen <- n);
  t.cpos <- 0;
  if t.clen = 0 then t.eof <- true

let grow_line t needed =
  let cap = Bytes.length t.line in
  if needed > max_line_len then fail t "line exceeds %d bytes" max_line_len;
  let cap' = ref (max 256 cap) in
  while !cap' < needed do
    cap' := min max_line_len (!cap' * 2)
  done;
  let b = Bytes.create !cap' in
  Bytes.blit t.line 0 b 0 t.llen;
  t.line <- b

let next_line t =
  t.llen <- 0;
  t.pos <- 0;
  t.tstart <- 0;
  t.tlen <- 0;
  t.hash <- false;
  if t.eof && t.cpos >= t.clen then false
  else begin
    let saw_any = ref false in
    let stop = ref false in
    while not !stop do
      if t.cpos >= t.clen then begin
        if t.eof then stop := true
        else begin
          refill t;
          if t.eof then stop := true
        end
      end
      else begin
        (* Copy up to the next newline or end of chunk in one blit. *)
        saw_any := true;
        let nl = Bytes.index_from_opt t.chunk t.cpos '\n' in
        let upto =
          match nl with Some i when i < t.clen -> i | _ -> t.clen
        in
        let n = upto - t.cpos in
        if t.llen + n > Bytes.length t.line then grow_line t (t.llen + n);
        Bytes.blit t.chunk t.cpos t.line t.llen n;
        t.llen <- t.llen + n;
        match nl with
        | Some i when i < t.clen ->
            t.cpos <- i + 1;
            stop := true
        | _ -> t.cpos <- t.clen
      end
    done;
    if (not !saw_any) && t.llen = 0 && t.eof && t.cpos >= t.clen then false
    else begin
      t.lno <- t.lno + 1;
      (* Strip a CRLF ending; interior '\r' stays in its token. *)
      if t.llen > 0 && Bytes.unsafe_get t.line (t.llen - 1) = '\r' then
        t.llen <- t.llen - 1;
      true
    end
  end

let next_tok t =
  t.hash <- false;
  let line = t.line and cls = t.cls and len = t.llen in
  let p = ref t.pos in
  while
    !p < len
    && Bytes.unsafe_get cls (Char.code (Bytes.unsafe_get line !p)) = cls_space
  do
    incr p
  done;
  if !p >= len then begin
    t.pos <- len;
    t.tlen <- 0;
    false
  end
  else
    let c = Bytes.unsafe_get cls (Char.code (Bytes.unsafe_get line !p)) in
    if c = cls_hash then begin
      t.pos <- !p;
      t.tlen <- 0;
      t.hash <- true;
      false
    end
    else if c = cls_special then begin
      t.tstart <- !p;
      t.tlen <- 1;
      t.pos <- !p + 1;
      true
    end
    else begin
      t.tstart <- !p;
      let q = ref !p in
      while
        !q < len
        && Bytes.unsafe_get cls (Char.code (Bytes.unsafe_get line !q)) = cls_norm
      do
        incr q
      done;
      t.tlen <- !q - !p;
      t.pos <- !q;
      if t.tlen > max_token_len then
        fail t "token exceeds %d bytes (starts %S...)" max_token_len
          (Bytes.sub_string line !p 24);
      true
    end

let at_hash t = t.hash

let skip_hash t =
  if t.hash then begin
    t.pos <- t.pos + 1;
    t.hash <- false
  end

let rec next_tok_ml t =
  if next_tok t then true else if next_line t then next_tok_ml t else false

let tok t = Bytes.sub_string t.line t.tstart t.tlen
let tok_len t = t.tlen

let tok_is t s =
  t.tlen = String.length s
  &&
  let rec eq i =
    i >= t.tlen
    || Bytes.unsafe_get t.line (t.tstart + i) = String.unsafe_get s i && eq (i + 1)
  in
  eq 0

let tok_is_ci t s =
  t.tlen = String.length s
  &&
  let rec eq i =
    i >= t.tlen
    || Char.lowercase_ascii (Bytes.unsafe_get t.line (t.tstart + i))
       = Char.lowercase_ascii (String.unsafe_get s i)
       && eq (i + 1)
  in
  eq 0

let tok_starts_with t c = t.tlen > 0 && Bytes.unsafe_get t.line t.tstart = c
let tok_lookup t tbl = Strtab.find_span tbl t.line ~pos:t.tstart ~len:t.tlen

(* Parse numbers via a per-length scratch buffer: the token bytes are
   blitted into an exactly-sized Bytes that [unsafe_to_string] exposes to
   [float_of_string] without a substring allocation. The scratch is never
   mutated while a string view of it is live. *)
let scratch_view t =
  let n = t.tlen in
  let b =
    match t.scratch.(n) with
    | Some b -> b
    | None ->
        let b = Bytes.create n in
        t.scratch.(n) <- Some b;
        b
  in
  Bytes.blit t.line t.tstart b 0 n;
  Bytes.unsafe_to_string b

let tok_float t =
  if t.tlen = 0 || t.tlen > num_scratch_max then
    fail t "malformed number %S" (Bytes.sub_string t.line t.tstart (min t.tlen 32));
  match float_of_string_opt (scratch_view t) with
  | Some v when Float.is_finite v -> v
  | _ -> fail t "malformed number %S" (tok t)

let tok_int t =
  if t.tlen = 0 || t.tlen > num_scratch_max then
    fail t "malformed integer %S" (Bytes.sub_string t.line t.tstart (min t.tlen 32));
  match int_of_string_opt (scratch_view t) with
  | Some v -> v
  | None -> fail t "malformed integer %S" (tok t)

let expect t ~what = if not (next_tok t) then fail t "expected %s" what

let expect_float t ~what =
  expect t ~what;
  tok_float t

let expect_int t ~what =
  expect t ~what;
  tok_int t

let expect_lit t lit =
  expect t ~what:(Printf.sprintf "'%s'" lit);
  if not (tok_is_ci t lit) then fail t "expected '%s', got %S" lit (tok t)
