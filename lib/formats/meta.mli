(** Timing/electrical context carried through format round trips.

    Bookshelf and DEF describe geometry only; clock period, IO delays and
    wire parasitics would be lost on write -> parse. Both writers
    therefore emit an ["# etdp <key> <values>"] comment block (legal
    comments in both grammars, invisible to other tools) and both readers
    collect it here. Fields the file does not provide fall back to
    {!Defaults} or CLI overrides in [Auto.load].

    Keys: [design <name>], [clock <ps>], [iodelay <in> <out>],
    [wire <r> <c>], [die <xl> <yl> <xh> <yh>], [rowheight <h>]. Unknown
    keys are skipped (forward compatibility); malformed values in known
    keys are parse errors. *)

type t = {
  mutable dname : string option;
  mutable clock : float option;
  mutable iodelay : (float * float) option;
  mutable wire : (float * float) option;
  mutable die : Geom.Rect.t option;
  mutable rowheight : float option;
}

val create : unit -> t

(** Consume a comment the scanner stopped at ({!Scan.at_hash}); recognises
    the [etdp] marker and records the header, skipping anything else.
    Always leaves the scan at end of line. *)
val scan_comment : t -> Scan.t -> unit

(** Write the comment block for [d] (trailing newline included). *)
val emit : out_channel -> Netlist.Design.t -> unit
