(** Bookshelf reader/writer (see the interface and DESIGN.md §13). *)

module D = Netlist.Design
module B = Netlist.Builder
module L = Netlist.Libcell

let specials = ":"

let dir_of_lp (lp : L.lib_pin) = match lp.kind with L.Input -> D.In | L.Output -> D.Out

let perr ~name ~line fmt =
  Printf.ksprintf (fun msg -> raise (Netlist.Io.Parse_error (line, name ^ ": " ^ msg))) fmt

(* ---------------------------------------------------------------- aux -- *)

type listed = { fpath : string; flno : int }

type files = {
  mutable f_nodes : listed option;
  mutable f_nets : listed option;
  mutable f_pl : listed option;
  mutable f_scl : listed option;
  mutable f_cells : listed option;
}

let ext_of s =
  match String.rindex_opt s '.' with
  | None -> ""
  | Some i -> String.lowercase_ascii (String.sub s (i + 1) (String.length s - i - 1))

let read_aux_listing ~auxname path meta =
  let dir = Filename.dirname path in
  let fs = { f_nodes = None; f_nets = None; f_pl = None; f_scl = None; f_cells = None } in
  let sc = Scan.open_file ~specials ~name:auxname path in
  Fun.protect ~finally:(fun () -> Scan.close sc) @@ fun () ->
  let record () =
    let ext = ext_of (Scan.tok sc) in
    let slot =
      match ext with
      | "nodes" -> Some (fs.f_nodes, fun l -> fs.f_nodes <- l)
      | "nets" -> Some (fs.f_nets, fun l -> fs.f_nets <- l)
      | "pl" -> Some (fs.f_pl, fun l -> fs.f_pl <- l)
      | "scl" -> Some (fs.f_scl, fun l -> fs.f_scl <- l)
      | "cells" -> Some (fs.f_cells, fun l -> fs.f_cells <- l)
      | _ -> None (* .wts, .shapes, .route, ... — not consumed *)
    in
    match slot with
    | None -> ()
    | Some (cur, set) ->
        if cur <> None then Scan.fail sc "duplicate .%s listing" ext;
        set (Some { fpath = Filename.concat dir (Scan.tok sc); flno = Scan.line_number sc })
  in
  while Scan.next_line sc do
    if Scan.next_tok sc then begin
      (* "<Key> : file file ..." — the key word itself is free-form. *)
      Scan.expect_lit sc ":";
      while Scan.next_tok sc do
        record ()
      done;
      if Scan.at_hash sc then Meta.scan_comment meta sc
    end
    else if Scan.at_hash sc then Meta.scan_comment meta sc
  done;
  fs

let open_listed ~auxname l =
  try Scan.open_file ~specials l.fpath
  with Netlist.Io.Parse_error (_, msg) -> perr ~name:auxname ~line:l.flno "%s" msg

(* ---------------------------------------------------------------- scl -- *)

(* Returns (rows bbox, first row height) when the file defines rows. *)
let read_scl sc =
  Fun.protect ~finally:(fun () -> Scan.close sc) @@ fun () ->
  let num_rows = ref (-1) in
  let bbox = ref None and row_h = ref None and rows_seen = ref 0 in
  let read_row () =
    let coord = ref nan and height = ref nan in
    let origin = ref nan and nsites = ref (-1) in
    let sitespacing = ref nan and sitewidth = ref nan in
    let row_line = Scan.line_number sc in
    let ended = ref false in
    while not !ended do
      if not (Scan.next_line sc) then
        Scan.fail_at sc ~line:row_line "unterminated CoreRow block";
      if Scan.next_tok sc then begin
        if Scan.tok_is_ci sc "End" then ended := true
        else if Scan.tok_is_ci sc "Coordinate" then begin
          Scan.expect_lit sc ":";
          coord := Scan.expect_float sc ~what:"row coordinate"
        end
        else if Scan.tok_is_ci sc "Height" then begin
          Scan.expect_lit sc ":";
          height := Scan.expect_float sc ~what:"row height"
        end
        else if Scan.tok_is_ci sc "Sitewidth" then begin
          Scan.expect_lit sc ":";
          sitewidth := Scan.expect_float sc ~what:"site width"
        end
        else if Scan.tok_is_ci sc "Sitespacing" then begin
          Scan.expect_lit sc ":";
          sitespacing := Scan.expect_float sc ~what:"site spacing"
        end
        else if Scan.tok_is_ci sc "SubrowOrigin" then begin
          Scan.expect_lit sc ":";
          origin := Scan.expect_float sc ~what:"subrow origin";
          Scan.expect_lit sc "NumSites";
          Scan.expect_lit sc ":";
          nsites := Scan.expect_int sc ~what:"site count";
          if !nsites < 0 then Scan.fail sc "negative NumSites"
        end
        else () (* Siteorient, Sitesymmetry, ... *)
      end
    done;
    if Float.is_nan !coord || Float.is_nan !height || Float.is_nan !origin || !nsites < 0
    then Scan.fail_at sc ~line:row_line "CoreRow missing Coordinate/Height/SubrowOrigin";
    let spacing =
      if not (Float.is_nan !sitespacing) then !sitespacing
      else if not (Float.is_nan !sitewidth) then !sitewidth
      else 1.0
    in
    let xl = !origin and xh = !origin +. (float_of_int !nsites *. spacing) in
    let yl = !coord and yh = !coord +. !height in
    (match !row_h with None -> row_h := Some !height | Some _ -> ());
    let r = Geom.Rect.make ~xl ~yl ~xh ~yh in
    bbox := Some (match !bbox with None -> r | Some acc -> Geom.Rect.union acc r);
    incr rows_seen
  in
  while Scan.next_line sc do
    if Scan.next_tok sc then begin
      if Scan.tok_is_ci sc "UCLA" then ()
      else if Scan.tok_is_ci sc "NumRows" then begin
        Scan.expect_lit sc ":";
        num_rows := Scan.expect_int sc ~what:"row count"
      end
      else if Scan.tok_is_ci sc "CoreRow" then read_row ()
      else Scan.fail sc "unexpected token %S in .scl" (Scan.tok sc)
    end
  done;
  if !num_rows >= 0 && !rows_seen <> !num_rows then
    Scan.fail sc "NumRows %d but %d CoreRow blocks" !num_rows !rows_seen;
  (!bbox, !row_h)

(* -------------------------------------------------------------- nodes -- *)

let max_cells = 200_000_000

type nodes = {
  tbl : Strtab.t; (* cell name -> id *)
  names : string array;
  term : Bytes.t; (* '\001' for terminals *)
}

let read_nodes sc b ~cx ~cy =
  Fun.protect ~finally:(fun () -> Scan.close sc) @@ fun () ->
  let nn = ref (-1) and nt = ref (-1) in
  let tbl = ref None and term = ref Bytes.empty and names = ref [||] in
  let count = ref 0 and tcount = ref 0 in
  while Scan.next_line sc do
    if Scan.next_tok sc then begin
      if Scan.tok_is_ci sc "UCLA" then ()
      else if Scan.tok_is_ci sc "NumNodes" then begin
        Scan.expect_lit sc ":";
        let n = Scan.expect_int sc ~what:"node count" in
        if n < 0 || n > max_cells then Scan.fail sc "implausible NumNodes %d" n;
        nn := n;
        tbl := Some (Strtab.create ~size_hint:n ());
        term := Bytes.make n '\000';
        names := Array.make n ""
      end
      else if Scan.tok_is_ci sc "NumTerminals" then begin
        Scan.expect_lit sc ":";
        nt := Scan.expect_int sc ~what:"terminal count"
      end
      else begin
        if !nn < 0 then Scan.fail sc "node record before NumNodes header";
        let tbl = Option.get !tbl in
        if Scan.tok_lookup sc tbl <> None then
          Scan.fail sc "duplicate cell %S" (Scan.tok sc);
        let name = Scan.tok sc in
        let w = Scan.expect_float sc ~what:"cell width" in
        let h = Scan.expect_float sc ~what:"cell height" in
        if w < 0.0 || h < 0.0 then Scan.fail sc "negative cell size";
        let terminal =
          if Scan.next_tok sc then
            if Scan.tok_is_ci sc "terminal" || Scan.tok_is_ci sc "terminal_NI" then true
            else Scan.fail sc "unexpected token %S after node size" (Scan.tok sc)
          else false
        in
        if Scan.next_tok sc then Scan.fail sc "trailing tokens in node record";
        if !count >= !nn then Scan.fail sc "more node records than NumNodes";
        let id =
          B.add_raw_cell b ~cname:name ~kind:D.Logic ~lib:None ~w ~h
            ~movable:(not terminal) ~x:cx ~y:cy
        in
        Strtab.add tbl name id;
        !names.(id) <- name;
        if terminal then begin
          Bytes.set !term id '\001';
          incr tcount
        end;
        incr count
      end
    end
  done;
  if !nn < 0 then Scan.fail sc "missing NumNodes header";
  if !count <> !nn then Scan.fail sc "expected %d node records, got %d" !nn !count;
  if !nt >= 0 && !tcount <> !nt then
    Scan.fail sc "NumTerminals %d but %d terminal records" !nt !tcount;
  { tbl = Option.get !tbl; names = !names; term = !term }

(* ------------------------------------------------------ .cells sidecar -- *)

(* Per-cell spec from the sidecar: 'L' logic (with library cell and M/F),
   'I'/'O' pads, 'B' blockage, '\000' absent. *)
type spec = {
  mutable sk : char;
  mutable slib : L.t option;
  mutable smov : bool;
  mutable sline : int;
}

let read_cells sc (nd : nodes) =
  Fun.protect ~finally:(fun () -> Scan.close sc) @@ fun () ->
  let n = Array.length nd.names in
  let specs = Array.init n (fun _ -> { sk = '\000'; slib = None; smov = false; sline = 0 }) in
  let cell_of () =
    Scan.expect sc ~what:"cell name";
    match Scan.tok_lookup sc nd.tbl with
    | Some c ->
        if specs.(c).sk <> '\000' then
          Scan.fail sc "duplicate .cells entry for %s" nd.names.(c);
        specs.(c).sline <- Scan.line_number sc;
        c
    | None -> Scan.fail sc "unknown cell %S in .cells" (Scan.tok sc)
  in
  while Scan.next_line sc do
    if Scan.next_tok sc then begin
      if Scan.tok_is_ci sc "UCLA" then ()
      else if Scan.tok_is sc "L" then begin
        let c = cell_of () in
        Scan.expect sc ~what:"library cell name";
        let lname = Scan.tok sc in
        let lib =
          try L.find_in_library lname
          with Invalid_argument _ -> Scan.fail sc "unknown library cell %S" lname
        in
        Scan.expect sc ~what:"M or F";
        let mov =
          if Scan.tok_is sc "M" then true
          else if Scan.tok_is sc "F" then false
          else Scan.fail sc "expected M or F, got %S" (Scan.tok sc)
        in
        specs.(c).sk <- 'L';
        specs.(c).slib <- Some lib;
        specs.(c).smov <- mov
      end
      else begin
        let k =
          if Scan.tok_is sc "I" then 'I'
          else if Scan.tok_is sc "O" then 'O'
          else if Scan.tok_is sc "B" then 'B'
          else Scan.fail sc "unexpected token %S in .cells" (Scan.tok sc)
        in
        let c = cell_of () in
        specs.(c).sk <- k;
        if Scan.next_tok sc then Scan.fail sc "trailing tokens in .cells entry"
      end
    end
  done;
  Array.iteri
    (fun c s ->
      if s.sk = '\000' then Scan.fail sc "missing .cells entry for %s" nd.names.(c))
    specs;
  specs

(* Settle kinds/libs and create every pin in cell-id, library order — the
   same order [add_logic]/[add_pad] would have used, so pin ids round-trip
   identically. Returns each cell's first pin id plus the taken bitmap the
   net matcher updates. *)
let apply_specs ~fname b (nd : nodes) (specs : spec array) =
  let n = Array.length specs in
  let pin_first = Array.make n 0 in
  let total = ref 0 in
  for c = 0 to n - 1 do
    let s = specs.(c) in
    pin_first.(c) <- !total;
    match s.sk with
    | 'L' ->
        let lib = Option.get s.slib in
        if
          Float.abs (B.cell_width b ~cell:c -. lib.L.width) > 1e-9
          || Float.abs (B.cell_height b ~cell:c -. lib.L.height) > 1e-9
        then
          perr ~name:fname ~line:s.sline "cell %s size disagrees with library cell %s"
            nd.names.(c) lib.L.lname;
        B.set_kind b ~cell:c ~kind:D.Logic ~lib:(Some lib);
        B.set_movable b ~cell:c ~movable:s.smov;
        Array.iter
          (fun (lp : L.lib_pin) ->
            ignore
              (B.add_raw_pin b ~cell:c ~pin_name:lp.L.pname ~dir:(dir_of_lp lp)
                 ~off_x:lp.L.off_x ~off_y:lp.L.off_y ~cap:lp.L.cap);
            incr total)
          lib.L.pins
    | 'I' ->
        B.set_kind b ~cell:c ~kind:D.Input_pad ~lib:None;
        B.set_movable b ~cell:c ~movable:false;
        ignore
          (B.add_raw_pin b ~cell:c ~pin_name:"p" ~dir:D.Out ~off_x:0.0 ~off_y:0.0 ~cap:0.0);
        incr total
    | 'O' ->
        B.set_kind b ~cell:c ~kind:D.Output_pad ~lib:None;
        B.set_movable b ~cell:c ~movable:false;
        ignore
          (B.add_raw_pin b ~cell:c ~pin_name:"p" ~dir:D.In ~off_x:0.0 ~off_y:0.0 ~cap:3.0);
        incr total
    | _ ->
        B.set_kind b ~cell:c ~kind:D.Blockage ~lib:None;
        B.set_movable b ~cell:c ~movable:false
  done;
  (pin_first, Bytes.make !total '\000')

(* ---------------------------------------------------------------- nets -- *)

type netmode =
  | Sidecar of { specs : spec array; pin_first : int array; taken : Bytes.t }
  | Raw of { nin : int array; nout : int array; pcnt : int array }

(* Sidecar pin resolution: match (direction, exact offsets) against the
   cell's library pins, skipping ones already connected. Offsets printed
   with %.17g reparse to identical floats, so exact equality is the right
   test. *)
let match_spec_pin specs pin_first taken c ~dir ~ox ~oy =
  let s : spec = specs.(c) in
  match s.sk with
  | 'L' ->
      let lib = Option.get s.slib in
      let res = ref (-1) in
      Array.iteri
        (fun k (lp : L.lib_pin) ->
          if
            !res < 0
            && dir_of_lp lp = dir
            && lp.L.off_x = ox
            && lp.L.off_y = oy
            && Bytes.get taken (pin_first.(c) + k) = '\000'
          then res := pin_first.(c) + k)
        lib.L.pins;
      !res
  | 'I' ->
      if dir = D.Out && ox = 0.0 && oy = 0.0 && Bytes.get taken pin_first.(c) = '\000' then
        pin_first.(c)
      else -1
  | 'O' ->
      if dir = D.In && ox = 0.0 && oy = 0.0 && Bytes.get taken pin_first.(c) = '\000' then
        pin_first.(c)
      else -1
  | _ -> -1

let read_nets sc b (nd : nodes) mode =
  Fun.protect ~finally:(fun () -> Scan.close sc) @@ fun () ->
  let num_nets = ref (-1) and num_pins = ref (-1) in
  let net_count = ref 0 and pin_count = ref 0 in
  let read_entry ~nname ~deg_line ~found ~want =
    (* Find the next entry line; NetDegree or EOF here means the record is
       shorter than its declared degree. *)
    let rec seek () =
      if not (Scan.next_line sc) then
        Scan.fail_at sc ~line:deg_line "net %s: expected %d entries, found %d" nname want
          found
      else if not (Scan.next_tok sc) then seek ()
      else if Scan.tok_is_ci sc "NetDegree" then
        Scan.fail_at sc ~line:deg_line "net %s: expected %d entries, found %d" nname want
          found
    in
    seek ();
    let cell =
      match Scan.tok_lookup sc nd.tbl with
      | Some c -> c
      | None -> Scan.fail sc "unknown cell %S in net %s" (Scan.tok sc) nname
    in
    Scan.expect sc ~what:"pin direction";
    let dir =
      if Scan.tok_is_ci sc "O" then D.Out
      else if Scan.tok_is_ci sc "I" || Scan.tok_is_ci sc "B" then D.In
      else Scan.fail sc "bad pin direction %S (expected I, O or B)" (Scan.tok sc)
    in
    let ox, oy =
      if Scan.next_tok sc then begin
        if not (Scan.tok_is sc ":") then
          Scan.fail sc "expected ':' before pin offsets, got %S" (Scan.tok sc);
        let ox = Scan.expect_float sc ~what:"pin x offset" in
        let oy = Scan.expect_float sc ~what:"pin y offset" in
        if Scan.next_tok sc then Scan.fail sc "trailing tokens in net entry";
        (ox, oy)
      end
      else (0.0, 0.0)
    in
    (cell, dir, ox, oy)
  in
  while Scan.next_line sc do
    if Scan.next_tok sc then begin
      if Scan.tok_is_ci sc "UCLA" then ()
      else if Scan.tok_is_ci sc "NumNets" then begin
        Scan.expect_lit sc ":";
        num_nets := Scan.expect_int sc ~what:"net count"
      end
      else if Scan.tok_is_ci sc "NumPins" then begin
        Scan.expect_lit sc ":";
        num_pins := Scan.expect_int sc ~what:"pin count"
      end
      else if Scan.tok_is_ci sc "NetDegree" then begin
        Scan.expect_lit sc ":";
        let deg = Scan.expect_int sc ~what:"net degree" in
        if deg < 1 then Scan.fail sc "bad net degree %d" deg;
        let deg_line = Scan.line_number sc in
        let nname =
          if Scan.next_tok sc then Scan.tok sc else Printf.sprintf "n%d" !net_count
        in
        if Scan.next_tok sc then Scan.fail sc "trailing tokens after net name";
        let nid = B.add_net b ~nname in
        let sinks = ref 0 and driver = ref false in
        for k = 0 to deg - 1 do
          let cell, dir, ox, oy = read_entry ~nname ~deg_line ~found:k ~want:deg in
          let pid =
            match mode with
            | Sidecar { specs; pin_first; taken } ->
                let pid = match_spec_pin specs pin_first taken cell ~dir ~ox ~oy in
                if pid < 0 then
                  Scan.fail sc "cell %s has no free %s pin at offset (%g, %g)"
                    nd.names.(cell)
                    (if dir = D.Out then "output" else "input")
                    ox oy;
                Bytes.set taken pid '\001';
                pid
            | Raw { nin; nout; pcnt } ->
                let pname = "p" ^ string_of_int pcnt.(cell) in
                pcnt.(cell) <- pcnt.(cell) + 1;
                (match dir with
                | D.In -> nin.(cell) <- nin.(cell) + 1
                | D.Out -> nout.(cell) <- nout.(cell) + 1);
                B.add_raw_pin b ~cell ~pin_name:pname ~dir ~off_x:ox ~off_y:oy
                  ~cap:(if dir = D.In then Defaults.sink_cap else 0.0)
          in
          (try B.connect b ~net:nid ~pin:pid
           with Util.Errors.Error _ -> Scan.fail sc "net %s has two drivers" nname);
          (match dir with D.In -> incr sinks | D.Out -> driver := true);
          incr pin_count
        done;
        if not !driver then Scan.fail_at sc ~line:deg_line "net %s has no driver" nname;
        if !sinks = 0 then Scan.fail_at sc ~line:deg_line "net %s has no sinks" nname;
        incr net_count
      end
      else Scan.fail sc "unexpected token %S (expected NetDegree)" (Scan.tok sc)
    end
  done;
  if !num_nets >= 0 && !net_count <> !num_nets then
    Scan.fail sc "NumNets %d but %d net records" !num_nets !net_count;
  if !num_pins >= 0 && !pin_count <> !num_pins then
    Scan.fail sc "NumPins %d but %d net entries" !num_pins !pin_count

(* Raw ingest saw only terminal flags and pin traffic; settle kinds. A
   terminal whose single pin drives is an input pad, one sinking pin an
   output pad, no pins a blockage; everything else is (fixed) logic with
   an interned generic library cell keyed by pin profile. *)
let infer_kinds b (nd : nodes) nin nout pcnt =
  let cache = Hashtbl.create 8 in
  let gen ~nin ~nout =
    let key = (nin, nout) in
    match Hashtbl.find_opt cache key with
    | Some l -> l
    | None ->
        let l =
          Defaults.synth_libcell ~lname:(Defaults.gen_name ~nin ~nout) ~w:1.0 ~h:1.0
            ~pins:[||]
        in
        Hashtbl.add cache key l;
        l
  in
  for c = 0 to Array.length nd.names - 1 do
    let terminal = Bytes.get nd.term c = '\001' in
    if terminal && pcnt.(c) = 0 then B.set_kind b ~cell:c ~kind:D.Blockage ~lib:None
    else if terminal && pcnt.(c) = 1 && nout.(c) = 1 then
      B.set_kind b ~cell:c ~kind:D.Input_pad ~lib:None
    else if terminal && pcnt.(c) = 1 && nin.(c) = 1 then
      B.set_kind b ~cell:c ~kind:D.Output_pad ~lib:None
    else B.set_kind b ~cell:c ~kind:D.Logic ~lib:(Some (gen ~nin:nin.(c) ~nout:nout.(c)))
  done

(* ----------------------------------------------------------------- pl -- *)

(* Shared by the builder path (read_aux) and the overlay path (apply_pl):
   [lookup]/[dims]/[setpos]/[fix] abstract the target. *)
let read_pl_generic sc ~lookup ~dims ~setpos ~fix =
  Fun.protect ~finally:(fun () -> Scan.close sc) @@ fun () ->
  while Scan.next_line sc do
    if Scan.next_tok sc then begin
      if Scan.tok_is_ci sc "UCLA" then ()
      else begin
        let cell =
          match lookup sc with
          | Some c -> c
          | None -> Scan.fail sc "unknown cell %S in .pl" (Scan.tok sc)
        in
        let llx = Scan.expect_float sc ~what:"x coordinate" in
        let lly = Scan.expect_float sc ~what:"y coordinate" in
        let w, h = dims cell in
        setpos cell (llx +. (w /. 2.0)) (lly +. (h /. 2.0));
        if Scan.next_tok sc then begin
          if not (Scan.tok_is sc ":") then
            Scan.fail sc "expected ':' before orientation, got %S" (Scan.tok sc);
          Scan.expect sc ~what:"orientation";
          while Scan.next_tok sc do
            if Scan.tok_is_ci sc "/FIXED" || Scan.tok_is_ci sc "/FIXED_NI" then fix cell
            else Scan.fail sc "unexpected token %S in .pl record" (Scan.tok sc)
          done
        end
      end
    end
  done

let read_pl sc b (nd : nodes) =
  read_pl_generic sc
    ~lookup:(fun sc -> Scan.tok_lookup sc nd.tbl)
    ~dims:(fun c -> (B.cell_width b ~cell:c, B.cell_height b ~cell:c))
    ~setpos:(fun c x y -> B.set_position b ~cell:c ~x ~y)
    ~fix:(fun c -> B.set_movable b ~cell:c ~movable:false)

(* ------------------------------------------------------------ read_aux -- *)

let read_aux path =
  let auxname = Filename.basename path in
  let aux_fail fmt = perr ~name:auxname ~line:0 fmt in
  let meta = Meta.create () in
  let fs = read_aux_listing ~auxname path meta in
  let need what = function
    | Some l -> l
    | None -> aux_fail "aux lists no .%s file" what
  in
  let scl_bbox, scl_rowh =
    match fs.f_scl with Some l -> read_scl (open_listed ~auxname l) | None -> (None, None)
  in
  let die =
    match (meta.Meta.die, scl_bbox) with
    | Some r, _ -> r
    | None, Some r -> r
    | None, None -> aux_fail "no die area (need an .scl file or an '# etdp die' header)"
  in
  let row_height =
    match (meta.Meta.rowheight, scl_rowh) with
    | Some h, _ -> h
    | None, Some h -> h
    | None, None -> 1.0
  in
  let dname =
    match meta.Meta.dname with
    | Some n -> n
    | None -> Filename.remove_extension auxname
  in
  let clock = Option.value meta.Meta.clock ~default:Defaults.clock_period in
  let r_per_unit, c_per_unit =
    match meta.Meta.wire with
    | Some rc -> rc
    | None ->
        let w = Rctree.Wire_rc.default in
        (w.Rctree.Wire_rc.r_per_unit, w.Rctree.Wire_rc.c_per_unit)
  in
  let b = B.create ~name:dname ~die ~row_height ~clock_period:clock ~r_per_unit ~c_per_unit in
  let cx = (die.Geom.Rect.xl +. die.Geom.Rect.xh) /. 2.0 in
  let cy = (die.Geom.Rect.yl +. die.Geom.Rect.yh) /. 2.0 in
  let nd = read_nodes (open_listed ~auxname (need "nodes" fs.f_nodes)) b ~cx ~cy in
  let mode =
    match fs.f_cells with
    | Some l ->
        let specs = read_cells (open_listed ~auxname l) nd in
        let pin_first, taken =
          apply_specs ~fname:(Filename.basename l.fpath) b nd specs
        in
        Sidecar { specs; pin_first; taken }
    | None ->
        let n = Array.length nd.names in
        Raw { nin = Array.make n 0; nout = Array.make n 0; pcnt = Array.make n 0 }
  in
  read_nets (open_listed ~auxname (need "nets" fs.f_nets)) b nd mode;
  (match mode with
  | Raw { nin; nout; pcnt } -> infer_kinds b nd nin nout pcnt
  | Sidecar _ -> ());
  read_pl (open_listed ~auxname (need "pl" fs.f_pl)) b nd;
  let d = B.finish b in
  (match meta.Meta.iodelay with
  | Some (i, o) ->
      d.D.input_delay <- i;
      d.D.output_delay <- o
  | None -> ());
  d

(* ------------------------------------------------------------- writers -- *)

let pg = Fixup.print

let with_out path f =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

(* The .cells sidecar can only reproduce pins when every cell is
   library-faithful; otherwise we omit it and let re-ingest re-infer. *)
let faithful (d : D.t) =
  let ok = ref true in
  for c = 0 to D.num_cells d - 1 do
    if !ok && not (Defaults.cell_faithful d c) then ok := false
  done;
  !ok

let write_nodes oc (d : D.t) =
  output_string oc "UCLA nodes 1.0\n";
  let nterm = ref 0 in
  for c = 0 to d.D.n_cells - 1 do
    if not (D.is_movable d c) then incr nterm
  done;
  Printf.fprintf oc "NumNodes : %d\nNumTerminals : %d\n" d.D.n_cells !nterm;
  for c = 0 to d.D.n_cells - 1 do
    Printf.fprintf oc "%s %s %s%s\n" d.D.cell_names.(c) (pg d.D.w.{c}) (pg d.D.h.{c})
      (if D.is_movable d c then "" else " terminal")
  done

let write_nets oc (d : D.t) =
  output_string oc "UCLA nets 1.0\n";
  Printf.fprintf oc "NumNets : %d\nNumPins : %d\n" d.D.n_nets
    d.D.net_pin_off.(d.D.n_nets);
  for n = 0 to d.D.n_nets - 1 do
    let off = d.D.net_pin_off.(n) in
    let deg = d.D.net_pin_off.(n + 1) - off in
    Printf.fprintf oc "NetDegree : %d %s\n" deg d.D.net_names.(n);
    for k = off to off + deg - 1 do
      let pid = d.D.net_pin_ids.(k) in
      let dchar = match D.pin_dir d pid with D.Out -> 'O' | D.In -> 'I' in
      Printf.fprintf oc "\t%s %c : %s %s\n"
        d.D.cell_names.(d.D.pin_owner.(pid))
        dchar
        (pg d.D.pin_off_x.{pid})
        (pg d.D.pin_off_y.{pid})
    done
  done

let write_pl_oc oc (d : D.t) =
  output_string oc "UCLA pl 1.0\n";
  for c = 0 to d.D.n_cells - 1 do
    let llx = Fixup.ll ~half:(d.D.w.{c} /. 2.0) d.D.x.{c} in
    let lly = Fixup.ll ~half:(d.D.h.{c} /. 2.0) d.D.y.{c} in
    Printf.fprintf oc "%s %s %s : N%s\n" d.D.cell_names.(c) (pg llx) (pg lly)
      (if D.is_movable d c then "" else " /FIXED")
  done

let write_scl oc (d : D.t) =
  output_string oc "UCLA scl 1.0\n";
  let die = d.D.die in
  let rh = d.D.row_height in
  let height = die.Geom.Rect.yh -. die.Geom.Rect.yl in
  let width = die.Geom.Rect.xh -. die.Geom.Rect.xl in
  let nrows = max 1 (int_of_float (floor ((height /. rh) +. 1e-9))) in
  let nsites = max 1 (int_of_float (floor (width +. 1e-9))) in
  Printf.fprintf oc "NumRows : %d\n" nrows;
  for i = 0 to nrows - 1 do
    Printf.fprintf oc
      "CoreRow Horizontal\n\
      \  Coordinate : %s\n\
      \  Height : %s\n\
      \  Sitewidth : 1\n\
      \  Sitespacing : 1\n\
      \  Siteorient : N\n\
      \  Sitesymmetry : Y\n\
      \  SubrowOrigin : %s NumSites : %d\n\
       End\n"
      (pg (die.Geom.Rect.yl +. (float_of_int i *. rh)))
      (pg rh)
      (pg die.Geom.Rect.xl)
      nsites
  done

let write_cells oc (d : D.t) =
  output_string oc "UCLA cells 1.0\n";
  for c = 0 to d.D.n_cells - 1 do
    match D.kind d c with
    | D.Logic ->
        let lib = d.D.libs.(d.D.lib_idx.(c)) in
        Printf.fprintf oc "L %s %s %c\n" d.D.cell_names.(c) lib.L.lname
          (if D.is_movable d c then 'M' else 'F')
    | D.Input_pad -> Printf.fprintf oc "I %s\n" d.D.cell_names.(c)
    | D.Output_pad -> Printf.fprintf oc "O %s\n" d.D.cell_names.(c)
    | D.Blockage -> Printf.fprintf oc "B %s\n" d.D.cell_names.(c)
  done

let write ~dir ~stem (d : D.t) =
  let sidecar = faithful d in
  let file ext = Filename.concat dir (stem ^ ext) in
  with_out (file ".nodes") (fun oc -> write_nodes oc d);
  with_out (file ".nets") (fun oc -> write_nets oc d);
  with_out (file ".pl") (fun oc -> write_pl_oc oc d);
  with_out (file ".scl") (fun oc -> write_scl oc d);
  if sidecar then with_out (file ".cells") (fun oc -> write_cells oc d);
  let aux = file ".aux" in
  with_out aux (fun oc ->
      Printf.fprintf oc "RowBasedPlacement : %s.nodes %s.nets %s.pl %s.scl%s\n" stem stem
        stem stem
        (if sidecar then " " ^ stem ^ ".cells" else "");
      Meta.emit oc d);
  aux

let write_pl path d = with_out path (fun oc -> write_pl_oc oc d)

let apply_pl (d : D.t) path =
  let tbl = Strtab.create ~size_hint:d.D.n_cells () in
  Array.iteri (fun i name -> Strtab.add tbl name i) d.D.cell_names;
  let sc = Scan.open_file ~specials path in
  read_pl_generic sc
    ~lookup:(fun sc -> Scan.tok_lookup sc tbl)
    ~dims:(fun c -> (d.D.w.{c}, d.D.h.{c}))
    ~setpos:(fun c x y ->
      d.D.x.{c} <- x;
      d.D.y.{c} <- y)
    ~fix:(fun c -> Bytes.set d.D.movable c '\000')
