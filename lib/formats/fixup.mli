(** Round-trip-exact coordinate emission.

    The design database stores cell centres; Bookshelf [.pl] and DEF
    store lower-left corners. A writer that naively emits [x -. w/2]
    loses up to half an ulp twice (once on subtraction, once when the
    reader adds the half-width back), so coordinates drift by an ulp per
    round trip. These helpers instead search the few floats around the
    naive value for one whose rounded inverse lands exactly on the
    original, making write -> parse the identity whenever such a float
    exists (it does for every value produced by the flow). Printing uses
    ["%.17g"] everywhere, which round-trips decimal <-> binary exactly. *)

(** [ll ~half x] is a corner value [e] with [e +. half = x] when one
    exists within a few ulps of [x -. half] (else the nearest miss). *)
val ll : half:float -> float -> float

(** [add_to ~delta x]: an [e] with [e +. delta = x]; [ll] generalized to
    arbitrary offsets (used for pin-offset emission). *)
val add_to : delta:float -> float -> float

(** [hi ~lo w]: an [e] with [e -. lo = w] — the upper edge of a span
    whose parsed width must equal [w] exactly. *)
val hi : lo:float -> float -> float

(** Shortest decimal form that parses back to exactly [v] (["%.17g"]). *)
val print : float -> string
