(** Line-oriented streaming tokenizer shared by every format reader.

    Single pass, allocation-lean: input is pulled through a fixed chunk
    buffer, the current line lives in one reusable byte buffer, and
    tokens are (start, length) spans into it — nothing is materialized
    unless the caller asks ({!tok}). Numeric tokens are parsed through a
    per-length scratch pool, so a parse allocates only the boxed float
    result. Errors raise {!Netlist.Io.Parse_error} carrying the current
    line number and a message prefixed with the scanner's [name].

    Limits (all reported as parse errors, never crashes): tokens are
    capped at {!max_token_len} bytes, lines at {!max_line_len}. CRLF
    endings are stripped; a stray ['\r'] inside a line stays part of its
    token (and typically surfaces as a malformed-number error). *)

type t

val max_token_len : int

val max_line_len : int

(** [specials] lists single characters that always form their own token
    (e.g. ["();"] for DEF, [":"] for Bookshelf). *)
val of_channel : ?specials:string -> name:string -> in_channel -> t

val of_string : ?specials:string -> name:string -> string -> t

(** Raises [Parse_error (0, _)] when the file cannot be opened. [name]
    defaults to the basename. *)
val open_file : ?specials:string -> ?name:string -> string -> t

(** Closes the underlying channel ([open_file] scanners only). *)
val close : t -> unit

val name : t -> string

(** 1-based number of the current line (0 before the first [next_line]). *)
val line_number : t -> int

(** Raise [Parse_error] at the current line. *)
val fail : t -> ('a, unit, string, 'b) format4 -> 'a

(** Raise [Parse_error] at an earlier recorded line (e.g. the NetDegree
    header of a net whose record turned out inconsistent). *)
val fail_at : t -> line:int -> ('a, unit, string, 'b) format4 -> 'a

(** Advance to the next line; [false] at end of input. Resets the token
    cursor. *)
val next_line : t -> bool

(** Advance to the next token on the current line. [false] at end of
    line or at a ['#'] comment marker (which is not consumed — see
    {!at_hash}/{!skip_hash}). *)
val next_tok : t -> bool

(** Next token, moving across line boundaries; [false] only at end of
    input. Comment markers skip the remainder of their line. *)
val next_tok_ml : t -> bool

(** The scan stopped at an unconsumed ['#']. *)
val at_hash : t -> bool

(** Step over a pending ['#'] so the rest of the comment line can be
    tokenized (format metadata rides in ["# etdp ..."] comments). *)
val skip_hash : t -> unit

(** Materialize the current token (fresh string). *)
val tok : t -> string

val tok_len : t -> int

(** Compare without allocating. *)
val tok_is : t -> string -> bool

(** ASCII-case-insensitive {!tok_is}. *)
val tok_is_ci : t -> string -> bool

val tok_starts_with : t -> char -> bool

(** Resolve the current token in a {!Strtab} without materializing it. *)
val tok_lookup : t -> Strtab.t -> int option

(** Parse the current token; [Parse_error] on malformed input. *)
val tok_float : t -> float

val tok_int : t -> int

(** [next_tok] or fail with ["expected <what>"]. *)
val expect : t -> what:string -> unit

(** [expect] + {!tok_float}. *)
val expect_float : t -> what:string -> float

(** [expect] + {!tok_int}. *)
val expect_int : t -> what:string -> int

(** [expect] + fail unless the token equals [lit] (case-insensitive). *)
val expect_lit : t -> string -> unit
