(** Request accounting (see the interface). *)

type t = {
  cap : int;
  lat : float array; (* ring of recent latencies, seconds *)
  stamp : float array; (* completion wall-clock stamps, same ring *)
  mutable head : int; (* next write position *)
  mutable filled : int;
  mutable completed : int;
  mutable failed : int;
  ops : (string, int) Hashtbl.t;
  scratch : float array; (* quantile sort buffer, reused *)
}

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Jobs.create: capacity must be positive";
  {
    cap = capacity;
    lat = Array.make capacity 0.0;
    stamp = Array.make capacity 0.0;
    head = 0;
    filled = 0;
    completed = 0;
    failed = 0;
    ops = Hashtbl.create 16;
    scratch = Array.make capacity 0.0;
  }

let capacity t = t.cap

let record t ~op ~dt ~ok =
  t.lat.(t.head) <- dt;
  t.stamp.(t.head) <- Unix.gettimeofday ();
  t.head <- (t.head + 1) mod t.cap;
  if t.filled < t.cap then t.filled <- t.filled + 1;
  t.completed <- t.completed + 1;
  if not ok then t.failed <- t.failed + 1;
  Hashtbl.replace t.ops op (1 + Option.value ~default:0 (Hashtbl.find_opt t.ops op))

let run t ~op f =
  let t0 = Unix.gettimeofday () in
  match f () with
  | v ->
      record t ~op ~dt:(Unix.gettimeofday () -. t0) ~ok:true;
      v
  | exception e ->
      record t ~op ~dt:(Unix.gettimeofday () -. t0) ~ok:false;
      raise e

let completed t = t.completed

let failed t = t.failed

let latency_quantile t q =
  if t.filled = 0 then None
  else begin
    Array.blit t.lat 0 t.scratch 0 t.filled;
    let win = Array.sub t.scratch 0 t.filled in
    Array.sort compare win;
    (* Nearest-rank: the smallest latency with at least q of the window
       at or below it. *)
    let rank = int_of_float (Float.ceil (q *. float_of_int t.filled)) in
    Some win.(max 0 (min (t.filled - 1) (rank - 1)))
  end

let throughput t =
  if t.filled < 2 then None
  else begin
    (* Oldest and newest completion stamps in the ring. *)
    let newest = t.stamp.((t.head - 1 + t.cap) mod t.cap) in
    let oldest = t.stamp.((t.head - t.filled + t.cap) mod t.cap) in
    let span = newest -. oldest in
    if span <= 0.0 then None else Some (float_of_int (t.filled - 1) /. span)
  end

let stats_json t =
  let q v = match latency_quantile t v with Some s -> Obs.Json.Float s | None -> Obs.Json.Null in
  let ops =
    Hashtbl.fold (fun op n acc -> (op, Obs.Json.Int n) :: acc) t.ops []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Obs.Json.Obj
    [
      ("completed", Obs.Json.Int t.completed);
      ("failed", Obs.Json.Int t.failed);
      ("ops", Obs.Json.Obj ops);
      ( "latency",
        Obs.Json.Obj [ ("p50", q 0.5); ("p95", q 0.95); ("p99", q 0.99); ("max", q 1.0) ] );
      ( "jobs_per_s",
        match throughput t with Some r -> Obs.Json.Float r | None -> Obs.Json.Null );
    ]
