(** Request engine (see the interface). *)

type t = {
  state : State.t;
  jobs : Jobs.t;
  obs : Obs.Ctx.t;
  heartbeat : Obs.Heartbeat.t option;
  mutable shutdown : bool;
}

let create ?(obs = Obs.Ctx.null) ?heartbeat () =
  { state = State.create (); jobs = Jobs.create (); obs; heartbeat; shutdown = false }

let state t = t.state

let jobs t = t.jobs

let shutdown_requested t = t.shutdown

(* ---- op helpers ---- *)

let method_of_string flow =
  match flow with
  | "vanilla" -> Tdp.Flow.Vanilla
  | "dp4" -> Tdp.Flow.Dp4
  | "diff" -> Tdp.Flow.Diff_tdp
  | "dist" -> Tdp.Flow.Dist_tdp
  | "efficient" -> Tdp.Flow.Efficient Tdp.Config.default
  | "noextract" -> Tdp.Flow.Dp4_in_ours
  | s ->
      Util.Errors.config_error ~what:"flow"
        ("unknown flow " ^ s ^ " (known: vanilla dp4 diff dist efficient noextract)")

let required_string req key =
  match Protocol.param_string req key with
  | Some s when s <> "" -> s
  | _ ->
      Util.Errors.config_error ~what:("params." ^ key)
        (Printf.sprintf "op %S needs a non-empty string %S param" req.Protocol.op key)

let find_entry t req =
  let name = required_string req "design" in
  match State.find t.state name with
  | Ok entry -> entry
  | Error msg -> Util.Errors.config_error ~what:"params.design" msg

let design_summary name (d : Netlist.Design.t) =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String name);
      ("design", Obs.Json.String d.Netlist.Design.name);
      ("cells", Obs.Json.Int (Netlist.Design.num_cells d));
      ("nets", Obs.Json.Int (Netlist.Design.num_nets d));
      ("pins", Obs.Json.Int (Netlist.Design.num_pins d));
      ("clock_period", Obs.Json.Float d.Netlist.Design.clock_period);
    ]

let op_load t req =
  let design =
    match (Protocol.param_string req "path", Protocol.param_string req "suite") with
    | Some path, None ->
        let lef = Protocol.param_string req "lef" in
        let clock = Protocol.param_float req "clock" in
        let wire_rc =
          match Protocol.param_string req "wire_rc" with
          | None -> None
          | Some s -> (
              match Rctree.Wire_rc.parse s with
              | Ok rc -> Some rc
              | Error msg -> Util.Errors.config_error ~what:"params.wire_rc" msg)
        in
        (* Same failure taxonomy as bin/place: malformed bytes are a
           parse_error reply, not an invalid_design. *)
        (try Formats.Auto.load ?lef ?wire_rc ?clock path
         with Netlist.Io.Parse_error (line, msg) ->
           Util.Errors.parse_failed ~file:path ~line msg)
    | None, Some short ->
        let scale = Protocol.param_float req "scale" in
        Workloads.Suite.load ?scale short
    | _ ->
        Util.Errors.config_error ~what:"params"
          "load needs exactly one of \"path\" or \"suite\""
  in
  let name =
    match Protocol.param_string req "name" with
    | Some n when n <> "" -> n
    | _ -> design.Netlist.Design.name
  in
  ignore (State.add t.state ~name design);
  design_summary name design

let eco_json (a : Eco.applied) =
  Obs.Json.Obj
    [
      ("moved", Obs.Json.Int (List.length a.Eco.moved));
      ( "clock",
        match a.Eco.clock with Some p -> Obs.Json.Float p | None -> Obs.Json.Null );
      ("rc_changed", Obs.Json.Bool a.Eco.rc_changed);
      ("reweighted", Obs.Json.Int a.Eco.reweighted);
    ]

let run_flow t req ~warm (entry : State.entry) =
  let meth =
    method_of_string (Option.value ~default:"efficient" (Protocol.param_string req "flow"))
  in
  (* Default matches Tdp.Flow.run's, so a daemon job with no explicit
     seed places identically to the one-shot binaries. *)
  let seed = Option.value ~default:1 (Protocol.param_int req "seed") in
  let legalize = Option.value ~default:true (Protocol.param_bool req "legalize") in
  let result =
    Tdp.Flow.run ~seed ~warm ~legalize ~obs:t.obs ?heartbeat:t.heartbeat meth entry.State.design
  in
  entry.State.placed <- true;
  entry.State.last_result <- Some result;
  entry.State.generation <- entry.State.generation + 1;
  (* The flow moved everything: a warm timer's arc delays are all stale. *)
  (match entry.State.timer with Some tm -> Sta.Timer.invalidate tm | None -> ());
  result

let op_place t req =
  let entry = find_entry t req in
  Tdp.Flow.result_to_json (run_flow t req ~warm:false entry)

let op_replace t req =
  let entry = find_entry t req in
  if not entry.State.placed then
    Util.Errors.config_error ~what:"replace"
      (Printf.sprintf "design %S has no placement yet; run place first"
         (required_string req "design"));
  let delta =
    match Protocol.param req "delta" with
    | Some j -> (
        match Eco.of_json j with
        | Ok ops -> ops
        | Error msg -> Util.Errors.config_error ~what:"params.delta" msg)
    | None -> (
        (* Convenience for drills and benches: a synthesized random delta. *)
        match Protocol.param_float req "random_frac" with
        | Some frac ->
            let seed = Option.value ~default:7 (Protocol.param_int req "random_seed") in
            Eco.random ~seed ~frac entry.State.design
        | None ->
            Util.Errors.config_error ~what:"params"
              "replace needs a \"delta\" op list or a \"random_frac\" number")
  in
  let applied = Eco.apply entry.State.design delta in
  State.note_eco entry applied;
  let result = run_flow t req ~warm:true entry in
  Obs.Json.Obj [ ("eco", eco_json applied); ("result", Tdp.Flow.result_to_json result) ]

let path_json (d : Netlist.Design.t) (p : Sta.Paths.path) =
  Obs.Json.Obj
    [
      ("endpoint", Obs.Json.String (Netlist.Design.pin_name d p.Sta.Paths.endpoint));
      ("slack", Obs.Json.Float p.Sta.Paths.slack);
      ("arrival", Obs.Json.Float p.Sta.Paths.arrival);
      ( "pins",
        Obs.Json.List
          (Array.to_list p.Sta.Paths.pins
          |> List.map (fun pin -> Obs.Json.String (Netlist.Design.pin_name d pin))) );
    ]

let op_report_timing t req =
  let entry = find_entry t req in
  let n = Option.value ~default:10 (Protocol.param_int req "n") in
  let k = Option.value ~default:1 (Protocol.param_int req "k") in
  let failing_only = Option.value ~default:false (Protocol.param_bool req "failing_only") in
  if n <= 0 || k <= 0 then
    Util.Errors.config_error ~what:"params" "report_timing needs n > 0 and k > 0";
  let timer = State.timer ~obs:t.obs entry in
  let paths = Sta.Timer.report_timing_endpoint ~failing_only timer ~n ~k in
  Obs.Json.Obj
    [
      ("wns", Obs.Json.Float (Sta.Timer.wns timer));
      ("tns", Obs.Json.Float (Sta.Timer.tns timer));
      ("num_failing", Obs.Json.Int (Sta.Timer.num_failing_endpoints timer));
      ("paths", Obs.Json.List (List.map (path_json entry.State.design) paths));
    ]

let op_stats t =
  let designs =
    List.map
      (fun name ->
        match State.find t.state name with
        | Error _ -> (name, Obs.Json.Null)
        | Ok entry ->
            ( name,
              Obs.Json.Obj
                [
                  ("placed", Obs.Json.Bool entry.State.placed);
                  ("generation", Obs.Json.Int entry.State.generation);
                  ("warm_timer", Obs.Json.Bool (entry.State.timer <> None));
                ] ))
      (State.names t.state)
  in
  Obs.Json.Obj [ ("jobs", Jobs.stats_json t.jobs); ("designs", Obs.Json.Obj designs) ]

let op_unload t req =
  let name = required_string req "name" in
  Obs.Json.Obj [ ("unloaded", Obs.Json.Bool (State.unload t.state name)) ]

let dispatch t (req : Protocol.request) =
  match req.Protocol.op with
  | "ping" -> Obs.Json.Obj [ ("pong", Obs.Json.Bool true) ]
  | "load" -> op_load t req
  | "place" -> op_place t req
  | "replace" -> op_replace t req
  | "report_timing" -> op_report_timing t req
  | "stats" -> op_stats t
  | "unload" -> op_unload t req
  | "shutdown" ->
      t.shutdown <- true;
      Obs.Json.Obj [ ("stopping", Obs.Json.Bool true) ]
  | op ->
      Util.Errors.config_error ~what:"op"
        ("unknown op " ^ op
       ^ " (known: ping load place replace report_timing stats unload shutdown)")

let handle t (req : Protocol.request) =
  (* Each request gets a fresh heartbeat epoch and its own span; no
     failure below may escape — the daemon outlives every job. *)
  (match t.heartbeat with Some hb -> Obs.Heartbeat.reset hb | None -> ());
  match
    Obs.Ctx.span t.obs
      ~attrs:[ ("op", Obs.Json.String req.Protocol.op); ("id", Obs.Json.String req.Protocol.id) ]
      ("svc." ^ req.Protocol.op)
      (fun () -> Jobs.run t.jobs ~op:req.Protocol.op (fun () -> dispatch t req))
  with
  | result -> Protocol.ok_reply ~id:req.Protocol.id result
  | exception Util.Errors.Error e -> Protocol.error_reply ~id:req.Protocol.id e
  | exception e ->
      Protocol.raw_error_reply ~id:req.Protocol.id ~kind:"internal"
        ~message:(Printexc.to_string e)

let handle_line t line =
  match Protocol.parse_request line with
  | Ok req -> handle t req
  | Error msg -> Protocol.raw_error_reply ~id:"" ~kind:"bad_request" ~message:msg
