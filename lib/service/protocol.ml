(** JSONL request/reply codec (see the interface). Kept free of any
    engine state so the same codec serves the stdin loop, the socket
    loop, the in-process bench driver and the tests. *)

type request = { id : string; op : string; params : Obs.Json.t }

let parse_request line =
  match Obs.Json.parse line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok json -> (
      match json with
      | Obs.Json.Obj _ -> (
          let id =
            match Obs.Json.member "id" json with
            | Some (Obs.Json.String s) -> s
            | Some (Obs.Json.Int i) -> string_of_int i
            | _ -> ""
          in
          match Obs.Json.member "op" json with
          | Some (Obs.Json.String op) when op <> "" ->
              let params =
                match Obs.Json.member "params" json with
                | Some (Obs.Json.Obj _ as p) -> p
                | _ -> Obs.Json.Obj []
              in
              Ok { id; op; params }
          | _ -> Error "request has no string \"op\" field")
      | _ -> Error "request is not a JSON object")

let param r key = Obs.Json.member key r.params

let param_string r key =
  match param r key with Some j -> Obs.Json.to_string_opt j | None -> None

let param_float r key = match param r key with Some j -> Obs.Json.to_float j | None -> None

let param_int r key = match param r key with Some j -> Obs.Json.to_int j | None -> None

let param_bool r key =
  match param r key with Some (Obs.Json.Bool b) -> Some b | _ -> None

let ok_reply ~id result =
  Obs.Json.Obj [ ("id", Obs.Json.String id); ("ok", Obs.Json.Bool true); ("result", result) ]

(* Same payload shape as the binaries' --report-json "error" object. *)
let error_to_json e =
  Obs.Json.Obj
    (("kind", Obs.Json.String (Util.Errors.kind e))
    :: ("message", Obs.Json.String (Util.Errors.message e))
    :: List.map (fun (k, v) -> (k, Obs.Json.String v)) (Util.Errors.fields e))

let error_reply ~id e =
  Obs.Json.Obj
    [ ("id", Obs.Json.String id); ("ok", Obs.Json.Bool false); ("error", error_to_json e) ]

let raw_error_reply ~id ~kind ~message =
  Obs.Json.Obj
    [
      ("id", Obs.Json.String id);
      ("ok", Obs.Json.Bool false);
      ( "error",
        Obs.Json.Obj
          [ ("kind", Obs.Json.String kind); ("message", Obs.Json.String message) ] );
    ]
