(** Request accounting for the daemon: a FIFO of one job at a time (the
    parallel domain pool rejects nested dispatch, so jobs serialise and
    each job's kernels own the pool), with per-op counters and a latency
    reservoir for the stats/bench surfaces.

    Latency quantiles are computed over the last {!val:capacity}
    completions (ring buffer): a long-lived daemon must not let the
    stats op grow O(total jobs). *)

type t

val create : ?capacity:int -> unit -> t

(** Ring capacity (default 1024). *)
val capacity : t -> int

(** Run [f] now, recording wall-clock latency and outcome under [op].
    Exceptions propagate (the engine's reply layer catches them) but are
    still recorded, as failures. *)
val run : t -> op:string -> (unit -> 'a) -> 'a

val completed : t -> int

val failed : t -> int

(** Latency quantile in seconds over the retained window, by nearest-rank
    ([q] in [0,1]); [None] before the first completion. *)
val latency_quantile : t -> float -> float option

(** Completions per second over the retained window ([None] until two
    completions). *)
val throughput : t -> float option

(** {v {"completed"; "failed"; "ops": {per-op counts};
       "latency": {"p50"; "p95"; "p99"; "max"}; "jobs_per_s"} v} *)
val stats_json : t -> Obs.Json.t
