(** The daemon's session registry and warm-state cache: one {!entry} per
    loaded design, holding everything worth keeping hot between requests
    — the design DB itself, a lazily built STA timer (timing graph + RC
    trees + propagation scratch), and the last placement result.

    Invalidation rules (enforced by {!note_eco}, documented in
    DESIGN.md §14): cell moves re-time the warm timer incrementally
    ([Sta.Timer.update_moved]); a wire-RC change only invalidates (arc
    delays are recomputed from [r_per_unit]/[c_per_unit] at the next
    update — the graph survives); a clock retarget goes through
    [Sta.Timer.set_clock] (boundary-condition refresh — the graph
    survives); net reweighting does not touch timing at all. Nothing
    short of [unload] discards the timing graph. *)

type entry = {
  design : Netlist.Design.t;
  mutable timer : Sta.Timer.t option; (* built on first timing demand *)
  mutable placed : bool; (* a placement result exists (warm-start is valid) *)
  mutable last_result : Tdp.Flow.result option;
  mutable generation : int; (* bumped by every mutating op (place/replace/eco) *)
}

type t

val create : unit -> t

(** Register a design under [name], replacing any previous entry (the
    replaced entry's warm state is dropped whole). *)
val add : t -> name:string -> Netlist.Design.t -> entry

(** [Error] names the unknown design and lists what is loaded. *)
val find : t -> string -> (entry, string) result

val unload : t -> string -> bool

(** Loaded names, load order. *)
val names : t -> string list

(** The entry's warm timer, built (and fully timed) on first demand. *)
val timer : ?obs:Obs.Ctx.t -> entry -> Sta.Timer.t

(** Apply the warm-cache invalidation rules for an applied ECO delta:
    moves -> incremental re-time, RC -> invalidate, clock ->
    [Sta.Timer.set_clock] refresh. A cold entry (no timer yet) stays
    cold — building one just to invalidate it would be wasted work. *)
val note_eco : entry -> Eco.applied -> unit
