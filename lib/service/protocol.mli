(** The daemon's wire protocol: one JSON object per line (JSONL), both
    directions. Requests carry an opaque client [id] echoed back in the
    reply, an [op] name and an optional [params] object:

    {v
      {"id":"1","op":"load","params":{"design":"sb1","scale":0.15}}
      {"id":"2","op":"place","params":{"design":"sb1","flow":"efficient"}}
    v}

    Replies are ["ok": true] with a [result] payload, or ["ok": false]
    with an [error] object in exactly the shape of [place --report-json]
    (kind / message / per-kind fields), so one client-side decoder
    serves both the daemon and the one-shot CLI. *)

type request = { id : string; op : string; params : Obs.Json.t }

(** Parse one request line. [Error] describes the syntax problem — the
    caller turns it into an [error_reply] rather than dying, so a
    malformed line can never take the daemon down. Requests missing
    ["id"] parse with [id = ""] (the reply is still well formed). *)
val parse_request : string -> (request, string) result

(** Parameter accessors: [None] when absent or of the wrong type. *)
val param_string : request -> string -> string option

val param_float : request -> string -> float option

val param_int : request -> string -> int option

val param_bool : request -> string -> bool option

val param : request -> string -> Obs.Json.t option

(** [{"id"; "ok": true; "result"}] *)
val ok_reply : id:string -> Obs.Json.t -> Obs.Json.t

(** [{"id"; "ok": false; "error": {kind; message; ...fields}}] *)
val error_reply : id:string -> Util.Errors.t -> Obs.Json.t

(** An error reply for failures outside the typed taxonomy (protocol
    syntax, unknown op, unexpected exception): kind is the caller's tag
    (e.g. ["bad_request"], ["internal"]). *)
val raw_error_reply : id:string -> kind:string -> message:string -> Obs.Json.t

(** Typed error payload alone (the ["error"] field value) — shared with
    the binaries' report writers. *)
val error_to_json : Util.Errors.t -> Obs.Json.t
