(** ECO deltas (see the interface). Validation runs in full before any
    mutation: a rejected delta must leave the design exactly as it was,
    or the daemon's warm state would drift from what the client thinks
    is loaded. *)

open Netlist

type op =
  | Move of { cell : int; x : float; y : float }
  | Move_by of { cell : int; dx : float; dy : float }
  | Set_clock of float
  | Set_wire_rc of { r : float; c : float }
  | Reweight of { net : int; weight : float }

type t = op list

type applied = {
  moved : int list;
  clock : float option;
  rc_changed : bool;
  reweighted : int;
}

(* ---- JSON codec ---- *)

let op_of_json j =
  let fl key = match Obs.Json.member key j with Some v -> Obs.Json.to_float v | None -> None in
  let it key = match Obs.Json.member key j with Some v -> Obs.Json.to_int v | None -> None in
  match Obs.Json.member "op" j with
  | Some (Obs.Json.String "move") -> (
      match (it "cell", fl "x", fl "y") with
      | Some cell, Some x, Some y -> Ok (Move { cell; x; y })
      | _ -> Error "move needs int \"cell\" and numbers \"x\",\"y\"")
  | Some (Obs.Json.String "move_by") -> (
      match (it "cell", fl "dx", fl "dy") with
      | Some cell, Some dx, Some dy -> Ok (Move_by { cell; dx; dy })
      | _ -> Error "move_by needs int \"cell\" and numbers \"dx\",\"dy\"")
  | Some (Obs.Json.String "set_clock") -> (
      match fl "period" with
      | Some p -> Ok (Set_clock p)
      | None -> Error "set_clock needs number \"period\"")
  | Some (Obs.Json.String "set_wire_rc") -> (
      match (fl "r", fl "c") with
      | Some r, Some c -> Ok (Set_wire_rc { r; c })
      | _ -> Error "set_wire_rc needs numbers \"r\",\"c\"")
  | Some (Obs.Json.String "reweight") -> (
      match (it "net", fl "weight") with
      | Some net, Some weight -> Ok (Reweight { net; weight })
      | _ -> Error "reweight needs int \"net\" and number \"weight\"")
  | Some (Obs.Json.String s) -> Error ("unknown ECO op " ^ s)
  | _ -> Error "ECO op object needs a string \"op\" field"

let of_json = function
  | Obs.Json.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> ( match op_of_json j with Ok op -> go (op :: acc) rest | Error e -> Error e)
      in
      go [] items
  | _ -> Error "ECO delta must be a JSON list of op objects"

let op_to_json = function
  | Move { cell; x; y } ->
      Obs.Json.Obj
        [
          ("op", Obs.Json.String "move");
          ("cell", Obs.Json.Int cell);
          ("x", Obs.Json.Float x);
          ("y", Obs.Json.Float y);
        ]
  | Move_by { cell; dx; dy } ->
      Obs.Json.Obj
        [
          ("op", Obs.Json.String "move_by");
          ("cell", Obs.Json.Int cell);
          ("dx", Obs.Json.Float dx);
          ("dy", Obs.Json.Float dy);
        ]
  | Set_clock p -> Obs.Json.Obj [ ("op", Obs.Json.String "set_clock"); ("period", Obs.Json.Float p) ]
  | Set_wire_rc { r; c } ->
      Obs.Json.Obj
        [ ("op", Obs.Json.String "set_wire_rc"); ("r", Obs.Json.Float r); ("c", Obs.Json.Float c) ]
  | Reweight { net; weight } ->
      Obs.Json.Obj
        [
          ("op", Obs.Json.String "reweight");
          ("net", Obs.Json.Int net);
          ("weight", Obs.Json.Float weight);
        ]

let to_json ops = Obs.Json.List (List.map op_to_json ops)

(* ---- application ---- *)

let validate_op (d : Design.t) = function
  | Move { cell; x; y } ->
      if cell < 0 || cell >= Design.num_cells d then Some (Printf.sprintf "move: no cell %d" cell)
      else if not (Design.is_movable d cell) then
        Some (Printf.sprintf "move: cell %d is fixed" cell)
      else if not (Float.is_finite x && Float.is_finite y) then
        Some (Printf.sprintf "move: non-finite target for cell %d" cell)
      else None
  | Move_by { cell; dx; dy } ->
      if cell < 0 || cell >= Design.num_cells d then
        Some (Printf.sprintf "move_by: no cell %d" cell)
      else if not (Design.is_movable d cell) then
        Some (Printf.sprintf "move_by: cell %d is fixed" cell)
      else if not (Float.is_finite dx && Float.is_finite dy) then
        Some (Printf.sprintf "move_by: non-finite displacement for cell %d" cell)
      else None
  | Set_clock _ | Set_wire_rc _ -> None (* range-checked as config below *)
  | Reweight { net; weight } ->
      if net < 0 || net >= Design.num_nets d then Some (Printf.sprintf "reweight: no net %d" net)
      else if not (Float.is_finite weight && weight >= 0.0) then
        Some (Printf.sprintf "reweight: weight for net %d must be finite and >= 0" net)
      else None

let apply (d : Design.t) (ops : t) =
  (* Whole-delta validation first: partial application would desync the
     daemon's warm state from the client's view of it. *)
  let problems = List.filter_map (validate_op d) ops in
  if problems <> [] then Util.Errors.invalid_design ~design:d.Design.name problems;
  List.iter
    (function
      | Set_clock p when not (Float.is_finite p && p > 0.0) ->
          Util.Errors.config_error ~what:"eco.set_clock"
            (Printf.sprintf "period must be finite and positive, got %g" p)
      | Set_wire_rc { r; c } when not (Float.is_finite r && r >= 0.0 && Float.is_finite c && c >= 0.0)
        ->
          Util.Errors.config_error ~what:"eco.set_wire_rc" "r and c must be finite and >= 0"
      | _ -> ())
    ops;
  let moved = Hashtbl.create 16 in
  let clock = ref None in
  let rc_changed = ref false in
  let reweighted = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Move { cell; x; y } ->
          d.Design.x.{cell} <- x;
          d.Design.y.{cell} <- y;
          Hashtbl.replace moved cell ()
      | Move_by { cell; dx; dy } ->
          d.Design.x.{cell} <- d.Design.x.{cell} +. dx;
          d.Design.y.{cell} <- d.Design.y.{cell} +. dy;
          Hashtbl.replace moved cell ()
      | Set_clock p ->
          d.Design.clock_period <- p;
          clock := Some p
      | Set_wire_rc { r; c } ->
          d.Design.r_per_unit <- r;
          d.Design.c_per_unit <- c;
          rc_changed := true
      | Reweight { net; weight } ->
          d.Design.net_weight.{net} <- weight;
          incr reweighted)
    ops;
  if Hashtbl.length moved > 0 then Design.clamp_movable d;
  {
    moved = Hashtbl.fold (fun cell () acc -> cell :: acc) moved [];
    clock = !clock;
    rc_changed = !rc_changed;
    reweighted = !reweighted;
  }

let random ?(seed = 7) ?(max_disp_frac = 0.02) ~frac (d : Design.t) =
  let rng = Util.Rng.create seed in
  let movable = Array.of_list (Design.movable_ids d) in
  let nm = Array.length movable in
  if nm = 0 then []
  else begin
    let count = max 1 (int_of_float (frac *. float_of_int nm)) in
    let die = d.Design.die in
    let sx = max_disp_frac *. (die.Geom.Rect.xh -. die.Geom.Rect.xl) in
    let sy = max_disp_frac *. (die.Geom.Rect.yh -. die.Geom.Rect.yl) in
    List.init count (fun _ ->
        let cell = movable.(Util.Rng.int rng nm) in
        Move_by
          {
            cell;
            dx = Util.Rng.float_range rng (-.sx) sx;
            dy = Util.Rng.float_range rng (-.sy) sy;
          })
  end
