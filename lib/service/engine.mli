(** The daemon's request engine: one dispatcher shared by the stdin-JSONL
    loop, the Unix-socket loop, the in-process bench driver and the
    tests.

    The contract that makes [placed] a daemon rather than a batch tool:
    {!handle} NEVER raises. Typed pipeline failures ([Util.Errors.Error])
    come back as structured error replies carrying the same kind/fields
    payload as the binaries' [--report-json] error object; foreign-file
    parse failures reply with kind ["parse_error"]; anything else is
    wrapped as kind ["internal"]. A failed job leaves the registry
    consistent (ECO deltas validate before they mutate) and the next
    request proceeds.

    Per request the engine opens an [svc.<op>] span on its context and
    resets the heartbeat, so a job never inherits the previous job's tick
    origin or trend baseline.

    Ops: [ping], [load] (path via [Formats.Auto] or suite generator),
    [place], [replace] (ECO delta + warm-start re-placement + incremental
    re-time), [report_timing], [stats], [unload], [shutdown]. *)

type t

val create : ?obs:Obs.Ctx.t -> ?heartbeat:Obs.Heartbeat.t -> unit -> t

val state : t -> State.t

val jobs : t -> Jobs.t

(** Set once a [shutdown] request is handled; the serving loops drain and
    exit when they see it. *)
val shutdown_requested : t -> bool

(** Dispatch one request to a reply (never raises). *)
val handle : t -> Protocol.request -> Obs.Json.t

(** Parse one JSONL line and dispatch; malformed lines get a
    kind ["bad_request"] error reply (never raises). *)
val handle_line : t -> string -> Obs.Json.t
