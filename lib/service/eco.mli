(** ECO (engineering change order) deltas — the small edits a client
    applies to a loaded design between placements. The vocabulary is the
    incremental slice of the OpenROAD-style job set: reposition cells,
    retarget the clock, retune wire parasitics, reweight nets.

    A delta is data, not closures, so it travels as JSON over the
    protocol and the warm-cache invalidation rules can be decided by
    inspection (see {!applied} and [State.note_eco]). *)

type op =
  | Move of { cell : int; x : float; y : float } (* absolute centre *)
  | Move_by of { cell : int; dx : float; dy : float }
  | Set_clock of float (* ps *)
  | Set_wire_rc of { r : float; c : float } (* kOhm, fF per site *)
  | Reweight of { net : int; weight : float }

type t = op list

(** What a delta actually touched — the invalidation summary the warm
    cache dispatches on: moves re-time incrementally, wire-RC changes
    invalidate delays, clock changes refresh boundary conditions. *)
type applied = {
  moved : int list; (* distinct cell ids repositioned *)
  clock : float option; (* new period, when retargeted *)
  rc_changed : bool;
  reweighted : int; (* nets reweighted *)
}

(** Parse a delta from a JSON list of op objects:
    {v
      [{"op":"move","cell":12,"x":100.5,"y":80.0},
       {"op":"move_by","cell":13,"dx":-4.0,"dy":0.0},
       {"op":"set_clock","period":900.0},
       {"op":"set_wire_rc","r":0.06,"c":0.5},
       {"op":"reweight","net":3,"weight":2.0}]
    v} *)
val of_json : Obs.Json.t -> (t, string) result

val to_json : t -> Obs.Json.t

(** Apply to the design in place. Raises
    [Util.Errors.Error (Invalid_design _)] on an out-of-range cell/net
    id or a non-finite value, [Config_error] on a non-positive clock or
    negative RC — before mutating anything, so a rejected delta leaves
    the design untouched. Movable-cell moves are clamped to the die;
    fixed cells cannot be moved. *)
val apply : Netlist.Design.t -> t -> applied

(** A reproducible small random delta: [frac] of the movable cells
    (at least 1) each displaced by up to [max_disp_frac] of the die span
    (default 0.02). The bench's "≤1% ECO" workload. Deterministic in
    [seed]. *)
val random :
  ?seed:int -> ?max_disp_frac:float -> frac:float -> Netlist.Design.t -> t
