(** Session registry + warm cache (see the interface). *)

type entry = {
  design : Netlist.Design.t;
  mutable timer : Sta.Timer.t option;
  mutable placed : bool;
  mutable last_result : Tdp.Flow.result option;
  mutable generation : int;
}

type t = { tbl : (string, entry) Hashtbl.t; mutable order : string list (* load order, newest last *) }

let create () = { tbl = Hashtbl.create 8; order = [] }

let add t ~name design =
  let entry = { design; timer = None; placed = false; last_result = None; generation = 0 } in
  if not (Hashtbl.mem t.tbl name) then t.order <- t.order @ [ name ];
  Hashtbl.replace t.tbl name entry;
  entry

let names t = List.filter (Hashtbl.mem t.tbl) t.order

let find t name =
  match Hashtbl.find_opt t.tbl name with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "no design %S loaded (loaded: %s)" name
           (match names t with [] -> "none" | ns -> String.concat ", " ns))

let unload t name =
  let existed = Hashtbl.mem t.tbl name in
  Hashtbl.remove t.tbl name;
  if existed then t.order <- List.filter (fun n -> n <> name) t.order;
  existed

let timer ?(obs = Obs.Ctx.null) entry =
  match entry.timer with
  | Some tm -> tm
  | None ->
      let tm = Sta.Timer.create ~obs entry.design in
      Sta.Timer.update tm;
      entry.timer <- Some tm;
      tm

let note_eco entry (a : Eco.applied) =
  entry.generation <- entry.generation + 1;
  match entry.timer with
  | None -> () (* cold: nothing to keep consistent *)
  | Some tm ->
      (* Order matters: constraint changes first (cheap in-place
         refreshes / invalidations), the incremental re-time last so it
         settles the final state once. *)
      (match a.Eco.clock with Some p -> Sta.Timer.set_clock tm p | None -> ());
      if a.Eco.rc_changed then Sta.Timer.invalidate tm;
      if a.Eco.moved <> [] then Sta.Timer.update_moved tm ~cells:a.Eco.moved
