(** Wire-segment statistics over critical paths (paper Sec. III-C):
    uniform segment lengths avoid the buffer insertion long segments
    force downstream. *)

type t = {
  num_segments : int;
  total_length : float;
  max_length : float;
  mean_length : float;
  cv : float; (* coefficient of variation: uniformity measure *)
  buffer_candidates : int; (* segments above the buffer threshold *)
}

(** Driver->sink distances of a path's net arcs. *)
val path_segments :
  Netlist.Design.t -> Sta.Graph.t -> Sta.Paths.path -> float list

val of_segments : ?buffer_threshold:float -> float list -> t

(** Over the worst paths of the [n] worst failing endpoints. *)
val of_critical_paths : ?buffer_threshold:float -> Netlist.Design.t -> n:int -> t

val pp : Format.formatter -> t -> unit
