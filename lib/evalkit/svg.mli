(** SVG rendering of placements: die, blockages, cells coloured by worst
    pin slack, the worst failing paths overlaid as polylines. *)

(** Render the current placement to an SVG document string. [paths] worst
    failing paths are overlaid (default 3). *)
val render : ?paths:int -> Netlist.Design.t -> string

val write_file : string -> Netlist.Design.t -> unit
