(** The common scorer applied to every flow's output — the stand-in for
    the ICCAD2015 contest evaluation kit. All flows are measured with the
    same Steiner-Elmore timing model regardless of their internal timer. *)

type t = {
  hpwl : float;
  tns : float;
  wns : float;
  num_failing : int;
  num_endpoints : int;
}

(** Evaluate the design's current placement. *)
val evaluate : Netlist.Design.t -> t

val pp : Format.formatter -> t -> unit

(** |value| / |base| for non-positive metrics, 0/0 = 1, x/0 = infinity. *)
val neg_metric_ratio : value:float -> base:float -> float
