(** SVG rendering of placements: die, blockages, cells coloured by their
    worst pin slack (green = met, red = violating), and optionally the
    most critical paths drawn as polylines. The output is plain SVG 1.1,
    viewable in any browser — the repo's substitute for the paper's layout
    figures (Fig. 3). *)

open Netlist

let header ~w ~h =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 %.1f %.1f\" width=\"800\" \
     height=\"%.0f\">\n\
     <rect x=\"0\" y=\"0\" width=\"%.1f\" height=\"%.1f\" fill=\"#f8f8f4\" \
     stroke=\"#444\" stroke-width=\"0.3\"/>\n"
    w h
    (800.0 *. h /. w)
    w h

(* Slack -> colour: deep red for the worst violation, green when met. *)
let slack_color ~wns s =
  if s >= 0.0 then "#7cb87c"
  else begin
    let t = if wns < 0.0 then Float.min 1.0 (s /. wns) else 1.0 in
    let r = 180 + int_of_float (t *. 75.0) in
    let g = int_of_float ((1.0 -. t) *. 150.0) in
    Printf.sprintf "#%02x%02x40" (min 255 r) (min 255 g)
  end

(* Worst slack over a cell's pins (infinity when untimed). *)
let cell_slack (d : Design.t) slacks id =
  let acc = ref Float.infinity in
  Design.iter_cell_pins d id (fun pid -> if slacks.(pid) < !acc then acc := slacks.(pid));
  !acc

(** Render the design's current placement. [paths] (default 3) worst
    failing paths are overlaid as blue polylines. *)
let render ?(paths = 3) (d : Design.t) =
  let timer = Sta.Timer.create ~topology:Sta.Delay.Steiner_tree d in
  Sta.Timer.update timer;
  let slacks = Sta.Timer.slacks timer in
  let wns = Sta.Timer.wns timer in
  let die = d.die in
  let buf = Buffer.create 65536 in
  let h = Geom.Rect.height die and w = Geom.Rect.width die in
  (* SVG y grows downward; flip. *)
  let fy y = h -. (y -. die.yl) in
  Buffer.add_string buf (header ~w ~h);
  for id = 0 to Design.num_cells d - 1 do
    let r = Design.cell_rect d id in
    let fill =
      match Design.kind d id with
      | Design.Blockage -> "#9a9a9a"
      | Design.Input_pad | Design.Output_pad -> "#5577aa"
      | Design.Logic -> slack_color ~wns (cell_slack d slacks id)
    in
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\" \
          stroke=\"#333\" stroke-width=\"0.03\"/>\n"
         (r.xl -. die.xl) (fy r.yh) (Geom.Rect.width r) (Geom.Rect.height r) fill)
  done;
  let worst = Sta.Timer.report_timing_endpoint timer ~n:paths ~k:1 ~failing_only:true in
  List.iter
    (fun (p : Sta.Paths.path) ->
      let pts =
        Array.to_list p.pins
        |> List.map (fun pid ->
               Printf.sprintf "%.2f,%.2f" (Design.pin_x d pid -. die.xl) (fy (Design.pin_y d pid)))
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<polyline points=\"%s\" fill=\"none\" stroke=\"#2255cc\" stroke-width=\"0.15\" \
            opacity=\"0.8\"/>\n"
           (String.concat " " pts)))
    worst;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file path d =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render d))
