(** The common scorer applied to every flow's output — the stand-in for
    the ICCAD 2015 contest evaluation kit. All flows are measured with the
    same Steiner-tree Elmore timing model regardless of what their
    internal timer used, so comparisons are apples to apples. *)

type t = {
  hpwl : float;
  tns : float;
  wns : float;
  num_failing : int;
  num_endpoints : int;
}

(** Evaluate the design's current placement. *)
let evaluate (d : Netlist.Design.t) =
  let timer = Sta.Timer.create ~topology:Sta.Delay.Steiner_tree d in
  Sta.Timer.update timer;
  {
    hpwl = Netlist.Design.total_hpwl d;
    tns = Sta.Timer.tns timer;
    wns = Sta.Timer.wns timer;
    num_failing = Sta.Timer.num_failing_endpoints timer;
    num_endpoints = Array.length (Sta.Timer.graph timer).Sta.Graph.endpoints;
  }

let pp fmt m =
  Format.fprintf fmt "hpwl=%.4e tns=%.1f wns=%.1f failing=%d/%d" m.hpwl m.tns m.wns
    m.num_failing m.num_endpoints

(** Ratio of a metric against a baseline, guarding signs/zeros: for TNS
    and WNS (non-positive, lower worse) the ratio is |x| / |base| with 0/0
    treated as 1. *)
let neg_metric_ratio ~value ~base =
  let av = Float.abs value and ab = Float.abs base in
  if ab < 1e-9 then if av < 1e-9 then 1.0 else Float.infinity else av /. ab
