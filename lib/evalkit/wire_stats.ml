(** Wire-segment statistics over critical paths — the paper's Sec. III-C
    observation quantified: losses that leave "excessively long wire
    segments" force downstream buffer insertion (area/power/thermal cost),
    so a placement with uniform segment lengths is preferable even at
    equal slack. [buffer_threshold] approximates the length above which a
    segment would need a repeater. *)

open Netlist

type t = {
  num_segments : int;
  total_length : float;
  max_length : float;
  mean_length : float;
  cv : float; (* coefficient of variation: uniformity measure *)
  buffer_candidates : int; (* segments longer than the threshold *)
}

(* Driver->sink distances of the net arcs on a path. *)
let path_segments (d : Design.t) (graph : Sta.Graph.t) (p : Sta.Paths.path) =
  Array.to_list p.arcs
  |> List.filter (fun a -> graph.Sta.Graph.arc_is_net.(a))
  |> List.map (fun a ->
         Geom.Point.manhattan
           (Design.pin_pos d graph.Sta.Graph.arc_from.(a))
           (Design.pin_pos d graph.Sta.Graph.arc_to.(a)))

let of_segments ?(buffer_threshold = 25.0) segs =
  let a = Array.of_list segs in
  if Array.length a = 0 then
    { num_segments = 0; total_length = 0.0; max_length = 0.0; mean_length = 0.0; cv = 0.0;
      buffer_candidates = 0 }
  else
    {
      num_segments = Array.length a;
      total_length = Util.Stats.sum a;
      max_length = Util.Stats.max_elt a;
      mean_length = Util.Stats.mean a;
      cv = Util.Stats.coeff_variation a;
      buffer_candidates = Array.fold_left (fun n l -> if l > buffer_threshold then n + 1 else n) 0 a;
    }

(** Statistics over the worst paths of the [n] worst failing endpoints
    under the current placement. *)
let of_critical_paths ?buffer_threshold (d : Design.t) ~n =
  let timer = Sta.Timer.create ~topology:Sta.Delay.Steiner_tree d in
  Sta.Timer.update timer;
  let graph = Sta.Timer.graph timer in
  let paths = Sta.Timer.report_timing_endpoint timer ~n ~k:1 ~failing_only:true in
  let segs = List.concat_map (fun p -> path_segments d graph p) paths in
  of_segments ?buffer_threshold segs

let pp fmt s =
  Format.fprintf fmt "segments=%d total=%.1f max=%.1f mean=%.1f cv=%.2f buffers>=%d"
    s.num_segments s.total_length s.max_length s.mean_length s.cv s.buffer_candidates
