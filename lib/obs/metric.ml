(** Typed metrics: monotonic counters, last-value gauges, and fixed-bucket
    histograms with quantile estimates (linear interpolation inside the
    bucket, clamped to the observed min/max at the tails). *)

type histogram = {
  bounds : float array; (* strictly increasing bucket upper bounds *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable sum : float;
  mutable n : int;
  mutable vmin : float;
  mutable vmax : float;
}

type m = Counter of float ref | Gauge of float ref | Histogram of histogram

type registry = (string, m) Hashtbl.t

let create_registry () : registry = Hashtbl.create 32

(* 1 µs .. ~8 s in doubling steps — covers span durations and most scalar
   observations; callers with different ranges pass ~bounds. *)
let default_bounds = Array.init 24 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

let histogram_create bounds =
  let nb = Array.length bounds in
  for i = 1 to nb - 1 do
    if bounds.(i) <= bounds.(i - 1) then invalid_arg "Metric: bounds must be increasing"
  done;
  {
    bounds;
    counts = Array.make (nb + 1) 0;
    sum = 0.0;
    n = 0;
    vmin = Float.infinity;
    vmax = Float.neg_infinity;
  }

let histogram_observe h v =
  let nb = Array.length h.bounds in
  let rec bucket i = if i >= nb then nb else if v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v

let mean h = if h.n = 0 then Float.nan else h.sum /. float_of_int h.n

(** Quantile estimate for [q] in [0, 1]: walk the cumulative bucket counts
    to the target rank, then interpolate linearly between the containing
    bucket's bounds (using the observed min/max for the open ends). *)
let quantile h q =
  if h.n = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int h.n in
    let nb = Array.length h.bounds in
    let rec walk i cum =
      if i > nb then h.vmax
      else begin
        let c = h.counts.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then begin
          let lo = if i = 0 then h.vmin else Float.max h.vmin h.bounds.(i - 1) in
          let hi = if i = nb then h.vmax else Float.min h.vmax h.bounds.(i) in
          let frac = Float.max 0.0 (Float.min 1.0 ((target -. cum) /. float_of_int c)) in
          lo +. (frac *. (hi -. lo))
        end
        else walk (i + 1) cum'
      end
    in
    walk 0 0.0
  end

(* ---- registry operations ---- *)

let kind_mismatch name = invalid_arg (Printf.sprintf "Metric %S registered with another kind" name)

let incr (reg : registry) ?(by = 1.0) name =
  match Hashtbl.find_opt reg name with
  | Some (Counter r) -> r := !r +. by
  | Some _ -> kind_mismatch name
  | None -> Hashtbl.add reg name (Counter (ref by))

let set_gauge (reg : registry) name v =
  match Hashtbl.find_opt reg name with
  | Some (Gauge r) -> r := v
  | Some _ -> kind_mismatch name
  | None -> Hashtbl.add reg name (Gauge (ref v))

let observe (reg : registry) ?(bounds = default_bounds) name v =
  match Hashtbl.find_opt reg name with
  | Some (Histogram h) -> histogram_observe h v
  | Some _ -> kind_mismatch name
  | None ->
      let h = histogram_create bounds in
      histogram_observe h v;
      Hashtbl.add reg name (Histogram h)

let find (reg : registry) name = Hashtbl.find_opt reg name

(** Stable (name-sorted) snapshot of the registry. *)
let snapshot (reg : registry) =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** One JSONL-ready record per metric; every record carries
    ["type"] = "metric" so trace lines stay self-describing. *)
let to_json ~name (m : m) : Json.t =
  let base = [ ("type", Json.String "metric"); ("name", Json.String name) ] in
  match m with
  | Counter r -> Json.Obj (base @ [ ("kind", Json.String "counter"); ("value", Json.Float !r) ])
  | Gauge r -> Json.Obj (base @ [ ("kind", Json.String "gauge"); ("value", Json.Float !r) ])
  | Histogram h ->
      let buckets =
        List.init
          (Array.length h.counts)
          (fun i ->
            let le =
              if i < Array.length h.bounds then Json.Float h.bounds.(i) else Json.String "inf"
            in
            Json.List [ le; Json.Int h.counts.(i) ])
      in
      Json.Obj
        (base
        @ [
            ("kind", Json.String "histogram");
            ("count", Json.Int h.n);
            ("sum", Json.Float h.sum);
            ("min", Json.Float h.vmin);
            ("max", Json.Float h.vmax);
            ("mean", Json.Float (mean h));
            ("p50", Json.Float (quantile h 0.5));
            ("p90", Json.Float (quantile h 0.9));
            ("p99", Json.Float (quantile h 0.99));
            ("buckets", Json.List buckets);
          ])
