(** Periodic structured progress records — the flight recorder's live
    feed. Producers push the latest value of each signal (timing,
    extraction stats) as they compute it; [tick] fires once per placement
    iteration and emits a record every N iterations or T seconds,
    whichever comes first. The clock is the owning context's, so tests
    with an injected clock get bit-deterministic cadence.

    This is the stable interface adaptive controllers subscribe to
    (ROADMAP "adaptive extraction control"): [on_record] callbacks see
    every record synchronously, in emission order, with trend fields
    (delta since the previous record) precomputed. *)

type extraction_stats = {
  failing : int;
  paths : int;
  pairs : int;
  sta_s : float;
  extract_s : float;
}

type record = {
  seq : int; (* 0-based emission index *)
  iter : int; (* placement iteration of the emitting tick *)
  t : float; (* seconds on the context clock *)
  overflow : float;
  hpwl : float; (* latest checkpointed HPWL; nan before the first *)
  tns : float; (* latest timing-round TNS; nan before the first *)
  wns : float;
  tns_trend : float; (* tns - previous record's tns; 0 for the first *)
  wns_trend : float;
  guard_nan : float; (* cumulative guard.nan_detected counter *)
  guard_rollbacks : float; (* cumulative guard.rollbacks counter *)
  extraction : extraction_stats option; (* latest round, once one ran *)
}

type t = {
  ctx : Ctx.t;
  every_iters : int;
  every_seconds : float; (* <= 0 disables the time trigger *)
  emit : record -> unit;
  mutable subscribers : (record -> unit) list;
  mutable seq : int;
  mutable last_emit_iter : int;
  mutable last_emit_t : float;
  mutable prev_tns : float;
  mutable prev_wns : float;
  (* latest values pushed by producers *)
  mutable hpwl : float;
  mutable tns : float;
  mutable wns : float;
  mutable extraction : extraction_stats option;
}

let create ?(every_iters = 25) ?(every_seconds = 0.0) ?(emit = ignore) ctx =
  if every_iters <= 0 then invalid_arg "Heartbeat.create: every_iters must be positive";
  {
    ctx;
    every_iters;
    every_seconds;
    emit;
    subscribers = [];
    seq = 0;
    last_emit_iter = min_int;
    last_emit_t = Float.neg_infinity;
    prev_tns = Float.nan;
    prev_wns = Float.nan;
    hpwl = Float.nan;
    tns = Float.nan;
    wns = Float.nan;
    extraction = None;
  }

(** Subscribe to every future record (called synchronously at emission,
    registration order). *)
let on_record hb f = hb.subscribers <- hb.subscribers @ [ f ]

(** Return the heartbeat to its just-created state — cadence origin,
    sequence counter, trend window and producer latches all cleared,
    configuration and subscribers kept. A long-lived process (the
    placement daemon) calls this between requests; without it the second
    job inherits the first job's tick origin (so its first record waits a
    full period) and trend baseline (so its first tns/wns trend compares
    against the *previous job's* timing). *)
let reset hb =
  hb.seq <- 0;
  hb.last_emit_iter <- min_int;
  hb.last_emit_t <- Float.neg_infinity;
  hb.prev_tns <- Float.nan;
  hb.prev_wns <- Float.nan;
  hb.hpwl <- Float.nan;
  hb.tns <- Float.nan;
  hb.wns <- Float.nan;
  hb.extraction <- None

(* ---- producers ---- *)

let note_hpwl hb hpwl = hb.hpwl <- hpwl

let note_timing hb ~tns ~wns =
  hb.tns <- tns;
  hb.wns <- wns

let note_extraction hb ~failing ~paths ~pairs ~sta_s ~extract_s =
  hb.extraction <- Some { failing; paths; pairs; sta_s; extract_s }

(* ---- emission ---- *)

let counter_value ctx name =
  match Ctx.metric ctx name with Some (Metric.Counter r) -> !r | _ -> 0.0

let make_record hb ~iter ~overflow =
  let trend cur prev = if Float.is_nan prev || Float.is_nan cur then 0.0 else cur -. prev in
  {
    seq = hb.seq;
    iter;
    t = Ctx.now hb.ctx;
    overflow;
    hpwl = hb.hpwl;
    tns = hb.tns;
    wns = hb.wns;
    tns_trend = trend hb.tns hb.prev_tns;
    wns_trend = trend hb.wns hb.prev_wns;
    guard_nan = counter_value hb.ctx "guard.nan_detected";
    guard_rollbacks = counter_value hb.ctx "guard.rollbacks";
    extraction = hb.extraction;
  }

let deliver hb r =
  hb.seq <- hb.seq + 1;
  hb.last_emit_iter <- r.iter;
  hb.last_emit_t <- r.t;
  hb.prev_tns <- hb.tns;
  hb.prev_wns <- hb.wns;
  hb.emit r;
  List.iter (fun f -> f r) hb.subscribers

(** Force a record out now (flow boundaries: the final state should
    always be on the wire regardless of cadence). *)
let force hb ~iter ~overflow = deliver hb (make_record hb ~iter ~overflow)

(** One call per placement iteration; emits when the iteration or time
    trigger fires. The first tick always emits (records start at the
    beginning of the run, not one period in). *)
let tick hb ~iter ~overflow =
  (* [last_emit_iter = min_int] marks "never emitted"; subtracting it
     would wrap, so test it explicitly. *)
  let due_iters =
    hb.last_emit_iter = min_int || iter - hb.last_emit_iter >= hb.every_iters
  in
  let due_time =
    hb.every_seconds > 0.0 && Ctx.now hb.ctx -. hb.last_emit_t >= hb.every_seconds
  in
  if due_iters || due_time then force hb ~iter ~overflow

(* ---- serialisation ---- *)

let extraction_to_json (e : extraction_stats) : Json.t =
  Json.Obj
    [
      ("failing", Json.Int e.failing);
      ("paths", Json.Int e.paths);
      ("pairs", Json.Int e.pairs);
      ("sta_s", Json.Float e.sta_s);
      ("extract_s", Json.Float e.extract_s);
    ]

(** One self-describing JSONL record, ["type"] = "heartbeat". Non-finite
    floats (e.g. [hpwl] before the first checkpoint) emit as null per
    [Json] convention. *)
let to_json (r : record) : Json.t =
  Json.Obj
    [
      ("type", Json.String "heartbeat");
      ("seq", Json.Int r.seq);
      ("iter", Json.Int r.iter);
      ("t", Json.Float r.t);
      ("overflow", Json.Float r.overflow);
      ("hpwl", Json.Float r.hpwl);
      ("tns", Json.Float r.tns);
      ("wns", Json.Float r.wns);
      ("tns_trend", Json.Float r.tns_trend);
      ("wns_trend", Json.Float r.wns_trend);
      ("guard_nan", Json.Float r.guard_nan);
      ("guard_rollbacks", Json.Float r.guard_rollbacks);
      ( "extraction",
        match r.extraction with None -> Json.Null | Some e -> extraction_to_json e );
    ]

(** A [record -> unit] emitter writing JSONL to [path]; returns the
    emitter and a close function (flushes on every record so a live
    tail sees heartbeats as they happen). *)
let jsonl_emitter path =
  let oc = open_out path in
  let emit r =
    output_string oc (Json.to_string (to_json r));
    output_char oc '\n';
    flush oc
  in
  (emit, fun () -> close_out oc)
