(** Minimal JSON values: enough to emit trace/report files and to parse
    them back in [trace_report] and the tests. No external dependency —
    the toolchain image carries no yojson.

    Emission notes: non-finite floats have no JSON encoding, so they are
    emitted as [null]; object keys are written in the order given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emission ---- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    (* Shortest representation that still round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing (recursive descent) ---- *)

exception Parse_error of string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              loop ()
          | 'n' ->
              Buffer.add_char buf '\n';
              loop ()
          | 't' ->
              Buffer.add_char buf '\t';
              loop ()
          | 'r' ->
              Buffer.add_char buf '\r';
              loop ()
          | 'b' ->
              Buffer.add_char buf '\b';
              loop ()
          | 'f' ->
              Buffer.add_char buf '\012';
              loop ()
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Only BMP code points below 0x80 round-trip as single
                 bytes; encode the rest as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> fail "unknown escape")
      | c ->
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s : (t, string) result =
  match parse_exn s with v -> Ok v | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_list = function List xs -> Some xs | _ -> None
