(** Resource telemetry: GC accounting, resident-set size, and domain-pool
    utilization — the flight recorder's "how much did it cost" axis,
    complementing the spans' "where did the time go".

    Everything here is observation-only and allocation-light:
    [Gc.quick_stat] does not walk the heap, and the RSS probe is one
    short read of [/proc/self/status] (with a portable fallback to the
    GC's top-of-heap watermark on systems without procfs). *)

(* ---- RSS ---- *)

let word_bytes = Sys.word_size / 8

(* Parse "VmHWM:    123456 kB"-style lines. Returns bytes. *)
let proc_status_kb key =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let prefix = key ^ ":" in
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then begin
              (* Strip the key, keep the first integer token. *)
              let rest = String.sub line (String.length prefix)
                           (String.length line - String.length prefix) in
              let buf = Buffer.create 12 in
              String.iter (fun c -> if c >= '0' && c <= '9' then Buffer.add_char buf c) rest;
              int_of_string_opt (Buffer.contents buf)
            end
            else scan ()
      in
      let r = scan () in
      close_in ic;
      Option.map (fun kb -> kb * 1024) r

(** Peak resident set size in bytes ([VmHWM]); falls back to the GC's
    top-of-major-heap watermark where procfs is unavailable, so the
    value is always usable as a relative regression signal. *)
let peak_rss_bytes () =
  match proc_status_kb "VmHWM" with
  | Some b -> b
  | None -> (Gc.quick_stat ()).Gc.top_heap_words * word_bytes

(** Current resident set size in bytes ([VmRSS]), same fallback. *)
let rss_bytes () =
  match proc_status_kb "VmRSS" with
  | Some b -> b
  | None -> (Gc.quick_stat ()).Gc.heap_words * word_bytes

(* ---- GC samples and deltas ---- *)

type sample = {
  time : float; (* Unix.gettimeofday at sampling *)
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  peak_rss : int; (* bytes *)
}

let sample () =
  let s = Gc.quick_stat () in
  {
    time = Unix.gettimeofday ();
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    peak_rss = peak_rss_bytes ();
  }

type delta = {
  elapsed_s : float;
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_collections : int;
  d_major_collections : int;
  d_compactions : int;
  peak_rss_bytes : int; (* absolute peak observed at the [after] sample *)
}

(** Interval accounting between two samples. GC word counters are
    monotonic per domain, so the deltas are exact for single-domain
    phases and a caller-domain lower bound under the pool. [peak_rss] is
    the absolute high-water mark, not a delta — peaks do not subtract. *)
let delta ~(before : sample) ~(after : sample) =
  {
    elapsed_s = after.time -. before.time;
    d_minor_words = after.minor_words -. before.minor_words;
    d_promoted_words = after.promoted_words -. before.promoted_words;
    d_major_words = after.major_words -. before.major_words;
    d_minor_collections = after.minor_collections - before.minor_collections;
    d_major_collections = after.major_collections - before.major_collections;
    d_compactions = after.compactions - before.compactions;
    peak_rss_bytes = after.peak_rss;
  }

let delta_to_json (d : delta) : Json.t =
  Json.Obj
    [
      ("elapsed_s", Json.Float d.elapsed_s);
      ("minor_words", Json.Float d.d_minor_words);
      ("promoted_words", Json.Float d.d_promoted_words);
      ("major_words", Json.Float d.d_major_words);
      ("minor_collections", Json.Int d.d_minor_collections);
      ("major_collections", Json.Int d.d_major_collections);
      ("compactions", Json.Int d.d_compactions);
      ("peak_rss_bytes", Json.Int d.peak_rss_bytes);
    ]

(** Parse a record previously written by [delta_to_json] (bench_diff and
    tests read resource columns back). *)
let delta_of_json j =
  let f k = Option.bind (Json.member k j) Json.to_float in
  let i k = Option.bind (Json.member k j) Json.to_int in
  match (f "elapsed_s", i "peak_rss_bytes") with
  | Some elapsed_s, Some peak_rss_bytes ->
      let f0 k = Option.value ~default:0.0 (f k) in
      let i0 k = Option.value ~default:0 (i k) in
      Some
        {
          elapsed_s;
          d_minor_words = f0 "minor_words";
          d_promoted_words = f0 "promoted_words";
          d_major_words = f0 "major_words";
          d_minor_collections = i0 "minor_collections";
          d_major_collections = i0 "major_collections";
          d_compactions = i0 "compactions";
          peak_rss_bytes;
        }
  | _ -> None

(* ---- context gauges ---- *)

(** Publish the current resource state as gauges on [ctx]: RSS peak and
    current, GC heap words and cumulative allocation/collection totals.
    Call at any cadence; gauges keep the last value. *)
let update_gauges ctx =
  if Ctx.enabled ctx then begin
    let s = sample () in
    Ctx.gauge ctx "res.peak_rss_bytes" (float_of_int s.peak_rss);
    Ctx.gauge ctx "res.rss_bytes" (float_of_int (rss_bytes ()));
    Ctx.gauge ctx "res.gc.heap_words" (float_of_int s.heap_words);
    Ctx.gauge ctx "res.gc.minor_words" s.minor_words;
    Ctx.gauge ctx "res.gc.major_words" s.major_words;
    Ctx.gauge ctx "res.gc.minor_collections" (float_of_int s.minor_collections);
    Ctx.gauge ctx "res.gc.major_collections" (float_of_int s.major_collections);
    Ctx.gauge ctx "res.gc.compactions" (float_of_int s.compactions)
  end

(* ---- domain-pool utilization ---- *)

(* Millisecond-ish bounds for kernel wall times: 1 µs .. ~1 min. *)
let ms_bounds = Array.init 26 (fun i -> 1e-3 *. (2.0 ** float_of_int i))

(** Feed [Util.Parallel]'s instrumentation hook into [ctx]:

    - [par.<kernel>.ms]          histogram of per-call wall time;
    - [par.<kernel>.imbalance]   histogram of max/mean chunk time;
    - [par.<kernel>.utilization] histogram of busy fraction
                                 (sum chunk_s / (chunks * wall));
    - [par.pool.utilization]     gauge, last utilization seen over any
                                 multi-chunk kernel — the live signal an
                                 adaptive controller can poll;
    - [par.dispatches]           counter of instrumented calls.

    Replaces any previously installed hook (one observer at a time, by
    [Util.Parallel.set_instrument]'s contract). *)
let install_parallel ctx =
  Util.Parallel.set_instrument
    (Some
       (fun (s : Util.Parallel.stats) ->
         Ctx.count ctx "par.dispatches";
         Ctx.observe ctx ~bounds:ms_bounds ("par." ^ s.kernel ^ ".ms") (s.total_s *. 1e3);
         if s.chunks > 1 then begin
           let busy = Array.fold_left ( +. ) 0.0 s.chunk_s in
           let mx = Array.fold_left Float.max 0.0 s.chunk_s in
           let mean = busy /. float_of_int s.chunks in
           let util = busy /. Float.max 1e-9 (float_of_int s.chunks *. s.total_s) in
           Ctx.observe ctx ("par." ^ s.kernel ^ ".imbalance") (mx /. Float.max 1e-9 mean);
           Ctx.observe ctx
             ~bounds:[| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 |]
             ("par." ^ s.kernel ^ ".utilization")
             (Float.min 1.0 util);
           Ctx.gauge ctx "par.pool.utilization" (Float.min 1.0 util)
         end))
