(** Periodic structured progress records (live flight-recorder feed):
    producers push the latest signal values, [tick] emits a record every
    N iterations or T seconds on the owning context's clock. The stable
    interface adaptive controllers subscribe to via [on_record]. *)

type extraction_stats = {
  failing : int;
  paths : int;
  pairs : int;
  sta_s : float;
  extract_s : float;
}

type record = {
  seq : int;
  iter : int;
  t : float; (* seconds on the context clock *)
  overflow : float;
  hpwl : float; (* nan before the first checkpoint *)
  tns : float; (* nan before the first timing round *)
  wns : float;
  tns_trend : float; (* delta vs the previous record *)
  wns_trend : float;
  guard_nan : float; (* cumulative context counters *)
  guard_rollbacks : float;
  extraction : extraction_stats option;
}

type t

(** [create ctx] reads the clock and guard counters from [ctx]. [emit]
    receives every record (before subscribers). [every_seconds <= 0]
    disables the time trigger. Raises [Invalid_argument] when
    [every_iters <= 0]. *)
val create :
  ?every_iters:int -> ?every_seconds:float -> ?emit:(record -> unit) -> Ctx.t -> t

val on_record : t -> (record -> unit) -> unit

(** Return to the just-created state (seq 0, cadence origin and trend
    window cleared, producer latches nan/None); configuration and
    subscribers are kept. Long-lived processes call this between
    requests so a job never inherits the previous job's tick origin or
    trend baseline. *)
val reset : t -> unit

val note_hpwl : t -> float -> unit

val note_timing : t -> tns:float -> wns:float -> unit

val note_extraction :
  t -> failing:int -> paths:int -> pairs:int -> sta_s:float -> extract_s:float -> unit

(** Once per placement iteration; emits when a trigger fires. The first
    tick always emits. *)
val tick : t -> iter:int -> overflow:float -> unit

(** Emit unconditionally (flow boundaries). *)
val force : t -> iter:int -> overflow:float -> unit

(** JSONL record, ["type"] = "heartbeat". *)
val to_json : record -> Json.t

(** JSONL emitter writing (and flushing) one record per line to [path];
    returns [(emit, close)]. *)
val jsonl_emitter : string -> (record -> unit) * (unit -> unit)
