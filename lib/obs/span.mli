(** One trace span. Times are seconds relative to the owning context's
    creation; [parent = -1] marks a root span. *)

type t = {
  id : int;
  parent : int;
  name : string;
  start : float;
  mutable dur : float; (* filled at span end *)
  mutable attrs : (string * Json.t) list; (* newest last *)
}

val make :
  id:int -> parent:int -> name:string -> start:float -> attrs:(string * Json.t) list -> t

val add_attrs : t -> (string * Json.t) list -> unit

(** JSONL-ready record ([type] = "span"). *)
val to_json : t -> Json.t
