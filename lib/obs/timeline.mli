(** Timeline exports: spans + metrics as Chrome trace-event JSON
    (chrome://tracing / Perfetto) and folded stacks for flamegraphs.
    Spans must be given in completion order (what [Sink.memory] and a
    JSONL trace replay both provide). *)

(** The trace document: [{"traceEvents": [...]}] with a process-name
    metadata event, an "X" event per span (ts/dur in microseconds), and
    a "C" counter event per metric placed at the trace end. *)
val to_chrome_trace :
  ?process_name:string -> ?metrics:(string * Metric.m) list -> Span.t list -> Json.t

(** Per-stack self seconds, stacks rendered "root;child;leaf", sorted by
    stack string. *)
val to_folded : Span.t list -> (string * float) list

(** flamegraph.pl input: "stack count\n" lines, counts in µs. *)
val folded_to_string : (string * float) list -> string
