(** In-memory span aggregator: per-name count / total / self durations.
    Self time = duration minus completed children (valid under the
    single-threaded well-nested span discipline of [Ctx.span]). *)

type stat = {
  mutable count : int;
  mutable total : float;
  mutable self : float;
  mutable dmin : float;
  mutable dmax : float;
}

type t

val create : unit -> t

(** Fold one completed span in (children must be recorded before their
    parent — the order [Ctx.span] delivers). *)
val record : t -> Span.t -> unit

(** The aggregator as a context sink. *)
val sink : t -> Sink.t

val stats : t -> (string * stat) list

val get : t -> string -> stat option

(** Accumulated total seconds under [name] (0 when never seen). *)
val total : t -> string -> float

(** Per-name total seconds, largest first — the [Util.Timerstat.to_list]
    shape that [Tdp.Flow.result.breakdown] promises. *)
val to_breakdown : t -> (string * float) list

(** Per-name self seconds (total minus children), largest first —
    additive across phases, the regression sentinel's attribution. *)
val to_self_breakdown : t -> (string * float) list
