(** Minimal JSON values — emitter and parser with no external dependency.
    Non-finite floats emit as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

exception Parse_error of string

(** Parse a complete JSON document; raises {!Parse_error}. *)
val parse_exn : string -> t

val parse : string -> (t, string) result

(** Object field lookup ([None] on non-objects / missing keys). *)
val member : string -> t -> t option

(** Numeric coercion: [Int] and [Float] both answer. *)
val to_float : t -> float option

val to_int : t -> int option

val to_string_opt : t -> string option

val to_list : t -> t list option
