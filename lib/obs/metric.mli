(** Typed metrics: monotonic counters, last-value gauges, and fixed-bucket
    histograms with quantile estimates. *)

type histogram = {
  bounds : float array; (* strictly increasing bucket upper bounds *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable sum : float;
  mutable n : int;
  mutable vmin : float;
  mutable vmax : float;
}

type m = Counter of float ref | Gauge of float ref | Histogram of histogram

type registry

val create_registry : unit -> registry

(** 1 µs .. ~8 s in doubling steps. *)
val default_bounds : float array

val histogram_create : float array -> histogram

val histogram_observe : histogram -> float -> unit

val mean : histogram -> float

(** Quantile estimate for [q] in [0, 1]: linear interpolation inside the
    containing bucket, clamped to the observed min/max at the open ends.
    NaN on an empty histogram. *)
val quantile : histogram -> float -> float

(** Add [by] (default 1) to a counter, creating it on first use. Raises
    [Invalid_argument] if the name is registered with another kind. *)
val incr : registry -> ?by:float -> string -> unit

val set_gauge : registry -> string -> float -> unit

val observe : registry -> ?bounds:float array -> string -> float -> unit

val find : registry -> string -> m option

(** Name-sorted snapshot. *)
val snapshot : registry -> (string * m) list

(** One JSONL-ready record ([type] = "metric"). *)
val to_json : name:string -> m -> Json.t
