(** The bench regression sentinel's comparison core: two
    [bench-results-v1] documents (the bench harness's [--json] dump) are
    matched entry-by-entry and checked against ratio thresholds on
    runtime, peak RSS, per-phase self time and HPWL.

    Design notes for a *gate, not a noise alarm*: every check is a ratio
    with an absolute floor on the baseline side (sub-threshold phases and
    heaps jitter wildly across hosts), thresholds default generous, and
    an entry present in the baseline but missing from the current run is
    itself a violation — silent coverage loss must not read as a pass. *)

type thresholds = {
  max_time_ratio : float; (* whole-flow runtime, current / baseline *)
  max_rss_ratio : float; (* peak RSS, current / baseline *)
  max_self_ratio : float; (* per-phase self seconds, current / baseline *)
  max_hpwl_ratio : float; (* quality backstop: HPWL current / baseline *)
  max_alloc_ratio : float; (* minor-heap words, current vs baseline *)
  alloc_slack_words : float; (* absolute slack added to the alloc limit *)
  min_phase_s : float; (* ignore phases whose baseline self time is below *)
  min_rss_bytes : float; (* ignore the RSS check below this baseline *)
}

(* Hosts differ; CI wants regressions an order of magnitude out, not
   scheduler noise. The allocation gate is ratio-plus-slack rather than
   pure ratio: a zero-allocation kernel regressing to millions of words
   would pass any finite ratio against a ~0 baseline, and a pure ratio
   on small baselines is all jitter — [c > b * ratio + slack] catches
   both ends. *)
let default_thresholds =
  {
    max_time_ratio = 5.0;
    max_rss_ratio = 4.0;
    max_self_ratio = 6.0;
    max_hpwl_ratio = 1.5;
    max_alloc_ratio = 8.0;
    alloc_slack_words = 1e6;
    min_phase_s = 0.05;
    min_rss_bytes = 32.0 *. 1024.0 *. 1024.0;
  }

type violation = {
  key : string; (* "design/label" *)
  what : string; (* e.g. "runtime", "peak_rss", "self:density", "missing" *)
  baseline : float;
  current : float;
  limit : float; (* the ratio (or presence=1) that was exceeded *)
}

let violation_to_string v =
  if v.what = "missing" then Printf.sprintf "%-28s missing from current run" v.key
  else
    Printf.sprintf "%-28s %-16s %12.4g -> %12.4g (%.2fx > %.2fx)" v.key v.what v.baseline
      v.current
      (v.current /. Float.max 1e-30 v.baseline)
      v.limit

(* ---- document access ---- *)

let mem_str k j = Option.bind (Json.member k j) Json.to_string_opt

let mem_float k j = Option.bind (Json.member k j) Json.to_float

type entry = {
  ekey : string;
  runtime : float option;
  peak_rss : float option;
  minor_words : float option; (* minor-heap allocation over the run *)
  hpwl : float option;
  self : (string * float) list; (* per-phase self seconds *)
  failed : bool; (* entry carries an error object *)
}

let entry_of_json j =
  let design = Option.value ~default:"?" (mem_str "design" j) in
  let label =
    match mem_str "label" j with Some l -> l | None -> Option.value ~default:"?" (mem_str "name" j)
  in
  let self =
    match Json.member "breakdown_self" j with
    | Some (Json.Obj kvs) ->
        List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v)) kvs
    | _ -> []
  in
  {
    ekey = design ^ "/" ^ label;
    runtime = mem_float "runtime" j;
    peak_rss = Option.bind (Json.member "resource" j) (mem_float "peak_rss_bytes");
    minor_words = Option.bind (Json.member "resource" j) (mem_float "minor_words");
    hpwl = Option.bind (Json.member "metrics" j) (mem_float "hpwl");
    self;
    failed = (match Json.member "error" j with Some Json.Null | None -> false | Some _ -> true);
  }

(** Parse a bench-results document into keyed entries. Errors on a
    missing/mismatched schema tag or a malformed results list. *)
let entries_of_doc (doc : Json.t) : (entry list, string) result =
  match mem_str "schema" doc with
  | Some "bench-results-v1" -> (
      match Option.bind (Json.member "results" doc) Json.to_list with
      | Some rs -> Ok (List.map entry_of_json rs)
      | None -> Error "no \"results\" list")
  | Some other -> Error (Printf.sprintf "unexpected schema %S (want bench-results-v1)" other)
  | None -> Error "missing \"schema\" tag"

(* ---- comparison ---- *)

let check ~key ~what ~limit ~floor base cur acc =
  match (base, cur) with
  | Some b, Some c when b >= floor && Float.is_finite b && Float.is_finite c ->
      if c > b *. limit then { key; what; baseline = b; current = c; limit } :: acc else acc
  | _ -> acc

(** All threshold violations of [current] against [baseline]. Entries are
    matched by "design/label"; per-phase self times by phase name. Failed
    baseline entries are skipped (nothing sound to compare against), a
    baseline entry missing from the current document is reported as
    ["missing"]. Violations come back in a stable (key-sorted) order. *)
let compare_entries (th : thresholds) ~(baseline : entry list) ~(current : entry list) :
    violation list =
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace cur_tbl e.ekey e) current;
  let violations =
    List.concat_map
      (fun (b : entry) ->
        if b.failed then []
        else
          match Hashtbl.find_opt cur_tbl b.ekey with
          | None ->
              [ { key = b.ekey; what = "missing"; baseline = 1.0; current = 0.0; limit = 1.0 } ]
          | Some c when c.failed ->
              [ { key = b.ekey; what = "missing"; baseline = 1.0; current = 0.0; limit = 1.0 } ]
          | Some c ->
              let acc =
                check ~key:b.ekey ~what:"runtime" ~limit:th.max_time_ratio
                  ~floor:th.min_phase_s b.runtime c.runtime []
              in
              let acc =
                check ~key:b.ekey ~what:"peak_rss" ~limit:th.max_rss_ratio
                  ~floor:th.min_rss_bytes b.peak_rss c.peak_rss acc
              in
              let acc =
                check ~key:b.ekey ~what:"hpwl" ~limit:th.max_hpwl_ratio ~floor:1e-9 b.hpwl
                  c.hpwl acc
              in
              (* Allocation: limit is ratio-plus-slack (see
                 [default_thresholds]) so a ~0 baseline still gates. *)
              let acc =
                match (b.minor_words, c.minor_words) with
                | Some bw, Some cw
                  when Float.is_finite bw && Float.is_finite cw
                       && cw > (bw *. th.max_alloc_ratio) +. th.alloc_slack_words ->
                    {
                      key = b.ekey;
                      what = "minor_words";
                      baseline = bw;
                      current = cw;
                      limit = th.max_alloc_ratio;
                    }
                    :: acc
                | _ -> acc
              in
              List.fold_left
                (fun acc (phase, bs) ->
                  check ~key:b.ekey ~what:("self:" ^ phase) ~limit:th.max_self_ratio
                    ~floor:th.min_phase_s (Some bs) (List.assoc_opt phase c.self) acc)
                acc b.self)
      baseline
  in
  List.sort (fun a b -> compare (a.key, a.what) (b.key, b.what)) violations

let compare_docs th ~baseline ~current =
  match (entries_of_doc baseline, entries_of_doc current) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok b, Ok c -> Ok (compare_entries th ~baseline:b ~current:c)
