(** In-memory span aggregator: per-name count / total / self durations.

    Self time relies on the single-threaded well-nested span discipline
    ([Ctx.span] guarantees children complete before their parent): when a
    span ends we already know the total time of its children, so
    [self = dur - children]. [to_breakdown] reproduces the shape of the
    old [Util.Timerstat.to_list] — per-name total seconds, largest first —
    which is what [Tdp.Flow.result.breakdown] promises. *)

type stat = {
  mutable count : int;
  mutable total : float;
  mutable self : float;
  mutable dmin : float;
  mutable dmax : float;
}

type t = {
  stats : (string, stat) Hashtbl.t;
  child_time : (int, float ref) Hashtbl.t; (* open-span id -> completed child seconds *)
}

let create () = { stats = Hashtbl.create 32; child_time = Hashtbl.create 32 }

let record t (s : Span.t) =
  let children =
    match Hashtbl.find_opt t.child_time s.id with
    | Some r ->
        Hashtbl.remove t.child_time s.id;
        !r
    | None -> 0.0
  in
  if s.parent >= 0 then begin
    match Hashtbl.find_opt t.child_time s.parent with
    | Some r -> r := !r +. s.dur
    | None -> Hashtbl.add t.child_time s.parent (ref s.dur)
  end;
  let st =
    match Hashtbl.find_opt t.stats s.name with
    | Some st -> st
    | None ->
        let st = { count = 0; total = 0.0; self = 0.0; dmin = Float.infinity; dmax = 0.0 } in
        Hashtbl.add t.stats s.name st;
        st
  in
  st.count <- st.count + 1;
  st.total <- st.total +. s.dur;
  st.self <- st.self +. Float.max 0.0 (s.dur -. children);
  if s.dur < st.dmin then st.dmin <- s.dur;
  if s.dur > st.dmax then st.dmax <- s.dur

let sink t = { Sink.null with Sink.on_span = record t }

(** All (name, stat) pairs, no particular order promised. *)
let stats t = Hashtbl.fold (fun name st acc -> (name, st) :: acc) t.stats []

let get t name = Hashtbl.find_opt t.stats name

let total t name = match get t name with Some st -> st.total | None -> 0.0

(** Per-name total seconds, largest first — the [Timerstat.to_list] shape. *)
let to_breakdown t =
  stats t
  |> List.map (fun (name, st) -> (name, st.total))
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(** Per-name *self* seconds (total minus children), largest first — the
    attribution the bench regression sentinel compares, since self time
    is additive across phases where total double-counts nesting. *)
let to_self_breakdown t =
  stats t
  |> List.map (fun (name, st) -> (name, st.self))
  |> List.sort (fun (_, a) (_, b) -> compare b a)
