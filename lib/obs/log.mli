(** Leveled logging. The level is global: default [Info], overridable with
    [set_level] or the [OBS_LEVEL] environment variable
    (quiet|error|warn|info|debug). [Info] prints to stdout (it carries the
    binaries' report output); warn/error/debug go to stderr with a level
    prefix. *)

type level = Quiet | Error | Warn | Info | Debug

val of_string : string -> level option

val to_string : level -> string

val set_level : level -> unit

val level : unit -> level

(** Would a message at this level print? *)
val enabled : level -> bool

(** Print at [level] bypassing the level check — for output explicitly
    requested by a flag (e.g. a [verbose] parameter). *)
val emit : level -> string -> unit

val log : level -> ('a, unit, string, unit) format4 -> 'a

val error : ('a, unit, string, unit) format4 -> 'a

val warn : ('a, unit, string, unit) format4 -> 'a

val info : ('a, unit, string, unit) format4 -> 'a

val debug : ('a, unit, string, unit) format4 -> 'a
