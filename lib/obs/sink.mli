(** Pluggable trace consumers: completed spans arrive as they end, the
    metric snapshot arrives at flush. *)

type t = {
  on_span : Span.t -> unit;
  on_metrics : (string * Metric.m) list -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

val null : t

(** JSONL trace writer: one self-describing JSON object per line. *)
val jsonl : string -> t

(** In-memory collector; returns [(sink, get_spans, get_metrics)] where
    [get_spans] lists spans in completion order. *)
val memory : unit -> t * (unit -> Span.t list) * (unit -> (string * Metric.m) list)
