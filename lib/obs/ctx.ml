(** The observability context threaded through the pipeline.

    Global-but-injectable: libraries take [?obs] defaulting to [null]
    (or to [default ()] in binaries); [null] is permanently disabled so
    every instrumented call is a cheap branch — observability is strictly
    observation-only and must never perturb placement results.

    Spans are well-nested (single-threaded discipline): [span] pushes on
    an explicit stack and [Fun.protect] guarantees the span completes —
    and is delivered to sinks — on every exit, including exceptions. *)

type t = {
  enabled : bool;
  mutable sinks : Sink.t list;
  metrics : Metric.registry;
  clock : unit -> float;
  t0 : float;
  mutable next_id : int;
  mutable stack : Span.t list; (* innermost open span first *)
}

let null =
  {
    enabled = false;
    sinks = [];
    metrics = Metric.create_registry ();
    clock = (fun () -> 0.0);
    t0 = 0.0;
    next_id = 0;
    stack = [];
  }

let create ?(clock = Unix.gettimeofday) ?(sinks = []) () =
  {
    enabled = true;
    sinks;
    metrics = Metric.create_registry ();
    clock;
    t0 = clock ();
    next_id = 0;
    stack = [];
  }

let enabled t = t.enabled

let add_sink t sink = if t.enabled then t.sinks <- t.sinks @ [ sink ]

(** Detach a sink previously added (physical equality). *)
let remove_sink t sink = t.sinks <- List.filter (fun s -> s != sink) t.sinks

let now t = t.clock () -. t.t0

(** Run [f] inside a named span. Disabled contexts run [f] directly. *)
let span t ?(attrs = []) name f =
  if not t.enabled then f ()
  else begin
    let parent = match t.stack with [] -> -1 | p :: _ -> p.Span.id in
    let id = t.next_id in
    t.next_id <- id + 1;
    let s = Span.make ~id ~parent ~name ~start:(now t) ~attrs in
    t.stack <- s :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        s.Span.dur <- now t -. s.Span.start;
        (match t.stack with
        | top :: rest when top == s -> t.stack <- rest
        | stack -> t.stack <- List.filter (fun x -> x != s) stack);
        List.iter (fun (sink : Sink.t) -> sink.Sink.on_span s) t.sinks)
      f
  end

(** Attach attributes to the innermost open span (no-op outside any span
    or on a disabled context). *)
let span_attrs t kvs =
  if t.enabled then match t.stack with s :: _ -> Span.add_attrs s kvs | [] -> ()

(* ---- metrics ---- *)

let count t ?(by = 1.0) name = if t.enabled then Metric.incr t.metrics ~by name

let gauge t name v = if t.enabled then Metric.set_gauge t.metrics name v

let observe t ?bounds name v = if t.enabled then Metric.observe t.metrics ?bounds name v

let metric t name = Metric.find t.metrics name

(** Current metric snapshot as a JSON list of metric records. *)
let metrics_json t =
  Json.List (List.map (fun (name, m) -> Metric.to_json ~name m) (Metric.snapshot t.metrics))

(* ---- lifecycle ---- *)

(** Push the metric snapshot to every sink and flush them. *)
let flush t =
  if t.enabled then begin
    let snap = Metric.snapshot t.metrics in
    List.iter
      (fun (sink : Sink.t) ->
        sink.Sink.on_metrics snap;
        sink.Sink.flush ())
      t.sinks
  end

(** Flush, then close and detach every sink. *)
let close t =
  flush t;
  List.iter (fun (sink : Sink.t) -> sink.Sink.close ()) t.sinks;
  t.sinks <- []

(* ---- process-wide default (injectable) ---- *)

let default_ctx = ref null

let set_default c = default_ctx := c

let default () = !default_ctx
