(** Bench regression sentinel core: match two [bench-results-v1]
    documents entry-by-entry and check ratio thresholds (with absolute
    baseline floors) on runtime, peak RSS, per-phase self time, HPWL.
    A baseline entry missing from the current run is a violation. *)

type thresholds = {
  max_time_ratio : float;
  max_rss_ratio : float;
  max_self_ratio : float;
  max_hpwl_ratio : float;
  (* Minor-heap allocation gate: violation when
     [current > baseline * max_alloc_ratio + alloc_slack_words]. The
     additive slack makes a near-zero baseline still gate (a pure ratio
     would let a 0-alloc kernel regress to millions of words). *)
  max_alloc_ratio : float;
  alloc_slack_words : float;
  min_phase_s : float;
  min_rss_bytes : float;
}

(** Generous defaults (a gate, not a noise alarm). *)
val default_thresholds : thresholds

type violation = {
  key : string; (* "design/label" *)
  what : string;
      (* "runtime" | "peak_rss" | "hpwl" | "minor_words" | "self:<phase>"
         | "missing" *)
  baseline : float;
  current : float;
  limit : float;
}

val violation_to_string : violation -> string

type entry

(** Errors on schema mismatch or a malformed results list. *)
val entries_of_doc : Json.t -> (entry list, string) result

val compare_entries : thresholds -> baseline:entry list -> current:entry list -> violation list

(** [Ok []] means the current run passes the gate. *)
val compare_docs : thresholds -> baseline:Json.t -> current:Json.t -> (violation list, string) result
