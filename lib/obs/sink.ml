(** Pluggable trace consumers. A sink receives every completed span as it
    ends and the final metric snapshot at flush time; contexts may carry
    any number of sinks (none = observation fully off). *)

type t = {
  on_span : Span.t -> unit; (* called once per span, at span end *)
  on_metrics : (string * Metric.m) list -> unit; (* called at flush *)
  flush : unit -> unit;
  close : unit -> unit;
}

let null = { on_span = ignore; on_metrics = ignore; flush = ignore; close = ignore }

(** JSONL trace writer: one self-describing JSON object per line —
    span records as spans complete, metric records at flush. *)
let jsonl path =
  let oc = open_out path in
  let write_line j =
    output_string oc (Json.to_string j);
    output_char oc '\n'
  in
  {
    on_span = (fun s -> write_line (Span.to_json s));
    on_metrics = (fun ms -> List.iter (fun (name, m) -> write_line (Metric.to_json ~name m)) ms);
    flush = (fun () -> flush oc);
    close = (fun () -> close_out oc);
  }

(** Collect spans (and the metric snapshot) into memory — handy in tests
    and for post-run inspection without touching the filesystem. *)
let memory () =
  let spans = ref [] in
  let metrics = ref [] in
  let sink =
    {
      on_span = (fun s -> spans := s :: !spans);
      on_metrics = (fun ms -> metrics := ms);
      flush = ignore;
      close = ignore;
    }
  in
  let get_spans () = List.rev !spans in
  let get_metrics () = !metrics in
  (sink, get_spans, get_metrics)
