(** Leveled logging for binaries and libraries.

    The level is global: default [Info], overridable programmatically
    ([set_level]) or by the [OBS_LEVEL] environment variable
    (quiet|error|warn|info|debug). [Info] goes to stdout — it carries the
    user-facing report output of the binaries; warnings, errors and debug
    chatter go to stderr with a level prefix. *)

type level = Quiet | Error | Warn | Info | Debug

let severity = function Quiet -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "none" | "off" -> Some Quiet
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" | "trace" -> Some Debug
  | _ -> None

let to_string = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let current =
  ref
    (match Sys.getenv_opt "OBS_LEVEL" with
    | Some s -> ( match of_string s with Some l -> l | None -> Info)
    | None -> Info)

let set_level l = current := l

let level () = !current

let enabled l = severity l <= severity !current

(** Print [msg] at [lvl] regardless of the current level — the escape
    hatch for output explicitly requested by a flag (e.g. [verbose]). *)
let emit lvl msg =
  match lvl with
  | Info ->
      print_string msg;
      print_newline ();
      flush stdout
  | Quiet -> ()
  | lvl ->
      Printf.eprintf "[%s] %s\n%!" (to_string lvl) msg

let log lvl fmt = Printf.ksprintf (fun msg -> if enabled lvl then emit lvl msg) fmt

let error fmt = log Error fmt

let warn fmt = log Warn fmt

let info fmt = log Info fmt

let debug fmt = log Debug fmt
