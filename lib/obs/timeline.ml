(** Timeline exports: completed spans (plus the metric snapshot) rendered
    as Chrome trace-event JSON — loadable in [chrome://tracing] and
    Perfetto — and as folded stacks for flamegraph tooling.

    Inputs are spans in *completion order* (children before parents),
    exactly what [Sink.memory] collects and what a [Sink.jsonl] trace
    replays line by line. Span times are seconds relative to the owning
    context; the trace-event format wants microseconds. *)

let us_of_s s = s *. 1e6

(* ---- Chrome trace events ---- *)

(* One complete ("ph":"X") event per span. Spans are single-threaded and
   well-nested, so a constant pid/tid renders as one nested track. *)
let span_event ?(pid = 1) ?(tid = 1) (s : Span.t) : Json.t =
  let base =
    [
      ("name", Json.String s.Span.name);
      ("ph", Json.String "X");
      ("ts", Json.Float (us_of_s s.Span.start));
      ("dur", Json.Float (us_of_s s.Span.dur));
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
    ]
  in
  Json.Obj (if s.Span.attrs = [] then base else base @ [ ("args", Json.Obj s.Span.attrs) ])

(* Counter ("ph":"C") events let scalar series render as tracks. The
   metric snapshot is a point-in-time value, so it becomes one event at
   the end of the trace; histograms contribute their count. *)
let metric_events ~ts metrics : Json.t list =
  List.filter_map
    (fun (name, m) ->
      let value =
        match (m : Metric.m) with
        | Metric.Counter r | Metric.Gauge r -> Some !r
        | Metric.Histogram h -> Some (float_of_int h.Metric.n)
      in
      Option.map
        (fun v ->
          Json.Obj
            [
              ("name", Json.String name);
              ("ph", Json.String "C");
              ("ts", Json.Float (us_of_s ts));
              ("pid", Json.Int 1);
              ("args", Json.Obj [ ("value", Json.Float v) ]);
            ])
        value)
    metrics

let trace_end_ts spans =
  List.fold_left (fun acc (s : Span.t) -> Float.max acc (s.Span.start +. s.Span.dur)) 0.0 spans

(** The full trace document: [{"traceEvents": [...], ...}] with a
    process-name metadata record, one X event per span, and one C event
    per metric at the trace end. *)
let to_chrome_trace ?(process_name = "efficient-tdp") ?(metrics = []) (spans : Span.t list) :
    Json.t =
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String process_name) ]);
      ]
  in
  let events =
    (meta :: List.map span_event spans) @ metric_events ~ts:(trace_end_ts spans) metrics
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]

(* ---- folded stacks (flamegraphs) ---- *)

(** Per-stack *self* time in seconds, stacks rendered as
    "root;child;leaf". Spans arrive in completion order, so a span's
    children are always recorded before it; self = dur - sum(children).
    Aggregates identical stacks; result is sorted by stack string for
    deterministic output. *)
let to_folded (spans : Span.t list) : (string * float) list =
  let by_id = Hashtbl.create 256 in
  List.iter (fun (s : Span.t) -> Hashtbl.replace by_id s.Span.id s) spans;
  let child_time = Hashtbl.create 256 in
  List.iter
    (fun (s : Span.t) ->
      if s.Span.parent >= 0 then
        match Hashtbl.find_opt child_time s.Span.parent with
        | Some r -> r := !r +. s.Span.dur
        | None -> Hashtbl.add child_time s.Span.parent (ref s.Span.dur))
    spans;
  let stack_cache = Hashtbl.create 256 in
  let rec stack_of (s : Span.t) =
    match Hashtbl.find_opt stack_cache s.Span.id with
    | Some st -> st
    | None ->
        let st =
          match Hashtbl.find_opt by_id s.Span.parent with
          | Some p when s.Span.parent >= 0 -> stack_of p ^ ";" ^ s.Span.name
          | _ -> s.Span.name
        in
        Hashtbl.add stack_cache s.Span.id st;
        st
  in
  let acc = Hashtbl.create 256 in
  List.iter
    (fun (s : Span.t) ->
      let children =
        match Hashtbl.find_opt child_time s.Span.id with Some r -> !r | None -> 0.0
      in
      let self = Float.max 0.0 (s.Span.dur -. children) in
      let st = stack_of s in
      match Hashtbl.find_opt acc st with
      | Some r -> r := !r +. self
      | None -> Hashtbl.add acc st (ref self))
    spans;
  Hashtbl.fold (fun st r l -> (st, !r) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Folded stacks in the flamegraph.pl input dialect: one
    "stack;frames count" line each, counts in integer microseconds
    (stacks rounding to zero are dropped). *)
let folded_to_string folded =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, self_s) ->
      let us = int_of_float (Float.round (us_of_s self_s)) in
      if us > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" stack us))
    folded;
  Buffer.contents buf
