(** The observability context threaded through the pipeline.

    Global-but-injectable: libraries take [?obs] defaulting to {!null},
    which is permanently disabled — every instrumented call is then a
    cheap branch, and observability can never perturb results. *)

type t

(** The disabled context: spans run their body directly, metrics are
    dropped, [add_sink] is a no-op. *)
val null : t

(** A live context. [clock] defaults to [Unix.gettimeofday] (injectable
    for deterministic tests). *)
val create : ?clock:(unit -> float) -> ?sinks:Sink.t list -> unit -> t

val enabled : t -> bool

val add_sink : t -> Sink.t -> unit

(** Detach a sink previously added (physical equality). *)
val remove_sink : t -> Sink.t -> unit

(** Seconds since the context was created. *)
val now : t -> float

(** Run [f] inside a named span; the span completes (and reaches sinks)
    on every exit, including exceptions. *)
val span : t -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Attach attributes to the innermost open span. *)
val span_attrs : t -> (string * Json.t) list -> unit

val count : t -> ?by:float -> string -> unit

val gauge : t -> string -> float -> unit

val observe : t -> ?bounds:float array -> string -> float -> unit

val metric : t -> string -> Metric.m option

(** Current metric snapshot as a JSON list of metric records. *)
val metrics_json : t -> Json.t

(** Push the metric snapshot to every sink and flush them. *)
val flush : t -> unit

(** Flush, then close and detach every sink. *)
val close : t -> unit

(** Process-wide default context, [null] until [set_default]. *)
val default : unit -> t

val set_default : t -> unit
