(** Resource telemetry: GC accounting, resident-set size, and domain-pool
    utilization gauges. Observation-only; sampling is allocation-light. *)

(** Peak resident set size in bytes ([VmHWM] from [/proc/self/status]);
    falls back to the GC top-of-heap watermark without procfs. *)
val peak_rss_bytes : unit -> int

(** Current resident set size in bytes ([VmRSS]), same fallback. *)
val rss_bytes : unit -> int

type sample = {
  time : float;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  peak_rss : int; (* bytes *)
}

(** One [Gc.quick_stat] + RSS probe. *)
val sample : unit -> sample

type delta = {
  elapsed_s : float;
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_collections : int;
  d_major_collections : int;
  d_compactions : int;
  peak_rss_bytes : int; (* absolute high-water mark at [after] *)
}

(** Interval accounting between two samples; GC counters are subtracted,
    the RSS peak is the absolute watermark (peaks do not subtract). *)
val delta : before:sample -> after:sample -> delta

val delta_to_json : delta -> Json.t

(** Inverse of [delta_to_json]; [None] if required fields are missing. *)
val delta_of_json : Json.t -> delta option

(** Publish current RSS/GC state as [res.*] gauges on the context. *)
val update_gauges : Ctx.t -> unit

(** Route [Util.Parallel]'s instrumentation hook into the context as
    [par.<kernel>.ms] / [.imbalance] / [.utilization] histograms, the
    [par.pool.utilization] gauge and the [par.dispatches] counter. *)
val install_parallel : Ctx.t -> unit
