(** One completed (or in-flight) trace span. Times are seconds relative to
    the owning context's creation, so trace files carry small stable
    numbers instead of epoch timestamps. [parent = -1] marks a root. *)

type t = {
  id : int;
  parent : int;
  name : string;
  start : float;
  mutable dur : float; (* filled at span end *)
  mutable attrs : (string * Json.t) list; (* newest last *)
}

let make ~id ~parent ~name ~start ~attrs = { id; parent; name; start; dur = 0.0; attrs }

let add_attrs s kvs = s.attrs <- s.attrs @ kvs

let to_json (s : t) : Json.t =
  let base =
    [
      ("type", Json.String "span");
      ("id", Json.Int s.id);
      ("parent", Json.Int s.parent);
      ("name", Json.String s.name);
      ("t0", Json.Float s.start);
      ("dur", Json.Float s.dur);
    ]
  in
  Json.Obj (if s.attrs = [] then base else base @ [ ("attrs", Json.Obj s.attrs) ])
