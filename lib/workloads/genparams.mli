(** Knobs of the synthetic benchmark generator. *)

type t = {
  name : string;
  seed : int;
  num_comb : int; (* combinational cell count *)
  num_ff : int;
  num_inputs : int;
  num_outputs : int;
  levels : int; (* combinational depth between register stages *)
  fanout_hub_prob : float; (* probability a driver is a high-fanout hub *)
  fanout_hub_weight : float; (* sampling weight multiplier for hubs *)
  num_macros : int;
  macro_frac : float; (* macro side as a fraction of die width *)
  utilization : float; (* movable area / die area *)
  slack_quantile : float; (* clock calibration: fraction of endpoints that
                             should PASS under the vanilla placement *)
}

val default : t
