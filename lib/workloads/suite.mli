(** The benchmark suite: eight designs mirroring the relative sizes and
    constraint tightness of the ICCAD2015 superblue cases the paper uses
    (scaled to CPU-friendly sizes; substitution rationale in DESIGN.md). *)

type entry = { short : string; params : Genparams.t }

(** The eight designs; [scale] multiplies all cell counts. *)
val entries : ?scale:float -> unit -> entry list

val names : ?scale:float -> unit -> string list

(** Raises [Util.Errors.Error (Config_error _)] for unknown names. *)
val find : ?scale:float -> string -> entry

(** Hook external (parsed-file) designs into the suite: [load short]
    consults the registry before the generator, so registered designs
    join any matrix keyed by suite names. [scale]/[calibrate] do not
    apply to registered designs. Re-registering a name replaces it. *)
val register_loader : short:string -> (unit -> Netlist.Design.t) -> unit

(** Registered external names, registration order. *)
val registered : unit -> string list

(** Generate a suite design; [calibrate] (default true) also sets its
    clock. Deterministic in (short, scale). *)
val load : ?scale:float -> ?calibrate:bool -> string -> Netlist.Design.t

(** Parameters for a scale-ladder design with roughly [cells] total cells
    (combinational + FF + boundary IO + macros) — the 100k-1M workloads
    of the SoA scale bench. Deterministic in [cells] and [seed]. *)
val sized_params : ?seed:int -> cells:int -> unit -> Genparams.t

(** Generate a scale-ladder design. [calibrate] defaults to [false]: clock
    calibration runs a full global placement, which is the expensive part
    at 500k+ cells and irrelevant to the memory/kernel measurements. *)
val load_sized : ?seed:int -> ?calibrate:bool -> cells:int -> unit -> Netlist.Design.t
