(** Synthetic netlist generator: levelized sequential circuits with shared
    register-to-register paths, long-tail fanout (hub nets), macros and
    boundary IO. Deterministic given [Genparams.seed]. Construction notes
    at the top of the implementation. *)

(** Wire parasitics baked into generated designs (per site). *)
val wire_r : float

val wire_c : float

val row_height : float

val generate : Genparams.t -> Netlist.Design.t

(** Calibrate the clock so that roughly [1 - quantile] of endpoints fail
    under a vanilla global placement (the paper's operating regime).
    Mutates [d.clock_period]; restores the pre-calibration placement.
    Returns the period. *)
val calibrate_clock :
  ?gp_params:Gp.Globalplace.params -> Netlist.Design.t -> quantile:float -> float
