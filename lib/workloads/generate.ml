(** Synthetic netlist generator.

    Produces levelized sequential circuits with the structural features
    the paper's experiments depend on: many register-to-register paths
    with shared segments (path-sharing), a long-tail fanout distribution
    (a few hub nets with large fanout, like buffered control signals),
    macros, and boundary IO. Deterministic given [Genparams.seed].

    Construction:
    1. sources = primary inputs + FF Q outputs (level 0);
    2. each combinational cell gets a level in [1, levels]; its inputs
       connect to drivers of strictly lower level (biased to the previous
       level), guaranteeing acyclicity;
    3. FF D pins and primary outputs consume high-level signals;
    4. drivers are sampled with hub weights for the fanout long tail;
    5. any signal left without sinks is exported through an extra pad. *)

open Netlist

(* Wire parasitics per site: r = 0.06 kOhm, c = 0.5 fF. A 20-site wire
   then adds 1.2 kOhm / 10 fF; through a 10 kOhm driver that is ~100 ps —
   wire delay dominates gate delay, the regime where placement owns the
   timing budget (as in the ICCAD2015 designs the paper evaluates). *)
let wire_r = 0.060

let wire_c = 0.50

let row_height = 1.0

type proto_driver = {
  cell : int; (* builder cell id *)
  out_pin : string;
  level : int;
  weight : float; (* sampling weight (hubs get more sinks) *)
  mutable net : int; (* builder net id, -1 until first sink *)
}

let die_of_area total_area utilization =
  let side = sqrt (total_area /. utilization) in
  (* Round up to whole rows. *)
  let side = Float.round (side +. 0.5) in
  Geom.Rect.make ~xl:0.0 ~yl:0.0 ~xh:side ~yh:side

let generate (p : Genparams.t) =
  let rng = Util.Rng.create p.seed in
  (* Pre-estimate area to size the die before building (cells carry their
     own sizes; we also reserve macro area). *)
  let avg_comb_area =
    let total =
      Array.fold_left
        (fun acc (lc : Libcell.t) -> acc +. (lc.width *. lc.height))
        0.0 Libcell.comb_cells
    in
    total /. float_of_int (Array.length Libcell.comb_cells)
  in
  let ff_area = Libcell.dff.Libcell.width *. Libcell.dff.Libcell.height in
  let movable_area =
    (float_of_int p.num_comb *. avg_comb_area) +. (float_of_int p.num_ff *. ff_area)
  in
  let macro_area_frac = Float.min 0.25 (float_of_int p.num_macros *. p.macro_frac *. p.macro_frac) in
  let die = die_of_area (movable_area /. (1.0 -. macro_area_frac)) p.utilization in
  let side = Geom.Rect.width die in
  let b =
    Builder.create ~name:p.name ~die ~row_height ~clock_period:1e9 ~r_per_unit:wire_r
      ~c_per_unit:wire_c
  in
  let ctr = Geom.Rect.center die in
  (* Macros: placed in a diagonal band, non-overlapping by construction. *)
  for m = 0 to p.num_macros - 1 do
    let mw = p.macro_frac *. side and mh = p.macro_frac *. side in
    let fx = (float_of_int m +. 0.7) /. (float_of_int p.num_macros +. 1.4) in
    let x = die.Geom.Rect.xl +. (fx *. side) in
    let y = die.Geom.Rect.yl +. ((1.0 -. fx) *. side) in
    ignore (Builder.add_blockage b ~cname:(Printf.sprintf "macro%d" m) ~x ~y ~w:mw ~h:mh)
  done;
  (* IO pads spaced around the boundary. *)
  let pad_pos i total =
    let t = float_of_int i /. float_of_int (max 1 total) in
    let per = 4.0 *. t in
    if per < 1.0 then (die.xl +. (per *. side), die.yl)
    else if per < 2.0 then (die.xh, die.yl +. ((per -. 1.0) *. side))
    else if per < 3.0 then (die.xh -. ((per -. 2.0) *. side), die.yh)
    else (die.xl, die.yh -. ((per -. 3.0) *. side))
  in
  let drivers = Util.Gvec.create () in
  let hubness () =
    (* Two-tier long tail: rare big hubs (buffered control), plus a band
       of moderate-fanout nets (shared logic). High-fanout nets on
       critical paths are exactly where net weighting over-constrains
       and fine-grained pin pairs do not. *)
    if Util.Rng.bernoulli rng p.fanout_hub_prob then p.fanout_hub_weight
    else if Util.Rng.bernoulli rng 0.15 then 6.0
    else 1.0
  in
  let n_io = p.num_inputs + p.num_outputs in
  for i = 0 to p.num_inputs - 1 do
    let x, y = pad_pos i n_io in
    let cell = Builder.add_input_pad b ~cname:(Printf.sprintf "pi%d" i) ~x ~y in
    Util.Gvec.push drivers { cell; out_pin = "p"; level = 0; weight = hubness (); net = -1 }
  done;
  (* FFs: their Q pins are level-0 sources; D pins collected for later. *)
  let ff_d_pins = Util.Gvec.create () in
  for i = 0 to p.num_ff - 1 do
    let cell =
      Builder.add_logic b
        ~cname:(Printf.sprintf "ff%d" i)
        ~lib:Libcell.dff ~x:ctr.Geom.Point.x ~y:ctr.Geom.Point.y ()
    in
    Util.Gvec.push drivers { cell; out_pin = "q"; level = 0; weight = hubness (); net = -1 };
    Util.Gvec.push ff_d_pins cell
  done;
  (* Combinational cells with levels. Level assignment is monotone in cell
     index so "drivers below my level" is a prefix of [drivers]. *)
  let comb_cells = Array.make p.num_comb (-1) in
  let level_of = Array.make p.num_comb 0 in
  for i = 0 to p.num_comb - 1 do
    level_of.(i) <- 1 + (i * p.levels / max 1 p.num_comb)
  done;
  (* Per-level index ranges over the drivers vector, filled as we go. *)
  let first_driver_at_level = Array.make (p.levels + 2) (Util.Gvec.length drivers) in
  first_driver_at_level.(0) <- 0;
  for i = 0 to p.num_comb - 1 do
    let lib = Util.Rng.choose rng Libcell.comb_cells in
    let cell =
      Builder.add_logic b
        ~cname:(Printf.sprintf "u%d" i)
        ~lib ~x:ctr.Geom.Point.x ~y:ctr.Geom.Point.y ()
    in
    comb_cells.(i) <- cell;
    let lvl = level_of.(i) in
    if first_driver_at_level.(lvl) > Util.Gvec.length drivers then
      first_driver_at_level.(lvl) <- Util.Gvec.length drivers;
    Util.Gvec.push drivers { cell; out_pin = "o"; level = lvl; weight = hubness (); net = -1 }
  done;
  for l = 1 to p.levels + 1 do
    if first_driver_at_level.(l) > Util.Gvec.length drivers then
      first_driver_at_level.(l) <- Util.Gvec.length drivers
  done;
  (* Coverage queue: per level, drivers not yet consumed by any sink.
     Sampling prefers fresh drivers (real netlists use almost every gate
     output), falling back to random re-use for fanout sharing, with a
     bias toward the immediately preceding level for depth and a tail over
     all lower levels for path sharing and reconvergence. *)
  let unsampled = Array.make (p.levels + 1) [] in
  for i = Util.Gvec.length drivers - 1 downto 0 do
    let drv = Util.Gvec.get drivers i in
    unsampled.(drv.level) <- i :: unsampled.(drv.level)
  done;
  let pop_unsampled level =
    (* Lazy deletion: skip drivers that were since connected randomly. *)
    let rec go = function
      | [] ->
          unsampled.(level) <- [];
          None
      | i :: rest ->
          let drv = Util.Gvec.get drivers i in
          if drv.net < 0 then begin
            unsampled.(level) <- rest;
            Some drv
          end
          else go rest
    in
    go unsampled.(level)
  in
  let sample_driver ~below =
    let lo_all = 0 and hi_all = first_driver_at_level.(below) in
    assert (hi_all > lo_all);
    let prev = max 0 (below - 1) in
    let fresh =
      if Util.Rng.bernoulli rng 0.65 then begin
        (* Coverage first: previous level, then any lower level. *)
        match pop_unsampled prev with
        | Some d -> Some d
        | None ->
            let rec scan l = if l < 0 then None else
              match pop_unsampled l with Some d -> Some d | None -> scan (l - 1)
            in
            scan (prev - 1)
      end
      else None
    in
    match fresh with
    | Some d -> d
    | None ->
        let prev_lo = first_driver_at_level.(prev) in
        let lo, hi =
          if prev_lo < hi_all && Util.Rng.bernoulli rng 0.7 then (prev_lo, hi_all)
          else (lo_all, hi_all)
        in
        (* Weighted choice among a few candidates: heavier drivers win,
           concentrating re-use on hub nets (long-tail fanout). *)
        let pick () = Util.Gvec.get drivers (Util.Rng.range rng lo hi) in
        let c1 = pick () and c2 = pick () and c3 = pick () in
        let best a b = if b.weight > a.weight then b else a in
        best (best c1 c2) c3
  in
  let net_of_driver drv =
    if drv.net >= 0 then drv.net
    else begin
      let nid = Builder.add_net b ~nname:(Printf.sprintf "n_%d_%s" drv.cell drv.out_pin) in
      Builder.connect_by_name b ~net:nid ~cell:drv.cell ~pin_name:drv.out_pin;
      drv.net <- nid;
      nid
    end
  in
  (* Wire up comb cell inputs. *)
  for i = 0 to p.num_comb - 1 do
    let cell = comb_cells.(i) in
    let lvl = level_of.(i) in
    (* Connect every input pin (a1, a2, ...) of the cell. *)
    let rec connect_input k =
      let pin_name = Printf.sprintf "a%d" k in
      match Builder.pin_of_cell b ~cell ~pin_name with
      | exception Invalid_argument _ -> ()
      | _pid ->
          let drv = sample_driver ~below:lvl in
          Builder.connect_by_name b ~net:(net_of_driver drv) ~cell ~pin_name;
          connect_input (k + 1)
    in
    connect_input 1
  done;
  (* FF D inputs consume deep signals; primary outputs likewise. *)
  Util.Gvec.iter
    (fun cell ->
      let drv = sample_driver ~below:(p.levels + 1) in
      Builder.connect_by_name b ~net:(net_of_driver drv) ~cell ~pin_name:"d")
    ff_d_pins;
  for i = 0 to p.num_outputs - 1 do
    let x, y = pad_pos (p.num_inputs + i) n_io in
    let cell = Builder.add_output_pad b ~cname:(Printf.sprintf "po%d" i) ~x ~y in
    let drv = sample_driver ~below:(p.levels + 1) in
    Builder.connect_by_name b ~net:(net_of_driver drv) ~cell ~pin_name:"p"
  done;
  (* Export dangling signals so every net has a sink. *)
  let extra = ref 0 in
  for i = 0 to Util.Gvec.length drivers - 1 do
    let drv = Util.Gvec.get drivers i in
    if drv.net >= 0 then ()
    else begin
      (* Driver never sampled: give it a sink through a spill pad. *)
      let x, y = pad_pos (Util.Rng.int rng (max 1 n_io)) n_io in
      let cell = Builder.add_output_pad b ~cname:(Printf.sprintf "spill%d" !extra) ~x ~y in
      incr extra;
      Builder.connect_by_name b ~net:(net_of_driver drv) ~cell ~pin_name:"p"
    end
  done;
  Builder.finish b

(** Calibrate the clock period so that roughly [1 - slack_quantile] of
    endpoints fail under a vanilla global placement — the operating regime
    of the paper's experiments. Mutates [d.clock_period]; restores the
    pre-calibration placement. *)
let calibrate_clock ?(gp_params = Gp.Globalplace.default_params) (d : Design.t) ~quantile =
  let saved = Design.snapshot d in
  let _ = Gp.Globalplace.run ~params:gp_params d in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  let graph = Sta.Timer.graph timer in
  let arr = Sta.Timer.arrivals timer in
  (* Required offset per endpoint: period - gap(e) >= arr(e), i.e. the
     period that would exactly meet endpoint e is arr(e) + gap(e), with
     gap = setup for FF D pins and 0 for output pads. *)
  let needs =
    Array.to_list graph.Sta.Graph.endpoints
    |> List.filter_map (fun e ->
           if Float.is_finite arr.(e) then
             Some (arr.(e) +. (d.clock_period -. graph.Sta.Graph.end_required.(e)))
           else None)
  in
  let needs = Array.of_list needs in
  let period =
    if Array.length needs = 0 then 1000.0 else Util.Stats.percentile needs (100.0 *. quantile)
  in
  d.clock_period <- period;
  Design.restore d saved;
  period
