(** The benchmark suite: eight designs mirroring the relative sizes and
    constraint tightness of the ICCAD 2015 superblue cases used in the
    paper (scaled to CPU-friendly sizes; see DESIGN.md for the
    substitution rationale). [scale] multiplies all cell counts. *)

type entry = { short : string; params : Genparams.t }

let scaled scale n = max 64 (int_of_float (float_of_int n *. scale))

let make_entry ~short ~seed ~num_comb ~num_ff ~levels ~slack_quantile ~num_macros ~scale =
  {
    short;
    params =
      {
        Genparams.default with
        name = short;
        seed;
        num_comb = scaled scale num_comb;
        num_ff = scaled scale num_ff;
        num_inputs = max 16 (scaled scale 96);
        num_outputs = max 16 (scaled scale 96);
        levels;
        num_macros;
        slack_quantile;
      };
  }

(** Relative sizes follow the contest suite ordering: superblue10 is the
    largest and hardest for TNS, superblue18 the smallest; superblue5 has
    the worst WNS (deep logic); superblue16 is shallow and fast. *)
let entries ?(scale = 1.0) () =
  [
    make_entry ~short:"sb1" ~seed:101 ~num_comb:2600 ~num_ff:380 ~levels:13 ~slack_quantile:0.89
      ~num_macros:2 ~scale;
    make_entry ~short:"sb3" ~seed:103 ~num_comb:2900 ~num_ff:420 ~levels:12 ~slack_quantile:0.90
      ~num_macros:3 ~scale;
    make_entry ~short:"sb4" ~seed:104 ~num_comb:2000 ~num_ff:330 ~levels:11 ~slack_quantile:0.86
      ~num_macros:2 ~scale;
    make_entry ~short:"sb5" ~seed:105 ~num_comb:3100 ~num_ff:400 ~levels:16 ~slack_quantile:0.88
      ~num_macros:3 ~scale;
    make_entry ~short:"sb7" ~seed:107 ~num_comb:3600 ~num_ff:520 ~levels:12 ~slack_quantile:0.90
      ~num_macros:2 ~scale;
    make_entry ~short:"sb10" ~seed:110 ~num_comb:4200 ~num_ff:600 ~levels:14 ~slack_quantile:0.85
      ~num_macros:4 ~scale;
    make_entry ~short:"sb16" ~seed:116 ~num_comb:2300 ~num_ff:360 ~levels:10 ~slack_quantile:0.88
      ~num_macros:1 ~scale;
    make_entry ~short:"sb18" ~seed:118 ~num_comb:1500 ~num_ff:260 ~levels:11 ~slack_quantile:0.88
      ~num_macros:1 ~scale;
  ]

let names ?scale () = List.map (fun e -> e.short) (entries ?scale ())

let find ?scale short =
  match List.find_opt (fun e -> e.short = short) (entries ?scale ()) with
  | Some e -> e
  | None ->
      Util.Errors.config_error ~what:"design"
        (Printf.sprintf "unknown suite design %s (known: %s)" short
           (String.concat " " (names ?scale ())))

(* External designs (parsed files) joining the bench matrix: flow
   drivers register a loader per short name; [load] consults the
   registry before the generator. Registered designs come from files,
   so [scale]/[calibrate] do not apply to them. *)
let loaders : (string * (unit -> Netlist.Design.t)) list ref = ref []

let register_loader ~short f =
  loaders := (short, f) :: List.remove_assoc short !loaders

let registered () = List.rev_map fst !loaders

(** Generate a suite design and calibrate its clock. The calibration GP
    run is deterministic, so the resulting design (netlist + period) is a
    pure function of [short] and [scale]. *)
let load ?scale ?(calibrate = true) short =
  match List.assoc_opt short !loaders with
  | Some f -> f ()
  | None ->
  let e = find ?scale short in
  let d = Generate.generate e.params in
  if calibrate then
    ignore (Generate.calibrate_clock d ~quantile:e.params.Genparams.slack_quantile);
  d

(* ------------------------------------------------------------------ *)
(* Scale-ladder designs: a single parameter point stretched to a target
   cell count for the 100k-1M SoA scale bench. The mix mirrors sb10
   (7:1 comb:FF, moderate depth); boundary IO grows with the die
   perimeter (sqrt of the cell count) rather than linearly. *)

let sized_params ?(seed = 4242) ~cells () =
  let cells = max 1_000 cells in
  (* comb + ff + io + macros ~= cells, with ff = comb/7. *)
  let io = max 64 (int_of_float (2.0 *. sqrt (float_of_int cells))) in
  let num_macros = 4 in
  let movable = max 512 (cells - (2 * io) - num_macros) in
  let num_ff = movable / 8 in
  let num_comb = movable - num_ff in
  {
    Genparams.default with
    name = Printf.sprintf "scale%dk" (cells / 1000);
    seed;
    num_comb;
    num_ff;
    num_inputs = io;
    num_outputs = io;
    levels = 14;
    num_macros;
    (* Hubs stay rare at scale so net degree stays bounded. *)
    fanout_hub_prob = 0.01;
  }

let load_sized ?seed ?(calibrate = false) ~cells () =
  let p = sized_params ?seed ~cells () in
  let d = Generate.generate p in
  if calibrate then ignore (Generate.calibrate_clock d ~quantile:p.Genparams.slack_quantile);
  d
