(** DCT-II and its inverse (DCT-III) via a length-2N FFT (Makhoul's even
    extension), plus separable 2D transforms over row-major grids.

    Conventions (un-normalised):
      forward:  X_k = sum_{n<N} x_n cos(pi k (2n+1) / (2N))
      inverse reconstructs x exactly from X (normalisation built in). *)

(* 1D scratch buffers are allocated per call (and per domain chunk in the
   2D passes); grids are small and transforms run a few times per
   placement iteration, so this is not a bottleneck. *)

let dct2 x =
  let n = Array.length x in
  Fft.check_size n;
  let m = 2 * n in
  let re = Array.make m 0.0 and im = Array.make m 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- x.(i);
    re.(m - 1 - i) <- x.(i)
  done;
  Fft.forward re im;
  let out = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* X_k = 0.5 * Re(e^{-i pi k / 2N} * Y_k) *)
    let ang = -.Float.pi *. float_of_int k /. float_of_int m in
    out.(k) <- 0.5 *. ((re.(k) *. cos ang) -. (im.(k) *. sin ang))
  done;
  out

let idct2 coeffs =
  let n = Array.length coeffs in
  Fft.check_size n;
  let m = 2 * n in
  let re = Array.make m 0.0 and im = Array.make m 0.0 in
  (* Rebuild the length-2N spectrum Y_k = 2 X_k e^{i pi k / 2N}, with
     Y_N = 0 and conjugate symmetry, then one inverse FFT recovers the even
     extension whose first half is x. *)
  for k = 0 to n - 1 do
    let ang = Float.pi *. float_of_int k /. float_of_int m in
    let yr = 2.0 *. coeffs.(k) *. cos ang in
    let yi = 2.0 *. coeffs.(k) *. sin ang in
    re.(k) <- yr;
    im.(k) <- yi;
    if k > 0 then begin
      re.(m - k) <- yr;
      im.(m - k) <- -.yi
    end
  done;
  Fft.inverse re im;
  Array.sub re 0 n

(* ---- 2D separable transforms on row-major [rows x cols] grids ----

   Rows (resp. columns) are independent 1D transforms, so both passes
   fan out across domains with a per-domain line buffer — the FFT-heavy
   half of the ePlace density pipeline. Each line's transform is computed
   identically to the sequential path, so results are bitwise equal at
   any domain count. *)

let map_rows f grid ~rows ~cols =
  let out = Array.make (rows * cols) 0.0 in
  Util.Parallel.for_chunks ~grain:8 ~name:"dct.rows" ~n:rows (fun ~chunk:_ ~lo ~hi ->
      let row = Array.make cols 0.0 in
      for r = lo to hi - 1 do
        Array.blit grid (r * cols) row 0 cols;
        let t = f row in
        Array.blit t 0 out (r * cols) cols
      done);
  out

let map_cols f grid ~rows ~cols =
  let out = Array.make (rows * cols) 0.0 in
  Util.Parallel.for_chunks ~grain:8 ~name:"dct.cols" ~n:cols (fun ~chunk:_ ~lo ~hi ->
      let col = Array.make rows 0.0 in
      for c = lo to hi - 1 do
        for r = 0 to rows - 1 do
          col.(r) <- grid.((r * cols) + c)
        done;
        let t = f col in
        for r = 0 to rows - 1 do
          out.((r * cols) + c) <- t.(r)
        done
      done);
  out

(** 2D DCT-II: rows then columns. *)
let dct2_2d grid ~rows ~cols =
  let g = map_rows dct2 grid ~rows ~cols in
  map_cols dct2 g ~rows ~cols

(** 2D inverse (DCT-III): columns then rows. *)
let idct2_2d grid ~rows ~cols =
  let g = map_cols idct2 grid ~rows ~cols in
  map_rows idct2 g ~rows ~cols
