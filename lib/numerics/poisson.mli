(** Spectral Poisson solver on a regular grid with Neumann boundaries —
    the ePlace electrostatics substrate.

    [solve] inverts the *discrete* 5-point Laplacian exactly (cosine-mode
    eigenvalues 2-2cos w), dropping the DC mode, i.e. it solves
    laplacian(psi) = -rho for zero-mean charge. *)

type t

(** Grid dimensions must be powers of two. *)
val create : rows:int -> cols:int -> t

(** Potential from the (row-major) charge grid. A sampled in-kernel
    finiteness probe on the input density field and output potential
    counts [guard.numerics.*_nonfinite] on [obs] (observation-only; the
    caller's guard still owns recovery). *)
val solve : ?obs:Obs.Ctx.t -> t -> float array -> float array

(** Field (ex, ey) = -grad psi by central differences, in grid units. *)
val field : t -> float array -> float array * float array

(** System energy 0.5 * sum(rho * psi) — the ePlace density penalty. *)
val energy : float array -> float array -> float
