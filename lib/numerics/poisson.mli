(** Spectral Poisson solver on a regular grid with Neumann boundaries —
    the ePlace electrostatics substrate.

    [solve] inverts the *discrete* 5-point Laplacian exactly (cosine-mode
    eigenvalues 2-2cos w), dropping the DC mode, i.e. it solves
    laplacian(psi) = -rho for zero-mean charge.

    Transforms run on a per-solver real-even [Plan] with the mode scale
    fused into the column pass; the [_into] entry points write to
    caller-owned buffers and perform zero minor-heap allocation in
    steady state (single domain, no parallel instrumentation). *)

type t

(** A/B flag: when set, [solve]/[solve_into] route through the seed
    per-line complex-FFT [Dct] path instead of the packed real-even
    plan. The two engines agree to rounding, not bitwise. Default
    [false]. *)
val use_seed_engine : bool ref

(** Grid dimensions must be powers of two; raises
    [Util.Errors.Error (Config_error _)] (what = ["poisson.grid"])
    otherwise. *)
val create : rows:int -> cols:int -> t

val rows : t -> int

val cols : t -> int

(** Potential from the (row-major) charge grid into a caller-owned
    buffer ([rho == psi] allowed). A sampled in-kernel finiteness probe
    on the input density field and output potential counts
    [guard.numerics.*_nonfinite] on [obs] (observation-only; the
    caller's guard still owns recovery). *)
val solve_into : ?obs:Obs.Ctx.t -> t -> rho:float array -> psi:float array -> unit

(** Allocating wrapper over {!solve_into}. *)
val solve : ?obs:Obs.Ctx.t -> t -> float array -> float array

(** Field (ex, ey) = -grad psi by central differences, in grid units,
    into caller-owned buffers. *)
val field_into : t -> psi:float array -> ex:float array -> ey:float array -> unit

(** Allocating wrapper over {!field_into}. *)
val field : t -> float array -> float array * float array

(** System energy 0.5 * sum(rho * psi) — the ePlace density penalty.
    Deterministic per the [Util.Parallel.sum] contract. *)
val energy : float array -> float array -> float
