(** Iterative radix-2 complex FFT on separate re/im arrays. Sizes must be
    powers of two. *)

val is_power_of_two : int -> bool

(** Raises [Invalid_argument] unless the size is a power of two; the
    message names the offending size. *)
val check_size : int -> unit

(** In-place forward DFT. Arrays must have equal power-of-two length. *)
val forward : float array -> float array -> unit

(** In-place inverse DFT, including the 1/n normalisation. *)
val inverse : float array -> float array -> unit
