(** Spectral Poisson solver on a regular grid with Neumann boundaries.

    Solves  laplacian(psi) = -rho  in the cosine basis, as in ePlace:
    the density grid is transformed with a 2D DCT, each mode is scaled by
    1 / (wu^2 + wv^2), and the inverse transform yields the potential.
    The DC mode is dropped, which is equivalent to neutralising the total
    charge (ePlace's implicit assumption at the density target).

    The transform work runs on a per-solver [Plan]: real-even packed
    transforms with the mode scale fused into the column pass, over
    plan-owned scratch — [solve_into]/[field_into] perform zero
    minor-heap allocation in steady state. The seed complex-FFT path
    ([Dct]) is kept behind {!use_seed_engine} for A/B comparison. *)

type t = {
  rows : int;
  cols : int;
  (* Precomputed 1 / (wu^2 + wv^2), DC term 0. *)
  inv_freq_sq : float array;
  plan : Plan.t;
}

(* A/B flag: route [solve]/[solve_into] through the seed per-line
   complex-FFT [Dct] path instead of the packed real-even plan. Results
   agree to rounding, not bitwise. *)
let use_seed_engine = ref false

let create ~rows ~cols =
  if not (Fft.is_power_of_two rows && Fft.is_power_of_two cols) then
    Util.Errors.config_error ~what:"poisson.grid"
      (Printf.sprintf "grid dimensions must be powers of two, got %dx%d" rows cols);
  let inv = Array.make (rows * cols) 0.0 in
  (* Eigenvalues of the discrete 5-point Laplacian with Neumann BC for
     cosine modes: -(2 - 2 cos wu) - (2 - 2 cos wv). Using the discrete
     spectrum (rather than wu^2 + wv^2) makes [solve] the exact inverse of
     the finite-difference Laplacian, which the tests verify. *)
  for u = 0 to rows - 1 do
    let wu = Float.pi *. float_of_int u /. float_of_int rows in
    for v = 0 to cols - 1 do
      let wv = Float.pi *. float_of_int v /. float_of_int cols in
      let s = (2.0 -. (2.0 *. cos wu)) +. (2.0 -. (2.0 *. cos wv)) in
      inv.((u * cols) + v) <- (if s = 0.0 then 0.0 else 1.0 /. s)
    done
  done;
  { rows; cols; inv_freq_sq = inv; plan = Plan.create ~rows ~cols }

let rows t = t.rows

let cols t = t.cols

(* In-kernel finiteness probe (sampled, so O(1)-ish per solve): a NaN
   entering through the density field or produced inside the DCT pair
   should be attributed to *this* kernel, not discovered iterations later
   by the gradient-level guard in Globalplace. Observation-only — the
   guard there still owns recovery. *)
let probe obs ~what a =
  if Obs.Ctx.enabled obs && not (Util.Guard.sampled_finite a) then begin
    Obs.Ctx.count obs ("guard.numerics." ^ what ^ "_nonfinite");
    Obs.Log.warn "[poisson] non-finite %s detected in spectral solve" what
  end

(** Potential psi from charge density rho (row-major [rows*cols]) into a
    caller-owned buffer. [rho == psi] is allowed. The plan path fuses
    forward transform, mode scale and inverse transform; it allocates
    nothing in steady state on a single domain. *)
let solve_into ?(obs = Obs.Ctx.null) t ~rho ~psi =
  assert (Array.length rho = t.rows * t.cols);
  assert (Array.length psi = t.rows * t.cols);
  probe obs ~what:"density" rho;
  if !use_seed_engine then begin
    let coeffs = Dct.dct2_2d rho ~rows:t.rows ~cols:t.cols in
    Util.Parallel.for_ ~name:"poisson.scale" (t.rows * t.cols) (fun i ->
        coeffs.(i) <- coeffs.(i) *. t.inv_freq_sq.(i));
    let out = Dct.idct2_2d coeffs ~rows:t.rows ~cols:t.cols in
    Array.blit out 0 psi 0 (t.rows * t.cols)
  end
  else Plan.apply_filter t.plan ~scale:t.inv_freq_sq ~src:rho ~dst:psi;
  probe obs ~what:"psi" psi

(** Allocating wrapper over {!solve_into}. *)
let solve ?obs t rho =
  let psi = Array.make (t.rows * t.cols) 0.0 in
  solve_into ?obs t ~rho ~psi;
  psi

(* Field rows [lo, hi): closure-free central differences so the
   sequential path stays allocation-free. *)
let field_seg rows cols (psi : float array) (ex : float array) (ey : float array) lo hi =
  for r = lo to hi - 1 do
    let base = r * cols in
    let up = (if r = 0 then 0 else r - 1) * cols in
    let dn = (if r = rows - 1 then rows - 1 else r + 1) * cols in
    let dy_scale = if r = 0 || r = rows - 1 then 1.0 else 0.5 in
    for c = 0 to cols - 1 do
      let dpsi_dx =
        if c = 0 then psi.(base + 1) -. psi.(base)
        else if c = cols - 1 then psi.(base + c) -. psi.(base + c - 1)
        else (psi.(base + c + 1) -. psi.(base + c - 1)) /. 2.0
      in
      let dpsi_dy = (psi.(dn + c) -. psi.(up + c)) *. dy_scale in
      ex.(base + c) <- -.dpsi_dx;
      ey.(base + c) <- -.dpsi_dy
    done
  done

(** Electric field (ex, ey) = -grad(psi) into caller-owned buffers,
    central differences in grid units, one-sided at the boundary. [ex]
    varies along columns (x), [ey] along rows (y). *)
let field_into t ~psi ~ex ~ey =
  let rows = t.rows and cols = t.cols in
  assert (Array.length psi = rows * cols);
  assert (Array.length ex = rows * cols && Array.length ey = rows * cols);
  if !Util.Parallel.num_domains <= 1 && not (Util.Parallel.instrumented ()) then
    field_seg rows cols psi ex ey 0 rows
  else
    Util.Parallel.for_chunks ~grain:16 ~name:"poisson.field" ~n:rows (fun ~chunk:_ ~lo ~hi ->
        field_seg rows cols psi ex ey lo hi)

(** Allocating wrapper over {!field_into}. *)
let field t psi =
  let ex = Array.make (t.rows * t.cols) 0.0 and ey = Array.make (t.rows * t.cols) 0.0 in
  field_into t ~psi ~ex ~ey;
  (ex, ey)

(* Sequential energy accumulator: a module-level float-array cell instead
   of a [ref] (float refs box on every store without flambda). [energy]
   is only invoked from the orchestrating domain, never inside a kernel
   body, so a single cell is safe. *)
let energy_acc = Array.make 1 0.0

(** System energy 0.5 * sum(rho * psi); the ePlace density penalty.
    Deterministic chunked reduction (see [Util.Parallel.sum]); the
    sequential path folds left-to-right exactly like [Parallel.sum] at
    one domain, so results are bitwise-identical to the seed. *)
let energy rho psi =
  if !Util.Parallel.num_domains <= 1 then begin
    let n = Array.length rho in
    energy_acc.(0) <- 0.0;
    for i = 0 to n - 1 do
      energy_acc.(0) <- energy_acc.(0) +. (rho.(i) *. psi.(i))
    done;
    0.5 *. energy_acc.(0)
  end
  else
    0.5
    *. Util.Parallel.sum ~name:"poisson.energy" (Array.length rho) (fun i -> rho.(i) *. psi.(i))
