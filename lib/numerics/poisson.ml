(** Spectral Poisson solver on a regular grid with Neumann boundaries.

    Solves  laplacian(psi) = -rho  in the cosine basis, as in ePlace:
    the density grid is transformed with a 2D DCT, each mode is scaled by
    1 / (wu^2 + wv^2), and the inverse transform yields the potential.
    The DC mode is dropped, which is equivalent to neutralising the total
    charge (ePlace's implicit assumption at the density target). *)

type t = {
  rows : int;
  cols : int;
  (* Precomputed 1 / (wu^2 + wv^2), DC term 0. *)
  inv_freq_sq : float array;
}

let create ~rows ~cols =
  Fft.check_size rows;
  Fft.check_size cols;
  let inv = Array.make (rows * cols) 0.0 in
  (* Eigenvalues of the discrete 5-point Laplacian with Neumann BC for
     cosine modes: -(2 - 2 cos wu) - (2 - 2 cos wv). Using the discrete
     spectrum (rather than wu^2 + wv^2) makes [solve] the exact inverse of
     the finite-difference Laplacian, which the tests verify. *)
  for u = 0 to rows - 1 do
    let wu = Float.pi *. float_of_int u /. float_of_int rows in
    for v = 0 to cols - 1 do
      let wv = Float.pi *. float_of_int v /. float_of_int cols in
      let s = (2.0 -. (2.0 *. cos wu)) +. (2.0 -. (2.0 *. cos wv)) in
      inv.((u * cols) + v) <- (if s = 0.0 then 0.0 else 1.0 /. s)
    done
  done;
  { rows; cols; inv_freq_sq = inv }

(* In-kernel finiteness probe (sampled, so O(1)-ish per solve): a NaN
   entering through the density field or produced inside the DCT pair
   should be attributed to *this* kernel, not discovered iterations later
   by the gradient-level guard in Globalplace. Observation-only — the
   guard there still owns recovery. *)
let probe obs ~what a =
  if Obs.Ctx.enabled obs && not (Util.Guard.sampled_finite a) then begin
    Obs.Ctx.count obs ("guard.numerics." ^ what ^ "_nonfinite");
    Obs.Log.warn "[poisson] non-finite %s detected in spectral solve" what
  end

(** Potential psi from charge density rho (row-major [rows*cols]).
    [Dct.idct2_2d] inverts [Dct.dct2_2d] exactly, so no extra
    normalisation is needed here. *)
let solve ?(obs = Obs.Ctx.null) t rho =
  assert (Array.length rho = t.rows * t.cols);
  probe obs ~what:"density" rho;
  let coeffs = Dct.dct2_2d rho ~rows:t.rows ~cols:t.cols in
  Util.Parallel.for_ ~name:"poisson.scale" (t.rows * t.cols) (fun i ->
      coeffs.(i) <- coeffs.(i) *. t.inv_freq_sq.(i));
  let psi = Dct.idct2_2d coeffs ~rows:t.rows ~cols:t.cols in
  probe obs ~what:"psi" psi;
  psi

(** Electric field (ex, ey) = -grad(psi), central differences in grid
    units, one-sided at the boundary. [ex] varies along columns (x),
    [ey] along rows (y). *)
let field t psi =
  let rows = t.rows and cols = t.cols in
  let ex = Array.make (rows * cols) 0.0 and ey = Array.make (rows * cols) 0.0 in
  let at r c = psi.((r * cols) + c) in
  (* Each grid point only reads psi and writes its own slot: parallel
     over rows. *)
  Util.Parallel.for_ ~grain:16 ~name:"poisson.field" rows (fun r ->
      for c = 0 to cols - 1 do
        let dpsi_dx =
          if c = 0 then at r 1 -. at r 0
          else if c = cols - 1 then at r (cols - 1) -. at r (cols - 2)
          else (at r (c + 1) -. at r (c - 1)) /. 2.0
        in
        let dpsi_dy =
          if r = 0 then at 1 c -. at 0 c
          else if r = rows - 1 then at (rows - 1) c -. at (rows - 2) c
          else (at (r + 1) c -. at (r - 1) c) /. 2.0
        in
        ex.((r * cols) + c) <- -.dpsi_dx;
        ey.((r * cols) + c) <- -.dpsi_dy
      done);
  (ex, ey)

(** System energy 0.5 * sum(rho * psi); the ePlace density penalty.
    Deterministic chunked reduction (see [Util.Parallel.sum]). *)
let energy rho psi =
  0.5 *. Util.Parallel.sum ~name:"poisson.energy" (Array.length rho) (fun i -> rho.(i) *. psi.(i))
