(** Plan-based real-even spectral engine (the Zhang-Sapatnekar rebuild of
    the electrostatics transforms).

    A plan precomputes, once per grid shape, everything the per-iteration
    hot loop would otherwise recompute or reallocate:

    - bit-reversal permutations and per-stage twiddle tables for the
      complex FFT of each line length (no trig and no [ref] cells in the
      butterflies, so the transform allocates nothing);
    - the Makhoul even/odd interleave permutation and the quarter-wave
      cosine/sine tables that turn an N-point complex FFT into a length-N
      DCT-II / DCT-III (the seed path used a length-2N complex FFT per
      line);
    - per-domain scratch buffers so line batches fan out across
      [Util.Parallel] without touching the allocator.

    Two real lines are packed into one complex FFT (line A in the real
    lane, line B in the imaginary lane) and separated afterwards through
    conjugate symmetry, so a 2D pass costs one N-point complex FFT per
    *pair* of lines — a ~4x arithmetic reduction over the seed
    one-2N-FFT-per-line scheme before counting the removed trig calls and
    allocations.

    Steady-state calls perform zero minor-heap allocation: with one
    domain and no parallel instrumentation installed the passes run as
    direct static calls (not even a closure is built); with more domains
    the only per-call allocation is the dispatch closures handed to
    [Util.Parallel].

    Numerical note: results agree with the seed [Dct] path only to
    rounding (different FFT lengths and twiddle evaluation associate the
    floating-point work differently). The [Oracle.Ref_numerics]
    differential gates bound the difference against direct summation. *)

(* ------------------------------------------------------------------ *)
(* Per-line-length tables.                                             *)

type line = {
  n : int;
  log2n : int;
  brev : int array; (* bit-reversal permutation, brev.(i) < n *)
  (* Forward butterfly twiddles e^{-2 pi i k / len}, all stages flattened:
     the stage with half-block size h occupies [h-1, 2h-2). Inverse
     transforms negate the imaginary part. *)
  twr : float array;
  twi : float array;
  (* Makhoul interleave: v.(i) = x.(mperm.(i)) packs the even-index
     samples first, odd-index samples reversed in the back half. *)
  mperm : int array;
  (* Quarter-wave factors cos/sin (pi k / 2n). *)
  ck : float array;
  sk : float array;
}

let make_line n =
  Fft.check_size n;
  let log2n =
    let rec go acc m = if m = 1 then acc else go (acc + 1) (m lsr 1) in
    go 0 n
  in
  let brev = Array.make n 0 in
  for i = 0 to n - 1 do
    let j = ref 0 in
    for b = 0 to log2n - 1 do
      if i land (1 lsl b) <> 0 then j := !j lor (1 lsl (log2n - 1 - b))
    done;
    brev.(i) <- !j
  done;
  let tw_len = max 1 (n - 1) in
  let twr = Array.make tw_len 1.0 and twi = Array.make tw_len 0.0 in
  for st = 0 to log2n - 1 do
    let half = 1 lsl st in
    let len = half * 2 in
    for k = 0 to half - 1 do
      let theta = -2.0 *. Float.pi *. float_of_int k /. float_of_int len in
      twr.(half - 1 + k) <- cos theta;
      twi.(half - 1 + k) <- sin theta
    done
  done;
  let mperm = Array.make n 0 in
  for i = 0 to (n / 2) - 1 do
    mperm.(i) <- 2 * i;
    mperm.(n - 1 - i) <- (2 * i) + 1
  done;
  let ck = Array.init n (fun k -> cos (Float.pi *. float_of_int k /. (2.0 *. float_of_int n))) in
  let sk = Array.init n (fun k -> sin (Float.pi *. float_of_int k /. (2.0 *. float_of_int n))) in
  { n; log2n; brev; twr; twi; mperm; ck; sk }

(* In-place complex FFT over the line's tables. [wsign] is +1.0 for the
   forward transform, -1.0 for the (unnormalised) inverse — the DCT-III
   path folds the 1/n into its pre-twiddle instead. Free of refs,
   closures and trig: nothing here allocates. *)
let fft_core (ln : line) (re : float array) (im : float array) ~wsign =
  let n = ln.n in
  let brev = ln.brev in
  for i = 0 to n - 1 do
    let j = brev.(i) in
    if i < j then begin
      let tr = re.(i) in
      re.(i) <- re.(j);
      re.(j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(j);
      im.(j) <- ti
    end
  done;
  let twr = ln.twr and twi = ln.twi in
  for st = 0 to ln.log2n - 1 do
    let half = 1 lsl st in
    let len = half * 2 in
    let off = half - 1 in
    let nblk = n lsr (st + 1) in
    for blk = 0 to nblk - 1 do
      let base = blk * len in
      for k = 0 to half - 1 do
        let wr = twr.(off + k) in
        let wi = wsign *. twi.(off + k) in
        let a = base + k in
        let b = a + half in
        let br = re.(b) and bi = im.(b) in
        let tr = (br *. wr) -. (bi *. wi) in
        let ti = (br *. wi) +. (bi *. wr) in
        let ar = re.(a) and ai = im.(a) in
        re.(b) <- ar -. tr;
        im.(b) <- ai -. ti;
        re.(a) <- ar +. tr;
        im.(a) <- ai +. ti
      done
    done
  done

(* ---- packed-pair DCT-II (forward) ----

   Lines A and B (strided views) are Makhoul-permuted into the real and
   imaginary lanes of one complex buffer; after one forward FFT the two
   spectra are separated by conjugate symmetry and the quarter-wave
   twiddle projects out the DCT-II coefficients:
     X_k = Re(e^{-i pi k / 2n} V_k)
   with V the FFT of the permuted line. *)

let load_packed (ln : line) zre zim (a : float array) offa stra (b : float array) offb strb =
  let mperm = ln.mperm in
  for i = 0 to ln.n - 1 do
    let s = mperm.(i) in
    zre.(i) <- a.(offa + (s * stra));
    zim.(i) <- b.(offb + (s * strb))
  done

let load_single (ln : line) zre zim (a : float array) offa stra =
  let mperm = ln.mperm in
  for i = 0 to ln.n - 1 do
    zre.(i) <- a.(offa + (mperm.(i) * stra));
    zim.(i) <- 0.0
  done

(* Unpack + quarter-wave twiddle into two strided outputs. *)
let dct_post (ln : line) zre zim (da : float array) doffa dstra (db : float array) doffb dstrb =
  let n = ln.n in
  let mask = n - 1 in
  let ck = ln.ck and sk = ln.sk in
  for k = 0 to n - 1 do
    let k' = (n - k) land mask in
    let pr = zre.(k) and pq = zre.(k') in
    let ir = zim.(k) and iq = zim.(k') in
    let var = 0.5 *. (pr +. pq) and vai = 0.5 *. (ir -. iq) in
    let vbr = 0.5 *. (ir +. iq) and vbi = 0.5 *. (pq -. pr) in
    let c = ck.(k) and s = sk.(k) in
    da.(doffa + (k * dstra)) <- (c *. var) +. (s *. vai);
    db.(doffb + (k * dstrb)) <- (c *. vbr) +. (s *. vbi)
  done

(* Same, additionally multiplying coefficient k by strided per-mode
   factors — the Poisson mode scale fused into the unpack loop. *)
let dct_post_scaled (ln : line) zre zim (scale : float array) ioffa istr ioffb
    (da : float array) (db : float array) =
  let n = ln.n in
  let mask = n - 1 in
  let ck = ln.ck and sk = ln.sk in
  for k = 0 to n - 1 do
    let k' = (n - k) land mask in
    let pr = zre.(k) and pq = zre.(k') in
    let ir = zim.(k) and iq = zim.(k') in
    let var = 0.5 *. (pr +. pq) and vai = 0.5 *. (ir -. iq) in
    let vbr = 0.5 *. (ir +. iq) and vbi = 0.5 *. (pq -. pr) in
    let c = ck.(k) and s = sk.(k) in
    da.(k) <- ((c *. var) +. (s *. vai)) *. scale.(ioffa + (k * istr));
    db.(k) <- ((c *. vbr) +. (s *. vbi)) *. scale.(ioffb + (k * istr))
  done

(* ---- packed-pair DCT-III (inverse) ----

   Rebuild the two conjugate-symmetric spectra from the coefficients,
     V_k = e^{i pi k / 2n} (X_k - i X_{n-k})        (X_n := 0),
   pack them as Z = V_A + i V_B, run one inverse FFT (1/n folded into
   this pre-twiddle), and un-permute both real lanes. *)

let idct_pre (ln : line) zre zim (a : float array) offa stra (b : float array) offb strb =
  let n = ln.n in
  let inv_n = 1.0 /. float_of_int n in
  let ck = ln.ck and sk = ln.sk in
  zre.(0) <- inv_n *. a.(offa);
  zim.(0) <- inv_n *. b.(offb);
  for k = 1 to n - 1 do
    let xar = a.(offa + (k * stra)) and xaq = a.(offa + ((n - k) * stra)) in
    let xbr = b.(offb + (k * strb)) and xbq = b.(offb + ((n - k) * strb)) in
    let c = ck.(k) and s = sk.(k) in
    let var = (c *. xar) +. (s *. xaq) and vai = (s *. xar) -. (c *. xaq) in
    let vbr = (c *. xbr) +. (s *. xbq) and vbi = (s *. xbr) -. (c *. xbq) in
    zre.(k) <- inv_n *. (var -. vbi);
    zim.(k) <- inv_n *. (vai +. vbr)
  done

let store_packed (ln : line) zre zim (a : float array) offa stra (b : float array) offb strb =
  let mperm = ln.mperm in
  for i = 0 to ln.n - 1 do
    let s = mperm.(i) in
    a.(offa + (s * stra)) <- zre.(i);
    b.(offb + (s * strb)) <- zim.(i)
  done

let store_single (ln : line) zre (a : float array) offa stra =
  let mperm = ln.mperm in
  for i = 0 to ln.n - 1 do
    a.(offa + (mperm.(i) * stra)) <- zre.(i)
  done

(* ------------------------------------------------------------------ *)
(* 2D plans.                                                           *)

type scratch = {
  zre : float array; (* complex work buffer, length max(rows, cols) *)
  zim : float array;
  xa : float array; (* coefficient staging for the fused column pass *)
  xb : float array; (* also the discard sink for odd-count tails *)
}

type t = {
  rows : int;
  cols : int;
  row_line : line; (* lines of length [cols] *)
  col_line : line; (* lines of length [rows] *)
  zero : float array; (* read-only zero line, length max(rows, cols) *)
  mutable scratch : scratch array; (* one per parallel chunk, grown on demand *)
}

let rows t = t.rows

let cols t = t.cols

let make_scratch m = { zre = Array.make m 0.0; zim = Array.make m 0.0; xa = Array.make m 0.0; xb = Array.make m 0.0 }

let create ~rows ~cols =
  Fft.check_size rows;
  Fft.check_size cols;
  let m = max rows cols in
  {
    rows;
    cols;
    row_line = make_line cols;
    col_line = make_line rows;
    zero = Array.make m 0.0;
    scratch = [| make_scratch m |];
  }

(* Grow the per-chunk scratch set to the current chunk count. Allocates
   only when the domain count increased since the last call. *)
let ensure_scratch t k =
  if Array.length t.scratch < k then begin
    let m = max t.rows t.cols in
    let old = t.scratch in
    t.scratch <- Array.init k (fun i -> if i < Array.length old then old.(i) else make_scratch m)
  end;
  t.scratch

(* ---- row passes: pairs of adjacent rows, contiguous lines ---- *)

let row_fwd_seg t (src : float array) (dst : float array) lo hi (sc : scratch) =
  let ln = t.row_line in
  let cols = t.cols in
  for p = lo to hi - 1 do
    let r0 = 2 * p in
    if r0 + 1 < t.rows then begin
      load_packed ln sc.zre sc.zim src (r0 * cols) 1 src ((r0 + 1) * cols) 1;
      fft_core ln sc.zre sc.zim ~wsign:1.0;
      dct_post ln sc.zre sc.zim dst (r0 * cols) 1 dst ((r0 + 1) * cols) 1
    end
    else begin
      load_single ln sc.zre sc.zim src (r0 * cols) 1;
      fft_core ln sc.zre sc.zim ~wsign:1.0;
      dct_post ln sc.zre sc.zim dst (r0 * cols) 1 sc.xb 0 1
    end
  done

let row_inv_seg t (src : float array) (dst : float array) lo hi (sc : scratch) =
  let ln = t.row_line in
  let cols = t.cols in
  for p = lo to hi - 1 do
    let r0 = 2 * p in
    if r0 + 1 < t.rows then begin
      idct_pre ln sc.zre sc.zim src (r0 * cols) 1 src ((r0 + 1) * cols) 1;
      fft_core ln sc.zre sc.zim ~wsign:(-1.0);
      store_packed ln sc.zre sc.zim dst (r0 * cols) 1 dst ((r0 + 1) * cols) 1
    end
    else begin
      idct_pre ln sc.zre sc.zim src (r0 * cols) 1 t.zero 0 0;
      fft_core ln sc.zre sc.zim ~wsign:(-1.0);
      store_single ln sc.zre dst (r0 * cols) 1
    end
  done

(* ---- column passes: pairs of adjacent columns, stride = cols ---- *)

let col_fwd_seg t (buf : float array) lo hi (sc : scratch) =
  let ln = t.col_line in
  let cols = t.cols in
  for p = lo to hi - 1 do
    let c0 = 2 * p in
    if c0 + 1 < cols then begin
      load_packed ln sc.zre sc.zim buf c0 cols buf (c0 + 1) cols;
      fft_core ln sc.zre sc.zim ~wsign:1.0;
      dct_post ln sc.zre sc.zim buf c0 cols buf (c0 + 1) cols
    end
    else begin
      load_single ln sc.zre sc.zim buf c0 cols;
      fft_core ln sc.zre sc.zim ~wsign:1.0;
      dct_post ln sc.zre sc.zim buf c0 cols sc.xb 0 1
    end
  done

let col_inv_seg t (buf : float array) lo hi (sc : scratch) =
  let ln = t.col_line in
  let cols = t.cols in
  for p = lo to hi - 1 do
    let c0 = 2 * p in
    if c0 + 1 < cols then begin
      idct_pre ln sc.zre sc.zim buf c0 cols buf (c0 + 1) cols;
      fft_core ln sc.zre sc.zim ~wsign:(-1.0);
      store_packed ln sc.zre sc.zim buf c0 cols buf (c0 + 1) cols
    end
    else begin
      idct_pre ln sc.zre sc.zim buf c0 cols t.zero 0 0;
      fft_core ln sc.zre sc.zim ~wsign:(-1.0);
      store_single ln sc.zre buf c0 cols
    end
  done

(* Fused column pass of the Poisson solve: forward column DCT, per-mode
   scale, inverse column DCT — one gather/scatter per column pair instead
   of three separate sweeps over the grid. *)
let col_filter_seg t (scale : float array) (buf : float array) lo hi (sc : scratch) =
  let ln = t.col_line in
  let cols = t.cols in
  for p = lo to hi - 1 do
    let c0 = 2 * p in
    if c0 + 1 < cols then begin
      load_packed ln sc.zre sc.zim buf c0 cols buf (c0 + 1) cols;
      fft_core ln sc.zre sc.zim ~wsign:1.0;
      dct_post_scaled ln sc.zre sc.zim scale c0 cols (c0 + 1) sc.xa sc.xb;
      idct_pre ln sc.zre sc.zim sc.xa 0 1 sc.xb 0 1;
      fft_core ln sc.zre sc.zim ~wsign:(-1.0);
      store_packed ln sc.zre sc.zim buf c0 cols buf (c0 + 1) cols
    end
    else begin
      load_single ln sc.zre sc.zim buf c0 cols;
      fft_core ln sc.zre sc.zim ~wsign:1.0;
      (* Single column: the B lane is a discard; scale indices stay in
         range by reusing column c0's stride. *)
      dct_post_scaled ln sc.zre sc.zim scale c0 cols c0 sc.xa sc.xb;
      idct_pre ln sc.zre sc.zim sc.xa 0 1 t.zero 0 0;
      fft_core ln sc.zre sc.zim ~wsign:(-1.0);
      store_single ln sc.zre buf c0 cols
    end
  done

(* ------------------------------------------------------------------ *)
(* Pass drivers. The sequential un-instrumented case calls the segment
   functions directly — no closure is built, so a steady-state transform
   performs zero minor-heap allocation. Otherwise line pairs are batched
   through [Util.Parallel.for_chunks] with per-chunk scratch (the
   dispatch closures are the only per-call allocation). *)

let sequential () = !Util.Parallel.num_domains <= 1 && not (Util.Parallel.instrumented ())

let row_pairs t = (t.rows + 1) / 2

let col_pairs t = (t.cols + 1) / 2

let check_dims t src dst =
  if Array.length src <> t.rows * t.cols || Array.length dst <> t.rows * t.cols then
    invalid_arg "Numerics.Plan: array length does not match the planned grid"

let dct2_2d t ~src ~dst =
  check_dims t src dst;
  if sequential () then begin
    let sc = t.scratch.(0) in
    row_fwd_seg t src dst 0 (row_pairs t) sc;
    col_fwd_seg t dst 0 (col_pairs t) sc
  end
  else begin
    let scr = ensure_scratch t (Util.Parallel.chunk_count ~n:(row_pairs t)) in
    Util.Parallel.for_chunks ~grain:4 ~name:"dct.rows" ~n:(row_pairs t)
      (fun ~chunk ~lo ~hi -> row_fwd_seg t src dst lo hi scr.(chunk));
    Util.Parallel.for_chunks ~grain:4 ~name:"dct.cols" ~n:(col_pairs t)
      (fun ~chunk ~lo ~hi -> col_fwd_seg t dst lo hi scr.(chunk))
  end

let idct2_2d t ~src ~dst =
  check_dims t src dst;
  if src != dst then Array.blit src 0 dst 0 (t.rows * t.cols);
  if sequential () then begin
    let sc = t.scratch.(0) in
    col_inv_seg t dst 0 (col_pairs t) sc;
    row_inv_seg t dst dst 0 (row_pairs t) sc
  end
  else begin
    let scr = ensure_scratch t (Util.Parallel.chunk_count ~n:(row_pairs t)) in
    Util.Parallel.for_chunks ~grain:4 ~name:"dct.cols" ~n:(col_pairs t)
      (fun ~chunk ~lo ~hi -> col_inv_seg t dst lo hi scr.(chunk));
    Util.Parallel.for_chunks ~grain:4 ~name:"dct.rows" ~n:(row_pairs t)
      (fun ~chunk ~lo ~hi -> row_inv_seg t dst dst lo hi scr.(chunk))
  end

let apply_filter t ~scale ~src ~dst =
  check_dims t src dst;
  if Array.length scale <> t.rows * t.cols then
    invalid_arg "Numerics.Plan: scale length does not match the planned grid";
  if sequential () then begin
    let sc = t.scratch.(0) in
    row_fwd_seg t src dst 0 (row_pairs t) sc;
    col_filter_seg t scale dst 0 (col_pairs t) sc;
    row_inv_seg t dst dst 0 (row_pairs t) sc
  end
  else begin
    let scr = ensure_scratch t (Util.Parallel.chunk_count ~n:(row_pairs t)) in
    Util.Parallel.for_chunks ~grain:4 ~name:"dct.rows" ~n:(row_pairs t)
      (fun ~chunk ~lo ~hi -> row_fwd_seg t src dst lo hi scr.(chunk));
    Util.Parallel.for_chunks ~grain:4 ~name:"poisson.filter" ~n:(col_pairs t)
      (fun ~chunk ~lo ~hi -> col_filter_seg t scale dst lo hi scr.(chunk));
    Util.Parallel.for_chunks ~grain:4 ~name:"dct.rows" ~n:(row_pairs t)
      (fun ~chunk ~lo ~hi -> row_inv_seg t dst dst lo hi scr.(chunk))
  end

(* ---- 1D pair entry points (tests and benches exercise the packing
   directly; lines have length [cols t]) ---- *)

let dct2_pair t ~a ~b ~xa ~xb =
  let n = t.cols in
  if Array.length a <> n || Array.length b <> n || Array.length xa <> n || Array.length xb <> n
  then invalid_arg "Numerics.Plan.dct2_pair: line length mismatch";
  let sc = t.scratch.(0) in
  load_packed t.row_line sc.zre sc.zim a 0 1 b 0 1;
  fft_core t.row_line sc.zre sc.zim ~wsign:1.0;
  dct_post t.row_line sc.zre sc.zim xa 0 1 xb 0 1

let idct2_pair t ~xa ~xb ~a ~b =
  let n = t.cols in
  if Array.length a <> n || Array.length b <> n || Array.length xa <> n || Array.length xb <> n
  then invalid_arg "Numerics.Plan.idct2_pair: line length mismatch";
  let sc = t.scratch.(0) in
  idct_pre t.row_line sc.zre sc.zim xa 0 1 xb 0 1;
  fft_core t.row_line sc.zre sc.zim ~wsign:(-1.0);
  store_packed t.row_line sc.zre sc.zim a 0 1 b 0 1
