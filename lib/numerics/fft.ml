(** Iterative radix-2 complex FFT on separate re/im float arrays.

    Sizes must be powers of two. This is the workhorse beneath the DCT used
    by the electrostatic Poisson solver; grids are small (<= 1024) so a
    straightforward Cooley-Tukey with precomputed twiddles is plenty. *)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let check_size n =
  if not (is_power_of_two n) then
    invalid_arg (Printf.sprintf "Fft: size must be a power of two, got %d" n)

(* Bit-reversal permutation, in place. *)
let bit_reverse re im n =
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

(* Core in-place transform; [sign] is -1 for forward, +1 for inverse. *)
let transform ~sign re im =
  let n = Array.length re in
  check_size n;
  assert (Array.length im = n);
  bit_reverse re im n;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = float_of_int sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wr = cos theta and wi = sin theta in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = 0 to half - 1 do
        let a = !i + k and b = !i + k + half in
        let tr = (re.(b) *. !cr) -. (im.(b) *. !ci) in
        let ti = (re.(b) *. !ci) +. (im.(b) *. !cr) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti;
        let ncr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := ncr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

(** In-place forward DFT. *)
let forward re im = transform ~sign:(-1) re im

(** In-place inverse DFT, including the 1/n normalisation. *)
let inverse re im =
  transform ~sign:1 re im;
  let n = Array.length re in
  let inv = 1.0 /. float_of_int n in
  for i = 0 to n - 1 do
    re.(i) <- re.(i) *. inv;
    im.(i) <- im.(i) *. inv
  done
