(** DCT-II and its exact inverse via a length-2N FFT (Makhoul's even
    extension), plus separable 2D transforms on row-major grids.

    Convention (un-normalised forward):
      [dct2 x].(k) = sum_n x.(n) * cos(pi k (2n+1) / 2N)
    [idct2] reconstructs the input of [dct2] exactly. Lengths must be
    powers of two. *)

val dct2 : float array -> float array

val idct2 : float array -> float array

(** 2D DCT-II, rows then columns, on a row-major [rows*cols] grid. *)
val dct2_2d : float array -> rows:int -> cols:int -> float array

(** Exact inverse of {!dct2_2d}. *)
val idct2_2d : float array -> rows:int -> cols:int -> float array
