(** Plan-based real-even spectral engine.

    A plan is created once per grid shape and reused across solves: it
    precomputes bit-reversal permutations, per-stage FFT twiddles, the
    Makhoul interleave permutation and quarter-wave cosine tables for
    both line lengths, and owns per-domain scratch buffers. Two real
    lines are packed into one complex FFT (Makhoul's N-point DCT via the
    even/odd interleave), so a 2D DCT costs one N-point complex FFT per
    *pair* of lines instead of the seed path's one 2N-point FFT per
    line.

    Steady-state transforms over an existing plan perform zero
    minor-heap allocation when running on a single domain without
    parallel instrumentation; under multiple domains the only per-call
    allocation is the dispatch closures handed to [Util.Parallel]
    (named [dct.rows] / [dct.cols] / [poisson.filter], so [par.*]
    metrics stay alive).

    Results agree with the seed [Dct] path only to rounding — the
    [Oracle.Ref_numerics] differential gates bound both engines against
    direct summation. *)

type t

(** [create ~rows ~cols] builds a plan for row-major [rows*cols] grids.
    Both dimensions must be powers of two (raises [Invalid_argument]
    otherwise, naming the offending size). *)
val create : rows:int -> cols:int -> t

val rows : t -> int

val cols : t -> int

(** 2D DCT-II of [src] into [dst] (both row-major [rows*cols]; [src] is
    not modified unless [src == dst], which is allowed). *)
val dct2_2d : t -> src:float array -> dst:float array -> unit

(** 2D DCT-III (exact inverse of {!dct2_2d}) of [src] into [dst];
    [src == dst] is allowed. *)
val idct2_2d : t -> src:float array -> dst:float array -> unit

(** [apply_filter t ~scale ~src ~dst] computes
    [dst = IDCT2(scale .* DCT2(src))] with the per-mode multiply fused
    into the column pass — the whole Poisson solve in three sweeps with
    no intermediate coefficient grid. [scale] is row-major [rows*cols];
    [src == dst] is allowed. *)
val apply_filter : t -> scale:float array -> src:float array -> dst:float array -> unit

(** {2 1D packed-pair entry points}

    Direct access to the two-lines-per-FFT packing over lines of length
    [cols t] — exercised by the differential tests and the bench. *)

(** DCT-II of lines [a] and [b] into [xa] and [xb] (all length
    [cols t]). *)
val dct2_pair : t -> a:float array -> b:float array -> xa:float array -> xb:float array -> unit

(** DCT-III (inverse of {!dct2_pair}) of [xa]/[xb] into [a]/[b]. *)
val idct2_pair : t -> xa:float array -> xb:float array -> a:float array -> b:float array -> unit
