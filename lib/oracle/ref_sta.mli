(** From-scratch reference static timing: memoized recursive DFS over the
    timing graph (no levelization, no domains, no scratch reuse) reading
    the graph's current arc delays. The oracle for
    [Sta.Propagate.update]'s levelized parallel sweeps, and — combined
    with a fresh production re-time — for [Sta.Timer.update_moved].

    Max/min over identical candidate expressions are exact, so every
    value here must equal the production value bit-for-bit. *)

(** Arrival times by backward recursion: startpoints seed
    [start_arrival], non-startpoint sources stay -inf, everything else is
    the max over in-arcs. *)
val arrivals : Sta.Graph.t -> float array

(** Required times by forward recursion: endpoints seed [end_required],
    sinks with no out-arcs stay +inf, everything else is the min over
    out-arcs. *)
val required : Sta.Graph.t -> float array

(** Slack per pin: req - arr where both are finite, +inf otherwise. *)
val slacks : Sta.Graph.t -> float array

(** Worst negative endpoint slack (0 when met). *)
val wns : Sta.Graph.t -> slack:float array -> float

(** Sum of negative endpoint slacks. *)
val tns : Sta.Graph.t -> slack:float array -> float

(** Compare a production propagation state against this reference:
    arrivals, required times, slacks element-wise exact, plus WNS/TNS. *)
val check_against : Sta.Propagate.t -> Sta.Graph.t -> (unit, string) result

(** Differential gate for incremental timing: compare the [timer]'s
    current state against a freshly built, fully re-timed timer on the
    same design and [topology] (default Steiner, matching
    [Sta.Timer.create]) — exact equality of arrivals, slacks, WNS, TNS. *)
val check_incremental : ?topology:Sta.Delay.topology -> Sta.Timer.t -> (unit, string) result

(** Differential gate for ECO *sequences* (the warm-start correctness
    anchor for the daemon's [replace]): one warm timer carried across
    [steps] random deltas — [cells_per_step] small displacements per
    step, with every third step retargeting the clock through
    [Sta.Timer.set_clock] instead — checking {!check_incremental}
    (bit-exact agreement with a fresh full re-time) after each step, so
    later steps re-time on top of incrementally produced state.
    Deterministic in [seed]. *)
val check_eco_sequence :
  ?topology:Sta.Delay.topology ->
  ?steps:int ->
  ?cells_per_step:int ->
  ?seed:int ->
  Netlist.Design.t ->
  (unit, string) result
