(** Tolerance and comparison helpers shared by every differential
    harness in [lib/oracle]. All checks return [Ok ()] or [Error msg]
    with the first mismatch localised, so suites can chain them and fuzz
    counterexamples carry a readable reason. *)

(** [float_eq ~rtol ~atol a b]: equal bit patterns, or within
    [atol + rtol * max(|a|,|b|)]. Infinities compare equal to themselves;
    NaN never compares equal. Defaults: rtol 1e-9, atol 0. *)
val float_eq : ?rtol:float -> ?atol:float -> float -> float -> bool

val check_float : ?rtol:float -> ?atol:float -> what:string -> float -> float -> (unit, string) result

(** Element-wise {!check_float} plus a length check; the error names the
    first offending index. *)
val check_array :
  ?rtol:float -> ?atol:float -> what:string -> float array -> float array -> (unit, string) result

(** Exact equality ([=] on floats: infinities equal, -0.0 = 0.0, NaN
    rejected) — the gate for kernels whose parallel and sequential forms
    must agree bit-for-bit. *)
val check_array_exact : what:string -> float array -> float array -> (unit, string) result

val check_int : what:string -> int -> int -> (unit, string) result

val check_bool : what:string -> bool -> (unit, string) result

(** Two paths are identical: same endpoint, pins, arcs, and (to 1e-9
    relative) arrival/slack. *)
val check_path : what:string -> Sta.Paths.path -> Sta.Paths.path -> (unit, string) result

(** Element-wise {!check_path} plus a length check. *)
val check_paths :
  what:string -> Sta.Paths.path list -> Sta.Paths.path list -> (unit, string) result

(** Run checks left to right, stopping at the first [Error]. *)
val all : (unit, string) result list -> (unit, string) result

(** [let*] syntax for chaining checks. *)
val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
