(** Exhaustive reference path enumeration — the ground truth for
    [Sta.Paths.k_worst] and for both extraction commands of
    [Sta.Report]. Plain backward DFS over in-arcs, no pruning, no
    implicit representation; exponential in the worst case and guarded by
    [cap]. *)

exception Too_many_paths

(** Every complete startpoint-to-[endpoint] path, worst first in the
    production total order ([Sta.Paths.compare_worst]). Raises
    {!Too_many_paths} past [cap] (default 200_000) enumerated paths. *)
val all_paths : ?cap:int -> Sta.Graph.t -> endpoint:int -> Sta.Paths.path list

(** Prefix of {!all_paths} — what [Sta.Paths.k_worst] must return. *)
val k_worst : ?cap:int -> Sta.Graph.t -> endpoint:int -> k:int -> Sta.Paths.path list

(** All endpoints ordered worst slack first, ties by pin id, from the
    caller's slack array — the reference endpoint ranking. *)
val endpoints_by_slack : Sta.Graph.t -> slack:float array -> int list

(** Endpoints with finite negative slack, same order. *)
val failing_endpoints : Sta.Graph.t -> slack:float array -> int list

(** Reference [report_timing_endpoint]: the [k] worst paths of each of
    the [n] worst endpoints, endpoint-major, exhaustively enumerated. *)
val report_timing_endpoint :
  ?cap:int ->
  ?failing_only:bool ->
  Sta.Graph.t ->
  slack:float array ->
  n:int ->
  k:int ->
  Sta.Paths.path list

(** Reference pooled [report_timing]: up to [n] paths from each of the
    [n] worst endpoints, globally worst [n] in
    [Sta.Paths.compare_by_slack] order. *)
val report_timing :
  ?cap:int -> ?failing_only:bool -> Sta.Graph.t -> slack:float array -> n:int -> Sta.Paths.path list
