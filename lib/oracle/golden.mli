(** Golden-regression harness: snapshot [Tdp.Flow.run] metrics for a
    fixed matrix of (design, method) cases into JSON files and compare
    later runs against them under a per-field tolerance policy (integers
    exact, floats to a small relative tolerance, runtimes ignored).
    Snapshots always run single-domain so the goldens are bit-stable
    regardless of the host. [bin/golden.exe] is the CLI over this. *)

type entry = {
  design : string; (* Workloads.Suite short name *)
  scale : float; (* suite scale factor *)
  method_ : Tdp.Flow.method_;
}

(** The committed matrix: two small suite designs, vanilla and the
    paper's flow. *)
val default_entries : entry list

(** Stable file stem of an entry, e.g. ["sb1-vanilla"]. *)
val entry_name : entry -> string

(** Run the flow for one entry (domains pinned to 1 for the duration) and
    return the comparable subset of the result as JSON: final and
    raw-GP metrics, curve length, extraction round count. *)
val snapshot : entry -> Obs.Json.t

(** Relative tolerance applied to float fields on [check] (1e-6). *)
val float_rtol : float

(** Structural comparison under the tolerance policy; [path] prefixes
    mismatch messages. Exposed for tests. *)
val compare_json : path:string -> golden:Obs.Json.t -> got:Obs.Json.t -> string list

(** Re-run every entry and diff against [dir]/<name>.json. [Ok] when all
    match; [Error] carries one message per mismatching field or missing
    file. *)
val check : dir:string -> entry list -> (unit, string list) result

(** Write (or overwrite) [dir]/<name>.json for every entry. Returns the
    files written. *)
val regen : dir:string -> entry list -> string list
