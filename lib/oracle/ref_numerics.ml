(** Direct-summation references for the spectral kernels (see the
    interface). Everything here is a plain double loop over the
    definition — no FFT, no recursion, no shared scratch. *)

let dct2_direct x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc :=
          !acc
          +. (x.(i)
              *. cos (Float.pi *. float_of_int k *. ((2.0 *. float_of_int i) +. 1.0)
                      /. (2.0 *. float_of_int n)))
      done;
      !acc)

let idct2_direct coeffs =
  let n = Array.length coeffs in
  Array.init n (fun i ->
      let acc = ref coeffs.(0) in
      for k = 1 to n - 1 do
        acc :=
          !acc
          +. (2.0 *. coeffs.(k)
              *. cos (Float.pi *. float_of_int k *. ((2.0 *. float_of_int i) +. 1.0)
                      /. (2.0 *. float_of_int n)))
      done;
      !acc /. float_of_int n)

let map_rows f grid ~rows ~cols =
  let out = Array.make (rows * cols) 0.0 in
  for r = 0 to rows - 1 do
    let t = f (Array.sub grid (r * cols) cols) in
    Array.blit t 0 out (r * cols) cols
  done;
  out

let map_cols f grid ~rows ~cols =
  let out = Array.make (rows * cols) 0.0 in
  for c = 0 to cols - 1 do
    let t = f (Array.init rows (fun r -> grid.((r * cols) + c))) in
    for r = 0 to rows - 1 do
      out.((r * cols) + c) <- t.(r)
    done
  done;
  out

let dct2_2d_direct grid ~rows ~cols =
  map_cols dct2_direct (map_rows dct2_direct grid ~rows ~cols) ~rows ~cols

let idct2_2d_direct grid ~rows ~cols =
  map_rows idct2_direct (map_cols idct2_direct grid ~rows ~cols) ~rows ~cols

let laplacian_neumann psi ~rows ~cols =
  let at r c = psi.((r * cols) + c) in
  Array.init (rows * cols) (fun i ->
      let r = i / cols and c = i mod cols in
      let acc = ref 0.0 in
      if r > 0 then acc := !acc +. (at (r - 1) c -. at r c);
      if r < rows - 1 then acc := !acc +. (at (r + 1) c -. at r c);
      if c > 0 then acc := !acc +. (at r (c - 1) -. at r c);
      if c < cols - 1 then acc := !acc +. (at r (c + 1) -. at r c);
      !acc)

let poisson_solve_direct rho ~rows ~cols =
  let coeffs = dct2_2d_direct rho ~rows ~cols in
  for u = 0 to rows - 1 do
    let wu = Float.pi *. float_of_int u /. float_of_int rows in
    for v = 0 to cols - 1 do
      let wv = Float.pi *. float_of_int v /. float_of_int cols in
      let s = (2.0 -. (2.0 *. cos wu)) +. (2.0 -. (2.0 *. cos wv)) in
      let i = (u * cols) + v in
      coeffs.(i) <- (if s = 0.0 then 0.0 else coeffs.(i) /. s)
    done
  done;
  idct2_2d_direct coeffs ~rows ~cols

let field_direct psi ~rows ~cols =
  let at r c = psi.((r * cols) + c) in
  let ex = Array.make (rows * cols) 0.0 and ey = Array.make (rows * cols) 0.0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let dpsi_dx =
        if c = 0 then at r 1 -. at r 0
        else if c = cols - 1 then at r (cols - 1) -. at r (cols - 2)
        else (at r (c + 1) -. at r (c - 1)) /. 2.0
      in
      let dpsi_dy =
        if r = 0 then at 1 c -. at 0 c
        else if r = rows - 1 then at (rows - 1) c -. at (rows - 2) c
        else (at (r + 1) c -. at (r - 1) c) /. 2.0
      in
      ex.((r * cols) + c) <- -.dpsi_dx;
      ey.((r * cols) + c) <- -.dpsi_dy
    done
  done;
  (ex, ey)

let energy_direct rho psi =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. psi.(i))) rho;
  0.5 *. !acc

let check_poisson_residual ?(atol = 1e-8) ~rho ~psi ~rows ~cols () =
  let n = rows * cols in
  let mean = Array.fold_left ( +. ) 0.0 rho /. float_of_int n in
  let scale =
    Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1.0 rho
  in
  let lap = laplacian_neumann psi ~rows ~cols in
  let bad = ref None in
  Array.iteri
    (fun i l ->
      let want = -.(rho.(i) -. mean) in
      if !bad = None && Float.abs (l -. want) > atol *. scale then bad := Some (i, l, want))
    lap;
  match !bad with
  | None -> Ok ()
  | Some (i, got, want) ->
      Error
        (Printf.sprintf "poisson residual at %d: laplacian %.12g, want %.12g (|rho|max %.3g)" i
           got want scale)

(* ---- differential gates for the packed real-even plan engine ----

   Each gate runs the production [Numerics.Plan] path on a fresh plan
   and compares against direct summation. Tolerances default looser than
   the seed-path gates: both the packed FFT and the O(N^2) reference
   accumulate rounding of order N*eps on coefficients with heavy
   cancellation, so an absolute floor is required. *)

let check_dct2_2d ?(rtol = 1e-9) ?(atol = 1e-7) grid ~rows ~cols =
  let plan = Numerics.Plan.create ~rows ~cols in
  let got = Array.make (rows * cols) 0.0 in
  Numerics.Plan.dct2_2d plan ~src:grid ~dst:got;
  Compare.check_array ~rtol ~atol
    ~what:(Printf.sprintf "plan.dct2_2d %dx%d" rows cols)
    got
    (dct2_2d_direct grid ~rows ~cols)

let check_idct2_2d ?(rtol = 1e-9) ?(atol = 1e-7) grid ~rows ~cols =
  let plan = Numerics.Plan.create ~rows ~cols in
  let got = Array.make (rows * cols) 0.0 in
  Numerics.Plan.idct2_2d plan ~src:grid ~dst:got;
  Compare.check_array ~rtol ~atol
    ~what:(Printf.sprintf "plan.idct2_2d %dx%d" rows cols)
    got
    (idct2_2d_direct grid ~rows ~cols)

let check_poisson_solve ?(rtol = 1e-9) ?(atol = 1e-7) rho ~rows ~cols =
  let p = Numerics.Poisson.create ~rows ~cols in
  let psi = Numerics.Poisson.solve p rho in
  Compare.all
    [
      Compare.check_array ~rtol ~atol
        ~what:(Printf.sprintf "plan.poisson_solve %dx%d" rows cols)
        psi
        (poisson_solve_direct rho ~rows ~cols);
      check_poisson_residual ~rho ~psi ~rows ~cols ();
    ]
