(** Seeded shrinking fuzzer: random generator parameters are drawn from a
    deterministic stream, the whole oracle battery runs on each generated
    design, and any failure is greedily shrunk to a minimal parameter set
    before being reported (and optionally dumped to disk for replay). *)

(** One property over a freshly generated design. [check] must be
    deterministic in the design (it may mutate the placement — every
    invocation receives its own [Workloads.Generate.generate] output).
    Exceptions escaping [check] count as failures. *)
type prop = { name : string; check : Netlist.Design.t -> (unit, string) result }

type failure = {
  prop_name : string;
  params : Workloads.Genparams.t; (* shrunk: regenerate + recheck to replay *)
  message : string; (* diagnostic of the shrunk counterexample *)
  dump : string option; (* design file written under [dump_dir], if any *)
}

val params_to_string : Workloads.Genparams.t -> string

(** Run [prop] on the design generated from the given parameters,
    converting escaped exceptions into [Error]. *)
val check_params : prop -> Workloads.Genparams.t -> (unit, string) result

(** Greedy shrink: repeatedly halve each size knob toward its floor (and
    zero the hub probability / macro count), keeping any candidate that
    still fails. Returns the minimised parameters and their failure
    message. [params] must currently fail [prop]. *)
val shrink : prop -> Workloads.Genparams.t -> Workloads.Genparams.t * string

(** The standard battery: full-STA differential, Elmore vs the naive
    walk, WA finite differences, density direct + mass, k-worst paths vs
    exhaustive DFS, and a random-walk incremental-STA differential. *)
val default_props : prop list

(** Format robustness: serialize the design to Bookshelf / LEF+DEF in a
    temp directory, corrupt one byte at a time (deterministic positions),
    and reparse. A clean parse, [Netlist.Io.Parse_error] and a structural
    [Invalid_design] are all acceptable outcomes; any other escaped
    exception fails the property. *)
val format_props : prop list

(** [run ~seed ~iters props] draws [iters] parameter sets from the seeded
    stream and checks every property on each. Failures come back shrunk;
    when [dump_dir] is given, each failure's design and parameters are
    also written there ([failure.dump] names the design file). *)
val run :
  ?dump_dir:string -> ?iters:int -> seed:int -> prop list -> failure list
