(** Metamorphic properties: relations that must hold between related
    inputs or between production outputs and independently recomputed
    aggregates, without any reference implementation of the full kernel.
    Each check returns [Ok ()] or a diagnostic [Error]. *)

(** Uniform translation of every cell leaves exact HPWL and the WA smooth
    wirelength unchanged. Restores the placement before returning. *)
val wirelength_translation :
  ?rtol:float -> Netlist.Design.t -> gamma:float -> dx:float -> dy:float -> (unit, string) result

(** WA bracketing: [0 <= WA <= HPWL] — the smooth objective underestimates
    the exact one (per net and hence globally, net weights positive). *)
val wa_bounds : Netlist.Design.t -> gamma:float -> (unit, string) result

(** The axis-transpose of a design: x and y swapped everywhere — die,
    cell sizes, pin offsets, placement. Shares the net structure with the
    original; the placement arrays are fresh. *)
val transpose_design : Netlist.Design.t -> Netlist.Design.t

(** Axis-swap invariance: exact HPWL and the WA smooth wirelength of
    {!transpose_design} must equal the original's, and the
    [bins] x [bins] density grids must be transposes of each other. *)
val transpose_consistent :
  ?rtol:float -> Netlist.Design.t -> gamma:float -> bins:int -> (unit, string) result

(** Total accumulated density equals the independently-clipped inflated
    area of the movable cells (computed against the die rectangle, not
    bin-by-bin). Call after [Gp.Densitygrid.update]. *)
val density_mass :
  ?rtol:float -> Netlist.Design.t -> Gp.Densitygrid.t -> (unit, string) result

(** Wire lengthening can only slow Elmore: scaling every tree edge by
    [lambda >= 1] must not decrease any sink delay, the total cap or the
    total wirelength. *)
val elmore_monotone :
  lambda:float ->
  Rctree.Steiner.t -> r:float -> c:float -> term_cap:(int -> float) -> (unit, string) result

(** WNS/TNS of an updated timer must equal the aggregates recomputed
    directly from its slack array: WNS = min(0, min endpoint slack), TNS =
    sum of negative finite endpoint slacks, and WNS <= 0, TNS <= 0,
    TNS <= WNS. *)
val tns_wns_consistent : Sta.Timer.t -> (unit, string) result

(** Eq. 9 accumulation: replays [paths] through an independent weight
    table (w0 on a pair's first path, += w1 * slack / wns on every further
    path; net arcs only) and compares it against the pair set [attract]
    holds after [Tdp.Pin_attract.update_from_paths] with the same
    arguments and no prior state. *)
val eq9_accumulation :
  ?rtol:float ->
  Sta.Graph.t ->
  Tdp.Pin_attract.t ->
  w0:float -> w1:float -> wns:float ->
  Sta.Paths.path list ->
  (unit, string) result
