(** Whole-tree-walk Elmore reference (see the interface). Deliberately
    naive: every edge's downstream capacitance is a fresh recursive walk
    of the entire subtree, every node's delay a fresh walk of its root
    path. Shares no traversal-order machinery with production. *)

type t = { total_cap : float; total_wirelen : float; sink_delay : float array }

let compute (tree : Rctree.Steiner.t) ~r ~c ~term_cap =
  let n = Rctree.Steiner.num_nodes tree in
  (* Load of node [v] itself: its terminal's cap, root terminal excluded. *)
  let own_cap v =
    let t = tree.Rctree.Steiner.terminal.(v) in
    if t > 0 then term_cap t else 0.0
  in
  (* Capacitance of the whole subtree rooted at [v], wire of the edge into
     [v] excluded (children found by scanning the parent array — O(n) per
     call, O(n^2) overall; the point is obviousness, not speed). *)
  let rec subtree_cap v =
    let acc = ref (own_cap v) in
    for w = 0 to n - 1 do
      if tree.Rctree.Steiner.parent.(w) = v then
        acc := !acc +. subtree_cap w +. (c *. tree.Rctree.Steiner.edge_len.(w))
    done;
    !acc
  in
  (* Elmore delay from the root to [v]: sum the per-edge terms along the
     root path, recomputing downstream cap from scratch at every edge. *)
  let rec delay_to v =
    if tree.Rctree.Steiner.parent.(v) < 0 then 0.0
    else begin
      let len = tree.Rctree.Steiner.edge_len.(v) in
      delay_to tree.Rctree.Steiner.parent.(v)
      +. (r *. len *. ((c *. len /. 2.0) +. subtree_cap v))
    end
  in
  let root =
    let rec find v = if tree.Rctree.Steiner.parent.(v) < 0 then v else find (v + 1) in
    find 0
  in
  let total_wirelen = ref 0.0 in
  for v = 0 to n - 1 do
    if tree.Rctree.Steiner.parent.(v) >= 0 then
      total_wirelen := !total_wirelen +. tree.Rctree.Steiner.edge_len.(v)
  done;
  {
    total_cap = subtree_cap root;
    total_wirelen = !total_wirelen;
    sink_delay = Array.init n delay_to;
  }

open Compare

let check ?(rtol = 1e-9) tree ~r ~c ~term_cap =
  let prod = Rctree.Elmore.compute tree ~r ~c ~term_cap in
  let naive = compute tree ~r ~c ~term_cap in
  let* () =
    check_float ~rtol ~what:"total_cap" prod.Rctree.Elmore.total_cap naive.total_cap
  in
  let* () =
    check_float ~rtol ~what:"total_wirelen" prod.Rctree.Elmore.total_wirelen naive.total_wirelen
  in
  check_array ~rtol ~atol:1e-12 ~what:"sink_delay" prod.Rctree.Elmore.sink_delay naive.sink_delay
