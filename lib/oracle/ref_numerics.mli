(** Direct-summation references for the spectral kernels: O(N^2) DCT
    pairs, the discrete Neumann Laplacian applied point-wise, a direct
    Poisson solve, and sequential field/energy — the oracles for
    [Numerics.Dct], [Numerics.Poisson] and the transformed fast paths
    built on them (the Zhang-Sapatnekar methodology: a fast transform is
    only trusted against direct summation). *)

(** Direct O(N^2) DCT-II: [X_k = sum_n x_n cos(pi k (2n+1) / 2N)]. Any
    length (no power-of-two restriction). *)
val dct2_direct : float array -> float array

(** Direct inverse of {!dct2_direct}:
    [x_n = (X_0 + 2 sum_(k>=1) X_k cos(pi k (2n+1) / 2N)) / N]. *)
val idct2_direct : float array -> float array

(** Separable 2D forms (rows then columns / columns then rows). *)
val dct2_2d_direct : float array -> rows:int -> cols:int -> float array

val idct2_2d_direct : float array -> rows:int -> cols:int -> float array

(** The discrete 5-point Laplacian with Neumann (mirror) boundaries that
    [Numerics.Poisson.solve] inverts: out-of-range neighbours contribute
    nothing. *)
val laplacian_neumann : float array -> rows:int -> cols:int -> float array

(** Direct Poisson solve: direct 2D DCT, per-mode scaling by
    1 / ((2-2cos wu) + (2-2cos wv)) with the DC mode dropped, direct
    inverse. *)
val poisson_solve_direct : float array -> rows:int -> cols:int -> float array

(** Sequential central-difference field (one-sided at the boundary),
    matching [Numerics.Poisson.field]'s convention. *)
val field_direct : float array -> rows:int -> cols:int -> float array * float array

(** Sequential [0.5 * sum rho*psi]. *)
val energy_direct : float array -> float array -> float

(** Residual gate: a solution [psi] of the spectral solver must satisfy
    laplacian(psi) = -(rho - mean rho) at every grid point, to an
    absolute tolerance scaled by the charge magnitude. *)
val check_poisson_residual :
  ?atol:float -> rho:float array -> psi:float array -> rows:int -> cols:int -> unit -> (unit, string) result

(** {2 Gates for the packed real-even plan engine}

    Each gate builds a fresh [Numerics.Plan] (or plan-backed
    [Numerics.Poisson]), runs the production packed path on the given
    row-major grid, and compares against direct summation. The absolute
    floor (default 1e-7) absorbs the O(N*eps) rounding both the packed
    FFT and the naive sum accumulate on cancelling coefficients. *)

val check_dct2_2d :
  ?rtol:float -> ?atol:float -> float array -> rows:int -> cols:int -> (unit, string) result

val check_idct2_2d :
  ?rtol:float -> ?atol:float -> float array -> rows:int -> cols:int -> (unit, string) result

(** Plan-backed [Numerics.Poisson.solve] vs {!poisson_solve_direct},
    plus the residual gate on the same solution. *)
val check_poisson_solve :
  ?rtol:float -> ?atol:float -> float array -> rows:int -> cols:int -> (unit, string) result
