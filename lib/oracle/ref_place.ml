(** Brute-force placement-objective references (see the interface). *)

open Netlist

let points_hpwl ~xs ~ys =
  let n = Array.length xs in
  if n <= 1 then 0.0
  else begin
    let xmin = ref xs.(0) and xmax = ref xs.(0) and ymin = ref ys.(0) and ymax = ref ys.(0) in
    for i = 1 to n - 1 do
      if xs.(i) < !xmin then xmin := xs.(i);
      if xs.(i) > !xmax then xmax := xs.(i);
      if ys.(i) < !ymin then ymin := ys.(i);
      if ys.(i) > !ymax then ymax := ys.(i)
    done;
    !xmax -. !xmin +. (!ymax -. !ymin)
  end

let points_hpwl_pairwise ~xs ~ys =
  let n = Array.length xs in
  if n <= 1 then 0.0
  else begin
    (* Width/height as the max absolute difference over all pairs. *)
    let w = ref 0.0 and h = ref 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if Float.abs (xs.(i) -. xs.(j)) > !w then w := Float.abs (xs.(i) -. xs.(j));
        if Float.abs (ys.(i) -. ys.(j)) > !h then h := Float.abs (ys.(i) -. ys.(j))
      done
    done;
    !w +. !h
  end

let net_points (d : Design.t) nid =
  let pids = Design.net_pins d nid in
  let xs = Array.map (fun pid -> Design.pin_x d pid) pids in
  let ys = Array.map (fun pid -> Design.pin_y d pid) pids in
  (xs, ys)

let hpwl_direct (d : Design.t) =
  let acc = ref 0.0 in
  for nid = 0 to Design.num_nets d - 1 do
    let xs, ys = net_points d nid in
    acc := !acc +. (d.net_weight.{nid} *. points_hpwl_pairwise ~xs ~ys)
  done;
  !acc

(* WA extent straight from the definition, shifted by max/min for
   stability (an independent derivation, not the production loop). *)
let wa_extent ~gamma coords =
  let n = Array.length coords in
  if n <= 1 then 0.0
  else begin
    let cmax = Array.fold_left Float.max Float.neg_infinity coords in
    let cmin = Array.fold_left Float.min Float.infinity coords in
    let num_max = ref 0.0 and den_max = ref 0.0 in
    let num_min = ref 0.0 and den_min = ref 0.0 in
    Array.iter
      (fun x ->
        let a = exp ((x -. cmax) /. gamma) in
        let b = exp ((cmin -. x) /. gamma) in
        num_max := !num_max +. (x *. a);
        den_max := !den_max +. a;
        num_min := !num_min +. (x *. b);
        den_min := !den_min +. b)
      coords;
    (!num_max /. !den_max) -. (!num_min /. !den_min)
  end

let wa_value (d : Design.t) ~gamma =
  let acc = ref 0.0 in
  for nid = 0 to Design.num_nets d - 1 do
    let xs, ys = net_points d nid in
    acc := !acc +. (d.net_weight.{nid} *. (wa_extent ~gamma xs +. wa_extent ~gamma ys))
  done;
  !acc

open Compare

(* Central finite difference of [value ()] w.r.t. one coordinate cell. *)
let fd_of (coord : Design.farr) cell ~h ~value =
  let saved = coord.{cell} in
  coord.{cell} <- saved +. h;
  let plus = value () in
  coord.{cell} <- saved -. h;
  let minus = value () in
  coord.{cell} <- saved;
  (plus -. minus) /. (2.0 *. h)

let fd_check_cells (d : Design.t) ~cells ~h ~rtol ~value ~gx ~gy ~what =
  let scale =
    (* Tolerance floor: FD noise is absolute in the value's magnitude. *)
    1e-6 *. (1.0 +. Float.abs (value ())) /. h
  in
  all
    (List.concat_map
       (fun cell ->
         let fx = fd_of d.x cell ~h ~value in
         let fy = fd_of d.y cell ~h ~value in
         [
           check_float ~rtol ~atol:(scale *. rtol) ~what:(Printf.sprintf "%s d/dx cell %d" what cell)
             gx.(cell) fx;
           check_float ~rtol ~atol:(scale *. rtol) ~what:(Printf.sprintf "%s d/dy cell %d" what cell)
             gy.(cell) fy;
         ])
       cells)

(* h = 0.05: small enough that the O(h^2/gamma^2) truncation sits well
   under rtol, large enough that the value difference dominates double
   roundoff on designs of this size. *)
let wa_fd_check ?(h = 0.05) ?(rtol = 1e-4) (d : Design.t) ~gamma ~cells =
  let nc = Design.num_cells d in
  let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
  ignore (Gp.Wirelength.wa_wirelength_grad d ~gamma ~gx ~gy);
  fd_check_cells d ~cells ~h ~rtol ~value:(fun () -> wa_value d ~gamma) ~gx ~gy ~what:"wa"

let pin_attract_fd_check ?(h = 0.25) ?(rtol = 1e-4) (d : Design.t) attract ~cells =
  let nc = Design.num_cells d in
  let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
  Tdp.Pin_attract.add_grad attract ~beta:1.0 ~gx ~gy;
  fd_check_cells d ~cells ~h ~rtol
    ~value:(fun () -> Tdp.Pin_attract.loss_value attract)
    ~gx ~gy ~what:"pin_attract"

(* Inflation rule restated from the ePlace smoothing definition: cells
   thinner than a bin stretch to bin size, density scaled to keep area. *)
let density_direct (d : Design.t) (grid : Gp.Densitygrid.t) =
  let bins_x = grid.Gp.Densitygrid.bins_x and bins_y = grid.Gp.Densitygrid.bins_y in
  let bin_w = grid.Gp.Densitygrid.bin_w and bin_h = grid.Gp.Densitygrid.bin_h in
  let die = grid.Gp.Densitygrid.die in
  let out = Array.make (bins_x * bins_y) 0.0 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      let cw = d.w.{id} and ch = d.h.{id} in
      let ew = Float.max cw bin_w and eh = Float.max ch bin_h in
      let scale = cw *. ch /. (ew *. eh) in
      let xl = d.x.{id} -. (ew /. 2.0) and xh = d.x.{id} +. (ew /. 2.0) in
      let yl = d.y.{id} -. (eh /. 2.0) and yh = d.y.{id} +. (eh /. 2.0) in
      for by = 0 to bins_y - 1 do
        for bx = 0 to bins_x - 1 do
          let b_xl = die.Geom.Rect.xl +. (float_of_int bx *. bin_w) in
          let b_yl = die.Geom.Rect.yl +. (float_of_int by *. bin_h) in
          let ox = Float.min xh (b_xl +. bin_w) -. Float.max xl b_xl in
          let oy = Float.min yh (b_yl +. bin_h) -. Float.max yl b_yl in
          if ox > 0.0 && oy > 0.0 then
            out.((by * bins_x) + bx) <- out.((by * bins_x) + bx) +. (ox *. oy *. scale)
        done
      done
    end
  done;
  out

let bilinear ~field ~bins_x ~bins_y ~die ~bin_w ~bin_h px py =
  let fx = ((px -. die.Geom.Rect.xl) /. bin_w) -. 0.5 in
  let fy = ((py -. die.Geom.Rect.yl) /. bin_h) -. 0.5 in
  let bx = int_of_float (floor fx) and by = int_of_float (floor fy) in
  let tx = fx -. float_of_int bx and ty = fy -. float_of_int by in
  let clampx v = max 0 (min (bins_x - 1) v) in
  let clampy v = max 0 (min (bins_y - 1) v) in
  let at bx by = field.((clampy by * bins_x) + clampx bx) in
  let v00 = at bx by and v10 = at (bx + 1) by and v01 = at bx (by + 1) and v11 = at (bx + 1) (by + 1) in
  ((v00 *. (1.0 -. tx)) +. (v10 *. tx)) *. (1.0 -. ty)
  +. (((v01 *. (1.0 -. tx)) +. (v11 *. tx)) *. ty)

let electro_grad_expected (e : Gp.Electro.t) (d : Design.t) =
  let g = e.Gp.Electro.grid in
  let bins_x = g.Gp.Densitygrid.bins_x and bins_y = g.Gp.Densitygrid.bins_y in
  let bin_w = g.Gp.Densitygrid.bin_w and bin_h = g.Gp.Densitygrid.bin_h in
  let die = g.Gp.Densitygrid.die in
  let nc = Design.num_cells d in
  let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
  for id = 0 to nc - 1 do
    if Design.is_movable d id then begin
      let q = d.w.{id} *. d.h.{id} in
      let fx =
        bilinear ~field:e.Gp.Electro.ex ~bins_x ~bins_y ~die ~bin_w ~bin_h d.x.{id} d.y.{id}
        /. bin_w
      in
      let fy =
        bilinear ~field:e.Gp.Electro.ey ~bins_x ~bins_y ~die ~bin_w ~bin_h d.x.{id} d.y.{id}
        /. bin_h
      in
      gx.(id) <- -.(q *. fx);
      gy.(id) <- -.(q *. fy)
    end
  done;
  (gx, gy)
