(** From-scratch reference static timing (see the interface). The
    recursions mirror [Sta.Propagate.update]'s per-pin combining
    expressions exactly — same candidates, same [>] / [<] updates — so
    agreement is expected to be bit-for-bit, not merely approximate. *)

let arrivals (graph : Sta.Graph.t) =
  let np = Sta.Graph.num_pins graph in
  let arr = Array.make np Float.neg_infinity in
  let visited = Array.make np false in
  let rec go p =
    if not visited.(p) then begin
      visited.(p) <- true;
      let a =
        ref
          (if graph.Sta.Graph.is_startpoint.(p) then graph.Sta.Graph.start_arrival.(p)
           else Float.neg_infinity)
      in
      for j = graph.Sta.Graph.in_start.(p) to graph.Sta.Graph.in_start.(p + 1) - 1 do
        let a_id = graph.Sta.Graph.in_arc.(j) in
        let u = graph.Sta.Graph.arc_from.(a_id) in
        go u;
        let cand = arr.(u) +. graph.Sta.Graph.arc_delay.(a_id) in
        if cand > !a then a := cand
      done;
      arr.(p) <- !a
    end
  in
  for p = 0 to np - 1 do
    go p
  done;
  arr

let required (graph : Sta.Graph.t) =
  let np = Sta.Graph.num_pins graph in
  let req = Array.make np Float.infinity in
  let visited = Array.make np false in
  let rec go p =
    if not visited.(p) then begin
      visited.(p) <- true;
      let r =
        ref
          (if graph.Sta.Graph.is_endpoint.(p) then graph.Sta.Graph.end_required.(p)
           else Float.infinity)
      in
      for j = graph.Sta.Graph.out_start.(p) to graph.Sta.Graph.out_start.(p + 1) - 1 do
        let a_id = graph.Sta.Graph.out_arc.(j) in
        let q = graph.Sta.Graph.arc_to.(a_id) in
        go q;
        let cand = req.(q) -. graph.Sta.Graph.arc_delay.(a_id) in
        if cand < !r then r := cand
      done;
      req.(p) <- !r
    end
  in
  for p = 0 to np - 1 do
    go p
  done;
  req

let slacks (graph : Sta.Graph.t) =
  let arr = arrivals graph and req = required graph in
  Array.init (Sta.Graph.num_pins graph) (fun p ->
      if Float.is_finite arr.(p) && Float.is_finite req.(p) then req.(p) -. arr.(p)
      else Float.infinity)

let wns (graph : Sta.Graph.t) ~slack =
  Array.fold_left
    (fun acc p ->
      let s = slack.(p) in
      if Float.is_finite s then Float.min acc s else acc)
    0.0 graph.Sta.Graph.endpoints
  |> Float.min 0.0

let tns (graph : Sta.Graph.t) ~slack =
  Array.fold_left
    (fun acc p ->
      let s = slack.(p) in
      if Float.is_finite s && s < 0.0 then acc +. s else acc)
    0.0 graph.Sta.Graph.endpoints

open Compare

let check_against (prop : Sta.Propagate.t) (graph : Sta.Graph.t) =
  let arr = arrivals graph in
  let req = required graph in
  let slack = slacks graph in
  let* () = check_array_exact ~what:"arrivals" prop.Sta.Propagate.arr arr in
  let* () = check_array_exact ~what:"required" prop.Sta.Propagate.req req in
  let* () = check_array_exact ~what:"slacks" prop.Sta.Propagate.slack slack in
  let* () = check_float ~rtol:0.0 ~what:"wns" (Sta.Propagate.wns prop graph) (wns graph ~slack) in
  check_float ~rtol:0.0 ~what:"tns" (Sta.Propagate.tns prop graph) (tns graph ~slack)

let check_incremental ?(topology = Sta.Delay.Steiner_tree) (timer : Sta.Timer.t) =
  let design = (Sta.Timer.graph timer).Sta.Graph.design in
  let fresh = Sta.Timer.create ~topology design in
  Sta.Timer.update fresh;
  let* () =
    check_array_exact ~what:"arrivals" (Sta.Timer.arrivals timer) (Sta.Timer.arrivals fresh)
  in
  let* () = check_array_exact ~what:"slacks" (Sta.Timer.slacks timer) (Sta.Timer.slacks fresh) in
  let* () = check_float ~rtol:0.0 ~what:"wns" (Sta.Timer.wns timer) (Sta.Timer.wns fresh) in
  check_float ~rtol:0.0 ~what:"tns" (Sta.Timer.tns timer) (Sta.Timer.tns fresh)

(* One warm timer carried across a whole sequence of random ECO deltas —
   the correctness anchor for the daemon's [replace] path, where the
   second and later deltas re-time on top of *incrementally produced*
   state, not on a fresh full update. Each step moves a few movable
   cells (occasionally retargeting the clock instead, exercising the
   [set_clock] boundary refresh) and compares the warm timer against a
   fresh fully-retimed one bit-for-bit. *)
let check_eco_sequence ?(topology = Sta.Delay.Steiner_tree) ?(steps = 6)
    ?(cells_per_step = 3) ?(seed = 1) (design : Netlist.Design.t) =
  let rng = Util.Rng.create seed in
  let timer = Sta.Timer.create ~topology design in
  Sta.Timer.update timer;
  let movable = Array.of_list (Netlist.Design.movable_ids design) in
  if Array.length movable = 0 then Error "check_eco_sequence: no movable cells"
  else begin
    let die = design.Netlist.Design.die in
    let span_x = die.Geom.Rect.xh -. die.Geom.Rect.xl in
    let span_y = die.Geom.Rect.yh -. die.Geom.Rect.yl in
    let step i =
      (* Every third step (after the first) retargets the clock by a few
         percent; the others displace random cells by up to 2% of the
         die span — the daemon's "small ECO delta" regime. *)
      if i > 0 && i mod 3 = 2 then begin
        Sta.Timer.set_clock timer
          (design.Netlist.Design.clock_period *. Util.Rng.float_range rng 0.95 1.05);
        (* [set_clock] leaves the timer stale; an empty incremental
           update exercises the documented stale fallback (full re-time)
           so the comparison below sees settled state. *)
        Sta.Timer.update_moved timer ~cells:[]
      end
      else begin
        let moved = ref [] in
        for _ = 1 to cells_per_step do
          let id = movable.(Util.Rng.int rng (Array.length movable)) in
          design.Netlist.Design.x.{id} <-
            design.Netlist.Design.x.{id} +. Util.Rng.float_range rng (-0.02 *. span_x) (0.02 *. span_x);
          design.Netlist.Design.y.{id} <-
            design.Netlist.Design.y.{id} +. Util.Rng.float_range rng (-0.02 *. span_y) (0.02 *. span_y);
          moved := id :: !moved
        done;
        Netlist.Design.clamp_movable design;
        Sta.Timer.update_moved timer ~cells:!moved
      end;
      match check_incremental ~topology timer with
      | Ok () -> Ok ()
      | Error e -> Error (Printf.sprintf "ECO step %d/%d: %s" (i + 1) steps e)
    in
    let rec go i = if i >= steps then Ok () else match step i with Ok () -> go (i + 1) | e -> e in
    go 0
  end
