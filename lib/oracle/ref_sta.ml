(** From-scratch reference static timing (see the interface). The
    recursions mirror [Sta.Propagate.update]'s per-pin combining
    expressions exactly — same candidates, same [>] / [<] updates — so
    agreement is expected to be bit-for-bit, not merely approximate. *)

let arrivals (graph : Sta.Graph.t) =
  let np = Sta.Graph.num_pins graph in
  let arr = Array.make np Float.neg_infinity in
  let visited = Array.make np false in
  let rec go p =
    if not visited.(p) then begin
      visited.(p) <- true;
      let a =
        ref
          (if graph.Sta.Graph.is_startpoint.(p) then graph.Sta.Graph.start_arrival.(p)
           else Float.neg_infinity)
      in
      for j = graph.Sta.Graph.in_start.(p) to graph.Sta.Graph.in_start.(p + 1) - 1 do
        let a_id = graph.Sta.Graph.in_arc.(j) in
        let u = graph.Sta.Graph.arc_from.(a_id) in
        go u;
        let cand = arr.(u) +. graph.Sta.Graph.arc_delay.(a_id) in
        if cand > !a then a := cand
      done;
      arr.(p) <- !a
    end
  in
  for p = 0 to np - 1 do
    go p
  done;
  arr

let required (graph : Sta.Graph.t) =
  let np = Sta.Graph.num_pins graph in
  let req = Array.make np Float.infinity in
  let visited = Array.make np false in
  let rec go p =
    if not visited.(p) then begin
      visited.(p) <- true;
      let r =
        ref
          (if graph.Sta.Graph.is_endpoint.(p) then graph.Sta.Graph.end_required.(p)
           else Float.infinity)
      in
      for j = graph.Sta.Graph.out_start.(p) to graph.Sta.Graph.out_start.(p + 1) - 1 do
        let a_id = graph.Sta.Graph.out_arc.(j) in
        let q = graph.Sta.Graph.arc_to.(a_id) in
        go q;
        let cand = req.(q) -. graph.Sta.Graph.arc_delay.(a_id) in
        if cand < !r then r := cand
      done;
      req.(p) <- !r
    end
  in
  for p = 0 to np - 1 do
    go p
  done;
  req

let slacks (graph : Sta.Graph.t) =
  let arr = arrivals graph and req = required graph in
  Array.init (Sta.Graph.num_pins graph) (fun p ->
      if Float.is_finite arr.(p) && Float.is_finite req.(p) then req.(p) -. arr.(p)
      else Float.infinity)

let wns (graph : Sta.Graph.t) ~slack =
  Array.fold_left
    (fun acc p ->
      let s = slack.(p) in
      if Float.is_finite s then Float.min acc s else acc)
    0.0 graph.Sta.Graph.endpoints
  |> Float.min 0.0

let tns (graph : Sta.Graph.t) ~slack =
  Array.fold_left
    (fun acc p ->
      let s = slack.(p) in
      if Float.is_finite s && s < 0.0 then acc +. s else acc)
    0.0 graph.Sta.Graph.endpoints

open Compare

let check_against (prop : Sta.Propagate.t) (graph : Sta.Graph.t) =
  let arr = arrivals graph in
  let req = required graph in
  let slack = slacks graph in
  let* () = check_array_exact ~what:"arrivals" prop.Sta.Propagate.arr arr in
  let* () = check_array_exact ~what:"required" prop.Sta.Propagate.req req in
  let* () = check_array_exact ~what:"slacks" prop.Sta.Propagate.slack slack in
  let* () = check_float ~rtol:0.0 ~what:"wns" (Sta.Propagate.wns prop graph) (wns graph ~slack) in
  check_float ~rtol:0.0 ~what:"tns" (Sta.Propagate.tns prop graph) (tns graph ~slack)

let check_incremental ?(topology = Sta.Delay.Steiner_tree) (timer : Sta.Timer.t) =
  let design = (Sta.Timer.graph timer).Sta.Graph.design in
  let fresh = Sta.Timer.create ~topology design in
  Sta.Timer.update fresh;
  let* () =
    check_array_exact ~what:"arrivals" (Sta.Timer.arrivals timer) (Sta.Timer.arrivals fresh)
  in
  let* () = check_array_exact ~what:"slacks" (Sta.Timer.slacks timer) (Sta.Timer.slacks fresh) in
  let* () = check_float ~rtol:0.0 ~what:"wns" (Sta.Timer.wns timer) (Sta.Timer.wns fresh) in
  check_float ~rtol:0.0 ~what:"tns" (Sta.Timer.tns timer) (Sta.Timer.tns fresh)
