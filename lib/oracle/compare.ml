(** Tolerance and comparison helpers shared by every differential harness
    in [lib/oracle]. Checks return [Ok ()] / [Error msg] with the first
    mismatch localised. *)

let float_eq ?(rtol = 1e-9) ?(atol = 0.0) a b =
  if a = b then true (* covers equal infinities and -0.0 = 0.0 *)
  else if Float.is_nan a || Float.is_nan b then false
  else Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let check_float ?rtol ?atol ~what a b =
  if float_eq ?rtol ?atol a b then Ok ()
  else Error (Printf.sprintf "%s: %.17g <> %.17g (delta %.3g)" what a b (a -. b))

let first_mismatch eq a b =
  let n = Array.length a in
  let rec go i = if i >= n then None else if eq a.(i) b.(i) then go (i + 1) else Some i in
  go 0

let check_array_with eq ~what a b =
  if Array.length a <> Array.length b then
    Error (Printf.sprintf "%s: length %d <> %d" what (Array.length a) (Array.length b))
  else
    match first_mismatch eq a b with
    | None -> Ok ()
    | Some i ->
        Error (Printf.sprintf "%s: index %d: %.17g <> %.17g (delta %.3g)" what i a.(i) b.(i) (a.(i) -. b.(i)))

let check_array ?rtol ?atol ~what a b = check_array_with (float_eq ?rtol ?atol) ~what a b

let check_array_exact ~what a b =
  check_array_with (fun x y -> x = y && not (Float.is_nan x) && not (Float.is_nan y)) ~what a b

let check_int ~what a b =
  if a = b then Ok () else Error (Printf.sprintf "%s: %d <> %d" what a b)

let check_bool ~what b = if b then Ok () else Error what

let ( let* ) = Result.bind

let all checks =
  List.fold_left (fun acc c -> match acc with Error _ -> acc | Ok () -> c) (Ok ()) checks

let check_path ~what (p : Sta.Paths.path) (q : Sta.Paths.path) =
  let* () = check_int ~what:(what ^ ".endpoint") p.endpoint q.endpoint in
  let* () =
    if p.pins = q.pins then Ok ()
    else
      Error
        (Printf.sprintf "%s.pins: [%s] <> [%s]" what
           (String.concat ";" (Array.to_list (Array.map string_of_int p.pins)))
           (String.concat ";" (Array.to_list (Array.map string_of_int q.pins))))
  in
  let* () = check_bool ~what:(what ^ ".arcs differ") (p.arcs = q.arcs) in
  let* () = check_float ~rtol:1e-9 ~what:(what ^ ".arrival") p.arrival q.arrival in
  check_float ~rtol:1e-9 ~atol:1e-9 ~what:(what ^ ".slack") p.slack q.slack

let check_paths ~what a b =
  let* () = check_int ~what:(what ^ ".count") (List.length a) (List.length b) in
  all
    (List.mapi
       (fun i (p, q) -> check_path ~what:(Printf.sprintf "%s[%d]" what i) p q)
       (List.combine a b))
