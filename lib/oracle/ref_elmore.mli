(** Whole-tree-walk Elmore reference: downstream capacitance recomputed
    by a full subtree walk per edge and root-to-node delay recomputed by
    a full root-path walk per node — O(n^2), no topological order, no
    shared accumulators. The oracle for [Rctree.Elmore.compute]. *)

type t = { total_cap : float; total_wirelen : float; sink_delay : float array }

(** Same calling convention as [Rctree.Elmore.compute]: [term_cap i] is
    the load of caller terminal [i], the root terminal's load is
    ignored. *)
val compute : Rctree.Steiner.t -> r:float -> c:float -> term_cap:(int -> float) -> t

(** Differential gate: production vs naive on the same tree. [rtol]
    absorbs the different summation orders (default 1e-9). *)
val check :
  ?rtol:float -> Rctree.Steiner.t -> r:float -> c:float -> term_cap:(int -> float) -> (unit, string) result
