(** Exhaustive reference path enumeration (see the interface). The walk
    mirrors the production completion rule exactly: a path terminates at
    the first startpoint pin reached walking backward (startpoints are
    never extended through, even when they have in-arcs), and backward
    walks that dead-end on a non-startpoint source are not paths. *)

exception Too_many_paths

let make_path (graph : Sta.Graph.t) ~endpoint ~start_pin ~suffix ~arrival =
  (* [suffix] holds the arc ids from [start_pin] to [endpoint] in forward
     order (built by consing while walking backward). *)
  let arcs = Array.of_list suffix in
  let npins = Array.length arcs + 1 in
  let pins = Array.make npins start_pin in
  Array.iteri (fun i a -> pins.(i + 1) <- graph.Sta.Graph.arc_to.(a)) arcs;
  {
    Sta.Paths.endpoint;
    arrival;
    slack = graph.Sta.Graph.end_required.(endpoint) -. arrival;
    pins;
    arcs;
  }

let all_paths ?(cap = 200_000) (graph : Sta.Graph.t) ~endpoint =
  let out = ref [] and count = ref 0 in
  (* [dsum] accumulates arc delays endpoint-first, matching the rounding
     of the production best-first walk, so tied paths carry bitwise-equal
     arrivals in both implementations and order identically. *)
  let rec walk v suffix dsum =
    if graph.Sta.Graph.is_startpoint.(v) then begin
      if !count >= cap then raise Too_many_paths;
      incr count;
      let arrival = graph.Sta.Graph.start_arrival.(v) +. dsum in
      out := make_path graph ~endpoint ~start_pin:v ~suffix ~arrival :: !out
    end
    else
      for i = graph.Sta.Graph.in_start.(v) to graph.Sta.Graph.in_start.(v + 1) - 1 do
        let a = graph.Sta.Graph.in_arc.(i) in
        walk graph.Sta.Graph.arc_from.(a) (a :: suffix) (dsum +. graph.Sta.Graph.arc_delay.(a))
      done
  in
  walk endpoint [] 0.0;
  List.sort Sta.Paths.compare_worst !out

let rec take n = function [] -> [] | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let k_worst ?cap graph ~endpoint ~k = take k (all_paths ?cap graph ~endpoint)

let endpoints_by_slack (graph : Sta.Graph.t) ~slack =
  Array.to_list graph.Sta.Graph.endpoints
  |> List.sort (fun a b ->
         let c = compare slack.(a) slack.(b) in
         if c <> 0 then c else compare a b)

let failing_endpoints graph ~slack =
  endpoints_by_slack graph ~slack
  |> List.filter (fun p -> Float.is_finite slack.(p) && slack.(p) < 0.0)

let worst_endpoints graph ~slack ~n ~failing_only =
  let eps =
    if failing_only then failing_endpoints graph ~slack else endpoints_by_slack graph ~slack
  in
  take n eps

let report_timing_endpoint ?cap ?(failing_only = true) graph ~slack ~n ~k =
  worst_endpoints graph ~slack ~n ~failing_only
  |> List.concat_map (fun e -> k_worst ?cap graph ~endpoint:e ~k)

let report_timing ?cap ?(failing_only = true) graph ~slack ~n =
  let pool =
    worst_endpoints graph ~slack ~n ~failing_only
    |> List.concat_map (fun e -> k_worst ?cap graph ~endpoint:e ~k:n)
  in
  take n (List.sort Sta.Paths.compare_by_slack pool)
