(** Golden-regression harness (see the interface). *)

type entry = { design : string; scale : float; method_ : Tdp.Flow.method_ }

let default_entries =
  [
    { design = "sb1"; scale = 0.08; method_ = Tdp.Flow.Vanilla };
    { design = "sb1"; scale = 0.08; method_ = Tdp.Flow.Efficient Tdp.Config.default };
    { design = "sb3"; scale = 0.08; method_ = Tdp.Flow.Vanilla };
    { design = "sb3"; scale = 0.08; method_ = Tdp.Flow.Efficient Tdp.Config.default };
  ]

let method_slug m =
  String.map
    (fun ch -> match ch with 'A' .. 'Z' -> Char.lowercase_ascii ch | '/' | ' ' -> '-' | c -> c)
    (Tdp.Flow.method_name m)

let entry_name e = Printf.sprintf "%s-%s" e.design (method_slug e.method_)

let snapshot e =
  (* Goldens are single-domain by construction: reductions associate
     differently per domain count, and a golden must not depend on the
     host's core count. *)
  let saved = !Util.Parallel.num_domains in
  Util.Parallel.set_num_domains 1;
  Fun.protect
    ~finally:(fun () -> Util.Parallel.set_num_domains saved)
    (fun () ->
      let d = Workloads.Suite.load ~scale:e.scale e.design in
      let r = Tdp.Flow.run ~obs:Obs.Ctx.null e.method_ d in
      Obs.Json.Obj
        [
          ("design", Obs.Json.String e.design);
          ("scale", Obs.Json.Float e.scale);
          ("method", Obs.Json.String (Tdp.Flow.method_name e.method_));
          ("metrics", Tdp.Flow.metrics_to_json r.Tdp.Flow.metrics);
          ("metrics_gp", Tdp.Flow.metrics_to_json r.Tdp.Flow.metrics_gp);
          ("curve_points", Obs.Json.Int (List.length r.Tdp.Flow.curve));
          ("extraction_rounds", Obs.Json.Int (List.length r.Tdp.Flow.extraction_rounds));
        ])

let float_rtol = 1e-6

(* Per-field policy: ints, bools, strings exact; floats to [float_rtol];
   objects must carry identical key sets; lists identical lengths. *)
let rec compare_json ~path ~(golden : Obs.Json.t) ~(got : Obs.Json.t) =
  match (golden, got) with
  | Obs.Json.Null, Obs.Json.Null -> []
  | Obs.Json.Bool a, Obs.Json.Bool b when a = b -> []
  | Obs.Json.Int a, Obs.Json.Int b when a = b -> []
  | Obs.Json.String a, Obs.Json.String b when a = b -> []
  | Obs.Json.Float a, Obs.Json.Float b when Compare.float_eq ~rtol:float_rtol ~atol:1e-12 a b ->
      []
  (* Integral floats print without a decimal point and reparse as Int:
     a golden with tns = 0 must still match a fresh Float 0. *)
  | Obs.Json.Int a, Obs.Json.Float b
    when Compare.float_eq ~rtol:float_rtol ~atol:1e-12 (float_of_int a) b ->
      []
  | Obs.Json.Float a, Obs.Json.Int b
    when Compare.float_eq ~rtol:float_rtol ~atol:1e-12 a (float_of_int b) ->
      []
  | Obs.Json.List a, Obs.Json.List b ->
      if List.length a <> List.length b then
        [
          Printf.sprintf "%s: list length %d, golden %d" path (List.length b) (List.length a);
        ]
      else
        List.concat
          (List.mapi
             (fun i (ga, gb) -> compare_json ~path:(Printf.sprintf "%s[%d]" path i) ~golden:ga ~got:gb)
             (List.combine a b))
  | Obs.Json.Obj a, Obs.Json.Obj b ->
      let keys l = List.sort compare (List.map fst l) in
      if keys a <> keys b then [ Printf.sprintf "%s: field sets differ" path ]
      else
        List.concat_map
          (fun (k, ga) ->
            let gb = List.assoc k b in
            compare_json ~path:(path ^ "." ^ k) ~golden:ga ~got:gb)
          a
  | _ ->
      [
        Printf.sprintf "%s: got %s, golden %s" path (Obs.Json.to_string got)
          (Obs.Json.to_string golden);
      ]

let golden_file dir e = Filename.concat dir (entry_name e ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check ~dir entries =
  let msgs =
    List.concat_map
      (fun e ->
        let file = golden_file dir e in
        if not (Sys.file_exists file) then
          [ Printf.sprintf "%s: golden missing (run --regen)" file ]
        else
          match Obs.Json.parse (read_file file) with
          | Error m -> [ Printf.sprintf "%s: unparseable golden: %s" file m ]
          | Ok golden -> compare_json ~path:(entry_name e) ~golden ~got:(snapshot e))
      entries
  in
  if msgs = [] then Ok () else Error msgs

let regen ~dir entries =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.map
    (fun e ->
      let file = golden_file dir e in
      let oc = open_out file in
      output_string oc (Obs.Json.to_string (snapshot e));
      output_string oc "\n";
      close_out oc;
      file)
    entries
