(** Seeded shrinking fuzzer (see the interface). *)

type prop = { name : string; check : Netlist.Design.t -> (unit, string) result }

type failure = {
  prop_name : string;
  params : Workloads.Genparams.t;
  message : string;
  dump : string option;
}

let params_to_string (p : Workloads.Genparams.t) =
  Printf.sprintf
    "seed=%d comb=%d ff=%d in=%d out=%d levels=%d hub_prob=%g macros=%d util=%g"
    p.seed p.num_comb p.num_ff p.num_inputs p.num_outputs p.levels p.fanout_hub_prob
    p.num_macros p.utilization

let check_params prop (p : Workloads.Genparams.t) =
  match prop.check (Workloads.Generate.generate p) with
  | r -> r
  | exception e -> Error (Printf.sprintf "exception: %s" (Printexc.to_string e))

(* Same small ranges as the integration fuzz suite. *)
let random_params rng =
  {
    Workloads.Genparams.default with
    name = "oracle-fuzz";
    seed = Util.Rng.int rng 1_000_000;
    num_comb = 40 + Util.Rng.int rng 260;
    num_ff = 8 + Util.Rng.int rng 60;
    num_inputs = 4 + Util.Rng.int rng 20;
    num_outputs = 4 + Util.Rng.int rng 20;
    levels = 2 + Util.Rng.int rng 8;
    num_macros = Util.Rng.int rng 4;
    fanout_hub_prob = Util.Rng.float rng 0.1;
  }

(* Shrink candidates: each size knob halved toward its floor, probability
   knobs zeroed. Order matters — the big knobs first, so the netlist
   shrinks fastest. *)
let halve ~floor v = if v > floor then Some (floor + ((v - floor) / 2)) else None

let candidates (p : Workloads.Genparams.t) =
  List.filter_map
    (fun c -> c)
    [
      Option.map (fun v -> { p with Workloads.Genparams.num_comb = v }) (halve ~floor:40 p.num_comb);
      Option.map (fun v -> { p with Workloads.Genparams.num_ff = v }) (halve ~floor:8 p.num_ff);
      Option.map (fun v -> { p with Workloads.Genparams.levels = v }) (halve ~floor:2 p.levels);
      Option.map (fun v -> { p with Workloads.Genparams.num_inputs = v }) (halve ~floor:4 p.num_inputs);
      Option.map (fun v -> { p with Workloads.Genparams.num_outputs = v }) (halve ~floor:4 p.num_outputs);
      Option.map (fun v -> { p with Workloads.Genparams.num_macros = v }) (halve ~floor:0 p.num_macros);
      (if p.fanout_hub_prob > 0.0 then Some { p with Workloads.Genparams.fanout_hub_prob = 0.0 }
       else None);
    ]

let shrink prop (p0 : Workloads.Genparams.t) =
  let message = ref (match check_params prop p0 with Error m -> m | Ok () -> "not failing") in
  let cur = ref p0 in
  let improved = ref true in
  while !improved do
    improved := false;
    List.iter
      (fun cand ->
        if not !improved then
          match check_params prop cand with
          | Error m ->
              cur := cand;
              message := m;
              improved := true
          | Ok () -> ())
      (candidates !cur)
  done;
  (!cur, !message)

(* ------------------------------------------------------------------ *)
(* The standard battery.                                               *)

let tighten d =
  (* A tight clock so timing properties exercise violated paths. *)
  d.Netlist.Design.clock_period <- 200.0;
  d

let timed_timer d =
  let d = tighten d in
  let timer = Sta.Timer.create d in
  Sta.Timer.update timer;
  timer

open Compare

let prop_sta_full =
  {
    name = "sta-full-vs-dfs";
    check =
      (fun d ->
        let timer = timed_timer d in
        let graph = Sta.Timer.graph timer in
        let* () =
          check_array_exact ~what:"arrivals" (Sta.Timer.arrivals timer) (Ref_sta.arrivals graph)
        in
        let slack = Ref_sta.slacks graph in
        let* () = check_array_exact ~what:"slacks" (Sta.Timer.slacks timer) slack in
        let* () =
          check_float ~rtol:0.0 ~what:"wns" (Sta.Timer.wns timer) (Ref_sta.wns graph ~slack)
        in
        check_float ~rtol:0.0 ~what:"tns" (Sta.Timer.tns timer) (Ref_sta.tns graph ~slack));
  }

let prop_incremental_sta =
  {
    name = "sta-incremental-walk";
    check =
      (fun d ->
        let d = tighten d in
        let timer = Sta.Timer.create d in
        Sta.Timer.update timer;
        let rng = Util.Rng.create (Netlist.Design.num_cells d) in
        let movable = Array.of_list (Netlist.Design.movable_ids d) in
        let steps = ref (Ok ()) in
        for _ = 1 to 8 do
          if !steps = Ok () then begin
            let moved = ref [] in
            for _ = 1 to 1 + Util.Rng.int rng 4 do
              let c = Util.Rng.choose rng movable in
              d.Netlist.Design.x.{c} <-
                d.Netlist.Design.x.{c} +. Util.Rng.float_range rng (-30.0) 30.0;
              d.Netlist.Design.y.{c} <-
                d.Netlist.Design.y.{c} +. Util.Rng.float_range rng (-30.0) 30.0;
              moved := c :: !moved
            done;
            Netlist.Design.clamp_movable d;
            Sta.Timer.update_moved timer ~cells:!moved;
            steps := Ref_sta.check_incremental timer
          end
        done;
        !steps);
  }

let prop_paths =
  {
    name = "paths-vs-exhaustive";
    check =
      (fun d ->
        let timer = timed_timer d in
        let graph = Sta.Timer.graph timer in
        let arr = Sta.Timer.arrivals timer in
        match Sta.Timer.failing_endpoints timer with
        | [] -> Ok ()
        | ep :: _ ->
            let got = Sta.Paths.k_worst graph arr ~endpoint:ep ~k:5 in
            let want = Ref_paths.k_worst graph ~endpoint:ep ~k:5 in
            check_paths ~what:(Printf.sprintf "k_worst endpoint %d" ep) got want);
  }

let prop_elmore =
  {
    name = "elmore-vs-naive";
    check =
      (fun d ->
        let checks = ref [] in
        for nid = 0 to Netlist.Design.num_nets d - 1 do
          if Netlist.Design.net_degree d nid >= 2 && List.length !checks < 12 then begin
            let pids = Netlist.Design.net_pins d nid in
            let xs = Array.map (fun pid -> Netlist.Design.pin_x d pid) pids in
            let ys = Array.map (fun pid -> Netlist.Design.pin_y d pid) pids in
            let tree = Rctree.Steiner.steiner ~xs ~ys in
            let term_cap i = d.Netlist.Design.pin_cap.{pids.(i)} in
            checks :=
              Ref_elmore.check tree ~r:d.Netlist.Design.r_per_unit
                ~c:d.Netlist.Design.c_per_unit ~term_cap
              :: !checks
          end
        done;
        all !checks);
  }

let prop_wa_grad =
  {
    name = "wa-grad-fd";
    check =
      (fun d ->
        let movable = Netlist.Design.movable_ids d in
        let cells = List.filteri (fun i _ -> i < 4) movable in
        Ref_place.wa_fd_check d ~gamma:8.0 ~cells);
  }

let prop_density =
  {
    name = "density-direct";
    check =
      (fun d ->
        let grid = Gp.Densitygrid.create d ~bins_x:16 ~bins_y:16 in
        Gp.Densitygrid.update grid d;
        let* () =
          check_array ~rtol:1e-9 ~atol:1e-9 ~what:"density grid"
            grid.Gp.Densitygrid.density (Ref_place.density_direct d grid)
        in
        Metamorphic.density_mass d grid);
  }

(* CSR adjacency invariants of the SoA database: offsets start at 0, end
   at the pin count, and are monotone; the cell CSR partitions the pin id
   space exactly once with agreeing [pin_owner]; the net CSR lists every
   connected pin exactly once under its [pin_net] with the driver first;
   the degree/sink accessors agree with the offsets. *)
let prop_csr =
  {
    name = "csr-invariants";
    check =
      (fun d ->
        let open Netlist.Design in
        let nc = num_cells d and np = num_pins d and nn = num_nets d in
        let problem = ref None in
        let bad fmt =
          Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt
        in
        if d.cell_pin_off.(0) <> 0 then bad "cell_pin_off.(0) = %d" d.cell_pin_off.(0);
        if d.cell_pin_off.(nc) <> np then
          bad "cell CSR covers %d of %d pins" d.cell_pin_off.(nc) np;
        for i = 0 to nc - 1 do
          if d.cell_pin_off.(i + 1) < d.cell_pin_off.(i) then
            bad "cell_pin_off not monotone at cell %d" i
        done;
        if d.net_pin_off.(0) <> 0 then bad "net_pin_off.(0) = %d" d.net_pin_off.(0);
        for n = 0 to nn - 1 do
          if d.net_pin_off.(n + 1) < d.net_pin_off.(n) then
            bad "net_pin_off not monotone at net %d" n
        done;
        (* Cell CSR: every pin id exactly once, under its owner. *)
        let seen = Array.make (max 1 np) 0 in
        for i = 0 to nc - 1 do
          for k = d.cell_pin_off.(i) to d.cell_pin_off.(i + 1) - 1 do
            let p = d.cell_pin_ids.(k) in
            if p < 0 || p >= np then bad "cell %d: pin id %d out of range" i p
            else begin
              seen.(p) <- seen.(p) + 1;
              if d.pin_owner.(p) <> i then
                bad "pin %d: owner %d but listed under cell %d" p d.pin_owner.(p) i
            end
          done
        done;
        for p = 0 to np - 1 do
          if seen.(p) <> 1 then bad "pin %d appears %d times in the cell CSR" p seen.(p)
        done;
        (* Net CSR: every connected pin exactly once, driver first. *)
        Array.fill seen 0 (Array.length seen) 0;
        for n = 0 to nn - 1 do
          let off = d.net_pin_off.(n) and stop = d.net_pin_off.(n + 1) in
          if stop > off && d.net_driver.(n) >= 0 && d.net_pin_ids.(off) <> d.net_driver.(n)
          then bad "net %d: driver pin %d not first in CSR row" n d.net_driver.(n);
          for k = off to stop - 1 do
            let p = d.net_pin_ids.(k) in
            if p < 0 || p >= np then bad "net %d: pin id %d out of range" n p
            else begin
              seen.(p) <- seen.(p) + 1;
              if d.pin_net.(p) <> n then
                bad "pin %d: pin_net %d but listed under net %d" p d.pin_net.(p) n
            end
          done;
          if net_degree d n <> stop - off then bad "net %d: degree accessor mismatch" n;
          if stop > off && net_num_sinks d n <> stop - off - 1 then
            bad "net %d: sink count mismatch" n
        done;
        for p = 0 to np - 1 do
          let expect = if d.pin_net.(p) >= 0 then 1 else 0 in
          if seen.(p) <> expect then
            bad "pin %d appears %d times in the net CSR (expected %d)" p seen.(p) expect
        done;
        match !problem with None -> Ok () | Some m -> Error m);
  }

let default_props =
  [
    prop_sta_full; prop_incremental_sta; prop_paths; prop_elmore; prop_wa_grad; prop_density;
    prop_csr;
  ]

(* ------------------------------------------- format mutate-reparse -- *)

(* Serialize the design to a foreign format, corrupt one byte at a time,
   and reparse. The parsers' only acceptable outcomes are a clean parse
   (the mutation was benign), Io.Parse_error, or a structural
   Invalid_design from Builder.finish — any other exception (assert,
   Invalid_argument, out-of-bounds, stack overflow) is a fuzz failure.
   Mutation positions/values come from a stream seeded by the file
   contents, so the prop is deterministic in the design. *)
let mutations_per_file = 24

let read_bin path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bin path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let mutate_reparse ~fmt_name ~write ~parse =
  {
    name = Printf.sprintf "%s-mutate-reparse" fmt_name;
    check =
      (fun d ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "etdp_fuzz_%s_%d" fmt_name (Unix.getpid ()))
        in
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Fun.protect
          ~finally:(fun () ->
            Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
            Unix.rmdir dir)
          (fun () ->
            let entry, files = write dir d in
            let problem = ref None in
            List.iter
              (fun file ->
                let orig = read_bin file in
                let n = String.length orig in
                if n > 0 then begin
                  let rng = Util.Rng.create (Hashtbl.hash (d.Netlist.Design.name, n)) in
                  for _ = 1 to mutations_per_file do
                    let pos = Util.Rng.int rng n in
                    let b = Char.chr (Util.Rng.int rng 256) in
                    let mutated = Bytes.of_string orig in
                    Bytes.set mutated pos b;
                    write_bin file (Bytes.to_string mutated);
                    (match parse entry with
                    | (_ : Netlist.Design.t) -> ()
                    | exception Netlist.Io.Parse_error _ -> ()
                    | exception Util.Errors.Error (Util.Errors.Invalid_design _) -> ()
                    | exception e ->
                        if !problem = None then
                          problem :=
                            Some
                              (Printf.sprintf "%s byte %d -> %#x: escaped exception %s"
                                 (Filename.basename file) pos (Char.code b)
                                 (Printexc.to_string e)))
                  done;
                  write_bin file orig
                end)
              files;
            match !problem with None -> Ok () | Some m -> Error m));
  }

let format_props =
  [
    mutate_reparse ~fmt_name:"bookshelf"
      ~write:(fun dir d ->
        let aux = Formats.Bookshelf.write ~dir ~stem:"fz" d in
        let all =
          List.filter Sys.file_exists
            (List.map
               (fun e -> Filename.concat dir ("fz" ^ e))
               [ ".aux"; ".nodes"; ".nets"; ".pl"; ".scl"; ".cells" ])
        in
        (aux, all))
      ~parse:Formats.Bookshelf.read_aux;
    mutate_reparse ~fmt_name:"def"
      ~write:(fun dir d ->
        let lef = Filename.concat dir "fz.lef" in
        let def = Filename.concat dir "fz.def" in
        Formats.Lefdef.write ~lef_path:lef ~def_path:def d;
        (def, [ lef; def ]))
      ~parse:(fun def ->
        let lef = Formats.Lefdef.read_lef (Filename.concat (Filename.dirname def) "fz.lef") in
        Formats.Lefdef.read_def ~lef def);
  ]

(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  (* Parents first; EEXIST is fine. *)
  let rec go dir =
    if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
      go (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let dump_failure ~dump_dir prop_name (p : Workloads.Genparams.t) message =
  mkdir_p dump_dir;
  let base = Filename.concat dump_dir (Printf.sprintf "%s-seed%d" prop_name p.seed) in
  Netlist.Io.save_file (base ^ ".design") (Workloads.Generate.generate p);
  let oc = open_out (base ^ ".txt") in
  Printf.fprintf oc "prop: %s\nparams: %s\nmessage: %s\n" prop_name (params_to_string p) message;
  close_out oc;
  base ^ ".design"

let run ?dump_dir ?(iters = 10) ~seed props =
  let rng = Util.Rng.create seed in
  let failures = ref [] in
  for _ = 1 to iters do
    let p = random_params rng in
    List.iter
      (fun prop ->
        match check_params prop p with
        | Ok () -> ()
        | Error _ ->
            let small, message = shrink prop p in
            let dump = Option.map (fun dir -> dump_failure ~dump_dir:dir prop.name small message) dump_dir in
            failures := { prop_name = prop.name; params = small; message; dump } :: !failures)
      props
  done;
  List.rev !failures
