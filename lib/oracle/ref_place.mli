(** Brute-force references for the placement objectives: pairwise/direct
    HPWL, an independent weighted-average wirelength value,
    finite-difference gradient checks (WA and pin-pair losses), an O(cells
    * bins) density accumulation, and an independent bilinear field
    sampler for the electrostatic gradient gather. *)

(** Exact HPWL of one point set (max-min in each dimension). *)
val points_hpwl : xs:float array -> ys:float array -> float

(** Brute-force pairwise HPWL of a point set: half-perimeter via max over
    all O(n^2) coordinate pairs — the obviously-correct form. *)
val points_hpwl_pairwise : xs:float array -> ys:float array -> float

(** Net-weighted design HPWL, sequential direct summation. *)
val hpwl_direct : Netlist.Design.t -> float

(** Weighted-average smooth extent of one coordinate set (WA_max -
    WA_min), written directly from the definition. *)
val wa_extent : gamma:float -> float array -> float

(** Independent WA wirelength value of the whole design (net weights
    applied); the reference for [Gp.Wirelength.wa_wirelength_grad]'s
    return value. *)
val wa_value : Netlist.Design.t -> gamma:float -> float

(** Central finite-difference check of the analytic WA gradient for the
    given cells: perturbs each cell centre by [h] in x and y and compares
    against {!wa_value} differences. [rtol] is loose (default 1e-4) —
    finite differences truncate. *)
val wa_fd_check :
  ?h:float -> ?rtol:float -> Netlist.Design.t -> gamma:float -> cells:int list -> (unit, string) result

(** Central finite-difference check of [Tdp.Pin_attract.add_grad] against
    [Tdp.Pin_attract.loss_value] for the given cells. *)
val pin_attract_fd_check :
  ?h:float -> ?rtol:float -> Netlist.Design.t -> Tdp.Pin_attract.t -> cells:int list -> (unit, string) result

(** O(cells * bins) density accumulation: every movable cell's inflated
    rectangle is overlapped against every bin. The oracle for
    [Gp.Densitygrid.update]. *)
val density_direct : Netlist.Design.t -> Gp.Densitygrid.t -> float array

(** Independent bilinear interpolation of a bin-centred grid value at a
    physical position (clamped at the boundary). *)
val bilinear :
  field:float array ->
  bins_x:int -> bins_y:int -> die:Geom.Rect.t -> bin_w:float -> bin_h:float ->
  float -> float -> float

(** Expected electrostatic gradient increments (per cell) recomputed with
    {!bilinear} from the solver's field — the oracle for
    [Gp.Electro.add_grad]. Returns (gx, gy) of the same length as the
    cell arrays, zero for fixed cells. *)
val electro_grad_expected : Gp.Electro.t -> Netlist.Design.t -> float array * float array
