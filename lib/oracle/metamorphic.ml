(** Metamorphic properties (see the interface). *)

open Compare
open Netlist

let wirelength_translation ?(rtol = 1e-9) (d : Design.t) ~gamma ~dx ~dy =
  let saved = Design.snapshot d in
  let hp0 = Gp.Wirelength.weighted_hpwl d in
  let wa0 = Ref_place.wa_value d ~gamma in
  for i = 0 to Design.num_cells d - 1 do
    d.x.{i} <- d.x.{i} +. dx;
    d.y.{i} <- d.y.{i} +. dy
  done;
  let hp1 = Gp.Wirelength.weighted_hpwl d in
  let wa1 = Ref_place.wa_value d ~gamma in
  Design.restore d saved;
  let atol = rtol *. (1.0 +. Float.abs hp0) *. (1.0 +. Float.abs dx +. Float.abs dy) in
  let* () = check_float ~rtol ~atol ~what:"hpwl after translation" hp1 hp0 in
  check_float ~rtol ~atol ~what:"wa after translation" wa1 wa0

let wa_bounds (d : Design.t) ~gamma =
  let hp = Gp.Wirelength.weighted_hpwl d in
  let wa = Ref_place.wa_value d ~gamma in
  let* () = check_bool ~what:(Printf.sprintf "wa %g >= 0" wa) (wa >= 0.0) in
  check_bool
    ~what:(Printf.sprintf "wa %g <= hpwl %g" wa hp)
    (wa <= hp +. (1e-9 *. (1.0 +. hp)))

let transpose_design (d : Design.t) : Design.t =
  let die =
    Geom.Rect.make ~xl:d.die.Geom.Rect.yl ~yl:d.die.Geom.Rect.xl ~xh:d.die.Geom.Rect.yh
      ~yh:d.die.Geom.Rect.xh
  in
  {
    d with
    die;
    w = Design.farr_copy d.h;
    h = Design.farr_copy d.w;
    pin_off_x = Design.farr_copy d.pin_off_y;
    pin_off_y = Design.farr_copy d.pin_off_x;
    x = Design.farr_copy d.y;
    y = Design.farr_copy d.x;
  }

let transpose_consistent ?(rtol = 1e-9) (d : Design.t) ~gamma ~bins =
  let dt = transpose_design d in
  let* () =
    check_float ~rtol ~what:"transposed hpwl" (Gp.Wirelength.weighted_hpwl dt)
      (Gp.Wirelength.weighted_hpwl d)
  in
  let* () =
    check_float ~rtol ~what:"transposed wa" (Ref_place.wa_value dt ~gamma)
      (Ref_place.wa_value d ~gamma)
  in
  let g = Gp.Densitygrid.create d ~bins_x:bins ~bins_y:bins in
  let gt = Gp.Densitygrid.create dt ~bins_x:bins ~bins_y:bins in
  Gp.Densitygrid.update g d;
  Gp.Densitygrid.update gt dt;
  let transposed =
    Array.init (bins * bins) (fun i ->
        let by = i / bins and bx = i mod bins in
        (* Cell (bx, by) of the transposed design is cell (by, bx) here. *)
        gt.Gp.Densitygrid.density.((bx * bins) + by))
  in
  check_array ~rtol ~atol:1e-9 ~what:"transposed density grid" transposed
    g.Gp.Densitygrid.density

let density_mass ?(rtol = 1e-9) (d : Design.t) (grid : Gp.Densitygrid.t) =
  let die = grid.Gp.Densitygrid.die in
  let bin_w = grid.Gp.Densitygrid.bin_w and bin_h = grid.Gp.Densitygrid.bin_h in
  (* Expected mass: each movable cell's inflated rectangle clipped against
     the die outline directly — no bin decomposition anywhere. *)
  let expect = ref 0.0 in
  for id = 0 to Design.num_cells d - 1 do
    if Design.is_movable d id then begin
      let cw = d.w.{id} and ch = d.h.{id} in
      let ew = Float.max cw bin_w and eh = Float.max ch bin_h in
      let scale = cw *. ch /. (ew *. eh) in
      let xl = Float.max (d.x.{id} -. (ew /. 2.0)) die.Geom.Rect.xl in
      let xh = Float.min (d.x.{id} +. (ew /. 2.0)) die.Geom.Rect.xh in
      let yl = Float.max (d.y.{id} -. (eh /. 2.0)) die.Geom.Rect.yl in
      let yh = Float.min (d.y.{id} +. (eh /. 2.0)) die.Geom.Rect.yh in
      if xh > xl && yh > yl then expect := !expect +. ((xh -. xl) *. (yh -. yl) *. scale)
    end
  done;
  let got = Array.fold_left ( +. ) 0.0 grid.Gp.Densitygrid.density in
  check_float ~rtol ~atol:(rtol *. (1.0 +. !expect)) ~what:"density mass" got !expect

let elmore_monotone ~lambda (tree : Rctree.Steiner.t) ~r ~c ~term_cap =
  if lambda < 1.0 then invalid_arg "Metamorphic.elmore_monotone: lambda < 1";
  let scaled =
    { tree with Rctree.Steiner.edge_len = Array.map (fun l -> l *. lambda) tree.Rctree.Steiner.edge_len }
  in
  let base = Rctree.Elmore.compute tree ~r ~c ~term_cap in
  let big = Rctree.Elmore.compute scaled ~r ~c ~term_cap in
  let* () =
    check_bool
      ~what:
        (Printf.sprintf "total_cap monotone (%g -> %g)" base.Rctree.Elmore.total_cap
           big.Rctree.Elmore.total_cap)
      (big.Rctree.Elmore.total_cap >= base.Rctree.Elmore.total_cap)
  in
  let* () =
    check_float ~rtol:1e-9 ~what:"total_wirelen scales"
      big.Rctree.Elmore.total_wirelen
      (lambda *. base.Rctree.Elmore.total_wirelen)
  in
  let bad = ref None in
  Array.iteri
    (fun v dv ->
      if !bad = None && big.Rctree.Elmore.sink_delay.(v) < dv then
        bad := Some (v, dv, big.Rctree.Elmore.sink_delay.(v)))
    base.Rctree.Elmore.sink_delay;
  match !bad with
  | None -> Ok ()
  | Some (v, d0, d1) ->
      Error (Printf.sprintf "sink %d sped up under lengthening: %.12g -> %.12g" v d0 d1)

let tns_wns_consistent timer =
  Sta.Timer.update timer;
  let graph = Sta.Timer.graph timer in
  let slack = Sta.Timer.slacks timer in
  let wns_expect =
    Array.fold_left
      (fun acc p -> if Float.is_finite slack.(p) then Float.min acc slack.(p) else acc)
      0.0 graph.Sta.Graph.endpoints
    |> Float.min 0.0
  in
  let tns_expect =
    Array.fold_left
      (fun acc p ->
        if Float.is_finite slack.(p) && slack.(p) < 0.0 then acc +. slack.(p) else acc)
      0.0 graph.Sta.Graph.endpoints
  in
  let wns = Sta.Timer.wns timer and tns = Sta.Timer.tns timer in
  let* () = check_float ~rtol:0.0 ~what:"wns vs slack array" wns wns_expect in
  let* () = check_float ~rtol:0.0 ~what:"tns vs slack array" tns tns_expect in
  let* () = check_bool ~what:(Printf.sprintf "wns %g <= 0" wns) (wns <= 0.0) in
  check_bool ~what:(Printf.sprintf "tns %g <= wns %g" tns wns) (tns <= wns +. 1e-12)

let eq9_accumulation ?(rtol = 1e-9) (graph : Sta.Graph.t) attract ~w0 ~w1 ~wns paths =
  (* Independent replay of Eq. 9 over the same path list. *)
  let expect : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (p : Sta.Paths.path) ->
      if p.slack < 0.0 && wns < 0.0 then
        Array.iter
          (fun a ->
            if graph.Sta.Graph.arc_is_net.(a) then begin
              let key = (graph.Sta.Graph.arc_from.(a), graph.Sta.Graph.arc_to.(a)) in
              match Hashtbl.find_opt expect key with
              | None -> Hashtbl.add expect key w0
              | Some w -> Hashtbl.replace expect key (w +. (w1 *. p.slack /. wns))
            end)
          p.arcs)
    paths;
  let checks =
    Tdp.Pin_attract.fold_pairs attract ~init:[] ~f:(fun acc ~pin_i ~pin_j ~weight ->
        let check =
          match Hashtbl.find_opt expect (pin_i, pin_j) with
          | None -> Error (Printf.sprintf "unexpected pair (%d, %d)" pin_i pin_j)
          | Some w ->
              Hashtbl.remove expect (pin_i, pin_j);
              check_float ~rtol ~what:(Printf.sprintf "weight of pair (%d, %d)" pin_i pin_j)
                weight w
        in
        check :: acc)
  in
  let* () = all checks in
  if Hashtbl.length expect = 0 then Ok ()
  else
    let (i, j), _ = List.hd (List.of_seq (Hashtbl.to_seq expect)) in
    Error
      (Printf.sprintf "%d expected pair(s) missing, e.g. (%d, %d)" (Hashtbl.length expect) i j)
