(** Wirelength models: exact HPWL and the smooth weighted-average (WA)
    approximation with analytic gradients (Hsu-Chang-Balabanov), the
    wirelength objective of DREAMPlace.

    Per net and dimension, with a_i = exp(x_i / gamma):
      WA_max = sum(x_i a_i) / sum(a_i)
      d WA_max / d x_i = a_i (1 + (x_i - WA_max)/gamma) / sum(a_i)
    and symmetrically for WA_min with negated exponents. The net's smooth
    length is (WA_max - WA_min) per dimension, scaled by the net weight.

    The kernel walks the design's net->pin CSR directly and keeps all
    scratch (per-pin exponent buffers, per-chunk gradient accumulators) in
    a reusable {!ws} workspace, so steady-state Nesterov iterations do not
    allocate. *)

open Netlist

(* Test-only fault injection: when set, applied to every per-pin WA
   gradient contribution before it accumulates. The oracle suite flips it
   on to prove the finite-difference gradient gate can fail; it must stay
   [None] outside those tests. *)
let grad_fault : (float -> float) option ref = ref None

(** Exact weighted HPWL (net weights applied) — the objective value.
    One scratch array for the whole sweep ([Design.net_hpwl_into] slots
    0-4, slot 5 accumulates): refs or per-net wrappers would allocate
    per net. *)
let weighted_hpwl (d : Design.t) =
  let m = Array.make 6 0.0 in
  for n = 0 to Design.num_nets d - 1 do
    Design.net_hpwl_into d n m;
    m.(5) <- m.(5) +. (d.net_weight.{n} *. m.(4))
  done;
  m.(5)

(** Per-worker scratch for the WA kernel, sized to the max net degree:
    pin positions in both dimensions, owner cells (cached once per net
    for the gradient scatter), and exponent buffers. *)
type lane = {
  xs : float array;
  ys : float array;
  cells : int array;
  ea : float array;
  eb : float array;
  mm : float array; (* xmin/xmax/ymin/ymax of the current net (slots 0-3) *)
  gcx : float array; (* per-chunk gradient accumulators (parallel path; *)
  gcy : float array; (* empty in the sequential lane) *)
}

(** Reusable scratch for {!wa_wirelength_grad_ws}: a sequential lane plus
    per-chunk lanes with private gradient accumulators for the parallel
    path (grown on demand when the chunk count changes). *)
type ws = {
  max_deg : int;
  seq : lane;
  mutable chunks : lane array;
  mutable totals : float array; (* per-chunk smooth-value partial sums *)
}

let make_lane ~max_deg ~ncells =
  {
    xs = Array.make max_deg 0.0;
    ys = Array.make max_deg 0.0;
    cells = Array.make max_deg 0;
    ea = Array.make max_deg 0.0;
    eb = Array.make max_deg 0.0;
    mm = Array.make 4 0.0;
    gcx = Array.make ncells 0.0;
    gcy = Array.make ncells 0.0;
  }

let make_ws (d : Design.t) =
  let max_deg = ref 1 in
  for n = 0 to Design.num_nets d - 1 do
    let deg = Design.net_degree d n in
    if deg > !max_deg then max_deg := deg
  done;
  let max_deg = !max_deg in
  { max_deg; seq = make_lane ~max_deg ~ncells:0; chunks = [||]; totals = Array.make 1 0.0 }

(* One dimension's WA pass over a net already gathered into [vs] (pin
   coordinates) / [ln.cells] (owning cells): accumulates the gradient
   into [grad] at the owning cells scaled by the net weight, and adds
   the weighted smooth extent into [tacc.(ti)] — a float-array slot
   rather than a returned float, so the sweep stays off the minor heap.
   The extrema come from [ln.mm] at [base]/[base+1] and the weight is
   read from [net] — ints and arrays cross the call boundary for free,
   whereas every fresh float argument would be re-boxed per call (the
   kernel's old steady-state allocation). Indices are bounded by the net
   degree ≤ scratch size, so the loops use unchecked access; divisions
   by gamma and the exponent sums are folded into multiplications by
   hoisted inverses. *)
let wa_dim (d : Design.t) ln ~(vs : float array) ~n ~net ~base ~gamma ~(grad : float array)
    ~(tacc : float array) ~ti =
  let inv_gamma = 1.0 /. gamma in
  let w = d.net_weight.{net} in
  if n = 2 then begin
    (* Two-pin nets dominate real netlists. With two pins the extreme
       pin's exponent is exp(0) = 1 exactly, and the other pin's
       exponent is the same value e = exp((lo-hi)/gamma) on all four
       sides (max and min, both pins), so one [exp] replaces four. The
       arithmetic below substitutes 1.0 and e into the general formulas
       verbatim — bit-identical results, IEEE guarantees exp(±0) = 1
       and x *. 1.0 = x. *)
    let v0 = Array.unsafe_get vs 0 and v1 = Array.unsafe_get vs 1 in
    let swap = v1 > v0 in
    let hi = if swap then v1 else v0 in
    let lo = if swap then v0 else v1 in
    let e = exp ((lo -. hi) *. inv_gamma) in
    let a0 = if swap then e else 1.0 in
    let a1 = if swap then 1.0 else e in
    let b0 = if swap then 1.0 else e in
    let b1 = if swap then e else 1.0 in
    let inv_s = 1.0 /. (1.0 +. e) in
    let wa_max = ((v0 *. a0) +. (v1 *. a1)) *. inv_s in
    let wa_min = ((v0 *. b0) +. (v1 *. b1)) *. inv_s in
    let gmax0 = a0 *. (1.0 +. ((v0 -. wa_max) *. inv_gamma)) *. inv_s in
    let gmin0 = b0 *. (1.0 -. ((v0 -. wa_min) *. inv_gamma)) *. inv_s in
    let gmax1 = a1 *. (1.0 +. ((v1 -. wa_max) *. inv_gamma)) *. inv_s in
    let gmin1 = b1 *. (1.0 -. ((v1 -. wa_min) *. inv_gamma)) *. inv_s in
    let c0 = w *. (gmax0 -. gmin0) in
    let c1 = w *. (gmax1 -. gmin1) in
    let c0 = match !grad_fault with None -> c0 | Some f -> f c0 in
    let c1 = match !grad_fault with None -> c1 | Some f -> f c1 in
    let cell0 = Array.unsafe_get ln.cells 0 and cell1 = Array.unsafe_get ln.cells 1 in
    grad.(cell0) <- grad.(cell0) +. c0;
    grad.(cell1) <- grad.(cell1) +. c1;
    tacc.(ti) <- tacc.(ti) +. (w *. (wa_max -. wa_min))
  end
  else begin
    let vmin = Array.unsafe_get ln.mm base and vmax = Array.unsafe_get ln.mm (base + 1) in
    let ea = ln.ea and eb = ln.eb in
    let s_max = ref 0.0 and t_max = ref 0.0 in
    let s_min = ref 0.0 and t_min = ref 0.0 in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get vs i in
      let a = exp ((v -. vmax) *. inv_gamma) in
      let b = exp ((vmin -. v) *. inv_gamma) in
      Array.unsafe_set ea i a;
      Array.unsafe_set eb i b;
      s_max := !s_max +. a;
      t_max := !t_max +. (v *. a);
      s_min := !s_min +. b;
      t_min := !t_min +. (v *. b)
    done;
    let inv_smax = 1.0 /. !s_max and inv_smin = 1.0 /. !s_min in
    let wa_max = !t_max *. inv_smax and wa_min = !t_min *. inv_smin in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get vs i in
      let gmax = Array.unsafe_get ea i *. (1.0 +. ((v -. wa_max) *. inv_gamma)) *. inv_smax in
      let gmin = Array.unsafe_get eb i *. (1.0 -. ((v -. wa_min) *. inv_gamma)) *. inv_smin in
      let cell = Array.unsafe_get ln.cells i in
      let contrib = w *. (gmax -. gmin) in
      let contrib = match !grad_fault with None -> contrib | Some f -> f contrib in
      grad.(cell) <- grad.(cell) +. contrib
    done;
    tacc.(ti) <- tacc.(ti) +. (w *. (wa_max -. wa_min))
  end

(* Both dimensions of one net (CSR row [net] of d.net_pin_ids), fused:
   the CSR ids, owners, and pin positions are gathered once into the
   lane's scratch and shared by the x and y passes — the split-dimension
   version walked the CSR and the owner indirection twice per net. The
   extrema land in [ln.mm] slots so {!wa_dim} reads them without a float
   crossing the call boundary. *)
let wa_net (d : Design.t) ln ~net ~gamma ~(gx : float array) ~(gy : float array)
    ~(tacc : float array) ~ti =
  let lo = d.net_pin_off.(net) and hi = d.net_pin_off.(net + 1) in
  let n = hi - lo in
  if n > 1 then begin
    let ids = d.net_pin_ids and owner = d.pin_owner in
    let px = d.x and py = d.y in
    let ox = d.pin_off_x and oy = d.pin_off_y in
    let xs = ln.xs and ys = ln.ys and cells = ln.cells in
    let xmax = ref Float.neg_infinity and xmin = ref Float.infinity in
    let ymax = ref Float.neg_infinity and ymin = ref Float.infinity in
    for i = 0 to n - 1 do
      let pid = Array.unsafe_get ids (lo + i) in
      let c = Array.unsafe_get owner pid in
      let vx = Bigarray.Array1.unsafe_get px c +. Bigarray.Array1.unsafe_get ox pid in
      let vy = Bigarray.Array1.unsafe_get py c +. Bigarray.Array1.unsafe_get oy pid in
      Array.unsafe_set cells i c;
      Array.unsafe_set xs i vx;
      Array.unsafe_set ys i vy;
      if vx > !xmax then xmax := vx;
      if vx < !xmin then xmin := vx;
      if vy > !ymax then ymax := vy;
      if vy < !ymin then ymin := vy
    done;
    ln.mm.(0) <- !xmin;
    ln.mm.(1) <- !xmax;
    ln.mm.(2) <- !ymin;
    ln.mm.(3) <- !ymax;
    wa_dim d ln ~vs:xs ~n ~net ~base:0 ~gamma ~grad:gx ~tacc ~ti;
    wa_dim d ln ~vs:ys ~n ~net ~base:2 ~gamma ~grad:gy ~tacc ~ti
  end

(* Sequential sweep over a net range, accumulating gradients into
   [gx]/[gy] and the weighted smooth total into [tacc.(ti)]. *)
let sweep (d : Design.t) ln ~lo_net ~hi_net ~gamma ~gx ~gy ~tacc ~ti =
  for n = lo_net to hi_net - 1 do
    wa_net d ln ~net:n ~gamma ~gx ~gy ~tacc ~ti
  done

(** Smooth weighted wirelength of the whole design; adds its gradient
    w.r.t. cell centres into [gx]/[gy] (arrays over cells; fixed cells
    receive gradient too — callers zero or ignore them). Reuses the
    workspace's scratch: allocation-free once the chunk buffers exist.

    Parallelised over nets when [Util.Parallel] domains are enabled: each
    chunk accumulates into private buffers merged afterwards (cells are
    shared across nets, so direct accumulation would race). *)
let wa_wirelength_grad_ws ws (d : Design.t) ~gamma ~gx ~gy =
  let nnets = Design.num_nets d in
  let nchunks = Util.Parallel.chunk_count ~n:nnets in
  if nchunks = 1 then begin
    ws.totals.(0) <- 0.0;
    sweep d ws.seq ~lo_net:0 ~hi_net:nnets ~gamma ~gx ~gy ~tacc:ws.totals ~ti:0;
    ws.totals.(0)
  end
  else begin
    let nc = Design.num_cells d in
    if Array.length ws.chunks < nchunks then begin
      ws.chunks <- Array.init nchunks (fun _ -> make_lane ~max_deg:ws.max_deg ~ncells:nc);
      ws.totals <- Array.make nchunks 0.0
    end;
    Array.fill ws.totals 0 (Array.length ws.totals) 0.0;
    Util.Parallel.for_chunks ~grain:64 ~name:"wl.grad" ~n:nnets (fun ~chunk ~lo ~hi ->
        let ln = ws.chunks.(chunk) in
        sweep d ln ~lo_net:lo ~hi_net:hi ~gamma ~gx:ln.gcx ~gy:ln.gcy ~tacc:ws.totals ~ti:chunk);
    let total = ref 0.0 in
    for k = 0 to nchunks - 1 do
      total := !total +. ws.totals.(k);
      ws.totals.(k) <- 0.0
    done;
    (* Merge per-chunk gradients in chunk order (deterministic) and zero
       the buffers for the next call. *)
    Util.Parallel.for_ ~name:"wl.grad.merge" nc (fun c ->
        for k = 0 to nchunks - 1 do
          let ln = ws.chunks.(k) in
          gx.(c) <- gx.(c) +. ln.gcx.(c);
          gy.(c) <- gy.(c) +. ln.gcy.(c);
          ln.gcx.(c) <- 0.0;
          ln.gcy.(c) <- 0.0
        done);
    !total
  end

(** One-shot variant: builds a fresh workspace per call. Cold paths and
    tests; the optimizer loop holds a {!ws} instead. *)
let wa_wirelength_grad (d : Design.t) ~gamma ~gx ~gy =
  wa_wirelength_grad_ws (make_ws d) d ~gamma ~gx ~gy
