(** Wirelength models: exact HPWL and the smooth weighted-average (WA)
    approximation with analytic gradients (Hsu-Chang-Balabanov), the
    wirelength objective of DREAMPlace.

    Per net and dimension, with a_i = exp(x_i / gamma):
      WA_max = sum(x_i a_i) / sum(a_i)
      d WA_max / d x_i = a_i (1 + (x_i - WA_max)/gamma) / sum(a_i)
    and symmetrically for WA_min with negated exponents. The net's smooth
    length is (WA_max - WA_min) per dimension, scaled by the net weight. *)

open Netlist

(* Test-only fault injection: when set, applied to every per-pin WA
   gradient contribution before it accumulates. The oracle suite flips it
   on to prove the finite-difference gradient gate can fail; it must stay
   [None] outside those tests. *)
let grad_fault : (float -> float) option ref = ref None

(** Exact weighted HPWL (net weights applied) — the objective value. *)
let weighted_hpwl (d : Design.t) =
  Array.fold_left (fun acc n -> acc +. (n.Design.weight *. Design.net_hpwl d n)) 0.0 d.nets

(* One dimension of one net: accumulates d(WA_max - WA_min)/d coord into
   [grad] at the owning cells, scaled by [w]. Returns the net's smooth
   extent in this dimension. *)
let wa_one_dim (d : Design.t) (pids : int array) ~coord ~gamma ~w ~grad =
  let n = Array.length pids in
  if n <= 1 then 0.0
  else begin
    let xs = Array.map (fun pid -> coord d.pins.(pid)) pids in
    let xmax = Array.fold_left Float.max Float.neg_infinity xs in
    let xmin = Array.fold_left Float.min Float.infinity xs in
    (* max side *)
    let s_max = ref 0.0 and t_max = ref 0.0 in
    let s_min = ref 0.0 and t_min = ref 0.0 in
    let ea = Array.make n 0.0 and eb = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let a = exp ((xs.(i) -. xmax) /. gamma) in
      let b = exp ((xmin -. xs.(i)) /. gamma) in
      ea.(i) <- a;
      eb.(i) <- b;
      s_max := !s_max +. a;
      t_max := !t_max +. (xs.(i) *. a);
      s_min := !s_min +. b;
      t_min := !t_min +. (xs.(i) *. b)
    done;
    let wa_max = !t_max /. !s_max and wa_min = !t_min /. !s_min in
    for i = 0 to n - 1 do
      let gmax = ea.(i) *. (1.0 +. ((xs.(i) -. wa_max) /. gamma)) /. !s_max in
      let gmin = eb.(i) *. (1.0 -. ((xs.(i) -. wa_min) /. gamma)) /. !s_min in
      let cell = d.pins.(pids.(i)).owner in
      let contrib = w *. (gmax -. gmin) in
      let contrib = match !grad_fault with None -> contrib | Some f -> f contrib in
      grad.(cell) <- grad.(cell) +. contrib
    done;
    wa_max -. wa_min
  end

(** Smooth weighted wirelength of the whole design; adds its gradient
    w.r.t. cell centres into [gx]/[gy] (arrays over cells; fixed cells
    receive gradient too — callers zero or ignore them).

    Parallelised over nets when [Util.Parallel] domains are enabled: each
    chunk accumulates into private buffers merged afterwards (cells are
    shared across nets, so direct accumulation would race). *)
let wa_wirelength_grad (d : Design.t) ~gamma ~gx ~gy =
  let nnets = Design.num_nets d in
  let nchunks = Util.Parallel.chunk_count ~n:nnets in
  if nchunks = 1 then begin
    let total = ref 0.0 in
    Array.iter
      (fun (net : Design.net) ->
        let pids = Array.of_list (Design.net_pins net) in
        let w = net.weight in
        let ex = wa_one_dim d pids ~coord:(fun p -> Design.pin_x d p) ~gamma ~w ~grad:gx in
        let ey = wa_one_dim d pids ~coord:(fun p -> Design.pin_y d p) ~gamma ~w ~grad:gy in
        total := !total +. (w *. (ex +. ey)))
      d.nets;
    !total
  end
  else begin
    let nc = Design.num_cells d in
    let bufs =
      Util.Parallel.iter_chunks_scratch ~name:"wl.grad" ~n:nnets
        ~scratch:(fun () -> (Array.make nc 0.0, Array.make nc 0.0, ref 0.0))
        (fun ~scratch:(bx, by, bt) ~chunk:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            let net = d.nets.(i) in
            let pids = Array.of_list (Design.net_pins net) in
            let w = net.weight in
            let ex = wa_one_dim d pids ~coord:(fun p -> Design.pin_x d p) ~gamma ~w ~grad:bx in
            let ey = wa_one_dim d pids ~coord:(fun p -> Design.pin_y d p) ~gamma ~w ~grad:by in
            bt := !bt +. (w *. (ex +. ey))
          done)
    in
    let total = ref 0.0 in
    Array.iter (fun (_, _, bt) -> total := !total +. !bt) bufs;
    Util.Parallel.for_ ~name:"wl.grad.merge" nc (fun c ->
        Array.iter
          (fun (bx, by, _) ->
            gx.(c) <- gx.(c) +. bx.(c);
            gy.(c) <- gy.(c) +. by.(c))
          bufs);
    !total
  end
