(** RUDY routing-demand estimation: each net spreads (w+h)/(w*h) demand
    over its bounding box; the summed map is the standard placement-time
    congestion proxy. *)

type t = {
  bins_x : int;
  bins_y : int;
  bin_w : float;
  bin_h : float;
  die : Geom.Rect.t;
  demand : float array; (* wiring demand per bin, row-major *)
}

val create : Netlist.Design.t -> bins_x:int -> bins_y:int -> t

(** Rebuild the map from the current placement. *)
val update : t -> Netlist.Design.t -> unit

(** Integral of the map — an HPWL-like total wiring demand. *)
val total_demand : t -> float

(** Peak / mean bin demand (1.0 = perfectly uniform). *)
val hotspot_factor : t -> float

val percentile : t -> float -> float
