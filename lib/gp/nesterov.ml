(** Nesterov accelerated gradient with a Barzilai-Borwein step estimate —
    the ePlace/DREAMPlace optimizer shape.

    The caller supplies the gradient evaluated at the *reference* point
    [v]; the optimizer maintains the major iterate [u] and momentum
    coefficient. Step length is ||dv|| / ||dg|| (an inverse-Lipschitz
    estimate), clamped to [max_step] to survive the first iterations and
    weight re-shuffles. *)

type t = {
  dim : int;
  u : float array;
  v : float array;
  prev_v : float array;
  prev_g : float array;
  u_new : float array; (* step scratch, reused every call *)
  norm : float array; (* single-slot accumulator for the BB norms *)
  obs : Obs.Ctx.t;
  mutable a : float;
  mutable have_prev : bool;
  mutable last_step : float;
}

let create ?(obs = Obs.Ctx.null) x0 =
  {
    dim = Array.length x0;
    u = Array.copy x0;
    v = Array.copy x0;
    prev_v = Array.copy x0;
    prev_g = Array.make (Array.length x0) 0.0;
    u_new = Array.make (Array.length x0) 0.0;
    norm = Array.make 1 0.0;
    obs;
    a = 1.0;
    have_prev = false;
    last_step = 0.0;
  }

(** Current reference point (where the next gradient must be evaluated). *)
let reference t = t.v

let iterate t = t.u

let last_step t = t.last_step

(* ||a - b||_2, accumulated in a float-array slot: a [ref] accumulator
   would box a float per element, twice per optimizer step. *)
let dist2 (s : float array) a b =
  s.(0) <- 0.0;
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    s.(0) <- s.(0) +. (d *. d)
  done;
  sqrt s.(0)

(** One optimizer step given gradient [g] at [reference t].
    [fallback_step] is used before a Lipschitz estimate exists;
    [max_step] bounds the step length; [clamp] projects a candidate
    iterate into the feasible box (applied to [u]). *)
(* Step lengths span several decades across designs and phases; these
   bounds (10 µ-units .. ~1.3e3) keep the histogram informative. *)
let step_len_bounds = Array.init 28 (fun i -> 1e-5 *. (2.0 ** float_of_int i))

let step t ~g ~fallback_step ~max_step ~clamp =
  let fallback_used = ref false in
  let alpha =
    if not t.have_prev then begin
      fallback_used := true;
      fallback_step
    end
    else begin
      let dv = dist2 t.norm t.v t.prev_v in
      let dg = dist2 t.norm g t.prev_g in
      (* A NaN anywhere in [g] (or a poisoned iterate) makes dv/dg NaN;
         every comparison against NaN is false, so the old [dg < 1e-30]
         test alone let a NaN step through and poison u/v/prev_g forever.
         Any non-finite norm means the BB estimate is meaningless. *)
      if (not (Float.is_finite dv)) || (not (Float.is_finite dg)) || dg < 1e-30 then begin
        fallback_used := true;
        fallback_step
      end
      else Float.min max_step (dv /. dg)
    end
  in
  if Obs.Ctx.enabled t.obs then begin
    Obs.Ctx.count t.obs "nesterov.steps";
    if !fallback_used then Obs.Ctx.count t.obs "nesterov.fallback_steps";
    Obs.Ctx.observe t.obs ~bounds:step_len_bounds "nesterov.step_len" alpha
  end;
  t.last_step <- alpha;
  Array.blit t.v 0 t.prev_v 0 t.dim;
  Array.blit g 0 t.prev_g 0 t.dim;
  t.have_prev <- true;
  let u_new = t.u_new in
  for i = 0 to t.dim - 1 do
    u_new.(i) <- t.v.(i) -. (alpha *. g.(i))
  done;
  clamp u_new;
  let a_new = (1.0 +. sqrt ((4.0 *. t.a *. t.a) +. 1.0)) /. 2.0 in
  let coef = (t.a -. 1.0) /. a_new in
  for i = 0 to t.dim - 1 do
    t.v.(i) <- u_new.(i) +. (coef *. (u_new.(i) -. t.u.(i)));
    t.u.(i) <- u_new.(i)
  done;
  clamp t.v;
  t.a <- a_new
