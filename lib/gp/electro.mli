(** Electrostatic density force (ePlace): bin charges induce a potential
    via Poisson's equation; its negative gradient moves cells from
    over-filled to under-filled regions. Cell charge = cell area. *)

type t = {
  grid : Densitygrid.t;
  poisson : Numerics.Poisson.t;
  obs : Obs.Ctx.t; (* routes the in-kernel finiteness probe *)
  (* Allocated once in [create]; rewritten in place by every [solve]. *)
  rho : float array;
  psi : float array;
  ex : float array; (* field, grid units *)
  ey : float array;
  mutable energy : float;
}

val create : ?obs:Obs.Ctx.t -> Densitygrid.t -> t

(** Re-solve potential/field/energy; call after [Densitygrid.update]. *)
val solve : t -> target_density:float -> unit

(** Add the density-energy gradient (physical units) for every movable
    cell into [gx]/[gy]; descending it follows the field. *)
val add_grad : t -> Netlist.Design.t -> gx:float array -> gy:float array -> unit
