(** Bin-grid density accumulation and the overflow metric. Cells smaller
    than a bin are inflated to bin size with density scaled to preserve
    area (the ePlace smoothing rule). *)

type t = {
  bins_x : int;
  bins_y : int;
  bin_w : float;
  bin_h : float;
  inv_bin_w : float; (* cached 1/bin_w for bin-index math *)
  inv_bin_h : float;
  die : Geom.Rect.t;
  density : float array; (* movable area per bin, row-major [by*bins_x+bx] *)
  fixed : float array; (* fixed (blockage/pad) area per bin, set once *)
  eff_w : float array; (* per-cell inflated extents / density scale, *)
  eff_h : float array; (* precomputed once (cell sizes are static) *)
  eff_scale : float array;
  mutable scratch : float array array; (* per-domain accumulation grids *)
  mutable partial : float array; (* per-chunk reduction slots (overflow) *)
}

(** Precomputes the fixed-density layer from non-movable cells. *)
val create : Netlist.Design.t -> bins_x:int -> bins_y:int -> t

val bin_area : t -> float

(** Re-accumulate movable density from the current placement. *)
val update : t -> Netlist.Design.t -> unit

(** Fraction of movable area above per-bin capacity
    (target_density * bin_area - fixed) — the convergence metric. *)
val overflow : t -> target_density:float -> movable_area:float -> float

(** Charge grid for the Poisson solve into a caller-owned buffer:
    occupied density minus target. Allocation-free. *)
val charge_into : t -> target_density:float -> rho:float array -> unit

(** Allocating wrapper over {!charge_into}. *)
val charge : t -> target_density:float -> float array
