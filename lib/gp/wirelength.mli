(** Wirelength models: exact HPWL and the smooth weighted-average (WA)
    approximation with analytic gradients — the DREAMPlace wirelength
    objective. WA underestimates HPWL and converges to it as gamma -> 0. *)

(** Test-only fault injection applied to every per-pin WA gradient
    contribution; used by the oracle suite to prove its finite-difference
    gradient gate is not vacuous. Must stay [None] outside those tests. *)
val grad_fault : (float -> float) option ref

(** Exact net-weighted HPWL. *)
val weighted_hpwl : Netlist.Design.t -> float

(** Smooth weighted wirelength of the whole design; adds its gradient
    w.r.t. cell centres into [gx]/[gy] (cell-indexed; fixed cells receive
    gradient too — callers ignore them). Returns the smooth value. *)
val wa_wirelength_grad :
  Netlist.Design.t -> gamma:float -> gx:float array -> gy:float array -> float
