(** Wirelength models: exact HPWL and the smooth weighted-average (WA)
    approximation with analytic gradients — the DREAMPlace wirelength
    objective. WA underestimates HPWL and converges to it as gamma -> 0. *)

(** Test-only fault injection applied to every per-pin WA gradient
    contribution; used by the oracle suite to prove its finite-difference
    gradient gate is not vacuous. Must stay [None] outside those tests. *)
val grad_fault : (float -> float) option ref

(** Exact net-weighted HPWL. *)
val weighted_hpwl : Netlist.Design.t -> float

(** Reusable kernel scratch (per-pin exponent buffers, per-chunk gradient
    accumulators). Create once per design; the gradient kernel then runs
    allocation-free in steady state. *)
type ws

val make_ws : Netlist.Design.t -> ws

(** Smooth weighted wirelength of the whole design; adds its gradient
    w.r.t. cell centres into [gx]/[gy] (cell-indexed; fixed cells receive
    gradient too — callers ignore them). Returns the smooth value.
    Allocation-free in steady state. *)
val wa_wirelength_grad_ws :
  ws -> Netlist.Design.t -> gamma:float -> gx:float array -> gy:float array -> float

(** One-shot variant of {!wa_wirelength_grad_ws} building a fresh
    workspace per call — cold paths and tests. *)
val wa_wirelength_grad :
  Netlist.Design.t -> gamma:float -> gx:float array -> gy:float array -> float
