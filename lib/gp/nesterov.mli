(** Nesterov accelerated gradient with a Barzilai-Borwein step estimate —
    the ePlace/DREAMPlace optimizer shape. The caller evaluates gradients
    at [reference t]; the step length is ||dv||/||dg|| clamped to
    [max_step]. *)

type t

(** [obs] receives step counters ([nesterov.steps],
    [nesterov.fallback_steps]) and a step-length histogram
    ([nesterov.step_len]). *)
val create : ?obs:Obs.Ctx.t -> float array -> t

(** Length of the most recent step (0 before the first). *)
val last_step : t -> float

(** Where the next gradient must be evaluated. *)
val reference : t -> float array

(** The current major iterate. *)
val iterate : t -> float array

(** One step given gradient [g] at [reference t]. [clamp] projects a
    candidate iterate into the feasible box (mutates its argument).
    Falls back to [fallback_step] whenever the BB norms are non-finite
    (a NaN gradient must not produce a NaN step); detecting and rolling
    back the poisoned iterate itself is the caller's job. *)
val step :
  t ->
  g:float array ->
  fallback_step:float ->
  max_step:float ->
  clamp:(float array -> unit) ->
  unit
