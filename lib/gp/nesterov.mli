(** Nesterov accelerated gradient with a Barzilai-Borwein step estimate —
    the ePlace/DREAMPlace optimizer shape. The caller evaluates gradients
    at [reference t]; the step length is ||dv||/||dg|| clamped to
    [max_step]. *)

type t

val create : float array -> t

(** Where the next gradient must be evaluated. *)
val reference : t -> float array

(** The current major iterate. *)
val iterate : t -> float array

(** One step given gradient [g] at [reference t]. [clamp] projects a
    candidate iterate into the feasible box (mutates its argument). *)
val step :
  t ->
  g:float array ->
  fallback_step:float ->
  max_step:float ->
  clamp:(float array -> unit) ->
  unit
