(** Light detailed placement: greedy same-width cell swaps that reduce the
    HPWL of their incident nets. Legality is preserved by construction. *)

(** One sweep over nearby cell pairs; returns accepted swaps. *)
val pass : Netlist.Design.t -> window:int -> int

(** Sliding-window exact reordering of [k] consecutive same-row cells
    (re-packed into the same span, so legality is preserved). Returns the
    number of improving windows. *)
val reorder_rows : ?k:int -> Netlist.Design.t -> int

(** Up to [passes] pair-swap sweeps plus one row-reordering sweep (early
    stop on no progress); returns total accepted improvements. *)
val run : ?passes:int -> ?window:int -> Netlist.Design.t -> int
