(** The analytical global placement loop (vanilla DREAMPlace):

      min  sum_e w_e * WA_e(x, y) + lambda * Energy(x, y)

    solved with preconditioned Nesterov. Timing-driven flows plug in via
    {!hooks}: [on_round] fires every [round_every] iterations with the
    reference placement materialised (where a TDP flow runs STA and
    refreshes weights); [extra_grad] contributes additional gradient terms
    every iteration of the timing phase. *)

type params = {
  bins_x : int; (* 0 = auto from design size *)
  bins_y : int;
  target_density : float;
  max_iters : int;
  min_iters : int;
  stop_overflow : float;
  gamma_scale : float; (* WA gamma in bin widths at high overflow *)
  lambda_mult : float; (* per-iteration density multiplier growth *)
  noise_sigma : float; (* initial spread, in bin widths *)
  seed : int;
  timing_start : int; (* iteration at which hooks begin to fire *)
  round_every : int; (* hook cadence (the paper's m) *)
  max_recoveries : int; (* consecutive divergence rollbacks before a hard
                           [Util.Errors.Diverged] failure *)
  warm_start : bool; (* skip the initial spread; resume from the design's
                        current (clamped) positions *)
  verbose : bool;
}

val default_params : params

type trace_point = {
  iter : int;
  hpwl : float;
  overflow : float;
  gamma : float;
  lambda : float;
}

type hooks = {
  on_round : iter:int -> overflow:float -> unit;
  extra_grad : iter:int -> wl_norm:float -> gx:float array -> gy:float array -> unit;
      (** [wl_norm] is the L1 norm of the pure wirelength gradient over
          movable cells this iteration — the stable yardstick auxiliary
          (timing) forces are normalised against. *)
}

val no_hooks : hooks

(** Power-of-two bin count heuristic for a design. *)
val auto_bins : Netlist.Design.t -> int

(** Gaussian spread around the die centre — the standard initialisation
    (called by {!run}; exposed for tests). *)
val initial_spread :
  ?sigma_bins:float -> Netlist.Design.t -> bin_w:float -> bin_h:float -> seed:int -> unit

type result = {
  trace : trace_point list; (* chronological *)
  iters : int;
  final_hpwl : float;
  final_overflow : float;
}

(** Runs global placement in place (re-initialises movable positions from
    [params.seed], unless [params.warm_start] keeps the current ones).
    [obs] receives one [gp_iter] span per iteration
    (attributes: iter / overflow / gamma / lambda, plus hpwl whenever the
    iteration computes it) with [density] / [wl_grad] / [optimizer] child
    spans, iteration counters, and final hpwl/overflow gauges.
    Observation-only: results are identical with or without a context.

    Divergence guard: every iteration the gradient is checked finite (and
    the fresh iterate sample-probed); on detection the run counts
    [guard.nan_detected], rolls back to the last HPWL-verified checkpoint
    ([guard.rollbacks]) with backed-off step bounds, and raises
    [Util.Errors.Error (Diverged _)] after [params.max_recoveries]
    consecutive rollbacks. Raises [Util.Errors.Error (Invalid_design _)]
    when the design has no movable cells. *)
val run :
  ?params:params ->
  ?hooks:hooks ->
  ?obs:Obs.Ctx.t ->
  ?heartbeat:Obs.Heartbeat.t ->
  Netlist.Design.t ->
  result
