(** Abacus row legalisation (Spindler et al.): cells are inserted in x
    order into the displacement-cheapest nearby row; overlapping clusters
    collapse to their squared-displacement-optimal positions. Blockages
    fragment rows into independent segments. *)

(** Legalise in place; returns the total displacement charged during row
    assignment. Raises [Util.Errors.Error (Infeasible _)] when a cell
    fits nowhere or the die holds no rows. *)
val run : Netlist.Design.t -> float

(** No two movable cells overlap and every movable cell sits in a row. *)
val is_legal : Netlist.Design.t -> bool
