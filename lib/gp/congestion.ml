(** RUDY routing-demand estimation (Spindler & Johannes).

    Each net spreads a uniform wiring demand of density
      (w + h) / (w * h)        [wirelength per unit area]
    over its bounding box (w x h), optionally weighted. Summing over nets
    gives a fast congestion map whose hot spots correlate well with global
    routing overflow — the standard placement-time congestion proxy. *)

open Netlist

type t = {
  bins_x : int;
  bins_y : int;
  bin_w : float;
  bin_h : float;
  die : Geom.Rect.t;
  demand : float array; (* wiring demand per bin, row-major *)
}

let create (d : Design.t) ~bins_x ~bins_y =
  {
    bins_x;
    bins_y;
    bin_w = Geom.Rect.width d.die /. float_of_int bins_x;
    bin_h = Geom.Rect.height d.die /. float_of_int bins_y;
    die = d.die;
    demand = Array.make (bins_x * bins_y) 0.0;
  }

(** Rebuild the demand map from the current placement. *)
let update t (d : Design.t) =
  Array.fill t.demand 0 (Array.length t.demand) 0.0;
  for nid = 0 to Design.num_nets d - 1 do
    if Design.net_degree d nid >= 2 then begin
      let pts = ref [] in
      Design.iter_net_pins d nid (fun pid -> pts := Design.pin_pos d pid :: !pts);
      let pts = !pts in
      let bbox = Geom.Rect.bbox_of_points pts in
      (* Degenerate (zero-area) boxes still carry length demand: pad
         to one bin so the density stays finite. *)
      let bbox =
        Geom.Rect.make
          ~xl:(bbox.xl -. (t.bin_w /. 2.0))
          ~yl:(bbox.yl -. (t.bin_h /. 2.0))
          ~xh:(bbox.xh +. (t.bin_w /. 2.0))
          ~yh:(bbox.yh +. (t.bin_h /. 2.0))
      in
      let density = (Geom.Rect.width bbox +. Geom.Rect.height bbox) /. Geom.Rect.area bbox in
      let bxl = max 0 (int_of_float (floor ((bbox.xl -. t.die.xl) /. t.bin_w))) in
      let bxh = min (t.bins_x - 1) (int_of_float (floor ((bbox.xh -. t.die.xl) /. t.bin_w))) in
      let byl = max 0 (int_of_float (floor ((bbox.yl -. t.die.yl) /. t.bin_h))) in
      let byh = min (t.bins_y - 1) (int_of_float (floor ((bbox.yh -. t.die.yl) /. t.bin_h))) in
      for by = byl to byh do
        let b_yl = t.die.yl +. (float_of_int by *. t.bin_h) in
        let oy = Float.min bbox.yh (b_yl +. t.bin_h) -. Float.max bbox.yl b_yl in
        if oy > 0.0 then
          for bx = bxl to bxh do
            let b_xl = t.die.xl +. (float_of_int bx *. t.bin_w) in
            let ox = Float.min bbox.xh (b_xl +. t.bin_w) -. Float.max bbox.xl b_xl in
            if ox > 0.0 then
              t.demand.((by * t.bins_x) + bx) <-
                t.demand.((by * t.bins_x) + bx) +. (density *. ox *. oy)
          done
      done
    end
  done

(** Total estimated wirelength (the integral of the demand map): equals
    the sum of padded-bbox half-perimeters, an HPWL-like quantity. *)
let total_demand t = Array.fold_left ( +. ) 0.0 t.demand

(** Peak bin demand divided by mean — the hotspot factor reported by
    congestion studies (1.0 = perfectly uniform). *)
let hotspot_factor t =
  let mean = total_demand t /. float_of_int (Array.length t.demand) in
  if mean <= 0.0 then 1.0
  else Array.fold_left Float.max 0.0 t.demand /. mean

(** Demand of the [q]-th percentile bin. *)
let percentile t q = Util.Stats.percentile t.demand q
