(** The analytical global placement loop (vanilla DREAMPlace):

      min_x,y  sum_e w_e * WA_e(x, y) + lambda * Energy(x, y)

    solved with preconditioned Nesterov. Timing-driven flows plug in via
    [hooks]: [on_round] fires every [round_every] iterations after the
    reference placement is materialised (the point where a TDP flow runs
    STA and refreshes weights), and [extra_grad] contributes additional
    gradient terms (e.g. the pin-to-pin attraction loss). *)

open Netlist

type params = {
  bins_x : int;
  bins_y : int; (* 0 = auto from design size *)
  target_density : float;
  max_iters : int;
  min_iters : int;
  stop_overflow : float;
  gamma_scale : float; (* WA gamma in bin widths at high overflow *)
  lambda_mult : float; (* per-iteration density multiplier growth *)
  noise_sigma : float; (* initial spread, in bin widths *)
  seed : int;
  timing_start : int; (* iteration at which hooks begin to fire *)
  round_every : int; (* hook cadence (the paper's m) *)
  max_recoveries : int; (* consecutive divergence rollbacks before a hard
                           [Util.Errors.Diverged] failure *)
  warm_start : bool; (* keep the design's current positions instead of the
                        Gaussian initial spread — incremental re-placement
                        resumes from the previous converged solution *)
  verbose : bool;
}

let default_params =
  {
    bins_x = 0;
    bins_y = 0;
    target_density = 1.0;
    max_iters = 900;
    min_iters = 150;
    stop_overflow = 0.07;
    gamma_scale = 4.0;
    lambda_mult = 1.05;
    noise_sigma = 2.0;
    seed = 1;
    timing_start = max_int; (* vanilla: hooks never fire *)
    round_every = 15;
    max_recoveries = 5;
    warm_start = false;
    verbose = false;
  }

type trace_point = {
  iter : int;
  hpwl : float;
  overflow : float;
  gamma : float;
  lambda : float;
}

type hooks = {
  on_round : iter:int -> overflow:float -> unit;
  extra_grad : iter:int -> wl_norm:float -> gx:float array -> gy:float array -> unit;
      (* [wl_norm] is the L1 norm of the pure wirelength gradient over the
         movable cells this iteration — the stable yardstick auxiliary
         (timing) forces should be normalised against. *)
}

let no_hooks =
  {
    on_round = (fun ~iter:_ ~overflow:_ -> ());
    extra_grad = (fun ~iter:_ ~wl_norm:_ ~gx:_ ~gy:_ -> ());
  }

let auto_bins (d : Design.t) =
  let n = Design.num_movable d in
  let rec pow2 v = if v >= 256 || v * v >= n then v else pow2 (2 * v) in
  max 16 (pow2 16)

(* Pack movable coordinates into the optimizer vector [x...; y...]. *)
let pack d movable =
  let nm = Array.length movable in
  let vec = Array.make (2 * nm) 0.0 in
  Array.iteri
    (fun i id ->
      vec.(i) <- d.Design.x.{id};
      vec.(nm + i) <- d.Design.y.{id})
    movable;
  vec

let unpack d movable vec =
  let nm = Array.length movable in
  Array.iteri
    (fun i id ->
      d.Design.x.{id} <- vec.(i);
      d.Design.y.{id} <- vec.(nm + i))
    movable

(** Spread movable cells around the die centre with Gaussian noise — the
    standard analytic-placement initialisation. *)
let initial_spread ?(sigma_bins = 2.0) (d : Design.t) ~bin_w ~bin_h ~seed =
  let rng = Util.Rng.create seed in
  let ctr = Geom.Rect.center d.die in
  for i = 0 to Design.num_cells d - 1 do
    if Design.is_movable d i then begin
      d.x.{i} <- Util.Rng.gaussian rng ~mean:ctr.Geom.Point.x ~stddev:(sigma_bins *. bin_w);
      d.y.{i} <- Util.Rng.gaussian rng ~mean:ctr.Geom.Point.y ~stddev:(sigma_bins *. bin_h)
    end
  done;
  Design.clamp_movable d

type result = {
  trace : trace_point list; (* chronological *)
  iters : int;
  final_hpwl : float;
  final_overflow : float;
}

let run ?(params = default_params) ?(hooks = no_hooks) ?(obs = Obs.Ctx.null) ?heartbeat
    (d : Design.t) =
  let tick name f = Obs.Ctx.span obs name f in
  let bins_x = if params.bins_x > 0 then params.bins_x else auto_bins d in
  let bins_y = if params.bins_y > 0 then params.bins_y else bins_x in
  let grid = Densitygrid.create d ~bins_x ~bins_y in
  let electro = Electro.create ~obs grid in
  let movable = Array.of_list (Design.movable_ids d) in
  let nm = Array.length movable in
  if nm = 0 then Util.Errors.invalid_design ~design:d.Design.name [ "no movable cells" ];
  let movable_area = Design.movable_area d in
  let bin_w = grid.Densitygrid.bin_w and bin_h = grid.Densitygrid.bin_h in
  (* Warm starts resume from whatever the design currently holds (the
     daemon's previous converged placement plus an ECO delta); clamping
     still applies so an out-of-die delta cannot seed the optimizer with
     an infeasible iterate. *)
  if params.warm_start then Design.clamp_movable d
  else initial_spread d ~sigma_bins:params.noise_sigma ~bin_w ~bin_h ~seed:params.seed;
  let opt = ref (Nesterov.create ~obs (pack d movable)) in
  (* Per-cell preconditioner data. *)
  let pin_count = Array.make (Design.num_cells d) 0 in
  for p = 0 to Design.num_pins d - 1 do
    if d.pin_net.(p) >= 0 then begin
      let o = d.pin_owner.(p) in
      pin_count.(o) <- pin_count.(o) + 1
    end
  done;
  let gx = Array.make (Design.num_cells d) 0.0 in
  let gy = Array.make (Design.num_cells d) 0.0 in
  (* Density-gradient scratch, zeroed and refilled in place every
     iteration: the steady-state loop never allocates per-cell arrays. *)
  let dgx = Array.make (Design.num_cells d) 0.0 in
  let dgy = Array.make (Design.num_cells d) 0.0 in
  let wl_ws = Wirelength.make_ws d in
  let gvec = Array.make (2 * nm) 0.0 in
  (* Single-slot accumulator for the per-iteration norm reductions: a
     float [ref] would box one float per element summed. *)
  let nacc = Array.make 1 0.0 in
  let lambda = ref 0.0 in
  let trace = ref [] in
  let iter = ref 0 in
  let stop = ref false in
  let converged_once = ref false in
  let last_overflow = ref 1.0 in
  (* ---- divergence guard state ----
     [last_good] is the most recent placement verified finite end-to-end
     (the HPWL sum touches every coordinate, so a finite HPWL proves the
     whole iterate finite) together with the density multiplier at that
     point. On detecting a non-finite gradient or iterate the design and
     optimizer roll back there and the step bounds back off; exhausting
     [max_recoveries] consecutive rollbacks without an intervening
     verified checkpoint is a hard structured failure. *)
  let last_good = ref (Design.snapshot d, 0.0) in
  let consecutive_recoveries = ref 0 in
  let just_recovered = ref false in
  let backoff = ref 1.0 in
  let recover ~what =
    Obs.Ctx.count obs "guard.nan_detected";
    if !consecutive_recoveries >= params.max_recoveries then
      Util.Errors.diverged ~stage:"globalplace" ~recoveries:!consecutive_recoveries
        (Printf.sprintf "non-finite %s at iteration %d; %d consecutive rollbacks exhausted"
           what !iter !consecutive_recoveries);
    incr consecutive_recoveries;
    just_recovered := true;
    let snap, lam = !last_good in
    Design.restore d snap;
    Design.clamp_movable d;
    lambda := lam;
    opt := Nesterov.create ~obs (pack d movable);
    backoff := Float.max 1e-3 (!backoff *. 0.5);
    Obs.Ctx.count obs "guard.rollbacks";
    Obs.Log.warn "[gp %s] non-finite %s at iter %d: rolled back (recovery %d/%d, backoff %.3g)"
      d.name what !iter !consecutive_recoveries params.max_recoveries !backoff
  in
  let clamp vec =
    (* Project each candidate position so the cell stays on the die. *)
    Array.iteri
      (fun i id ->
        let hw = d.w.{id} /. 2.0 and hh = d.h.{id} /. 2.0 in
        vec.(i) <- Float.max (d.die.xl +. hw) (Float.min (d.die.xh -. hw) vec.(i));
        vec.(nm + i) <-
          Float.max (d.die.yl +. hh) (Float.min (d.die.yh -. hh) vec.(nm + i)))
      movable
  in
  while (not !stop) && !iter < params.max_iters do
    (* One [gp_iter] span per iteration (the journalled replacement for the
       write-only trace_point list): iter/overflow/gamma/lambda always,
       hpwl whenever this iteration computes it. *)
    Obs.Ctx.span obs "gp_iter" (fun () ->
    just_recovered := false;
    (* Materialise the reference point; all evaluation happens there. *)
    unpack d movable (Nesterov.reference !opt);
    let overflow =
      tick "density" (fun () ->
          Densitygrid.update grid d;
          let overflow =
            Densitygrid.overflow grid ~target_density:params.target_density ~movable_area
          in
          Electro.solve electro ~target_density:params.target_density;
          overflow)
    in
    last_overflow := overflow;
    (* Timing hook cadence (the paper's "every m rounds"). *)
    if !iter >= params.timing_start && (!iter - params.timing_start) mod params.round_every = 0
    then hooks.on_round ~iter:!iter ~overflow;
    (* gamma: large when the design is spread-chaotic, small near
       convergence so WA approaches true HPWL. *)
    let gamma = bin_w *. params.gamma_scale *. (0.1 +. (0.9 *. Float.min 1.0 overflow)) in
    Array.fill gx 0 (Array.length gx) 0.0;
    Array.fill gy 0 (Array.length gy) 0.0;
    let _wl = tick "wl_grad" (fun () -> Wirelength.wa_wirelength_grad_ws wl_ws d ~gamma ~gx ~gy) in
    nacc.(0) <- 0.0;
    for i = 0 to nm - 1 do
      let id = movable.(i) in
      nacc.(0) <- nacc.(0) +. Float.abs gx.(id) +. Float.abs gy.(id)
    done;
    let wl_norm = nacc.(0) in
    if !lambda = 0.0 then begin
      (* First iteration: balance wirelength and density gradient norms. *)
      Array.fill dgx 0 (Array.length dgx) 0.0;
      Array.fill dgy 0 (Array.length dgy) 0.0;
      Electro.add_grad electro d ~gx:dgx ~gy:dgy;
      nacc.(0) <- 0.0;
      for i = 0 to nm - 1 do
        let id = movable.(i) in
        nacc.(0) <- nacc.(0) +. Float.abs dgx.(id) +. Float.abs dgy.(id)
      done;
      let den_norm = nacc.(0) in
      (* Cold starts under-weight density (0.1x) and let the multiplier
         grow into it. A warm start is already near-legal: its overflow
         is below the stop target, so the growth latch freezes lambda at
         the init value — an 0.1x init there lets wirelength pull the
         placement back into overlap that legalization later has to
         shred. Balance at full strength instead. *)
      let balance = if params.warm_start then 1.0 else 0.1 in
      lambda := if den_norm > 1e-30 then balance *. wl_norm /. den_norm else 1.0
    end;
    (* Density gradient scaled by lambda. *)
    Array.fill dgx 0 (Array.length dgx) 0.0;
    Array.fill dgy 0 (Array.length dgy) 0.0;
    tick "density" (fun () -> Electro.add_grad electro d ~gx:dgx ~gy:dgy);
    Array.iter
      (fun id ->
        gx.(id) <- gx.(id) +. (!lambda *. dgx.(id));
        gy.(id) <- gy.(id) +. (!lambda *. dgy.(id)))
      movable;
    if !iter >= params.timing_start then hooks.extra_grad ~iter:!iter ~wl_norm ~gx ~gy;
    (* Precondition and pack. *)
    Array.iteri
      (fun i id ->
        let p = Float.max 1.0 (float_of_int pin_count.(id) +. (!lambda *. d.w.{id} *. d.h.{id})) in
        gvec.(i) <- gx.(id) /. p;
        gvec.(nm + i) <- gy.(id) /. p)
      movable;
    (* Guard: a non-finite gradient (density/FFT blowup, timing-force
       NaN, injected fault) must never reach the optimizer — it would
       poison u/v/prev_g and every later iterate. *)
    if not (Util.Guard.all_finite gvec) then recover ~what:"gradient"
    else begin
      (* Express step bounds as average cell displacement in bin widths;
         [backoff] shrinks them after a rollback and relaxes back to 1
         as verified checkpoints accumulate. *)
      nacc.(0) <- 0.0;
      for i = 0 to (2 * nm) - 1 do
        nacc.(0) <- nacc.(0) +. Float.abs gvec.(i)
      done;
      let mean_g = Float.max 1e-30 (nacc.(0) /. float_of_int (2 * nm)) in
      let fallback_step = 0.25 *. bin_w /. mean_g *. !backoff in
      let max_step = 25.0 *. bin_w /. mean_g *. !backoff in
      tick "optimizer" (fun () -> Nesterov.step !opt ~g:gvec ~fallback_step ~max_step ~clamp);
      (* Cheap sampled probe of the fresh iterate (the periodic HPWL
         checkpoint below is the exhaustive pass). *)
      if not (Util.Guard.sampled_finite ~offset:!iter (Nesterov.iterate !opt)) then
        recover ~what:"iterate"
    end;
    (* The density multiplier grows until the overflow target is first
       reached, then latches: timing forces perturb the density, and
       resuming the exponential growth would let lambda run away and shred
       the placement (observed as HPWL divergence in the timing phase). *)
    if overflow < params.stop_overflow then converged_once := true;
    if not !converged_once then lambda := !lambda *. params.lambda_mult;
    Obs.Ctx.span_attrs obs
      [
        ("iter", Obs.Json.Int !iter);
        ("overflow", Obs.Json.Float overflow);
        ("gamma", Obs.Json.Float gamma);
        ("lambda", Obs.Json.Float !lambda);
      ];
    if (not !just_recovered) && (!iter mod 10 = 0 || overflow < params.stop_overflow) then begin
      unpack d movable (Nesterov.iterate !opt);
      let hpwl = Design.total_hpwl d in
      if Util.Guard.is_finite hpwl then begin
        (* Verified checkpoint: HPWL touched every coordinate and came
           back finite, so this placement is safe to roll back to. *)
        last_good := (Design.snapshot d, !lambda);
        consecutive_recoveries := 0;
        backoff := Float.min 1.0 (!backoff *. 1.25);
        trace := { iter = !iter; hpwl; overflow; gamma; lambda = !lambda } :: !trace;
        (match heartbeat with Some hb -> Obs.Heartbeat.note_hpwl hb hpwl | None -> ());
        Obs.Ctx.span_attrs obs [ ("hpwl", Obs.Json.Float hpwl) ];
        if params.verbose || Obs.Log.enabled Obs.Log.Debug then
          Obs.Log.emit Obs.Log.Debug
            (Printf.sprintf "[gp %s] iter %4d hpwl %.3e ovf %.3f" d.name !iter hpwl overflow)
      end
      else recover ~what:"iterate (checkpoint hpwl)"
    end;
    Obs.Ctx.count obs "gp.iters";
    (* Heartbeat after the hooks and guards so the record carries this
       iteration's timing/guard updates (cadence decided inside). *)
    (match heartbeat with Some hb -> Obs.Heartbeat.tick hb ~iter:!iter ~overflow | None -> ());
    if overflow < params.stop_overflow && !iter >= params.min_iters then stop := true;
    incr iter)
  done;
  unpack d movable (Nesterov.iterate !opt);
  Design.clamp_movable d;
  let final_hpwl =
    let h = Design.total_hpwl d in
    if Util.Guard.is_finite h then h
    else begin
      (* Last line of defence: a NaN slipped past every sampled probe
         between checkpoints. Hand back the last verified placement
         rather than a poisoned one. *)
      Obs.Ctx.count obs "guard.nan_detected";
      Obs.Ctx.count obs "guard.rollbacks";
      Design.restore d (fst !last_good);
      Design.clamp_movable d;
      let h' = Design.total_hpwl d in
      if not (Util.Guard.is_finite h') then
        Util.Errors.diverged ~stage:"globalplace" ~recoveries:!consecutive_recoveries
          "final iterate non-finite and no finite checkpoint to roll back to";
      Obs.Log.warn "[gp %s] final iterate non-finite: restored last good checkpoint" d.name;
      h'
    end
  in
  Obs.Ctx.gauge obs "gp.final_hpwl" final_hpwl;
  Obs.Ctx.gauge obs "gp.final_overflow" !last_overflow;
  Obs.Ctx.gauge obs "gp.iterations" (float_of_int !iter);
  (* Final heartbeat regardless of cadence: subscribers always see the
     converged state. *)
  (match heartbeat with
  | Some hb ->
      Obs.Heartbeat.note_hpwl hb final_hpwl;
      Obs.Heartbeat.force hb ~iter:!iter ~overflow:!last_overflow
  | None -> ());
  {
    trace = List.rev !trace;
    iters = !iter;
    final_hpwl;
    final_overflow = !last_overflow;
  }
