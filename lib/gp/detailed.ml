(** Light detailed placement: greedy same-size cell swapping.

    After legalisation, sweeps over cell pairs that sit close together
    and swaps them when the HPWL of their incident nets improves. This is
    deliberately simple — the paper evaluates *global* placement; detailed
    placement exists so the full classical three-stage pipeline is
    representable end to end. *)

open Netlist

(* HPWL over the nets incident to the given cells (each net counted once). *)
let local_hpwl (d : Design.t) nets =
  List.fold_left (fun acc nid -> acc +. Design.net_hpwl d nid) 0.0 nets

let incident_nets (d : Design.t) id =
  let tbl = Hashtbl.create 8 in
  Design.iter_cell_pins d id (fun pid ->
      let net = d.pin_net.(pid) in
      if net >= 0 then Hashtbl.replace tbl net ());
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []

let swap_positions (d : Design.t) a b =
  let tx = d.x.{a} and ty = d.y.{a} in
  d.x.{a} <- d.x.{b};
  d.y.{a} <- d.y.{b};
  d.x.{b} <- tx;
  d.y.{b} <- ty

(** One pass; returns the number of accepted swaps. Only same-width cells
    are exchanged so legality is preserved trivially. *)
let pass (d : Design.t) ~window =
  let movables = Array.of_list (Design.movable_ids d) in
  Array.sort (fun a b -> compare (d.y.{a}, d.x.{a}) (d.y.{b}, d.x.{b})) movables;
  let accepted = ref 0 in
  let n = Array.length movables in
  for i = 0 to n - 1 do
    let a = movables.(i) in
    for j = i + 1 to min (n - 1) (i + window) do
      let b = movables.(j) in
      if d.w.{a} = d.w.{b} && (d.x.{a} <> d.x.{b} || d.y.{a} <> d.y.{b}) then begin
        let nets =
          List.sort_uniq compare (incident_nets d a @ incident_nets d b)
        in
        let before = local_hpwl d nets in
        swap_positions d a b;
        let after = local_hpwl d nets in
        if after < before -. 1e-9 then incr accepted else swap_positions d a b
      end
    done
  done;
  !accepted

(* All permutations of a small list. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(** Sliding-window row reordering: take [k] consecutive cells of a row,
    try every permutation in the same span (cells re-packed left to right
    into the occupied interval), keep the best by local HPWL. Exact within
    the window; preserves legality (same span, same row). Returns the
    number of improving windows. *)
let reorder_rows ?(k = 3) (d : Design.t) =
  let rows = Hashtbl.create 64 in
  List.iter
    (fun id ->
      let key = int_of_float (Float.round (d.y.{id} *. 4.0)) in
      Hashtbl.replace rows key (id :: (try Hashtbl.find rows key with Not_found -> [])))
    (Design.movable_ids d);
  let improved = ref 0 in
  Hashtbl.iter
    (fun _ cells ->
      let sorted = List.sort (fun a b -> compare d.x.{a} d.x.{b}) cells |> Array.of_list in
      let n = Array.length sorted in
      let resort () = Array.sort (fun a b -> compare d.x.{a} d.x.{b}) sorted in
      for i = 0 to n - k do
        let window_cells = Array.to_list (Array.sub sorted i k) in
        (* Occupied span starts at the window's leftmost edge; cells are
           consecutive in x (the array is re-sorted after every change),
           so packing the window's total width from there stays inside
           the span it already occupied. *)
        let left_edge =
          List.fold_left
            (fun acc id -> Float.min acc (d.x.{id} -. (d.w.{id} /. 2.0)))
            Float.infinity window_cells
        in
        let nets = List.sort_uniq compare (List.concat_map (incident_nets d) window_cells) in
        let place order =
          let cur = ref left_edge in
          List.iter
            (fun id ->
              d.x.{id} <- !cur +. (d.w.{id} /. 2.0);
              cur := !cur +. d.w.{id})
            order
        in
        let saved = List.map (fun id -> (id, d.x.{id})) window_cells in
        let best_cost = ref (local_hpwl d nets) in
        let best_order = ref None in
        List.iter
          (fun order ->
            place order;
            let c = local_hpwl d nets in
            if c < !best_cost -. 1e-9 then begin
              best_cost := c;
              best_order := Some order
            end)
          (permutations window_cells);
        (match !best_order with
        | Some order ->
            place order;
            incr improved;
            resort ()
        | None -> List.iter (fun (id, x) -> d.x.{id} <- x) saved)
      done)
    rows;
  !improved

(** Run up to [passes] improvement sweeps of pair swapping plus one row
    reordering sweep (stops early when a sweep makes no progress).
    Returns total accepted improvements. *)
let run ?(passes = 3) ?(window = 6) (d : Design.t) =
  let total = ref 0 in
  let continue_ = ref true in
  let k = ref 0 in
  while !continue_ && !k < passes do
    let acc = pass d ~window in
    total := !total + acc;
    if acc = 0 then continue_ := false;
    incr k
  done;
  total := !total + reorder_rows d;
  !total
