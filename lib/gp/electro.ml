(** Electrostatic density force (ePlace): the bin charge grid is treated
    as a 2D charge distribution; solving Poisson's equation gives a
    potential whose negative gradient is the force moving cells from
    over-filled to under-filled regions. Cell charge = cell area. *)

open Netlist

type t = {
  grid : Densitygrid.t;
  poisson : Numerics.Poisson.t;
  obs : Obs.Ctx.t; (* for the in-kernel finiteness probe *)
  (* Solver state, allocated once in [create] and rewritten in place
     every [solve] — the steady-state loop never touches the allocator. *)
  rho : float array;
  psi : float array;
  ex : float array; (* field, grid units *)
  ey : float array;
  mutable energy : float;
}

let create ?(obs = Obs.Ctx.null) grid =
  let nbins = grid.Densitygrid.bins_x * grid.Densitygrid.bins_y in
  {
    grid;
    poisson = Numerics.Poisson.create ~rows:grid.Densitygrid.bins_y ~cols:grid.Densitygrid.bins_x;
    obs;
    rho = Array.make nbins 0.0;
    psi = Array.make nbins 0.0;
    ex = Array.make nbins 0.0;
    ey = Array.make nbins 0.0;
    energy = 0.0;
  }

(** Re-solve the field from the current bin densities into the
    preallocated [rho]/[psi]/[ex]/[ey] buffers. Call after
    [Densitygrid.update]. *)
let solve t ~target_density =
  Densitygrid.charge_into t.grid ~target_density ~rho:t.rho;
  Numerics.Poisson.solve_into ~obs:t.obs t.poisson ~rho:t.rho ~psi:t.psi;
  Numerics.Poisson.field_into t.poisson ~psi:t.psi ~ex:t.ex ~ey:t.ey;
  t.energy <- Numerics.Poisson.energy t.rho t.psi

(** Density-force gradient: for each movable cell, the gradient of the
    electrostatic energy w.r.t. its position is -q * E(pos); we *add*
    +q*(-E) into [gx]/[gy] so that descending the total objective moves
    cells along the field. Field is converted from grid to physical units. *)
let add_grad t (d : Design.t) ~gx ~gy =
  let g = t.grid in
  let inv_w = 1.0 /. g.Densitygrid.bin_w and inv_h = 1.0 /. g.Densitygrid.bin_h in
  let bins_x = g.Densitygrid.bins_x and bins_y = g.Densitygrid.bins_y in
  let die_xl = g.Densitygrid.die.xl and die_yl = g.Densitygrid.die.yl in
  let ex = t.ex and ey = t.ey in
  (* Pure gather: each cell reads the field and writes only its own
     gradient slot, so the loop is safely data-parallel. The bilinear
     interpolation (grid values at bin centres, indices clamped to the
     die) is inlined: a helper returning a float would box that return
     per cell per iteration on the hottest path. *)
  Util.Parallel.for_ ~grain:256 ~name:"electro.grad" (Design.num_cells d) (fun i ->
      if Design.is_movable d i then begin
        let q = d.w.{i} *. d.h.{i} in
        let fx = ((d.x.{i} -. die_xl) *. inv_w) -. 0.5 in
        let fy = ((d.y.{i} -. die_yl) *. inv_h) -. 0.5 in
        let bx = int_of_float (floor fx) and by = int_of_float (floor fy) in
        let tx = fx -. float_of_int bx and ty = fy -. float_of_int by in
        let bx0 = if bx < 0 then 0 else if bx > bins_x - 1 then bins_x - 1 else bx in
        let bx1 = if bx + 1 < 0 then 0 else if bx + 1 > bins_x - 1 then bins_x - 1 else bx + 1 in
        let by0 = if by < 0 then 0 else if by > bins_y - 1 then bins_y - 1 else by in
        let by1 = if by + 1 < 0 then 0 else if by + 1 > bins_y - 1 then bins_y - 1 else by + 1 in
        let r0 = by0 * bins_x and r1 = by1 * bins_x in
        let vx =
          (((ex.(r0 + bx0) *. (1.0 -. tx)) +. (ex.(r0 + bx1) *. tx)) *. (1.0 -. ty))
          +. (((ex.(r1 + bx0) *. (1.0 -. tx)) +. (ex.(r1 + bx1) *. tx)) *. ty)
        in
        let vy =
          (((ey.(r0 + bx0) *. (1.0 -. tx)) +. (ey.(r0 + bx1) *. tx)) *. (1.0 -. ty))
          +. (((ey.(r1 + bx0) *. (1.0 -. tx)) +. (ey.(r1 + bx1) *. tx)) *. ty)
        in
        gx.(i) <- gx.(i) -. (q *. vx *. inv_w);
        gy.(i) <- gy.(i) -. (q *. vy *. inv_h)
      end)
