(** Electrostatic density force (ePlace): the bin charge grid is treated
    as a 2D charge distribution; solving Poisson's equation gives a
    potential whose negative gradient is the force moving cells from
    over-filled to under-filled regions. Cell charge = cell area. *)

open Netlist

type t = {
  grid : Densitygrid.t;
  poisson : Numerics.Poisson.t;
  obs : Obs.Ctx.t; (* for the in-kernel finiteness probe *)
  (* Solver state, allocated once in [create] and rewritten in place
     every [solve] — the steady-state loop never touches the allocator. *)
  rho : float array;
  psi : float array;
  ex : float array; (* field, grid units *)
  ey : float array;
  mutable energy : float;
}

let create ?(obs = Obs.Ctx.null) grid =
  let nbins = grid.Densitygrid.bins_x * grid.Densitygrid.bins_y in
  {
    grid;
    poisson = Numerics.Poisson.create ~rows:grid.Densitygrid.bins_y ~cols:grid.Densitygrid.bins_x;
    obs;
    rho = Array.make nbins 0.0;
    psi = Array.make nbins 0.0;
    ex = Array.make nbins 0.0;
    ey = Array.make nbins 0.0;
    energy = 0.0;
  }

(** Re-solve the field from the current bin densities into the
    preallocated [rho]/[psi]/[ex]/[ey] buffers. Call after
    [Densitygrid.update]. *)
let solve t ~target_density =
  Densitygrid.charge_into t.grid ~target_density ~rho:t.rho;
  Numerics.Poisson.solve_into ~obs:t.obs t.poisson ~rho:t.rho ~psi:t.psi;
  Numerics.Poisson.field_into t.poisson ~psi:t.psi ~ex:t.ex ~ey:t.ey;
  t.energy <- Numerics.Poisson.energy t.rho t.psi

(* Bilinear interpolation of the field at a physical position. Grid values
   live at bin centres. *)
let sample t (field : float array) px py =
  let g = t.grid in
  let die = g.Densitygrid.die in
  let fx = ((px -. die.xl) /. g.Densitygrid.bin_w) -. 0.5 in
  let fy = ((py -. die.yl) /. g.Densitygrid.bin_h) -. 0.5 in
  let bx = int_of_float (floor fx) and by = int_of_float (floor fy) in
  let tx = fx -. float_of_int bx and ty = fy -. float_of_int by in
  let clampx v = max 0 (min (g.Densitygrid.bins_x - 1) v) in
  let clampy v = max 0 (min (g.Densitygrid.bins_y - 1) v) in
  let at bx by = field.((clampy by * g.Densitygrid.bins_x) + clampx bx) in
  let v00 = at bx by
  and v10 = at (bx + 1) by
  and v01 = at bx (by + 1)
  and v11 = at (bx + 1) (by + 1) in
  ((v00 *. (1.0 -. tx)) +. (v10 *. tx)) *. (1.0 -. ty)
  +. (((v01 *. (1.0 -. tx)) +. (v11 *. tx)) *. ty)

(** Density-force gradient: for each movable cell, the gradient of the
    electrostatic energy w.r.t. its position is -q * E(pos); we *add*
    +q*(-E) into [gx]/[gy] so that descending the total objective moves
    cells along the field. Field is converted from grid to physical units. *)
let add_grad t (d : Design.t) ~gx ~gy =
  let g = t.grid in
  let inv_w = 1.0 /. g.Densitygrid.bin_w and inv_h = 1.0 /. g.Densitygrid.bin_h in
  (* Pure gather: each cell reads the field and writes only its own
     gradient slot, so the loop is safely data-parallel. *)
  Util.Parallel.for_ ~grain:256 ~name:"electro.grad" (Array.length d.cells) (fun i ->
      let c = d.cells.(i) in
      if c.movable then begin
        let q = c.w *. c.h in
        let fx = sample t t.ex d.x.(c.id) d.y.(c.id) *. inv_w in
        let fy = sample t t.ey d.x.(c.id) d.y.(c.id) *. inv_h in
        gx.(c.id) <- gx.(c.id) -. (q *. fx);
        gy.(c.id) <- gy.(c.id) -. (q *. fy)
      end)
