(** Bin-grid density accumulation and the overflow metric.

    Cells smaller than a bin are inflated to bin size with their density
    scaled down to preserve area (the ePlace local-smoothing rule), which
    keeps the electrostatic field well-behaved for standard cells. *)

open Netlist

type t = {
  bins_x : int;
  bins_y : int;
  bin_w : float;
  bin_h : float;
  inv_bin_w : float; (* 1/bin_w — bin-index math multiplies instead of divides *)
  inv_bin_h : float;
  die : Geom.Rect.t;
  density : float array; (* movable area per bin, row-major [by * bins_x + bx] *)
  fixed : float array; (* fixed (blockage) area per bin, computed once *)
  (* Per-cell inflated extents and density scale (the ePlace smoothing
     rule), precomputed once: cell sizes never change during placement,
     so the branches and divisions drop out of the per-iteration path. *)
  eff_w : float array;
  eff_h : float array;
  eff_scale : float array;
  mutable scratch : float array array; (* per-domain accumulation grids, grown on demand *)
  mutable partial : float array; (* per-chunk reduction slots (overflow), grown on demand *)
}

let create (d : Design.t) ~bins_x ~bins_y =
  let die = d.die in
  let bin_w = Geom.Rect.width die /. float_of_int bins_x in
  let bin_h = Geom.Rect.height die /. float_of_int bins_y in
  let ncells = Design.num_cells d in
  let eff_w = Array.make ncells 0.0 in
  let eff_h = Array.make ncells 0.0 in
  let eff_scale = Array.make ncells 0.0 in
  for i = 0 to ncells - 1 do
    let cw = d.w.{i} and ch = d.h.{i} in
    eff_w.(i) <- (if cw < bin_w then bin_w else cw);
    eff_h.(i) <- (if ch < bin_h then bin_h else ch);
    let sx = if cw < bin_w then cw /. bin_w else 1.0 in
    let sy = if ch < bin_h then ch /. bin_h else 1.0 in
    eff_scale.(i) <- sx *. sy
  done;
  let t =
    {
      bins_x;
      bins_y;
      bin_w;
      bin_h;
      inv_bin_w = 1.0 /. bin_w;
      inv_bin_h = 1.0 /. bin_h;
      die;
      density = Array.make (bins_x * bins_y) 0.0;
      fixed = Array.make (bins_x * bins_y) 0.0;
      eff_w;
      eff_h;
      eff_scale;
      scratch = [||];
      partial = Array.make 1 0.0;
    }
  in
  (* Fixed density from blockages and fixed logic (pads are on the
     boundary and tiny; they are included for completeness). *)
  for i = 0 to Design.num_cells d - 1 do
    if not (Design.is_movable d i) then begin
      let rect = Design.cell_rect d i in
      let bxl = int_of_float (floor ((rect.xl -. die.xl) /. bin_w)) in
      let bxh = int_of_float (ceil ((rect.xh -. die.xl) /. bin_w)) - 1 in
      let byl = int_of_float (floor ((rect.yl -. die.yl) /. bin_h)) in
      let byh = int_of_float (ceil ((rect.yh -. die.yl) /. bin_h)) - 1 in
      for by = max 0 byl to min (bins_y - 1) byh do
        for bx = max 0 bxl to min (bins_x - 1) bxh do
          let bin =
            Geom.Rect.make
              ~xl:(die.xl +. (float_of_int bx *. bin_w))
              ~yl:(die.yl +. (float_of_int by *. bin_h))
              ~xh:(die.xl +. (float_of_int (bx + 1) *. bin_w))
              ~yh:(die.yl +. (float_of_int (by + 1) *. bin_h))
          in
          t.fixed.((by * bins_x) + bx) <-
            t.fixed.((by * bins_x) + bx) +. Geom.Rect.overlap_area rect bin
        done
      done
    end
  done;
  t

let bin_area t = t.bin_w *. t.bin_h

(* Deposit one movable cell's (inflated) area into an accumulation grid.
   The inflation (cells smaller than a bin stretched to bin size, density
   scaled to preserve area) is computed inline with float locals — a
   tuple-returning helper would allocate per cell per iteration. *)
let[@inline] deposit t (d : Design.t) (acc : float array) i =
  let die = t.die in
  (* [i] is loop-bounded by the caller (< num_cells), so the coordinate
     reads skip bounds checks; the inflated extents/scale come from the
     precomputed per-cell arrays and bin-index math multiplies by the
     cached inverses (branches plus six divides per cell otherwise). *)
  let cx = Bigarray.Array1.unsafe_get d.x i and cy = Bigarray.Array1.unsafe_get d.y i in
  let ew = Array.unsafe_get t.eff_w i and eh = Array.unsafe_get t.eff_h i in
  let scale = Array.unsafe_get t.eff_scale i in
  let xl = cx -. (0.5 *. ew) and xh = cx +. (0.5 *. ew) in
  let yl = cy -. (0.5 *. eh) and yh = cy +. (0.5 *. eh) in
  if ew <= t.bin_w && eh <= t.bin_h then begin
    (* Fast path: a cell inflated to (at most) bin size spans at most two
       bins per dimension, so both overlap pairs fall out of one floor per
       dimension — no rasterisation loop, no NaN-aware min/max calls. This
       is the overwhelmingly common standard-cell case. *)
    let bx0 = int_of_float (floor ((xl -. die.xl) *. t.inv_bin_w)) in
    let by0 = int_of_float (floor ((yl -. die.yl) *. t.inv_bin_h)) in
    let bxr = die.xl +. (float_of_int (bx0 + 1) *. t.bin_w) in
    let byr = die.yl +. (float_of_int (by0 + 1) *. t.bin_h) in
    let ox0 = bxr -. xl and ox1 = xh -. bxr in
    let oy0 = byr -. yl and oy1 = yh -. byr in
    let bx1 = bx0 + 1 and by1 = by0 + 1 in
    let x0_ok = bx0 >= 0 && ox0 > 0.0 in
    let x1_ok = bx1 <= t.bins_x - 1 && ox1 > 0.0 in
    if by0 >= 0 && oy0 > 0.0 then begin
      let row = by0 * t.bins_x in
      if x0_ok then begin
        let b = row + bx0 in
        Array.unsafe_set acc b (Array.unsafe_get acc b +. (ox0 *. oy0 *. scale))
      end;
      if x1_ok then begin
        let b = row + bx1 in
        Array.unsafe_set acc b (Array.unsafe_get acc b +. (ox1 *. oy0 *. scale))
      end
    end;
    if by1 <= t.bins_y - 1 && oy1 > 0.0 then begin
      let row = by1 * t.bins_x in
      if x0_ok then begin
        let b = row + bx0 in
        Array.unsafe_set acc b (Array.unsafe_get acc b +. (ox0 *. oy1 *. scale))
      end;
      if x1_ok then begin
        let b = row + bx1 in
        Array.unsafe_set acc b (Array.unsafe_get acc b +. (ox1 *. oy1 *. scale))
      end
    end
  end
  else begin
    let bxl = max 0 (int_of_float (floor ((xl -. die.xl) *. t.inv_bin_w))) in
    let bxh = min (t.bins_x - 1) (int_of_float (floor ((xh -. die.xl) *. t.inv_bin_w))) in
    let byl = max 0 (int_of_float (floor ((yl -. die.yl) *. t.inv_bin_h))) in
    let byh = min (t.bins_y - 1) (int_of_float (floor ((yh -. die.yl) *. t.inv_bin_h))) in
    for by = byl to byh do
      let b_yl = die.yl +. (float_of_int by *. t.bin_h) in
      let oy = Float.min yh (b_yl +. t.bin_h) -. Float.max yl b_yl in
      if oy > 0.0 then
        for bx = bxl to bxh do
          let b_xl = die.xl +. (float_of_int bx *. t.bin_w) in
          let ox = Float.min xh (b_xl +. t.bin_w) -. Float.max xl b_xl in
          if ox > 0.0 then
            let b = (by * t.bins_x) + bx in
            Array.unsafe_set acc b (Array.unsafe_get acc b +. (ox *. oy *. scale))
        done
    done
  end

(** Accumulate movable-cell density from the current placement. Parallel
    over cells with per-domain accumulation grids merged in chunk order
    (cells overlap bins, so direct accumulation would race). *)
let update t (d : Design.t) =
  let nbins = Array.length t.density in
  Array.fill t.density 0 nbins 0.0;
  let ncells = Design.num_cells d in
  let nchunks = Util.Parallel.chunk_count ~n:ncells in
  if nchunks = 1 then
    for i = 0 to ncells - 1 do
      if Design.is_movable d i then deposit t d t.density i
    done
  else begin
    if Array.length t.scratch < nchunks then
      t.scratch <- Array.init nchunks (fun _ -> Array.make nbins 0.0);
    for k = 0 to nchunks - 1 do
      Array.fill t.scratch.(k) 0 nbins 0.0
    done;
    Util.Parallel.for_chunks ~grain:64 ~name:"density.bins" ~n:ncells (fun ~chunk ~lo ~hi ->
        let acc = t.scratch.(chunk) in
        for i = lo to hi - 1 do
          if Design.is_movable d i then deposit t d acc i
        done);
    (* Merge per-domain grids; each bin sums its chunk contributions in
       chunk order, so bins are independent and the result deterministic. *)
    Util.Parallel.for_ ~name:"density.merge" nbins (fun b ->
        let acc = ref 0.0 in
        for k = 0 to nchunks - 1 do
          acc := !acc +. t.scratch.(k).(b)
        done;
        t.density.(b) <- !acc)
  end

(** Density overflow: fraction of movable area sitting above the per-bin
    capacity [target_density * bin_area - fixed]. The standard global
    placement convergence metric ("overflow" in Fig. 5). *)
let overflow t ~target_density ~movable_area =
  if movable_area <= 0.0 then 0.0
  else begin
    let ba = bin_area t in
    let nbins = Array.length t.density in
    let nchunks = Util.Parallel.chunk_count ~n:nbins in
    if Array.length t.partial < nchunks then t.partial <- Array.make nchunks 0.0;
    let partial = t.partial in
    Array.fill partial 0 (Array.length partial) 0.0;
    (* Chunked reduction into preallocated slots: a closure-per-bin sum
       would box every partial float. Chunk partition is fixed by
       (nbins, domains), so the float association is deterministic. *)
    Util.Parallel.for_chunks ~grain:4096 ~name:"density.overflow" ~n:nbins
      (fun ~chunk ~lo ~hi ->
        for i = lo to hi - 1 do
          let cap = target_density *. ba -. t.fixed.(i) in
          let cap = if cap > 0.0 then cap else 0.0 in
          let over = t.density.(i) -. cap in
          if over > 0.0 then partial.(chunk) <- partial.(chunk) +. over
        done);
    let over = ref 0.0 in
    for k = 0 to nchunks - 1 do
      over := !over +. partial.(k)
    done;
    !over /. movable_area
  end

(** Charge density for the Poisson solve into a caller-owned buffer:
    total occupied area density minus the target (so the field pushes
    from dense to sparse). Allocation-free. *)
let charge_into t ~target_density ~rho =
  assert (Array.length rho = Array.length t.density);
  let ba = bin_area t in
  for i = 0 to Array.length t.density - 1 do
    rho.(i) <- ((t.density.(i) +. t.fixed.(i)) /. ba) -. target_density
  done

(** Allocating wrapper over {!charge_into}. *)
let charge t ~target_density =
  let rho = Array.make (Array.length t.density) 0.0 in
  charge_into t ~target_density ~rho;
  rho
