(** Bin-grid density accumulation and the overflow metric.

    Cells smaller than a bin are inflated to bin size with their density
    scaled down to preserve area (the ePlace local-smoothing rule), which
    keeps the electrostatic field well-behaved for standard cells. *)

open Netlist

type t = {
  bins_x : int;
  bins_y : int;
  bin_w : float;
  bin_h : float;
  die : Geom.Rect.t;
  density : float array; (* movable area per bin, row-major [by * bins_x + bx] *)
  fixed : float array; (* fixed (blockage) area per bin, computed once *)
  mutable scratch : float array array; (* per-domain accumulation grids, grown on demand *)
}

let create (d : Design.t) ~bins_x ~bins_y =
  let die = d.die in
  let bin_w = Geom.Rect.width die /. float_of_int bins_x in
  let bin_h = Geom.Rect.height die /. float_of_int bins_y in
  let t =
    {
      bins_x;
      bins_y;
      bin_w;
      bin_h;
      die;
      density = Array.make (bins_x * bins_y) 0.0;
      fixed = Array.make (bins_x * bins_y) 0.0;
      scratch = [||];
    }
  in
  (* Fixed density from blockages and fixed logic (pads are on the
     boundary and tiny; they are included for completeness). *)
  Array.iter
    (fun (c : Design.cell) ->
      if not c.movable then begin
        let rect = Design.cell_rect d c.id in
        let bxl = int_of_float (floor ((rect.xl -. die.xl) /. bin_w)) in
        let bxh = int_of_float (ceil ((rect.xh -. die.xl) /. bin_w)) - 1 in
        let byl = int_of_float (floor ((rect.yl -. die.yl) /. bin_h)) in
        let byh = int_of_float (ceil ((rect.yh -. die.yl) /. bin_h)) - 1 in
        for by = max 0 byl to min (bins_y - 1) byh do
          for bx = max 0 bxl to min (bins_x - 1) bxh do
            let bin =
              Geom.Rect.make
                ~xl:(die.xl +. (float_of_int bx *. bin_w))
                ~yl:(die.yl +. (float_of_int by *. bin_h))
                ~xh:(die.xl +. (float_of_int (bx + 1) *. bin_w))
                ~yh:(die.yl +. (float_of_int (by + 1) *. bin_h))
            in
            t.fixed.((by * bins_x) + bx) <-
              t.fixed.((by * bins_x) + bx) +. Geom.Rect.overlap_area rect bin
          done
        done
      end)
    d.cells;
  t

let bin_area t = t.bin_w *. t.bin_h

(* Effective (inflated) extent of a movable cell in one dimension. *)
let inflate size bin = if size < bin then (bin, size /. bin) else (size, 1.0)

(* Deposit one movable cell's (inflated) area into an accumulation grid. *)
let deposit t (d : Design.t) (acc : float array) (c : Design.cell) =
  let die = t.die in
  let ew, sx = inflate c.w t.bin_w in
  let eh, sy = inflate c.h t.bin_h in
  let scale = sx *. sy in
  let xl = d.x.(c.id) -. (ew /. 2.0) and xh = d.x.(c.id) +. (ew /. 2.0) in
  let yl = d.y.(c.id) -. (eh /. 2.0) and yh = d.y.(c.id) +. (eh /. 2.0) in
  let bxl = max 0 (int_of_float (floor ((xl -. die.xl) /. t.bin_w))) in
  let bxh = min (t.bins_x - 1) (int_of_float (floor ((xh -. die.xl) /. t.bin_w))) in
  let byl = max 0 (int_of_float (floor ((yl -. die.yl) /. t.bin_h))) in
  let byh = min (t.bins_y - 1) (int_of_float (floor ((yh -. die.yl) /. t.bin_h))) in
  for by = byl to byh do
    let b_yl = die.yl +. (float_of_int by *. t.bin_h) in
    let oy = Float.min yh (b_yl +. t.bin_h) -. Float.max yl b_yl in
    if oy > 0.0 then
      for bx = bxl to bxh do
        let b_xl = die.xl +. (float_of_int bx *. t.bin_w) in
        let ox = Float.min xh (b_xl +. t.bin_w) -. Float.max xl b_xl in
        if ox > 0.0 then
          acc.((by * t.bins_x) + bx) <- acc.((by * t.bins_x) + bx) +. (ox *. oy *. scale)
      done
  done

(** Accumulate movable-cell density from the current placement. Parallel
    over cells with per-domain accumulation grids merged in chunk order
    (cells overlap bins, so direct accumulation would race). *)
let update t (d : Design.t) =
  let nbins = Array.length t.density in
  Array.fill t.density 0 nbins 0.0;
  let ncells = Array.length d.cells in
  let nchunks = Util.Parallel.chunk_count ~n:ncells in
  if nchunks = 1 then
    Array.iter (fun (c : Design.cell) -> if c.movable then deposit t d t.density c) d.cells
  else begin
    if Array.length t.scratch < nchunks then
      t.scratch <- Array.init nchunks (fun _ -> Array.make nbins 0.0);
    for k = 0 to nchunks - 1 do
      Array.fill t.scratch.(k) 0 nbins 0.0
    done;
    Util.Parallel.for_chunks ~grain:64 ~name:"density.bins" ~n:ncells (fun ~chunk ~lo ~hi ->
        let acc = t.scratch.(chunk) in
        for i = lo to hi - 1 do
          let c = d.cells.(i) in
          if c.movable then deposit t d acc c
        done);
    (* Merge per-domain grids; each bin sums its chunk contributions in
       chunk order, so bins are independent and the result deterministic. *)
    Util.Parallel.for_ ~name:"density.merge" nbins (fun b ->
        let acc = ref 0.0 in
        for k = 0 to nchunks - 1 do
          acc := !acc +. t.scratch.(k).(b)
        done;
        t.density.(b) <- !acc)
  end

(** Density overflow: fraction of movable area sitting above the per-bin
    capacity [target_density * bin_area - fixed]. The standard global
    placement convergence metric ("overflow" in Fig. 5). *)
let overflow t ~target_density ~movable_area =
  if movable_area <= 0.0 then 0.0
  else begin
    let ba = bin_area t in
    let over =
      Util.Parallel.sum ~name:"density.overflow" (Array.length t.density) (fun i ->
          let cap = Float.max 0.0 ((target_density *. ba) -. t.fixed.(i)) in
          Float.max 0.0 (t.density.(i) -. cap))
    in
    over /. movable_area
  end

(** Charge density for the Poisson solve into a caller-owned buffer:
    total occupied area density minus the target (so the field pushes
    from dense to sparse). Allocation-free. *)
let charge_into t ~target_density ~rho =
  assert (Array.length rho = Array.length t.density);
  let ba = bin_area t in
  for i = 0 to Array.length t.density - 1 do
    rho.(i) <- ((t.density.(i) +. t.fixed.(i)) /. ba) -. target_density
  done

(** Allocating wrapper over {!charge_into}. *)
let charge t ~target_density =
  let rho = Array.make (Array.length t.density) 0.0 in
  charge_into t ~target_density ~rho;
  rho
